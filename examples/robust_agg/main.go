// robust_agg demonstrates the related-work observation that motivates the
// paper: Byzantine-robust aggregation rules (Krum, trimmed mean, median,
// Bulyan) do not reliably stop model-replacement backdoors under non-IID
// data, while the paper's post-training defense cleans the model after the
// fact regardless of the aggregation rule used.
//
//	go run ./examples/robust_agg
package main

import (
	"fmt"

	fedcleanse "github.com/fedcleanse/fedcleanse"
)

func main() {
	aggs := []struct {
		name string
		agg  fedcleanse.Aggregator
	}{
		{"fedavg (mean)", nil}, // server default
		{"krum (f=1)", fedcleanse.Krum{F: 1}},
		{"trimmed mean", fedcleanse.TrimmedMean{Trim: 1}},
		{"median", fedcleanse.Median{}},
		{"bulyan (f=1)", fedcleanse.Bulyan{F: 1}},
	}

	fmt.Println("aggregation rule vs model-replacement backdoor (SynthMNIST, 9->2):")
	for _, a := range aggs {
		s := fedcleanse.MNISTScenario(9, 2)
		t := fedcleanse.BuildScenario(s)
		if a.agg != nil {
			t.Server.Agg = a.agg
		}
		t.Server.Train(nil)
		fmt.Printf("  %-14s TA=%5.1f AA=%5.1f\n", a.name, t.TA(), t.AA())
	}

	fmt.Println("\nnote: under non-IID shards the honest updates disagree enough that")
	fmt.Println("robust statistics cannot single out the attacker; the paper's defense")
	fmt.Println("instead repairs the trained model (see examples/quickstart).")
}
