// dba_cifar reproduces the Table III scenario: the Distributed Backdoor
// Attack on the CIFAR-scale task. Four attackers each train with one
// quarter of a global trigger; evaluation uses the full pattern. The
// example prints training progress, per-attacker local trigger sizes, and
// the defense outcome.
//
//	go run ./examples/dba_cifar
package main

import (
	"fmt"

	fedcleanse "github.com/fedcleanse/fedcleanse"
)

func main() {
	s := fedcleanse.CIFARScenario(9, 0) // truck -> airplane in CIFAR terms

	// Show the DBA decomposition: the global trigger split across the
	// four attackers.
	global := fedcleanse.DBAGlobalPattern(fedcleanse.DatasetShape{C: 3, H: 16, W: 16})
	parts := global.Decompose(4)
	fmt.Printf("DBA global trigger: %d pixels, decomposed for %d attackers:\n",
		len(global.Pixels), len(parts))
	for i, p := range parts {
		fmt.Printf("  attacker %d trains with %d trigger pixels\n", i, len(p.Pixels))
	}

	fmt.Println("\nfederated training under DBA ...")
	t := fedcleanse.BuildScenario(s)
	t.Server.Train(func(round int) {
		if (round+1)%5 == 0 {
			fmt.Printf("  round %2d: TA=%5.1f AA(global trigger)=%5.1f\n",
				round, t.TA(), t.AA())
		}
	})

	fmt.Println("\nrunning the full defense ...")
	model, report := t.Defend(fedcleanse.DefaultPipelineConfig())
	fmt.Printf("pruned %d channels, zeroed %d weights\n",
		len(report.Prune.Pruned), report.AW.Zeroed)
	fmt.Printf("result: TA %.1f -> %.1f, AA %.1f -> %.1f\n",
		t.TA(), t.ModelTA(model), t.AA(), t.ModelAA(model))
}
