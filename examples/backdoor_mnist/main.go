// backdoor_mnist assembles a federated backdoor experiment from the
// library's building blocks — datasets, partitioning, clients, attacker,
// server, defense — instead of the prepackaged scenarios, and compares the
// paper's defense modes (FP, FP+AW, All) side by side.
//
//	go run ./examples/backdoor_mnist
package main

import (
	"fmt"
	"math/rand"

	fedcleanse "github.com/fedcleanse/fedcleanse"
)

func main() {
	const (
		clients   = 10
		kLabels   = 3
		perClient = 100
		victim    = 9
		target    = 0
	)
	rng := rand.New(rand.NewSource(7))

	// Data: synthetic MNIST stand-in, split non-IID (3 labels per client).
	train, test := fedcleanse.GenSynthMNIST(fedcleanse.GenConfig{
		TrainPerClass: 150, TestPerClass: 60, Seed: 21,
	})
	shards := fedcleanse.PartitionKLabel(train, clients, kLabels, perClient, rng)

	// Model template and FL config.
	template := fedcleanse.NewSmallCNN(
		fedcleanse.ModelInput{C: 1, H: 16, W: 16}, train.Classes, rng)
	cfg := fedcleanse.FLConfig{
		Rounds: 22, LocalEpochs: 2, BatchSize: 20, LR: 0.05, WeightDecay: 1e-4,
	}

	// One attacker with a 3-pixel trigger and model-replacement scaling.
	poison := fedcleanse.PoisonConfig{
		Trigger:     fedcleanse.PixelPattern(3, train.Shape),
		VictimLabel: victim,
		TargetLabel: target,
		Copies:      2,
	}
	attacker := fedcleanse.NewAttacker(0, shards[0], template, cfg, poison, 6, 100)
	attacker.ScaleFromRound = cfg.Rounds / 2
	parts := []fedcleanse.Participant{attacker}
	for i := 1; i < clients; i++ {
		parts = append(parts, fedcleanse.NewClient(i, shards[i], template, cfg, int64(200+i)))
	}

	server := fedcleanse.NewServer(template, parts, cfg, 300)
	fmt.Println("training ...")
	server.Train(nil)

	ta := 100 * fedcleanse.Accuracy(server.Model, test, 0)
	aa := 100 * fedcleanse.AttackSuccessRate(server.Model, test, poison, 0)
	fmt.Printf("after training: TA=%.1f%% AA=%.1f%%\n\n", ta, aa)

	// Compare defense modes on clones of the trained global model. The
	// cached evaluator re-runs only the layers a defense step mutated.
	evalFn := fedcleanse.NewSuffixEvaluator(test, 0)
	reporters := fedcleanse.ReportClients(parts)
	for _, mode := range []string{"fp", "fp+aw", "all"} {
		pcfg := fedcleanse.DefaultPipelineConfig()
		switch mode {
		case "fp":
			pcfg.FineTuneRounds = 0
			pcfg.SkipAW = true
		case "fp+aw":
			pcfg.FineTuneRounds = 0
		}
		m := server.Model.Clone()
		fedcleanse.RunPipeline(m, reporters, server, evalFn, pcfg)
		fmt.Printf("%-6s TA=%.1f%% AA=%.1f%%\n", mode,
			100*fedcleanse.Accuracy(m, test, 0),
			100*fedcleanse.AttackSuccessRate(m, test, poison, 0))
	}
}
