// Quickstart: train a federated model under a backdoor attack, then clean
// it with the paper's full defense pipeline (federated pruning +
// fine-tuning + adjusting extreme weights).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	fedcleanse "github.com/fedcleanse/fedcleanse"
)

func main() {
	// Scenario: 10 clients (one malicious), non-IID 3-label shards, and a
	// 3-pixel backdoor making images of digit 9 predict as digit 2.
	s := fedcleanse.MNISTScenario(9, 2)

	fmt.Println("federated training with a model-replacement backdoor attacker ...")
	t := fedcleanse.Run(s)
	fmt.Printf("after training:  test accuracy %5.1f%%   attack success %5.1f%%\n",
		t.TA(), t.AA())

	fmt.Println("running the defense pipeline (prune -> fine-tune -> adjust weights) ...")
	model, report := t.Defend(fedcleanse.DefaultPipelineConfig())

	fmt.Printf("after defense:   test accuracy %5.1f%%   attack success %5.1f%%\n",
		t.ModelTA(model), t.ModelAA(model))
	fmt.Printf("\npipeline: pruned %d neurons of layer %d, %d fine-tuning rounds, "+
		"zeroed %d extreme weights (final delta %.2f)\n",
		len(report.Prune.Pruned), report.TargetLayer,
		report.FineTune.Rounds, report.AW.Zeroed, report.AW.FinalDelta)
}
