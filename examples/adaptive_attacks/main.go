// adaptive_attacks evaluates the paper's §VI-B discussion: attackers that
// know the defense and adapt — manipulating rank reports so backdoor
// neurons look essential (Attack 1), training around a known prune mask
// (Attack 2), and self-clipping extreme weights to dodge the AW step. The
// paper observes the combined defense remains robust; this example
// measures each variant.
//
//	go run ./examples/adaptive_attacks
package main

import (
	"fmt"

	fedcleanse "github.com/fedcleanse/fedcleanse"
)

func main() {
	fmt.Println("adaptive attackers vs the full defense (SynthMNIST, 9->2):")
	fmt.Println("(training may take a few minutes per variant)")
	tbl := fedcleanse.AdaptiveAttackTable(fedcleanse.ExperimentPair{VL: 9, AL: 2})
	fmt.Print(tbl.Render())

	fmt.Println("\nreading the table: 'training' columns show the attack landing;")
	fmt.Println("'all' columns show TA/AA after pruning + fine-tuning + weight")
	fmt.Println("adjustment. The defense's AA reduction should survive every variant.")

	// The facade also exposes the attacker knobs directly:
	s := fedcleanse.MNISTScenario(9, 2)
	t := fedcleanse.BuildScenario(s)
	t.Attackers[0].SelfClipDelta = 3 // AW-aware self-clipping
	_ = t                            // train with t.Server.Train(nil) as needed
}
