package fedcleanse_test

import (
	"math/rand"
	"testing"

	fedcleanse "github.com/fedcleanse/fedcleanse"
)

// TestPublicAPISurface exercises the facade exactly as a downstream user
// would: build data, model, federation and defense through the re-exported
// names only.
func TestPublicAPISurface(t *testing.T) {
	train, test := fedcleanse.GenSynthMNIST(fedcleanse.GenConfig{
		TrainPerClass: 20, TestPerClass: 10, Seed: 1,
	})
	if train.Len() != 200 || test.Len() != 100 {
		t.Fatalf("dataset sizes %d/%d", train.Len(), test.Len())
	}
	rng := rand.New(rand.NewSource(2))
	shards := fedcleanse.PartitionKLabel(train, 4, 3, 40, rng)
	template := fedcleanse.NewSmallCNN(
		fedcleanse.ModelInput{C: 1, H: 16, W: 16}, train.Classes, rng)
	cfg := fedcleanse.FLConfig{Rounds: 2, LocalEpochs: 1, BatchSize: 20, LR: 0.05}

	poison := fedcleanse.PoisonConfig{
		Trigger:     fedcleanse.PixelPattern(3, train.Shape),
		VictimLabel: 9,
		TargetLabel: 1,
	}
	parts := []fedcleanse.Participant{
		fedcleanse.NewAttacker(0, shards[0], template, cfg, poison, 2, 3),
	}
	for i := 1; i < 4; i++ {
		parts = append(parts, fedcleanse.NewClient(i, shards[i], template, cfg, int64(4+i)))
	}
	server := fedcleanse.NewServer(template, parts, cfg, 10)
	server.Train(nil)

	if acc := fedcleanse.Accuracy(server.Model, test, 0); acc <= 0.1 {
		t.Fatalf("federated training achieved only %.2f accuracy", acc)
	}
	_ = fedcleanse.AttackSuccessRate(server.Model, test, poison, 0)

	pcfg := fedcleanse.DefaultPipelineConfig()
	pcfg.FineTuneRounds = 1
	m := server.Model.Clone()
	evalFn := fedcleanse.NewSuffixEvaluator(test, 0)
	rep := fedcleanse.RunPipeline(m, fedcleanse.ReportClients(parts), server, evalFn, pcfg)
	if rep.AccFinal <= 0 {
		t.Fatal("pipeline produced no final accuracy")
	}
}

// TestPublicScenarioAPI exercises the prepackaged scenario surface.
func TestPublicScenarioAPI(t *testing.T) {
	s := fedcleanse.MNISTScenario(9, 2)
	s.FL.Rounds = 1
	tr := fedcleanse.BuildScenario(s)
	if len(tr.Participants) != s.Clients {
		t.Fatalf("%d participants, want %d", len(tr.Participants), s.Clients)
	}
	tr.Server.Round(0)
	if ta := tr.TA(); ta <= 0 {
		t.Fatalf("TA = %g after one round", ta)
	}
}

// TestPublicBaselines exercises the robust-aggregation baselines through
// the facade.
func TestPublicBaselines(t *testing.T) {
	deltas := [][]float64{{1}, {2}, {3}, {100}}
	if got := (fedcleanse.Median{}).Aggregate(deltas)[0]; got != 2.5 {
		t.Fatalf("median %g, want 2.5", got)
	}
	if got := (fedcleanse.TrimmedMean{Trim: 1}).Aggregate(deltas)[0]; got != 2.5 {
		t.Fatalf("trimmed mean %g, want 2.5", got)
	}
	k := fedcleanse.Krum{F: 1}
	if got := k.Aggregate(deltas)[0]; got > 3 {
		t.Fatalf("krum picked the outlier: %g", got)
	}
}

func TestPruneMethodConstants(t *testing.T) {
	if fedcleanse.RAP.String() != "RAP" || fedcleanse.MVP.String() != "MVP" {
		t.Fatal("prune method constants mis-exported")
	}
}
