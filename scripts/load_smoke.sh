#!/usr/bin/env bash
# Load-smoke the streaming aggregation path end to end: a fedload fleet
# hosting POP synthetic clients behind one listener, driven by fedserve in
# fleet mode (registry sampling + streaming sharded aggregation) for
# ROUNDS rounds of SELECT-client cohorts. Asserts:
#
#   - at least one round reached quorum and applied,
#   - the fleet recovered zero handler panics and served >0 updates,
#   - the server registered the whole population (fl_registered_clients),
#   - server heap stayed under HEAP_BOUND — memory follows the cohort,
#     not the population (the same bound must hold for POP=10k and 100k),
#   - the streaming window actually bounded the in-flight working set,
#   - the report-collection phase (RAP + MVP over one cohort) stayed at
#     or under REPORT_CEIL bytes per report on the wire (compact codecs,
#     REPORT_QUANT precision; DESIGN.md §14),
#   - a durable run SIGKILLed right after its first checkpoint restarts
#     with -resume, actually resumes (fl_resumes_total), finishes the
#     remaining rounds under the same heap bound, and leaves the fleet
#     with zero recovered panics (DESIGN.md §15),
#   - the tracing + audit trail (DESIGN.md §16): the server's /trace and
#     /rounds surfaces and the -flight-recorder JSONL all parse through
#     fedtrace (which exits non-zero on malformed JSON), the audit count
#     matches the rounds the logs show — including across the
#     SIGKILL-and-resume leg, whose two processes append to one file —
#     and both the server's and the fleet's rings carry their spans.
#
# Metrics snapshots are left in OUT_DIR (default ./load-smoke-artifacts)
# for the CI artifact upload. Shared by `make load-smoke`, the CI
# load-smoke job (POP=10000) and the nightly 100k variant.
set -euo pipefail
cd "$(dirname "$0")/.."

POP=${POP:-10000}
SELECT=${SELECT:-256}
ROUNDS=${ROUNDS:-3}
HEAP_BOUND=${HEAP_BOUND:-268435456} # 256 MiB
TIMEOUT=${TIMEOUT:-120}
OUT_DIR=${OUT_DIR:-load-smoke-artifacts}
REPORT_QUANT=${REPORT_QUANT:-int8}
REPORT_CEIL=${REPORT_CEIL:-256}
RESUME_ROUNDS=${RESUME_ROUNDS:-$ROUNDS}
VERSIONED_UPDATES=${VERSIONED_UPDATES:-true}

workdir=$(mktemp -d)
mkdir -p "$OUT_DIR"
pids=()
cleanup() {
	for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
	echo "load smoke: $1" >&2
	exit 1
}

go build -o "$workdir" ./cmd/fedload ./cmd/fedserve ./cmd/fedtrace

"$workdir/fedload" -clients "$POP" -listen 127.0.0.1:0 -ops-addr 127.0.0.1:0 \
	-report-quant "$REPORT_QUANT" -versioned-updates="$VERSIONED_UPDATES" \
	>"$workdir/fedload.log" 2>&1 &
pids+=($!)

fleet=
for _ in $(seq 1 240); do
	fleet=$(sed -n 's/.*serving on \(.*\)/\1/p' "$workdir/fedload.log" | head -1)
	[ -n "$fleet" ] && break
	sleep 0.5
done
[ -n "$fleet" ] || { cat "$workdir/fedload.log" >&2; fail "fedload never announced its address"; }
fleet_ops=
for _ in $(seq 1 240); do
	fleet_ops=$(sed -n 's/.*ops endpoint up addr=\(.*\)/\1/p' "$workdir/fedload.log" | head -1)
	[ -n "$fleet_ops" ] && break
	sleep 0.5
done
[ -n "$fleet_ops" ] || fail "fedload never announced its ops endpoint"

"$workdir/fedserve" -fleet "$fleet" -fleet-count "$POP" -select "$SELECT" \
	-streaming -rounds "$ROUNDS" -quorum 0.9 -ops-addr 127.0.0.1:0 \
	-report-quant "$REPORT_QUANT" \
	-flight-recorder "$workdir/flight.jsonl" \
	>"$workdir/serve.log" 2>&1 &
serve_pid=$!
pids+=($serve_pid)

serve_ops=
for _ in $(seq 1 240); do
	serve_ops=$(sed -n 's/.*ops endpoint up addr=\(.*\)/\1/p' "$workdir/serve.log" | head -1)
	[ -n "$serve_ops" ] && break
	kill -0 "$serve_pid" 2>/dev/null || break
	sleep 0.5
done

# Poll the server's JSON snapshot while it runs; the last capture before
# exit is the artifact. The text snapshot fedserve prints on exit backs
# the assertions below.
deadline=$((SECONDS + TIMEOUT))
while kill -0 "$serve_pid" 2>/dev/null; do
	if [ "$SECONDS" -ge "$deadline" ]; then
		cat "$workdir/serve.log" >&2
		fail "fedserve did not finish $ROUNDS rounds within ${TIMEOUT}s"
	fi
	if [ -n "$serve_ops" ]; then
		for ep in "metrics?format=json:server_metrics.json" \
			"trace:server_trace.json" \
			"trace?format=records:server_trace_records.json" \
			"rounds:server_rounds.json"; do
			curl -fsS "http://$serve_ops/${ep%%:*}" \
				>"$OUT_DIR/${ep#*:}.tmp" 2>/dev/null &&
				mv "$OUT_DIR/${ep#*:}.tmp" "$OUT_DIR/${ep#*:}" || true
		done
	fi
	sleep 1
done
wait "$serve_pid" || { cat "$workdir/serve.log" >&2; fail "fedserve exited non-zero"; }
cp "$workdir/serve.log" "$OUT_DIR/serve.log"

# The fleet is still up: snapshot its metrics for the artifact and gates.
curl -fsS "http://$fleet_ops/metrics?format=json" >"$OUT_DIR/fedload_metrics.json" ||
	fail "could not snapshot fedload metrics"
fleet_metrics=$(curl -fsS "http://$fleet_ops/metrics")

metric() { # metric <text> <name> -> value (0 when absent)
	echo "$1" | sed -n "s/^$2 //p" | head -1
}

applied=$(grep -c 'applied=true' "$workdir/serve.log" || true)
[ "$applied" -ge 1 ] || { cat "$workdir/serve.log" >&2; fail "no round reached quorum and applied"; }

panics=$(metric "$fleet_metrics" fedload_handler_panics_total)
[ "${panics:-0}" = "0" ] || fail "fleet recovered $panics handler panics, want 0"
updates=$(metric "$fleet_metrics" fedload_updates_total)
[ "${updates:-0}" -ge "$SELECT" ] || fail "fleet served ${updates:-0} updates, want >= $SELECT"
hosted=$(metric "$fleet_metrics" fedload_clients)
[ "${hosted:-0}" = "$POP" ] || fail "fleet hosts ${hosted:-0} clients, want $POP"

# fedserve's exit snapshot (text format) carries the server-side gauges.
server_metrics=$(sed -n '/final metrics snapshot:/,$p' "$workdir/serve.log")
registered=$(metric "$server_metrics" fl_registered_clients)
[ "${registered:-0}" = "$POP" ] || fail "server registered ${registered:-0} clients, want $POP"
heap=$(metric "$server_metrics" process_heap_alloc_bytes)
[ -n "${heap:-}" ] && [ "$heap" -gt 0 ] || fail "server heap gauge missing from exit snapshot"
[ "$heap" -lt "$HEAP_BOUND" ] ||
	fail "server heap $heap bytes >= bound $HEAP_BOUND — memory is scaling with the population"
peak=$(metric "$server_metrics" fl_stream_inflight_peak)
[ "${peak:-0}" -ge 1 ] || fail "fl_stream_inflight_peak is ${peak:-0}; streaming path did not run"

# Report-path bandwidth gate: the fleet must have served defense reports
# and the server-side average payload must fit the per-report ceiling.
reports=$(metric "$fleet_metrics" fedload_reports_total)
[ "${reports:-0}" -ge 1 ] || fail "fleet served ${reports:-0} defense reports, want >= 1"
per_report=$(sed -n 's/.*bytes_per_report=\([0-9]*\).*/\1/p' "$workdir/serve.log" | head -1)
[ -n "${per_report:-}" ] || { cat "$workdir/serve.log" >&2; fail "fedserve logged no report-collection phase"; }
[ "$per_report" -le "$REPORT_CEIL" ] ||
	fail "report payloads average $per_report bytes ($REPORT_QUANT), exceeding ceiling $REPORT_CEIL"

echo "load smoke: OK (population=$POP cohort=$SELECT rounds=$applied applied," \
	"fleet updates=$updates, reports=$reports at $per_report B/report ($REPORT_QUANT)," \
	"server heap=$heap bytes, peak in-flight=$peak)"

# ---- Tracing + audit-trail gates (DESIGN.md §16) ---------------------
# fedtrace exits non-zero on any malformed JSON, so piping every captured
# artifact through it doubles as the well-formedness gate; the summaries
# land in OUT_DIR next to the raw captures.
cp "$workdir/flight.jsonl" "$OUT_DIR/flight.jsonl" 2>/dev/null ||
	fail "fedserve left no flight-recorder file"
"$workdir/fedtrace" -flight "$OUT_DIR/flight.jsonl" >"$OUT_DIR/flight_summary.txt" ||
	fail "flight-recorder JSONL is malformed"
audits=$(sed -n 's/^summary: rounds total=\([0-9]*\).*/\1/p' "$OUT_DIR/flight_summary.txt" | head -1)
[ "${audits:-0}" = "$ROUNDS" ] ||
	fail "flight recorder audited ${audits:-0} rounds, want $ROUNDS"
audit_applied=$(sed -n 's/^summary: rounds total=[0-9]* applied=\([0-9]*\).*/\1/p' \
	"$OUT_DIR/flight_summary.txt" | head -1)
[ "${audit_applied:-0}" = "$applied" ] ||
	fail "flight recorder shows ${audit_applied:-0} applied rounds, log shows $applied"
[ -s "$OUT_DIR/server_trace.json" ] && [ -s "$OUT_DIR/server_trace_records.json" ] &&
	[ -s "$OUT_DIR/server_rounds.json" ] ||
	fail "missing /trace or /rounds captures from the server ops endpoint"
"$workdir/fedtrace" -trace "$OUT_DIR/server_trace_records.json" \
	-rounds "$OUT_DIR/server_rounds.json" >"$OUT_DIR/server_trace_summary.txt" ||
	fail "server /trace or /rounds capture is malformed"
grep -q '^summary: phase name=fl.round ' "$OUT_DIR/server_trace_summary.txt" ||
	fail "server span ring recorded no fl.round spans"
grep -q '^summary: phase name=transport.attempt ' "$OUT_DIR/server_trace_summary.txt" ||
	fail "server span ring recorded no transport.attempt spans"
grep -q '^summary: rounds endpoint retained=' "$OUT_DIR/server_trace_summary.txt" ||
	fail "/rounds capture carried no audit window"
# The fleet's ring holds the far side of the same traces.
curl -fsS "http://$fleet_ops/trace?format=records" >"$OUT_DIR/fedload_trace_records.json" ||
	fail "could not capture the fleet's /trace records"
"$workdir/fedtrace" -trace "$OUT_DIR/fedload_trace_records.json" \
	>"$OUT_DIR/fedload_trace_summary.txt" ||
	fail "fleet /trace capture is malformed"
grep -q '^summary: phase name=fedload.update ' "$OUT_DIR/fedload_trace_summary.txt" ||
	fail "fleet span ring recorded no fedload.update spans"

echo "load smoke: tracing OK (audits=$audits rounds, applied=$audit_applied," \
	"server and fleet rings populated, all captures parse)"

# ---- Kill-and-resume leg (DESIGN.md §15) -----------------------------
# A fresh durable run against the still-warm fleet: SIGKILL fedserve as
# soon as its first checkpoint lands, restart it with -resume, and
# require the restart to actually resume and finish RESUME_ROUNDS more
# rounds. The killed run gets an effectively unbounded round budget so
# the kill always lands mid-run regardless of scale; the restart's round
# target is derived from the checkpoint it resumes (the boundary file
# name carries the next round). The torn temp file a mid-write kill can
# leave behind must be skipped, not fatal.
ckpt="$workdir/ckpt"
mkdir -p "$ckpt"

"$workdir/fedserve" -fleet "$fleet" -fleet-count "$POP" -select "$SELECT" \
	-streaming -rounds 1000000 -quorum 0.9 \
	-report-quant "$REPORT_QUANT" \
	-checkpoint-dir "$ckpt" -checkpoint-every 1 \
	-flight-recorder "$workdir/flight_kill.jsonl" \
	>"$workdir/serve_kill.log" 2>&1 &
kill_pid=$!
pids+=($kill_pid)

have_ckpt=
for _ in $(seq 1 1200); do
	if ls "$ckpt"/ckpt-*.fcc >/dev/null 2>&1; then have_ckpt=1; break; fi
	kill -0 "$kill_pid" 2>/dev/null || break
	sleep 0.1
done
[ -n "$have_ckpt" ] || { cat "$workdir/serve_kill.log" >&2; fail "no checkpoint appeared before the scripted kill"; }
kill -9 "$kill_pid" 2>/dev/null || fail "fedserve died before the scripted SIGKILL"
wait "$kill_pid" 2>/dev/null || true
cp "$workdir/serve_kill.log" "$OUT_DIR/serve_kill.log"

# The newest boundary checkpoint ckpt-NNNNNNNN-f.fcc names the round the
# restart resumes at; run RESUME_ROUNDS more rounds from there.
next=$(ls "$ckpt"/ckpt-*-f.fcc | sort | tail -1 |
	sed -n 's/.*ckpt-\([0-9]*\)-f\.fcc/\1/p')
[ -n "${next:-}" ] || fail "could not parse the resume round from $ckpt"
next=$((10#$next))

"$workdir/fedserve" -fleet "$fleet" -fleet-count "$POP" -select "$SELECT" \
	-streaming -rounds $((next + RESUME_ROUNDS)) -quorum 0.9 \
	-report-quant "$REPORT_QUANT" \
	-checkpoint-dir "$ckpt" -resume \
	-flight-recorder "$workdir/flight_kill.jsonl" \
	>"$workdir/serve_resume.log" 2>&1 &
resume_pid=$!
pids+=($resume_pid)

deadline=$((SECONDS + TIMEOUT))
while kill -0 "$resume_pid" 2>/dev/null; do
	if [ "$SECONDS" -ge "$deadline" ]; then
		cat "$workdir/serve_resume.log" >&2
		fail "resumed fedserve did not finish within ${TIMEOUT}s"
	fi
	sleep 1
done
wait "$resume_pid" || { cat "$workdir/serve_resume.log" >&2; fail "resumed fedserve exited non-zero"; }
cp "$workdir/serve_resume.log" "$OUT_DIR/serve_resume.log"

grep -q 'resumed from checkpoint' "$workdir/serve_resume.log" ||
	{ cat "$workdir/serve_resume.log" >&2; fail "restart did not resume from the checkpoint"; }
resume_metrics=$(sed -n '/final metrics snapshot:/,$p' "$workdir/serve_resume.log")
resumes=$(metric "$resume_metrics" fl_resumes_total)
[ "${resumes:-0}" -ge 1 ] || fail "fl_resumes_total is ${resumes:-0} after restart, want >= 1"
rheap=$(metric "$resume_metrics" process_heap_alloc_bytes)
[ -n "${rheap:-}" ] && [ "$rheap" -gt 0 ] || fail "resumed server heap gauge missing from exit snapshot"
[ "$rheap" -lt "$HEAP_BOUND" ] ||
	fail "resumed server heap $rheap bytes >= bound $HEAP_BOUND"
rapplied=$(grep -c 'applied=true' "$workdir/serve_resume.log" || true)
[ "$rapplied" -ge 1 ] || { cat "$workdir/serve_resume.log" >&2; fail "resumed run applied no round"; }
fleet_metrics=$(curl -fsS "http://$fleet_ops/metrics")
panics=$(metric "$fleet_metrics" fedload_handler_panics_total)
[ "${panics:-0}" = "0" ] ||
	fail "fleet recovered $panics handler panics across the kill-and-resume leg, want 0"

# The two coordinator processes append to one flight-recorder file; the
# audit trail must parse whole (a SIGKILL must not leave a torn line) and
# cover every round the two logs show completed — at most one extra for a
# round audited in the kill window before its log line flushed.
cp "$workdir/flight_kill.jsonl" "$OUT_DIR/flight_kill.jsonl" 2>/dev/null ||
	fail "kill-and-resume leg left no flight-recorder file"
"$workdir/fedtrace" -flight "$OUT_DIR/flight_kill.jsonl" >"$OUT_DIR/flight_kill_summary.txt" ||
	fail "kill-and-resume flight-recorder JSONL is malformed"
kaudits=$(sed -n 's/^summary: rounds total=\([0-9]*\).*/\1/p' "$OUT_DIR/flight_kill_summary.txt" | head -1)
kill_done=$(grep -c 'round done' "$workdir/serve_kill.log" || true)
resume_done=$(grep -c 'round done' "$workdir/serve_resume.log" || true)
done_total=$((kill_done + resume_done))
[ "${kaudits:-0}" -ge "$done_total" ] && [ "${kaudits:-0}" -le $((done_total + 1)) ] ||
	fail "kill-and-resume audit trail has ${kaudits:-0} rounds, logs show $done_total completed"

echo "load smoke: kill-and-resume OK (resumes=$resumes," \
	"applied=$rapplied rounds after restart, heap=$rheap bytes, fleet panics=0," \
	"audit trail=$kaudits rounds across the kill)"
