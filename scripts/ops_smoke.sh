#!/usr/bin/env bash
# Smoke-test the fedserve ops endpoint end to end: build fedclient and
# fedserve, start a 3-client loopback federation with -ops-addr, wait for
# the endpoint, and check /healthz, /metrics (text + JSON) and pprof.
# Shared by `make ops-smoke` and the CI bench-smoke job.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
	for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir" ./cmd/fedclient ./cmd/fedserve

# Start the participants on ephemeral ports and parse the bound addresses
# from their announcements.
addrs=()
for i in 0 1 2; do
	"$workdir/fedclient" -index "$i" -listen 127.0.0.1:0 \
		>"$workdir/client$i.log" 2>&1 &
	pids+=($!)
done
for i in 0 1 2; do
	addr=
	for _ in $(seq 1 240); do
		addr=$(sed -n 's/.*serving on \(.*\)/\1/p' "$workdir/client$i.log" | head -1)
		[ -n "$addr" ] && break
		sleep 0.5
	done
	if [ -z "$addr" ]; then
		echo "fedclient $i never announced its address" >&2
		cat "$workdir/client$i.log" >&2
		exit 1
	fi
	addrs+=("$addr")
done

clients=$(IFS=,; echo "${addrs[*]}")
"$workdir/fedserve" -clients "$clients" -ops-addr 127.0.0.1:0 -defend=false \
	>"$workdir/serve.log" 2>&1 &
pids+=($!)

ops=
for _ in $(seq 1 240); do
	ops=$(sed -n 's/.*ops endpoint up addr=\(.*\)/\1/p' "$workdir/serve.log" | head -1)
	[ -n "$ops" ] && break
	sleep 0.5
done
if [ -z "$ops" ]; then
	echo "fedserve never announced its ops endpoint" >&2
	cat "$workdir/serve.log" >&2
	exit 1
fi

fail() {
	echo "ops smoke: $1" >&2
	exit 1
}

health=$(curl -fsS "http://$ops/healthz")
[ "$health" = "ok" ] || fail "/healthz answered '$health', want ok"
metrics=$(curl -fsS "http://$ops/metrics")
echo "$metrics" | grep -q '^fl_rounds_total ' || fail "/metrics missing fl_rounds_total"
echo "$metrics" | grep -q '^transport_call_seconds_bucket{le="+Inf"}' ||
	fail "/metrics missing transport_call_seconds buckets"
snapshot=$(curl -fsS "http://$ops/metrics?format=json")
echo "$snapshot" | grep -q '"counters"' || fail "/metrics?format=json is not a snapshot object"
curl -fsS "http://$ops/debug/pprof/cmdline" >/dev/null || fail "pprof endpoint unreachable"

echo "ops endpoint smoke: OK ($ops)"
