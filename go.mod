module github.com/fedcleanse/fedcleanse

go 1.21
