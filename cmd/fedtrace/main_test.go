package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/obs"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadTraceRoundTrip(t *testing.T) {
	dump := traceDump{
		Total:   3,
		Dropped: 1,
		Spans: []obs.SpanRecord{
			{Name: "fl.round", Trace: 0xabc, Span: 1, Start: 100, Dur: 5 * time.Millisecond, Round: 2, Client: -1, Attempt: -1},
			{Name: "transport.attempt", Trace: 0xabc, Span: 2, Parent: 1, Start: 120, Dur: 2 * time.Millisecond, Round: -1, Client: 3, Attempt: 1},
		},
	}
	b, err := json.Marshal(dump)
	if err != nil {
		t.Fatal(err)
	}
	got, err := readTrace(writeFile(t, "spans.json", string(b)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != 3 || got.Dropped != 1 || len(got.Spans) != 2 {
		t.Fatalf("round trip mangled the dump: %+v", got)
	}
	if got.Spans[0].Trace != 0xabc || got.Spans[1].Parent != 1 {
		t.Fatalf("hex IDs did not survive: %+v", got.Spans)
	}
}

func TestReadTraceMalformed(t *testing.T) {
	if _, err := readTrace(writeFile(t, "bad.json", `{"spans": [{]`)); err == nil {
		t.Fatal("malformed span records parsed without error")
	}
}

func TestTraceSummaryPhasesAndSlowest(t *testing.T) {
	dump := traceDump{Total: 4, Spans: []obs.SpanRecord{
		{Name: "fl.round", Dur: 9 * time.Millisecond, Round: 0, Client: -1, Attempt: -1},
		{Name: "fl.round", Dur: 4 * time.Millisecond, Round: 1, Client: -1, Attempt: -1},
		{Name: "transport.attempt", Dur: 1 * time.Millisecond, Client: 2, Round: -1, Attempt: 1},
	}}
	out := strings.Join(traceSummary(dump, 1), "\n")
	for _, want := range []string{
		"summary: trace spans=3 recorded=4 dropped=0",
		"summary: phase name=fl.round spans=2 total_ms=13.000 max_ms=9.000",
		"summary: phase name=transport.attempt spans=1",
		"dur_ms=9.000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// top=1: the 4ms fl.round span must not appear as a slowest line.
	if strings.Contains(out, "dur_ms=4.000") {
		t.Errorf("top=1 leaked a second slowest span:\n%s", out)
	}
}

func TestReadFlightAndSummary(t *testing.T) {
	audits := []fl.RoundAudit{
		{Round: 0, Selected: []int{0, 1, 2}, Completed: []int{0, 1, 2}, Applied: true, Attempts: 3},
		{Round: 1, Selected: []int{0, 1, 2}, Completed: []int{0, 1}, Dropped: []int{2},
			Errors: map[int]string{2: "conn refused"}, Applied: true, Resumed: true,
			ResumePrefix: 1, Retries: 2, Attempts: 5},
	}
	var sb strings.Builder
	for _, a := range audits {
		b, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	path := writeFile(t, "flight.jsonl", sb.String())
	got, err := readFlight(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].ResumePrefix != 1 || got[1].Errors[2] != "conn refused" {
		t.Fatalf("flight round trip mangled the audits: %+v", got)
	}
	out := strings.Join(flightSummary(got), "\n")
	for _, want := range []string{
		"summary: rounds total=2 applied=2 resumed=1 retries=2 attempts=8",
		"summary: client id=0 completed=2 dropped=0 errors=0",
		"summary: client id=2 completed=1 dropped=1 errors=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestReadFlightMalformed(t *testing.T) {
	if _, err := readFlight(writeFile(t, "bad.jsonl", "{\"round\": 0}\n{oops\n")); err == nil {
		t.Fatal("malformed audit line parsed without error")
	}
}

func TestReadRoundsCapture(t *testing.T) {
	body := `{"total":7,"path":"/tmp/flight.jsonl","records":[{"round":5,"applied":true,"completed":[1,2]}]}`
	audits, total, err := readRounds(writeFile(t, "rounds.json", body))
	if err != nil {
		t.Fatal(err)
	}
	if total != 7 || len(audits) != 1 || audits[0].Round != 5 || !audits[0].Applied {
		t.Fatalf("rounds capture mangled: total=%d audits=%+v", total, audits)
	}
	if _, _, err := readRounds(writeFile(t, "bad.json", `{"records":[{"round":]}`)); err == nil {
		t.Fatal("malformed rounds capture parsed without error")
	}
}
