// Command fedtrace renders the observability artifacts of a federated
// run as text: the span ring captured from an ops endpoint
// (GET /trace?format=records, saved to a file) and the flight recorder's
// JSONL audit trail (-flight-recorder on fedserve, or the /rounds
// surface). It prints greppable "summary:" lines — per-phase span
// statistics with the slowest spans of each phase, and a per-client
// completion/drop table over the audited rounds — so a CI job or an
// operator can assert over a run without loading Chrome's about:tracing.
//
// Example:
//
//	curl -s 'http://127.0.0.1:7101/trace?format=records' > spans.json
//	fedtrace -trace spans.json -flight flight.jsonl
//
// Malformed input is a hard failure: any JSON that does not parse exits
// nonzero, so the command doubles as the smoke-test validator for both
// formats.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/obs"
)

func main() {
	tracePath := flag.String("trace", "", "span records JSON file (saved from /trace?format=records)")
	flightPath := flag.String("flight", "", "flight recorder JSONL file (written by -flight-recorder)")
	roundsPath := flag.String("rounds", "", "/rounds JSON capture from an ops endpoint")
	top := flag.Int("top", 3, "slowest spans to print per phase")
	flag.Parse()
	if *tracePath == "" && *flightPath == "" && *roundsPath == "" {
		fmt.Fprintln(os.Stderr, "at least one of -trace, -flight or -rounds is required")
		os.Exit(2)
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	if *tracePath != "" {
		dump, err := readTrace(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedtrace:", err)
			os.Exit(1)
		}
		writeLines(out, traceSummary(dump, *top))
	}
	if *flightPath != "" {
		audits, err := readFlight(*flightPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedtrace:", err)
			os.Exit(1)
		}
		writeLines(out, flightSummary(audits))
	}
	if *roundsPath != "" {
		audits, total, err := readRounds(*roundsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedtrace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "summary: rounds endpoint retained=%d recorded=%d\n", len(audits), total)
		writeLines(out, flightSummary(audits))
	}
}

func writeLines(w io.Writer, lines []string) {
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// traceDump mirrors the /trace?format=records response body.
type traceDump struct {
	Total   uint64           `json:"total"`
	Dropped uint64           `json:"dropped"`
	Spans   []obs.SpanRecord `json:"spans"`
}

func readTrace(path string) (traceDump, error) {
	var d traceDump
	b, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(b, &d); err != nil {
		return d, fmt.Errorf("%s: malformed span records: %w", path, err)
	}
	return d, nil
}

// readFlight parses a flight-recorder JSONL file: one RoundAudit per
// non-empty line.
func readFlight(path string) ([]fl.RoundAudit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var audits []fl.RoundAudit
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var a fl.RoundAudit
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			return nil, fmt.Errorf("%s:%d: malformed audit record: %w", path, line, err)
		}
		audits = append(audits, a)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return audits, nil
}

// readRounds parses a /rounds ops capture: the retained audit window
// plus the recorder's lifetime total.
func readRounds(path string) ([]fl.RoundAudit, uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var resp struct {
		Total   uint64            `json:"total"`
		Records []json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(b, &resp); err != nil {
		return nil, 0, fmt.Errorf("%s: malformed rounds capture: %w", path, err)
	}
	audits := make([]fl.RoundAudit, 0, len(resp.Records))
	for i, raw := range resp.Records {
		var a fl.RoundAudit
		if err := json.Unmarshal(raw, &a); err != nil {
			return nil, 0, fmt.Errorf("%s: malformed audit record %d: %w", path, i, err)
		}
		audits = append(audits, a)
	}
	return audits, resp.Total, nil
}

// traceSummary renders per-phase span statistics: every distinct span
// name is a phase, and each phase reports its count, cumulative and
// maximum duration, then its top slowest spans.
func traceSummary(d traceDump, top int) []string {
	lines := []string{fmt.Sprintf("summary: trace spans=%d recorded=%d dropped=%d",
		len(d.Spans), d.Total, d.Dropped)}
	byPhase := map[string][]obs.SpanRecord{}
	for _, s := range d.Spans {
		byPhase[s.Name] = append(byPhase[s.Name], s)
	}
	phases := make([]string, 0, len(byPhase))
	for name := range byPhase {
		phases = append(phases, name)
	}
	sort.Strings(phases)
	for _, name := range phases {
		spans := byPhase[name]
		sort.Slice(spans, func(i, j int) bool { return spans[i].Dur > spans[j].Dur })
		var total int64
		for _, s := range spans {
			total += int64(s.Dur)
		}
		lines = append(lines, fmt.Sprintf("summary: phase name=%s spans=%d total_ms=%.3f max_ms=%.3f",
			name, len(spans), float64(total)/1e6, float64(spans[0].Dur)/1e6))
		for i := 0; i < len(spans) && i < top; i++ {
			s := spans[i]
			lines = append(lines, fmt.Sprintf(
				"summary: slowest phase=%s dur_ms=%.3f trace=%s span=%s round=%d client=%d attempt=%d",
				name, float64(s.Dur)/1e6, s.Trace, s.Span, s.Round, s.Client, s.Attempt))
		}
	}
	return lines
}

// flightSummary renders the audited rounds: run-level totals followed by
// the per-client completion/drop table.
func flightSummary(audits []fl.RoundAudit) []string {
	type clientStat struct{ completed, dropped, errs int }
	clients := map[int]*clientStat{}
	stat := func(id int) *clientStat {
		if s, ok := clients[id]; ok {
			return s
		}
		s := &clientStat{}
		clients[id] = s
		return s
	}
	var applied, resumed int
	var retries, attempts uint64
	for _, a := range audits {
		if a.Applied {
			applied++
		}
		if a.Resumed {
			resumed++
		}
		retries += a.Retries
		attempts += a.Attempts
		for _, id := range a.Completed {
			stat(id).completed++
		}
		for _, id := range a.Dropped {
			stat(id).dropped++
		}
		for id := range a.Errors {
			stat(id).errs++
		}
	}
	lines := []string{fmt.Sprintf(
		"summary: rounds total=%d applied=%d resumed=%d retries=%d attempts=%d",
		len(audits), applied, resumed, retries, attempts)}
	ids := make([]int, 0, len(clients))
	for id := range clients {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s := clients[id]
		lines = append(lines, fmt.Sprintf("summary: client id=%d completed=%d dropped=%d errors=%d",
			id, s.completed, s.dropped, s.errs))
	}
	return lines
}
