// Command fedserve runs the federated aggregation server against remote
// fedclient processes, then (optionally) the defense pipeline — one
// federation spread across OS processes, communicating only through the
// transport protocol. Start it with the same scenario flags as the
// fedclient processes (see cmd/fedclient for a full example).
//
// While a run is in flight, -ops-addr exposes the live diagnostics
// surface: /metrics (text or JSON snapshot of the obs registry),
// /healthz, /trace (Chrome trace-event JSON of the recent span ring),
// /rounds (the flight recorder's recent audit records), and
// net/http/pprof. -log-level/-log-json control the structured event
// stream; a final metrics snapshot prints on exit. -flight-recorder
// appends the per-round audit trail to a JSONL file (DESIGN.md §16);
// -trace-seed pins the trace/span ID sequence for reproducible runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/eval"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/profiling"
	"github.com/fedcleanse/fedcleanse/internal/transport"
)

func main() {
	ds := flag.String("dataset", "mnist", "dataset: mnist, fashion or cifar")
	victim := flag.Int("victim", 9, "victim label (VL)")
	target := flag.Int("target", 2, "attack label (AL)")
	clients := flag.String("clients", "", "comma-separated client addresses, in participant-index order")
	fleet := flag.String("fleet", "", "fedload fleet address (host:port); replaces -clients with a registered population of fleet-hosted clients")
	fleetCount := flag.Int("fleet-count", 10000, "registered population size in fleet mode")
	sel := flag.Int("select", 0, "clients sampled per round in fleet mode (0 = all)")
	streaming := flag.Bool("streaming", false, "fold updates into a running aggregate instead of buffering the cohort")
	shards := flag.Int("shards", 0, "streaming fold shards (0 = parallel worker count)")
	streamWindow := flag.Int("stream-window", 0, "streaming concurrency window (0 = twice the worker count)")
	rounds := flag.Int("rounds", 0, "override the scenario's round count (0 = scenario default)")
	seed := flag.Int64("seed", 0, "experiment seed (0 = scenario default)")
	defend := flag.Bool("defend", true, "run the defense pipeline after training")
	quorum := flag.Float64("quorum", 0.5, "fraction of clients that must respond for a round to apply (0 = any)")
	roundTimeout := flag.Duration("round-timeout", 5*time.Minute, "deadline for one aggregation round (0 = none)")
	retries := flag.Int("retries", 3, "attempts per remote call")
	attemptTimeout := flag.Duration("attempt-timeout", time.Minute, "deadline per remote call attempt")
	opsAddr := flag.String("ops-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = off)")
	ckptDir := flag.String("checkpoint-dir", "", "persist round-state checkpoints into this directory (empty = off)")
	ckptEvery := flag.Int("checkpoint-every", 1, "write a boundary checkpoint every N completed rounds")
	ckptFolds := flag.Int("checkpoint-folds", 0, "also write a partial checkpoint every N folded updates inside a streaming round (0 = boundaries only)")
	resume := flag.Bool("resume", false, "resume from the newest complete checkpoint in -checkpoint-dir before training")
	quantFlag := flag.String("report-quant", "float64", "activation report precision the federation runs at: float64 (reference) or int8 (quantized recording; compact wire) — start fedclient/fedload with the same value")
	flightPath := flag.String("flight-recorder", "", "append one JSONL audit record per applied round to this file (empty = off); the recent records are also served at /rounds on -ops-addr")
	traceSeed := flag.Int64("trace-seed", 0, "seed for deterministic trace/span IDs (0 = unique per process)")
	logf := obs.AddLogFlags()
	prof := profiling.AddFlags()
	flag.Parse()
	logger, err := logf.Setup(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer prof.Start()()
	if *traceSeed != 0 {
		obs.SetTraceSeed(*traceSeed)
	}
	quant, err := metrics.ParseReportQuant(*quantFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var s eval.Scenario
	switch *ds {
	case "mnist":
		s = eval.MNISTScenario(*victim, *target)
	case "fashion":
		s = eval.FashionScenario(*victim, *target)
	case "cifar":
		s = eval.CIFARScenario(*victim, *target)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *ds)
		os.Exit(2)
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	s.ReportQuant = quant
	addrs := strings.Split(*clients, ",")
	if *fleet == "" && (*clients == "" || len(addrs) == 0) {
		fmt.Fprintln(os.Stderr, "one of -clients or -fleet is required")
		os.Exit(2)
	}
	if *fleet != "" && *clients != "" {
		fmt.Fprintln(os.Stderr, "-clients and -fleet are mutually exclusive")
		os.Exit(2)
	}

	// The ops endpoint comes up before any training so a long run is
	// observable from its first round.
	if *opsAddr != "" {
		ops, err := obs.ServeOps(*opsAddr, obs.Default)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		logger.Info("serve: ops endpoint up", "addr", ops.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = ops.Shutdown(ctx)
		}()
	}
	defer func() {
		obs.SampleProcess()
		fmt.Println("\nfinal metrics snapshot:")
		_ = obs.Default.WriteText(os.Stdout)
	}()

	// The flight recorder is the durable audit trail (DESIGN.md §16): one
	// JSONL record per round, plus the recent window on /rounds.
	var flight *obs.FlightRecorder
	if *flightPath != "" {
		flight, err = obs.NewFlightRecorder(*flightPath, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		obs.SetFlightRecorder(flight)
		logger.Info("serve: flight recorder on", "path", flight.Path())
		defer flight.Close()
	}

	template, _, test, validation := eval.Components(s)
	retry := transport.DefaultRetryPolicy()
	retry.MaxAttempts = *retries
	retry.AttemptTimeout = *attemptTimeout
	s.FL.Quorum = *quorum
	s.FL.RoundTimeout = *roundTimeout
	s.FL.Streaming = *streaming
	s.FL.Shards = *shards
	s.FL.StreamWindow = *streamWindow
	if *rounds > 0 {
		s.FL.Rounds = *rounds
	}

	if *fleet != "" {
		// Fleet mode: a fedload process hosts *fleet-count synthetic clients
		// behind one listener. Only the clients sampled into a round's cohort
		// get a RemoteClient stub, built on demand through the registry
		// factory — server memory follows the cohort, not the population.
		// Synthetic updates carry no signal to defend, so instead of the full
		// pipeline the run closes with a report-collection phase: one RAP and
		// one MVP sweep over a sampled cohort, exercising the report wire at
		// scale and logging its measured per-report cost.
		fleetAddr := strings.TrimSpace(*fleet)
		reg := fl.NewRegistry(func(id int) fl.Participant {
			return transport.NewRemoteClient(id, transport.FleetClientAddr(fleetAddr, id),
				transport.WithRetryPolicy(retry))
		})
		reg.RegisterRange(0, *fleetCount)
		s.FL.SelectPerRound = *sel
		server := fl.NewRegistryServer(template, reg, s.FL, s.Seed+300)
		server.Audit = flight
		startRound := setupDurability(server, logger, *ckptDir, *ckptEvery, *ckptFolds, *resume)
		logger.Info("serve: fleet training start",
			"fleet", fleetAddr, "population", reg.Len(),
			"select", *sel, "streaming", *streaming, "rounds", server.Config().Rounds)
		for round := startRound; round < server.Config().Rounds; round++ {
			res := server.RoundDetail(round)
			obs.SampleProcess()
			logger.Info("serve: round done",
				"round", round,
				"completed", len(res.Completed),
				"dropped", len(res.Dropped),
				"applied", res.Applied,
				"peak_inflight", res.PeakInFlight)
		}
		if !*defend {
			return
		}
		cohort := *sel
		if cohort <= 0 || cohort > reg.Len() {
			cohort = min(64, reg.Len())
		}
		parts := reg.Cohort(cohort, rand.New(rand.NewSource(s.Seed+400)))
		reporters := fl.ReportClients(parts)
		li := template.LastConvIndex()
		recvBefore := obs.M.TransportReportBytesRecv.Value()
		for _, method := range []core.PruneMethod{core.RAP, core.MVP} {
			cfg := core.DefaultPipelineConfig()
			cfg.Method = method
			cfg.ReportQuorum = *quorum
			cfg.ReportTimeout = *roundTimeout
			res := core.GlobalPruneOrderDetail(server.Model, reporters, li, cfg)
			logger.Info("serve: fleet report collection done",
				"method", method.String(),
				"responded", len(res.Responded),
				"dropped", len(res.Dropped),
				"order_len", len(res.Order))
		}
		recv := obs.M.TransportReportBytesRecv.Value() - recvBefore
		reports := uint64(2 * len(reporters))
		logger.Info("serve: fleet report bandwidth",
			"report_quant", quant.String(),
			"reports", reports,
			"recv_bytes", recv,
			"bytes_per_report", recv/reports)
		return
	}

	parts := make([]fl.Participant, len(addrs))
	for i, addr := range addrs {
		parts[i] = transport.NewRemoteClient(i, strings.TrimSpace(addr),
			transport.WithRetryPolicy(retry))
	}
	// The population size follows the actually connected clients.
	s.FL.SelectPerRound = 0
	server := fl.NewServer(template, parts, s.FL, s.Seed+300)
	server.Audit = flight
	startRound := setupDurability(server, logger, *ckptDir, *ckptEvery, *ckptFolds, *resume)

	taEval := metrics.NewSuffixEvaluator(test, 0)
	asrEval := metrics.NewCachedASR(test, s.Poison, 0)
	ta := func(m *nn.Sequential) float64 { return 100 * taEval.Evaluate(m) }
	aa := func(m *nn.Sequential) float64 { return 100 * asrEval.Evaluate(m) }

	// Each round is evaluated exactly once. With a flight recorder the
	// evaluation runs inside the AuditAmend hook — the record and the log
	// line below then report the same numbers; without one the loop
	// evaluates directly.
	var lastTA, lastAA float64
	evaluated := false
	if flight != nil {
		server.AuditAmend = func(a *fl.RoundAudit) {
			tav, aav := ta(server.Model), aa(server.Model)
			a.TestAccuracy, a.AttackSuccessRate = &tav, &aav
			lastTA, lastAA, evaluated = tav, aav, true
		}
	}

	logger.Info("serve: training start", "clients", len(parts), "rounds", server.Config().Rounds)
	for round := startRound; round < server.Config().Rounds; round++ {
		res := server.RoundDetail(round)
		if !evaluated {
			lastTA, lastAA = ta(server.Model), aa(server.Model)
		}
		evaluated = false
		logger.Info("serve: round done",
			"round", round,
			"ta", fmt.Sprintf("%.1f", lastTA),
			"aa", fmt.Sprintf("%.1f", lastAA),
			"dropped", len(res.Dropped),
			"applied", res.Applied)
	}

	if !*defend {
		return
	}
	logger.Info("serve: defense pipeline start")
	cfg := core.DefaultPipelineConfig()
	cfg.ReportQuorum = *quorum
	cfg.ReportTimeout = *roundTimeout
	m := server.Model.Clone()
	evalFn := metrics.NewSuffixEvaluator(validation, 0)
	rep := core.RunPipeline(m, fl.ReportClients(parts), server, evalFn, cfg)
	if len(rep.ReportDropouts) > 0 {
		logger.Warn("serve: prune reports lost", "clients", fmt.Sprint(rep.ReportDropouts))
	}
	logger.Info("serve: defense done",
		"pruned", len(rep.Prune.Pruned),
		"finetune_rounds", rep.FineTune.Rounds,
		"zeroed", rep.AW.Zeroed)
	logger.Info("serve: result",
		"ta_before", fmt.Sprintf("%.1f", ta(server.Model)),
		"ta_after", fmt.Sprintf("%.1f", ta(m)),
		"aa_before", fmt.Sprintf("%.1f", aa(server.Model)),
		"aa_after", fmt.Sprintf("%.1f", aa(m)))
}

// setupDurability installs the checkpointer (DESIGN.md §15) and, under
// -resume, restores the newest complete checkpoint, returning the first
// round the training loop should run. Resuming against an empty or
// missing directory starts fresh — the normal first boot of a durable
// deployment.
func setupDurability(server *fl.Server, logger *slog.Logger, dir string, every, folds int, resume bool) int {
	if dir == "" {
		if resume {
			fmt.Fprintln(os.Stderr, "-resume requires -checkpoint-dir")
			os.Exit(2)
		}
		return 0
	}
	server.SetCheckpointer(&fl.Checkpointer{Dir: dir, EveryRounds: every, EveryFolds: folds})
	if !resume {
		return 0
	}
	next, resumed, err := server.ResumeLatest(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resume:", err)
		os.Exit(1)
	}
	if !resumed {
		logger.Info("serve: no checkpoint found, starting fresh", "dir", dir)
		return 0
	}
	logger.Info("serve: resumed from checkpoint", "dir", dir, "next_round", next)
	return next
}
