// Command fedserve runs the federated aggregation server against remote
// fedclient processes, then (optionally) the defense pipeline — one
// federation spread across OS processes, communicating only through the
// transport protocol. Start it with the same scenario flags as the
// fedclient processes (see cmd/fedclient for a full example).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/eval"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/transport"
)

func main() {
	ds := flag.String("dataset", "mnist", "dataset: mnist, fashion or cifar")
	victim := flag.Int("victim", 9, "victim label (VL)")
	target := flag.Int("target", 2, "attack label (AL)")
	clients := flag.String("clients", "", "comma-separated client addresses, in participant-index order")
	seed := flag.Int64("seed", 0, "experiment seed (0 = scenario default)")
	defend := flag.Bool("defend", true, "run the defense pipeline after training")
	quorum := flag.Float64("quorum", 0.5, "fraction of clients that must respond for a round to apply (0 = any)")
	roundTimeout := flag.Duration("round-timeout", 5*time.Minute, "deadline for one aggregation round (0 = none)")
	retries := flag.Int("retries", 3, "attempts per remote call")
	attemptTimeout := flag.Duration("attempt-timeout", time.Minute, "deadline per remote call attempt")
	flag.Parse()

	var s eval.Scenario
	switch *ds {
	case "mnist":
		s = eval.MNISTScenario(*victim, *target)
	case "fashion":
		s = eval.FashionScenario(*victim, *target)
	case "cifar":
		s = eval.CIFARScenario(*victim, *target)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *ds)
		os.Exit(2)
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	addrs := strings.Split(*clients, ",")
	if *clients == "" || len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "-clients is required")
		os.Exit(2)
	}

	template, _, test, validation := eval.Components(s)
	retry := transport.DefaultRetryPolicy()
	retry.MaxAttempts = *retries
	retry.AttemptTimeout = *attemptTimeout
	parts := make([]fl.Participant, len(addrs))
	for i, addr := range addrs {
		parts[i] = transport.NewRemoteClient(i, strings.TrimSpace(addr),
			transport.WithRetryPolicy(retry))
	}
	// The population size follows the actually connected clients.
	s.FL.SelectPerRound = 0
	s.FL.Quorum = *quorum
	s.FL.RoundTimeout = *roundTimeout
	server := fl.NewServer(template, parts, s.FL, s.Seed+300)

	taEval := metrics.NewSuffixEvaluator(test, 0)
	asrEval := metrics.NewCachedASR(test, s.Poison, 0)
	ta := func(m *nn.Sequential) float64 { return 100 * taEval.Evaluate(m) }
	aa := func(m *nn.Sequential) float64 { return 100 * asrEval.Evaluate(m) }

	fmt.Printf("training over %d remote clients ...\n", len(parts))
	for round := 0; round < server.Config().Rounds; round++ {
		res := server.RoundDetail(round)
		status := ""
		if len(res.Dropped) > 0 {
			status = fmt.Sprintf("  dropped=%v", res.Dropped)
		}
		if !res.Applied {
			status += "  BELOW QUORUM (round discarded)"
		}
		fmt.Printf("round %2d: TA=%5.1f AA=%5.1f%s\n", round, ta(server.Model), aa(server.Model), status)
		for id, err := range res.Errs {
			fmt.Fprintf(os.Stderr, "  client %d: %v\n", id, err)
		}
	}

	if !*defend {
		return
	}
	fmt.Println("\nrunning the defense pipeline over the wire ...")
	cfg := core.DefaultPipelineConfig()
	cfg.ReportQuorum = *quorum
	cfg.ReportTimeout = *roundTimeout
	m := server.Model.Clone()
	evalFn := metrics.NewSuffixEvaluator(validation, 0)
	rep := core.RunPipeline(m, fl.ReportClients(parts), server, evalFn, cfg)
	if len(rep.ReportDropouts) > 0 {
		fmt.Printf("prune reports lost from clients %v\n", rep.ReportDropouts)
	}
	fmt.Printf("pruned %d neurons, %d fine-tune rounds, zeroed %d weights\n",
		len(rep.Prune.Pruned), rep.FineTune.Rounds, rep.AW.Zeroed)
	fmt.Printf("result: TA %.1f -> %.1f, AA %.1f -> %.1f\n",
		ta(server.Model), ta(m), aa(server.Model), aa(m))
}
