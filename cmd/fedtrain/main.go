// Command fedtrain runs one federated-training experiment with a backdoor
// attack and prints the per-round benign test accuracy (TA) and attack
// success rate (AA).
//
// Example:
//
//	fedtrain -dataset mnist -victim 9 -target 2 -attackers 1 -gamma 6
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/fedcleanse/fedcleanse/internal/eval"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
	"github.com/fedcleanse/fedcleanse/internal/profiling"
)

func main() {
	ds := flag.String("dataset", "mnist", "dataset: mnist, fashion or cifar")
	victim := flag.Int("victim", 9, "victim label (VL)")
	target := flag.Int("target", 2, "attack label (AL)")
	attackers := flag.Int("attackers", -1, "number of attackers (-1 = scenario default)")
	gamma := flag.Float64("gamma", 0, "model-replacement amplification (0 = scenario default)")
	rounds := flag.Int("rounds", 0, "training rounds (0 = scenario default)")
	seed := flag.Int64("seed", 0, "experiment seed (0 = scenario default)")
	save := flag.String("save", "", "write the trained global model snapshot to this path")
	workers := flag.Int("workers", 0, "worker goroutines for the parallel simulation paths (0 = FEDCLEANSE_WORKERS or GOMAXPROCS; 1 reproduces the serial path)")
	backendFlag := flag.String("backend", "float64", "numeric backend for model arithmetic: float64 (reference) or float32 (faster; aggregation and checkpoints stay float64)")
	prof := profiling.AddFlags()
	logf := obs.AddLogFlags()
	flag.Parse()
	if _, err := logf.Setup(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	backend, err := nn.ParseBackend(*backendFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer prof.Start()()
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	var s eval.Scenario
	switch *ds {
	case "mnist":
		s = eval.MNISTScenario(*victim, *target)
	case "fashion":
		s = eval.FashionScenario(*victim, *target)
	case "cifar":
		s = eval.CIFARScenario(*victim, *target)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *ds)
		os.Exit(2)
	}
	if *attackers >= 0 {
		s.Attackers = *attackers
	}
	if *gamma > 0 {
		s.Gamma = *gamma
	}
	if *rounds > 0 {
		s.FL.Rounds = *rounds
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	s.Backend = backend

	t := eval.Build(s)
	fmt.Printf("scenario %s: %d clients (%d attackers), %d rounds, gamma %.1f\n",
		s.Name, s.Clients, s.Attackers, s.FL.Rounds, s.Gamma)
	t.Server.Train(func(round int) {
		fmt.Printf("round %2d: TA=%5.1f AA=%5.1f\n", round, t.TA(), t.AA())
	})

	if *save != "" {
		if err := saveModel(*save, *ds, t); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved global model to %s\n", *save)
	}
}

// saveModel snapshots the trained global model.
func saveModel(path, ds string, t *eval.Trained) error {
	builder := map[string]string{"mnist": "small", "fashion": "fashion", "cifar": "minivgg"}[ds]
	in := nn.Input{C: t.Test.Shape.C, H: t.Test.Shape.H, W: t.Test.Shape.W}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nn.Save(f, builder, in, t.Test.Classes, t.Server.Model)
}
