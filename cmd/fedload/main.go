// Command fedload hosts a fleet of synthetic federated clients behind one
// listener, for load-testing the aggregation server at population scales
// no real per-process clients could reach. Each client is an
// fl.SyntheticClient — a deterministic pseudo-update generator a few
// words wide — served at /c/<id>/v1/{update,ranks,votes,accuracy} by a
// transport.Fleet, so fedserve drives the whole protocol, defense
// reports included, through ordinary RemoteClients:
//
//	fedload  -clients 10000 -listen 127.0.0.1:7100 -ops-addr 127.0.0.1:7101 &
//	fedserve -fleet 127.0.0.1:7100 -fleet-count 10000 -select 256 -streaming
//
// -ops-addr exposes /metrics with the fedload_* counters (updates served,
// bytes in/out, recovered handler panics) and the process memory gauges;
// the load-smoke CI job asserts over exactly that surface.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/transport"
)

func main() {
	clients := flag.Int("clients", 10000, "synthetic clients to host")
	listen := flag.String("listen", "127.0.0.1:0", "fleet listen address")
	opsAddr := flag.String("ops-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = off)")
	seed := flag.Int64("seed", 1, "fleet seed (decorrelates whole fleets)")
	scale := flag.Float64("scale", 0, "synthetic delta coordinate bound (0 = 1e-3)")
	quantFlag := flag.String("report-quant", "float64", "report-endpoint precision: float64 (varint ranks + vote bitmaps) or int8 (quantized Acts8 payloads)")
	versionedUpdates := flag.Bool("versioned-updates", false, "serve update responses in the versioned wire envelope instead of gob (servers sniff; safe to migrate fleets independently)")
	traceSeed := flag.Int64("trace-seed", 0, "seed for deterministic trace/span IDs (0 = unique per process)")
	logf := obs.AddLogFlags()
	flag.Parse()
	logger, err := logf.Setup(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *traceSeed != 0 {
		obs.SetTraceSeed(*traceSeed)
	}
	quant, err := metrics.ParseReportQuant(*quantFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *clients < 1 {
		fmt.Fprintln(os.Stderr, "-clients must be at least 1")
		os.Exit(2)
	}

	fleet := transport.NewFleet()
	fleet.SetReportQuant(quant)
	fleet.SetVersionedUpdates(*versionedUpdates)
	for id := 0; id < *clients; id++ {
		fleet.Add(&fl.SyntheticClient{Id: id, Seed: *seed, Scale: *scale})
	}

	if *opsAddr != "" {
		ops, err := obs.ServeOps(*opsAddr, obs.Default)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		logger.Info("fedload: ops endpoint up", "addr", ops.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = ops.Shutdown(ctx)
		}()
	}

	addr, err := fleet.Serve(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	logger.Info("fedload: fleet serving", "addr", addr, "clients", fleet.Len())
	fmt.Printf("fleet of %d clients serving on %s\n", fleet.Len(), addr)

	// Serve until interrupted or the server dies underneath us; a clean
	// Shutdown delivers nil on the error channel.
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	select {
	case <-ch:
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := fleet.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "shutdown:", err)
			os.Exit(1)
		}
		if err := <-fleet.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	case err := <-fleet.Err():
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
