// Command feddefend trains a backdoored federated model, then runs the
// paper's defense pipeline (Algorithm 1) and prints a stage-by-stage
// report.
//
// Example:
//
//	feddefend -dataset mnist -victim 9 -target 2 -mode all -method mvp
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/eval"
)

func main() {
	ds := flag.String("dataset", "mnist", "dataset: mnist, fashion or cifar")
	victim := flag.Int("victim", 9, "victim label (VL)")
	target := flag.Int("target", 2, "attack label (AL)")
	mode := flag.String("mode", "all", "defense mode: fp, aw, fp+aw or all")
	method := flag.String("method", "mvp", "pruning method: rap or mvp")
	voteRate := flag.Float64("rate", 0.5, "MVP pruning rate p")
	seed := flag.Int64("seed", 0, "experiment seed (0 = scenario default)")
	flag.Parse()

	var s eval.Scenario
	switch *ds {
	case "mnist":
		s = eval.MNISTScenario(*victim, *target)
	case "fashion":
		s = eval.FashionScenario(*victim, *target)
	case "cifar":
		s = eval.CIFARScenario(*victim, *target)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *ds)
		os.Exit(2)
	}
	if *seed != 0 {
		s.Seed = *seed
	}

	fmt.Printf("training %s ...\n", s.Name)
	t := eval.Run(s)
	fmt.Printf("after training: TA=%.1f AA=%.1f\n", t.TA(), t.AA())

	cfg := core.DefaultPipelineConfig()
	switch *method {
	case "rap":
		cfg.Method = core.RAP
	case "mvp":
		cfg.Method = core.MVP
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}
	cfg.VoteRate = *voteRate
	switch *mode {
	case "fp":
		cfg.FineTuneRounds = 0
		cfg.SkipAW = true
	case "aw":
		cfg.FineTuneRounds = 0
		cfg.SkipPrune = true
	case "fp+aw":
		cfg.FineTuneRounds = 0
	case "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	m, rep := t.Defend(cfg)
	fmt.Printf("\ndefense report (%s, %s):\n", *mode, cfg.Method)
	fmt.Printf("  target layer:        %d\n", rep.TargetLayer)
	fmt.Printf("  pruned neurons:      %d\n", len(rep.Prune.Pruned))
	fmt.Printf("  fine-tuning rounds:  %d\n", rep.FineTune.Rounds)
	fmt.Printf("  zeroed weights (AW): %d (final delta %.2f)\n", rep.AW.Zeroed, rep.AW.FinalDelta)
	fmt.Printf("  validation accuracy: before=%.3f prune=%.3f ft=%.3f final=%.3f\n",
		rep.AccBefore, rep.AccAfterPrune, rep.AccAfterFineTune, rep.AccFinal)
	fmt.Printf("\nresult: TA %.1f -> %.1f, AA %.1f -> %.1f\n",
		t.TA(), t.ModelTA(m), t.AA(), t.ModelAA(m))
}
