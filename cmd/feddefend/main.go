// Command feddefend trains a backdoored federated model, then runs the
// paper's defense pipeline (Algorithm 1) and prints a stage-by-stage
// report.
//
// Example:
//
//	feddefend -dataset mnist -victim 9 -target 2 -mode all -method mvp
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/eval"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
)

func main() {
	ds := flag.String("dataset", "mnist", "dataset: mnist, fashion or cifar")
	victim := flag.Int("victim", 9, "victim label (VL)")
	target := flag.Int("target", 2, "attack label (AL)")
	mode := flag.String("mode", "all", "defense mode: fp, aw, fp+aw or all")
	method := flag.String("method", "mvp", "pruning method: rap or mvp")
	voteRate := flag.Float64("rate", 0.5, "MVP pruning rate p")
	seed := flag.Int64("seed", 0, "experiment seed (0 = scenario default)")
	backendFlag := flag.String("backend", "float64", "numeric backend for model arithmetic: float64 (reference) or float32 (faster; aggregation and checkpoints stay float64)")
	quantFlag := flag.String("report-quant", "float64", "activation report precision: float64 (reference) or int8 (affine-quantized recording; compact wire)")
	logf := obs.AddLogFlags()
	flag.Parse()
	logger, err := logf.Setup(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	backend, err := nn.ParseBackend(*backendFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	quant, err := metrics.ParseReportQuant(*quantFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var s eval.Scenario
	switch *ds {
	case "mnist":
		s = eval.MNISTScenario(*victim, *target)
	case "fashion":
		s = eval.FashionScenario(*victim, *target)
	case "cifar":
		s = eval.CIFARScenario(*victim, *target)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *ds)
		os.Exit(2)
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	s.Backend = backend
	s.ReportQuant = quant

	logger.Info("defend: training start", "scenario", s.Name, "report_quant", quant.String())
	t := eval.Run(s)
	logger.Info("defend: training done",
		"ta", fmt.Sprintf("%.1f", t.TA()), "aa", fmt.Sprintf("%.1f", t.AA()))

	cfg := core.DefaultPipelineConfig()
	switch *method {
	case "rap":
		cfg.Method = core.RAP
	case "mvp":
		cfg.Method = core.MVP
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}
	cfg.VoteRate = *voteRate
	switch *mode {
	case "fp":
		cfg.FineTuneRounds = 0
		cfg.SkipAW = true
	case "aw":
		cfg.FineTuneRounds = 0
		cfg.SkipPrune = true
	case "fp+aw":
		cfg.FineTuneRounds = 0
	case "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	m, rep := t.Defend(cfg)
	logger.Info("defend: report",
		"mode", *mode,
		"method", fmt.Sprint(cfg.Method),
		"target_layer", rep.TargetLayer,
		"pruned", len(rep.Prune.Pruned),
		"finetune_rounds", rep.FineTune.Rounds,
		"zeroed", rep.AW.Zeroed,
		"final_delta", fmt.Sprintf("%.2f", rep.AW.FinalDelta))
	logger.Info("defend: validation accuracy",
		"before", fmt.Sprintf("%.3f", rep.AccBefore),
		"prune", fmt.Sprintf("%.3f", rep.AccAfterPrune),
		"finetune", fmt.Sprintf("%.3f", rep.AccAfterFineTune),
		"final", fmt.Sprintf("%.3f", rep.AccFinal))
	logger.Info("defend: result",
		"ta_before", fmt.Sprintf("%.1f", t.TA()),
		"ta_after", fmt.Sprintf("%.1f", t.ModelTA(m)),
		"aa_before", fmt.Sprintf("%.1f", t.AA()),
		"aa_after", fmt.Sprintf("%.1f", t.ModelAA(m)))

	obs.SampleProcess()
	fmt.Println("\nfinal metrics snapshot:")
	_ = obs.Default.WriteText(os.Stdout)
}
