// Command fedbench regenerates the tables and figures of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	fedbench -exp table1            # one experiment, reduced pair sweep
//	fedbench -exp table1 -full      # the paper's full 18-pair sweep
//	fedbench -exp all               # everything (slow)
//
// Results print as text tables/series; EXPERIMENTS.md records a captured
// run against the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/eval"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
	"github.com/fedcleanse/fedcleanse/internal/profiling"
)

func main() {
	expFlag := flag.String("exp", "all", "experiment id: table1..table7, fig3, fig5..fig10, ablation-mask, ablation-rate, ablation-aw, adaptive, or all")
	full := flag.Bool("full", false, "run the paper's full sweeps instead of the reduced defaults")
	workers := flag.Int("workers", 0, "worker goroutines for the parallel simulation paths (0 = FEDCLEANSE_WORKERS or GOMAXPROCS; 1 reproduces the serial path)")
	backendFlag := flag.String("backend", "float64", "numeric backend for model arithmetic in every experiment: float64 (reference) or float32 (faster; aggregation and checkpoints stay float64)")
	metricsJSON := flag.String("metrics-json", "", "write the final obs metrics snapshot as a JSON object to this file (join into the benchmark document via benchjson -extra)")
	prof := profiling.AddFlags()
	logf := obs.AddLogFlags()
	flag.Parse()
	if _, err := logf.Setup(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer prof.Start()()
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	backend, err := nn.ParseBackend(*backendFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	eval.SetDefaultBackend(backend)

	pairs := eval.QuickPairs()
	ninePairs := eval.QuickPairs()
	if *full {
		pairs = eval.FullPairs()
		ninePairs = eval.NinePairs()
	}

	run := func(id string, f func()) {
		if *expFlag != "all" && *expFlag != id {
			return
		}
		start := time.Now()
		f()
		fmt.Printf("[%s done in %.1fs]\n\n", id, time.Since(start).Seconds())
	}

	run("table1", func() { fmt.Print(eval.TableI(pairs).Render()) })
	run("table2", func() { fmt.Print(eval.TableII(ninePairs).Render()) })
	run("table3", func() { fmt.Print(eval.TableIII(ninePairs).Render()) })
	run("table4", func() { fmt.Print(eval.TableIV(eval.Pair{VL: 9, AL: 2}).Render()) })
	run("table5", func() { fmt.Print(eval.TableV(pairs).Render()) })
	run("table6", func() { fmt.Print(eval.TableVI(eval.QuickPairs()).Render()) })
	run("table7", func() { fmt.Print(eval.TableVII([]int{1, 3, 5, 7, 9}).Render()) })
	run("fig3", func() { fmt.Print(eval.Fig3([]int{3, 5, 7}).Render()) })
	run("fig5", func() { fmt.Print(eval.Fig5([]int{0, 2}).Render()) })
	run("fig6", func() {
		fmt.Print(eval.Fig6([]int{0, 2}, []float64{5, 4, 3, 2.5, 2, 1.5, 1}).Render())
	})
	run("fig7", func() {
		sel := []int{5, 15, 25}
		if *full {
			sel = []int{5, 10, 15, 20, 25}
		}
		fmt.Print(eval.Fig7(sel).Render())
	})
	run("fig8", func() {
		counts := []int{1, 3, 6, 9}
		if *full {
			counts = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
		}
		fmt.Print(eval.Fig8(counts).Render())
	})
	run("fig9", func() { fmt.Print(eval.RenderTimings(eval.Fig9())) })
	run("fig10", func() { fmt.Print(eval.Fig10([]float64{0, 0.01, 0.05}).Render()) })
	run("ablation-mask", func() { fmt.Print(eval.AblationMaskedPruning(eval.Pair{VL: 9, AL: 2}).Render()) })
	run("ablation-rate", func() {
		fmt.Print(eval.AblationVoteRate(eval.Pair{VL: 9, AL: 2}, []float64{0.1, 0.3, 0.5, 0.7, 0.9}).Render())
	})
	run("ablation-aw", func() { fmt.Print(eval.AblationAWLayers(eval.Pair{VL: 9, AL: 2}).Render()) })
	run("adaptive", func() { fmt.Print(eval.AdaptiveAttackTable(eval.Pair{VL: 9, AL: 2}).Render()) })

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	if *metricsJSON != "" {
		if err := writeMetrics(*metricsJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics snapshot to %s\n", *metricsJSON)
	}
}

// writeMetrics dumps the accumulated obs registry — round counts, stage
// latencies and so on across every experiment run — under a top-level
// "metrics" key, the shape benchjson -extra merges into its document.
func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteString(`{"metrics":`); err != nil {
		return err
	}
	if err := obs.Default.WriteJSON(f); err != nil {
		return err
	}
	_, err = f.WriteString("}\n")
	return err
}
