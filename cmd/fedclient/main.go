// Command fedclient runs one federated participant as a standalone
// process, serving the transport protocol over HTTP. All processes of a
// federation must be started with the same scenario flags (dataset,
// victim, target, seed, population sizes); each derives its own shard
// deterministically from the shared seed, so no data ever crosses the
// wire.
//
// Example (one attacker and two honest clients on loopback):
//
//	fedclient -index 0 -listen 127.0.0.1:7001 &
//	fedclient -index 1 -listen 127.0.0.1:7002 &
//	fedclient -index 2 -listen 127.0.0.1:7003 &
//	fedserve -clients 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/eval"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/transport"
)

func main() {
	ds := flag.String("dataset", "mnist", "dataset: mnist, fashion or cifar")
	victim := flag.Int("victim", 9, "victim label (VL)")
	target := flag.Int("target", 2, "attack label (AL)")
	index := flag.Int("index", 0, "this participant's index in the population")
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	seed := flag.Int64("seed", 0, "experiment seed (0 = scenario default)")
	quantFlag := flag.String("report-quant", "float64", "activation report precision: float64 (reference) or int8 (quantized recording; ships Acts8 payloads)")
	versionedUpdates := flag.Bool("versioned-updates", false, "serve update responses in the versioned wire envelope instead of gob (servers sniff; safe to migrate one client at a time)")
	traceSeed := flag.Int64("trace-seed", 0, "seed for deterministic trace/span IDs (0 = unique per process)")
	logf := obs.AddLogFlags()
	flag.Parse()
	if _, err := logf.Setup(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *traceSeed != 0 {
		obs.SetTraceSeed(*traceSeed)
	}
	quant, err := metrics.ParseReportQuant(*quantFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	s, ok := scenarioByName(*ds, *victim, *target)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *ds)
		os.Exit(2)
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	s.ReportQuant = quant
	if *index < 0 || *index >= s.Clients {
		fmt.Fprintf(os.Stderr, "index %d outside population of %d\n", *index, s.Clients)
		os.Exit(2)
	}

	template, shards, _, _ := eval.Components(s)
	part := eval.ParticipantFor(s, *index, template, shards[*index])
	full, ok := part.(interface {
		fl.Participant
		core.ReportClient
		core.AccuracyReporter
	})
	if !ok {
		fmt.Fprintln(os.Stderr, "participant does not implement the transport surface")
		os.Exit(1)
	}
	cs := transport.NewClientServer(full, template)
	cs.SetReportQuant(quant)
	cs.SetVersionedUpdates(*versionedUpdates)
	addr, err := cs.Serve(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	role := "honest client"
	if *index < s.Attackers {
		role = "ATTACKER"
	}
	fmt.Printf("participant %d (%s) serving on %s\n", *index, role, addr)
	obs.SampleProcess()
	defer func() {
		obs.SampleProcess()
		fmt.Fprintln(os.Stderr, "\nfinal metrics snapshot:")
		_ = obs.Default.WriteText(os.Stderr)
	}()

	// Serve until interrupted or the server dies underneath us; a clean
	// Shutdown delivers nil on the error channel.
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	select {
	case <-ch:
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := cs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "shutdown:", err)
			os.Exit(1)
		}
		if err := <-cs.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	case err := <-cs.Err():
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// scenarioByName maps a CLI dataset name to its scenario.
func scenarioByName(name string, victim, target int) (eval.Scenario, bool) {
	switch name {
	case "mnist":
		return eval.MNISTScenario(victim, target), true
	case "fashion":
		return eval.FashionScenario(victim, target), true
	case "cifar":
		return eval.CIFARScenario(victim, target), true
	default:
		return eval.Scenario{}, false
	}
}
