// Command benchjson converts `go test -bench -benchmem` text output into a
// machine-readable JSON document, optionally joining a baseline capture so
// regressions (time or allocations) are a jq expression away instead of a
// manual diff of two terminal logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH.json
//	benchjson -in current.txt -baseline bench_baseline_pr2.txt -o BENCH.json
//
// Every benchmark line becomes one record with ns/op, B/op and allocs/op.
// With -baseline, records carry the baseline numbers plus the ratios
// current/baseline (speedup < 1 means faster, alloc_ratio < 1 means fewer
// allocations). CI uploads the document next to the bench smoke log.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark measurement.
type Result struct {
	Name        string   `json:"name"`
	Procs       int      `json:"procs,omitempty"`
	Runs        int      `json:"runs"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  float64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Record is one output entry: the current measurement, optionally joined
// with its baseline.
type Record struct {
	Result
	Baseline   *Result  `json:"baseline,omitempty"`
	Speedup    *float64 `json:"time_ratio,omitempty"`
	AllocRatio *float64 `json:"alloc_ratio,omitempty"`
}

// Document is the top-level JSON structure.
type Document struct {
	Note       string   `json:"note"`
	Benchmarks []Record `json:"benchmarks"`
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
//
//	BenchmarkTrainStep-8   20   11695956 ns/op   8063226 B/op   1009 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	in := flag.String("in", "-", "bench output to parse (- = stdin)")
	baseline := flag.String("baseline", "", "optional baseline bench output to join by benchmark name")
	extra := flag.String("extra", "", "optional JSON object file (e.g. a fedbench -metrics-json snapshot) whose top-level keys are merged into the output document; keys unknown to benchjson pass through unchanged")
	out := flag.String("o", "-", "output path (- = stdout)")
	gate := flag.String("gate", "", "regexp of benchmark names that must be present, have a baseline and stay within -fail-above; exit 1 otherwise")
	failAbove := flag.Float64("fail-above", 1.25, "maximum allowed time_ratio (current/baseline ns/op) for gated benchmarks")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	cur, err := parseFile(*in)
	if err != nil {
		fatal(err)
	}
	if len(cur) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines in %s", *in))
	}
	doc := Document{Note: "ratios are current/baseline: < 1 means faster / fewer allocations"}
	var base map[string]Result
	if *baseline != "" {
		bs, err := parseFile(*baseline)
		if err != nil {
			fatal(err)
		}
		base = make(map[string]Result, len(bs))
		for _, b := range bs {
			base[b.Name] = b
		}
	}
	for _, c := range cur {
		r := Record{Result: c}
		if b, ok := base[c.Name]; ok {
			bc := b
			r.Baseline = &bc
			if b.NsPerOp > 0 {
				v := c.NsPerOp / b.NsPerOp
				r.Speedup = &v
			}
			if b.AllocsPerOp != nil && c.AllocsPerOp != nil && *b.AllocsPerOp > 0 {
				v := *c.AllocsPerOp / *b.AllocsPerOp
				r.AllocRatio = &v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}

	var extraJSON []byte
	if *extra != "" {
		b, err := os.ReadFile(*extra)
		if err != nil {
			fatal(err)
		}
		extraJSON = b
	}
	buf, err := renderDoc(doc, extraJSON)
	if err != nil {
		fatal(err)
	}
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	// The gate runs after the document is written, so a failing run still
	// leaves the full JSON behind for the CI artifact.
	if *gate != "" {
		if err := gateCheck(doc, *gate, *failAbove); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate %q passed (time_ratio <= %.2f)\n", *gate, *failAbove)
	}
}

// gateCheck is the perf-regression gate: every benchmark matching pattern
// must appear in the document, carry a joined baseline, and keep its
// time_ratio at or under failAbove. A missing gated benchmark fails — a
// gate that silently matches nothing protects nothing.
func gateCheck(doc Document, pattern string, failAbove float64) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("benchjson: bad -gate pattern: %w", err)
	}
	matched := 0
	var violations []string
	for _, r := range doc.Benchmarks {
		if !re.MatchString(r.Name) {
			continue
		}
		matched++
		switch {
		case r.Speedup == nil:
			violations = append(violations, fmt.Sprintf("%s: no baseline to gate against", r.Name))
		case *r.Speedup > failAbove:
			violations = append(violations, fmt.Sprintf("%s: time_ratio %.3f exceeds %.2f (%.0f ns/op vs baseline %.0f)",
				r.Name, *r.Speedup, failAbove, r.NsPerOp, r.Baseline.NsPerOp))
		}
	}
	if matched == 0 {
		return fmt.Errorf("benchjson: gate %q matched no benchmarks", pattern)
	}
	if len(violations) > 0 {
		return fmt.Errorf("benchjson: performance gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}

// renderDoc marshals the document, merging in the top-level keys of the
// optional extra JSON object. Keys benchjson does not know about pass
// through unchanged; on collision the document's own fields win, so an
// extra file cannot silently replace the benchmark records. Output key
// order is encoding/json's sorted map order, hence deterministic.
func renderDoc(doc Document, extraJSON []byte) ([]byte, error) {
	merged := make(map[string]json.RawMessage)
	if len(extraJSON) > 0 {
		if err := json.Unmarshal(extraJSON, &merged); err != nil {
			return nil, fmt.Errorf("benchjson: -extra is not a JSON object: %w", err)
		}
	}
	own, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(own, &merged); err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// parseFile reads bench output from path ("-" = stdin) and returns every
// benchmark measurement found, in input order.
func parseFile(path string) ([]Result, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return Parse(r)
}

// Parse extracts benchmark results from go test -bench output.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		res := Result{Name: m[1]}
		res.Procs = atoi(m[2])
		res.Runs = atoi(m[3])
		res.NsPerOp = atof(m[4])
		if m[5] != "" {
			res.BytesPerOp = atof(m[5])
		}
		if m[6] != "" {
			a := atof(m[6])
			res.AllocsPerOp = &a
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func atoi(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

func atof(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
