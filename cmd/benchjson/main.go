// Command benchjson converts `go test -bench -benchmem` text output into a
// machine-readable JSON document, optionally joining a baseline capture so
// regressions (time or allocations) are a jq expression away instead of a
// manual diff of two terminal logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH.json
//	benchjson -in current.txt -baseline bench_baseline_pr2.txt -o BENCH.json
//
// Every benchmark line becomes one record with ns/op, B/op and allocs/op;
// custom b.ReportMetric units (e.g. report-bytes/op) land in "extra".
// With -baseline, records carry the baseline numbers plus the ratios
// current/baseline (speedup < 1 means faster, alloc_ratio < 1 means fewer
// allocations). CI uploads the document next to the bench smoke log.
//
// Two gates guard regressions: -gate bounds time_ratio against the joined
// baseline, and the repeatable -metric-gate bounds any absolute metric,
// e.g. -metric-gate 'report-bytes/op:ReportBytes/int8:max:700'.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark measurement. Extra holds custom
// b.ReportMetric units keyed by unit string.
type Result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Record is one output entry: the current measurement, optionally joined
// with its baseline.
type Record struct {
	Result
	Baseline   *Result  `json:"baseline,omitempty"`
	Speedup    *float64 `json:"time_ratio,omitempty"`
	AllocRatio *float64 `json:"alloc_ratio,omitempty"`
}

// Document is the top-level JSON structure.
type Document struct {
	Note       string   `json:"note"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "-", "bench output to parse (- = stdin)")
	baseline := flag.String("baseline", "", "optional baseline bench output to join by benchmark name")
	extra := flag.String("extra", "", "optional JSON object file (e.g. a fedbench -metrics-json snapshot) whose top-level keys are merged into the output document; keys unknown to benchjson pass through unchanged")
	out := flag.String("o", "-", "output path (- = stdout)")
	gate := flag.String("gate", "", "regexp of benchmark names that must be present, have a baseline and stay within -fail-above; exit 1 otherwise")
	failAbove := flag.Float64("fail-above", 1.25, "maximum allowed time_ratio (current/baseline ns/op) for gated benchmarks")
	var metricGates gateList
	flag.Var(&metricGates, "metric-gate", "absolute metric gate 'unit:name-regexp:op:bound' with op min|max, e.g. 'report-bytes/op:ReportBytes/int8:max:700'; repeatable, every match must satisfy the bound and at least one benchmark must match")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	cur, err := parseFile(*in)
	if err != nil {
		fatal(err)
	}
	if len(cur) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines in %s", *in))
	}
	doc := Document{Note: "ratios are current/baseline: < 1 means faster / fewer allocations"}
	var base map[string]Result
	if *baseline != "" {
		bs, err := parseFile(*baseline)
		if err != nil {
			fatal(err)
		}
		base = make(map[string]Result, len(bs))
		for _, b := range bs {
			base[b.Name] = b
		}
	}
	for _, c := range cur {
		r := Record{Result: c}
		if b, ok := base[c.Name]; ok {
			bc := b
			r.Baseline = &bc
			if b.NsPerOp > 0 {
				v := c.NsPerOp / b.NsPerOp
				r.Speedup = &v
			}
			if b.AllocsPerOp != nil && c.AllocsPerOp != nil && *b.AllocsPerOp > 0 {
				v := *c.AllocsPerOp / *b.AllocsPerOp
				r.AllocRatio = &v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}

	var extraJSON []byte
	if *extra != "" {
		b, err := os.ReadFile(*extra)
		if err != nil {
			fatal(err)
		}
		extraJSON = b
	}
	buf, err := renderDoc(doc, extraJSON)
	if err != nil {
		fatal(err)
	}
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	// The gate runs after the document is written, so a failing run still
	// leaves the full JSON behind for the CI artifact.
	if *gate != "" {
		if err := gateCheck(doc, *gate, *failAbove); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate %q passed (time_ratio <= %.2f)\n", *gate, *failAbove)
	}
	for _, spec := range metricGates {
		g, err := parseMetricGate(spec)
		if err != nil {
			fatal(err)
		}
		if err := metricGateCheck(doc, g); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: metric gate %q passed\n", spec)
	}
}

// gateList collects repeated -metric-gate flags.
type gateList []string

func (g *gateList) String() string     { return strings.Join(*g, ",") }
func (g *gateList) Set(s string) error { *g = append(*g, s); return nil }

// metricGate bounds an absolute metric value on matching benchmarks:
// op "max" caps it (byte budgets), op "min" floors it (shrink factors).
type metricGate struct {
	unit    string
	pattern *regexp.Regexp
	op      string
	bound   float64
}

// parseMetricGate parses 'unit:name-regexp:op:bound'. The unit ends at
// the first colon and op:bound are the last two segments, so the name
// regexp in between may itself contain colons.
func parseMetricGate(spec string) (metricGate, error) {
	bad := func(msg string) (metricGate, error) {
		return metricGate{}, fmt.Errorf("benchjson: -metric-gate %q: %s (want 'unit:name-regexp:op:bound')", spec, msg)
	}
	unit, rest, ok := strings.Cut(spec, ":")
	if !ok || unit == "" {
		return bad("missing unit")
	}
	iBound := strings.LastIndex(rest, ":")
	if iBound <= 0 {
		return bad("missing op and bound")
	}
	iOp := strings.LastIndex(rest[:iBound], ":")
	if iOp <= 0 {
		return bad("missing op")
	}
	g := metricGate{unit: unit, op: rest[iOp+1 : iBound]}
	if g.op != "min" && g.op != "max" {
		return bad(fmt.Sprintf("op %q is not min or max", g.op))
	}
	bound, err := strconv.ParseFloat(rest[iBound+1:], 64)
	if err != nil {
		return bad("bound is not a number")
	}
	g.bound = bound
	re, err := regexp.Compile(rest[:iOp])
	if err != nil {
		return bad(err.Error())
	}
	g.pattern = re
	return g, nil
}

// metric returns the named measurement of one benchmark record: the three
// standard units by field, anything else from Extra.
func (r Result) metric(unit string) (float64, bool) {
	switch unit {
	case "ns/op":
		return r.NsPerOp, true
	case "B/op":
		return r.BytesPerOp, true
	case "allocs/op":
		if r.AllocsPerOp == nil {
			return 0, false
		}
		return *r.AllocsPerOp, true
	default:
		v, ok := r.Extra[unit]
		return v, ok
	}
}

// metricGateCheck enforces one absolute metric gate. Like gateCheck, a
// gate that matches no benchmark — or matches one that never reported the
// metric — fails, so a renamed benchmark cannot silently disarm it.
func metricGateCheck(doc Document, g metricGate) error {
	matched := 0
	var violations []string
	for _, r := range doc.Benchmarks {
		if !g.pattern.MatchString(r.Name) {
			continue
		}
		matched++
		v, ok := r.metric(g.unit)
		switch {
		case !ok:
			violations = append(violations, fmt.Sprintf("%s: did not report %s", r.Name, g.unit))
		case g.op == "max" && v > g.bound:
			violations = append(violations, fmt.Sprintf("%s: %s = %g exceeds max %g", r.Name, g.unit, v, g.bound))
		case g.op == "min" && v < g.bound:
			violations = append(violations, fmt.Sprintf("%s: %s = %g below min %g", r.Name, g.unit, v, g.bound))
		}
	}
	if matched == 0 {
		return fmt.Errorf("benchjson: metric gate %q matched no benchmarks", g.pattern)
	}
	if len(violations) > 0 {
		return fmt.Errorf("benchjson: metric gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}

// gateCheck is the perf-regression gate: every benchmark matching pattern
// must appear in the document, carry a joined baseline, and keep its
// time_ratio at or under failAbove. A missing gated benchmark fails — a
// gate that silently matches nothing protects nothing.
func gateCheck(doc Document, pattern string, failAbove float64) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("benchjson: bad -gate pattern: %w", err)
	}
	matched := 0
	var violations []string
	for _, r := range doc.Benchmarks {
		if !re.MatchString(r.Name) {
			continue
		}
		matched++
		switch {
		case r.Speedup == nil:
			violations = append(violations, fmt.Sprintf("%s: no baseline to gate against", r.Name))
		case *r.Speedup > failAbove:
			violations = append(violations, fmt.Sprintf("%s: time_ratio %.3f exceeds %.2f (%.0f ns/op vs baseline %.0f)",
				r.Name, *r.Speedup, failAbove, r.NsPerOp, r.Baseline.NsPerOp))
		}
	}
	if matched == 0 {
		return fmt.Errorf("benchjson: gate %q matched no benchmarks", pattern)
	}
	if len(violations) > 0 {
		return fmt.Errorf("benchjson: performance gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}

// renderDoc marshals the document, merging in the top-level keys of the
// optional extra JSON object. Keys benchjson does not know about pass
// through unchanged; on collision the document's own fields win, so an
// extra file cannot silently replace the benchmark records. Output key
// order is encoding/json's sorted map order, hence deterministic.
func renderDoc(doc Document, extraJSON []byte) ([]byte, error) {
	merged := make(map[string]json.RawMessage)
	if len(extraJSON) > 0 {
		if err := json.Unmarshal(extraJSON, &merged); err != nil {
			return nil, fmt.Errorf("benchjson: -extra is not a JSON object: %w", err)
		}
	}
	own, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(own, &merged); err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// parseFile reads bench output from path ("-" = stdin) and returns every
// benchmark measurement found, in input order.
func parseFile(path string) ([]Result, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return Parse(r)
}

// Parse extracts benchmark results from go test -bench output. The
// measurement fields of a result line come in (value, unit) pairs after
// the name and run count — ns/op, MB/s, B/op, allocs/op and any custom
// b.ReportMetric unit, in whatever order the testing package emits them —
// so the parser tokenizes pairwise instead of pattern-matching a fixed
// column layout. Unknown units are preserved under Extra.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		runs, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		res := Result{Runs: runs}
		res.Name, res.Procs = splitProcs(fields[0])
		sawNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // not a measurement pair; rest of line is noise
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
				sawNs = true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				a := v
				res.AllocsPerOp = &a
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = v
			}
		}
		if !sawNs {
			continue
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// splitProcs strips the trailing -GOMAXPROCS suffix the testing package
// appends to benchmark names. Benchmark names must not themselves end in
// -<digits>, or the suffix is ambiguous — ours don't.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 0
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return name, 0
	}
	return name[:i], procs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
