package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/fedcleanse/fedcleanse/internal/nn
BenchmarkTrainStep-8   	      20	  11695956 ns/op	 8063226 B/op	    1009 allocs/op
BenchmarkConv2DForward 	     100	    923456 ns/op
BenchmarkMatMul16x144x64-8	 5000	      3456 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	github.com/fedcleanse/fedcleanse/internal/nn	2.1s
`

func TestParse(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}
	ts := rs[0]
	if ts.Name != "BenchmarkTrainStep" || ts.Procs != 8 || ts.Runs != 20 {
		t.Fatalf("train-step header parsed as %+v", ts)
	}
	if ts.NsPerOp != 11695956 || ts.BytesPerOp != 8063226 {
		t.Fatalf("train-step metrics parsed as %+v", ts)
	}
	if ts.AllocsPerOp == nil || *ts.AllocsPerOp != 1009 {
		t.Fatalf("train-step allocs parsed as %+v", ts.AllocsPerOp)
	}
	if cf := rs[1]; cf.Procs != 0 || cf.AllocsPerOp != nil {
		t.Fatalf("no-benchmem line parsed as %+v", cf)
	}
	// A measured 0 allocs/op must be present (not omitted as missing).
	if mm := rs[2]; mm.AllocsPerOp == nil || *mm.AllocsPerOp != 0 {
		t.Fatalf("zero-alloc line parsed as %+v", mm.AllocsPerOp)
	}
}

// Custom b.ReportMetric units land in Extra regardless of where the
// testing package places them on the line, and MB/s is preserved too.
func TestParseCustomMetrics(t *testing.T) {
	const line = "BenchmarkReportBytes/int8-8  \t     100\t      1183 ns/op\t 505.40 MB/s\t       598.0 report-bytes/op\t         6.967 shrink-vs-float64\t       0 B/op\t       0 allocs/op\n"
	rs, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("parsed %d results, want 1", len(rs))
	}
	r := rs[0]
	if r.Name != "BenchmarkReportBytes/int8" || r.Procs != 8 || r.Runs != 100 {
		t.Fatalf("header parsed as %+v", r)
	}
	if r.NsPerOp != 1183 || r.BytesPerOp != 0 || r.AllocsPerOp == nil || *r.AllocsPerOp != 0 {
		t.Fatalf("standard units parsed as %+v", r)
	}
	want := map[string]float64{"MB/s": 505.40, "report-bytes/op": 598, "shrink-vs-float64": 6.967}
	for unit, v := range want {
		if r.Extra[unit] != v {
			t.Errorf("Extra[%q] = %v, want %v", unit, r.Extra[unit], v)
		}
	}
	if len(r.Extra) != len(want) {
		t.Errorf("Extra = %v, want exactly %v", r.Extra, want)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	rs, err := Parse(strings.NewReader("PASS\nok\ttoto 1s\n--- BENCH: x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("parsed %d results from noise, want 0", len(rs))
	}
}

func sampleDoc() Document {
	a := 3.0
	return Document{
		Note: "n",
		Benchmarks: []Record{
			{Result: Result{Name: "BenchmarkX", Runs: 10, NsPerOp: 100, AllocsPerOp: &a}},
		},
	}
}

// Top-level keys of the -extra object that benchjson does not know about
// (here a fedbench metrics snapshot) must survive into the output
// unchanged.
func TestRenderDocExtraPassthrough(t *testing.T) {
	extra := []byte(`{"metrics":{"counters":{"fl_rounds_total":12}},"run_id":"abc"}`)
	buf, err := renderDoc(sampleDoc(), extra)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf)
	}
	for _, key := range []string{"note", "benchmarks", "metrics", "run_id"} {
		if _, ok := got[key]; !ok {
			t.Errorf("output missing key %q", key)
		}
	}
	var metrics struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(got["metrics"], &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Counters["fl_rounds_total"] != 12 {
		t.Errorf("metrics passthrough mangled: %s", got["metrics"])
	}
}

// On key collision the document's own fields win — an extra file cannot
// silently replace the benchmark records.
func TestRenderDocExtraCollision(t *testing.T) {
	extra := []byte(`{"note":"evil","benchmarks":[]}`)
	buf, err := renderDoc(sampleDoc(), extra)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Note       string   `json:"note"`
		Benchmarks []Record `json:"benchmarks"`
	}
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Note != "n" {
		t.Errorf("note = %q, want the document's own %q", got.Note, "n")
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].Name != "BenchmarkX" {
		t.Errorf("benchmarks overridden by -extra: %+v", got.Benchmarks)
	}
}

func TestRenderDocNoExtra(t *testing.T) {
	buf, err := renderDoc(sampleDoc(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("output has %d keys, want exactly note+benchmarks", len(got))
	}
}

func TestRenderDocBadExtra(t *testing.T) {
	if _, err := renderDoc(sampleDoc(), []byte(`[1,2,3]`)); err == nil {
		t.Fatal("non-object -extra accepted")
	}
}

// gateDoc builds a document with one gated benchmark at the given ratio
// (nil means no baseline was joined).
func gateDoc(name string, ratio *float64) Document {
	r := Record{Result: Result{Name: name, NsPerOp: 100}}
	if ratio != nil {
		r.Baseline = &Result{Name: name, NsPerOp: 100 / *ratio}
		r.Speedup = ratio
	}
	return Document{Benchmarks: []Record{r}}
}

func TestGateCheck(t *testing.T) {
	ok, slow := 1.1, 1.6
	cases := []struct {
		name    string
		doc     Document
		pattern string
		wantErr bool
	}{
		{"within threshold", gateDoc("BenchmarkPruneSweep", &ok), "BenchmarkPruneSweep", false},
		{"regression", gateDoc("BenchmarkPruneSweep", &slow), "BenchmarkPruneSweep", true},
		{"gated benchmark missing", gateDoc("BenchmarkOther", &ok), "BenchmarkPruneSweep", true},
		{"no baseline joined", gateDoc("BenchmarkPruneSweep", nil), "BenchmarkPruneSweep", true},
		{"bad pattern", gateDoc("BenchmarkPruneSweep", &ok), "(", true},
		{"ungated benchmarks ignored", Document{Benchmarks: []Record{
			gateDoc("BenchmarkPruneSweep", &ok).Benchmarks[0],
			gateDoc("BenchmarkUnrelated", &slow).Benchmarks[0],
		}}, "BenchmarkPruneSweep", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := gateCheck(tc.doc, tc.pattern, 1.25)
			if (err != nil) != tc.wantErr {
				t.Fatalf("gateCheck err = %v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

func TestParseMetricGate(t *testing.T) {
	g, err := parseMetricGate("report-bytes/op:ReportBytes/int8:max:700")
	if err != nil {
		t.Fatal(err)
	}
	if g.unit != "report-bytes/op" || g.op != "max" || g.bound != 700 ||
		!g.pattern.MatchString("BenchmarkReportBytes/int8") {
		t.Fatalf("parsed as %+v", g)
	}
	// The name regexp may itself contain colons: unit stops at the first
	// colon, op and bound are the last two segments.
	g, err = parseMetricGate("x:a[0:2]b:min:1.5")
	if err != nil {
		t.Fatal(err)
	}
	if g.unit != "x" || g.pattern.String() != "a[0:2]b" || g.op != "min" || g.bound != 1.5 {
		t.Fatalf("colon-bearing regexp parsed as %+v", g)
	}
	for _, bad := range []string{
		"", "no-colons", "unit:pattern", "unit:pattern:max",
		"unit:pattern:between:7", "unit:pattern:max:tall", "unit:(:max:7",
	} {
		if _, err := parseMetricGate(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestMetricGateCheck(t *testing.T) {
	alloc := 3.0
	doc := Document{Benchmarks: []Record{
		{Result: Result{Name: "BenchmarkReportBytes/int8", NsPerOp: 1183, AllocsPerOp: &alloc,
			Extra: map[string]float64{"report-bytes/op": 598, "shrink-vs-float64": 6.967}}},
		{Result: Result{Name: "BenchmarkReportBytes/gob", NsPerOp: 19665,
			Extra: map[string]float64{"report-bytes/op": 1994}}},
	}}
	cases := []struct {
		name    string
		spec    string
		wantErr bool
	}{
		{"max within bound", "report-bytes/op:ReportBytes/int8:max:700", false},
		{"max exceeded", "report-bytes/op:ReportBytes/gob:max:700", true},
		{"min satisfied", "shrink-vs-float64:ReportBytes/int8:min:6", false},
		{"min violated", "shrink-vs-float64:ReportBytes/int8:min:8", true},
		{"standard unit", "ns/op:ReportBytes/int8:max:2000", false},
		{"allocs unit", "allocs/op:ReportBytes/int8:max:3", false},
		{"metric missing on match", "allocs/op:ReportBytes/gob:max:3", true},
		{"no benchmark matches", "report-bytes/op:NoSuchBench:max:700", true},
		{"every match must pass", "report-bytes/op:ReportBytes:max:700", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := parseMetricGate(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			err = metricGateCheck(doc, g)
			if (err != nil) != tc.wantErr {
				t.Fatalf("metricGateCheck err = %v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}
