package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/fedcleanse/fedcleanse/internal/nn
BenchmarkTrainStep-8   	      20	  11695956 ns/op	 8063226 B/op	    1009 allocs/op
BenchmarkConv2DForward 	     100	    923456 ns/op
BenchmarkMatMul16x144x64-8	 5000	      3456 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	github.com/fedcleanse/fedcleanse/internal/nn	2.1s
`

func TestParse(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}
	ts := rs[0]
	if ts.Name != "BenchmarkTrainStep" || ts.Procs != 8 || ts.Runs != 20 {
		t.Fatalf("train-step header parsed as %+v", ts)
	}
	if ts.NsPerOp != 11695956 || ts.BytesPerOp != 8063226 {
		t.Fatalf("train-step metrics parsed as %+v", ts)
	}
	if ts.AllocsPerOp == nil || *ts.AllocsPerOp != 1009 {
		t.Fatalf("train-step allocs parsed as %+v", ts.AllocsPerOp)
	}
	if cf := rs[1]; cf.Procs != 0 || cf.AllocsPerOp != nil {
		t.Fatalf("no-benchmem line parsed as %+v", cf)
	}
	// A measured 0 allocs/op must be present (not omitted as missing).
	if mm := rs[2]; mm.AllocsPerOp == nil || *mm.AllocsPerOp != 0 {
		t.Fatalf("zero-alloc line parsed as %+v", mm.AllocsPerOp)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	rs, err := Parse(strings.NewReader("PASS\nok\ttoto 1s\n--- BENCH: x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("parsed %d results from noise, want 0", len(rs))
	}
}
