// Command fedviz renders PNGs of the synthetic datasets and backdoor
// triggers: a class-sample grid, clean-vs-triggered comparisons, and (via
// -weights) a weight histogram of a trained model's last conv layer.
//
// Example:
//
//	fedviz -dataset mnist -out mnist.png
//	fedviz -dataset cifar -triggers -out cifar_triggers.png
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/eval"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/viz"
)

func main() {
	ds := flag.String("dataset", "mnist", "dataset: mnist, fashion or cifar")
	out := flag.String("out", "samples.png", "output PNG path")
	triggers := flag.Bool("triggers", false, "render clean-vs-triggered pairs instead of a class grid")
	weights := flag.Bool("weights", false, "render a weight histogram of a freshly trained model's last conv layer")
	pixels := flag.Int("pixels", 3, "trigger pattern size for -triggers (1,3,5,7,9)")
	seed := flag.Int64("seed", 1, "generation seed")
	logf := obs.AddLogFlags()
	flag.Parse()
	if _, err := logf.Setup(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	gen, ok := dataset.GenByName(*ds)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *ds)
		os.Exit(2)
	}
	train, _ := gen(dataset.GenConfig{TrainPerClass: 10, TestPerClass: 1, Seed: *seed})

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	switch {
	case *weights:
		s := eval.MNISTScenario(9, 2)
		if *ds != "mnist" {
			fmt.Fprintln(os.Stderr, "-weights currently renders the mnist scenario")
		}
		t := eval.Run(s)
		li := t.Server.Model.LastConvIndex()
		conv := t.Server.Model.Layer(li).(*nn.Conv2D)
		img := viz.Histogram(conv.W.Value.Data, 60, 600, 200)
		if err := viz.WritePNG(f, img); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *triggers:
		trig := dataset.PixelPattern(*pixels, train.Shape)
		if *ds == "cifar" {
			trig = dataset.DBAGlobalPattern(train.Shape)
		}
		// One sample per class, each with its triggered twin.
		byLabel := train.ByLabel()
		var samples []dataset.Sample
		for _, idxs := range byLabel {
			if len(idxs) > 0 {
				samples = append(samples, train.Samples[idxs[0]])
			}
		}
		img := viz.TriggerComparison(samples, train.Shape, trig)
		if err := viz.WritePNG(f, img); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		// A grid with one row per class.
		byLabel := train.ByLabel()
		var samples []dataset.Sample
		const perRow = 8
		for _, idxs := range byLabel {
			for i := 0; i < perRow && i < len(idxs); i++ {
				samples = append(samples, train.Samples[idxs[i]])
			}
		}
		img := viz.Grid(samples, train.Shape, perRow)
		if err := viz.WritePNG(f, img); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %s\n", *out)
}
