// Benchmarks regenerating every table and figure of the paper's
// evaluation section at a reduced scale (one or two settings each; the
// full sweeps are produced by cmd/fedbench, optionally with -full).
// DESIGN.md §4 maps each benchmark to the paper artifact it reproduces,
// and EXPERIMENTS.md records a captured run against the paper's numbers.
//
// Each benchmark iteration performs a complete experiment (federated
// training under attack plus the relevant defense or measurement), so
// ns/op is the end-to-end cost of regenerating that artifact.
package fedcleanse

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/eval"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// benchSink prevents dead-code elimination of experiment results.
var benchSink any

// onePair keeps the default bench cost bounded: a single backdoor task.
var onePair = []eval.Pair{{VL: 9, AL: 2}}

func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = eval.TableI(onePair)
	}
}

func BenchmarkTableII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = eval.TableII(onePair)
	}
}

func BenchmarkTableIII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = eval.TableIII(onePair)
	}
}

func BenchmarkTableIV(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = eval.TableIV(eval.Pair{VL: 9, AL: 2})
	}
}

func BenchmarkTableV(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = eval.TableV(onePair)
	}
}

func BenchmarkTableVI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = eval.TableVI(onePair)
	}
}

func BenchmarkTableVII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = eval.TableVII([]int{1, 9})
	}
}

func BenchmarkFig3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = eval.Fig3([]int{3})
	}
}

func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = eval.Fig5([]int{2})
	}
}

func BenchmarkFig6(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = eval.Fig6([]int{2}, []float64{5, 4, 3, 2})
	}
}

func BenchmarkFig7(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = eval.Fig7([]int{10})
	}
}

func BenchmarkFig8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = eval.Fig8([]int{1, 6})
	}
}

func BenchmarkFig9(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = eval.Fig9()
	}
}

func BenchmarkFig10(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = eval.Fig10([]float64{0.01})
	}
}

// benchFLRound measures one federated round over a 16-client cohort with
// the worker count pinned (0 = automatic) and the clients' local training
// on the given numeric backend: the serial-vs-parallel comparison for
// concurrent per-client local training, and the float64-vs-float32
// comparison for the local-training arithmetic (aggregation itself is
// float64 on either backend).
func benchFLRound(b *testing.B, workers int, backend nn.Backend) {
	prev := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	const clients = 16
	train, _ := dataset.GenSynthMNIST(dataset.GenConfig{TrainPerClass: 120, TestPerClass: 10, Seed: 31})
	rng := rand.New(rand.NewSource(32))
	template := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rng)
	template.SetBackend(backend)
	shards := dataset.PartitionKLabel(train, clients, 3, 60, rng)
	cfg := fl.Config{Rounds: 1, LocalEpochs: 1, BatchSize: 20, LR: 0.05}
	parts := make([]fl.Participant, clients)
	for i := range parts {
		parts[i] = fl.NewClient(i, shards[i], template, cfg, 40+int64(i))
	}
	server := fl.NewServer(template, parts, cfg, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = server.Round(i)
	}
}

func BenchmarkFLRound16ClientsSerial(b *testing.B)   { benchFLRound(b, 1, nn.Float64) }
func BenchmarkFLRound16ClientsParallel(b *testing.B) { benchFLRound(b, 0, nn.Float64) }

// BenchmarkFLRound16ClientsSerialFloat32 is the PR-7 headline: the same
// round with every client training on the float32 backend. BENCH_7.json
// compares it against the float64 baseline in bench_baseline_pr7.txt.
func BenchmarkFLRound16ClientsSerialFloat32(b *testing.B) { benchFLRound(b, 1, nn.Float32) }

// defenseBench is the shared fixture of the defense-loop benchmarks: an
// (untrained) SmallCNN, the server's validation slice, the attack's test
// split and a fixed prune order over the last conv layer. The model is
// deliberately untrained — the benchmarks measure the mutate-then-evaluate
// loops themselves, whose cost does not depend on the weights.
type defenseBench struct {
	template  *nn.Sequential
	train     *dataset.Dataset
	val, test *dataset.Dataset
	poison    dataset.PoisonConfig
	layerIdx  int
	order     []int
}

// newDefenseBench pins the worker count to 1 (serial-vs-serial is the
// apples-to-apples comparison for the incremental-evaluation work; the
// parallel fan-out is benchmarked by the FL-round pair above) and builds
// the fixture. Callers must restore the previous worker count.
func newDefenseBench() (*defenseBench, func()) {
	prev := parallel.SetWorkers(1)
	train, test := dataset.GenSynthMNIST(dataset.GenConfig{TrainPerClass: 80, TestPerClass: 40, Seed: 61})
	rng := rand.New(rand.NewSource(62))
	template := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rng)
	nVal := test.Len() * 3 / 10
	f := &defenseBench{
		template: template,
		train:    train,
		val:      &dataset.Dataset{Shape: test.Shape, Classes: test.Classes, Samples: test.Samples[:nVal]},
		test:     &dataset.Dataset{Shape: test.Shape, Classes: test.Classes, Samples: test.Samples[nVal:]},
		poison: dataset.PoisonConfig{
			Trigger:     dataset.PixelPattern(3, dataset.Shape{C: 1, H: 16, W: 16}),
			VictimLabel: 9,
			TargetLabel: 2,
		},
		layerIdx: template.LastConvIndex(),
	}
	units := template.Layer(f.layerIdx).(nn.Prunable).Units()
	f.order = rng.Perm(units)
	return f, func() { parallel.SetWorkers(prev) }
}

// BenchmarkPruneSweep measures the Fig. 5 instrument: pruning every unit
// of the last conv layer while recording benign accuracy and attack
// success after each prune.
func BenchmarkPruneSweep(b *testing.B) {
	f, restore := newDefenseBench()
	defer restore()
	ta := metrics.NewSuffixEvaluator(f.val, 0)
	asr := metrics.NewCachedASR(f.test, f.poison, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := f.template.Clone()
		benchSink = core.PruneSweep(m, f.layerIdx, f.order, ta, asr)
	}
}

// BenchmarkAWSweep measures the Fig. 6 instrument over the pipeline's
// default AW targets (last conv layer, then the first dense layer after
// it).
func BenchmarkAWSweep(b *testing.B) {
	f, restore := newDefenseBench()
	defer restore()
	deltas := make([]float64, 0, 17)
	for d := 5.0; d >= 1; d -= 0.25 {
		deltas = append(deltas, d)
	}
	layers := core.DefaultAWLayers(f.template, f.layerIdx)
	ta := metrics.NewSuffixEvaluator(f.val, 0)
	asr := metrics.NewCachedASR(f.test, f.poison, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, li := range layers {
			m := f.template.Clone()
			benchSink = core.AWSweep(m, li, deltas, ta, asr)
		}
	}
}

// BenchmarkDefendPipeline measures Algorithm 1 end to end (MVP pruning +
// adjusting weights; fine-tuning off so the cost is the defense loops plus
// the clients' activation reports).
func BenchmarkDefendPipeline(b *testing.B) {
	f, restore := newDefenseBench()
	defer restore()
	const clients = 8
	rng := rand.New(rand.NewSource(63))
	shards := dataset.PartitionKLabel(f.train, clients, 3, 40, rng)
	flCfg := fl.Config{Rounds: 1, LocalEpochs: 1, BatchSize: 20, LR: 0.05}
	parts := make([]fl.Participant, clients)
	for i := range parts {
		parts[i] = fl.NewClient(i, shards[i], f.template, flCfg, 70+int64(i))
	}
	cfg := core.DefaultPipelineConfig()
	cfg.FineTuneRounds = 0
	evalFn := metrics.NewSuffixEvaluator(f.val, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := f.template.Clone()
		benchSink = core.RunPipeline(m, fl.ReportClients(parts), nil, evalFn, cfg)
	}
}

// BenchmarkAdaptiveAttacks is the ablation for the paper's §VI-B
// discussion: the defense against a rank-manipulating attacker (Attack 1)
// and an AW-aware self-clipping attacker.
func BenchmarkAdaptiveAttacks(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := eval.MNISTScenario(9, 2)
		t := eval.Build(s)
		t.Attackers[0].SetDefenseBehavior(fl.AttackerDefenseBehavior{
			ManipulateRanks: true,
			LieAccuracy:     true,
		})
		t.Attackers[0].SelfClipDelta = 3
		t.Server.Train(nil)
		m, _ := t.DefendMode("all")
		benchSink = [2]float64{t.ModelTA(m), t.ModelAA(m)}
	}
}
