# Local entry points matching the CI pipeline (.github/workflows/ci.yml)
# job for job: a green `make check` predicts a green pipeline.

GO ?= go

.PHONY: build test race bench fmt vet check

## build: compile every package
build:
	$(GO) build ./...

## test: the full test suite (tier-1 gate)
test:
	$(GO) test ./...

## race: race detector in short mode, with the worker pool forced wide so
## every parallel path fans out even on single-core machines
race:
	FEDCLEANSE_WORKERS=4 $(GO) test -race -short ./...

## bench: one iteration of every tensor/nn benchmark (the CI smoke set)
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/tensor ./internal/nn

## fmt: fail if any file needs gofmt
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

## vet: static analysis
vet:
	$(GO) vet ./...

## check: everything CI runs
check: fmt vet build test race
