# Local entry points matching the CI pipeline (.github/workflows/ci.yml)
# job for job: a green `make check` predicts a green pipeline.

GO ?= go

.PHONY: build test race bench bench-json alloc-test chaos-test obs-test ops-smoke load-smoke fmt vet lint check

# The benchmarks joined against the PR-2 baseline capture: the matmul
# kernel, the conv forward/backward passes, one full SGD train step and one
# federated round.
BENCH_SET = BenchmarkMatMul16x144x64$$|BenchmarkConv2DForward$$|BenchmarkConv2DBackward$$|^BenchmarkTrainStep$$|BenchmarkFLRound16ClientsSerial$$

# The defense-loop benchmarks joined against the PR-3 baseline capture
# (taken before incremental evaluation): the prune sweep, the AW sweep and
# the end-to-end pipeline, all with workers pinned to 1 by their fixture.
DEFENSE_BENCH_SET = BenchmarkPruneSweep$$|BenchmarkAWSweep$$|BenchmarkDefendPipeline$$

# The numeric-backend benchmarks joined against the PR-7 baseline capture
# (taken before the cache-blocked tiles, float64 only; the Float32 names in
# the baseline carry the float64 numbers, so their time_ratio reads the
# cross-precision speedup directly).
BACKEND_BENCH_SET = ^BenchmarkMatMulInto$$|^BenchmarkTrainStep$$|BenchmarkTrainStepFloat32$$|BenchmarkFLRound16ClientsSerial$$|BenchmarkFLRound16ClientsSerialFloat32$$

# The report wire set (ISSUE 8): encoded bytes and encode+decode cost of
# one rank+vote defense report per wire mode at a 512-unit layer.
REPORT_BENCH_SET = ^BenchmarkReportBytes$$|^BenchmarkReportRoundtrip$$

## build: compile every package
build:
	$(GO) build ./...

## test: the full test suite (tier-1 gate)
test:
	$(GO) test ./...

## race: race detector in short mode, with the worker pool forced wide so
## every parallel path fans out even on single-core machines
race:
	FEDCLEANSE_WORKERS=4 $(GO) test -race -short ./...

## bench: one iteration of every tensor/nn benchmark (the CI smoke set)
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/tensor ./internal/nn

## bench-json: measure the hot-path, defense-loop, numeric-backend and
## report-wire benchmark sets and write BENCH_2.json / BENCH_3.json /
## BENCH_7.json / BENCH_8.json, joining the committed pre-optimization
## baselines (bench_baseline_pr2.txt / _pr3.txt / _pr7.txt / _pr8.txt) so
## time and allocation ratios are machine-readable. The federated-round,
## prune-sweep, tiled-matmul and report-roundtrip benchmarks are gated on
## ns/op against the committed baselines, and the report-byte budgets are
## gated absolutely (-metric-gate: int8 rank+vote report <= 700 B and
## >= 6x smaller than the float64 activation report). The JSON is always
## written first, so the artifact survives a failing gate.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_SET)' -benchmem -benchtime 20x \
		./internal/tensor ./internal/nn . \
		| $(GO) run ./cmd/benchjson -baseline bench_baseline_pr2.txt -o BENCH_2.json \
			-gate 'BenchmarkFLRound16ClientsSerial' -fail-above 1.25
	@echo wrote BENCH_2.json
	$(GO) test -run '^$$' -bench '$(DEFENSE_BENCH_SET)' -benchmem -benchtime 10x . \
		| $(GO) run ./cmd/benchjson -baseline bench_baseline_pr3.txt -o BENCH_3.json \
			-gate 'BenchmarkPruneSweep' -fail-above 1.25
	@echo wrote BENCH_3.json
	$(GO) test -run '^$$' -bench '$(BACKEND_BENCH_SET)' -benchmem -benchtime 20x \
		./internal/tensor ./internal/nn . \
		| $(GO) run ./cmd/benchjson -baseline bench_baseline_pr7.txt -o BENCH_7.json \
			-gate '^BenchmarkMatMulInto$$' -fail-above 1.25
	@echo wrote BENCH_7.json
	$(GO) test -run '^$$' -bench '$(REPORT_BENCH_SET)' -benchmem -benchtime 2000x \
		./internal/transport \
		| $(GO) run ./cmd/benchjson -baseline bench_baseline_pr8.txt -o BENCH_8.json \
			-gate 'BenchmarkReportRoundtrip/(float64|int8)' -fail-above 1.0 \
			-metric-gate 'report-bytes/op:BenchmarkReportBytes/int8:max:700' \
			-metric-gate 'shrink-vs-float64:BenchmarkReportBytes/int8:min:6'
	@echo wrote BENCH_8.json

## alloc-test: the allocation-regression gate — warm kernels, layer passes
## and whole train steps must not allocate (see internal/*/alloc_test.go;
## these files are excluded under -race, so the race job cannot cover them)
alloc-test:
	$(GO) test -run 'AllocFree' -v ./internal/tensor ./internal/nn ./internal/fl ./internal/metrics ./internal/obs ./internal/transport ./internal/parallel

## obs-test: the observability gate — registry/logger/span/ops-endpoint
## unit tests (DESIGN.md §11) plus the remote-run metrics integration
## test (a faulty federation must leave non-zero round, retry and
## stage-latency metrics)
obs-test:
	$(GO) test -count=1 ./internal/obs ./cmd/benchjson
	$(GO) test -count=1 -run 'TestRemoteRunPopulatesMetrics' -v ./internal/transport

## ops-smoke: end-to-end smoke of the fedserve ops endpoint (/metrics,
## /healthz, pprof) over a 3-client loopback federation
ops-smoke:
	./scripts/ops_smoke.sh

## load-smoke: end-to-end smoke of the scale path — a fedload fleet of
## POP (default 10000) synthetic clients driven by fedserve in streaming
## fleet mode; asserts an applied quorum round, zero fleet handler panics
## and cohort-bounded server memory (see scripts/load_smoke.sh)
load-smoke:
	./scripts/load_smoke.sh

## chaos-test: the transport fault-tolerance gate under the race detector —
## fault-injected federations (chaos), quorum/drop equivalence, server
## lifecycle, the decoder fuzz seeds, and the durability suite
## (kill-and-restart resume, torn checkpoints, cross-version wire compat).
## Short mode skips the slowest full-pipeline chaos run; the plain `test`
## target covers it.
chaos-test:
	FEDCLEANSE_WORKERS=4 $(GO) test -race -short -count=1 \
		-run 'Chaos|Fault|Quorum|FineTune|Serve|Shutdown|RemoteClient|RoundTimeout|Fuzz|Drop|Checkpoint|Resume|KillRestart|Torn|CrossVersion|Versioned' \
		./internal/transport ./internal/fl ./internal/nn ./internal/wire

## fmt: fail if any file needs gofmt
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

## vet: static analysis
vet:
	$(GO) vet ./...

## lint: the CI lint job locally — gofmt + vet always; staticcheck and
## govulncheck when installed (CI installs them; offline machines skip
## with a notice rather than failing on a missing tool)
lint: fmt vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

## check: everything CI runs
check: lint build test race chaos-test obs-test
