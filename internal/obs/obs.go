// Package obs is the repository's observability layer: structured events,
// an allocation-free metrics registry and span-style stage tracing, plus
// the ops HTTP endpoint that exposes them from a running process.
//
// The package is built around two invariants:
//
//  1. Libraries stay silent unless wired. The package-level logger defaults
//     to a nop handler, so importing an instrumented package (internal/fl,
//     internal/core, internal/transport) produces no output until a command
//     installs a handler via SetLogger — typically through the -log-level
//     and -log-json flags registered by AddLogFlags.
//
//  2. Instrumentation is free on the hot path and deterministic everywhere.
//     Counters, gauges and histograms are pre-registered at construction
//     time; warm Inc/Add/Set/Observe calls and span start/end pairs perform
//     zero heap allocations (gated by make alloc-test). No instrumentation
//     path reads or mutates model state, worker scheduling or RNG streams,
//     so the bit-identity suites (workers 1/2/8, chaos drop-equivalence)
//     hold with metrics enabled — metrics record what happened, they never
//     influence it.
//
// Event taxonomy, the metric naming scheme and the determinism argument
// are documented in DESIGN.md §11.
package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
)

// defaultLogger holds the process-wide event logger. It is stored through
// an atomic pointer so instrumented libraries can read it from any
// goroutine without locking.
var defaultLogger atomic.Pointer[slog.Logger]

func init() {
	defaultLogger.Store(slog.New(nopHandler{}))
}

// nopHandler drops everything and reports every level disabled, so
// instrumentation call sites guarded by Enabled skip attribute
// construction entirely.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// NopLogger returns a logger that discards every record (the package
// default). SetLogger(NopLogger()) silences the process again.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// SetLogger installs the process-wide event logger. nil restores the nop
// default. Safe for concurrent use.
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(nopHandler{})
	}
	defaultLogger.Store(l)
}

// L returns the current process-wide event logger. The result is never
// nil; with no handler installed it is the nop logger.
func L() *slog.Logger { return defaultLogger.Load() }

// Enabled reports whether the current logger handles records at the given
// level. Instrumentation uses it to skip attribute construction on
// disabled levels, which is what keeps the nop-wired hot path
// allocation-free.
func Enabled(level slog.Level) bool {
	return L().Enabled(context.Background(), level)
}
