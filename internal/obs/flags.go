package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// LogFlags holds the logging flags registered by AddLogFlags.
type LogFlags struct {
	Level *string
	JSON  *bool
}

// AddLogFlags registers -log-level and -log-json on the default flag set.
// Call before flag.Parse, then Setup after it:
//
//	logf := obs.AddLogFlags()
//	flag.Parse()
//	logf.Setup(os.Stderr)
func AddLogFlags() *LogFlags {
	return &LogFlags{
		Level: flag.String("log-level", "info", "event log level: debug, info, warn, error or off"),
		JSON:  flag.Bool("log-json", false, "emit events as JSON lines instead of human-readable text"),
	}
}

// Setup installs the process-wide logger per the parsed flags: a
// human-readable console handler by default, slog's JSON handler under
// -log-json, the nop logger under -log-level off. It returns the installed
// logger and an error for an unknown level.
func (f *LogFlags) Setup(w io.Writer) (*slog.Logger, error) {
	if strings.EqualFold(*f.Level, "off") {
		l := NopLogger()
		SetLogger(l)
		return l, nil
	}
	level, err := ParseLevel(*f.Level)
	if err != nil {
		return nil, err
	}
	var h slog.Handler
	if *f.JSON {
		h = slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	} else {
		h = NewConsoleHandler(w, level)
	}
	l := slog.New(h)
	SetLogger(l)
	return l, nil
}

// ParseLevel maps a flag string to its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, error or off)", s)
	}
}

// ConsoleHandler renders events as terse human-readable lines —
// `msg key=value ...`, prefixed with the level only when it is not INFO —
// so a command's default output stays as pleasant as the fmt.Printf lines
// it replaces while remaining grep-able key=value structured.
type ConsoleHandler struct {
	mu    *sync.Mutex
	w     io.Writer
	level slog.Leveler
	attrs []slog.Attr
	group string
}

// NewConsoleHandler builds a console handler writing to w at the given
// minimum level.
func NewConsoleHandler(w io.Writer, level slog.Leveler) *ConsoleHandler {
	return &ConsoleHandler{mu: &sync.Mutex{}, w: w, level: level}
}

// Enabled implements slog.Handler.
func (h *ConsoleHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level.Level()
}

// Handle implements slog.Handler.
func (h *ConsoleHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	if r.Level != slog.LevelInfo {
		b.WriteString(r.Level.String())
		b.WriteByte(' ')
	}
	b.WriteString(r.Message)
	for _, a := range h.attrs {
		writeAttr(&b, "", a) // pre-qualified at WithAttrs time
	}
	r.Attrs(func(a slog.Attr) bool {
		writeAttr(&b, h.group, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

func writeAttr(b *strings.Builder, group string, a slog.Attr) {
	if a.Equal(slog.Attr{}) {
		return
	}
	b.WriteByte(' ')
	if group != "" {
		b.WriteString(group)
		b.WriteByte('.')
	}
	b.WriteString(a.Key)
	b.WriteByte('=')
	fmt.Fprintf(b, "%v", a.Value.Resolve().Any())
}

// WithAttrs implements slog.Handler. Attrs are qualified with the group
// open at WithAttrs time (slog's contract: attrs added before WithGroup
// stay outside the group).
func (h *ConsoleHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	c := *h
	c.attrs = append([]slog.Attr(nil), h.attrs...)
	for _, a := range attrs {
		if h.group != "" {
			a.Key = h.group + "." + a.Key
		}
		c.attrs = append(c.attrs, a)
	}
	return &c
}

// WithGroup implements slog.Handler.
func (h *ConsoleHandler) WithGroup(name string) slog.Handler {
	c := *h
	if c.group != "" {
		c.group += "." + name
	} else {
		c.group = name
	}
	return &c
}
