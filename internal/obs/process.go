package obs

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// SampleProcess refreshes the process self-telemetry gauges: Go heap and
// OS-level memory plus the goroutine count. Long-running servers call it
// at natural checkpoints (once per federated round, before serving a
// /metrics snapshot); it costs one runtime.ReadMemStats stop-the-world
// plus one small /proc read, so it is a per-round operation, not a
// per-update one.
func SampleProcess() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	M.ProcessHeapAllocBytes.Set(int64(ms.HeapAlloc))
	M.ProcessSysBytes.Set(int64(ms.Sys))
	M.ProcessRSSBytes.Set(residentBytes())
	M.ProcessGoroutines.Set(int64(runtime.NumGoroutine()))
}

// residentBytes reads the resident set size from /proc/self/statm (second
// field, in pages). Platforms without procfs report 0 — the gauge stays
// informational rather than failing the sample.
func residentBytes() int64 {
	raw, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(raw))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}
