//go:build !race

package obs

import (
	"testing"
)

// Allocation-regression gates for the instrumentation primitives (ISSUE 5):
// once a metric is registered — which happens at construction time, never
// on the hot path — recording into it and tracing spans around it must not
// allocate. These gates are what lets internal/fl, internal/core and
// internal/transport carry instrumentation without moving the existing
// TrainStep/FLRound/scoped-Evaluate gates. Excluded under the race
// detector, whose instrumentation allocates.

func TestCounterWarmAllocFree(t *testing.T) {
	c := NewRegistry().Counter("c_total")
	if allocs := testing.AllocsPerRun(100, func() { c.Inc() }); allocs != 0 {
		t.Errorf("warm Counter.Inc: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { c.Add(7) }); allocs != 0 {
		t.Errorf("warm Counter.Add: %v allocs/op, want 0", allocs)
	}
}

func TestGaugeWarmAllocFree(t *testing.T) {
	g := NewRegistry().Gauge("g")
	if allocs := testing.AllocsPerRun(100, func() { g.Set(3); g.Add(-1); g.Inc(); g.Dec() }); allocs != 0 {
		t.Errorf("warm Gauge ops: %v allocs/op, want 0", allocs)
	}
}

func TestHistogramObserveWarmAllocFree(t *testing.T) {
	h := NewRegistry().Histogram("h_seconds", DurationBuckets)
	v := 0.0
	if allocs := testing.AllocsPerRun(100, func() {
		h.Observe(v)
		v += 0.37 // walk across buckets, including overflow
	}); allocs != 0 {
		t.Errorf("warm Histogram.Observe: %v allocs/op, want 0", allocs)
	}
}

// TestSpanWarmAllocFree gates the span start/end pair with the default
// (nop) logger installed — the state every instrumented library runs in
// unless a command wires a handler.
func TestSpanWarmAllocFree(t *testing.T) {
	SetLogger(nil) // the package default, explicit for test isolation
	h := NewRegistry().Histogram("span_seconds", DurationBuckets)
	if allocs := testing.AllocsPerRun(100, func() {
		sp := StartSpan("alloc.test", h)
		sp.End()
	}); allocs != 0 {
		t.Errorf("warm span start/end: %v allocs/op, want 0", allocs)
	}
}

// TestTraceSpanWarmAllocFree gates the traced warm path (ISSUE 10): a
// child span under a valid parent — whose End appends a record to the
// default span ring — must stay alloc-free once its name is interned.
func TestTraceSpanWarmAllocFree(t *testing.T) {
	SetLogger(nil)
	parent := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	h := NewRegistry().Histogram("traced_span_seconds", DurationBuckets)
	StartChildOf(parent, "alloc.traced", h).End() // interns the name
	if allocs := testing.AllocsPerRun(100, func() {
		sp := StartChildOf(parent, "alloc.traced", h).WithClient(1).WithRound(2).WithAttempt(3)
		sp.End()
	}); allocs != 0 {
		t.Errorf("warm traced span start/end: %v allocs/op, want 0", allocs)
	}
}

// TestSpanRingAppendWarmAllocFree gates the raw ring append, the
// primitive every traced End runs through.
func TestSpanRingAppendWarmAllocFree(t *testing.T) {
	r := NewSpanRing(64)
	rec := SpanRecord{Name: "alloc.ring", Trace: 1, Span: 2, Parent: 3,
		Start: 4, Dur: 5, Client: 6, Round: 7, Attempt: 8}
	r.Append(rec) // interns the name
	if allocs := testing.AllocsPerRun(100, func() { r.Append(rec) }); allocs != 0 {
		t.Errorf("warm SpanRing.Append: %v allocs/op, want 0", allocs)
	}
}
