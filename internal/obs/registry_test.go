package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentCounter hammers one counter from 1, 2 and 8 goroutines and
// checks no increment is lost — the property that lets round drivers
// record drops from any worker count without coordination.
func TestConcurrentCounter(t *testing.T) {
	const perWorker = 10000
	for _, workers := range []int{1, 2, 8} {
		r := NewRegistry()
		c := r.Counter("hits_total")
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					c.Inc()
				}
			}()
		}
		wg.Wait()
		if got, want := c.Value(), uint64(workers*perWorker); got != want {
			t.Errorf("workers=%d: counter = %d, want %d", workers, got, want)
		}
	}
}

// TestConcurrentHistogram checks count, sum and per-bucket totals survive
// concurrent observation (the sum accumulates through CAS, so each worker
// observes integer values whose sum is exact in float64).
func TestConcurrentHistogram(t *testing.T) {
	const perWorker = 2000
	for _, workers := range []int{1, 2, 8} {
		r := NewRegistry()
		h := r.Histogram("lat_seconds", []float64{1, 2})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					h.Observe(float64(i % 3)) // 0, 1, 2 round-robin
				}
			}()
		}
		wg.Wait()
		total := uint64(workers * perWorker)
		if h.Count() != total {
			t.Errorf("workers=%d: count = %d, want %d", workers, h.Count(), total)
		}
		// Per worker, i%3 over [0,2000) yields 667 zeros, 667 ones, 666 twos.
		if wantSum := float64(workers) * (667 + 2*666); h.Sum() != wantSum {
			t.Errorf("workers=%d: sum = %g, want %g", workers, h.Sum(), wantSum)
		}
		s := r.Snapshot().Histograms["lat_seconds"]
		// 0 and 1 land in bucket le=1, 2 in le=2, nothing overflows.
		want := []uint64{uint64(workers) * 1334, uint64(workers) * 666, 0}
		for i, c := range s.Counts {
			if c != want[i] {
				t.Errorf("workers=%d: bucket %d = %d, want %d", workers, i, c, want[i])
			}
		}
	}
}

// TestHistogramBucketBoundaries pins the bucket edge semantics: an
// observation equal to a bound lands in that bound's bucket (inclusive
// upper bounds), anything above the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{0.1, 1, 10})
	cases := []struct {
		v      float64
		bucket int
	}{
		{-5, 0}, {0, 0}, {0.1, 0}, // inclusive upper bound
		{0.1000001, 1}, {1, 1},
		{5, 2}, {10, 2},
		{10.5, 3}, {math.Inf(1), 3}, // overflow bucket
	}
	want := make([]uint64, 4)
	for _, c := range cases {
		h.Observe(c.v)
		want[c.bucket]++
		s := r.Snapshot().Histograms["h"]
		for i, n := range s.Counts {
			if n != want[i] {
				t.Errorf("after observe(%g): bucket %d = %d, want %d", c.v, i, n, want[i])
			}
		}
	}
}

// TestSnapshotDeterministic renders the same registry state twice as text
// and twice as JSON and requires byte-identical output — map iteration
// order must never leak into what operators diff.
func TestSnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	// Register in an order unlike the sorted one.
	r.Counter("z_total").Add(3)
	r.Counter("a_total").Inc()
	r.Gauge("m_depth").Set(-2)
	r.Histogram("b_seconds", []float64{0.5, 5}).Observe(1.25)
	r.Histogram("a_seconds", []float64{1}).Observe(0.5)

	var t1, t2 bytes.Buffer
	if err := r.WriteText(&t1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&t2); err != nil {
		t.Fatal(err)
	}
	if t1.String() != t2.String() {
		t.Errorf("text snapshots differ:\n%s\nvs\n%s", t1.String(), t2.String())
	}
	j1, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("JSON snapshots differ:\n%s\nvs\n%s", j1, j2)
	}

	// Sorted rendering: a_total before z_total, a_seconds before b_seconds.
	text := t1.String()
	for _, pair := range [][2]string{
		{"a_total", "z_total"},
		{"a_seconds_count", "b_seconds_count"},
	} {
		if strings.Index(text, pair[0]) > strings.Index(text, pair[1]) {
			t.Errorf("text output not sorted: %q after %q in\n%s", pair[0], pair[1], text)
		}
	}
	// The cumulative bucket lines carry the configured bounds plus +Inf.
	for _, want := range []string{
		`b_seconds_bucket{le="0.5"} 0`,
		`b_seconds_bucket{le="5"} 1`,
		`b_seconds_bucket{le="+Inf"} 1`,
		"z_total 3",
		"m_depth -2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}
}

// TestRegistryGetOrCreate checks idempotent registration and the
// kind-mismatch panics.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("h", []float64{1, 2}) != r.Histogram("h", []float64{1, 2}) {
		t.Error("Histogram not idempotent")
	}
	mustPanic(t, "counter as gauge", func() { r.Gauge("x") })
	mustPanic(t, "histogram rebuckets", func() { r.Histogram("h", []float64{1, 3}) })
	mustPanic(t, "unsorted buckets", func() { r.Histogram("h2", []float64{2, 1}) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestWellKnownMetricsRegistered spot-checks that the pre-registered M set
// is live on Default: recording through M is visible in a Default
// snapshot under the documented names.
func TestWellKnownMetricsRegistered(t *testing.T) {
	before := Default.Snapshot().Counters["fl_rounds_total"]
	M.FLRounds.Inc()
	after := Default.Snapshot().Counters["fl_rounds_total"]
	if after != before+1 {
		t.Errorf("fl_rounds_total = %d after Inc from %d", after, before)
	}
	for _, name := range []string{
		"fl_dropped_total", "fl_quorum_failures_total",
		"transport_retries_total", "defense_pruned_units_total",
	} {
		if _, ok := Default.Snapshot().Counters[name]; !ok {
			t.Errorf("well-known counter %s not registered on Default", name)
		}
	}
	if _, ok := Default.Snapshot().Histograms["fl_round_seconds"]; !ok {
		t.Error("fl_round_seconds not registered on Default")
	}
	if _, ok := Default.Snapshot().Gauges["parallel_pool_queue_depth"]; !ok {
		t.Error("parallel_pool_queue_depth not registered on Default")
	}
}

func ExampleRegistry_WriteText() {
	r := NewRegistry()
	r.Counter("requests_total").Add(2)
	r.Gauge("queue_depth").Set(1)
	var b bytes.Buffer
	_ = r.WriteText(&b)
	fmt.Print(b.String())
	// Output:
	// requests_total 2
	// queue_depth 1
}
