package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry so they appear in snapshots.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depths, in-flight work).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative n decreases it).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets chosen at registration
// time. bounds[i] is the inclusive upper bound of bucket i; one implicit
// overflow bucket (+Inf) catches everything larger. Observe is lock-free
// and allocation-free: one linear scan over the (small, fixed) bounds,
// three atomic updates.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sum     atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// atomicFloat accumulates a float64 through CAS on its bit pattern, so
// concurrent Observe calls never lose updates and never allocate.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Registry owns a fixed set of named metrics. Registration (Counter,
// Gauge, Histogram) takes a lock and may allocate; it happens once, at
// construction time of the instrumented component. The returned pointers
// are then updated lock-free, so the hot path never touches the registry
// again. Names follow the prometheus-style snake_case scheme documented in
// DESIGN.md §11 (_total for counters, _seconds for latency histograms).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Registering the same name as a different metric kind panics.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFresh(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFresh(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (which must be sorted ascending) on first
// use. A second registration must pass identical bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		if !equalBounds(h.bounds, bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
		}
		return h
	}
	r.checkFresh(name, "histogram")
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not sorted ascending", name))
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// checkFresh panics when name already names a metric of another kind.
// Callers hold r.mu.
func (r *Registry) checkFresh(name, kind string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a counter, not a %s", name, kind))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a gauge, not a %s", name, kind))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a histogram, not a %s", name, kind))
	}
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// HistogramSnapshot is one histogram's state at snapshot time. Counts has
// len(Bounds)+1 entries; the last is the overflow (+Inf) bucket. Counts
// are per-bucket, not cumulative.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Snapshot is a point-in-time copy of every registered metric. Map keys
// marshal in sorted order (encoding/json sorts string keys), so two
// snapshots of identical state produce byte-identical JSON.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every registered metric. Individual
// metric reads are atomic; the snapshot as a whole is not a consistent cut
// across metrics (fine for monitoring, meaningless differences only while
// concurrent writers run).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Count:  h.count.Load(),
			Sum:    h.sum.load(),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.buckets)),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON with sorted keys.
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteText writes the snapshot in a prometheus-style text format: one
// `name value` line per counter and gauge, and per histogram the _count,
// _sum and cumulative _bucket{le="..."} series. Lines are sorted by metric
// name within each section, so identical state renders identically.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var b []byte
	for _, name := range sortedKeys(s.Counters) {
		b = append(b, name...)
		b = append(b, ' ')
		b = strconv.AppendUint(b, s.Counters[name], 10)
		b = append(b, '\n')
	}
	for _, name := range sortedKeys(s.Gauges) {
		b = append(b, name...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, s.Gauges[name], 10)
		b = append(b, '\n')
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		cum := uint64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = strconv.FormatFloat(h.Bounds[i], 'g', -1, 64)
			}
			b = append(b, name...)
			b = append(b, `_bucket{le="`...)
			b = append(b, le...)
			b = append(b, `"} `...)
			b = strconv.AppendUint(b, cum, 10)
			b = append(b, '\n')
		}
		b = append(b, name...)
		b = append(b, "_sum "...)
		b = strconv.AppendFloat(b, h.Sum, 'g', -1, 64)
		b = append(b, '\n')
		b = append(b, name...)
		b = append(b, "_count "...)
		b = strconv.AppendUint(b, h.Count, 10)
		b = append(b, '\n')
	}
	_, err := w.Write(b)
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
