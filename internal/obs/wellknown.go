package obs

// Default is the process-wide registry. Library instrumentation records
// into it unconditionally — recording is allocation-free and invisible
// until something reads a snapshot — and the ops endpoint and the
// commands' final snapshots serve it.
var Default = NewRegistry()

// DurationBuckets are the shared latency bucket bounds, in seconds. They
// span sub-millisecond tensor stages to multi-minute federated rounds.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// M holds the well-known metrics, pre-registered on Default at package
// initialization so every hot-path Inc/Add/Observe is a pointer chase plus
// an atomic — never a map lookup, never an allocation. The naming scheme
// is snake_case with a subsystem prefix (fl_, defense_, transport_,
// parallel_), `_total` for counters and `_seconds` for latency histograms
// (DESIGN.md §11).
var M = struct {
	// Federated rounds (internal/fl).
	FLRounds         *Counter   // aggregation rounds driven (training + fine-tuning)
	FLFineTuneRounds *Counter   // the fine-tuning subset of FLRounds
	FLCompleted      *Counter   // client updates that arrived and aggregated
	FLDropped        *Counter   // clients that delivered nothing (policy or wire)
	FLQuorumFailures *Counter   // rounds discarded below quorum
	FLRoundSeconds   *Histogram // wall time of one aggregation round

	// Streaming sharded aggregation (internal/fl, DESIGN.md §12).
	FLRegisteredClients  *Gauge     // population size registered with fl.Registry
	FLStreamInFlightPeak *Gauge     // last round's peak of trained-but-unfolded updates
	FLStreamFallbacks    *Counter   // streaming rounds degraded to batch (non-streaming rule)
	FLShardMergeSeconds  *Histogram // shard-partial merge + final scale per streaming round

	// Durable rounds (internal/fl, DESIGN.md §15).
	FLCheckpointWrites       *Counter   // checkpoints written (boundary + partial)
	FLCheckpointPartials     *Counter   // the mid-round partial subset of writes
	FLCheckpointWriteErrors  *Counter   // checkpoint writes that failed (round continues)
	FLCheckpointBytes        *Counter   // encoded checkpoint bytes written
	FLCheckpointWriteSeconds *Histogram // one atomic checkpoint write (encode + fsync + rename)
	FLCheckpointTorn         *Counter   // checkpoint files skipped as torn/corrupt on load
	FLResumes                *Counter   // servers restored from a checkpoint
	FLResumedPartialRounds   *Counter   // resumes that re-entered an interrupted round

	// Defense pipeline (internal/core).
	DefensePipelines            *Counter   // RunPipeline invocations
	DefensePrunedUnits          *Counter   // units left pruned by PruneToThreshold
	DefenseZeroedWeights        *Counter   // weights zeroed by AdjustWeights
	DefenseReportDropouts       *Counter   // prune/accuracy reports lost on the wire
	DefenseReportQuorumFailures *Counter   // report collections aborted below quorum
	DefensePipelineSeconds      *Histogram // whole Algorithm 1 runs
	DefensePruneSweepSeconds    *Histogram // PruneToThreshold sweeps
	DefenseFineTuneSeconds      *Histogram // FineTune phases
	DefenseAWSweepSeconds       *Histogram // AdjustWeights Δ sweeps (per layer)

	// Wire protocol (internal/transport).
	TransportCalls        *Counter   // logical calls through RemoteClient
	TransportCallFailures *Counter   // logical calls that exhausted their retries
	TransportAttempts     *Counter   // individual HTTP attempts
	TransportRetries      *Counter   // attempts after the first (each waits a backoff)
	TransportCallSeconds  *Histogram // logical call latency including retries
	// Report-path bandwidth (DESIGN.md §14): payload bytes of report
	// responses (ranks/votes) as sent by servers and as successfully
	// decoded by RemoteClient, any encoding.
	TransportReportBytesSent *Counter
	TransportReportBytesRecv *Counter
	// Update-path bandwidth (DESIGN.md §15): payload bytes of /v1/update
	// responses as successfully decoded by RemoteClient, any encoding.
	TransportUpdateBytesRecv *Counter

	// Worker pool (internal/parallel).
	PoolTasks      *Counter // tasks submitted to parallel.Pool
	PoolQueueDepth *Gauge   // pool tasks submitted but not yet finished
	// Bare For/ForBlocks loops (internal/parallel). Counted per block,
	// never per index, so the kernels' warm paths stay atomic-add cheap.
	ForTasks      *Counter // blocks executed by For/ForBlocks
	ForQueueDepth *Gauge   // fanned-out blocks started but not yet finished

	// Tracing + flight recorder (DESIGN.md §16).
	TraceSpans    *Counter // traced spans recorded into the span ring
	FlightRecords *Counter // audit records written by the flight recorder

	// Load generation (transport.Fleet / cmd/fedload).
	FedloadClients       *Gauge     // synthetic clients hosted by the fleet
	FedloadUpdates       *Counter   // update requests served
	FedloadReports       *Counter   // report requests served (ranks/votes/accuracy)
	FedloadBytesIn       *Counter   // request bytes read by the fleet
	FedloadBytesOut      *Counter   // response bytes written by the fleet
	FedloadHandlerPanics *Counter   // participant panics recovered by the fleet handler
	FedloadUpdateSeconds *Histogram // one synthetic update request, server side

	// Process self-telemetry (SampleProcess).
	ProcessHeapAllocBytes *Gauge // live Go heap (runtime.MemStats.HeapAlloc)
	ProcessSysBytes       *Gauge // total memory obtained from the OS by the runtime
	ProcessRSSBytes       *Gauge // resident set size from /proc/self/statm (0 off Linux)
	ProcessGoroutines     *Gauge // runtime.NumGoroutine
}{
	FLRounds:         Default.Counter("fl_rounds_total"),
	FLFineTuneRounds: Default.Counter("fl_finetune_rounds_total"),
	FLCompleted:      Default.Counter("fl_completed_updates_total"),
	FLDropped:        Default.Counter("fl_dropped_total"),
	FLQuorumFailures: Default.Counter("fl_quorum_failures_total"),
	FLRoundSeconds:   Default.Histogram("fl_round_seconds", DurationBuckets),

	FLRegisteredClients:  Default.Gauge("fl_registered_clients"),
	FLStreamInFlightPeak: Default.Gauge("fl_stream_inflight_peak"),
	FLStreamFallbacks:    Default.Counter("fl_stream_fallbacks_total"),
	FLShardMergeSeconds:  Default.Histogram("fl_shard_merge_seconds", DurationBuckets),

	FLCheckpointWrites:       Default.Counter("fl_checkpoint_writes_total"),
	FLCheckpointPartials:     Default.Counter("fl_checkpoint_partials_total"),
	FLCheckpointWriteErrors:  Default.Counter("fl_checkpoint_write_errors_total"),
	FLCheckpointBytes:        Default.Counter("fl_checkpoint_bytes_total"),
	FLCheckpointWriteSeconds: Default.Histogram("fl_checkpoint_write_seconds", DurationBuckets),
	FLCheckpointTorn:         Default.Counter("fl_checkpoint_torn_total"),
	FLResumes:                Default.Counter("fl_resumes_total"),
	FLResumedPartialRounds:   Default.Counter("fl_resumed_partial_rounds_total"),

	DefensePipelines:            Default.Counter("defense_pipeline_runs_total"),
	DefensePrunedUnits:          Default.Counter("defense_pruned_units_total"),
	DefenseZeroedWeights:        Default.Counter("defense_zeroed_weights_total"),
	DefenseReportDropouts:       Default.Counter("defense_report_dropouts_total"),
	DefenseReportQuorumFailures: Default.Counter("defense_report_quorum_failures_total"),
	DefensePipelineSeconds:      Default.Histogram("defense_pipeline_seconds", DurationBuckets),
	DefensePruneSweepSeconds:    Default.Histogram("defense_prune_sweep_seconds", DurationBuckets),
	DefenseFineTuneSeconds:      Default.Histogram("defense_finetune_seconds", DurationBuckets),
	DefenseAWSweepSeconds:       Default.Histogram("defense_aw_sweep_seconds", DurationBuckets),

	TransportCalls:           Default.Counter("transport_calls_total"),
	TransportCallFailures:    Default.Counter("transport_call_failures_total"),
	TransportAttempts:        Default.Counter("transport_attempts_total"),
	TransportRetries:         Default.Counter("transport_retries_total"),
	TransportCallSeconds:     Default.Histogram("transport_call_seconds", DurationBuckets),
	TransportReportBytesSent: Default.Counter("transport_report_bytes_sent_total"),
	TransportReportBytesRecv: Default.Counter("transport_report_bytes_recv_total"),
	TransportUpdateBytesRecv: Default.Counter("transport_update_bytes_recv_total"),

	PoolTasks:      Default.Counter("parallel_pool_tasks_total"),
	PoolQueueDepth: Default.Gauge("parallel_pool_queue_depth"),
	ForTasks:       Default.Counter("parallel_for_tasks_total"),
	ForQueueDepth:  Default.Gauge("parallel_for_queue_depth"),

	TraceSpans:    Default.Counter("trace_spans_total"),
	FlightRecords: Default.Counter("flight_records_total"),

	FedloadClients:       Default.Gauge("fedload_clients"),
	FedloadUpdates:       Default.Counter("fedload_updates_total"),
	FedloadReports:       Default.Counter("fedload_reports_total"),
	FedloadBytesIn:       Default.Counter("fedload_bytes_in_total"),
	FedloadBytesOut:      Default.Counter("fedload_bytes_out_total"),
	FedloadHandlerPanics: Default.Counter("fedload_handler_panics_total"),
	FedloadUpdateSeconds: Default.Histogram("fedload_update_seconds", DurationBuckets),

	ProcessHeapAllocBytes: Default.Gauge("process_heap_alloc_bytes"),
	ProcessSysBytes:       Default.Gauge("process_sys_bytes"),
	ProcessRSSBytes:       Default.Gauge("process_rss_bytes"),
	ProcessGoroutines:     Default.Gauge("process_goroutines"),
}
