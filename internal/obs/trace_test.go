package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestTraceIDDeterministicUnderSeed(t *testing.T) {
	SetTraceSeed(42)
	first := []uint64{uint64(NewTraceID()), uint64(NewSpanID()), uint64(NewTraceID())}
	SetTraceSeed(42)
	second := []uint64{uint64(NewTraceID()), uint64(NewSpanID()), uint64(NewTraceID())}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("id %d: seeded sequences diverge: %016x vs %016x", i, first[i], second[i])
		}
	}
	if first[0] == first[1] || first[1] == first[2] || first[0] == first[2] {
		t.Fatalf("seeded sequence repeats itself: %v", first)
	}
	if first[0] == 0 {
		t.Fatal("seeded sequence produced the zero (invalid) ID")
	}
}

func TestTraceIDJSONRoundTrip(t *testing.T) {
	id := TraceID(0xdeadbeef12345678)
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"deadbeef12345678"` {
		t.Fatalf("marshal: got %s", b)
	}
	var back TraceID
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip: got %016x want %016x", uint64(back), uint64(id))
	}
	var sp SpanID
	if err := json.Unmarshal([]byte(`"not hex"`), &sp); err == nil {
		t.Fatal("non-hex span ID parsed without error")
	}
}

func TestSpanRingAppendSnapshotDrop(t *testing.T) {
	r := NewSpanRing(16)
	for i := 0; i < 20; i++ {
		r.Append(SpanRecord{Name: "ring.test", Trace: 1, Span: SpanID(i + 1), Round: int64(i)})
	}
	if got := r.Total(); got != 20 {
		t.Fatalf("Total = %d, want 20", got)
	}
	if got := r.Dropped(); got != 4 {
		t.Fatalf("Dropped = %d, want 4", got)
	}
	recs := r.Snapshot()
	if len(recs) != 16 {
		t.Fatalf("Snapshot kept %d records, want 16", len(recs))
	}
	// Oldest first: rounds 4..19 survive.
	for i, rec := range recs {
		if want := int64(i + 4); rec.Round != want {
			t.Fatalf("record %d: round %d, want %d", i, rec.Round, want)
		}
		if rec.Name != "ring.test" {
			t.Fatalf("record %d: name %q did not survive interning", i, rec.Name)
		}
	}
	r.Reset()
	if r.Total() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("Reset left records behind")
	}
}

func TestSpanRingSizeRoundsUp(t *testing.T) {
	r := NewSpanRing(17) // non power of two
	for i := 0; i < 32; i++ {
		r.Append(SpanRecord{Name: "ring.size", Span: SpanID(i + 1)})
	}
	if got := len(r.Snapshot()); got != 32 {
		t.Fatalf("ring of requested size 17 kept %d records, want 32 (next power of two)", got)
	}
}

// TestSpanRingConcurrent hammers the ring from concurrent writers while a
// reader snapshots; the seq protocol must never surface a torn record.
func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRing(64)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Trace and Round always match; a torn slot would mix them.
				v := int64(w*perWriter + i + 1)
				r.Append(SpanRecord{Name: "ring.race", Trace: TraceID(v), Span: SpanID(v), Round: v})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		for _, rec := range r.Snapshot() {
			if int64(rec.Trace) != rec.Round {
				t.Errorf("torn record surfaced: trace=%d round=%d", rec.Trace, rec.Round)
			}
		}
		select {
		case <-done:
			if r.Total() != writers*perWriter {
				t.Fatalf("Total = %d, want %d", r.Total(), writers*perWriter)
			}
			return
		default:
		}
	}
}

func TestHeaderInjectExtractRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	h := http.Header{}
	InjectHeaders(h, sc)
	if got := ExtractHeaders(h); got != sc {
		t.Fatalf("round trip: got %+v want %+v", got, sc)
	}
	// Invalid contexts must not inject.
	h2 := http.Header{}
	InjectHeaders(h2, SpanContext{})
	if h2.Get(TraceHeader) != "" {
		t.Fatalf("zero context injected %q", h2.Get(TraceHeader))
	}
	// Malformed values must not extract.
	for _, bad := range []string{"", "zzz", "0123456789abcdef", "0123456789abcdef:0123456789abcdef",
		"0123456789abcdef-0123456789abcde", "xxxxxxxxxxxxxxxx-0123456789abcdef"} {
		h3 := http.Header{}
		if bad != "" {
			h3.Set(TraceHeader, bad)
		}
		if got := ExtractHeaders(h3); got.Valid() {
			t.Errorf("malformed header %q extracted %+v", bad, got)
		}
	}
}

// TestZeroSpanEnd pins the zero-value contract: ending a Span that was
// never started returns 0 and observes nothing — callers with optional
// spans need no nil checks.
func TestZeroSpanEnd(t *testing.T) {
	h := NewRegistry().Histogram("zero_span_seconds", DurationBuckets)
	var sp Span
	sp.hist = h // even a wired histogram must not fire
	if d := sp.End(); d != 0 {
		t.Fatalf("zero span End = %v, want 0", d)
	}
	if h.Count() != 0 {
		t.Fatalf("zero span End observed into the histogram (count %d)", h.Count())
	}
}

func TestStartChildOfLinksAndRoots(t *testing.T) {
	parent := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	child := StartChildOf(parent, "child.test", nil)
	if got := child.Context(); got.Trace != parent.Trace {
		t.Fatalf("child trace %v, want parent trace %v", got.Trace, parent.Trace)
	} else if got.Span == parent.Span || got.Span == 0 {
		t.Fatalf("child span %v must be fresh (parent %v)", got.Span, parent.Span)
	}
	root := StartChildOf(SpanContext{}, "root.test", nil)
	if !root.Context().Valid() {
		t.Fatal("child of the zero context must root a new trace")
	}
	if untraced := StartSpan("plain.test", nil); untraced.Context().Valid() {
		t.Fatal("StartSpan must stay untraced")
	}
}

func TestSpanEndRecordsIntoDefaultRing(t *testing.T) {
	DefaultSpans.Reset()
	parent := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	sp := StartChildOf(parent, "record.test", nil).WithClient(7).WithRound(3).WithAttempt(2)
	if sp.End() <= 0 {
		t.Fatal("traced span End returned no duration")
	}
	recs := DefaultSpans.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("ring holds %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Name != "record.test" || rec.Trace != parent.Trace || rec.Parent != parent.Span ||
		rec.Client != 7 || rec.Round != 3 || rec.Attempt != 2 {
		t.Fatalf("recorded span mangled: %+v", rec)
	}
	// Untraced spans must stay out of the ring.
	StartSpan("record.untraced", nil).End()
	if got := len(DefaultSpans.Snapshot()); got != 1 {
		t.Fatalf("untraced span leaked into the ring (%d records)", got)
	}
	DefaultSpans.Reset()
}

func TestContextPropagation(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	ctx := ContextWithSpan(context.Background(), sc)
	if got := SpanContextFrom(ctx); got != sc {
		t.Fatalf("context round trip: got %+v want %+v", got, sc)
	}
	if got := SpanContextFrom(context.Background()); got.Valid() {
		t.Fatalf("bare context carries a span: %+v", got)
	}
	child := StartChild(ctx, "ctx.child", nil)
	if got := child.Context(); got.Trace != sc.Trace {
		t.Fatalf("StartChild ignored the context span (trace %v, want %v)", got.Trace, sc.Trace)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	recs := []SpanRecord{
		{Name: "fl.round", Trace: 0xa, Span: 1, Start: 1_000_000, Dur: 2 * time.Millisecond, Round: 5, Client: -1, Attempt: -1},
		{Name: "transport.attempt", Trace: 0xa, Span: 2, Parent: 1, Start: 1_500_000, Dur: time.Millisecond, Client: 3, Round: -1, Attempt: 1},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Args struct {
				Trace  TraceID `json:"trace"`
				Parent SpanID  `json:"parent"`
				Client int64   `json:"client"`
				Round  int64   `json:"round"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("chrome trace has %d events, want 2", len(out.TraceEvents))
	}
	ev := out.TraceEvents[1]
	if ev.Name != "transport.attempt" || ev.Ph != "X" || ev.Dur != 1000 ||
		ev.Args.Trace != 0xa || ev.Args.Parent != 1 || ev.Args.Client != 3 {
		t.Fatalf("chrome event mangled: %+v", ev)
	}
}
