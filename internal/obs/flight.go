package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// FlightRecorder persists structured audit records — one JSON object per
// line — durably to a file and keeps the most recent records in memory for
// the /rounds endpoint. It is the "what happened" counterpart to the span
// ring's "when": per-round audit records (fl.RoundAudit) carry the cohort,
// drops, retries, applied decision and checkpoint path, so a chaos or load
// run can be audited after the fact without debug logs (DESIGN.md §16).
//
// Record appends are serialized by a mutex and flushed line-at-a-time (the
// file is opened O_APPEND; a crash can lose at most the final partial
// line, and JSONL readers skip it). Recording happens once per round, far
// off any alloc-gated path.
type FlightRecorder struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	keep   int
	recent []json.RawMessage
	start  int // recent is a ring: logical order starts here
	total  uint64
}

// NewFlightRecorder opens a recorder appending to path, keeping the last
// keep records (default 256 when keep <= 0) in memory. An empty path makes
// a memory-only recorder.
func NewFlightRecorder(path string, keep int) (*FlightRecorder, error) {
	if keep <= 0 {
		keep = 256
	}
	fr := &FlightRecorder{path: path, keep: keep}
	if path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("obs: flight recorder: %w", err)
		}
		fr.f = f
	}
	return fr, nil
}

// Record marshals v and appends it as one JSONL line.
func (fr *FlightRecorder) Record(v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("obs: flight record: %w", err)
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if len(fr.recent) < fr.keep {
		fr.recent = append(fr.recent, buf)
	} else {
		fr.recent[fr.start] = buf
		fr.start = (fr.start + 1) % fr.keep
	}
	fr.total++
	M.FlightRecords.Inc()
	if fr.f != nil {
		if _, err := fr.f.Write(append(buf, '\n')); err != nil {
			return fmt.Errorf("obs: flight write: %w", err)
		}
	}
	return nil
}

// Recent returns the retained records, oldest first.
func (fr *FlightRecorder) Recent() []json.RawMessage {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]json.RawMessage, 0, len(fr.recent))
	for i := 0; i < len(fr.recent); i++ {
		out = append(out, fr.recent[(fr.start+i)%len(fr.recent)])
	}
	return out
}

// Total returns how many records have been recorded.
func (fr *FlightRecorder) Total() uint64 {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.total
}

// Path returns the backing file path ("" for memory-only recorders).
func (fr *FlightRecorder) Path() string { return fr.path }

// Close closes the backing file. Records after Close stay memory-only.
func (fr *FlightRecorder) Close() error {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	f := fr.f
	fr.f = nil
	if f == nil {
		return nil
	}
	return f.Close()
}

// flightRec is the process-wide recorder the /rounds endpoint serves.
var flightRec atomic.Pointer[FlightRecorder]

// SetFlightRecorder installs fr as the recorder behind /rounds (nil
// uninstalls).
func SetFlightRecorder(fr *FlightRecorder) { flightRec.Store(fr) }

// CurrentFlightRecorder returns the installed recorder, or nil.
func CurrentFlightRecorder() *FlightRecorder { return flightRec.Load() }
