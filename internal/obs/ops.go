package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewOpsHandler returns the live ops surface over a registry:
//
//	GET /metrics        — prometheus-style text snapshot
//	GET /metrics?format=json (or Accept: application/json) — JSON snapshot
//	GET /healthz        — liveness probe, always "ok"
//	GET /trace          — Chrome trace-event JSON of the span ring
//	GET /trace?format=records — raw span records (fedtrace's input)
//	GET /rounds         — the flight recorder's retained audit records
//	GET /debug/pprof/*  — the standard runtime profiles
//
// File-based profiles (-cpuprofile/-memprofile) remain the job of
// internal/profiling; this handler serves the on-demand counterparts.
func NewOpsHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		recs := DefaultSpans.Snapshot()
		if req.URL.Query().Get("format") == "records" {
			_ = json.NewEncoder(w).Encode(struct {
				Total   uint64       `json:"total"`
				Dropped uint64       `json:"dropped"`
				Spans   []SpanRecord `json:"spans"`
			}{Total: DefaultSpans.Total(), Dropped: DefaultSpans.Dropped(), Spans: recs})
			return
		}
		_ = WriteChromeTrace(w, recs)
	})
	mux.HandleFunc("/rounds", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fr := CurrentFlightRecorder()
		resp := struct {
			Total   uint64            `json:"total"`
			Path    string            `json:"path"`
			Records []json.RawMessage `json:"records"`
		}{Records: []json.RawMessage{}}
		if fr != nil {
			resp.Total, resp.Path, resp.Records = fr.Total(), fr.Path(), fr.Recent()
		}
		_ = json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		SampleProcess()
		if req.URL.Query().Get("format") == "json" ||
			req.Header.Get("Accept") == "application/json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// OpsServer is a running ops endpoint (see ServeOps).
type OpsServer struct {
	server *http.Server
	addr   string
	errc   chan error
}

// ServeOps starts the ops endpoint for registry r on addr (":9090",
// "127.0.0.1:0" for an ephemeral port) on a background goroutine and
// returns once the listener is bound. The endpoint is read-only
// diagnostics; a failure to serve never takes the process down — the
// terminal error is delivered on Err instead.
func ServeOps(addr string, r *Registry) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: ops listen: %w", err)
	}
	srv := &http.Server{Handler: NewOpsHandler(r), ReadHeaderTimeout: 10 * time.Second}
	o := &OpsServer{server: srv, addr: ln.Addr().String(), errc: make(chan error, 1)}
	go func() {
		err := srv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		o.errc <- err
	}()
	return o, nil
}

// Addr returns the bound listen address.
func (o *OpsServer) Addr() string { return o.addr }

// Err returns the channel delivering the terminal serve error (nil after a
// clean Shutdown).
func (o *OpsServer) Err() <-chan error { return o.errc }

// Shutdown stops the endpoint gracefully.
func (o *OpsServer) Shutdown(ctx context.Context) error {
	return o.server.Shutdown(ctx)
}
