package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"log/slog"
	"strings"
	"testing"
)

// TestDefaultLoggerIsSilent pins invariant 1 of the package doc: an
// instrumented library importing obs emits nothing until a command
// installs a handler.
func TestDefaultLoggerIsSilent(t *testing.T) {
	SetLogger(nil)
	if Enabled(slog.LevelError) {
		t.Error("default logger enabled at error level")
	}
	// Must not panic, must not write anywhere.
	L().Error("dropped", "client", 3)
}

func TestSetLoggerRoundTrip(t *testing.T) {
	defer SetLogger(nil)
	var buf bytes.Buffer
	SetLogger(slog.New(NewConsoleHandler(&buf, slog.LevelInfo)))
	if !Enabled(slog.LevelInfo) {
		t.Fatal("console logger not enabled at info")
	}
	if Enabled(slog.LevelDebug) {
		t.Error("console logger enabled below its level")
	}
	L().Info("round complete", "round", 2, "ta", 85.5)
	L().Warn("client dropped", "client", 3)
	L().Debug("invisible")
	out := buf.String()
	if want := "round complete round=2 ta=85.5\n"; !strings.Contains(out, want) {
		t.Errorf("info line %q missing from %q", want, out)
	}
	if want := "WARN client dropped client=3\n"; !strings.Contains(out, want) {
		t.Errorf("warn line %q missing from %q", want, out)
	}
	if strings.Contains(out, "invisible") {
		t.Errorf("debug line leaked into %q", out)
	}
}

func TestConsoleHandlerWithAttrsAndGroup(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(NewConsoleHandler(&buf, slog.LevelInfo))
	l.With("round", 7).WithGroup("fl").Info("msg", "client", 1)
	if got, want := buf.String(), "msg round=7 fl.client=1\n"; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

// TestLogFlagsSetup drives the flag surface the commands share.
func TestLogFlagsSetup(t *testing.T) {
	defer SetLogger(nil)
	cases := []struct {
		level   string
		json    bool
		wantOn  slog.Level
		wantOff slog.Level
	}{
		{"debug", false, slog.LevelDebug, slog.Level(-100)},
		{"warn", false, slog.LevelWarn, slog.LevelInfo},
		{"error", true, slog.LevelError, slog.LevelWarn},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		f := &LogFlags{Level: &c.level, JSON: &c.json}
		if _, err := f.Setup(&buf); err != nil {
			t.Fatalf("Setup(%s): %v", c.level, err)
		}
		if !Enabled(c.wantOn) {
			t.Errorf("level %s: not enabled at %v", c.level, c.wantOn)
		}
		if c.wantOff > slog.Level(-100) && Enabled(c.wantOff) {
			t.Errorf("level %s: enabled at %v", c.level, c.wantOff)
		}
		if c.json {
			L().Error("boom", "k", "v")
			var rec map[string]any
			if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
				t.Errorf("JSON handler output not JSON: %v (%q)", err, buf.String())
			} else if rec["msg"] != "boom" || rec["k"] != "v" {
				t.Errorf("JSON record = %v", rec)
			}
		}
	}

	off := "off"
	no := false
	f := &LogFlags{Level: &off, JSON: &no}
	var buf bytes.Buffer
	if _, err := f.Setup(&buf); err != nil {
		t.Fatal(err)
	}
	if Enabled(slog.LevelError) {
		t.Error("level off: still enabled at error")
	}

	bad := "loud"
	f = &LogFlags{Level: &bad, JSON: &no}
	if _, err := f.Setup(&buf); err == nil {
		t.Error("unknown level accepted")
	}
}

// TestAddLogFlagsRegisters checks the flag names every command exposes.
func TestAddLogFlagsRegisters(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	old := flag.CommandLine
	flag.CommandLine = fs
	defer func() { flag.CommandLine = old }()
	f := AddLogFlags()
	if err := fs.Parse([]string{"-log-level", "warn", "-log-json"}); err != nil {
		t.Fatal(err)
	}
	if *f.Level != "warn" || !*f.JSON {
		t.Errorf("parsed flags: level=%q json=%v", *f.Level, *f.JSON)
	}
}
