package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func opsFixture() (*Registry, http.Handler) {
	r := NewRegistry()
	r.Counter("fl_rounds_total").Add(4)
	r.Gauge("parallel_pool_queue_depth").Set(2)
	r.Histogram("fl_round_seconds", []float64{1, 10}).Observe(0.5)
	return r, NewOpsHandler(r)
}

func TestOpsMetricsText(t *testing.T) {
	_, h := opsFixture()
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"fl_rounds_total 4",
		"parallel_pool_queue_depth 2",
		`fl_round_seconds_bucket{le="1"} 1`,
		"fl_round_seconds_count 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestOpsMetricsJSON(t *testing.T) {
	_, h := opsFixture()
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, url := range []string{srv.URL + "/metrics?format=json", srv.URL + "/metrics"} {
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		req.Header.Set("Accept", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var s Snapshot
		err = json.NewDecoder(resp.Body).Decode(&s)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
		if s.Counters["fl_rounds_total"] != 4 {
			t.Errorf("GET %s: fl_rounds_total = %d, want 4", url, s.Counters["fl_rounds_total"])
		}
		hs, ok := s.Histograms["fl_round_seconds"]
		if !ok || hs.Count != 1 || hs.Sum != 0.5 {
			t.Errorf("GET %s: histogram snapshot = %+v", url, hs)
		}
	}
}

func TestOpsHealthz(t *testing.T) {
	_, h := opsFixture()
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("GET /healthz: %d %q", resp.StatusCode, body)
	}
}

func TestOpsPprofIndex(t *testing.T) {
	_, h := opsFixture()
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("GET /debug/pprof/: %d, body misses profile index", resp.StatusCode)
	}
}

// TestServeOpsLifecycle drives the background server end to end: bind an
// ephemeral port, probe it over real TCP, shut down cleanly.
func TestServeOpsLifecycle(t *testing.T) {
	r, _ := opsFixture()
	o, err := ServeOps("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + o.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz over TCP: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := o.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-o.Err():
		if err != nil {
			t.Errorf("terminal serve error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("no terminal error after shutdown")
	}
}
