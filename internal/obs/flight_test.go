package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type testAudit struct {
	Round   int  `json:"round"`
	Applied bool `json:"applied"`
}

func TestFlightRecorderFileAndRecent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	fr, err := NewFlightRecorder(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := fr.Record(testAudit{Round: i, Applied: true}); err != nil {
			t.Fatal(err)
		}
	}
	if fr.Total() != 6 {
		t.Fatalf("Total = %d, want 6", fr.Total())
	}
	// The in-memory window keeps the newest 4, oldest first.
	recent := fr.Recent()
	if len(recent) != 4 {
		t.Fatalf("Recent kept %d records, want 4", len(recent))
	}
	for i, raw := range recent {
		var a testAudit
		if err := json.Unmarshal(raw, &a); err != nil {
			t.Fatalf("recent record %d is not JSON: %v", i, err)
		}
		if want := i + 2; a.Round != want {
			t.Fatalf("recent record %d: round %d, want %d", i, a.Round, want)
		}
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	// The file keeps everything: one JSON object per line, in order.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 6 {
		t.Fatalf("file holds %d lines, want 6", len(lines))
	}
	for i, line := range lines {
		var a testAudit
		if err := json.Unmarshal([]byte(line), &a); err != nil {
			t.Fatalf("file line %d is not JSON: %v", i, err)
		}
		if a.Round != i || !a.Applied {
			t.Fatalf("file line %d mangled: %+v", i, a)
		}
	}
}

func TestFlightRecorderMemoryOnly(t *testing.T) {
	fr, err := NewFlightRecorder("", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	if err := fr.Record(testAudit{Round: 1}); err != nil {
		t.Fatal(err)
	}
	if fr.Path() != "" || fr.Total() != 1 || len(fr.Recent()) != 1 {
		t.Fatalf("memory-only recorder misbehaved: path=%q total=%d recent=%d",
			fr.Path(), fr.Total(), len(fr.Recent()))
	}
}

func TestFlightRecorderUnmarshalable(t *testing.T) {
	fr, err := NewFlightRecorder("", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	if err := fr.Record(func() {}); err == nil {
		t.Fatal("unmarshalable record accepted")
	}
	if fr.Total() != 0 || len(fr.Recent()) != 0 {
		t.Fatal("failed record still counted")
	}
}

func TestGlobalFlightRecorder(t *testing.T) {
	prev := CurrentFlightRecorder()
	defer SetFlightRecorder(prev)
	fr, err := NewFlightRecorder("", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	SetFlightRecorder(fr)
	if CurrentFlightRecorder() != fr {
		t.Fatal("SetFlightRecorder did not install the recorder")
	}
}
