package obs

import (
	"runtime"
	"testing"
)

func TestSampleProcessSetsGauges(t *testing.T) {
	SampleProcess()
	if M.ProcessHeapAllocBytes.Value() <= 0 {
		t.Fatalf("process_heap_alloc_bytes = %d, want > 0", M.ProcessHeapAllocBytes.Value())
	}
	if M.ProcessSysBytes.Value() <= 0 {
		t.Fatalf("process_sys_bytes = %d, want > 0", M.ProcessSysBytes.Value())
	}
	if M.ProcessGoroutines.Value() <= 0 {
		t.Fatalf("process_goroutines = %d, want > 0", M.ProcessGoroutines.Value())
	}
	if runtime.GOOS == "linux" && M.ProcessRSSBytes.Value() <= 0 {
		t.Fatalf("process_rss_bytes = %d on linux, want > 0", M.ProcessRSSBytes.Value())
	}
}

func TestResidentBytesNonNegative(t *testing.T) {
	if rss := residentBytes(); rss < 0 {
		t.Fatalf("residentBytes = %d, want >= 0", rss)
	}
}
