package obs

import (
	"log/slog"
	"time"
)

// Span traces one coarse stage of work — a federated round, a defense
// pipeline phase, a remote call. It is a plain value: StartSpan stamps the
// wall clock, End observes the elapsed seconds into the span's latency
// histogram and, when the logger handles debug, emits paired start/end
// events. The warm start/end pair allocates nothing (the span lives on the
// caller's stack and the debug events are guarded by Enabled), so spans
// are safe around paths gated by make alloc-test.
//
// Spans deliberately do not form a tree and carry no context: the stages
// they cover are coarse and strictly nested by call structure, and keeping
// them value-typed is what keeps them free.
type Span struct {
	name  string
	hist  *Histogram
	start time.Time
}

// StartSpan begins a span. hist receives the duration in seconds at End
// and may be nil for spans that only exist for their events.
func StartSpan(name string, hist *Histogram) Span {
	if Enabled(slog.LevelDebug) {
		L().Debug("span start", "span", name)
	}
	return Span{name: name, hist: hist, start: time.Now()}
}

// End closes the span: it observes the elapsed duration and returns it.
// End on the zero Span is a harmless no-op returning a meaningless
// duration, so instrumented code never needs nil checks.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.hist != nil {
		s.hist.Observe(d.Seconds())
	}
	if s.name != "" && Enabled(slog.LevelDebug) {
		L().Debug("span end", "span", s.name, "dur", d)
	}
	return d
}
