package obs

import (
	"context"
	"log/slog"
	"time"
)

// Span traces one coarse stage of work — a federated round, a defense
// pipeline phase, a remote call. It is a plain value: StartSpan stamps the
// wall clock, End observes the elapsed seconds into the span's latency
// histogram and, when the logger handles debug, emits paired start/end
// events. The warm start/end pair allocates nothing (the span lives on the
// caller's stack and the debug events are guarded by Enabled), so spans
// are safe around paths gated by make alloc-test.
//
// Spans come in two flavors. StartSpan spans are context-free, exactly as
// before: no identity, no tree, nothing recorded beyond the histogram.
// StartRoot/StartChild spans additionally carry a SpanContext (DESIGN.md
// §16): they link into a per-trace tree via parent IDs, optionally tag the
// client/round/attempt they cover (WithClient, WithRound, WithAttempt),
// and on End record themselves into DefaultSpans, the process-wide ring
// served at /trace. Both flavors stay value-typed and allocation-free on
// the warm path.
type Span struct {
	name    string
	hist    *Histogram
	start   time.Time
	sc      SpanContext
	parent  SpanID
	client  int64
	round   int64
	attempt int64
}

// StartSpan begins an untraced span. hist receives the duration in seconds
// at End and may be nil for spans that only exist for their events.
func StartSpan(name string, hist *Histogram) Span {
	if Enabled(slog.LevelDebug) {
		L().Debug("span start", "span", name)
	}
	return Span{name: name, hist: hist, start: time.Now(), client: -1, round: -1, attempt: -1}
}

// StartRoot begins a traced span that roots a new trace: fresh TraceID,
// fresh SpanID, no parent. Use it at the top of a causal unit (one
// federated round, one defense pipeline run).
func StartRoot(name string, hist *Histogram) Span {
	s := StartSpan(name, hist)
	s.sc = SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	return s
}

// StartChild begins a traced span under the span context carried by ctx.
// When ctx carries none, the span roots a new trace instead, so call trees
// that are sometimes entered without a propagated parent still trace.
func StartChild(ctx context.Context, name string, hist *Histogram) Span {
	return StartChildOf(SpanContextFrom(ctx), name, hist)
}

// StartChildOf begins a traced span under an explicit parent context; a
// zero parent roots a new trace.
func StartChildOf(parent SpanContext, name string, hist *Histogram) Span {
	s := StartSpan(name, hist)
	if parent.Valid() {
		s.sc = SpanContext{Trace: parent.Trace, Span: NewSpanID()}
		s.parent = parent.Span
	} else {
		s.sc = SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	}
	return s
}

// Context returns the span's propagation context (zero for untraced
// spans). Hand it to ContextWithSpan or InjectHeaders so remote work joins
// this span's tree.
func (s Span) Context() SpanContext { return s.sc }

// WithClient tags the span with the client ID it covers.
func (s Span) WithClient(id int) Span { s.client = int64(id); return s }

// WithRound tags the span with the federated round it covers.
func (s Span) WithRound(t int) Span { s.round = int64(t); return s }

// WithAttempt tags the span with a transport attempt ordinal.
func (s Span) WithAttempt(n int) Span { s.attempt = int64(n); return s }

// End closes the span: it observes the elapsed duration into the
// histogram, records traced spans into DefaultSpans, and returns the
// duration. End on the zero Span returns 0 and records nothing — neither
// the histogram nor the ring sees it — so instrumented code never needs
// nil checks around conditionally started spans.
func (s Span) End() time.Duration {
	if s.start.IsZero() {
		return 0
	}
	d := time.Since(s.start)
	if s.hist != nil {
		s.hist.Observe(d.Seconds())
	}
	if s.sc.Valid() {
		DefaultSpans.append(internName(s.name), s.sc, s.parent,
			s.start.UnixNano(), d, s.client, s.round, s.attempt)
		M.TraceSpans.Inc()
	}
	if s.name != "" && Enabled(slog.LevelDebug) {
		L().Debug("span end", "span", s.name, "dur", d)
	}
	return d
}
