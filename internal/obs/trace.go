package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Distributed tracing (DESIGN.md §16). A trace is a tree of spans covering
// one causal unit of work — typically one federated round — across the
// server, its retried transport attempts, and the fleet processes serving
// them. The layer is deliberately tiny: IDs are 64-bit values from a
// seeded splitmix64 sequence (deterministic under SetTraceSeed, unique per
// process by default), parent links live in the Span value and flow
// through context.Context and two HTTP headers, and completed spans land
// in a bounded lock-free ring (SpanRing) that /trace serves as Chrome
// trace-event JSON. Recording a span on the warm path is a handful of
// atomic stores: no locks, no allocation, no change to model arithmetic
// or any existing RNG stream.

// TraceID identifies one trace (one round's tree). Zero means "no trace".
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no span".
type SpanID uint64

// String renders the ID as 16 lowercase hex digits, the wire form used in
// headers and JSON.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// MarshalJSON encodes the ID as a quoted hex string: 64-bit integers do
// not survive JSON number parsing in JavaScript-based trace viewers.
func (t TraceID) MarshalJSON() ([]byte, error) { return hexJSON(uint64(t)), nil }

// MarshalJSON encodes the ID as a quoted hex string.
func (s SpanID) MarshalJSON() ([]byte, error) { return hexJSON(uint64(s)), nil }

// UnmarshalJSON accepts the quoted hex form produced by MarshalJSON.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	v, err := hexJSONParse(b)
	*t = TraceID(v)
	return err
}

// UnmarshalJSON accepts the quoted hex form produced by MarshalJSON.
func (s *SpanID) UnmarshalJSON(b []byte) error {
	v, err := hexJSONParse(b)
	*s = SpanID(v)
	return err
}

func hexJSON(v uint64) []byte {
	b := make([]byte, 0, 18)
	b = append(b, '"')
	b = append(b, fmt.Sprintf("%016x", v)...)
	b = append(b, '"')
	return b
}

func hexJSONParse(b []byte) (uint64, error) {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace/span id %q: %w", s, err)
	}
	return v, nil
}

// SpanContext is the propagated identity of a span: the trace it belongs
// to and its own ID, which children record as their parent. The zero value
// means "not traced".
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

// ---- ID generation ---------------------------------------------------

// idState is the splitmix64 sequence state. Each NextSpanID advances it by
// the splitmix64 gamma and finalizes; the sequence is fully determined by
// the seed, so SetTraceSeed makes cross-run traces reproducible.
var idState atomic.Uint64

func init() {
	if v := os.Getenv("FEDCLEANSE_TRACE_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			SetTraceSeed(n)
			return
		}
	}
	// Default: unique per process so spans recorded by a server and a
	// fleet on the same machine cannot collide.
	idState.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)
}

// SetTraceSeed resets the ID sequence to a deterministic function of seed.
// Two processes given the same seed generate the same ID sequence — useful
// for reproducing a recorded trace, hazardous for concurrent processes
// tracing into one collector (give each a distinct seed). The environment
// variable FEDCLEANSE_TRACE_SEED seeds the process at startup.
func SetTraceSeed(seed int64) { idState.Store(uint64(seed)) }

// nextID returns the next nonzero 64-bit ID from the seeded sequence
// (splitmix64: one atomic add plus a finalizer, allocation-free).
func nextID() uint64 {
	for {
		z := idState.Add(0x9E3779B97F4A7C15)
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// NewTraceID draws a fresh trace ID.
func NewTraceID() TraceID { return TraceID(nextID()) }

// NewSpanID draws a fresh span ID.
func NewSpanID() SpanID { return SpanID(nextID()) }

// ---- name interning --------------------------------------------------

// Span names are interned to small integers so a completed span can be
// recorded into the ring with atomic stores only — no string ever lives in
// a ring slot, which is what keeps concurrent append/snapshot race-free.
// The set of distinct span names is tiny and fixed by the instrumentation,
// so the intern table stops growing almost immediately and the warm-path
// lookup is a read-locked map hit with no allocation.
var nameIntern struct {
	mu    sync.RWMutex
	ids   map[string]uint32
	names []string // names[id-1]; id 0 means "unnamed"
}

func internName(name string) uint32 {
	if name == "" {
		return 0
	}
	nameIntern.mu.RLock()
	id, ok := nameIntern.ids[name]
	nameIntern.mu.RUnlock()
	if ok {
		return id
	}
	nameIntern.mu.Lock()
	defer nameIntern.mu.Unlock()
	if id, ok := nameIntern.ids[name]; ok {
		return id
	}
	if nameIntern.ids == nil {
		nameIntern.ids = make(map[string]uint32)
	}
	nameIntern.names = append(nameIntern.names, name)
	id = uint32(len(nameIntern.names))
	nameIntern.ids[name] = id
	return id
}

func internedName(id uint32) string {
	if id == 0 {
		return ""
	}
	nameIntern.mu.RLock()
	defer nameIntern.mu.RUnlock()
	if int(id) > len(nameIntern.names) {
		return ""
	}
	return nameIntern.names[id-1]
}

// ---- the span ring ---------------------------------------------------

// SpanRecord is one completed span as read back from a SpanRing. Client,
// Round and Attempt are -1 when the span did not carry them.
type SpanRecord struct {
	Name    string        `json:"name"`
	Trace   TraceID       `json:"trace"`
	Span    SpanID        `json:"span"`
	Parent  SpanID        `json:"parent"`
	Start   int64         `json:"start_unix_nano"`
	Dur     time.Duration `json:"dur_ns"`
	Client  int64         `json:"client"`
	Round   int64         `json:"round"`
	Attempt int64         `json:"attempt"`
}

// ringSlot holds one record entirely in atomic fields. seq is the claim
// ticket: 0 while a writer is mid-store, index+1 once the slot is
// complete. Readers validate seq before and after copying, so a torn or
// in-progress slot is skipped rather than returned — and because every
// access is atomic, concurrent append/snapshot is clean under the race
// detector.
type ringSlot struct {
	seq     atomic.Uint64
	trace   atomic.Uint64
	span    atomic.Uint64
	parent  atomic.Uint64
	name    atomic.Uint32
	start   atomic.Int64
	dur     atomic.Int64
	client  atomic.Int64
	round   atomic.Int64
	attempt atomic.Int64
}

// SpanRing is a bounded lock-free ring of completed span records. Writers
// never block and never allocate: Append claims the next slot with one
// atomic add and fills it with atomic stores. When the ring laps, the
// oldest records are overwritten (Dropped counts them). Snapshot returns
// the surviving records oldest-first, skipping any slot a concurrent
// writer holds mid-store.
//
// The seq protocol tolerates readers racing one writer per slot; if
// writers lap the ring within a single snapshot (appends outpacing the
// read by a full ring length), the affected slots fail seq validation and
// are dropped from that snapshot. Size the ring well above the append rate
// between reads — the default 8192 holds several full rounds of a 100k
// fleet's server-side spans.
type SpanRing struct {
	slots []ringSlot
	mask  uint64
	pos   atomic.Uint64
}

// NewSpanRing returns a ring with capacity rounded up to a power of two
// (minimum 16).
func NewSpanRing(size int) *SpanRing {
	n := 16
	for n < size {
		n <<= 1
	}
	return &SpanRing{slots: make([]ringSlot, n), mask: uint64(n - 1)}
}

// DefaultSpans is the process-wide ring every traced Span records into.
var DefaultSpans = NewSpanRing(8192)

// Append records one completed span. It is safe for concurrent use and
// performs no allocation — the zero-alloc warm-path gate in alloc_test.go
// covers it.
func (r *SpanRing) Append(rec SpanRecord) {
	nameID := internName(rec.Name)
	idx := r.pos.Add(1) - 1
	s := &r.slots[idx&r.mask]
	s.seq.Store(0)
	s.trace.Store(uint64(rec.Trace))
	s.span.Store(uint64(rec.Span))
	s.parent.Store(uint64(rec.Parent))
	s.name.Store(nameID)
	s.start.Store(rec.Start)
	s.dur.Store(int64(rec.Dur))
	s.client.Store(rec.Client)
	s.round.Store(rec.Round)
	s.attempt.Store(rec.Attempt)
	s.seq.Store(idx + 1)
}

// append is the Span.End entry point: it avoids building a SpanRecord with
// a live string when the name is already interned.
func (r *SpanRing) append(nameID uint32, sc SpanContext, parent SpanID, start int64, dur time.Duration, client, round, attempt int64) {
	idx := r.pos.Add(1) - 1
	s := &r.slots[idx&r.mask]
	s.seq.Store(0)
	s.trace.Store(uint64(sc.Trace))
	s.span.Store(uint64(sc.Span))
	s.parent.Store(uint64(parent))
	s.name.Store(nameID)
	s.start.Store(start)
	s.dur.Store(int64(dur))
	s.client.Store(client)
	s.round.Store(round)
	s.attempt.Store(attempt)
	s.seq.Store(idx + 1)
}

// Total returns the number of spans ever appended.
func (r *SpanRing) Total() uint64 { return r.pos.Load() }

// Dropped returns how many of the appended spans have been overwritten.
func (r *SpanRing) Dropped() uint64 {
	total := r.pos.Load()
	if total <= uint64(len(r.slots)) {
		return 0
	}
	return total - uint64(len(r.slots))
}

// Reset empties the ring. Only tests should call it; it is not safe
// against concurrent appends.
func (r *SpanRing) Reset() {
	r.pos.Store(0)
	for i := range r.slots {
		r.slots[i].seq.Store(0)
	}
}

// Snapshot copies the surviving records, oldest first. Slots a concurrent
// writer holds mid-store (or has lapped since the snapshot began) fail
// their seq check and are skipped.
func (r *SpanRing) Snapshot() []SpanRecord {
	total := r.pos.Load()
	n := uint64(len(r.slots))
	if total < n {
		n = total
	}
	out := make([]SpanRecord, 0, n)
	for idx := total - n; idx < total; idx++ {
		s := &r.slots[idx&r.mask]
		if s.seq.Load() != idx+1 {
			continue
		}
		rec := SpanRecord{
			Trace:   TraceID(s.trace.Load()),
			Span:    SpanID(s.span.Load()),
			Parent:  SpanID(s.parent.Load()),
			Name:    internedName(s.name.Load()),
			Start:   s.start.Load(),
			Dur:     time.Duration(s.dur.Load()),
			Client:  s.client.Load(),
			Round:   s.round.Load(),
			Attempt: s.attempt.Load(),
		}
		if s.seq.Load() != idx+1 {
			continue
		}
		out = append(out, rec)
	}
	return out
}

// ---- context + header propagation ------------------------------------

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sc, for StartChild and
// InjectHeaders further down the call tree. Adding to a context allocates;
// do it once per coarse unit (per round), not per span.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanContextFrom extracts the span context from ctx; the zero
// SpanContext when none is present. The lookup does not allocate.
func SpanContextFrom(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// TraceHeader carries "trace-span" (two 16-hex-digit IDs) across process
// boundaries. It is orthogonal to the body encoding: the same header pair
// rides gob and versioned-envelope requests identically.
const TraceHeader = "Fedcleanse-Trace"

// InjectHeaders stamps sc onto h. Invalid contexts leave h untouched.
func InjectHeaders(h http.Header, sc SpanContext) {
	if !sc.Valid() {
		return
	}
	h.Set(TraceHeader, sc.Trace.String()+"-"+sc.Span.String())
}

// ExtractHeaders reads the span context from h; the zero SpanContext when
// the header is absent or malformed.
func ExtractHeaders(h http.Header) SpanContext {
	v := h.Get(TraceHeader)
	if len(v) != 33 || v[16] != '-' {
		return SpanContext{}
	}
	tr, err1 := strconv.ParseUint(v[:16], 16, 64)
	sp, err2 := strconv.ParseUint(v[17:], 16, 64)
	if err1 != nil || err2 != nil {
		return SpanContext{}
	}
	return SpanContext{Trace: TraceID(tr), Span: SpanID(sp)}
}

// ---- Chrome trace-event export ---------------------------------------

// chromeEvent is one "complete" event in the Chrome trace-event format
// (the JSON about:tracing and Perfetto load). ts/dur are microseconds.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Pid  int64           `json:"pid"`
	Tid  int64           `json:"tid"`
	Args chromeEventArgs `json:"args"`
}

type chromeEventArgs struct {
	Trace   TraceID `json:"trace"`
	Span    SpanID  `json:"span"`
	Parent  SpanID  `json:"parent"`
	Client  int64   `json:"client"`
	Round   int64   `json:"round"`
	Attempt int64   `json:"attempt"`
}

// WriteChromeTrace writes recs as a Chrome trace-event JSON object
// ({"traceEvents": [...]}), loadable in about:tracing or Perfetto. Rows
// group by trace: pid 1, tid = the trace ID's low 31 bits, so each round's
// tree renders as one track.
func WriteChromeTrace(w io.Writer, recs []SpanRecord) error {
	evs := make([]chromeEvent, 0, len(recs))
	for _, rec := range recs {
		evs = append(evs, chromeEvent{
			Name: rec.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   float64(rec.Start) / 1e3,
			Dur:  float64(rec.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  int64(uint64(rec.Trace) & 0x7fffffff),
			Args: chromeEventArgs{
				Trace:   rec.Trace,
				Span:    rec.Span,
				Parent:  rec.Parent,
				Client:  rec.Client,
				Round:   rec.Round,
				Attempt: rec.Attempt,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: evs})
}
