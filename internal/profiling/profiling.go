// Package profiling wires the standard pprof escape hatches into the
// repository's commands: -cpuprofile captures where a federated run spends
// its time, -memprofile captures what still allocates (the training hot
// path is allocation-free after warm-up — see DESIGN.md §8 — so the heap
// profile is dominated by model and dataset construction).
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered by AddFlags.
type Flags struct {
	CPU *string
	Mem *string
}

// AddFlags registers -cpuprofile and -memprofile on the default flag set.
// Call before flag.Parse.
func AddFlags() *Flags {
	return &Flags{
		CPU: flag.String("cpuprofile", "", "write a pprof CPU profile to this file"),
		Mem: flag.String("memprofile", "", "write a pprof heap profile to this file on exit"),
	}
}

// Start begins profiling per the parsed flags and returns the function that
// finalizes both profiles; defer it right after flag.Parse:
//
//	prof := profiling.AddFlags()
//	flag.Parse()
//	defer prof.Start()()
func (f *Flags) Start() (stop func()) {
	return Start(*f.CPU, *f.Mem)
}

// Start begins CPU profiling when cpuPath is non-empty and returns a stop
// function that ends the CPU profile and, when memPath is non-empty, writes
// a heap profile (after a GC, so it reflects live memory, not garbage).
// Profile-file errors are fatal: a profiling run that silently drops its
// profile is worse than one that fails loudly.
func Start(cpuPath, memPath string) (stop func()) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatalf("profiling: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("profiling: start CPU profile: %v", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fatalf("profiling: close CPU profile: %v", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fatalf("profiling: %v", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("profiling: write heap profile: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("profiling: close heap profile: %v", err)
			}
		}
	}
}

// fatalf is indirected for tests.
var fatalf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
