package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoopWhenUnset(t *testing.T) {
	stop := Start("", "")
	stop() // must not write anything or exit
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop := Start(cpu, mem)
	// Burn a little CPU so the profile has something to hold (an empty
	// profile file is still valid; this just exercises the running state).
	s := 0.0
	for i := 0; i < 1_000_000; i++ {
		s += float64(i)
	}
	_ = s
	stop()
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartFatalOnBadPath(t *testing.T) {
	prev := fatalf
	defer func() { fatalf = prev }()
	called := false
	fatalf = func(string, ...any) { called = true; panic("fatal") }
	func() {
		defer func() { recover() }()
		Start(filepath.Join(t.TempDir(), "no-such-dir", "cpu.pprof"), "")
	}()
	if !called {
		t.Fatal("unwritable CPU profile path did not fail")
	}
}
