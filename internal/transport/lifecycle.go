package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// lifecycle states.
const (
	lsIdle = iota
	lsServing
	lsClosed
)

// lifecycle is the serve-once state machine shared by this package's HTTP
// servers (ClientServer, Fleet): bind a listener, serve on a background
// goroutine, deliver the terminal error on a buffered channel, shut down
// at most once. Serve can be called at most once; a second call, or a
// call after shutdown, is an error.
type lifecycle struct {
	mu       sync.Mutex
	state    int
	listener net.Listener
	server   *http.Server
	errc     chan error
}

// serve binds addr ("127.0.0.1:0" for an ephemeral port), starts serving
// h on a background goroutine and returns the bound address.
func (l *lifecycle) serve(addr string, h http.Handler) (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch l.state {
	case lsServing:
		return "", errors.New("transport: Serve called twice")
	case lsClosed:
		return "", errors.New("transport: Serve after Shutdown")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen: %w", err)
	}
	l.listener = ln
	l.server = &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	l.errc = make(chan error, 1)
	l.state = lsServing
	srv, errc := l.server, l.errc
	go func() {
		err := srv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		errc <- err
	}()
	return ln.Addr().String(), nil
}

// errChan returns the terminal-error channel (nil before serve).
func (l *lifecycle) errChan() <-chan error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.errc
}

// shutdown stops the server gracefully. Safe before serve and safe to
// repeat; after shutdown the lifecycle cannot serve again.
func (l *lifecycle) shutdown(ctx context.Context) error {
	l.mu.Lock()
	srv := l.server
	l.state = lsClosed
	l.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}
