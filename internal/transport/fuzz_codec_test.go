package transport

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/metrics"
)

// Fuzz targets for the compact report codecs (codec.go). Two invariants:
//
//  1. Decoding arbitrary bytes never panics and never allocates more than
//     O(len(input)) — it either fails or yields a well-formed value.
//  2. The codecs are canonical: any input that decodes successfully
//     re-encodes to exactly the same bytes, and any value produced by an
//     encoder decodes back to an equal value (round-trip identity).
//
// Seed corpora live in testdata/fuzz/.

func FuzzDecodeRanksDelta(f *testing.F) {
	f.Add(AppendRanksDelta(nil, []int{3, 1, 2, 4}))
	f.Add(AppendRanksDelta(nil, nil))
	f.Add([]byte{TagRanksDelta, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, p []byte) {
		ranks, err := DecodeRanksDelta(p)
		if err != nil {
			return
		}
		if !bytes.Equal(AppendRanksDelta(nil, ranks), p) {
			t.Fatalf("accepted non-canonical RanksDelta %q", p)
		}
	})
}

func FuzzDecodeVoteBitmap(f *testing.F) {
	f.Add(AppendVoteBitmap(nil, []bool{true, false, true}))
	f.Add(AppendVoteBitmap(nil, nil))
	f.Add([]byte{TagVoteBitmap, 0x03, 0xff})
	f.Fuzz(func(t *testing.T, p []byte) {
		votes, err := DecodeVoteBitmap(p)
		if err != nil {
			return
		}
		if !bytes.Equal(AppendVoteBitmap(nil, votes), p) {
			t.Fatalf("accepted non-canonical VoteBitmap %q", p)
		}
	})
}

func FuzzDecodeActs8(f *testing.F) {
	f.Add(AppendActs8(nil, metrics.QuantizeActivations([]float64{1, 2, 3})))
	f.Add(AppendActs8(nil, metrics.QuantActs{}))
	f.Add([]byte{TagActs8, 0x04, 1, 2, 3})
	f.Fuzz(func(t *testing.T, p []byte) {
		q, err := DecodeActs8(p)
		if err != nil {
			return
		}
		if !bytes.Equal(AppendActs8(nil, q), p) {
			t.Fatalf("accepted non-canonical Acts8 %q", p)
		}
	})
}

func FuzzDecodeActs64(f *testing.F) {
	f.Add(AppendActs64(nil, []float64{0.25, -1, math.Inf(1)}))
	f.Add(AppendActs64(nil, nil))
	f.Add([]byte{TagActs64, 0x02, 0, 0, 0})
	f.Fuzz(func(t *testing.T, p []byte) {
		acts, err := DecodeActs64(p)
		if err != nil {
			return
		}
		if !bytes.Equal(AppendActs64(nil, acts), p) {
			t.Fatalf("accepted non-canonical Acts64 %q", p)
		}
	})
}

// FuzzRanksDeltaValueRoundtrip drives the encode side with fuzzer-chosen
// values: every int32 sequence must survive encode → decode unchanged.
func FuzzRanksDeltaValueRoundtrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 255, 255, 255, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ranks := make([]int, 0, len(raw)/4)
		for i := 0; i+4 <= len(raw); i += 4 {
			ranks = append(ranks, int(int32(binary.LittleEndian.Uint32(raw[i:]))))
		}
		got, err := DecodeRanksDelta(AppendRanksDelta(nil, ranks))
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if len(got) != len(ranks) {
			t.Fatalf("roundtrip length %d, want %d", len(got), len(ranks))
		}
		for i := range got {
			if got[i] != ranks[i] {
				t.Fatalf("roundtrip[%d] = %d, want %d", i, got[i], ranks[i])
			}
		}
	})
}
