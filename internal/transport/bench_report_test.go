package transport

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/metrics"
)

// benchReport is one client's full defense report at a 512-unit layer:
// the rank permutation, the vote bitmap and the mean activations they
// were derived from.
type benchReport struct {
	acts  []float64
	q     metrics.QuantActs
	ranks []int
	votes []bool
}

func makeBenchReport(units int) benchReport {
	rng := rand.New(rand.NewSource(8))
	acts := make([]float64, units)
	for i := range acts {
		acts[i] = rng.NormFloat64()
	}
	ranks := rng.Perm(units)
	votes := make([]bool, units)
	for i := range ranks {
		ranks[i]++
		votes[i] = rng.Intn(2) == 1
	}
	return benchReport{acts: acts, q: metrics.QuantizeActivations(acts), ranks: ranks, votes: votes}
}

// BenchmarkReportBytes measures the encoded size of one rank+vote report
// per wire mode and exports it as report-bytes/op (gated by `make
// bench-json`). The int8 case also exports shrink-vs-float64: how much
// smaller the quantized activation report is than the float64 activation
// report of identical structure — the bandwidth claim of DESIGN.md §14.
func BenchmarkReportBytes(b *testing.B) {
	rep := makeBenchReport(512)
	bench := func(name string, encode func(dst []byte) []byte) {
		var p []byte
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p = encode(p[:0])
			}
			b.ReportMetric(float64(len(p)), "report-bytes/op")
			b.SetBytes(int64(len(p)))
		})
	}

	bench("gob", func(dst []byte) []byte {
		buf := bytes.NewBuffer(dst)
		enc := gob.NewEncoder(buf)
		if err := enc.Encode(RankResponse{Ranks: rep.ranks}); err != nil {
			b.Fatal(err)
		}
		if err := enc.Encode(VoteResponse{Votes: rep.votes}); err != nil {
			b.Fatal(err)
		}
		return buf.Bytes()
	})
	bench("float64", func(dst []byte) []byte {
		return AppendVoteBitmap(AppendRanksDelta(dst, rep.ranks), rep.votes)
	})

	// float64-fidelity activation report vs its int8 twin: same
	// information path (activations + votes), two precisions.
	actsF64 := float64(len(AppendVoteBitmap(AppendActs64(nil, rep.acts), rep.votes)))
	b.Run("int8", func(b *testing.B) {
		var p []byte
		for i := 0; i < b.N; i++ {
			p = AppendVoteBitmap(AppendActs8(p[:0], rep.q), rep.votes)
		}
		b.ReportMetric(float64(len(p)), "report-bytes/op")
		b.ReportMetric(actsF64/float64(len(p)), "shrink-vs-float64")
		b.SetBytes(int64(len(p)))
	})
}

// BenchmarkReportRoundtrip measures encode+decode of one rank+vote report
// per wire mode — construction of the report values is excluded.
func BenchmarkReportRoundtrip(b *testing.B) {
	rep := makeBenchReport(512)

	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			enc := gob.NewEncoder(&buf)
			if err := enc.Encode(RankResponse{Ranks: rep.ranks}); err != nil {
				b.Fatal(err)
			}
			if err := enc.Encode(VoteResponse{Votes: rep.votes}); err != nil {
				b.Fatal(err)
			}
			dec := gob.NewDecoder(&buf)
			var rr RankResponse
			var vr VoteResponse
			if err := dec.Decode(&rr); err != nil {
				b.Fatal(err)
			}
			if err := dec.Decode(&vr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("float64", func(b *testing.B) {
		b.ReportAllocs()
		var p []byte
		for i := 0; i < b.N; i++ {
			p = AppendRanksDelta(p[:0], rep.ranks)
			if _, err := DecodeRanksDelta(p); err != nil {
				b.Fatal(err)
			}
			p = AppendVoteBitmap(p[:0], rep.votes)
			if _, err := DecodeVoteBitmap(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("int8", func(b *testing.B) {
		b.ReportAllocs()
		var p []byte
		for i := 0; i < b.N; i++ {
			p = AppendActs8(p[:0], rep.q)
			if _, err := DecodeActs8(p); err != nil {
				b.Fatal(err)
			}
			p = AppendVoteBitmap(p[:0], rep.votes)
			if _, err := DecodeVoteBitmap(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}
