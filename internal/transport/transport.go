// Package transport runs the federated protocol over real network
// connections: each client is an HTTP server speaking a small gob-encoded
// message protocol, and the aggregation server drives rounds through
// RemoteClient stubs. The in-process simulator (internal/fl) and this
// package share all interfaces, so a federation can mix local and remote
// participants; the transport tests verify bit-identical results between
// the two.
//
// The protocol has four endpoints, mirroring what the paper's server asks
// of clients:
//
//	POST /v1/update    — one round of local training; returns the delta
//	POST /v1/ranks     — RAP rank report for a layer
//	POST /v1/votes     — MVP vote report for a layer at a rate
//	POST /v1/accuracy  — client-reported accuracy (pruning feedback)
//
// Bodies are gob-encoded request/response structs. Model parameters travel
// as flat vectors; both sides hold the architecture (as in cross-silo FL
// deployments, where the model definition ships with the software).
package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/nn"
)

// Protocol messages.

// UpdateRequest asks the client for one round of local training from the
// given global parameters.
type UpdateRequest struct {
	Global []float64
	Round  int
}

// UpdateResponse carries the client's update delta.
type UpdateResponse struct {
	Delta []float64
}

// RankRequest asks for the client's RAP rank report on a layer of the
// model described by the global parameters.
type RankRequest struct {
	Global []float64
	Layer  int
}

// RankResponse carries the rank report.
type RankResponse struct {
	Ranks []int
}

// VoteRequest asks for the client's MVP vote report at a pruning rate.
type VoteRequest struct {
	Global []float64
	Layer  int
	Rate   float64
}

// VoteResponse carries the vote report.
type VoteResponse struct {
	Votes []bool
}

// AccuracyRequest asks the client to evaluate the given parameters on its
// local data.
type AccuracyRequest struct {
	Global []float64
}

// AccuracyResponse carries the reported accuracy.
type AccuracyResponse struct {
	Accuracy float64
}

// participant is the full client-side surface the transport exposes.
type participant interface {
	fl.Participant
	core.ReportClient
	core.AccuracyReporter
}

// ClientServer exposes one federated participant over HTTP.
type ClientServer struct {
	part participant
	// template provides the model architecture for report requests.
	template *nn.Sequential

	mu       sync.Mutex // serializes access to the participant
	listener net.Listener
	server   *http.Server
}

// NewClientServer wraps a participant (an fl.Client or fl.Attacker; both
// implement the defense reporting interfaces). template provides the model
// architecture and is cloned per request model reconstruction.
func NewClientServer(part participant, template *nn.Sequential) *ClientServer {
	return &ClientServer{part: part, template: template.Clone()}
}

// Serve starts listening on addr ("127.0.0.1:0" for an ephemeral port) and
// serves until Shutdown. It returns the bound address.
func (cs *ClientServer) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/update", cs.handleUpdate)
	mux.HandleFunc("/v1/ranks", cs.handleRanks)
	mux.HandleFunc("/v1/votes", cs.handleVotes)
	mux.HandleFunc("/v1/accuracy", cs.handleAccuracy)
	cs.listener = ln
	cs.server = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		// Serve exits with ErrServerClosed on Shutdown; other errors are
		// surfaced through failed client calls.
		_ = cs.server.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Shutdown stops the server.
func (cs *ClientServer) Shutdown(ctx context.Context) error {
	if cs.server == nil {
		return nil
	}
	return cs.server.Shutdown(ctx)
}

// modelFor reconstructs a model with the given parameters.
func (cs *ClientServer) modelFor(global []float64) *nn.Sequential {
	m := cs.template.Clone()
	m.SetParamsVector(global)
	return m
}

func (cs *ClientServer) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	cs.mu.Lock()
	delta := cs.part.LocalUpdate(req.Global, req.Round)
	cs.mu.Unlock()
	encodeBody(w, UpdateResponse{Delta: delta})
}

func (cs *ClientServer) handleRanks(w http.ResponseWriter, r *http.Request) {
	var req RankRequest
	if !decodeBody(w, r, &req) {
		return
	}
	cs.mu.Lock()
	ranks := cs.part.RankReport(cs.modelFor(req.Global), req.Layer)
	cs.mu.Unlock()
	encodeBody(w, RankResponse{Ranks: ranks})
}

func (cs *ClientServer) handleVotes(w http.ResponseWriter, r *http.Request) {
	var req VoteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	cs.mu.Lock()
	votes := cs.part.VoteReport(cs.modelFor(req.Global), req.Layer, req.Rate)
	cs.mu.Unlock()
	encodeBody(w, VoteResponse{Votes: votes})
}

func (cs *ClientServer) handleAccuracy(w http.ResponseWriter, r *http.Request) {
	var req AccuracyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	cs.mu.Lock()
	acc := cs.part.ReportAccuracy(cs.modelFor(req.Global))
	cs.mu.Unlock()
	encodeBody(w, AccuracyResponse{Accuracy: acc})
}

func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := gob.NewDecoder(r.Body).Decode(dst); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func encodeBody(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-gob")
	_, _ = w.Write(buf.Bytes())
}

// RemoteClient is the server-side stub for a client reachable over HTTP.
// It implements fl.Participant, core.ReportClient and
// core.AccuracyReporter, so it drops into both federated training and the
// defense pipeline.
type RemoteClient struct {
	id      int
	baseURL string
	httpc   *http.Client
}

var (
	_ fl.Participant        = (*RemoteClient)(nil)
	_ core.ReportClient     = (*RemoteClient)(nil)
	_ core.AccuracyReporter = (*RemoteClient)(nil)
)

// NewRemoteClient builds a stub for the client server at addr
// (host:port).
func NewRemoteClient(id int, addr string) *RemoteClient {
	return &RemoteClient{
		id:      id,
		baseURL: "http://" + addr,
		httpc:   &http.Client{Timeout: 5 * time.Minute},
	}
}

// ID implements fl.Participant.
func (rc *RemoteClient) ID() int { return rc.id }

// Dataset implements fl.Participant. Remote clients never expose their
// data — that is the point of federated learning — so it returns nil; the
// defense uses the report endpoints instead.
func (rc *RemoteClient) Dataset() *dataset.Dataset { return nil }

// LocalUpdate implements fl.Participant over the wire. Transport errors
// panic: the synchronous round protocol has no partial-failure story at
// this layer (fl.Server's failure-injection tests exercise participant
// dropout separately).
func (rc *RemoteClient) LocalUpdate(global []float64, round int) []float64 {
	var resp UpdateResponse
	rc.call("/v1/update", UpdateRequest{Global: global, Round: round}, &resp)
	return resp.Delta
}

// RankReport implements core.ReportClient over the wire.
func (rc *RemoteClient) RankReport(m *nn.Sequential, layerIdx int) []int {
	var resp RankResponse
	rc.call("/v1/ranks", RankRequest{Global: m.ParamsVector(), Layer: layerIdx}, &resp)
	return resp.Ranks
}

// VoteReport implements core.ReportClient over the wire.
func (rc *RemoteClient) VoteReport(m *nn.Sequential, layerIdx int, p float64) []bool {
	var resp VoteResponse
	rc.call("/v1/votes", VoteRequest{Global: m.ParamsVector(), Layer: layerIdx, Rate: p}, &resp)
	return resp.Votes
}

// ReportAccuracy implements core.AccuracyReporter over the wire.
func (rc *RemoteClient) ReportAccuracy(m *nn.Sequential) float64 {
	var resp AccuracyResponse
	rc.call("/v1/accuracy", AccuracyRequest{Global: m.ParamsVector()}, &resp)
	return resp.Accuracy
}

func (rc *RemoteClient) call(path string, req, resp any) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		panic(fmt.Sprintf("transport: encode %s: %v", path, err))
	}
	httpResp, err := rc.httpc.Post(rc.baseURL+path, "application/x-gob", &buf)
	if err != nil {
		panic(fmt.Sprintf("transport: %s: %v", path, err))
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("transport: %s: HTTP %d", path, httpResp.StatusCode))
	}
	if err := gob.NewDecoder(httpResp.Body).Decode(resp); err != nil {
		panic(fmt.Sprintf("transport: decode %s: %v", path, err))
	}
}
