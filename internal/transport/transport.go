// Package transport runs the federated protocol over real network
// connections: each client is an HTTP server speaking a small gob-encoded
// message protocol, and the aggregation server drives rounds through
// RemoteClient stubs. The in-process simulator (internal/fl) and this
// package share all interfaces, so a federation can mix local and remote
// participants; the transport tests verify bit-identical results between
// the two.
//
// The protocol has four endpoints, mirroring what the paper's server asks
// of clients:
//
//	POST /v1/update    — one round of local training; returns the delta
//	POST /v1/ranks     — RAP rank report for a layer
//	POST /v1/votes     — MVP vote report for a layer at a rate
//	POST /v1/accuracy  — client-reported accuracy (pruning feedback)
//
// Bodies are gob-encoded request/response structs. Model parameters travel
// as flat vectors; both sides hold the architecture (as in cross-silo FL
// deployments, where the model definition ships with the software).
// Report responses default to the compact tagged codecs of codec.go
// (varint-delta ranks, bit-packed votes, int8 activation payloads);
// receivers sniff the 1-byte tag and fall back to gob, so either side may
// run an older binary (DESIGN.md §14).
//
// Failure model (DESIGN.md §10): every remote call can fail — crashes,
// stragglers, partitions, corrupted responses. RemoteClient never panics;
// each logical call runs a bounded retry loop (per-attempt timeouts,
// capped exponential backoff) under the caller's context, and surfaces
// the final error through the fallible interfaces
// (fl.FallibleParticipant, core.FallibleReportClient,
// core.FallibleAccuracyReporter) that the round drivers use to record a
// dropout and continue on the surviving quorum. The deterministic
// FaultInjector in fault.go reproduces the failure modes in tests.
package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
)

// Protocol messages.

// UpdateRequest asks the client for one round of local training from the
// given global parameters.
type UpdateRequest struct {
	Global []float64
	Round  int
}

// UpdateResponse carries the client's update delta.
type UpdateResponse struct {
	Delta []float64
}

// RankRequest asks for the client's RAP rank report on a layer of the
// model described by the global parameters.
type RankRequest struct {
	Global []float64
	Layer  int
}

// RankResponse carries the rank report.
type RankResponse struct {
	Ranks []int
}

// VoteRequest asks for the client's MVP vote report at a pruning rate.
type VoteRequest struct {
	Global []float64
	Layer  int
	Rate   float64
}

// VoteResponse carries the vote report.
type VoteResponse struct {
	Votes []bool
}

// AccuracyRequest asks the client to evaluate the given parameters on its
// local data.
type AccuracyRequest struct {
	Global []float64
}

// AccuracyResponse carries the reported accuracy.
type AccuracyResponse struct {
	Accuracy float64
}

// participant is the full client-side surface the transport exposes.
type participant interface {
	fl.Participant
	core.ReportClient
	core.AccuracyReporter
}

// ReportWire selects how a server encodes its report responses.
type ReportWire int

const (
	// WireCompact answers report requests with the tagged compact codecs
	// of codec.go (the default).
	WireCompact ReportWire = iota
	// WireGob answers with the legacy gob response structs; receivers
	// interoperate transparently by sniffing the codec tag.
	WireGob
)

// ClientServer exposes one federated participant over HTTP.
type ClientServer struct {
	part participant
	// template provides the model architecture for report requests.
	template *nn.Sequential
	// maxBody bounds request bodies so a malicious or corrupted peer
	// cannot make the decoder allocate unboundedly.
	maxBody int64
	// wire selects the report response encoding; quant the report
	// precision shipped in compact mode (see handleRanks).
	wire  ReportWire
	quant metrics.ReportQuant
	// versioned switches /v1/update responses to the versioned envelope
	// encoding (update_codec.go) instead of legacy gob.
	versioned bool

	mu sync.Mutex // serializes access to the participant

	mwMu       sync.Mutex
	middleware func(http.Handler) http.Handler

	life lifecycle
}

// NewClientServer wraps a participant (an fl.Client or fl.Attacker; both
// implement the defense reporting interfaces). template provides the model
// architecture and is cloned per request model reconstruction.
func NewClientServer(part participant, template *nn.Sequential) *ClientServer {
	return &ClientServer{
		part:     part,
		template: template.Clone(),
		// A parameter vector gob-encodes to at most ~9 bytes per float64;
		// 16x plus slack accommodates every legitimate request.
		maxBody: int64(template.NumParams())*16 + 1<<16,
	}
}

// SetReportWire selects the report response encoding. It must be called
// before Serve or Handler.
func (cs *ClientServer) SetReportWire(w ReportWire) { cs.wire = w }

// SetVersionedUpdates selects the versioned envelope encoding for
// /v1/update responses (DESIGN.md §15). Receivers interoperate with
// either encoding transparently by first-byte sniffing, so a fleet can
// be migrated one server at a time. It must be called before Serve or
// Handler.
func (cs *ClientServer) SetVersionedUpdates(v bool) { cs.versioned = v }

// SetReportQuant selects the precision of compact-mode activation report
// payloads: ReportInt8 ships affine-quantized Acts8 payloads (the ~8x
// bandwidth mode, DESIGN.md §14); ReportFloat64 — the default — ships the
// client's losslessly-encoded rank/vote reports. It must be called before
// Serve or Handler.
func (cs *ClientServer) SetReportQuant(q metrics.ReportQuant) { cs.quant = q }

// SetMiddleware installs a handler wrapper applied around the protocol
// mux (tests use it to inject server-side faults). It must be called
// before Serve or Handler.
func (cs *ClientServer) SetMiddleware(mw func(http.Handler) http.Handler) {
	cs.mwMu.Lock()
	defer cs.mwMu.Unlock()
	cs.middleware = mw
}

// Handler returns the protocol handler (with any installed middleware),
// for callers that embed the endpoints into their own server.
func (cs *ClientServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/update", cs.handleUpdate)
	mux.HandleFunc("/v1/ranks", cs.handleRanks)
	mux.HandleFunc("/v1/votes", cs.handleVotes)
	mux.HandleFunc("/v1/accuracy", cs.handleAccuracy)
	cs.mwMu.Lock()
	mw := cs.middleware
	cs.mwMu.Unlock()
	if mw != nil {
		return mw(mux)
	}
	return mux
}

// Serve starts listening on addr ("127.0.0.1:0" for an ephemeral port) and
// serves until Shutdown. It returns the bound address. Serving happens on
// a background goroutine; its terminal error is delivered on the Err
// channel (nil after a clean Shutdown). Serve can be called at most once;
// a second call, or a call after Shutdown, returns an error.
func (cs *ClientServer) Serve(addr string) (string, error) {
	return cs.life.serve(addr, cs.Handler())
}

// Err returns the channel that delivers the terminal serve error: nil
// after a clean Shutdown, the net/http failure otherwise. It returns nil
// before Serve has been called.
func (cs *ClientServer) Err() <-chan error {
	return cs.life.errChan()
}

// Shutdown stops the server. Calling it before Serve (or twice) is safe;
// after Shutdown the ClientServer cannot serve again.
func (cs *ClientServer) Shutdown(ctx context.Context) error {
	return cs.life.shutdown(ctx)
}

// modelFor reconstructs a model with the given parameters.
func (cs *ClientServer) modelFor(global []float64) *nn.Sequential {
	m := cs.template.Clone()
	m.SetParamsVector(global)
	return m
}

// checkGlobal rejects parameter vectors that do not match the template
// architecture; without this a malformed-but-valid-gob body would panic
// SetParamsVector inside the handler.
func (cs *ClientServer) checkGlobal(w http.ResponseWriter, global []float64) bool {
	if len(global) != cs.template.NumParams() {
		http.Error(w, fmt.Sprintf("bad request: %d params, want %d",
			len(global), cs.template.NumParams()), http.StatusBadRequest)
		return false
	}
	return true
}

// checkLayer rejects out-of-range layer indices.
func (cs *ClientServer) checkLayer(w http.ResponseWriter, layer int) bool {
	if layer < 0 || layer >= cs.template.NumLayers() {
		http.Error(w, fmt.Sprintf("bad request: layer %d outside [0,%d)",
			layer, cs.template.NumLayers()), http.StatusBadRequest)
		return false
	}
	return true
}

// requestSpan opens the server-side span for one protocol request: a
// child of the caller's attempt span when the request carries trace
// headers — linking this process's work into the caller's round tree —
// and an untraced span otherwise, so callers without tracing do not
// scatter one-span trees through the ring.
func requestSpan(r *http.Request, name string, hist *obs.Histogram) obs.Span {
	if sc := obs.ExtractHeaders(r.Header); sc.Valid() {
		return obs.StartChildOf(sc, name, hist)
	}
	return obs.StartSpan(name, hist)
}

func (cs *ClientServer) handleUpdate(w http.ResponseWriter, r *http.Request) {
	sp := requestSpan(r, "client.update", nil).WithClient(cs.part.ID())
	defer func() { sp.End() }()
	var req UpdateRequest
	if !cs.decodeBody(w, r, &req) || !cs.checkGlobal(w, req.Global) {
		return
	}
	sp = sp.WithRound(req.Round)
	cs.mu.Lock()
	delta := cs.part.LocalUpdate(req.Global, req.Round)
	cs.mu.Unlock()
	if cs.versioned {
		w.Header().Set("Content-Type", updateContentType)
		_, _ = w.Write(AppendVersionedUpdate(nil, delta))
		return
	}
	encodeBody(w, UpdateResponse{Delta: delta})
}

func (cs *ClientServer) handleRanks(w http.ResponseWriter, r *http.Request) {
	sp := requestSpan(r, "client.ranks", nil).WithClient(cs.part.ID())
	defer sp.End()
	var req RankRequest
	if !cs.decodeBody(w, r, &req) || !cs.checkGlobal(w, req.Global) || !cs.checkLayer(w, req.Layer) {
		return
	}
	cs.mu.Lock()
	if cs.wire == WireGob {
		ranks := cs.part.RankReport(cs.modelFor(req.Global), req.Layer)
		cs.mu.Unlock()
		encodeReportGob(w, RankResponse{Ranks: ranks})
		return
	}
	payload := appendRankReport(nil, cs.part, cs.modelFor(req.Global), req.Layer, cs.quant)
	cs.mu.Unlock()
	writeReport(w, payload)
}

func (cs *ClientServer) handleVotes(w http.ResponseWriter, r *http.Request) {
	sp := requestSpan(r, "client.votes", nil).WithClient(cs.part.ID())
	defer sp.End()
	var req VoteRequest
	if !cs.decodeBody(w, r, &req) || !cs.checkGlobal(w, req.Global) || !cs.checkLayer(w, req.Layer) {
		return
	}
	if !(req.Rate >= 0 && req.Rate <= 1) { // also rejects NaN
		http.Error(w, fmt.Sprintf("bad request: rate %g outside [0,1]", req.Rate),
			http.StatusBadRequest)
		return
	}
	cs.mu.Lock()
	if cs.wire == WireGob {
		votes := cs.part.VoteReport(cs.modelFor(req.Global), req.Layer, req.Rate)
		cs.mu.Unlock()
		encodeReportGob(w, VoteResponse{Votes: votes})
		return
	}
	payload := appendVoteReport(nil, cs.part, cs.modelFor(req.Global), req.Layer, req.Rate, cs.quant)
	cs.mu.Unlock()
	writeReport(w, payload)
}

// appendRankReport builds the compact /v1/ranks payload for a report
// client. In int8 mode an ActivationReporter ships its quantized
// activation vector (Acts8) and the receiver reconstructs the ranks — one
// small payload serves both aggregations; otherwise the client-computed
// rank vector travels varint-delta encoded (RanksDelta), bit-identical to
// the gob values.
func appendRankReport(dst []byte, part core.ReportClient, m *nn.Sequential, layer int, quant metrics.ReportQuant) []byte {
	if ar, ok := part.(core.ActivationReporter); ok && quant == metrics.ReportInt8 {
		return AppendActs8(dst, metrics.QuantizeActivations(ar.ActivationReport(m, layer)))
	}
	return AppendRanksDelta(dst, part.RankReport(m, layer))
}

// appendVoteReport builds the compact /v1/votes payload: always a
// VoteBitmap. In int8 mode the votes are derived from the quantized
// activation vector, so they agree bit-for-bit with the ranks a receiver
// reconstructs from the same client's Acts8 payload.
func appendVoteReport(dst []byte, part core.ReportClient, m *nn.Sequential, layer int, rate float64, quant metrics.ReportQuant) []byte {
	if ar, ok := part.(core.ActivationReporter); ok && quant == metrics.ReportInt8 {
		q := metrics.QuantizeActivations(ar.ActivationReport(m, layer))
		return AppendVoteBitmap(dst, core.VotesFromQuantized(q.Q, rate))
	}
	return AppendVoteBitmap(dst, part.VoteReport(m, layer, rate))
}

// reportContentType marks a tagged compact report payload.
const reportContentType = "application/x-fedcleanse-report"

// writeReport sends a compact report payload, counting its bytes.
func writeReport(w http.ResponseWriter, payload []byte) {
	w.Header().Set("Content-Type", reportContentType)
	n, _ := w.Write(payload)
	obs.M.TransportReportBytesSent.Add(uint64(n))
}

// encodeReportGob is encodeBody plus the report byte counter, for the
// legacy report encoding.
func encodeReportGob(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-gob")
	n, _ := w.Write(buf.Bytes())
	obs.M.TransportReportBytesSent.Add(uint64(n))
}

func (cs *ClientServer) handleAccuracy(w http.ResponseWriter, r *http.Request) {
	sp := requestSpan(r, "client.accuracy", nil).WithClient(cs.part.ID())
	defer sp.End()
	var req AccuracyRequest
	if !cs.decodeBody(w, r, &req) || !cs.checkGlobal(w, req.Global) {
		return
	}
	cs.mu.Lock()
	acc := cs.part.ReportAccuracy(cs.modelFor(req.Global))
	cs.mu.Unlock()
	encodeBody(w, AccuracyResponse{Accuracy: acc})
}

func (cs *ClientServer) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	body := http.MaxBytesReader(w, r.Body, cs.maxBody)
	if err := gob.NewDecoder(body).Decode(dst); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func encodeBody(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-gob")
	_, _ = w.Write(buf.Bytes())
}

// RetryPolicy bounds RemoteClient's per-call retry loop.
type RetryPolicy struct {
	// MaxAttempts is the retry budget per logical call (minimum 1).
	MaxAttempts int
	// AttemptTimeout bounds each individual HTTP attempt; 0 means no
	// per-attempt deadline beyond the caller's context.
	AttemptTimeout time.Duration
	// BaseBackoff is the wait before the first retry; it doubles per
	// subsequent retry, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff (0 means BaseBackoff).
	MaxBackoff time.Duration
}

// DefaultRetryPolicy returns the production defaults: three attempts with
// 50 ms base backoff capped at 2 s, each attempt bounded to one minute.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    3,
		AttemptTimeout: time.Minute,
		BaseBackoff:    50 * time.Millisecond,
		MaxBackoff:     2 * time.Second,
	}
}

// withDefaults fills unset fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = p.BaseBackoff
	}
	return p
}

// backoff returns the wait before retry number n (0-based): capped
// exponential growth from BaseBackoff.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseBackoff
	for i := 0; i < n && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// StatusError is returned when the peer answers with a non-200 status.
type StatusError struct {
	Path string
	Code int
	Body string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("transport: %s: HTTP %d: %s", e.Path, e.Code, e.Body)
}

// permanent reports whether err cannot be cured by retrying the same
// bytes: client-side encode bugs and 4xx rejections.
func permanent(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code >= 400 && se.Code < 500
}

// RemoteOption configures a RemoteClient.
type RemoteOption func(*RemoteClient)

// WithRetryPolicy overrides the client's retry policy.
func WithRetryPolicy(p RetryPolicy) RemoteOption {
	return func(rc *RemoteClient) { rc.retry = p.withDefaults() }
}

// WithTransport installs a custom http.RoundTripper (fault injectors,
// instrumented transports). nil restores http.DefaultTransport.
func WithTransport(rt http.RoundTripper) RemoteOption {
	return func(rc *RemoteClient) { rc.httpc.Transport = rt }
}

// RemoteClient is the server-side stub for a client reachable over HTTP.
// It implements fl.Participant, core.ReportClient and
// core.AccuracyReporter, so it drops into both federated training and the
// defense pipeline — and their fallible extensions
// (fl.FallibleParticipant, core.FallibleReportClient,
// core.FallibleAccuracyReporter), which the round drivers prefer: a
// failed call becomes a recorded dropout, never a panic.
type RemoteClient struct {
	id      int
	baseURL string
	httpc   *http.Client
	retry   RetryPolicy

	errMu   sync.Mutex
	lastErr error
}

var (
	_ fl.Participant                = (*RemoteClient)(nil)
	_ fl.FallibleParticipant        = (*RemoteClient)(nil)
	_ core.ReportClient             = (*RemoteClient)(nil)
	_ core.FallibleReportClient     = (*RemoteClient)(nil)
	_ core.AccuracyReporter         = (*RemoteClient)(nil)
	_ core.FallibleAccuracyReporter = (*RemoteClient)(nil)
)

// NewRemoteClient builds a stub for the client server at addr
// (host:port) with the default retry policy.
func NewRemoteClient(id int, addr string, opts ...RemoteOption) *RemoteClient {
	rc := &RemoteClient{
		id:      id,
		baseURL: "http://" + addr,
		httpc:   &http.Client{},
		retry:   DefaultRetryPolicy(),
	}
	for _, opt := range opts {
		opt(rc)
	}
	return rc
}

// ID implements fl.Participant.
func (rc *RemoteClient) ID() int { return rc.id }

// Dataset implements fl.Participant. Remote clients never expose their
// data — that is the point of federated learning — so it returns nil; the
// defense uses the report endpoints instead.
func (rc *RemoteClient) Dataset() *dataset.Dataset { return nil }

// LastErr returns the error of the client's most recent failed call, or
// nil if the last call succeeded.
func (rc *RemoteClient) LastErr() error {
	rc.errMu.Lock()
	defer rc.errMu.Unlock()
	return rc.lastErr
}

func (rc *RemoteClient) noteErr(err error) {
	rc.errMu.Lock()
	rc.lastErr = err
	rc.errMu.Unlock()
}

// TryLocalUpdate implements fl.FallibleParticipant over the wire. The
// response body is sniffed by its first byte: a versioned KindUpdate
// envelope decodes through update_codec.go, anything else falls back to
// the legacy gob UpdateResponse — so one client release speaks to servers
// on either side of the encoding migration.
func (rc *RemoteClient) TryLocalUpdate(ctx context.Context, global []float64, round int) ([]float64, error) {
	resp, err := call[updatePayload](rc, ctx, "/v1/update", UpdateRequest{Global: global, Round: round})
	if err != nil {
		return nil, err
	}
	return resp.Delta, nil
}

// TryRankReport implements core.FallibleReportClient over the wire. The
// response payload is sniffed by codec tag: compact RanksDelta vectors
// decode directly, Acts8/Acts64 activation payloads are reconstructed into
// ranks server-side (core.RanksFromQuantized / RanksFromActivations), and
// untagged bodies fall back to the legacy gob decode.
func (rc *RemoteClient) TryRankReport(ctx context.Context, m *nn.Sequential, layerIdx int) ([]int, error) {
	resp, err := call[rankPayload](rc, ctx, "/v1/ranks", RankRequest{Global: m.ParamsVector(), Layer: layerIdx})
	if err != nil {
		return nil, err
	}
	return resp.Ranks, nil
}

// TryVoteReport implements core.FallibleReportClient over the wire, with
// the same tag-sniffing decode as TryRankReport (an activation payload is
// reconstructed into votes at the requested rate).
func (rc *RemoteClient) TryVoteReport(ctx context.Context, m *nn.Sequential, layerIdx int, p float64) ([]bool, error) {
	resp, err := callFrom(rc, ctx, "/v1/votes", VoteRequest{Global: m.ParamsVector(), Layer: layerIdx, Rate: p}, votePayload{Rate: p})
	if err != nil {
		return nil, err
	}
	return resp.Votes, nil
}

// maxReportBody bounds a report response body read; the largest
// legitimate payload (Acts64 at maxReportLen units) stays far below it.
const maxReportBody = 1 << 28

// bodyDecoder lets a response type own its wire decoding instead of the
// default gob path; decode failures inside an attempt retry like any
// other attempt failure.
type bodyDecoder interface {
	DecodeBody(r io.Reader) error
}

// rankPayload decodes a /v1/ranks response of any supported encoding.
type rankPayload struct {
	Ranks []int
}

// DecodeBody implements bodyDecoder.
func (rp *rankPayload) DecodeBody(r io.Reader) error {
	b, err := readReportBody(r)
	if err != nil {
		return err
	}
	switch {
	case len(b) == 0:
		return errors.New("transport: empty rank report")
	case b[0] == TagRanksDelta:
		rp.Ranks, err = DecodeRanksDelta(b)
	case b[0] == TagActs8:
		var q metrics.QuantActs
		if q, err = DecodeActs8(b); err == nil {
			rp.Ranks = core.RanksFromQuantized(q.Q)
		}
	case b[0] == TagActs64:
		var acts []float64
		if acts, err = DecodeActs64(b); err == nil {
			rp.Ranks = core.RanksFromActivations(acts)
		}
	case b[0] == TagVoteBitmap:
		return errors.New("transport: vote bitmap on the rank endpoint")
	default:
		var resp RankResponse
		if err = gob.NewDecoder(bytes.NewReader(b)).Decode(&resp); err == nil {
			rp.Ranks = resp.Ranks
		}
	}
	if err != nil {
		return err
	}
	obs.M.TransportReportBytesRecv.Add(uint64(len(b)))
	return nil
}

// votePayload decodes a /v1/votes response of any supported encoding;
// Rate must be set to the requested pruning rate before the call so an
// activation payload reconstructs the same votes the client would have
// sent.
type votePayload struct {
	Rate  float64
	Votes []bool
}

// DecodeBody implements bodyDecoder.
func (vp *votePayload) DecodeBody(r io.Reader) error {
	b, err := readReportBody(r)
	if err != nil {
		return err
	}
	switch {
	case len(b) == 0:
		return errors.New("transport: empty vote report")
	case b[0] == TagVoteBitmap:
		vp.Votes, err = DecodeVoteBitmap(b)
	case b[0] == TagActs8:
		var q metrics.QuantActs
		if q, err = DecodeActs8(b); err == nil {
			vp.Votes = core.VotesFromQuantized(q.Q, vp.Rate)
		}
	case b[0] == TagActs64:
		var acts []float64
		if acts, err = DecodeActs64(b); err == nil {
			vp.Votes = core.VotesFromActivations(acts, vp.Rate)
		}
	case b[0] == TagRanksDelta:
		return errors.New("transport: rank vector on the vote endpoint")
	default:
		var resp VoteResponse
		if err = gob.NewDecoder(bytes.NewReader(b)).Decode(&resp); err == nil {
			vp.Votes = resp.Votes
		}
	}
	if err != nil {
		return err
	}
	obs.M.TransportReportBytesRecv.Add(uint64(len(b)))
	return nil
}

// readReportBody slurps a bounded report response body.
func readReportBody(r io.Reader) ([]byte, error) {
	b, err := io.ReadAll(io.LimitReader(r, maxReportBody))
	if err != nil {
		return nil, fmt.Errorf("transport: read report body: %w", err)
	}
	return b, nil
}

// TryReportAccuracy implements core.FallibleAccuracyReporter over the
// wire.
func (rc *RemoteClient) TryReportAccuracy(ctx context.Context, m *nn.Sequential) (float64, error) {
	resp, err := call[AccuracyResponse](rc, ctx, "/v1/accuracy", AccuracyRequest{Global: m.ParamsVector()})
	if err != nil {
		return 0, err
	}
	return resp.Accuracy, nil
}

// LocalUpdate implements fl.Participant over the wire. A transport
// failure yields a nil delta, which fl's round drivers record as a
// dropout (the error is retained in LastErr); prefer TryLocalUpdate for
// explicit error handling.
func (rc *RemoteClient) LocalUpdate(global []float64, round int) []float64 {
	d, err := rc.TryLocalUpdate(context.Background(), global, round)
	if err != nil {
		return nil
	}
	return d
}

// RankReport implements core.ReportClient over the wire; failures yield a
// nil report, recorded as a dropout by the defense's report collection.
func (rc *RemoteClient) RankReport(m *nn.Sequential, layerIdx int) []int {
	r, err := rc.TryRankReport(context.Background(), m, layerIdx)
	if err != nil {
		return nil
	}
	return r
}

// VoteReport implements core.ReportClient over the wire; failures yield a
// nil report.
func (rc *RemoteClient) VoteReport(m *nn.Sequential, layerIdx int, p float64) []bool {
	v, err := rc.TryVoteReport(context.Background(), m, layerIdx, p)
	if err != nil {
		return nil
	}
	return v
}

// ReportAccuracy implements core.AccuracyReporter over the wire; failures
// yield NaN, which MeanReportedAccuracy skips as a dropout.
func (rc *RemoteClient) ReportAccuracy(m *nn.Sequential) float64 {
	a, err := rc.TryReportAccuracy(context.Background(), m)
	if err != nil {
		return math.NaN()
	}
	return a
}

// call runs one logical request through the retry loop: encode once, then
// up to MaxAttempts HTTP attempts with capped exponential backoff between
// them, each decoded into a fresh response value. Retries stop early on
// context cancellation and on permanent (4xx) rejections.
//
// Every logical call is traced as an obs span feeding
// transport_call_seconds — a child of the span context carried by ctx
// (DESIGN.md §16), so a round's tree covers its remote calls. Each HTTP
// attempt is a further child span with a fresh span ID, and that attempt
// span's context rides the request as trace headers: the receiving
// handler links under the exact attempt that reached it, retries
// included. Each attempt counts into transport_attempts_total (retries —
// and therefore backoff waits — into transport_retries_total),
// per-attempt failures log at debug with client/path/attempt attributes,
// and a call that exhausts its budget counts into
// transport_call_failures_total.
func call[Resp any](rc *RemoteClient, ctx context.Context, path string, req any) (Resp, error) {
	var zero Resp
	return callFrom(rc, ctx, path, req, zero)
}

// callFrom is call with a seeded response value: every attempt decodes
// into a fresh copy of init, which lets a bodyDecoder response carry
// request parameters (votePayload.Rate) into its decode.
func callFrom[Resp any](rc *RemoteClient, ctx context.Context, path string, req any, init Resp) (Resp, error) {
	sp := obs.StartChild(ctx, "transport.call", obs.M.TransportCallSeconds).WithClient(rc.id)
	defer sp.End()
	obs.M.TransportCalls.Inc()
	var zero Resp
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(req); err != nil {
		err = fmt.Errorf("transport: encode %s: %w", path, err)
		obs.M.TransportCallFailures.Inc()
		rc.noteErr(err)
		return zero, err
	}
	payload := body.Bytes()
	pol := rc.retry.withDefaults()
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			obs.M.TransportRetries.Inc()
			if err := sleepCtx(ctx, pol.backoff(attempt-1)); err != nil {
				break
			}
		}
		obs.M.TransportAttempts.Inc()
		asp := obs.StartChildOf(sp.Context(), "transport.attempt", nil).
			WithClient(rc.id).WithAttempt(attempt + 1)
		resp := init
		err := rc.attempt(ctx, pol, path, payload, &resp, asp.Context())
		asp.End()
		if err == nil {
			rc.noteErr(nil)
			return resp, nil
		}
		lastErr = err
		obs.L().Debug("transport: attempt failed",
			"client", rc.id, "path", path, "attempt", attempt+1, "of", pol.MaxAttempts, "err", err)
		if permanent(err) || ctx.Err() != nil {
			break
		}
	}
	if lastErr == nil { // context expired before the first attempt
		lastErr = fmt.Errorf("transport: %s: %w", path, ctx.Err())
	}
	obs.M.TransportCallFailures.Inc()
	obs.L().Debug("transport: call failed", "client", rc.id, "path", path, "err", lastErr)
	rc.noteErr(lastErr)
	return zero, lastErr
}

// attempt performs a single HTTP exchange under the per-attempt timeout.
// sc is the attempt span's context, injected as trace headers so the
// receiving handler joins this attempt's tree; the headers are orthogonal
// to the body encoding and ride gob and versioned-envelope requests alike.
func (rc *RemoteClient) attempt(ctx context.Context, pol RetryPolicy, path string, payload []byte, resp any, sc obs.SpanContext) error {
	if pol.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, pol.AttemptTimeout)
		defer cancel()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, rc.baseURL+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("transport: %s: %w", path, err)
	}
	hreq.Header.Set("Content-Type", "application/x-gob")
	obs.InjectHeaders(hreq.Header, sc)
	hresp, err := rc.httpc.Do(hreq)
	if err != nil {
		return fmt.Errorf("transport: %s: %w", path, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 256))
		return &StatusError{Path: path, Code: hresp.StatusCode, Body: string(bytes.TrimSpace(msg))}
	}
	if bd, ok := resp.(bodyDecoder); ok {
		if err := bd.DecodeBody(hresp.Body); err != nil {
			return fmt.Errorf("transport: decode %s: %w", path, err)
		}
		return nil
	}
	if err := gob.NewDecoder(hresp.Body).Decode(resp); err != nil {
		return fmt.Errorf("transport: decode %s: %w", path, err)
	}
	return nil
}

// sleepCtx waits for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
