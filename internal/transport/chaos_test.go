package transport

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// The chaos harness: the buildPopulation federation served over loopback
// HTTP with a deterministic FaultInjector on a minority of clients, either
// client-side (WithTransport) or server-side (SetMiddleware). Every chaos
// run is compared bit for bit against a fault-free run in which the same
// clients are excluded by an in-process DropPolicy — the tentpole
// guarantee that wire failures and policy drops are the same event.

// chaosMode selects which side of the wire injects the faults.
type chaosMode int

const (
	clientSide chaosMode = iota
	serverSide
)

// dropClients is the in-process DropPolicy equivalent of a permanently
// faulty remote client.
type dropClients map[int]bool

func (d dropClients) Dropped(id, _ int) bool { return d[id] }

// chaosSetup rebuilds the buildPopulation fixture from its seeds.
func chaosSetup() (train, test *dataset.Dataset, template *nn.Sequential, cfg fl.Config) {
	train, test = dataset.GenSynthMNIST(dataset.GenConfig{TrainPerClass: 30, TestPerClass: 10, Seed: 50})
	template = nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rand.New(rand.NewSource(51)))
	cfg = fl.Config{Rounds: 2, LocalEpochs: 1, BatchSize: 20, LR: 0.05, Quorum: 0.5}
	return train, test, template, cfg
}

// chaosClients rebuilds the 3-client population (attacker + 2 honest) from
// fixed seeds; every call yields bit-identical initial state.
func chaosClients(train *dataset.Dataset, template *nn.Sequential, cfg fl.Config) []fl.Participant {
	shards := dataset.PartitionKLabelForced(train, 3, 3, 40, rand.New(rand.NewSource(52)), 9, 1)
	poison := dataset.PoisonConfig{
		Trigger:     dataset.PixelPattern(3, train.Shape),
		VictimLabel: 9, TargetLabel: 1,
	}
	return []fl.Participant{
		fl.NewAttacker(0, shards[0], template, cfg, poison, 2, 53),
		fl.NewClient(1, shards[1], template, cfg, 54),
		fl.NewClient(2, shards[2], template, cfg, 55),
	}
}

// chaosRetry keeps permanently-faulty-client retries fast: hangs are cut
// off by the attempt timeout, backoff stays in the low milliseconds. Only
// safe for clients whose every exchange faults — a 200ms attempt timeout
// can cut off a legitimate training exchange on a slow run (e.g. under
// -race), and a timed-out LocalUpdate retrains on retry, breaking
// bit-identity. Clients expected to recover use recoverRetry instead.
func chaosRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, AttemptTimeout: 200 * time.Millisecond,
		BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
}

// recoverRetry is for clients whose faults fail instantly (conn reset):
// fast backoff, but a generous attempt timeout so a legitimate exchange
// is never cut off mid-training and retried.
func recoverRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, AttemptTimeout: time.Minute,
		BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
}

// serveChaos puts each participant behind an HTTP server and returns the
// remote stubs. inj maps a participant's slice index to its fault
// injector, installed per mode; faulty clients get the given retry policy.
func serveChaos(t *testing.T, parts []fl.Participant, template *nn.Sequential,
	inj map[int]*FaultInjector, retry RetryPolicy, mode chaosMode) (remote []fl.Participant, shutdown func()) {
	t.Helper()
	var servers []*ClientServer
	for i, p := range parts {
		cs := NewClientServer(p.(interface {
			fl.Participant
			core.ReportClient
			core.AccuracyReporter
		}), template)
		if mode == serverSide && inj[i] != nil {
			cs.SetMiddleware(inj[i].Middleware)
		}
		addr, err := cs.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, cs)
		opts := []RemoteOption{}
		if inj[i] != nil {
			opts = append(opts, WithRetryPolicy(retry))
			if mode == clientSide {
				opts = append(opts, WithTransport(inj[i]))
			}
		}
		remote = append(remote, NewRemoteClient(p.ID(), addr, opts...))
	}
	shutdown = func() {
		for _, s := range servers {
			_ = s.Shutdown(context.Background())
		}
	}
	return remote, shutdown
}

func assertSameParams(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: params length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: param %d = %v, want %v (chaos run diverges from drop-equivalent run)",
				label, i, got[i], want[i])
		}
	}
}

// TestChaosTrainingRoundsMatchDropRun: two training rounds in which client
// 2 (1/3 of the federation) fails every exchange — connection resets,
// HTTP 500s, hangs — must leave bit-identical global parameters and round
// telemetry to a fault-free run dropping client 2 by policy, under both
// injection modes and worker counts 1/2/8.
func TestChaosTrainingRoundsMatchDropRun(t *testing.T) {
	run := func(w int, mode chaosMode, sched Schedule) ([]float64, []fl.RoundResult) {
		prev := parallel.SetWorkers(w)
		defer parallel.SetWorkers(prev)
		train, _, template, cfg := chaosSetup()
		parts := chaosClients(train, template, cfg)
		var remote []fl.Participant
		if sched != nil {
			var shutdown func()
			remote, shutdown = serveChaos(t, parts, template,
				map[int]*FaultInjector{2: NewFaultInjector(sched)}, chaosRetry(), mode)
			defer shutdown()
		}
		var srv *fl.Server
		if sched != nil {
			srv = fl.NewServer(template, remote, cfg, 60)
		} else {
			srv = fl.NewServer(template, parts, cfg, 60)
			srv.Drop = dropClients{2: true}
		}
		var rounds []fl.RoundResult
		for r := 0; r < cfg.Rounds; r++ {
			rounds = append(rounds, srv.RoundDetail(r))
		}
		return srv.Model.ParamsVector(), rounds
	}

	refParams, refRounds := run(1, clientSide, nil)
	for _, res := range refRounds {
		if !res.Applied || len(res.Completed) != 2 || len(res.Dropped) != 1 || res.Dropped[0] != 2 {
			t.Fatalf("reference round telemetry off: %+v", res)
		}
	}
	cases := []struct {
		name    string
		mode    chaosMode
		workers []int
	}{
		{"client-side", clientSide, []int{1, 2, 8}},
		{"server-side", serverSide, []int{8}},
	}
	rotation := AlwaysFail{FaultConnError, FaultHTTP500, FaultHang}
	for _, tc := range cases {
		for _, w := range tc.workers {
			params, rounds := run(w, tc.mode, rotation)
			assertSameParams(t, tc.name, params, refParams)
			for r, res := range rounds {
				want := refRounds[r]
				if !sameIntSlices(res.Completed, want.Completed) ||
					!sameIntSlices(res.Dropped, want.Dropped) ||
					res.Applied != want.Applied {
					t.Fatalf("%s workers=%d round %d: %+v, want %+v", tc.name, w, r, res, want)
				}
				if len(res.Errs) != 1 || res.Errs[2] == nil {
					t.Fatalf("%s workers=%d round %d: errs %v, want one entry for client 2",
						tc.name, w, r, res.Errs)
				}
			}
		}
	}
}

func sameIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChaosPipelineMinorityFaultyBitIdentical is the acceptance chaos
// test: with 1 of 3 remote clients injecting timeouts (hangs), connection
// resets, HTTP 500s and truncated gob bodies on every exchange, federated
// training followed by the full defense pipeline must complete and be
// bit-identical to the fault-free run that drops the same client —
// across fault rotations (seeds of the schedule) and workers 1/2/8.
func TestChaosPipelineMinorityFaultyBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline chaos run is slow")
	}
	pipeCfg := func() core.PipelineConfig {
		pcfg := core.DefaultPipelineConfig()
		pcfg.FineTuneRounds = 2
		pcfg.FineTunePatience = 5
		pcfg.ReportQuorum = 0.5
		return pcfg
	}
	type out struct {
		params []float64
		rep    core.Report
	}
	wireRun := func(w int, sched Schedule) out {
		prev := parallel.SetWorkers(w)
		defer parallel.SetWorkers(prev)
		train, test, template, cfg := chaosSetup()
		parts := chaosClients(train, template, cfg)
		remote, shutdown := serveChaos(t, parts, template,
			map[int]*FaultInjector{2: NewFaultInjector(sched)}, chaosRetry(), clientSide)
		defer shutdown()
		srv := fl.NewServer(template, remote, cfg, 60)
		srv.Train(nil)
		m := srv.Model.Clone()
		rep := core.RunPipeline(m, fl.ReportClients(remote), srv,
			metrics.NewSuffixEvaluator(test, 0), pipeCfg())
		return out{params: m.ParamsVector(), rep: rep}
	}
	refRun := func() out {
		prev := parallel.SetWorkers(1)
		defer parallel.SetWorkers(prev)
		train, test, template, cfg := chaosSetup()
		parts := chaosClients(train, template, cfg)
		srv := fl.NewServer(template, parts, cfg, 60)
		srv.Drop = dropClients{2: true}
		srv.Train(nil)
		m := srv.Model.Clone()
		// The faulty client never delivers a report, so the equivalent
		// fault-free cohort simply does not contain it.
		rep := core.RunPipeline(m, fl.ReportClients(parts[:2]), srv,
			metrics.NewSuffixEvaluator(test, 0), pipeCfg())
		return out{params: m.ParamsVector(), rep: rep}
	}

	ref := refRun()
	if ref.rep.AccFinal <= 0 {
		t.Fatal("reference pipeline produced no evaluation")
	}
	rotations := []struct {
		name    string
		sched   Schedule
		workers []int
	}{
		{"rotation-a", AlwaysFail{FaultHang, FaultConnError, FaultHTTP500, FaultTruncate}, []int{1, 2, 8}},
		{"rotation-b", AlwaysFail{FaultConnError, FaultTruncate, FaultHTTP500, FaultHang}, []int{8}},
	}
	for _, rot := range rotations {
		for _, w := range rot.workers {
			got := wireRun(w, rot.sched)
			label := rot.name
			assertSameParams(t, label, got.params, ref.params)
			for _, acc := range []struct {
				name      string
				got, want float64
			}{
				{"AccBefore", got.rep.AccBefore, ref.rep.AccBefore},
				{"AccAfterPrune", got.rep.AccAfterPrune, ref.rep.AccAfterPrune},
				{"AccAfterFineTune", got.rep.AccAfterFineTune, ref.rep.AccAfterFineTune},
				{"AccFinal", got.rep.AccFinal, ref.rep.AccFinal},
			} {
				if acc.got != acc.want {
					t.Fatalf("%s workers=%d: %s = %v, want %v", label, w, acc.name, acc.got, acc.want)
				}
			}
			if !sameIntSlices(got.rep.ReportDropouts, []int{2}) {
				t.Fatalf("%s workers=%d: report dropouts %v, want [2]", label, w, got.rep.ReportDropouts)
			}
			if len(ref.rep.ReportDropouts) != 0 {
				t.Fatalf("fault-free reference recorded dropouts: %v", ref.rep.ReportDropouts)
			}
		}
	}
}

// TestChaosTransientFaultRecovers: a single connection reset on the first
// update attempt is absorbed by the retry loop — no dropout is recorded
// and training is bit-identical to a fault-free run, because the failed
// attempt never reached the participant.
func TestChaosTransientFaultRecovers(t *testing.T) {
	run := func(sched Schedule) ([]float64, []fl.RoundResult) {
		prev := parallel.SetWorkers(8)
		defer parallel.SetWorkers(prev)
		train, _, template, cfg := chaosSetup()
		parts := chaosClients(train, template, cfg)
		inj := map[int]*FaultInjector{}
		if sched != nil {
			inj[1] = NewFaultInjector(sched)
		}
		remote, shutdown := serveChaos(t, parts, template, inj, recoverRetry(), clientSide)
		defer shutdown()
		srv := fl.NewServer(template, remote, cfg, 60)
		var rounds []fl.RoundResult
		for r := 0; r < cfg.Rounds; r++ {
			rounds = append(rounds, srv.RoundDetail(r))
		}
		return srv.Model.ParamsVector(), rounds
	}
	refParams, _ := run(nil)
	params, rounds := run(Script{"/v1/update": {{Kind: FaultConnError}}})
	assertSameParams(t, "transient", params, refParams)
	for r, res := range rounds {
		if len(res.Dropped) != 0 || len(res.Errs) != 0 || len(res.Completed) != 3 {
			t.Fatalf("round %d recorded a dropout despite successful retry: %+v", r, res)
		}
	}
}

// TestRoundTimeoutReleasesHangingClient: a client that hangs forever is
// cut off by cfg.RoundTimeout — the round deadline cancels the in-flight
// request, records the dropout and returns instead of blocking.
func TestRoundTimeoutReleasesHangingClient(t *testing.T) {
	train, _, template, cfg := chaosSetup()
	cfg.Quorum = 0
	cfg.RoundTimeout = 300 * time.Millisecond
	parts := chaosClients(train, template, cfg)[2:3]
	inj := NewFaultInjector(AlwaysFail{FaultHang})
	var servers []*ClientServer
	cs := NewClientServer(parts[0].(interface {
		fl.Participant
		core.ReportClient
		core.AccuracyReporter
	}), template)
	addr, err := cs.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	servers = append(servers, cs)
	defer func() { _ = servers[0].Shutdown(context.Background()) }()
	// A generous retry policy: only the round deadline can release the hang.
	rc := NewRemoteClient(parts[0].ID(), addr,
		WithRetryPolicy(RetryPolicy{MaxAttempts: 3, AttemptTimeout: time.Minute}),
		WithTransport(inj))
	srv := fl.NewServer(template, []fl.Participant{rc}, cfg, 60)
	start := time.Now()
	res := srv.RoundDetail(0)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("round blocked %v on a hanging client", elapsed)
	}
	if res.Applied || len(res.Completed) != 0 {
		t.Fatalf("hanging-only round applied an update: %+v", res)
	}
	if len(res.Dropped) != 1 || res.Errs[res.Dropped[0]] == nil {
		t.Fatalf("hang not recorded as dropout: %+v", res)
	}
}

// TestFaultSchedulesDeterministic pins the schedule contracts: RandomFaults
// is a pure function of (seed, endpoint, call); Script falls back to the
// empty key and succeeds past its end; AlwaysFail cycles; the injector
// counts exchanges per endpoint.
func TestFaultSchedulesDeterministic(t *testing.T) {
	a := RandomFaults{Seed: 7, P: 0.5}
	b := RandomFaults{Seed: 7, P: 0.5}
	diverged := false
	other := RandomFaults{Seed: 8, P: 0.5}
	for call := 0; call < 200; call++ {
		for _, ep := range []string{"/v1/update", "/v1/ranks"} {
			if a.Fault(ep, call) != b.Fault(ep, call) {
				t.Fatalf("RandomFaults differs across equal seeds at (%s, %d)", ep, call)
			}
			if a.Fault(ep, call) != other.Fault(ep, call) {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("distinct seeds produced identical schedules")
	}

	s := Script{
		"/v1/update": {{Kind: FaultConnError}},
		"":           {{Kind: FaultHTTP500}},
	}
	if s.Fault("/v1/update", 0).Kind != FaultConnError {
		t.Fatal("script missed its scheduled fault")
	}
	if s.Fault("/v1/update", 1).Kind != FaultNone {
		t.Fatal("script faulted past the end of its sequence")
	}
	if s.Fault("/v1/votes", 0).Kind != FaultHTTP500 {
		t.Fatal("script fallback key not applied")
	}

	cyc := AlwaysFail{FaultConnError, FaultHang}
	if cyc.Fault("x", 0).Kind != FaultConnError || cyc.Fault("x", 3).Kind != FaultHang {
		t.Fatal("AlwaysFail does not cycle")
	}

	inj := NewFaultInjector(Script{})
	_ = inj.take("/v1/update")
	_ = inj.take("/v1/update")
	_ = inj.take("/v1/ranks")
	if inj.Calls("/v1/update") != 2 || inj.Calls("/v1/ranks") != 1 {
		t.Fatal("injector call counters wrong")
	}
}
