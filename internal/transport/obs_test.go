package transport

import (
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/obs"
)

// TestRemoteRunPopulatesMetrics is the observability acceptance test: a
// full remote federation — training rounds with one transient wire fault,
// then the defense pipeline over the wire — must leave non-zero round,
// retry and stage-latency metrics in the shared registry. Metric deltas
// are computed against a snapshot taken before the run, so the test is
// indifferent to what other tests in the process have already recorded.
func TestRemoteRunPopulatesMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("network defense pipeline is slow")
	}
	before := obs.Default.Snapshot()

	train, test, template, cfg := chaosSetup()
	parts := chaosClients(train, template, cfg)
	// One connection reset on the first update attempt: absorbed by the
	// retry loop, visible as transport_retries_total.
	inj := map[int]*FaultInjector{1: NewFaultInjector(Script{"/v1/update": {{Kind: FaultConnError}}})}
	remote, shutdown := serveChaos(t, parts, template, inj, recoverRetry(), clientSide)
	defer shutdown()

	srv := fl.NewServer(template, remote, cfg, 60)
	srv.Train(nil)
	pcfg := core.DefaultPipelineConfig()
	pcfg.FineTuneRounds = 1
	m := srv.Model.Clone()
	core.RunPipeline(m, fl.ReportClients(remote), srv, metrics.NewSuffixEvaluator(test, 0), pcfg)

	after := obs.Default.Snapshot()
	counterDelta := func(name string) uint64 {
		return after.Counters[name] - before.Counters[name]
	}
	histDelta := func(name string) uint64 {
		return after.Histograms[name].Count - before.Histograms[name].Count
	}

	if got := counterDelta("fl_rounds_total"); got < uint64(cfg.Rounds) {
		t.Errorf("fl_rounds_total delta = %d, want >= %d", got, cfg.Rounds)
	}
	if got := counterDelta("transport_calls_total"); got == 0 {
		t.Error("transport_calls_total did not move during a remote run")
	}
	if got := counterDelta("transport_retries_total"); got == 0 {
		t.Error("transport_retries_total = 0 despite an injected transient fault")
	}
	if got := counterDelta("defense_pipeline_runs_total"); got == 0 {
		t.Error("defense_pipeline_runs_total did not move")
	}
	for _, h := range []string{
		"fl_round_seconds",
		"transport_call_seconds",
		"defense_pipeline_seconds",
		"defense_prune_sweep_seconds",
		"defense_aw_sweep_seconds",
	} {
		if got := histDelta(h); got == 0 {
			t.Errorf("stage-latency histogram %s recorded no observations", h)
		}
	}
}
