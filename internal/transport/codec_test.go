package transport

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"

	"testing"

	"github.com/fedcleanse/fedcleanse/internal/metrics"
)

func TestRanksDeltaRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]int{
		nil,
		{},
		{1},
		{1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1},
		{math.MaxInt32, math.MinInt32, 0},
	}
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(600)
		perm := rng.Perm(n)
		for i := range perm {
			perm[i]++ // rank vectors are 1-based
		}
		cases = append(cases, perm)
	}
	for _, ranks := range cases {
		p := AppendRanksDelta(nil, ranks)
		got, err := DecodeRanksDelta(p)
		if err != nil {
			t.Fatalf("decode(%v): %v", ranks, err)
		}
		if len(got) != len(ranks) {
			t.Fatalf("roundtrip length %d, want %d", len(got), len(ranks))
		}
		for i := range got {
			if got[i] != ranks[i] {
				t.Fatalf("roundtrip[%d] = %d, want %d", i, got[i], ranks[i])
			}
		}
		// Canonical: re-encoding the decode reproduces the bytes.
		if !bytes.Equal(AppendRanksDelta(nil, got), p) {
			t.Fatalf("encoding not canonical for %v", ranks)
		}
	}
}

func TestRanksDeltaCompactness(t *testing.T) {
	// A 512-unit rank permutation must encode well below its gob size
	// (~1.4 KB) — deltas of a permutation of 1..512 fit 1-2 varint bytes.
	perm := rand.New(rand.NewSource(2)).Perm(512)
	for i := range perm {
		perm[i]++
	}
	p := AppendRanksDelta(nil, perm)
	if len(p) > 1100 {
		t.Fatalf("512-rank payload is %d bytes, want ≤ 1100", len(p))
	}
}

func TestVoteBitmapRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := [][]bool{nil, {}, {true}, {false}, {true, false, true}}
	for _, n := range []int{7, 8, 9, 64, 65, 512} {
		v := make([]bool, n)
		for i := range v {
			v[i] = rng.Intn(2) == 1
		}
		cases = append(cases, v)
	}
	for _, votes := range cases {
		p := AppendVoteBitmap(nil, votes)
		if want := 1 + uvarintLen(len(votes)) + (len(votes)+7)/8; len(p) != want {
			t.Fatalf("bitmap for %d votes is %d bytes, want %d", len(votes), len(p), want)
		}
		got, err := DecodeVoteBitmap(p)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(votes) {
			t.Fatalf("roundtrip length %d, want %d", len(got), len(votes))
		}
		for i := range got {
			if got[i] != votes[i] {
				t.Fatalf("roundtrip[%d] = %v, want %v", i, got[i], votes[i])
			}
		}
		if !bytes.Equal(AppendVoteBitmap(nil, got), p) {
			t.Fatal("encoding not canonical")
		}
	}
}

func uvarintLen(n int) int {
	l := 1
	for n >= 0x80 {
		n >>= 7
		l++
	}
	return l
}

func TestActs8Roundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 5, 64, 512} {
		acts := make([]float64, n)
		for i := range acts {
			acts[i] = rng.NormFloat64()
		}
		q := metrics.QuantizeActivations(acts)
		p := AppendActs8(nil, q)
		if want := 1 + uvarintLen(n) + 16 + n; len(p) != want {
			t.Fatalf("Acts8 for %d units is %d bytes, want %d", n, len(p), want)
		}
		got, err := DecodeActs8(p)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Scale != q.Scale || got.Zero != q.Zero || len(got.Q) != len(q.Q) {
			t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, q)
		}
		for i := range got.Q {
			if got.Q[i] != q.Q[i] {
				t.Fatalf("roundtrip Q[%d] = %d, want %d", i, got.Q[i], q.Q[i])
			}
		}
		if !bytes.Equal(AppendActs8(nil, got), p) {
			t.Fatal("encoding not canonical")
		}
	}
}

func TestActs64Roundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 64, 512} {
		acts := make([]float64, n)
		for i := range acts {
			acts[i] = rng.NormFloat64() * 1e3
		}
		p := AppendActs64(nil, acts)
		got, err := DecodeActs64(p)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != n {
			t.Fatalf("roundtrip length %d, want %d", len(got), n)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(acts[i]) {
				t.Fatalf("roundtrip[%d] = %g, want %g", i, got[i], acts[i])
			}
		}
		if !bytes.Equal(AppendActs64(nil, got), p) {
			t.Fatal("encoding not canonical")
		}
	}
}

func TestCodecsRejectMalformedInput(t *testing.T) {
	valid := map[string][]byte{
		"ranks":  AppendRanksDelta(nil, []int{3, 1, 2}),
		"votes":  AppendVoteBitmap(nil, []bool{true, false, true}),
		"acts8":  AppendActs8(nil, metrics.QuantizeActivations([]float64{1, 2, 3})),
		"acts64": AppendActs64(nil, []float64{1, 2, 3}),
	}
	decode := map[string]func([]byte) error{
		"ranks":  func(p []byte) error { _, err := DecodeRanksDelta(p); return err },
		"votes":  func(p []byte) error { _, err := DecodeVoteBitmap(p); return err },
		"acts8":  func(p []byte) error { _, err := DecodeActs8(p); return err },
		"acts64": func(p []byte) error { _, err := DecodeActs64(p); return err },
	}
	for name, p := range valid {
		dec := decode[name]
		if err := dec(nil); err == nil {
			t.Fatalf("%s: empty input accepted", name)
		}
		if err := dec([]byte{0x7f}); err == nil {
			t.Fatalf("%s: wrong tag accepted", name)
		}
		for cut := 1; cut < len(p); cut++ {
			if err := dec(p[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d accepted", name, cut)
			}
		}
		if err := dec(append(append([]byte{}, p...), 0)); err == nil {
			t.Fatalf("%s: trailing garbage accepted", name)
		}
		// A huge claimed length must be rejected before any allocation.
		huge := append([]byte{p[0]}, 0xff, 0xff, 0xff, 0xff, 0x7f)
		if err := dec(huge); err == nil {
			t.Fatalf("%s: huge length accepted", name)
		}
		// A non-minimal length varint (0x80 0x00 encodes 0 in two
		// bytes) would make the encoding non-canonical.
		if err := dec([]byte{p[0], 0x80, 0x00}); err == nil {
			t.Fatalf("%s: non-minimal length varint accepted", name)
		}
	}
	// Same for the delta stream inside a rank vector: zigzag(0) padded
	// to two bytes must be rejected.
	if _, err := DecodeRanksDelta([]byte{TagRanksDelta, 0x01, 0x80, 0x00}); err == nil {
		t.Fatal("ranks: non-minimal delta varint accepted")
	}
	// Nonzero padding bits in a vote bitmap are non-canonical.
	p := AppendVoteBitmap(nil, []bool{true, false, true})
	p[len(p)-1] |= 0x80
	if _, err := DecodeVoteBitmap(p); err == nil {
		t.Fatal("votes: nonzero pad bits accepted")
	}
}

// TestCodecTagsDodgeGob pins the backward-compatibility argument: a gob
// stream's first byte is the length of its leading type-descriptor
// message, which is always far above the codec tag range, so tag sniffing
// can never mistake a legacy body for a compact payload.
func TestCodecTagsDodgeGob(t *testing.T) {
	for _, v := range []any{
		RankResponse{Ranks: []int{1, 2, 3}},
		VoteResponse{Votes: []bool{true}},
		AccuracyResponse{Accuracy: 0.5},
		UpdateResponse{Delta: []float64{1}},
	} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatal(err)
		}
		if first := buf.Bytes()[0]; first <= TagActs64 {
			t.Fatalf("gob %T starts with byte 0x%02x, colliding with codec tags", v, first)
		}
	}
}
