package transport

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Deterministic fault injection for the transport layer. A FaultInjector
// reproduces the failure modes of a production federation — connection
// resets, server errors, hangs past the deadline, truncated responses,
// added latency — on a fixed, seeded schedule, so chaos tests can assert
// bit-identical results against an equivalent fault-free run. The same
// injector works on both sides of the wire: as an http.RoundTripper on a
// RemoteClient (WithTransport) and as middleware on a ClientServer
// (SetMiddleware).

// FaultKind enumerates the injectable failure modes.
type FaultKind int

const (
	// FaultNone lets the call proceed untouched.
	FaultNone FaultKind = iota
	// FaultConnError fails the exchange with a connection-level error
	// (client side: the request never leaves; server side: the connection
	// is torn down without a response).
	FaultConnError
	// FaultHTTP500 answers with an HTTP 500 without invoking the
	// participant.
	FaultHTTP500
	// FaultTruncate lets the exchange happen but cuts the response body
	// in half, so the gob decode fails mid-stream. Note the participant
	// DOES run: a retried update request retrains (see DESIGN.md §10 on
	// idempotency).
	FaultTruncate
	// FaultHang blocks until the request's context expires, modelling a
	// straggler past the deadline. The participant is never invoked.
	FaultHang
	// FaultLatency delays the call by Delay, then lets it proceed.
	FaultLatency
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultConnError:
		return "conn-error"
	case FaultHTTP500:
		return "http-500"
	case FaultTruncate:
		return "truncate"
	case FaultHang:
		return "hang"
	case FaultLatency:
		return "latency"
	default:
		return "FaultKind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Fault is one scheduled failure.
type Fault struct {
	Kind FaultKind
	// Delay applies to FaultLatency.
	Delay time.Duration
}

// Schedule decides which fault the n-th exchange (0-based, counted per
// endpoint path) suffers. Implementations must be deterministic functions
// of (endpoint, call) so chaos runs reproduce exactly; note that each
// retry attempt is its own exchange and consumes its own schedule slot.
type Schedule interface {
	Fault(endpoint string, call int) Fault
}

// Script is a fixed per-endpoint schedule: the n-th call to an endpoint
// takes the n-th fault of its slice; calls past the end succeed. The
// empty-string key is a fallback applied to endpoints without their own
// entry.
type Script map[string][]Fault

var _ Schedule = Script{}

// Fault implements Schedule.
func (s Script) Fault(endpoint string, call int) Fault {
	seq, ok := s[endpoint]
	if !ok {
		seq = s[""]
	}
	if call < len(seq) {
		return seq[call]
	}
	return Fault{}
}

// AlwaysFail cycles through its fault kinds forever on every endpoint — a
// permanently unreachable client whose every attempt fails differently.
type AlwaysFail []FaultKind

var _ Schedule = AlwaysFail{}

// Fault implements Schedule.
func (a AlwaysFail) Fault(_ string, call int) Fault {
	if len(a) == 0 {
		return Fault{}
	}
	return Fault{Kind: a[call%len(a)]}
}

// RandomFaults draws faults independently per exchange from a stream
// seeded by (Seed, endpoint, call) — stateless, so the schedule is
// deterministic regardless of call interleaving across goroutines.
type RandomFaults struct {
	Seed int64
	// P is the probability an exchange faults.
	P float64
	// Kinds is the fault mix drawn from uniformly; empty defaults to
	// {FaultConnError, FaultHTTP500, FaultHang}.
	Kinds []FaultKind
}

var _ Schedule = RandomFaults{}

// Fault implements Schedule.
func (r RandomFaults) Fault(endpoint string, call int) Fault {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", r.Seed, endpoint, call)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	if rng.Float64() >= r.P {
		return Fault{}
	}
	kinds := r.Kinds
	if len(kinds) == 0 {
		kinds = []FaultKind{FaultConnError, FaultHTTP500, FaultHang}
	}
	return Fault{Kind: kinds[rng.Intn(len(kinds))]}
}

// FaultInjector applies a Schedule to HTTP exchanges. One injector keeps
// one per-endpoint call counter, so use a separate injector per client
// (calls to different clients interleave nondeterministically under
// concurrency; calls to one client are sequenced by the round barrier).
type FaultInjector struct {
	sched Schedule
	rt    http.RoundTripper

	mu    sync.Mutex
	calls map[string]int
}

var _ http.RoundTripper = (*FaultInjector)(nil)

// NewFaultInjector builds an injector over the given schedule.
func NewFaultInjector(sched Schedule) *FaultInjector {
	return &FaultInjector{sched: sched, calls: make(map[string]int)}
}

// take consumes the next schedule slot for an endpoint.
func (f *FaultInjector) take(endpoint string) Fault {
	f.mu.Lock()
	n := f.calls[endpoint]
	f.calls[endpoint] = n + 1
	f.mu.Unlock()
	return f.sched.Fault(endpoint, n)
}

// Calls reports how many exchanges an endpoint has seen (test telemetry).
func (f *FaultInjector) Calls(endpoint string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[endpoint]
}

func (f *FaultInjector) base() http.RoundTripper {
	if f.rt != nil {
		return f.rt
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper: the client-side injection
// point, installed via WithTransport.
func (f *FaultInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	fault := f.take(req.URL.Path)
	switch fault.Kind {
	case FaultConnError:
		return nil, fmt.Errorf("injected: connection reset on %s", req.URL.Path)
	case FaultHTTP500:
		return &http.Response{
			Status:     "500 injected fault",
			StatusCode: http.StatusInternalServerError,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  make(http.Header),
			Body:    io.NopCloser(bytes.NewReader([]byte("injected fault"))),
			Request: req,
		}, nil
	case FaultHang:
		<-req.Context().Done()
		return nil, fmt.Errorf("injected: hang on %s: %w", req.URL.Path, req.Context().Err())
	case FaultLatency:
		if err := sleepCtx(req.Context(), fault.Delay); err != nil {
			return nil, fmt.Errorf("injected: latency on %s: %w", req.URL.Path, err)
		}
	case FaultTruncate:
		resp, err := f.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		full, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		cut := full[:len(full)/2]
		resp.Body = io.NopCloser(bytes.NewReader(cut))
		resp.ContentLength = int64(len(cut))
		resp.Header.Set("Content-Length", strconv.Itoa(len(cut)))
		return resp, nil
	}
	return f.base().RoundTrip(req)
}

// Middleware wraps a handler with the same fault schedule on the server
// side, for ClientServer.SetMiddleware.
func (f *FaultInjector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fault := f.take(r.URL.Path)
		switch fault.Kind {
		case FaultConnError:
			// net/http aborts the connection without writing a response.
			panic(http.ErrAbortHandler)
		case FaultHTTP500:
			http.Error(w, "injected fault", http.StatusInternalServerError)
			return
		case FaultHang:
			// Model a straggler: hold the response until the client gives
			// up. The body must be drained first — net/http starts watching
			// for client disconnect (which cancels r.Context()) only once
			// the request has been consumed.
			_, _ = io.Copy(io.Discard, r.Body)
			<-r.Context().Done()
			return
		case FaultLatency:
			_ = sleepCtx(r.Context(), fault.Delay)
		case FaultTruncate:
			rec := &bufferResponse{header: make(http.Header)}
			next.ServeHTTP(rec, r)
			// Declare the full length but send half: the client's decoder
			// fails with an unexpected EOF, exactly like a mid-transfer
			// connection loss.
			for k, vs := range rec.header {
				w.Header()[k] = vs
			}
			w.Header().Set("Content-Length", strconv.Itoa(rec.buf.Len()))
			w.WriteHeader(rec.statusOr200())
			_, _ = w.Write(rec.buf.Bytes()[:rec.buf.Len()/2])
			return
		}
		next.ServeHTTP(w, r)
	})
}

// bufferResponse captures a handler's response for the truncate fault.
type bufferResponse struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (b *bufferResponse) Header() http.Header { return b.header }

func (b *bufferResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferResponse) Write(p []byte) (int, error) {
	b.WriteHeader(http.StatusOK)
	return b.buf.Write(p)
}

func (b *bufferResponse) statusOr200() int {
	if b.status == 0 {
		return http.StatusOK
	}
	return b.status
}
