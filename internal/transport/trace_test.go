package transport

import (
	"context"
	"testing"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/obs"
)

// startTraceFleet serves one synthetic client and returns a stub for it.
func startTraceFleet(t *testing.T, versioned bool, opts ...RemoteOption) (*RemoteClient, func()) {
	t.Helper()
	f := NewFleet()
	f.SetVersionedUpdates(versioned)
	f.Add(&fl.SyntheticClient{Id: 0, Seed: 7, Units: 4})
	addr, err := f.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rc := NewRemoteClient(0, FleetClientAddr(addr, 0), opts...)
	return rc, func() { _ = f.Shutdown(context.Background()) }
}

// spansNamed waits for (at least) want ring records named name — the
// server handler's span ends concurrently with the client reading the
// response, so the record can trail the call by a scheduler beat.
func spansNamed(t *testing.T, name string, want int) []obs.SpanRecord {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got []obs.SpanRecord
		for _, rec := range obs.DefaultSpans.Snapshot() {
			if rec.Name == name {
				got = append(got, rec)
			}
		}
		if len(got) >= want {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never recorded %d %q spans (have %d)", want, name, len(got))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTraceHeaderVersionedUpdatesPropagation drives one update call per
// wire encoding — legacy gob and the versioned envelope — under a traced
// context. The trace context rides an HTTP header, orthogonal to the
// body encoding, so both encodings must land the server handler's span
// in the caller's trace, parented to the wire attempt that carried it.
func TestTraceHeaderVersionedUpdatesPropagation(t *testing.T) {
	for _, versioned := range []bool{false, true} {
		name := "gob"
		if versioned {
			name = "versioned"
		}
		t.Run(name, func(t *testing.T) {
			obs.DefaultSpans.Reset()
			rc, shutdown := startTraceFleet(t, versioned)
			defer shutdown()
			root := obs.StartRoot("test.root", nil)
			ctx := obs.ContextWithSpan(context.Background(), root.Context())
			if _, err := rc.TryLocalUpdate(ctx, []float64{1, 2, 3, 4}, 5); err != nil {
				t.Fatal(err)
			}
			trace := root.Context().Trace
			call := spansNamed(t, "transport.call", 1)[0]
			if call.Trace != trace || call.Parent != root.Context().Span {
				t.Fatalf("call span not a child of the root: %+v", call)
			}
			attempt := spansNamed(t, "transport.attempt", 1)[0]
			if attempt.Trace != trace || attempt.Parent != call.Span || attempt.Attempt != 1 {
				t.Fatalf("attempt span not a child of the call: %+v", attempt)
			}
			served := spansNamed(t, "fedload.update", 1)[0]
			if served.Trace != trace {
				t.Fatalf("server span landed in trace %s, want %s", served.Trace, trace)
			}
			if served.Parent != attempt.Span {
				t.Fatalf("server span parent %s, want the attempt %s", served.Parent, attempt.Span)
			}
			if served.Client != 0 || served.Round != 5 {
				t.Fatalf("server span lost its labels: %+v", served)
			}
		})
	}
}

// TestTraceFaultRetryKeepsTraceNewSpanPerAttempt injects one connection
// error: the retried call must stay in the same trace while each wire
// attempt gets a fresh span ID, and the server's span must hang off the
// attempt that actually reached it.
func TestTraceFaultRetryKeepsTraceNewSpanPerAttempt(t *testing.T) {
	obs.DefaultSpans.Reset()
	inj := NewFaultInjector(Script{"/c/0/v1/update": {{Kind: FaultConnError}}})
	rc, shutdown := startTraceFleet(t, false, WithRetryPolicy(chaosRetry()), WithTransport(inj))
	defer shutdown()
	root := obs.StartRoot("test.root", nil)
	ctx := obs.ContextWithSpan(context.Background(), root.Context())
	if _, err := rc.TryLocalUpdate(ctx, []float64{1, 2, 3, 4}, 1); err != nil {
		t.Fatal(err)
	}
	attempts := spansNamed(t, "transport.attempt", 2)
	if len(attempts) != 2 {
		t.Fatalf("got %d attempt spans, want 2", len(attempts))
	}
	if attempts[0].Trace != root.Context().Trace || attempts[1].Trace != attempts[0].Trace {
		t.Fatalf("attempts left the trace: %+v", attempts)
	}
	if attempts[0].Span == attempts[1].Span {
		t.Fatalf("retry reused the attempt span ID %s", attempts[0].Span)
	}
	if attempts[0].Attempt != 1 || attempts[1].Attempt != 2 {
		t.Fatalf("attempt numbering off: %d then %d", attempts[0].Attempt, attempts[1].Attempt)
	}
	if attempts[0].Parent != attempts[1].Parent {
		t.Fatalf("attempts have different parents: %+v", attempts)
	}
	served := spansNamed(t, "fedload.update", 1)
	if len(served) != 1 {
		t.Fatalf("server recorded %d update spans, want 1 (the surviving attempt)", len(served))
	}
	if served[0].Parent != attempts[1].Span {
		t.Fatalf("server span parent %s, want the second attempt %s", served[0].Parent, attempts[1].Span)
	}
}
