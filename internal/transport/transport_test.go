package transport

import (
	"context"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
)

// buildPopulation creates the same clients twice: once as in-process
// participants, once wrapped behind HTTP servers with remote stubs. The
// returned shutdown func stops all servers.
func buildPopulation(t *testing.T) (local []fl.Participant, remote []fl.Participant,
	template *nn.Sequential, test *dataset.Dataset, shutdown func()) {
	t.Helper()
	train, testDS := dataset.GenSynthMNIST(dataset.GenConfig{TrainPerClass: 30, TestPerClass: 10, Seed: 50})
	rng := rand.New(rand.NewSource(51))
	template = nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rng)
	cfg := fl.Config{Rounds: 2, LocalEpochs: 1, BatchSize: 20, LR: 0.05}

	mkClients := func() []fl.Participant {
		// Shards must be rebuilt identically for each population because
		// clients shuffle them in place during training.
		shards := dataset.PartitionKLabelForced(train, 3, 3, 40,
			rand.New(rand.NewSource(52)), 9, 1)
		poison := dataset.PoisonConfig{
			Trigger:     dataset.PixelPattern(3, train.Shape),
			VictimLabel: 9, TargetLabel: 1,
		}
		atk := fl.NewAttacker(0, shards[0], template, cfg, poison, 2, 53)
		return []fl.Participant{
			atk,
			fl.NewClient(1, shards[1], template, cfg, 54),
			fl.NewClient(2, shards[2], template, cfg, 55),
		}
	}

	local = mkClients()
	var servers []*ClientServer
	for _, p := range mkClients() {
		cs := NewClientServer(p.(interface {
			fl.Participant
			core.ReportClient
			core.AccuracyReporter
		}), template)
		addr, err := cs.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, cs)
		remote = append(remote, NewRemoteClient(p.ID(), addr))
	}
	shutdown = func() {
		for _, s := range servers {
			_ = s.Shutdown(context.Background())
		}
	}
	return local, remote, template, testDS, shutdown
}

// TestRemoteMatchesLocalTraining is the transport equivalence test: two
// federated rounds over real loopback HTTP must produce bit-identical
// global parameters to the in-process simulation.
func TestRemoteMatchesLocalTraining(t *testing.T) {
	local, remote, template, _, shutdown := buildPopulation(t)
	defer shutdown()
	cfg := fl.Config{Rounds: 2, LocalEpochs: 1, BatchSize: 20, LR: 0.05}

	srvLocal := fl.NewServer(template, local, cfg, 60)
	srvRemote := fl.NewServer(template, remote, cfg, 60)
	srvLocal.Train(nil)
	srvRemote.Train(nil)

	a, b := srvLocal.Model.ParamsVector(), srvRemote.Model.ParamsVector()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("remote and local training diverge at param %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestRemoteReports(t *testing.T) {
	local, remote, template, _, shutdown := buildPopulation(t)
	defer shutdown()
	li := template.LastConvIndex()

	lc := local[1].(core.ReportClient)
	rc := remote[1].(core.ReportClient)
	lr, rr := lc.RankReport(template, li), rc.RankReport(template, li)
	for i := range lr {
		if lr[i] != rr[i] {
			t.Fatalf("rank report differs at %d", i)
		}
	}
	lv, rv := lc.VoteReport(template, li, 0.5), rc.VoteReport(template, li, 0.5)
	for i := range lv {
		if lv[i] != rv[i] {
			t.Fatalf("vote report differs at %d", i)
		}
	}
	la := local[1].(core.AccuracyReporter).ReportAccuracy(template)
	ra := remote[1].(core.AccuracyReporter).ReportAccuracy(template)
	if la != ra {
		t.Fatalf("accuracy report differs: %g vs %g", la, ra)
	}
}

// TestRemoteDefensePipeline runs the full defense over the wire.
func TestRemoteDefensePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("network defense pipeline is slow")
	}
	_, remote, template, test, shutdown := buildPopulation(t)
	defer shutdown()
	cfg := fl.Config{Rounds: 2, LocalEpochs: 1, BatchSize: 20, LR: 0.05}
	srv := fl.NewServer(template, remote, cfg, 61)
	srv.Train(nil)

	pcfg := core.DefaultPipelineConfig()
	pcfg.FineTuneRounds = 2
	pcfg.FineTunePatience = 5
	m := srv.Model.Clone()
	evalFn := metrics.NewSuffixEvaluator(test, 0)
	rep := core.RunPipeline(m, fl.ReportClients(remote), srv, evalFn, pcfg)
	if rep.AccFinal <= 0 {
		t.Fatal("pipeline over the wire produced no evaluation")
	}
}

// fastRetry keeps failure tests quick: two attempts, millisecond backoff,
// short per-attempt timeout.
func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 2, AttemptTimeout: 250 * time.Millisecond,
		BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
}

func TestRemoteClientErrorsOnDeadServer(t *testing.T) {
	rc := NewRemoteClient(0, "127.0.0.1:1", WithRetryPolicy(fastRetry())) // nothing listens there
	if _, err := rc.TryLocalUpdate(context.Background(), make([]float64, 4), 0); err == nil {
		t.Fatal("dead server did not return an error")
	}
	// The infallible fl.Participant surface degrades to a nil delta (a
	// recorded dropout in the round drivers), never a panic.
	if d := rc.LocalUpdate(make([]float64, 4), 0); d != nil {
		t.Fatalf("dead server returned a delta: %v", d)
	}
	if rc.LastErr() == nil {
		t.Fatal("failed call left no LastErr")
	}
}

func TestRemoteClientRespectsCallerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rc := NewRemoteClient(0, "127.0.0.1:1", WithRetryPolicy(fastRetry()))
	if _, err := rc.TryLocalUpdate(ctx, make([]float64, 4), 0); err == nil {
		t.Fatal("cancelled context did not surface an error")
	}
}

func TestServeTwiceFails(t *testing.T) {
	local, _, template, _, shutdown := buildPopulation(t)
	defer shutdown()
	cs := NewClientServer(local[1].(interface {
		fl.Participant
		core.ReportClient
		core.AccuracyReporter
	}), template)
	if _, err := cs.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer cs.Shutdown(context.Background())
	if _, err := cs.Serve("127.0.0.1:0"); err == nil {
		t.Fatal("second Serve did not fail")
	}
}

func TestShutdownBeforeServeIsSafe(t *testing.T) {
	local, _, template, _, shutdown := buildPopulation(t)
	defer shutdown()
	cs := NewClientServer(local[1].(interface {
		fl.Participant
		core.ReportClient
		core.AccuracyReporter
	}), template)
	if err := cs.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown before Serve: %v", err)
	}
	if _, err := cs.Serve("127.0.0.1:0"); err == nil {
		t.Fatal("Serve after Shutdown did not fail")
	}
	if err := cs.Shutdown(context.Background()); err != nil {
		t.Fatalf("double Shutdown: %v", err)
	}
}

func TestServeErrorChannel(t *testing.T) {
	local, _, template, _, shutdown := buildPopulation(t)
	defer shutdown()
	mk := func() *ClientServer {
		return NewClientServer(local[1].(interface {
			fl.Participant
			core.ReportClient
			core.AccuracyReporter
		}), template)
	}

	// Clean shutdown delivers nil.
	cs := mk()
	if cs.Err() != nil {
		t.Fatal("Err non-nil before Serve")
	}
	if _, err := cs.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := cs.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-cs.Err(); err != nil {
		t.Fatalf("clean shutdown delivered %v, want nil", err)
	}

	// A listener failure out from under the server delivers the error.
	cs = mk()
	if _, err := cs.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	cs.life.listener.Close()
	select {
	case err := <-cs.Err():
		if err == nil {
			t.Fatal("listener failure delivered nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve error never delivered")
	}
}

func TestClientServerRejectsGet(t *testing.T) {
	local, _, template, _, shutdown := buildPopulation(t)
	defer shutdown()
	cs := NewClientServer(local[1].(interface {
		fl.Participant
		core.ReportClient
		core.AccuracyReporter
	}), template)
	addr, err := cs.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Shutdown(context.Background())
	resp, err := httpGet("http://" + addr + "/v1/update")
	if err != nil {
		t.Fatal(err)
	}
	if resp != 405 {
		t.Fatalf("GET returned %d, want 405", resp)
	}
}

// httpGet returns the status code of a GET request.
func httpGet(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

// TestReportWireModes: the same participant must produce equal reports
// through every wire encoding — legacy gob, compact float64 (varint
// ranks + vote bitmap) and compact int8 (Acts8 activation payloads
// reconstructed server-side) — with the int8 mode matching an in-process
// client configured for int8 reports bit-for-bit.
func TestReportWireModes(t *testing.T) {
	train, _ := dataset.GenSynthMNIST(dataset.GenConfig{TrainPerClass: 20, TestPerClass: 5, Seed: 70})
	rng := rand.New(rand.NewSource(71))
	template := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rng)
	cfg := fl.Config{Rounds: 1, LocalEpochs: 1, BatchSize: 20, LR: 0.05}
	li := template.LastConvIndex()

	mk := func() *fl.Client { return fl.NewClient(0, train, template, cfg, 72) }

	serve := func(configure func(*ClientServer)) (*RemoteClient, func()) {
		cs := NewClientServer(mk(), template)
		if configure != nil {
			configure(cs)
		}
		addr, err := cs.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return NewRemoteClient(0, addr), func() { _ = cs.Shutdown(context.Background()) }
	}

	// Reference reports straight from in-process clients.
	refRanks := mk().RankReport(template, li)
	refVotes := mk().VoteReport(template, li, 0.5)
	int8Client := mk()
	int8Client.SetReportQuant(metrics.ReportInt8)
	refRanks8 := int8Client.RankReport(template, li)
	refVotes8 := int8Client.VoteReport(template, li, 0.5)

	check := func(mode string, rc *RemoteClient, wantRanks []int, wantVotes []bool) {
		t.Helper()
		ranks, err := rc.TryRankReport(context.Background(), template, li)
		if err != nil {
			t.Fatalf("%s: TryRankReport: %v", mode, err)
		}
		for i := range wantRanks {
			if ranks[i] != wantRanks[i] {
				t.Fatalf("%s: rank[%d] = %d, want %d", mode, i, ranks[i], wantRanks[i])
			}
		}
		votes, err := rc.TryVoteReport(context.Background(), template, li, 0.5)
		if err != nil {
			t.Fatalf("%s: TryVoteReport: %v", mode, err)
		}
		for i := range wantVotes {
			if votes[i] != wantVotes[i] {
				t.Fatalf("%s: vote[%d] = %v, want %v", mode, i, votes[i], wantVotes[i])
			}
		}
	}

	rcGob, stop := serve(func(cs *ClientServer) { cs.SetReportWire(WireGob) })
	check("gob", rcGob, refRanks, refVotes)
	stop()

	rcCompact, stop := serve(nil)
	sent := obs.M.TransportReportBytesSent.Value()
	recv := obs.M.TransportReportBytesRecv.Value()
	check("compact-f64", rcCompact, refRanks, refVotes)
	if obs.M.TransportReportBytesSent.Value() == sent || obs.M.TransportReportBytesRecv.Value() == recv {
		t.Fatal("report byte counters did not move")
	}
	stop()

	rcInt8, stop := serve(func(cs *ClientServer) { cs.SetReportQuant(metrics.ReportInt8) })
	check("compact-int8", rcInt8, refRanks8, refVotes8)
	stop()
}
