package transport

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// The kill-and-restart chaos suite (DESIGN.md §15): a coordinator driving
// a wire-served federation is killed at scripted durability-critical
// instants — before any fold, mid-collection, after quorum but before the
// apply — and restarted as a fresh process image that resumes from its
// checkpoint directory. The resumed run must finish bit-identical to an
// uninterrupted in-process run that drops the same faulty client by
// policy, across worker counts, streaming shard counts and both update
// encodings. This is the wire-served extension of internal/fl's
// TestKillRestartBitIdentity: here the participants live behind HTTP
// servers that keep running while the coordinator dies, one client faults
// every exchange, and the restarted coordinator talks to the same fleet
// through brand-new RemoteClients.

// restartCfg is the suite's streaming round configuration.
func restartCfg(shards int) fl.Config {
	return fl.Config{Rounds: 5, SelectPerRound: 6, Quorum: 0.5,
		Streaming: true, Shards: shards, StreamWindow: 2}
}

// restartTemplate is the small fixed-architecture model the suite trains;
// every call is bit-identical.
func restartTemplate() *nn.Sequential {
	return nn.NewSmallCNN(nn.Input{C: 1, H: 8, W: 8}, 4, rand.New(rand.NewSource(7)))
}

// restartParts builds the 10 stateless synthetic participants; statelessness
// is what makes a resumed round's re-collection bit-identical (see
// fl.Server.ResumeFrom).
func restartParts() []fl.Participant {
	parts := make([]fl.Participant, 10)
	for i := range parts {
		parts[i] = &fl.SyntheticClient{Id: i, Seed: 11}
	}
	return parts
}

// restartFaulty is the client whose every exchange faults on the wire runs
// and who is dropped by policy in the reference run.
const restartFaulty = 3

// serveRestartFleet serves the synthetic participants over loopback HTTP,
// surviving coordinator "deaths" like a real fleet would. The faults are
// instant failures (resets, 500s) rather than hangs: the subject here is
// checkpoint durability, and hang handling is already pinned by the round
// -timeout chaos tests.
func serveRestartFleet(t *testing.T, template *nn.Sequential, versioned bool) (addrs []string, shutdown func()) {
	t.Helper()
	var servers []*ClientServer
	for _, p := range restartParts() {
		cs := NewClientServer(p.(*fl.SyntheticClient), template)
		cs.SetVersionedUpdates(versioned)
		addr, err := cs.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, cs)
		addrs = append(addrs, addr)
	}
	return addrs, func() {
		for _, s := range servers {
			_ = s.Shutdown(context.Background())
		}
	}
}

// newCoordinator builds a coordinator process image: fresh RemoteClients
// against the running fleet (the faulty one with its injector reinstalled,
// as a restarted binary would) and a checkpointing fl.Server.
func newCoordinator(template *nn.Sequential, addrs []string, cfg fl.Config, dir string) *fl.Server {
	remote := make([]fl.Participant, len(addrs))
	for i, addr := range addrs {
		opts := []RemoteOption{}
		if i == restartFaulty {
			opts = append(opts,
				WithRetryPolicy(chaosRetry()),
				WithTransport(NewFaultInjector(AlwaysFail{FaultConnError, FaultHTTP500})))
		}
		remote[i] = NewRemoteClient(i, addr, opts...)
	}
	s := fl.NewServer(template, remote, cfg, 77)
	if dir != "" {
		s.SetCheckpointer(&fl.Checkpointer{Dir: dir, EveryFolds: 1})
	}
	return s
}

// wireCrash is the sentinel the scripted CrashHook panics with; recovering
// it models a SIGKILL of the coordinator at that exact instant.
type wireCrash struct {
	point fl.CrashPoint
	round int
	folds int
}

// crashCoordinatorAt arms the kill, firing once at the given position.
func crashCoordinatorAt(s *fl.Server, point fl.CrashPoint, round, folds int) {
	fired := false
	s.CrashHook = func(p fl.CrashPoint, r, f int) {
		if fired || p != point || r != round || (point != fl.CrashPostQuorumPreApply && f != folds) {
			return
		}
		fired = true
		panic(wireCrash{p, r, f})
	}
}

// runCoordinatorUntilCrash drives rounds until the scripted kill fires.
func runCoordinatorUntilCrash(t *testing.T, s *fl.Server, rounds int) (crashed bool) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		died := func() (died bool) {
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(wireCrash); !ok {
						panic(rec)
					}
					died = true
				}
			}()
			s.RoundDetail(r)
			return false
		}()
		if died {
			return true
		}
	}
	return false
}

// TestChaosKillRestartWireBitIdentity sweeps the kill-and-restart matrix:
// workers 1/2/8 × streaming shards 1/8/64, the kill point and update
// encoding rotating across the nine combinations. Every resumed run must
// match the single uninterrupted drop-equivalent reference bit for bit —
// which simultaneously pins that checkpoint resume, shard count, worker
// count, wire faults and the update-encoding migration all leave the
// arithmetic untouched.
func TestChaosKillRestartWireBitIdentity(t *testing.T) {
	template := restartTemplate()
	const rounds = 5

	// Reference: uninterrupted, in-process, faulty client dropped by policy.
	ref := fl.NewServer(template, restartParts(), restartCfg(4), 77)
	ref.Drop = dropClients{restartFaulty: true}
	for r := 0; r < rounds; r++ {
		ref.RoundDetail(r)
	}
	refParams := ref.Model.ParamsVector()

	kills := []struct {
		name  string
		point fl.CrashPoint
		round int
		folds int
	}{
		{"pre-fold", fl.CrashPreFold, 2, 0},
		{"mid-collection", fl.CrashMidCollection, 2, 1},
		{"post-quorum-pre-apply", fl.CrashPostQuorumPreApply, 2, 0},
	}
	combo := 0
	for _, w := range []int{1, 2, 8} {
		for _, shards := range []int{1, 8, 64} {
			kill := kills[combo%len(kills)]
			versioned := combo%2 == 0
			combo++
			name := fmt.Sprintf("workers=%d/shards=%d/%s/versioned=%v", w, shards, kill.name, versioned)
			t.Run(name, func(t *testing.T) {
				prev := parallel.SetWorkers(w)
				defer parallel.SetWorkers(prev)
				addrs, shutdown := serveRestartFleet(t, template, versioned)
				defer shutdown()
				dir := t.TempDir()
				cfg := restartCfg(shards)

				s := newCoordinator(template, addrs, cfg, dir)
				crashCoordinatorAt(s, kill.point, kill.round, kill.folds)
				if !runCoordinatorUntilCrash(t, s, rounds) {
					t.Fatal("scripted coordinator kill never fired")
				}

				// Restart: a fresh coordinator image against the same fleet.
				res := newCoordinator(template, addrs, cfg, dir)
				next, resumed, err := res.ResumeLatest(dir)
				if err != nil {
					t.Fatal(err)
				}
				if !resumed {
					t.Fatal("no checkpoint found after the kill")
				}
				for r := next; r < rounds; r++ {
					res.RoundDetail(r)
				}
				assertSameParams(t, name, res.Model.ParamsVector(), refParams)
			})
		}
	}
}

// TestChaosRestartMidRoundRecordsWireDrops pins the telemetry half of a
// resumed interrupted round: the wire dropout recorded before the kill
// stays recorded after resume (from the checkpoint), the remaining cohort
// is re-collected, and the round's final telemetry matches the
// uninterrupted drop-equivalent round's.
func TestChaosRestartMidRoundRecordsWireDrops(t *testing.T) {
	template := restartTemplate()
	const rounds = 3

	ref := fl.NewServer(template, restartParts(), restartCfg(4), 77)
	ref.Drop = dropClients{restartFaulty: true}
	var refRounds []fl.RoundResult
	for r := 0; r < rounds; r++ {
		refRounds = append(refRounds, ref.RoundDetail(r))
	}

	addrs, shutdown := serveRestartFleet(t, template, true)
	defer shutdown()
	dir := t.TempDir()
	cfg := restartCfg(8)
	s := newCoordinator(template, addrs, cfg, dir)
	crashCoordinatorAt(s, fl.CrashMidCollection, 1, 2)
	if !runCoordinatorUntilCrash(t, s, rounds) {
		t.Fatal("scripted coordinator kill never fired")
	}
	res := newCoordinator(template, addrs, cfg, dir)
	next, resumed, err := res.ResumeLatest(dir)
	if err != nil || !resumed {
		t.Fatalf("resume: %v (found %v)", err, resumed)
	}
	if next != 1 {
		t.Fatalf("resumed at round %d, want the interrupted round 1", next)
	}
	var got []fl.RoundResult
	for r := next; r < rounds; r++ {
		got = append(got, res.RoundDetail(r))
	}
	for i, g := range got {
		want := refRounds[next+i]
		if !sameIntSlices(g.Selected, want.Selected) ||
			!sameIntSlices(g.Completed, want.Completed) ||
			!sameIntSlices(g.Dropped, want.Dropped) ||
			g.Applied != want.Applied {
			t.Fatalf("round %d: %+v, want %+v", next+i, g, want)
		}
	}
	assertSameParams(t, "resumed-telemetry", res.Model.ParamsVector(),
		ref.Model.ParamsVector())
}
