package transport

import (
	"context"
	"encoding/gob"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/obs"
)

// Fleet hosts many federated participants behind ONE listener, which is
// what makes tens of thousands of wire-attached clients practical in a
// load test: one OS process, one port, one http.Server, however many
// participants. Each participant answers at the path prefix /c/<id>, so
// the stub address for client 42 on a fleet bound to host:port is
//
//	host:port/c/42
//
// — exactly the addr NewRemoteClient expects (FleetClientAddr builds it),
// meaning the aggregation server drives a fleet through completely
// unmodified RemoteClients.
//
// The fleet serves the full protocol: the update endpoint
// (POST /c/<id>/v1/update) plus the defense's report endpoints
// (/v1/ranks, /v1/votes, /v1/accuracy) for participants that implement
// the reporting interfaces — fl.SyntheticClient answers them with canned
// deterministic reports, so a load run exercises the report wire path
// end to end. Report responses use the compact codecs of codec.go at the
// fleet's configured quantization (SetReportQuant). Every request is
// instrumented into the fedload_* metrics, and a participant panic is
// recovered to an HTTP 500 plus a fedload_handler_panics_total tick
// instead of taking down the other tens of thousands of clients sharing
// the process.
type Fleet struct {
	mu        sync.RWMutex
	slots     map[int]*fleetSlot
	maxBody   int64
	quant     metrics.ReportQuant
	versioned bool

	life lifecycle
}

// fleetSlot pairs a participant with the mutex serializing calls into it,
// matching ClientServer's one-call-at-a-time participant contract.
// (fl.SyntheticClient happens to be concurrency-safe, but the fleet does
// not assume that of an arbitrary Participant.)
type fleetSlot struct {
	mu   sync.Mutex
	part fl.Participant
}

// NewFleet builds an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{
		slots: make(map[int]*fleetSlot),
		// No template bounds the request size here (the fleet is
		// architecture-agnostic), so cap bodies at a size no legitimate
		// parameter vector in this codebase approaches.
		maxBody: 64 << 20,
	}
}

// SetMaxBody overrides the request-body cap (bytes).
func (f *Fleet) SetMaxBody(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.maxBody = n
}

// SetReportQuant selects the precision of the fleet's report responses
// (see ClientServer.SetReportQuant).
func (f *Fleet) SetReportQuant(q metrics.ReportQuant) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.quant = q
}

// SetVersionedUpdates selects the versioned envelope encoding for the
// fleet's update responses (see ClientServer.SetVersionedUpdates).
func (f *Fleet) SetVersionedUpdates(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.versioned = v
}

// Add registers participants under their IDs. A duplicate ID is a
// programming error and panics.
func (f *Fleet) Add(parts ...fl.Participant) {
	f.mu.Lock()
	for _, p := range parts {
		id := p.ID()
		if _, dup := f.slots[id]; dup {
			f.mu.Unlock()
			panic(fmt.Sprintf("transport: Fleet.Add: duplicate client %d", id))
		}
		f.slots[id] = &fleetSlot{part: p}
	}
	n := len(f.slots)
	f.mu.Unlock()
	obs.M.FedloadClients.Set(int64(n))
}

// Len reports the number of hosted participants.
func (f *Fleet) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.slots)
}

// FleetClientAddr returns the RemoteClient addr for client id on a fleet
// bound to addr (host:port).
func FleetClientAddr(addr string, id int) string {
	return addr + "/c/" + strconv.Itoa(id)
}

// Handler returns the fleet's protocol handler, wrapped in the
// panic-recovering middleware.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/c/", f.route)
	return recoverToError(mux)
}

// Serve starts listening on addr ("127.0.0.1:0" for an ephemeral port)
// and serves until Shutdown, returning the bound address. Serving runs on
// a background goroutine; the terminal error arrives on Err.
func (f *Fleet) Serve(addr string) (string, error) {
	return f.life.serve(addr, f.Handler())
}

// Err returns the channel delivering the terminal serve error (nil after
// a clean Shutdown); nil before Serve.
func (f *Fleet) Err() <-chan error { return f.life.errChan() }

// Shutdown stops the fleet gracefully.
func (f *Fleet) Shutdown(ctx context.Context) error {
	return f.life.shutdown(ctx)
}

// route dispatches /c/<id>/v1/* to the participant's slot.
func (f *Fleet) route(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/c/")
	idStr, tail, ok := strings.Cut(rest, "/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	id, err := strconv.Atoi(idStr)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	f.mu.RLock()
	slot := f.slots[id]
	maxBody := f.maxBody
	quant := f.quant
	versioned := f.versioned
	f.mu.RUnlock()
	if slot == nil {
		http.Error(w, fmt.Sprintf("unknown client %d", id), http.StatusNotFound)
		return
	}
	switch tail {
	case "v1/update":
		f.handleUpdate(w, r, slot, maxBody, versioned)
	case "v1/ranks":
		f.handleRanks(w, r, slot, maxBody, quant)
	case "v1/votes":
		f.handleVotes(w, r, slot, maxBody, quant)
	case "v1/accuracy":
		f.handleAccuracy(w, r, slot, maxBody)
	default:
		http.NotFound(w, r)
	}
}

// decodeFleetBody decodes one gob request under the fleet's body cap,
// counting the bytes into fedload_bytes_in_total.
func decodeFleetBody(w http.ResponseWriter, r *http.Request, maxBody int64, dst any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, maxBody)}
	err := gob.NewDecoder(body).Decode(dst)
	obs.M.FedloadBytesIn.Add(uint64(body.n))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// reportClient extracts the slot's reporting surface, answering 404 when
// the participant does not report (the status is 4xx on purpose:
// RemoteClient treats it as permanent and does not retry).
func reportClient(w http.ResponseWriter, slot *fleetSlot) (core.ReportClient, bool) {
	rc, ok := slot.part.(core.ReportClient)
	if !ok {
		http.Error(w, fmt.Sprintf("client %d serves no reports", slot.part.ID()), http.StatusNotFound)
	}
	return rc, ok
}

// handleRanks serves /c/<id>/v1/ranks from the participant's canned
// reports. The fleet is architecture-agnostic — it holds no model — so
// unlike ClientServer it validates neither the parameter vector nor the
// layer index; synthetic participants ignore both.
func (f *Fleet) handleRanks(w http.ResponseWriter, r *http.Request, slot *fleetSlot, maxBody int64, quant metrics.ReportQuant) {
	sp := requestSpan(r, "fedload.ranks", nil).WithClient(slot.part.ID())
	defer sp.End()
	var req RankRequest
	if !decodeFleetBody(w, r, maxBody, &req) {
		return
	}
	rc, ok := reportClient(w, slot)
	if !ok {
		return
	}
	slot.mu.Lock()
	payload := appendRankReport(nil, rc, nil, req.Layer, quant)
	slot.mu.Unlock()
	cw := &countingWriter{ResponseWriter: w}
	writeReport(cw, payload)
	obs.M.FedloadBytesOut.Add(uint64(cw.n))
	obs.M.FedloadReports.Inc()
}

// handleVotes serves /c/<id>/v1/votes from the participant's canned
// reports.
func (f *Fleet) handleVotes(w http.ResponseWriter, r *http.Request, slot *fleetSlot, maxBody int64, quant metrics.ReportQuant) {
	sp := requestSpan(r, "fedload.votes", nil).WithClient(slot.part.ID())
	defer sp.End()
	var req VoteRequest
	if !decodeFleetBody(w, r, maxBody, &req) {
		return
	}
	if !(req.Rate >= 0 && req.Rate <= 1) { // also rejects NaN
		http.Error(w, fmt.Sprintf("bad request: rate %g outside [0,1]", req.Rate), http.StatusBadRequest)
		return
	}
	rc, ok := reportClient(w, slot)
	if !ok {
		return
	}
	slot.mu.Lock()
	payload := appendVoteReport(nil, rc, nil, req.Layer, req.Rate, quant)
	slot.mu.Unlock()
	cw := &countingWriter{ResponseWriter: w}
	writeReport(cw, payload)
	obs.M.FedloadBytesOut.Add(uint64(cw.n))
	obs.M.FedloadReports.Inc()
}

// handleAccuracy serves /c/<id>/v1/accuracy.
func (f *Fleet) handleAccuracy(w http.ResponseWriter, r *http.Request, slot *fleetSlot, maxBody int64) {
	sp := requestSpan(r, "fedload.accuracy", nil).WithClient(slot.part.ID())
	defer sp.End()
	var req AccuracyRequest
	if !decodeFleetBody(w, r, maxBody, &req) {
		return
	}
	ar, ok := slot.part.(core.AccuracyReporter)
	if !ok {
		http.Error(w, fmt.Sprintf("client %d serves no reports", slot.part.ID()), http.StatusNotFound)
		return
	}
	slot.mu.Lock()
	acc := ar.ReportAccuracy(nil)
	slot.mu.Unlock()
	cw := &countingWriter{ResponseWriter: w}
	encodeBody(cw, AccuracyResponse{Accuracy: acc})
	obs.M.FedloadBytesOut.Add(uint64(cw.n))
	obs.M.FedloadReports.Inc()
}

func (f *Fleet) handleUpdate(w http.ResponseWriter, r *http.Request, slot *fleetSlot, maxBody int64, versioned bool) {
	sp := requestSpan(r, "fedload.update", obs.M.FedloadUpdateSeconds).WithClient(slot.part.ID())
	defer func() { sp.End() }()
	var req UpdateRequest
	if !decodeFleetBody(w, r, maxBody, &req) {
		return
	}
	sp = sp.WithRound(req.Round)
	slot.mu.Lock()
	delta := slot.part.LocalUpdate(req.Global, req.Round)
	slot.mu.Unlock()
	cw := &countingWriter{ResponseWriter: w}
	if versioned {
		cw.Header().Set("Content-Type", updateContentType)
		_, _ = cw.Write(AppendVersionedUpdate(nil, delta))
	} else {
		encodeBody(cw, UpdateResponse{Delta: delta})
	}
	obs.M.FedloadBytesOut.Add(uint64(cw.n))
	obs.M.FedloadUpdates.Inc()
}

// recoverToError converts a handler panic into an HTTP 500 and a
// fedload_handler_panics_total tick, isolating one faulty participant
// from the rest of the fleet.
func recoverToError(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				obs.M.FedloadHandlerPanics.Inc()
				obs.L().Error("fleet: handler panic", "path", r.URL.Path, "panic", fmt.Sprint(v))
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// countingReader counts bytes read through it.
type countingReader struct {
	r interface{ Read([]byte) (int, error) }
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// countingWriter counts bytes written through it.
type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n += int64(n)
	return n, err
}
