package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/wire"
)

// Versioned update responses (DESIGN.md §15). The legacy /v1/update
// response is a gob-encoded UpdateResponse; the versioned form wraps the
// delta in the wire envelope (KindUpdate), which buys a CRC over the
// payload, forward-compatible section skipping and a future-version
// refusal — the same durability contract the model and checkpoint
// payloads get. Receivers interoperate with both by first-byte sniffing
// (wire.Sniff), exactly like the compact report codecs.

// secUpdateDelta is the delta section of a KindUpdate envelope: a uvarint
// coordinate count followed by the raw little-endian float64 values.
const secUpdateDelta = 1

// maxUpdateBody bounds an update response body read — generous enough for
// the largest model this repository trains, small enough that a hostile
// length field cannot balloon memory.
const maxUpdateBody = 1 << 30

// updateContentType marks a versioned update payload.
const updateContentType = "application/x-fedcleanse-update"

// AppendVersionedUpdate appends a KindUpdate envelope carrying the delta.
// A nil delta (a participant that produced no update) encodes as a zero
// count and decodes back to nil, preserving the gob response's semantics.
func AppendVersionedUpdate(dst []byte, delta []float64) []byte {
	payload := wire.AppendUint(nil, uint64(len(delta)))
	payload = wire.AppendFloat64s(payload, delta)
	return append(dst, wire.NewEncoder(wire.KindUpdate).Section(secUpdateDelta, payload).Bytes()...)
}

// DecodeVersionedUpdate parses a KindUpdate envelope back into the delta,
// bit-exactly. Unknown section types are skipped (forward compatibility);
// a missing delta section, a count that disagrees with the section length
// or trailing bytes are errors, never panics.
func DecodeVersionedUpdate(data []byte) ([]float64, error) {
	secs, err := wire.DecodeKind(data, wire.KindUpdate)
	if err != nil {
		return nil, err
	}
	for _, s := range secs {
		if s.Type != secUpdateDelta {
			continue
		}
		n, rest, err := wire.ReadUint(s.Payload)
		if err != nil {
			return nil, fmt.Errorf("transport: update delta count: %w", err)
		}
		if n > uint64(len(rest))/8 {
			return nil, fmt.Errorf("transport: update delta claims %d values in %d bytes", n, len(rest))
		}
		delta, err := wire.Float64s(rest, int(n))
		if err != nil {
			return nil, fmt.Errorf("transport: update delta: %w", err)
		}
		if n == 0 {
			return nil, nil
		}
		return delta, nil
	}
	return nil, errors.New("transport: update envelope has no delta section")
}

// updatePayload decodes a /v1/update response of either encoding: a
// versioned KindUpdate envelope or the legacy gob UpdateResponse,
// dispatched by first-byte sniffing.
type updatePayload struct {
	Delta []float64
}

// DecodeBody implements bodyDecoder.
func (up *updatePayload) DecodeBody(r io.Reader) error {
	b, err := wire.ReadPayload(r, maxUpdateBody)
	if err != nil {
		return fmt.Errorf("transport: read update body: %w", err)
	}
	switch wire.Sniff(b) {
	case wire.FormatVersioned:
		up.Delta, err = DecodeVersionedUpdate(b)
	case wire.FormatGob:
		var resp UpdateResponse
		if err = gob.NewDecoder(bytes.NewReader(b)).Decode(&resp); err == nil {
			up.Delta = resp.Delta
		}
	default:
		err = errors.New("transport: unrecognized update response encoding")
	}
	if err != nil {
		return err
	}
	obs.M.TransportUpdateBytesRecv.Add(uint64(len(b)))
	return nil
}
