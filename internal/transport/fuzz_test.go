package transport

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Fuzz targets for the gob decoders behind the four protocol endpoints.
// The invariant under fuzzing: an arbitrary request body either decodes
// into a well-formed request (HTTP 200) or is rejected with HTTP 400 —
// the handler never panics and never returns any other status. Seed
// corpora live in testdata/fuzz/.

// stubFuzzParticipant answers instantly so fuzzing measures the decoder
// and validators, not model training.
type stubFuzzParticipant struct{ units int }

func (stubFuzzParticipant) ID() int                   { return 0 }
func (stubFuzzParticipant) Dataset() *dataset.Dataset { return nil }
func (stubFuzzParticipant) LocalUpdate(global []float64, _ int) []float64 {
	return make([]float64, len(global))
}
func (s stubFuzzParticipant) RankReport(*nn.Sequential, int) []int {
	ranks := make([]int, s.units)
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}
func (s stubFuzzParticipant) VoteReport(*nn.Sequential, int, float64) []bool {
	return make([]bool, s.units)
}
func (stubFuzzParticipant) ReportAccuracy(*nn.Sequential) float64 { return 0.5 }

// fuzzHandler builds a small ClientServer and returns its handler plus the
// template parameter count (for crafting valid and invalid bodies).
func fuzzHandler() (http.Handler, int) {
	rng := rand.New(rand.NewSource(7))
	d := tensor.ConvDims{C: 1, H: 4, W: 4, K: 3, Stride: 1, Pad: 1}
	template := nn.NewSequential(
		nn.NewConv2D("conv", d, 4, rng),
		nn.NewReLU("relu"),
		nn.NewFlatten("flatten"),
		nn.NewDense("fc", 4*16, 3, rng),
	)
	cs := NewClientServer(stubFuzzParticipant{units: 4}, template)
	return cs.Handler(), template.NumParams()
}

func gobBytes(t *testing.F, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzEndpoint drives one endpoint with the fuzzed body and checks the
// status invariant.
func fuzzEndpoint(f *testing.F, path string, seeds [][]byte) {
	h, _ := fuzzHandler()
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
			t.Fatalf("%s returned %d for body %q, want 200 or 400", path, rec.Code, body)
		}
	})
}

func FuzzHandleUpdate(f *testing.F) {
	_, n := fuzzHandler()
	valid := gobBytes(f, UpdateRequest{Global: make([]float64, n), Round: 1})
	fuzzEndpoint(f, "/v1/update", [][]byte{
		valid,
		valid[:len(valid)/2],
		{},
		[]byte("not gob at all"),
		gobBytes(f, UpdateRequest{Global: []float64{1, 2, 3}}), // wrong length
	})
}

func FuzzHandleRanks(f *testing.F) {
	_, n := fuzzHandler()
	valid := gobBytes(f, RankRequest{Global: make([]float64, n), Layer: 0})
	fuzzEndpoint(f, "/v1/ranks", [][]byte{
		valid,
		valid[:len(valid)/2],
		{},
		[]byte("\x00\xff garbage"),
		gobBytes(f, RankRequest{Global: make([]float64, n), Layer: 99}), // bad layer
	})
}

func FuzzHandleVotes(f *testing.F) {
	_, n := fuzzHandler()
	valid := gobBytes(f, VoteRequest{Global: make([]float64, n), Layer: 0, Rate: 0.5})
	fuzzEndpoint(f, "/v1/votes", [][]byte{
		valid,
		valid[:len(valid)/2],
		{},
		gobBytes(f, VoteRequest{Global: make([]float64, n), Rate: math.NaN()}),
		gobBytes(f, VoteRequest{Global: make([]float64, n), Rate: -3}),
	})
}

func FuzzHandleAccuracy(f *testing.F) {
	_, n := fuzzHandler()
	valid := gobBytes(f, AccuracyRequest{Global: make([]float64, n)})
	fuzzEndpoint(f, "/v1/accuracy", [][]byte{
		valid,
		valid[:len(valid)/2],
		{},
		[]byte("garbage"),
		gobBytes(f, AccuracyRequest{Global: []float64{1}}),
	})
}
