//go:build !race

package transport

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/metrics"
)

// Allocation-regression gates for the compact report codec encode paths
// (ISSUE 8): a report server re-encoding into a reused buffer must not
// allocate once the buffer has grown to payload size. Excluded under the
// race detector, whose instrumentation allocates.

func TestCodecEncodeWarmAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	ranks := rng.Perm(512)
	votes := make([]bool, 512)
	acts := make([]float64, 512)
	for i := range ranks {
		ranks[i]++
		votes[i] = rng.Intn(2) == 1
		acts[i] = rng.NormFloat64()
	}
	q := metrics.QuantizeActivations(acts)

	cases := []struct {
		name   string
		encode func(dst []byte) []byte
	}{
		{"RanksDelta", func(dst []byte) []byte { return AppendRanksDelta(dst, ranks) }},
		{"VoteBitmap", func(dst []byte) []byte { return AppendVoteBitmap(dst, votes) }},
		{"Acts8", func(dst []byte) []byte { return AppendActs8(dst, q) }},
		{"Acts64", func(dst []byte) []byte { return AppendActs64(dst, acts) }},
	}
	for _, c := range cases {
		buf := c.encode(nil)
		buf = c.encode(buf[:0])
		if allocs := testing.AllocsPerRun(10, func() { buf = c.encode(buf[:0]) }); allocs != 0 {
			t.Errorf("warm Append%s: %v allocs/op, want 0", c.name, allocs)
		}
	}
}
