package transport

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// fleetTemplate is a small real model for fleet rounds — synthetic
// deltas are sized to whatever parameter vector arrives, so any
// architecture works.
func fleetTemplate() *nn.Sequential {
	return nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rand.New(rand.NewSource(90)))
}

// startFleet serves count synthetic clients on a loopback fleet and
// returns the bound address plus a shutdown func.
func startFleet(t *testing.T, count int, seed int64) (*Fleet, string, func()) {
	t.Helper()
	f := NewFleet()
	for id := 0; id < count; id++ {
		f.Add(&fl.SyntheticClient{Id: id, Seed: seed})
	}
	addr, err := f.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return f, addr, func() { _ = f.Shutdown(context.Background()) }
}

// TestFleetRoundsMatchInProcess is the fleet's bit-identity gate: a
// registry-backed streaming federation of 50 clients driven over one
// loopback listener must produce the same parameters and telemetry as the
// same federation run fully in process — the wire adds failure modes, not
// arithmetic.
func TestFleetRoundsMatchInProcess(t *testing.T) {
	const population, cohort, rounds = 50, 12, 3
	cfg := fl.Config{Rounds: rounds, SelectPerRound: cohort, Quorum: 0.5, Streaming: true}

	run := func(factory fl.ClientFactory) ([]float64, []fl.RoundResult) {
		reg := fl.NewRegistry(factory)
		reg.RegisterRange(0, population)
		srv := fl.NewRegistryServer(fleetTemplate(), reg, cfg, 91)
		var results []fl.RoundResult
		for r := 0; r < rounds; r++ {
			results = append(results, srv.RoundDetail(r))
		}
		return srv.Model.ParamsVector(), results
	}

	refParams, refRounds := run(func(id int) fl.Participant {
		return &fl.SyntheticClient{Id: id, Seed: 92}
	})
	for _, res := range refRounds {
		if !res.Applied || len(res.Completed) != cohort {
			t.Fatalf("in-process reference round off: %+v", res)
		}
	}

	_, addr, shutdown := startFleet(t, population, 92)
	defer shutdown()
	for _, w := range []int{1, 8} {
		prev := parallel.SetWorkers(w)
		params, results := run(func(id int) fl.Participant {
			return NewRemoteClient(id, FleetClientAddr(addr, id))
		})
		parallel.SetWorkers(prev)
		assertSameParams(t, "fleet", params, refParams)
		for r, res := range results {
			want := refRounds[r]
			if !sameIntSlices(res.Selected, want.Selected) ||
				!sameIntSlices(res.Completed, want.Completed) ||
				res.Applied != want.Applied {
				t.Fatalf("workers=%d round %d: %+v, want %+v", w, r, res, want)
			}
		}
	}
}

// TestFleetServesManyClientsOneListener: every one of 200 clients answers
// at its own path prefix on the same port, and the fedload counters move.
func TestFleetServesManyClientsOneListener(t *testing.T) {
	const count = 200
	_, addr, shutdown := startFleet(t, count, 93)
	defer shutdown()
	updatesBefore := obs.M.FedloadUpdates.Value()
	bytesInBefore := obs.M.FedloadBytesIn.Value()
	bytesOutBefore := obs.M.FedloadBytesOut.Value()
	global := make([]float64, 32)
	for id := 0; id < count; id++ {
		rc := NewRemoteClient(id, FleetClientAddr(addr, id))
		d, err := rc.TryLocalUpdate(context.Background(), global, 0)
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
		if len(d) != len(global) {
			t.Fatalf("client %d: delta length %d, want %d", id, len(d), len(global))
		}
	}
	if got := obs.M.FedloadUpdates.Value() - updatesBefore; got != count {
		t.Fatalf("fedload_updates_total moved by %d, want %d", got, count)
	}
	if obs.M.FedloadBytesIn.Value() == bytesInBefore || obs.M.FedloadBytesOut.Value() == bytesOutBefore {
		t.Fatal("fleet byte counters did not move")
	}
}

// panicker explodes on every update.
type panicker struct{ id int }

func (p *panicker) ID() int                              { return p.id }
func (p *panicker) Dataset() *dataset.Dataset            { return nil }
func (p *panicker) LocalUpdate([]float64, int) []float64 { panic("synthetic participant bug") }

// TestFleetRecoversParticipantPanic: one faulty participant yields HTTP
// 500s and a panic-counter tick; its neighbours keep serving.
func TestFleetRecoversParticipantPanic(t *testing.T) {
	f := NewFleet()
	f.Add(&fl.SyntheticClient{Id: 0, Seed: 94}, &panicker{id: 1}, &fl.SyntheticClient{Id: 2, Seed: 94})
	addr, err := f.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown(context.Background())

	before := obs.M.FedloadHandlerPanics.Value()
	global := make([]float64, 8)
	rc := NewRemoteClient(1, FleetClientAddr(addr, 1),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 1}))
	if _, err := rc.TryLocalUpdate(context.Background(), global, 0); err == nil {
		t.Fatal("panicking participant answered successfully")
	}
	if got := obs.M.FedloadHandlerPanics.Value() - before; got != 1 {
		t.Fatalf("fedload_handler_panics_total moved by %d, want 1", got)
	}
	for _, id := range []int{0, 2} {
		rc := NewRemoteClient(id, FleetClientAddr(addr, id))
		if _, err := rc.TryLocalUpdate(context.Background(), global, 0); err != nil {
			t.Fatalf("client %d failed after neighbour panic: %v", id, err)
		}
	}
}

// TestFleetRejectsUnknownPaths: unknown clients and unknown endpoints are
// 404s, which RemoteClient treats as permanent (no retry storm).
func TestFleetRejectsUnknownPaths(t *testing.T) {
	_, addr, shutdown := startFleet(t, 1, 95)
	defer shutdown()
	rc := NewRemoteClient(7, FleetClientAddr(addr, 7),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 3}))
	attempts := obs.M.TransportAttempts.Value()
	if _, err := rc.TryLocalUpdate(context.Background(), make([]float64, 4), 0); err == nil {
		t.Fatal("unknown client id answered")
	}
	if got := obs.M.TransportAttempts.Value() - attempts; got != 1 {
		t.Fatalf("404 retried: %d attempts, want 1", got)
	}
	// Unknown endpoints under a known client are 404s too.
	rc0 := NewRemoteClient(0, FleetClientAddr(addr, 0),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 1}))
	req, err := http.NewRequest(http.MethodPost, rc0.baseURL+"/v1/nonsense", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown endpoint: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestFleetDuplicateAddPanics: registering two participants under one ID
// is a programming error.
func TestFleetDuplicateAddPanics(t *testing.T) {
	f := NewFleet()
	f.Add(&fl.SyntheticClient{Id: 3})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	f.Add(&fl.SyntheticClient{Id: 3})
}

// TestFleetServesReports: the fleet's report endpoints answer with the
// synthetic clients' canned reports through completely unmodified
// RemoteClients, at both report precisions, and the int8 responses are an
// order of magnitude smaller than the request-independent float64 vector
// would be.
func TestFleetServesReports(t *testing.T) {
	f, addr, shutdown := startFleet(t, 3, 77)
	defer shutdown()
	tmpl := fleetTemplate()
	syn := &fl.SyntheticClient{Id: 1, Seed: 77}

	rc := NewRemoteClient(1, FleetClientAddr(addr, 1))
	ranks, err := rc.TryRankReport(context.Background(), tmpl, 0)
	if err != nil {
		t.Fatalf("TryRankReport: %v", err)
	}
	wantRanks := syn.RankReport(nil, 0)
	if len(ranks) != len(wantRanks) {
		t.Fatalf("rank report length %d, want %d", len(ranks), len(wantRanks))
	}
	for i := range ranks {
		if ranks[i] != wantRanks[i] {
			t.Fatalf("rank[%d] = %d, want %d", i, ranks[i], wantRanks[i])
		}
	}
	votes, err := rc.TryVoteReport(context.Background(), tmpl, 0, 0.5)
	if err != nil {
		t.Fatalf("TryVoteReport: %v", err)
	}
	wantVotes := syn.VoteReport(nil, 0, 0.5)
	for i := range votes {
		if votes[i] != wantVotes[i] {
			t.Fatalf("vote[%d] = %v, want %v", i, votes[i], wantVotes[i])
		}
	}
	acc, err := rc.TryReportAccuracy(context.Background(), tmpl)
	if err != nil {
		t.Fatalf("TryReportAccuracy: %v", err)
	}
	if want := syn.ReportAccuracy(nil); acc != want {
		t.Fatalf("accuracy = %g, want %g", acc, want)
	}

	// int8 mode: same wire, quantized payloads, identical vote/rank shape.
	f.SetReportQuant(metrics.ReportInt8)
	recvBefore := obs.M.TransportReportBytesRecv.Value()
	ranks8, err := rc.TryRankReport(context.Background(), tmpl, 0)
	if err != nil {
		t.Fatalf("TryRankReport (int8): %v", err)
	}
	recvRank := obs.M.TransportReportBytesRecv.Value() - recvBefore
	q := metrics.QuantizeActivations(syn.ActivationReport(nil, 0))
	want8 := core.RanksFromQuantized(q.Q)
	for i := range ranks8 {
		if ranks8[i] != want8[i] {
			t.Fatalf("int8 rank[%d] = %d, want %d", i, ranks8[i], want8[i])
		}
	}
	// 64 canned units: Acts8 is ~82 bytes vs ~525 for the float64 vector.
	if recvRank == 0 || recvRank > 128 {
		t.Fatalf("int8 rank payload %d bytes, want (0,128]", recvRank)
	}
	votes8, err := rc.TryVoteReport(context.Background(), tmpl, 0, 0.5)
	if err != nil {
		t.Fatalf("TryVoteReport (int8): %v", err)
	}
	wantV8 := core.VotesFromQuantized(q.Q, 0.5)
	for i := range votes8 {
		if votes8[i] != wantV8[i] {
			t.Fatalf("int8 vote[%d] = %v, want %v", i, votes8[i], wantV8[i])
		}
	}
}
