package transport

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/obs"
)

// TestChaosFleetTraceAndAuditResume is the observability acceptance run
// (ISSUE 10): a wire-served federation with an always-faulty client and a
// scripted mid-collection coordinator kill, restarted from its checkpoint
// with the flight recorder reopened in append mode — the way a real
// restarted fedserve would. It asserts the two artifacts the tracing
// layer promises:
//
//   - the flight-recorder JSONL holds exactly one audit per completed
//     round, field-for-field equal to that round's RoundResult, with the
//     resumed round marked (Resumed, ResumePrefix, checkpoint path);
//   - every audited trace ID names one connected span tree in the ring,
//     rooted at the round's fl.round span and crossing the wire into the
//     client servers' handler spans.
func TestChaosFleetTraceAndAuditResume(t *testing.T) {
	obs.DefaultSpans.Reset()
	template := restartTemplate()
	const rounds = 3
	cfg := restartCfg(4)
	addrs, shutdown := serveRestartFleet(t, template, true)
	defer shutdown()
	dir := t.TempDir()
	flightPath := filepath.Join(t.TempDir(), "flight.jsonl")

	results := map[int]fl.RoundResult{}

	// First coordinator image: records rounds until the kill at round 1.
	fr, err := obs.NewFlightRecorder(flightPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newCoordinator(template, addrs, cfg, dir)
	s.Audit = fr
	crashCoordinatorAt(s, fl.CrashMidCollection, 1, 1)
	crashed := false
	for r := 0; r < rounds && !crashed; r++ {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(wireCrash); !ok {
						panic(rec)
					}
					crashed = true
				}
			}()
			results[r] = s.RoundDetail(r)
		}()
	}
	if !crashed {
		t.Fatal("scripted coordinator kill never fired")
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}

	// Restarted image: fresh recorder on the same file, O_APPEND.
	fr2, err := obs.NewFlightRecorder(flightPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fr2.Close()
	res := newCoordinator(template, addrs, cfg, dir)
	res.Audit = fr2
	next, resumed, err := res.ResumeLatest(dir)
	if err != nil || !resumed {
		t.Fatalf("resume: %v (found %v)", err, resumed)
	}
	if next != 1 {
		t.Fatalf("resumed at round %d, want the interrupted round 1", next)
	}
	for r := next; r < rounds; r++ {
		results[r] = res.RoundDetail(r)
	}

	audits := readAuditFile(t, flightPath)
	if len(audits) != rounds {
		t.Fatalf("flight recorder holds %d audits, want %d (one per completed round)", len(audits), rounds)
	}
	for i, a := range audits {
		if a.Round != i {
			t.Fatalf("audit %d is for round %d, want %d", i, a.Round, i)
		}
		rr, ok := results[a.Round]
		if !ok {
			t.Fatalf("audit for round %d has no recorded RoundResult", a.Round)
		}
		assertAuditMatchesResult(t, a, rr)
		if a.Trace == 0 {
			t.Fatalf("round %d audit carries no trace ID", a.Round)
		}
		if a.DurationMS <= 0 || a.Attempts == 0 {
			t.Fatalf("round %d audit missing timings: %+v", a.Round, a)
		}
		if a.Checkpoint == "" || !strings.HasPrefix(a.Checkpoint, dir) {
			t.Fatalf("round %d audit checkpoint %q not under %q", a.Round, a.Checkpoint, dir)
		}
		// The faulty client exhausts its retries every exchange it is
		// selected for; those retries must surface in the round's audit.
		if containsInt(a.Dropped, restartFaulty) && a.Retries == 0 {
			t.Fatalf("round %d dropped client %d without recording retries", a.Round, restartFaulty)
		}
		if wantResumed := a.Round == 1; a.Resumed != wantResumed {
			t.Fatalf("round %d audit Resumed=%v, want %v", a.Round, a.Resumed, wantResumed)
		}
		if a.Round == 1 && a.ResumePrefix != 1 {
			t.Fatalf("resumed round audit ResumePrefix=%d, want 1 (folds before the kill)", a.ResumePrefix)
		}
	}

	for _, a := range audits {
		assertConnectedTrace(t, a)
	}
}

// readAuditFile parses the flight-recorder JSONL.
func readAuditFile(t *testing.T, path string) []fl.RoundAudit {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var audits []fl.RoundAudit
	for i, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		var a fl.RoundAudit
		if err := json.Unmarshal([]byte(line), &a); err != nil {
			t.Fatalf("flight line %d: %v", i, err)
		}
		audits = append(audits, a)
	}
	return audits
}

// assertAuditMatchesResult checks the audit's RoundResult mirror field
// for field.
func assertAuditMatchesResult(t *testing.T, a fl.RoundAudit, rr fl.RoundResult) {
	t.Helper()
	if !sameIntSlices(a.Selected, rr.Selected) ||
		!sameIntSlices(a.Completed, rr.Completed) ||
		!sameIntSlices(a.Dropped, rr.Dropped) ||
		a.Applied != rr.Applied || a.PeakInFlight != rr.PeakInFlight {
		t.Fatalf("round %d audit diverges from RoundResult:\naudit  %+v\nresult %+v", a.Round, a, rr)
	}
	if len(a.Errors) != len(rr.Errs) {
		t.Fatalf("round %d audit has %d errors, result has %d", a.Round, len(a.Errors), len(rr.Errs))
	}
	for id, err := range rr.Errs {
		if a.Errors[id] != err.Error() {
			t.Fatalf("round %d client %d error %q, want %q", a.Round, id, a.Errors[id], err.Error())
		}
	}
}

// assertConnectedTrace waits for the audited round's span tree to settle
// in the ring (handler spans can end a beat after the caller reads the
// response) and asserts it is one connected tree: a single fl.round root,
// every other span reachable from it, with the wire legs — call, attempt
// and the client server's handler span — present.
func assertConnectedTrace(t *testing.T, a fl.RoundAudit) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans := map[obs.SpanID]obs.SpanRecord{}
		names := map[string]int{}
		var root obs.SpanRecord
		roots := 0
		for _, rec := range obs.DefaultSpans.Snapshot() {
			if rec.Trace != a.Trace {
				continue
			}
			spans[rec.Span] = rec
			names[rec.Name]++
			if rec.Parent == 0 {
				root, roots = rec, roots+1
			}
		}
		orphans := 0
		for _, rec := range spans {
			if rec.Parent != 0 {
				if _, ok := spans[rec.Parent]; !ok {
					orphans++
				}
			}
		}
		ok := roots == 1 && orphans == 0 && root.Name == "fl.round" &&
			names["transport.call"] > 0 && names["transport.attempt"] > 0 &&
			names["client.update"] > 0 &&
			(a.Round != 1 || names["fl.round.resume"] == 1)
		if ok {
			if root.Round != int64(a.Round) {
				t.Fatalf("trace %s root is round %d, want %d", a.Trace, root.Round, a.Round)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s (round %d) never settled into one connected tree: roots=%d orphans=%d names=%v",
				a.Trace, a.Round, roots, orphans, names)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
