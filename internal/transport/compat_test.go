package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/wire"
)

// The cross-version compatibility corpus (testdata/wire): one golden file
// per encoding a deployed binary has ever produced — legacy gob models and
// update responses, compact v1 report payloads, versioned envelopes — each
// regenerated from fixed seeds with -update and then pinned. The table
// test below decodes every file through the *sniffing dispatchers* the
// current binary actually uses (nn.LoadAny, updatePayload, rankPayload,
// votePayload) and asserts bit-identity with the value the original
// decoder produces, so a wire or serialization change that silently breaks
// an old peer or an old file on disk fails CI instead of a rollout.

var updateGolden = flag.Bool("update", false, "regenerate the testdata/wire golden corpus")

const goldenDir = "testdata/wire"

// compatModel is the corpus's fixed model: a pure function of its seeds,
// with one pruned unit so the mask state crosses formats too.
func compatModel() (*nn.Sequential, nn.Input, int) {
	in := nn.Input{C: 1, H: 8, W: 8}
	const classes = 4
	m := nn.NewSmallCNN(in, classes, rand.New(rand.NewSource(91)))
	m.PruneModelUnit(m.PrunableLayers()[0], 1)
	return m, in, classes
}

// compatDelta is the corpus's fixed update delta, salted with the IEEE
// specials a lossless float codec must carry through.
func compatDelta() []float64 {
	rng := rand.New(rand.NewSource(92))
	d := make([]float64, 256)
	for i := range d {
		d[i] = 2*rng.Float64() - 1
	}
	d[3] = math.NaN()
	d[17] = math.Inf(1)
	d[51] = math.Inf(-1)
	d[200] = math.Copysign(0, -1)
	return d
}

func compatRanks() []int {
	return rand.New(rand.NewSource(93)).Perm(64)
}

func compatVotes() []bool {
	v := make([]bool, 64)
	for i := range v {
		v[i] = i%3 == 0
	}
	return v
}

func compatActs() []float64 {
	rng := rand.New(rand.NewSource(94))
	a := make([]float64, 64)
	for i := range a {
		a[i] = rng.Float64()
	}
	return a
}

// goldenFiles materializes every corpus entry from the fixed seeds.
func goldenFiles(t *testing.T) map[string][]byte {
	t.Helper()
	m, in, classes := compatModel()
	files := map[string][]byte{}

	var legacyModel bytes.Buffer
	if err := nn.Save(&legacyModel, "small", in, classes, m); err != nil {
		t.Fatal(err)
	}
	files["model-legacy-gob.bin"] = legacyModel.Bytes()

	versionedModel, err := nn.EncodeVersionedModel("small", in, classes, m)
	if err != nil {
		t.Fatal(err)
	}
	files["model-versioned-v1.bin"] = versionedModel

	var legacyUpdate bytes.Buffer
	if err := gob.NewEncoder(&legacyUpdate).Encode(UpdateResponse{Delta: compatDelta()}); err != nil {
		t.Fatal(err)
	}
	files["update-legacy-gob.bin"] = legacyUpdate.Bytes()
	files["update-versioned-v1.bin"] = AppendVersionedUpdate(nil, compatDelta())

	var legacyRanks bytes.Buffer
	if err := gob.NewEncoder(&legacyRanks).Encode(RankResponse{Ranks: compatRanks()}); err != nil {
		t.Fatal(err)
	}
	files["report-ranks-legacy-gob.bin"] = legacyRanks.Bytes()
	files["report-ranks-compact-v1.bin"] = AppendRanksDelta(nil, compatRanks())

	var legacyVotes bytes.Buffer
	if err := gob.NewEncoder(&legacyVotes).Encode(VoteResponse{Votes: compatVotes()}); err != nil {
		t.Fatal(err)
	}
	files["report-votes-legacy-gob.bin"] = legacyVotes.Bytes()
	files["report-votes-compact-v1.bin"] = AppendVoteBitmap(nil, compatVotes())

	files["report-acts8-compact-v1.bin"] = AppendActs8(nil, metrics.QuantizeActivations(compatActs()))
	return files
}

// loadGolden reads one corpus file, regenerating the corpus first under
// -update.
func loadGolden(t *testing.T, files map[string][]byte, name string) []byte {
	t.Helper()
	path := filepath.Join(goldenDir, name)
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, files[name], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file %s missing (regenerate with -update): %v", name, err)
	}
	return data
}

// sameBits compares float slices bit for bit, so NaN payloads and signed
// zeros count as themselves.
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestCrossVersionGoldenCorpus decodes every golden payload through the
// sniffing dispatchers and pins the result against the original decoder's
// output. The legacy files are frozen bytes from the pre-envelope wire
// format; if this test fails after a serialization change, the change
// broke compatibility with deployed peers and files — fix the change, do
// not regenerate the legacy files.
func TestCrossVersionGoldenCorpus(t *testing.T) {
	files := goldenFiles(t)
	refModel, _, _ := compatModel()
	refParams := refModel.ParamsVector()

	t.Run("sniff", func(t *testing.T) {
		for name, format := range map[string]wire.Format{
			"model-legacy-gob.bin":        wire.FormatGob,
			"model-versioned-v1.bin":      wire.FormatVersioned,
			"update-legacy-gob.bin":       wire.FormatGob,
			"update-versioned-v1.bin":     wire.FormatVersioned,
			"report-ranks-legacy-gob.bin": wire.FormatGob,
			"report-ranks-compact-v1.bin": wire.FormatReportTag,
			"report-votes-legacy-gob.bin": wire.FormatGob,
			"report-votes-compact-v1.bin": wire.FormatReportTag,
			"report-acts8-compact-v1.bin": wire.FormatReportTag,
		} {
			if got := wire.Sniff(loadGolden(t, files, name)); got != format {
				t.Errorf("%s sniffs as %v, want %v", name, got, format)
			}
		}
	})

	t.Run("golden-stable", func(t *testing.T) {
		// The versioned and compact encoders are canonical: re-encoding the
		// fixed seeds must reproduce the checked-in bytes exactly. (The gob
		// legacy files are pinned but not re-derived — gob's type-descriptor
		// layout belongs to the Go release that wrote them.)
		for _, name := range []string{
			"model-versioned-v1.bin", "update-versioned-v1.bin",
			"report-ranks-compact-v1.bin", "report-votes-compact-v1.bin",
			"report-acts8-compact-v1.bin",
		} {
			if !bytes.Equal(loadGolden(t, files, name), files[name]) {
				t.Errorf("%s: checked-in bytes differ from canonical re-encoding", name)
			}
		}
	})

	t.Run("models", func(t *testing.T) {
		for _, name := range []string{"model-legacy-gob.bin", "model-versioned-v1.bin"} {
			data := loadGolden(t, files, name)
			m, err := nn.LoadAny(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !sameBits(m.ParamsVector(), refParams) {
				t.Fatalf("%s: parameters differ from the seeded model", name)
			}
		}
		// The dispatcher's gob branch must agree with the original decoder.
		direct, err := nn.Load(bytes.NewReader(loadGolden(t, files, "model-legacy-gob.bin")))
		if err != nil {
			t.Fatal(err)
		}
		if !sameBits(direct.ParamsVector(), refParams) {
			t.Fatal("legacy nn.Load differs from the seeded model")
		}
	})

	t.Run("updates", func(t *testing.T) {
		want := compatDelta()
		for _, name := range []string{"update-legacy-gob.bin", "update-versioned-v1.bin"} {
			var up updatePayload
			if err := up.DecodeBody(bytes.NewReader(loadGolden(t, files, name))); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !sameBits(up.Delta, want) {
				t.Fatalf("%s: delta differs from the seeded vector", name)
			}
		}
	})

	t.Run("ranks", func(t *testing.T) {
		want := compatRanks()
		for _, name := range []string{"report-ranks-legacy-gob.bin", "report-ranks-compact-v1.bin"} {
			var rp rankPayload
			if err := rp.DecodeBody(bytes.NewReader(loadGolden(t, files, name))); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !sameIntSlices(rp.Ranks, want) {
				t.Fatalf("%s: ranks %v, want %v", name, rp.Ranks, want)
			}
		}
		direct, err := DecodeRanksDelta(loadGolden(t, files, "report-ranks-compact-v1.bin"))
		if err != nil || !sameIntSlices(direct, want) {
			t.Fatalf("DecodeRanksDelta: %v, %v", direct, err)
		}
	})

	t.Run("votes", func(t *testing.T) {
		want := compatVotes()
		for _, name := range []string{"report-votes-legacy-gob.bin", "report-votes-compact-v1.bin"} {
			var vp votePayload
			if err := vp.DecodeBody(bytes.NewReader(loadGolden(t, files, name))); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(vp.Votes) != len(want) {
				t.Fatalf("%s: %d votes, want %d", name, len(vp.Votes), len(want))
			}
			for i := range want {
				if vp.Votes[i] != want[i] {
					t.Fatalf("%s: vote %d = %v, want %v", name, i, vp.Votes[i], want[i])
				}
			}
		}
	})

	t.Run("acts8", func(t *testing.T) {
		data := loadGolden(t, files, "report-acts8-compact-v1.bin")
		q, err := DecodeActs8(data)
		if err != nil {
			t.Fatal(err)
		}
		want := core.RanksFromQuantized(q.Q)
		var rp rankPayload
		if err := rp.DecodeBody(bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
		if !sameIntSlices(rp.Ranks, want) {
			t.Fatalf("acts8 ranks %v, want %v", rp.Ranks, want)
		}
	})
}

// TestVersionedUpdateRoundTrip pins the codec itself: bit-exact floats,
// nil preservation, and error (never panic) on malformed envelopes.
func TestVersionedUpdateRoundTrip(t *testing.T) {
	want := compatDelta()
	got, err := DecodeVersionedUpdate(AppendVersionedUpdate(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if !sameBits(got, want) {
		t.Fatal("delta does not round-trip bit-exactly")
	}
	if got, err := DecodeVersionedUpdate(AppendVersionedUpdate(nil, nil)); err != nil || got != nil {
		t.Fatalf("nil delta round-tripped to %v, %v", got, err)
	}
}

func TestVersionedUpdateRejections(t *testing.T) {
	valid := AppendVersionedUpdate(nil, []float64{1, 2, 3})
	cases := map[string][]byte{
		"empty":       {},
		"wrong-magic": append([]byte{0xAB}, valid[1:]...),
		"truncated":   valid[:len(valid)-6],
		"wrong-kind":  wire.NewEncoder(wire.KindModel).Bytes(),
		"no-delta":    wire.NewEncoder(wire.KindUpdate).Section(99, []byte{1}).Bytes(),
		"count-lies": wire.NewEncoder(wire.KindUpdate).
			Section(secUpdateDelta, wire.AppendUint(nil, 1<<40)).Bytes(),
		"short-floats": wire.NewEncoder(wire.KindUpdate).
			Section(secUpdateDelta, wire.AppendFloat64s(wire.AppendUint(nil, 3), []float64{1, 2})).Bytes(),
	}
	for name, data := range cases {
		if _, err := DecodeVersionedUpdate(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Unknown sections are skipped, not fatal: forward compatibility.
	fwd := wire.NewEncoder(wire.KindUpdate).
		Section(77, []byte("future")).
		Section(secUpdateDelta, wire.AppendFloat64s(wire.AppendUint(nil, 1), []float64{4.5})).
		Bytes()
	got, err := DecodeVersionedUpdate(fwd)
	if err != nil || len(got) != 1 || got[0] != 4.5 {
		t.Fatalf("unknown section not skipped: %v, %v", got, err)
	}
}

// TestVersionedUpdateOverWire proves the migration story end to end: the
// same participant served with legacy gob updates and with versioned
// updates hands the same RemoteClient bit-identical deltas.
func TestVersionedUpdateOverWire(t *testing.T) {
	template := nn.NewSmallCNN(nn.Input{C: 1, H: 8, W: 8}, 4, rand.New(rand.NewSource(95)))
	global := template.ParamsVector()
	serve := func(versioned bool) []float64 {
		cs := NewClientServer(&fl.SyntheticClient{Id: 0, Seed: 96}, template)
		cs.SetVersionedUpdates(versioned)
		addr, err := cs.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = cs.Shutdown(context.Background()) }()
		rc := NewRemoteClient(0, addr)
		d, err := rc.TryLocalUpdate(context.Background(), global, 3)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	want := (&fl.SyntheticClient{Id: 0, Seed: 96}).LocalUpdate(global, 3)
	if !sameBits(serve(false), want) {
		t.Fatal("legacy gob update differs from the in-process delta")
	}
	if !sameBits(serve(true), want) {
		t.Fatal("versioned update differs from the in-process delta")
	}
}
