package transport

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/fedcleanse/fedcleanse/internal/metrics"
)

// Compact report wire codecs (DESIGN.md §14). Defense report responses are
// tiny and extremely numerous at fleet scale, so instead of gob they use
// purpose-built losslessly-invertible encodings behind a self-describing
// 1-byte tag:
//
//	0x01 RanksDelta  uvarint n, then n zigzag-varint deltas between
//	                 consecutive rank values (previous value starts at 0)
//	0x02 VoteBitmap  uvarint n, then ceil(n/8) bytes, vote i at byte i/8
//	                 bit i%8 (LSB first); trailing pad bits must be 0
//	0x03 Acts8       uvarint n, scale float64 LE, zero float64 LE, then
//	                 n raw int8 codes (metrics.QuantActs)
//	0x04 Acts64      uvarint n, then n raw float64 LE values
//
// Every decoder rejects truncated input, trailing garbage, non-minimal
// varints and length headers larger than the remaining payload could
// hold, so decoding allocates at most O(len(input)) and
// encode(decode(p)) == p for every accepted p — the codecs are
// canonical. Tag bytes cannot collide with
// legacy gob bodies: a gob stream opens with the byte length of its first
// message (a type descriptor, always tens of bytes), so its first byte is
// well above 0x04 — receivers sniff the first byte and fall back to gob,
// which keeps old binaries interoperable with new ones.
//
// RanksDelta carries arbitrary []int values as long as each fits in int32
// (rank vectors are permutations of 1..P_L, far inside that); the bound is
// enforced on decode so a wire peer cannot smuggle values whose deltas
// would overflow on re-encode.
const (
	// TagRanksDelta marks a varint delta-encoded rank vector.
	TagRanksDelta byte = 0x01
	// TagVoteBitmap marks a bit-packed vote bitmap.
	TagVoteBitmap byte = 0x02
	// TagActs8 marks an int8-quantized activation payload.
	TagActs8 byte = 0x03
	// TagActs64 marks a float64 activation payload.
	TagActs64 byte = 0x04
)

// maxReportLen bounds the element count a report codec accepts — far above
// any real layer width, far below anything that could bloat a decode.
const maxReportLen = 1 << 24

// AppendRanksDelta appends the tagged RanksDelta encoding of ranks to dst
// and returns the extended slice. Values must fit in int32.
func AppendRanksDelta(dst []byte, ranks []int) []byte {
	dst = append(dst, TagRanksDelta)
	dst = binary.AppendUvarint(dst, uint64(len(ranks)))
	prev := 0
	for _, r := range ranks {
		if r < math.MinInt32 || r > math.MaxInt32 {
			panic(fmt.Sprintf("transport: rank value %d outside int32", r))
		}
		dst = binary.AppendVarint(dst, int64(r-prev))
		prev = r
	}
	return dst
}

// DecodeRanksDelta decodes a tagged RanksDelta payload.
func DecodeRanksDelta(p []byte) ([]int, error) {
	body, n, err := reportHeader(p, TagRanksDelta, 1)
	if err != nil {
		return nil, err
	}
	ranks := make([]int, n)
	prev := int64(0)
	for i := range ranks {
		d, k := binary.Varint(body)
		if k <= 0 {
			return nil, fmt.Errorf("transport: RanksDelta truncated at element %d", i)
		}
		if k > 1 && body[k-1] == 0 {
			return nil, fmt.Errorf("transport: RanksDelta delta %d not minimally encoded", i)
		}
		body = body[k:]
		prev += d
		if prev < math.MinInt32 || prev > math.MaxInt32 {
			return nil, fmt.Errorf("transport: RanksDelta value %d outside int32", prev)
		}
		ranks[i] = int(prev)
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("transport: RanksDelta has %d trailing bytes", len(body))
	}
	return ranks, nil
}

// AppendVoteBitmap appends the tagged VoteBitmap encoding of votes to dst
// and returns the extended slice.
func AppendVoteBitmap(dst []byte, votes []bool) []byte {
	dst = append(dst, TagVoteBitmap)
	dst = binary.AppendUvarint(dst, uint64(len(votes)))
	var cur byte
	for i, v := range votes {
		if v {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			dst = append(dst, cur)
			cur = 0
		}
	}
	if len(votes)%8 != 0 {
		dst = append(dst, cur)
	}
	return dst
}

// DecodeVoteBitmap decodes a tagged VoteBitmap payload.
func DecodeVoteBitmap(p []byte) ([]bool, error) {
	body, n, err := reportHeader(p, TagVoteBitmap, 0)
	if err != nil {
		return nil, err
	}
	nb := (n + 7) / 8
	if len(body) != nb {
		return nil, fmt.Errorf("transport: VoteBitmap body %d bytes, want %d", len(body), nb)
	}
	votes := make([]bool, n)
	for i := range votes {
		votes[i] = body[i/8]&(1<<(i%8)) != 0
	}
	if n%8 != 0 && body[nb-1]>>(n%8) != 0 {
		return nil, fmt.Errorf("transport: VoteBitmap pad bits not zero")
	}
	return votes, nil
}

// AppendActs8 appends the tagged Acts8 encoding of q to dst and returns
// the extended slice. The warm path allocates nothing when dst has
// capacity.
func AppendActs8(dst []byte, q metrics.QuantActs) []byte {
	dst = append(dst, TagActs8)
	dst = binary.AppendUvarint(dst, uint64(len(q.Q)))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(q.Scale))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(q.Zero))
	for _, c := range q.Q {
		dst = append(dst, byte(c))
	}
	return dst
}

// DecodeActs8 decodes a tagged Acts8 payload.
func DecodeActs8(p []byte) (metrics.QuantActs, error) {
	body, n, err := reportHeader(p, TagActs8, 1)
	if err != nil {
		return metrics.QuantActs{}, err
	}
	if len(body) != 16+n {
		return metrics.QuantActs{}, fmt.Errorf("transport: Acts8 body %d bytes, want %d", len(body), 16+n)
	}
	q := metrics.QuantActs{
		Scale: math.Float64frombits(binary.LittleEndian.Uint64(body[0:8])),
		Zero:  math.Float64frombits(binary.LittleEndian.Uint64(body[8:16])),
		Q:     make([]int8, n),
	}
	for i := range q.Q {
		q.Q[i] = int8(body[16+i])
	}
	return q, nil
}

// AppendActs64 appends the tagged Acts64 encoding of acts to dst and
// returns the extended slice.
func AppendActs64(dst []byte, acts []float64) []byte {
	dst = append(dst, TagActs64)
	dst = binary.AppendUvarint(dst, uint64(len(acts)))
	for _, a := range acts {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a))
	}
	return dst
}

// DecodeActs64 decodes a tagged Acts64 payload.
func DecodeActs64(p []byte) ([]float64, error) {
	body, n, err := reportHeader(p, TagActs64, 8)
	if err != nil {
		return nil, err
	}
	if len(body) != 8*n {
		return nil, fmt.Errorf("transport: Acts64 body %d bytes, want %d", len(body), 8*n)
	}
	acts := make([]float64, n)
	for i := range acts {
		acts[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return acts, nil
}

// reportHeader checks the tag, reads the element count and bounds it by
// what the remaining bytes could possibly hold (minBytes per element;
// 0 means bit-packed, ≥1 element per remaining byte ×8).
func reportHeader(p []byte, tag byte, minBytes int) (body []byte, n int, err error) {
	if len(p) == 0 || p[0] != tag {
		return nil, 0, fmt.Errorf("transport: payload is not codec 0x%02x", tag)
	}
	u, k := binary.Uvarint(p[1:])
	if k <= 0 {
		return nil, 0, fmt.Errorf("transport: codec 0x%02x header truncated", tag)
	}
	// A multi-byte varint ending in 0x00 has an empty top group — the
	// same value has a shorter encoding, which would break canonicality.
	if k > 1 && p[k] == 0 {
		return nil, 0, fmt.Errorf("transport: codec 0x%02x length not minimally encoded", tag)
	}
	body = p[1+k:]
	limit := uint64(len(body)) * 8
	if minBytes > 0 {
		limit = uint64(len(body)) / uint64(minBytes)
	}
	if u > limit || u > maxReportLen {
		return nil, 0, fmt.Errorf("transport: codec 0x%02x claims %d elements in %d bytes", tag, u, len(body))
	}
	return body, int(u), nil
}
