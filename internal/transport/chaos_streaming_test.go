package transport

import (
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// TestChaosStreamingRoundsMatchDropRun extends the chaos equivalence to
// the streaming path: streaming training rounds in which client 2 faults
// every exchange (resets, 500s, hangs) must leave bit-identical
// parameters and telemetry to a fault-free in-process batch run dropping
// the same client by policy — across shard and worker counts. Streaming,
// sharding and wire faults all compose without moving a bit.
func TestChaosStreamingRoundsMatchDropRun(t *testing.T) {
	run := func(w, shards int, streaming bool, sched Schedule) ([]float64, []fl.RoundResult) {
		prev := parallel.SetWorkers(w)
		defer parallel.SetWorkers(prev)
		train, _, template, cfg := chaosSetup()
		cfg.Streaming = streaming
		cfg.Shards = shards
		parts := chaosClients(train, template, cfg)
		var srv *fl.Server
		if sched != nil {
			remote, shutdown := serveChaos(t, parts, template,
				map[int]*FaultInjector{2: NewFaultInjector(sched)}, chaosRetry(), clientSide)
			defer shutdown()
			srv = fl.NewServer(template, remote, cfg, 60)
		} else {
			srv = fl.NewServer(template, parts, cfg, 60)
			srv.Drop = dropClients{2: true}
		}
		var rounds []fl.RoundResult
		for r := 0; r < cfg.Rounds; r++ {
			rounds = append(rounds, srv.RoundDetail(r))
		}
		return srv.Model.ParamsVector(), rounds
	}

	refParams, refRounds := run(1, 0, false, nil)
	rotation := AlwaysFail{FaultConnError, FaultHTTP500, FaultHang}
	for _, shards := range []int{1, 2, 8} {
		for _, w := range []int{1, 8} {
			params, rounds := run(w, shards, true, rotation)
			assertSameParams(t, "streaming chaos", params, refParams)
			for r, res := range rounds {
				want := refRounds[r]
				if !sameIntSlices(res.Completed, want.Completed) ||
					!sameIntSlices(res.Dropped, want.Dropped) ||
					res.Applied != want.Applied {
					t.Fatalf("shards=%d workers=%d round %d: %+v, want %+v", shards, w, r, res, want)
				}
				if len(res.Errs) != 1 || res.Errs[2] == nil {
					t.Fatalf("shards=%d workers=%d round %d: errs %v, want one entry for client 2",
						shards, w, r, res.Errs)
				}
				if res.PeakInFlight < 1 {
					t.Fatalf("shards=%d workers=%d round %d: PeakInFlight=%d on a streaming round",
						shards, w, r, res.PeakInFlight)
				}
			}
		}
	}
}
