// Package robust implements the Byzantine-robust aggregation rules the
// paper's related-work section evaluates against backdoor attacks: Krum
// and Multi-Krum (Blanchard et al.), Bulyan (El Mhamdi et al.),
// coordinate-wise trimmed mean and coordinate-wise median (Yin et al.).
// All satisfy internal/fl.Aggregator, so they drop into the federated
// server in place of plain averaging.
//
// The paper (and the works it cites) reports that these rules fail to stop
// model-replacement backdoors under non-IID data; the examples/robust_agg
// program and the integration tests reproduce that observation.
package robust

import (
	"fmt"
	"sort"

	"github.com/fedcleanse/fedcleanse/internal/fl"
)

// Krum selects the single update minimizing the Krum score: the sum of
// squared distances to its n−f−2 nearest neighbours, where f is the
// assumed number of Byzantine clients.
type Krum struct {
	// F is the assumed number of Byzantine clients.
	F int
}

var _ fl.Aggregator = Krum{}

// Aggregate implements fl.Aggregator: it returns the single selected
// update (Krum discards all others).
func (k Krum) Aggregate(deltas [][]float64) []float64 {
	idx := k.Select(deltas, 1)
	out := make([]float64, len(deltas[idx[0]]))
	copy(out, deltas[idx[0]])
	return out
}

// Select returns the indices of the m updates with the lowest Krum scores,
// best first.
func (k Krum) Select(deltas [][]float64, m int) []int {
	n := len(deltas)
	if n == 0 {
		panic("robust: Krum with no updates")
	}
	if m <= 0 || m > n {
		panic(fmt.Sprintf("robust: Krum selecting %d of %d", m, n))
	}
	// Pairwise squared distances.
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := sqDist(deltas[i], deltas[j])
			d2[i][j], d2[j][i] = s, s
		}
	}
	// Number of neighbours counted in the score: n − f − 2 (at least 1).
	nb := n - k.F - 2
	if nb < 1 {
		nb = 1
	}
	type scored struct {
		idx   int
		score float64
	}
	scores := make([]scored, n)
	for i := 0; i < n; i++ {
		ds := append([]float64(nil), d2[i]...)
		ds[i] = 0
		sort.Float64s(ds)
		// ds[0] is the zero self-distance; neighbours start at ds[1].
		s := 0.0
		for _, v := range ds[1 : nb+1] {
			s += v
		}
		scores[i] = scored{i, s}
	}
	sort.Slice(scores, func(a, b int) bool { return scores[a].score < scores[b].score })
	out := make([]int, m)
	for i := 0; i < m; i++ {
		out[i] = scores[i].idx
	}
	return out
}

// MultiKrum averages the M best updates under the Krum score.
type MultiKrum struct {
	F int
	// M is the number of selected updates to average (0 means n−f).
	M int
}

var _ fl.Aggregator = MultiKrum{}

// Aggregate implements fl.Aggregator.
func (mk MultiKrum) Aggregate(deltas [][]float64) []float64 {
	n := len(deltas)
	m := mk.M
	if m == 0 {
		m = n - mk.F
	}
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	sel := Krum{F: mk.F}.Select(deltas, m)
	out := make([]float64, len(deltas[0]))
	for _, i := range sel {
		for j, v := range deltas[i] {
			out[j] += v
		}
	}
	inv := 1.0 / float64(len(sel))
	for j := range out {
		out[j] *= inv
	}
	return out
}

// TrimmedMean averages each coordinate after discarding the Trim largest
// and Trim smallest values.
type TrimmedMean struct {
	// Trim values are removed from each end per coordinate.
	Trim int
}

var _ fl.Aggregator = TrimmedMean{}

// Aggregate implements fl.Aggregator.
func (t TrimmedMean) Aggregate(deltas [][]float64) []float64 {
	n := len(deltas)
	if n == 0 {
		panic("robust: TrimmedMean with no updates")
	}
	if 2*t.Trim >= n {
		panic(fmt.Sprintf("robust: trimming %d from each end of %d updates", t.Trim, n))
	}
	dim := len(deltas[0])
	out := make([]float64, dim)
	col := make([]float64, n)
	for j := 0; j < dim; j++ {
		for i, d := range deltas {
			col[i] = d[j]
		}
		sort.Float64s(col)
		s := 0.0
		for _, v := range col[t.Trim : n-t.Trim] {
			s += v
		}
		out[j] = s / float64(n-2*t.Trim)
	}
	return out
}

// Median aggregates with the coordinate-wise median.
type Median struct{}

var _ fl.Aggregator = Median{}

// Aggregate implements fl.Aggregator.
func (Median) Aggregate(deltas [][]float64) []float64 {
	n := len(deltas)
	if n == 0 {
		panic("robust: Median with no updates")
	}
	dim := len(deltas[0])
	out := make([]float64, dim)
	col := make([]float64, n)
	for j := 0; j < dim; j++ {
		for i, d := range deltas {
			col[i] = d[j]
		}
		sort.Float64s(col)
		if n%2 == 1 {
			out[j] = col[n/2]
		} else {
			out[j] = (col[n/2-1] + col[n/2]) / 2
		}
	}
	return out
}

// Bulyan composes Multi-Krum selection with a trimmed-mean reduction: it
// repeatedly selects updates by Krum score until θ = n − 2f are chosen,
// then aggregates each coordinate by averaging the β = θ − 2f values
// closest to the coordinate median.
type Bulyan struct {
	F int
}

var _ fl.Aggregator = Bulyan{}

// Aggregate implements fl.Aggregator.
func (b Bulyan) Aggregate(deltas [][]float64) []float64 {
	n := len(deltas)
	if n == 0 {
		panic("robust: Bulyan with no updates")
	}
	theta := n - 2*b.F
	if theta < 1 {
		theta = 1
	}
	sel := Krum{F: b.F}.Select(deltas, theta)
	beta := theta - 2*b.F
	if beta < 1 {
		beta = 1
	}
	dim := len(deltas[0])
	out := make([]float64, dim)
	col := make([]float64, len(sel))
	for j := 0; j < dim; j++ {
		for i, idx := range sel {
			col[i] = deltas[idx][j]
		}
		sort.Float64s(col)
		var med float64
		m := len(col)
		if m%2 == 1 {
			med = col[m/2]
		} else {
			med = (col[m/2-1] + col[m/2]) / 2
		}
		// Average the beta values closest to the median: walk outward from
		// the median position in the sorted column.
		lo := sort.SearchFloat64s(col, med)
		if lo >= m {
			lo = m - 1
		}
		hi := lo
		count, sum := 0, 0.0
		take := func(v float64) { sum += v; count++ }
		take(col[lo])
		for count < beta {
			left := lo - 1
			right := hi + 1
			switch {
			case left >= 0 && right < m:
				if med-col[left] <= col[right]-med {
					take(col[left])
					lo = left
				} else {
					take(col[right])
					hi = right
				}
			case left >= 0:
				take(col[left])
				lo = left
			case right < m:
				take(col[right])
				hi = right
			default:
				count = beta // column exhausted
			}
		}
		out[j] = sum / float64(count)
	}
	return out
}

// sqDist returns the squared Euclidean distance between two vectors.
func sqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("robust: vector length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
