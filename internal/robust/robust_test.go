package robust

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// cluster returns n vectors near center plus outliers far away.
func cluster(rng *rand.Rand, n, dim int, center, spread float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = center + rng.NormFloat64()*spread
		}
		out[i] = v
	}
	return out
}

func TestKrumPicksClusterMember(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	deltas := cluster(rng, 8, 10, 0, 0.1)
	// Two far outliers.
	deltas = append(deltas, cluster(rng, 2, 10, 50, 0.1)...)
	k := Krum{F: 2}
	sel := k.Select(deltas, 1)[0]
	if sel >= 8 {
		t.Fatalf("Krum selected outlier %d", sel)
	}
	agg := k.Aggregate(deltas)
	for _, v := range agg {
		if math.Abs(v) > 1 {
			t.Fatalf("Krum aggregate far from cluster: %g", v)
		}
	}
}

func TestMultiKrumAveragesSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	deltas := cluster(rng, 6, 5, 1, 0.05)
	deltas = append(deltas, cluster(rng, 2, 5, -40, 0.05)...)
	agg := MultiKrum{F: 2, M: 4}.Aggregate(deltas)
	for _, v := range agg {
		if math.Abs(v-1) > 0.5 {
			t.Fatalf("MultiKrum aggregate %g, want near 1", v)
		}
	}
}

func TestTrimmedMeanDiscardsExtremes(t *testing.T) {
	deltas := [][]float64{
		{1}, {2}, {3}, {1000}, {-1000},
	}
	agg := TrimmedMean{Trim: 1}.Aggregate(deltas)
	if math.Abs(agg[0]-2) > 1e-9 {
		t.Fatalf("trimmed mean = %g, want 2", agg[0])
	}
}

func TestMedianOddEven(t *testing.T) {
	odd := [][]float64{{1}, {9}, {5}}
	if got := (Median{}).Aggregate(odd)[0]; got != 5 {
		t.Fatalf("odd median = %g, want 5", got)
	}
	even := [][]float64{{1}, {3}, {7}, {9}}
	if got := (Median{}).Aggregate(even)[0]; got != 5 {
		t.Fatalf("even median = %g, want 5", got)
	}
}

// Property: the median aggregate is bounded by honest values when honest
// clients form a majority — a single attacker cannot move any coordinate
// outside the honest range.
func TestMedianRobustProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + 2*r.Intn(3) // odd population: 3, 5, 7
		dim := 1 + r.Intn(5)
		deltas := make([][]float64, n)
		lo, hi := make([]float64, dim), make([]float64, dim)
		for j := range lo {
			lo[j] = math.Inf(1)
			hi[j] = math.Inf(-1)
		}
		for i := 0; i < n-1; i++ { // honest
			v := make([]float64, dim)
			for j := range v {
				v[j] = r.NormFloat64()
				if v[j] < lo[j] {
					lo[j] = v[j]
				}
				if v[j] > hi[j] {
					hi[j] = v[j]
				}
			}
			deltas[i] = v
		}
		// One attacker with huge values.
		atk := make([]float64, dim)
		for j := range atk {
			atk[j] = 1e6 * r.NormFloat64()
		}
		deltas[n-1] = atk
		agg := (Median{}).Aggregate(deltas)
		for j, v := range agg {
			if v < lo[j]-1e-9 || v > hi[j]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: trimmed mean with Trim ≥ #attackers is bounded by honest
// values per coordinate.
func TestTrimmedMeanRobustProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(4)
		dim := 1 + r.Intn(4)
		deltas := make([][]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n-1; i++ {
			v := make([]float64, dim)
			for j := range v {
				v[j] = r.NormFloat64()
				if v[j] < lo {
					lo = v[j]
				}
				if v[j] > hi {
					hi = v[j]
				}
			}
			deltas[i] = v
		}
		atk := make([]float64, dim)
		for j := range atk {
			atk[j] = 1e9
		}
		deltas[n-1] = atk
		agg := TrimmedMean{Trim: 1}.Aggregate(deltas)
		for _, v := range agg {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBulyanNearHonestMean(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	deltas := cluster(rng, 8, 6, 2, 0.1)
	deltas = append(deltas, cluster(rng, 1, 6, -100, 0.1)...)
	agg := Bulyan{F: 1}.Aggregate(deltas)
	for _, v := range agg {
		if math.Abs(v-2) > 0.5 {
			t.Fatalf("Bulyan aggregate %g, want near 2", v)
		}
	}
}

func TestAggregatorsPanicOnEmpty(t *testing.T) {
	for _, f := range []func(){
		func() { Krum{}.Aggregate(nil) },
		func() { TrimmedMean{}.Aggregate(nil) },
		func() { Median{}.Aggregate(nil) },
		func() { Bulyan{}.Aggregate(nil) },
		func() { TrimmedMean{Trim: 2}.Aggregate([][]float64{{1}, {2}, {3}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("empty/invalid input accepted")
				}
			}()
			f()
		}()
	}
}
