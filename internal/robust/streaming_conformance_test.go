package robust

import (
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/fl"
)

// TestRobustRulesDoNotStream pins a deliberate design decision: the
// Byzantine-robust rules need the whole round's deltas at once (pairwise
// distances, per-coordinate sorts), so none of them may implement
// fl.StreamingAggregator — a streaming server must fall back to the batch
// round for them. If a rule ever grows a BeginFold, this test forces the
// author to prove the incremental form is bit-identical first.
func TestRobustRulesDoNotStream(t *testing.T) {
	rules := []fl.Aggregator{
		Krum{F: 1},
		MultiKrum{F: 1, M: 2},
		TrimmedMean{Trim: 1},
		Median{},
		Bulyan{F: 1},
	}
	for _, r := range rules {
		if _, ok := r.(fl.StreamingAggregator); ok {
			t.Errorf("%T implements fl.StreamingAggregator; robust rules must aggregate batch-wise", r)
		}
	}
}
