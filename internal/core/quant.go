package core

import (
	"fmt"
	"sort"

	"github.com/fedcleanse/fedcleanse/internal/nn"
)

// Server-side prune-order construction over quantized activation reports
// (DESIGN.md §14). When clients ship int8-quantized activation payloads
// instead of pre-computed rank/vote vectors, the server reconstructs the
// reports here. Ranking operates directly on the int8 codes: the affine
// dequantization map a = zero + scale·(q+128) is monotonically increasing
// (scale ≥ 0), so sorting by code — with the same ascending-index tie
// break — yields exactly the order of the dequantized activations. These
// constructors are therefore bit-identical to dequantize-then-
// RanksFromActivations, without materializing a float64 vector.

// ActivationReporter is implemented by report clients that can expose the
// recorded per-neuron average activation vector itself, enabling
// server-side prune-order construction from compact activation payloads.
// Transport servers prefer this over RankReport when encoding report
// responses: shipping the activations (quantized to int8 on the wire)
// lets one payload serve both the rank and the vote aggregation.
type ActivationReporter interface {
	// ActivationReport returns the client's recorded mean activation per
	// unit of the Prunable layer at layerIdx.
	ActivationReport(m *nn.Sequential, layerIdx int) []float64
}

// RanksFromQuantized converts an int8-quantized activation vector into the
// RAP rank report: ranks[i] is the 1-based position of neuron i sorted by
// decreasing code (rank 1 = most active). Ties break by neuron index,
// matching RanksFromActivations over the dequantized values exactly.
func RanksFromQuantized(q []int8) []int {
	order := argsortDescInt8(q)
	ranks := make([]int, len(q))
	for pos, unit := range order {
		ranks[unit] = pos + 1
	}
	return ranks
}

// VotesFromQuantized converts an int8-quantized activation vector into the
// MVP vote report for pruning rate p: exactly ⌊p·P_L⌋ of the lowest-code
// (least active) neurons receive a prune vote, bit-identical to
// VotesFromActivations over the dequantized values.
func VotesFromQuantized(q []int8, p float64) []bool {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("core: pruning rate %g outside [0,1]", p))
	}
	k := int(p * float64(len(q)))
	votes := make([]bool, len(q))
	order := argsortDescInt8(q) // most active first
	for i := len(order) - k; i < len(order); i++ {
		votes[order[i]] = true
	}
	return votes
}

// argsortDescInt8 is argsortDesc over int8 codes: indices sorted by
// decreasing value, ties broken by ascending index.
func argsortDescInt8(q []int8) []int {
	idx := make([]int, len(q))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return q[idx[a]] > q[idx[b]] })
	return idx
}
