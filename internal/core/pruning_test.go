package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

func TestRanksFromActivations(t *testing.T) {
	acts := []float64{0.5, 2.0, 0.1, 1.0}
	ranks := RanksFromActivations(acts)
	// Sorted desc: unit1 (2.0), unit3 (1.0), unit0 (0.5), unit2 (0.1).
	want := []int{3, 1, 4, 2}
	for i, w := range want {
		if ranks[i] != w {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
}

func TestRanksArePermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		acts := make([]float64, n)
		for i := range acts {
			acts[i] = r.Float64()
		}
		ranks := RanksFromActivations(acts)
		seen := make([]bool, n+1)
		for _, v := range ranks {
			if v < 1 || v > n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: relabeling clients (permuting the report list) does not change
// aggregated ranks — aggregation is client-order invariant.
func TestAggregateRanksPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		clients, units := 2+r.Intn(5), 2+r.Intn(8)
		reports := make([][]int, clients)
		for c := range reports {
			perm := r.Perm(units)
			rep := make([]int, units)
			for i, p := range perm {
				rep[i] = p + 1
			}
			reports[c] = rep
		}
		a := AggregateRanks(reports)
		shuffled := append([][]int(nil), reports...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b := AggregateRanks(shuffled)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a single attacker among N clients can shift any neuron's mean
// rank by at most (P_L − 1)/N — the bounded-influence argument of §IV-A1.
func TestSingleAttackerRankInfluenceBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		clients, units := 3+r.Intn(6), 2+r.Intn(10)
		honest := make([][]int, clients)
		for c := range honest {
			perm := r.Perm(units)
			rep := make([]int, units)
			for i, p := range perm {
				rep[i] = p + 1
			}
			honest[c] = rep
		}
		base := AggregateRanks(honest)
		// Attacker replaces client 0's report with an arbitrary permutation.
		evil := append([][]int(nil), honest...)
		perm := r.Perm(units)
		rep := make([]int, units)
		for i, p := range perm {
			rep[i] = p + 1
		}
		evil[0] = rep
		after := AggregateRanks(evil)
		bound := float64(units-1)/float64(clients) + 1e-9
		for i := range base {
			if math.Abs(after[i]-base[i]) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVotesFromActivations(t *testing.T) {
	acts := []float64{0.5, 2.0, 0.1, 1.0}
	votes := VotesFromActivations(acts, 0.5)
	// Two least active units (2 and 0) get prune votes.
	want := []bool{true, false, true, false}
	for i, w := range want {
		if votes[i] != w {
			t.Fatalf("votes = %v, want %v", votes, want)
		}
	}
	count := 0
	for _, v := range VotesFromActivations(acts, 0.25) {
		if v {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("rate 0.25 produced %d votes, want 1", count)
	}
}

// Property: vote reports always contain exactly ⌊p·n⌋ prune votes.
func TestVoteCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		p := r.Float64()
		acts := make([]float64, n)
		for i := range acts {
			acts[i] = r.NormFloat64()
		}
		votes := VotesFromActivations(acts, p)
		count := 0
		for _, v := range votes {
			if v {
				count++
			}
		}
		return count == int(p*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a minority of vote-manipulating attackers cannot force a
// neuron's prune share past the honest majority — with a attackers out of
// n clients, shares move by at most a/n.
func TestVoteInfluenceBounded(t *testing.T) {
	honest := [][]bool{
		{true, false, false, false},
		{true, false, false, false},
		{true, false, false, false},
		{false, true, false, false},
	}
	base := AggregateVotes(honest)
	evil := append([][]bool(nil), honest...)
	evil[0] = []bool{false, false, false, true} // attacker flips its vote
	after := AggregateVotes(evil)
	for i := range base {
		if math.Abs(after[i]-base[i]) > 0.25+1e-12 {
			t.Fatalf("one attacker of four moved share by %g", math.Abs(after[i]-base[i]))
		}
	}
}

func TestPruneOrderFromRanksMostDormantFirst(t *testing.T) {
	mean := []float64{1.5, 3.5, 2.0} // unit1 most dormant (largest mean rank)
	order := PruneOrderFromRanks(mean)
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("order = %v, want [1 2 0]", order)
	}
}

func TestAggregateRejectsBadReports(t *testing.T) {
	for _, f := range []func(){
		func() { AggregateRanks(nil) },
		func() { AggregateRanks([][]int{{1, 2}, {1}}) },
		func() { AggregateRanks([][]int{{0, 1}}) },
		func() { AggregateVotes(nil) },
		func() { AggregateVotes([][]bool{{true}, {true, false}}) },
		func() { VotesFromActivations([]float64{1}, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad report accepted")
				}
			}()
			f()
		}()
	}
}

// planted model: a dense layer whose unit activations are directly
// controlled, plus an evaluator counting surviving "important" units.
func plantedConv(t *testing.T, rng *rand.Rand) (*nn.Sequential, int) {
	t.Helper()
	d := tensor.ConvDims{C: 1, H: 4, W: 4, K: 3, Stride: 1, Pad: 1}
	conv := nn.NewConv2D("conv", d, 6, rng)
	m := nn.NewSequential(conv, nn.NewReLU("r"), nn.NewFlatten("f"),
		nn.NewDense("fc", 6*16, 3, rng))
	return m, 0
}

func TestPruneToThresholdStopsAndReverts(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m, layerIdx := plantedConv(t, rng)
	// Evaluator: accuracy is 1.0 until more than 3 units are pruned, then
	// collapses. The 4th prune must be attempted and reverted.
	eval := Evaluator(func(mm *nn.Sequential) float64 {
		pruned := mm.Layer(layerIdx).(nn.Prunable).PrunedCount()
		if pruned > 3 {
			return 0.5
		}
		return 1.0
	})
	order := []int{5, 4, 3, 2, 1, 0}
	res := PruneToThreshold(m, layerIdx, order, eval, 0.9, 0)
	if len(res.Pruned) != 3 {
		t.Fatalf("pruned %d units, want 3", len(res.Pruned))
	}
	if got := m.Layer(layerIdx).(nn.Prunable).PrunedCount(); got != 3 {
		t.Fatalf("model has %d pruned units after revert, want 3", got)
	}
	if len(res.Steps) != 4 {
		t.Fatalf("%d steps traced, want 4 (3 kept + 1 rejected)", len(res.Steps))
	}
	if res.FinalAccuracy != 1.0 {
		t.Fatalf("final accuracy %g, want 1.0", res.FinalAccuracy)
	}
	// The reverted unit's weights must be restored (non-zero).
	conv := m.Layer(layerIdx).(*nn.Conv2D)
	fanIn := conv.W.Value.Dim(1)
	unit := order[3]
	nonZero := false
	for j := 0; j < fanIn; j++ {
		if conv.W.Value.Data[unit*fanIn+j] != 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("reverted unit's weights stayed zero")
	}
}

func TestPruneToThresholdRespectsMaxUnits(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	m, layerIdx := plantedConv(t, rng)
	eval := Evaluator(func(*nn.Sequential) float64 { return 1 })
	res := PruneToThreshold(m, layerIdx, []int{0, 1, 2, 3, 4, 5}, eval, 0, 2)
	if len(res.Pruned) != 2 {
		t.Fatalf("pruned %d, want 2 (maxUnits)", len(res.Pruned))
	}
}

func TestPruneToThresholdNeverKillsAllUnits(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	m, layerIdx := plantedConv(t, rng)
	eval := Evaluator(func(*nn.Sequential) float64 { return 1 }) // never stops
	res := PruneToThreshold(m, layerIdx, []int{0, 1, 2, 3, 4, 5}, eval, 0, 0)
	if len(res.Pruned) != 5 {
		t.Fatalf("pruned %d, want 5 (one unit must survive)", len(res.Pruned))
	}
}

func TestPruneSweepCurveLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	m, layerIdx := plantedConv(t, rng)
	calls := 0
	eval := Evaluator(func(*nn.Sequential) float64 { calls++; return 1 })
	curves := PruneSweep(m, layerIdx, []int{0, 1, 2}, eval, eval)
	if len(curves) != 2 {
		t.Fatalf("%d curves, want 2", len(curves))
	}
	for _, c := range curves {
		if len(c) != 4 { // initial point + 3 prunes
			t.Fatalf("curve length %d, want 4", len(c))
		}
	}
	if m.Layer(layerIdx).(nn.Prunable).PrunedCount() != 3 {
		t.Fatal("sweep should leave all listed units pruned")
	}
}
