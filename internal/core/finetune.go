package core

import (
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
)

// Tuner runs federated fine-tuning rounds over the client population,
// updating m in place. internal/fl.Server implements it; injecting the
// interface here keeps the defense package independent of the simulator.
type Tuner interface {
	FineTune(m *nn.Sequential, rounds int)
}

// FineTuneResult reports the outcome of the fine-tuning phase.
type FineTuneResult struct {
	// Rounds actually executed.
	Rounds int
	// Accuracies holds the evaluator score after each round, preceded by
	// the pre-fine-tuning score at index 0.
	Accuracies []float64
}

// FineTune runs up to maxRounds single-round fine-tuning steps (§IV-B),
// stopping early once the evaluator has not improved for patience
// consecutive rounds ("the server can observe the updated global model's
// performance and stop when the accuracy does not improve any further").
// Prune masks on m survive aggregation because the model re-applies them
// on every parameter installation.
func FineTune(m *nn.Sequential, tuner Tuner, maxRounds, patience int, eval ScopedEvaluator) FineTuneResult {
	if patience <= 0 {
		patience = 2
	}
	sp := obs.StartSpan("defense.finetune", obs.M.DefenseFineTuneSeconds)
	defer sp.End()
	res := FineTuneResult{Accuracies: []float64{eval.Evaluate(m)}}
	best := res.Accuracies[0]
	stale := 0
	for r := 0; r < maxRounds; r++ {
		tuner.FineTune(m, 1)
		acc := eval.Evaluate(m)
		res.Accuracies = append(res.Accuracies, acc)
		res.Rounds++
		if acc > best+1e-9 {
			best = acc
			stale = 0
		} else {
			stale++
			if stale >= patience {
				break
			}
		}
	}
	return res
}
