package core

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/metrics"
)

// The load-bearing contract of the quantized report path: ranking and
// voting directly on int8 codes is bit-identical to dequantizing first and
// running the float64 constructors. This is what lets the server rebuild
// reports from Acts8 wire payloads without a float64 round trip.
func TestQuantizedConstructorsMatchDequantized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(600)
		acts := make([]float64, n)
		for i := range acts {
			acts[i] = rng.Float64() * 5
		}
		if trial%3 == 0 {
			// Force heavy code collisions: few distinct values.
			for i := range acts {
				acts[i] = float64(rng.Intn(4))
			}
		}
		q := metrics.QuantizeActivations(acts)
		deq := q.Dequantize()

		if got, want := RanksFromQuantized(q.Q), RanksFromActivations(deq); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d): RanksFromQuantized diverges from dequantized path\n got %v\nwant %v",
				trial, n, got, want)
		}
		for _, p := range []float64{0, 0.3, 0.5, 1} {
			if got, want := VotesFromQuantized(q.Q, p), VotesFromActivations(deq, p); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d (n=%d, p=%g): VotesFromQuantized diverges from dequantized path",
					trial, n, p)
			}
		}
	}
}

func TestRanksFromQuantizedTieBreak(t *testing.T) {
	// Equal codes must rank by ascending index, like the float64 path.
	q := []int8{5, -3, 5, 127, -3}
	ranks := RanksFromQuantized(q)
	want := []int{2, 4, 3, 1, 5}
	if !reflect.DeepEqual(ranks, want) {
		t.Fatalf("ranks = %v, want %v", ranks, want)
	}
}

func TestVotesFromQuantizedRate(t *testing.T) {
	q := []int8{10, -20, 30, -40, 0, 25, -128, 127}
	votes := VotesFromQuantized(q, 0.5)
	k := 0
	for _, v := range votes {
		if v {
			k++
		}
	}
	if k != 4 {
		t.Fatalf("vote count = %d, want 4", k)
	}
	// The least-active half: codes -20, -40, -128 and 0.
	for _, i := range []int{1, 3, 4, 6} {
		if !votes[i] {
			t.Fatalf("unit %d (code %d) should carry a prune vote: %v", i, q[i], votes)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("rate out of range should panic")
		}
	}()
	VotesFromQuantized(q, 1.5)
}

// Aggregating quantized-constructed rank reports must feed AggregateRanks
// valid permutations.
func TestQuantizedRanksArePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := make([]int8, 512)
	for i := range q {
		q[i] = int8(rng.Intn(256) - 128)
	}
	ranks := RanksFromQuantized(q)
	seen := make([]bool, len(ranks)+1)
	for _, r := range ranks {
		if r < 1 || r > len(ranks) || seen[r] {
			t.Fatalf("ranks not a permutation of 1..%d: %v", len(ranks), ranks)
		}
		seen[r] = true
	}
	AggregateRanks([][]int{ranks, ranks}) // must not panic
}
