package core

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// actClient derives reports from a fixed activation vector, mimicking an
// honest client with deterministic local data. It reads the model it is
// handed (exercising the per-goroutine clone path) but keys its answer on
// its own activations.
type actClient struct {
	acts []float64
}

func (c *actClient) RankReport(m *nn.Sequential, layerIdx int) []int {
	_ = m.NumParams() // touch the clone like a real forward pass would
	return RanksFromActivations(c.acts)
}

func (c *actClient) VoteReport(m *nn.Sequential, layerIdx int, p float64) []bool {
	_ = m.NumParams()
	return VotesFromActivations(c.acts, p)
}

func (c *actClient) ReportAccuracy(m *nn.Sequential) float64 {
	_ = m.NumParams()
	return c.acts[0]
}

// TestGlobalPruneOrderParallelBitIdentical asserts that report collection
// produces the same global pruning sequence for worker counts 1, 2 and 8,
// for both RAP and MVP.
func TestGlobalPruneOrderParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rng)
	layerIdx := m.LastConvIndex()
	units := m.Layer(layerIdx).(nn.Prunable).Units()

	clients := make([]ReportClient, 12)
	for i := range clients {
		acts := make([]float64, units)
		for j := range acts {
			acts[j] = rng.NormFloat64()
		}
		clients[i] = &actClient{acts: acts}
	}

	for _, method := range []PruneMethod{RAP, MVP} {
		cfg := PipelineConfig{Method: method, VoteRate: 0.5}
		run := func(w int) []int {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			return GlobalPruneOrder(m, clients, layerIdx, cfg)
		}
		ref := run(1)
		for _, w := range []int{2, 8} {
			got := run(w)
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("%v workers=%d: prune order %v, want %v", method, w, got, ref)
				}
			}
		}
	}
}

// TestMeanReportedAccuracyParallelBitIdentical pins the summation order of
// the fan-out accuracy evaluator.
func TestMeanReportedAccuracyParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rng)
	clients := make([]ReportClient, 9)
	for i := range clients {
		clients[i] = &actClient{acts: []float64{rng.Float64()}}
	}
	run := func(w int) float64 {
		prev := parallel.SetWorkers(w)
		defer parallel.SetWorkers(prev)
		return MeanReportedAccuracy(m, clients)
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); got != ref {
			t.Fatalf("workers=%d: mean accuracy %v, want %v (bit-identical)", w, got, ref)
		}
	}
}
