// Naive-vs-cached equivalence of every mutate-then-evaluate loop (ISSUE 3):
// running PruneToThreshold, PruneSweep, AdjustWeights and AWSweep with the
// plain Evaluator adapter (full forward per step) and with the cached
// metrics.SuffixEvaluator must produce byte-equal curves and byte-equal
// final models, at any worker count.
package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

type incrFixture struct {
	template  *nn.Sequential
	val, test *dataset.Dataset
	poison    dataset.PoisonConfig
	layerIdx  int
	order     []int
}

func newIncrFixture(t *testing.T) *incrFixture {
	t.Helper()
	_, test := dataset.GenSynthMNIST(dataset.GenConfig{TrainPerClass: 2, TestPerClass: 16, Seed: 91})
	rng := rand.New(rand.NewSource(92))
	f := &incrFixture{
		template: nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rng),
		val:      &dataset.Dataset{Shape: test.Shape, Classes: test.Classes, Samples: test.Samples[:test.Len()/2]},
		test:     &dataset.Dataset{Shape: test.Shape, Classes: test.Classes, Samples: test.Samples[test.Len()/2:]},
		poison: dataset.PoisonConfig{
			Trigger:     dataset.PixelPattern(3, dataset.Shape{C: 1, H: 16, W: 16}),
			VictimLabel: 9,
			TargetLabel: 2,
		},
	}
	f.layerIdx = f.template.LastConvIndex()
	units := f.template.Layer(f.layerIdx).(nn.Prunable).Units()
	f.order = rng.Perm(units)
	return f
}

// naiveTA and naiveASR are the pre-caching evaluators: a full forward pass
// through fresh metrics calls on every step.
func (f *incrFixture) naiveTA() core.ScopedEvaluator {
	return core.Evaluator(func(m *nn.Sequential) float64 { return metrics.Accuracy(m, f.val, 0) })
}

func (f *incrFixture) naiveASR() core.ScopedEvaluator {
	return core.Evaluator(func(m *nn.Sequential) float64 {
		return metrics.AttackSuccessRate(m, f.test, f.poison, 0)
	})
}

func (f *incrFixture) cachedTA() core.ScopedEvaluator { return metrics.NewSuffixEvaluator(f.val, 0) }
func (f *incrFixture) cachedASR() core.ScopedEvaluator {
	return metrics.NewCachedASR(f.test, f.poison, 0)
}

func bytesEqualCurve(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: point %d is %v, want %v (bitwise)", what, i, got[i], want[i])
		}
	}
}

func modelsEqual(t *testing.T, what string, got, want *nn.Sequential) {
	t.Helper()
	bytesEqualCurve(t, what+" params", got.ParamsVector(), want.ParamsVector())
	gm, wm := got.StatMask(), want.StatMask()
	for i := range gm {
		if gm[i] != wm[i] {
			t.Fatalf("%s: stat mask diverges at %d", what, i)
		}
	}
}

// eachWorkerCount runs the check at 1, 2 and 8 workers — the cached path
// must be bit-identical to the naive one regardless of kernel fan-out.
func eachWorkerCount(t *testing.T, run func(t *testing.T)) {
	for _, w := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			run(t)
		})
	}
}

func TestPruneSweepCachedMatchesNaive(t *testing.T) {
	f := newIncrFixture(t)
	eachWorkerCount(t, func(t *testing.T) {
		mN := f.template.Clone()
		want := core.PruneSweep(mN, f.layerIdx, f.order, f.naiveTA(), f.naiveASR())
		mC := f.template.Clone()
		got := core.PruneSweep(mC, f.layerIdx, f.order, f.cachedTA(), f.cachedASR())
		bytesEqualCurve(t, "TA curve", got[0], want[0])
		bytesEqualCurve(t, "ASR curve", got[1], want[1])
		modelsEqual(t, "swept model", mC, mN)
	})
}

func TestPruneToThresholdCachedMatchesNaive(t *testing.T) {
	f := newIncrFixture(t)
	// Pick a threshold strictly between the sweep's min and max accuracy so
	// the guard fires mid-sweep and the revert path runs in both variants.
	probe := f.template.Clone()
	curve := core.PruneSweep(probe, f.layerIdx, f.order, f.naiveTA())[0]
	lo, hi := curve[0], curve[0]
	for _, v := range curve {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if lo == hi {
		t.Fatalf("degenerate fixture: accuracy constant at %v along the sweep", lo)
	}
	minAcc := (lo + hi) / 2
	eachWorkerCount(t, func(t *testing.T) {
		mN := f.template.Clone()
		want := core.PruneToThreshold(mN, f.layerIdx, f.order, f.naiveTA(), minAcc, 0)
		mC := f.template.Clone()
		got := core.PruneToThreshold(mC, f.layerIdx, f.order, f.cachedTA(), minAcc, 0)
		if len(got.Steps) != len(want.Steps) || len(got.Pruned) != len(want.Pruned) {
			t.Fatalf("trace shape: %d/%d steps, %d/%d pruned",
				len(got.Steps), len(want.Steps), len(got.Pruned), len(want.Pruned))
		}
		if len(want.Steps) != len(want.Pruned)+1 {
			t.Fatalf("threshold did not trigger a mid-sweep revert (%d steps, %d pruned)",
				len(want.Steps), len(want.Pruned))
		}
		for i := range got.Steps {
			if got.Steps[i].Unit != want.Steps[i].Unit {
				t.Fatalf("step %d pruned unit %d, want %d", i, got.Steps[i].Unit, want.Steps[i].Unit)
			}
			bytesEqualCurve(t, "step accuracy", []float64{got.Steps[i].Accuracy}, []float64{want.Steps[i].Accuracy})
		}
		bytesEqualCurve(t, "baseline/final",
			[]float64{got.BaselineAccuracy, got.FinalAccuracy},
			[]float64{want.BaselineAccuracy, want.FinalAccuracy})
		modelsEqual(t, "guarded model", mC, mN)
	})
}

func TestAdjustWeightsCachedMatchesNaive(t *testing.T) {
	f := newIncrFixture(t)
	layers := core.DefaultAWLayers(f.template, f.layerIdx)
	eachWorkerCount(t, func(t *testing.T) {
		for _, li := range layers {
			cfg := core.AWConfig{StartDelta: 3, MinDelta: 0.5, Eps: 0.5, MinAccuracy: 0}
			mN := f.template.Clone()
			want := core.AdjustWeights(mN, li, cfg, f.naiveTA())
			mC := f.template.Clone()
			got := core.AdjustWeights(mC, li, cfg, f.cachedTA())
			if len(got.Curve) != len(want.Curve) {
				t.Fatalf("layer %d: %d curve points, want %d", li, len(got.Curve), len(want.Curve))
			}
			for i := range got.Curve {
				bytesEqualCurve(t, "AW accuracy", []float64{got.Curve[i].Accuracy}, []float64{want.Curve[i].Accuracy})
				if got.Curve[i].Zeroed != want.Curve[i].Zeroed {
					t.Fatalf("layer %d step %d zeroed %d, want %d", li, i, got.Curve[i].Zeroed, want.Curve[i].Zeroed)
				}
			}
			modelsEqual(t, "adjusted model", mC, mN)
		}
	})
}

func TestAWSweepCachedMatchesNaive(t *testing.T) {
	f := newIncrFixture(t)
	deltas := []float64{5, 4, 3, 2, 1, 0.5}
	layers := core.DefaultAWLayers(f.template, f.layerIdx)
	eachWorkerCount(t, func(t *testing.T) {
		for _, li := range layers {
			mN := f.template.Clone()
			want := core.AWSweep(mN, li, deltas, f.naiveTA(), f.naiveASR())
			mC := f.template.Clone()
			got := core.AWSweep(mC, li, deltas, f.cachedTA(), f.cachedASR())
			bytesEqualCurve(t, "TA curve", got[0], want[0])
			bytesEqualCurve(t, "ASR curve", got[1], want[1])
			modelsEqual(t, "swept model", mC, mN)
		}
	})
}

// TestPruneSweepCachedAfterGuardedRevert chains the real pipeline order:
// a guarded prune (with a revert) followed by AW on the same cached
// evaluator instance — scopes must hand over cleanly.
func TestCachedEvaluatorScopeHandover(t *testing.T) {
	f := newIncrFixture(t)
	probe := f.template.Clone()
	curve := core.PruneSweep(probe, f.layerIdx, f.order, f.naiveTA())[0]
	lo, hi := curve[0], curve[0]
	for _, v := range curve {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	minAcc := (lo + hi) / 2

	run := func(ta core.ScopedEvaluator, m *nn.Sequential) (core.PruneResult, core.AWResult) {
		pr := core.PruneToThreshold(m, f.layerIdx, f.order, ta, minAcc, 0)
		aw := core.AdjustWeights(m, f.layerIdx, core.AWConfig{StartDelta: 3, MinDelta: 1, Eps: 1, MinAccuracy: 0}, ta)
		return pr, aw
	}
	mN := f.template.Clone()
	wantPR, wantAW := run(f.naiveTA(), mN)
	mC := f.template.Clone()
	ta := f.cachedTA() // one instance across both loops, like RunPipeline
	gotPR, gotAW := run(ta, mC)

	bytesEqualCurve(t, "final accuracy", []float64{gotPR.FinalAccuracy}, []float64{wantPR.FinalAccuracy})
	if gotAW.Zeroed != wantAW.Zeroed || math.Float64bits(gotAW.FinalDelta) != math.Float64bits(wantAW.FinalDelta) {
		t.Fatalf("AW after handover: zeroed %d Δ %v, want %d %v",
			gotAW.Zeroed, gotAW.FinalDelta, wantAW.Zeroed, wantAW.FinalDelta)
	}
	modelsEqual(t, "pipeline-order model", mC, mN)
	// And the evaluator still works unscoped after both loops.
	bytesEqualCurve(t, "post-loop Evaluate",
		[]float64{ta.Evaluate(mC)}, []float64{metrics.Accuracy(mN, f.val, 0)})
}
