package core

import (
	"fmt"

	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// AWConfig parameterizes the adjusting-extreme-weights step (§IV-C,
// Algorithm 1 "Process: Adjusting Weights").
type AWConfig struct {
	// StartDelta is the initial (large) Δ in units of the layer's weight
	// standard deviation.
	StartDelta float64
	// MinDelta stops the sweep even if accuracy holds (0 allows sweeping to
	// a degenerate Δ; experiments use ≥ 0.5).
	MinDelta float64
	// Eps is the per-step decrement of Δ.
	Eps float64
	// MinAccuracy is the evaluator guard: the sweep stops — and the last
	// clip is reverted — once accuracy would fall below it.
	MinAccuracy float64
}

// DefaultAWConfig mirrors the experiment settings used throughout §V:
// Δ starts at 5 standard deviations and shrinks by 0.25 per step.
func DefaultAWConfig(minAccuracy float64) AWConfig {
	return AWConfig{StartDelta: 5, MinDelta: 1, Eps: 0.25, MinAccuracy: minAccuracy}
}

// AWPoint traces one step of the Δ sweep.
type AWPoint struct {
	Delta    float64
	Zeroed   int // cumulative weights zeroed at this Δ
	Accuracy float64
}

// AWResult reports the outcome of AdjustWeights.
type AWResult struct {
	// FinalDelta is the last Δ whose clip was kept.
	FinalDelta float64
	// Zeroed is the number of weights set to zero in the returned model.
	Zeroed int
	// Curve traces the sweep including a final rejected step, if any.
	Curve []AWPoint
}

// AdjustWeights zeroes weights of the Conv2D (or Dense) layer at layerIdx
// whose values fall outside μ ± Δ·σ, starting from cfg.StartDelta and
// decreasing Δ by cfg.Eps while the evaluator stays at or above
// cfg.MinAccuracy. μ and σ are computed once from the layer's weights
// before any clipping (Algorithm 1 line 1). The clip at each Δ is applied
// to the original weights (clipping is monotone in Δ, so re-clipping the
// already-clipped tensor is equivalent). The final sub-threshold clip is
// reverted. m is modified in place.
//
// Prune masks are re-enforced after every clip, exactly as in AWSweep, so
// pruned units stay dead at each evaluated point (numerically this is a
// no-op — a pruned unit's original weights are already zero, and the clip
// writes either the original value or zero — but the invariant should not
// depend on that reasoning at a distance). Every mutation touches only
// layer layerIdx, which the suffix scope announces to cached evaluators.
func AdjustWeights(m *nn.Sequential, layerIdx int, cfg AWConfig, eval ScopedEvaluator) AWResult {
	w := layerWeights(m, layerIdx)
	sp := obs.StartSpan("defense.aw.sweep", obs.M.DefenseAWSweepSeconds)
	defer sp.End()
	mu, sigma := w.Mean(), w.Std()
	original := w.Clone()
	eval.BeginSuffix(m, layerIdx)
	defer eval.EndScope()
	var res AWResult
	res.FinalDelta = cfg.StartDelta + cfg.Eps // sentinel: nothing clipped yet
	backup := original.Clone()
	for delta := cfg.StartDelta; delta >= cfg.MinDelta-1e-12; delta -= cfg.Eps {
		lo, hi := mu-delta*sigma, mu+delta*sigma
		zeroed := 0
		for i, v := range original.Data {
			if v < lo || v > hi {
				w.Data[i] = 0
				zeroed++
			} else {
				w.Data[i] = v
			}
		}
		m.EnforceMasks()
		acc := eval.Evaluate(m)
		res.Curve = append(res.Curve, AWPoint{Delta: delta, Zeroed: zeroed, Accuracy: acc})
		if acc < cfg.MinAccuracy {
			// Revert to the previous Δ's clip and stop.
			w.CopyFrom(backup)
			break
		}
		backup.CopyFrom(w)
		res.FinalDelta = delta
		res.Zeroed = zeroed
	}
	obs.M.DefenseZeroedWeights.Add(uint64(res.Zeroed))
	obs.L().Debug("defense: layer sweep done",
		"layer", layerIdx, "zeroed", res.Zeroed, "final_delta", res.FinalDelta)
	return res
}

// AWSweep applies the clip at each Δ of the sweep without any accuracy
// guard, recording every evaluator after each step (the instrument behind
// Fig. 6). The model is left clipped at the final Δ; callers pass a clone.
// The first recorded point is Δ=+∞ (no clipping), matching the figure's
// "Δ=0 stands for the original model" convention.
func AWSweep(m *nn.Sequential, layerIdx int, deltas []float64, evals ...ScopedEvaluator) [][]float64 {
	w := layerWeights(m, layerIdx)
	mu, sigma := w.Mean(), w.Std()
	original := w.Clone()
	for _, e := range evals {
		e.BeginSuffix(m, layerIdx)
		defer e.EndScope()
	}
	curves := make([][]float64, len(evals))
	for i, e := range evals {
		curves[i] = append(curves[i], e.Evaluate(m))
	}
	for _, delta := range deltas {
		lo, hi := mu-delta*sigma, mu+delta*sigma
		for i, v := range original.Data {
			if v < lo || v > hi {
				w.Data[i] = 0
			} else {
				w.Data[i] = v
			}
		}
		m.EnforceMasks()
		for i, e := range evals {
			curves[i] = append(curves[i], e.Evaluate(m))
		}
	}
	return curves
}

// layerWeights returns the weight tensor of a Conv2D or Dense layer.
func layerWeights(m *nn.Sequential, layerIdx int) *tensor.Tensor {
	switch l := m.Layer(layerIdx).(type) {
	case *nn.Conv2D:
		return l.W.Value
	case *nn.Dense:
		return l.W.Value
	default:
		panic(fmt.Sprintf("core: layer %d (%s) has no adjustable weight matrix", layerIdx, m.Layer(layerIdx).Name()))
	}
}
