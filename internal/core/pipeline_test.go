package core

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// fakeReportClient serves canned activations.
type fakeReportClient struct {
	acts []float64
	// reportedAcc, when >= 0, is returned by ReportAccuracy.
	reportedAcc float64
}

func (f *fakeReportClient) RankReport(_ *nn.Sequential, _ int) []int {
	return RanksFromActivations(f.acts)
}

func (f *fakeReportClient) VoteReport(_ *nn.Sequential, _ int, p float64) []bool {
	return VotesFromActivations(f.acts, p)
}

func (f *fakeReportClient) ReportAccuracy(_ *nn.Sequential) float64 { return f.reportedAcc }

// fakeTuner counts fine-tune invocations.
type fakeTuner struct{ rounds int }

func (f *fakeTuner) FineTune(_ *nn.Sequential, rounds int) { f.rounds += rounds }

// pipelineModel returns a conv(6)->relu->flatten->dense model.
func pipelineModel(seed int64) *nn.Sequential {
	rng := rand.New(rand.NewSource(seed))
	d := tensor.ConvDims{C: 1, H: 4, W: 4, K: 3, Stride: 1, Pad: 1}
	return nn.NewSequential(
		nn.NewConv2D("conv", d, 6, rng),
		nn.NewReLU("relu"),
		nn.NewFlatten("flatten"),
		nn.NewDense("fc", 6*16, 3, rng),
	)
}

func TestRunPipelineAllStages(t *testing.T) {
	m := pipelineModel(70)
	// Units 4 and 5 are dormant for all clients: they get pruned first.
	clients := []ReportClient{
		&fakeReportClient{acts: []float64{5, 4, 3, 2, 0.1, 0.2}},
		&fakeReportClient{acts: []float64{4, 5, 2, 3, 0.2, 0.1}},
	}
	tuner := &fakeTuner{}
	eval := Evaluator(func(*nn.Sequential) float64 { return 0.95 })
	cfg := DefaultPipelineConfig()
	cfg.TargetLayer = 0
	cfg.MaxPruneUnits = 2
	cfg.FineTuneRounds = 3
	cfg.FineTunePatience = 5 // eval is constant, patience must end it
	rep := RunPipeline(m, clients, tuner, eval, cfg)

	if rep.TargetLayer != 0 {
		t.Fatalf("target layer %d, want 0", rep.TargetLayer)
	}
	if len(rep.Prune.Pruned) != 2 {
		t.Fatalf("pruned %d units, want 2", len(rep.Prune.Pruned))
	}
	conv := m.Layer(0).(*nn.Conv2D)
	if !conv.UnitPruned(4) || !conv.UnitPruned(5) {
		t.Fatalf("wrong units pruned: %v", rep.Prune.Pruned)
	}
	if tuner.rounds == 0 {
		t.Fatal("tuner never invoked")
	}
	if rep.AccBefore != 0.95 || rep.AccFinal != 0.95 {
		t.Fatalf("accuracy milestones %g/%g", rep.AccBefore, rep.AccFinal)
	}
}

func TestRunPipelineFineTuneEarlyStop(t *testing.T) {
	m := pipelineModel(71)
	clients := []ReportClient{&fakeReportClient{acts: []float64{1, 2, 3, 4, 5, 6}}}
	tuner := &fakeTuner{}
	eval := Evaluator(func(*nn.Sequential) float64 { return 0.9 }) // never improves
	cfg := DefaultPipelineConfig()
	cfg.TargetLayer = 0
	cfg.FineTuneRounds = 50
	cfg.FineTunePatience = 2
	RunPipeline(m, clients, tuner, eval, cfg)
	if tuner.rounds != 2 {
		t.Fatalf("fine-tuned %d rounds, want early stop at 2", tuner.rounds)
	}
}

func TestRunPipelineSkipFlags(t *testing.T) {
	eval := Evaluator(func(*nn.Sequential) float64 { return 1 })
	clients := []ReportClient{&fakeReportClient{acts: []float64{1, 2, 3, 4, 5, 6}}}

	m := pipelineModel(72)
	cfg := DefaultPipelineConfig()
	cfg.TargetLayer = 0
	cfg.SkipPrune = true
	cfg.FineTuneRounds = 0
	rep := RunPipeline(m, clients, nil, eval, cfg)
	if len(rep.Prune.Pruned) != 0 || m.Layer(0).(*nn.Conv2D).PrunedCount() != 0 {
		t.Fatal("SkipPrune pruned anyway")
	}

	m = pipelineModel(73)
	cfg = DefaultPipelineConfig()
	cfg.TargetLayer = 0
	cfg.SkipAW = true
	cfg.FineTuneRounds = 0
	rep = RunPipeline(m, clients, nil, eval, cfg)
	if rep.AW.Zeroed != 0 {
		t.Fatal("SkipAW adjusted weights anyway")
	}
}

func TestRunPipelinePanics(t *testing.T) {
	eval := Evaluator(func(*nn.Sequential) float64 { return 1 })
	clients := []ReportClient{&fakeReportClient{acts: []float64{1, 2, 3, 4, 5, 6}}}
	// No clients.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no clients accepted")
			}
		}()
		RunPipeline(pipelineModel(74), nil, nil, eval, DefaultPipelineConfig())
	}()
	// Fine-tuning without a tuner.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("fine-tuning without tuner accepted")
			}
		}()
		cfg := DefaultPipelineConfig()
		cfg.TargetLayer = 0
		cfg.FineTuneRounds = 1
		RunPipeline(pipelineModel(75), clients, nil, eval, cfg)
	}()
	// No conv layer with TargetLayer = -1.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("dense-only model accepted with TargetLayer=-1")
			}
		}()
		rng := rand.New(rand.NewSource(76))
		m := nn.NewSequential(nn.NewDense("fc", 4, 2, rng))
		RunPipeline(m, clients, nil, eval, DefaultPipelineConfig())
	}()
}

func TestGlobalPruneOrderMethods(t *testing.T) {
	m := pipelineModel(77)
	clients := []ReportClient{
		&fakeReportClient{acts: []float64{6, 5, 4, 3, 2, 1}},
		&fakeReportClient{acts: []float64{6, 5, 4, 3, 2, 1}},
	}
	cfg := DefaultPipelineConfig()
	for _, method := range []PruneMethod{RAP, MVP} {
		cfg.Method = method
		order := GlobalPruneOrder(m, clients, 0, cfg)
		if len(order) != 6 {
			t.Fatalf("%v order length %d", method, len(order))
		}
		switch method {
		case RAP:
			// Rank aggregation is fully ordered: unit 5 (most dormant) first.
			if order[0] != 5 {
				t.Fatalf("RAP order %v, want unit 5 first", order)
			}
		case MVP:
			// At rate 0.5, units 3-5 all get unanimous prune votes; they
			// must occupy the first three slots (ties broken by index).
			first := map[int]bool{order[0]: true, order[1]: true, order[2]: true}
			if !first[3] || !first[4] || !first[5] {
				t.Fatalf("MVP order %v, want {3,4,5} first", order)
			}
		}
	}
	// Unknown method panics.
	defer func() {
		if recover() == nil {
			t.Fatal("unknown method accepted")
		}
	}()
	cfg.Method = PruneMethod(99)
	GlobalPruneOrder(m, clients, 0, cfg)
}

func TestMeanReportedAccuracy(t *testing.T) {
	m := pipelineModel(78)
	clients := []ReportClient{
		&fakeReportClient{acts: []float64{1, 2, 3, 4, 5, 6}, reportedAcc: 0.8},
		&fakeReportClient{acts: []float64{1, 2, 3, 4, 5, 6}, reportedAcc: 0.6},
	}
	if got := MeanReportedAccuracy(m, clients); got != 0.7 {
		t.Fatalf("mean reported accuracy %g, want 0.7", got)
	}
}

func TestMeanReportedAccuracyPanicsWithoutReporters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no reporters accepted")
		}
	}()
	MeanReportedAccuracy(pipelineModel(79), []ReportClient{nonReporter{}})
}

// nonReporter implements ReportClient but not AccuracyReporter.
type nonReporter struct{}

func (nonReporter) RankReport(_ *nn.Sequential, _ int) []int             { return nil }
func (nonReporter) VoteReport(_ *nn.Sequential, _ int, _ float64) []bool { return nil }

func TestPruneMethodString(t *testing.T) {
	if RAP.String() != "RAP" || MVP.String() != "MVP" {
		t.Fatal("method names wrong")
	}
	if PruneMethod(9).String() == "" {
		t.Fatal("unknown method has empty name")
	}
}

func TestDefaultAWLayersFindsDense(t *testing.T) {
	m := pipelineModel(80)
	layers := DefaultAWLayers(m, 0)
	if len(layers) != 2 || layers[0] != 0 || layers[1] != 3 {
		t.Fatalf("AW layers %v, want [0 3]", layers)
	}
	// Model without a dense layer after the target: only the target.
	rng := rand.New(rand.NewSource(81))
	d := tensor.ConvDims{C: 1, H: 4, W: 4, K: 3, Stride: 1, Pad: 1}
	convOnly := nn.NewSequential(nn.NewConv2D("conv", d, 2, rng), nn.NewReLU("r"))
	if got := DefaultAWLayers(convOnly, 0); len(got) != 1 {
		t.Fatalf("AW layers %v, want [0]", got)
	}
}

func TestFineTuneTracksBest(t *testing.T) {
	m := pipelineModel(82)
	tuner := &fakeTuner{}
	// Accuracy improves for 3 rounds then plateaus.
	seq := []float64{0.5, 0.6, 0.7, 0.8, 0.8, 0.8, 0.8}
	i := 0
	eval := Evaluator(func(*nn.Sequential) float64 {
		v := seq[i]
		if i < len(seq)-1 {
			i++
		}
		return v
	})
	res := FineTune(m, tuner, 10, 2, eval)
	if res.Rounds != 5 { // 3 improving + 2 stale
		t.Fatalf("ran %d rounds, want 5", res.Rounds)
	}
	if res.Accuracies[0] != 0.5 {
		t.Fatalf("missing pre-tuning accuracy: %v", res.Accuracies)
	}
}
