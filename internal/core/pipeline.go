package core

import (
	"fmt"

	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// PruneMethod selects the federated pruning flavor.
type PruneMethod int

// Pruning methods (§IV-A1, §IV-A2).
const (
	// RAP is Rank Aggregation-based Pruning: clients report full rank
	// vectors; the server averages rank positions.
	RAP PruneMethod = iota + 1
	// MVP is Majority Voting-based Pruning: clients report binary prune
	// votes for a server-chosen rate; the server tallies vote shares.
	MVP
)

// String implements fmt.Stringer.
func (m PruneMethod) String() string {
	switch m {
	case RAP:
		return "RAP"
	case MVP:
		return "MVP"
	default:
		return fmt.Sprintf("PruneMethod(%d)", int(m))
	}
}

// ReportClient is the defense's view of a federated client: given the
// current global model and a target layer it produces either a rank or a
// vote report derived from locally recorded activations. Honest clients
// compute reports from true activations on their shard; adaptive attackers
// (§VI-B) return manipulated reports. Raw activations never leave the
// client, matching the paper's privacy argument.
type ReportClient interface {
	// RankReport returns the client's RAP rank vector for the layer.
	RankReport(m *nn.Sequential, layerIdx int) []int
	// VoteReport returns the client's MVP prune votes at rate p.
	VoteReport(m *nn.Sequential, layerIdx int, p float64) []bool
}

// AccuracyReporter is optionally implemented by clients when the server
// has no validation data and must rely on client-reported accuracies
// (§IV-A). Dishonest implementations are part of the threat model.
type AccuracyReporter interface {
	ReportAccuracy(m *nn.Sequential) float64
}

// PipelineConfig parameterizes Algorithm 1 end to end.
type PipelineConfig struct {
	// Method selects RAP or MVP.
	Method PruneMethod
	// TargetLayer is the index of the layer to prune; -1 selects the last
	// convolutional layer (the paper's choice).
	TargetLayer int
	// VoteRate is MVP's pruning rate p (the paper finds 0.3-0.7 works well).
	VoteRate float64
	// MaxAccuracyDrop is the pruning guard: pruning stops before the
	// evaluator falls more than this below its pre-pruning baseline.
	MaxAccuracyDrop float64
	// AWMaxAccuracyDrop is the adjusting-weights guard relative to the
	// evaluator score right before AW; 0 falls back to MaxAccuracyDrop.
	AWMaxAccuracyDrop float64
	// MaxPruneUnits bounds pruned units per layer (0 = unbounded).
	MaxPruneUnits int
	// SkipPrune and SkipAW disable individual stages, giving the paper's
	// ablation modes: FP-only (SkipAW), AW-only (SkipPrune), FP+AW
	// (FineTuneRounds=0) and All (everything on).
	SkipPrune, SkipAW bool
	// FineTuneRounds is the maximum number of fine-tuning rounds; 0 skips
	// fine-tuning entirely (the paper's FP+AW mode).
	FineTuneRounds int
	// FineTunePatience stops fine-tuning after this many rounds without
	// improvement (default 2).
	FineTunePatience int
	// AW configures the extreme-weight adjustment. AW.MinAccuracy == 0
	// derives the guard from the evaluator score before AW minus
	// MaxAccuracyDrop.
	AW AWConfig
	// AWLayers lists the layers whose extreme weights are adjusted. Empty
	// selects the last convolutional layer plus the first dense layer after
	// it: the paper clips the last conv layer of its 28×28 networks, and at
	// this reproduction's 16×16 geometry the trigger's post-pooling
	// activation collapses into a single spatial cell whose amplified
	// weights sit in that dense layer (see DESIGN.md).
	AWLayers []int
}

// DefaultPipelineConfig returns the configuration used by the paper's
// "All" mode on the MNIST-scale experiments.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Method:            MVP,
		TargetLayer:       -1,
		VoteRate:          0.5,
		MaxAccuracyDrop:   0.02,
		AWMaxAccuracyDrop: 0.06,
		FineTuneRounds:    10,
		FineTunePatience:  2,
		AW:                AWConfig{StartDelta: 5, MinDelta: 1, Eps: 0.25},
	}
}

// Report aggregates the telemetry of one pipeline run.
type Report struct {
	Method      PruneMethod
	TargetLayer int
	Prune       PruneResult
	FineTune    FineTuneResult
	AW          AWResult
	// Accuracy milestones as seen by the evaluator.
	AccBefore, AccAfterPrune, AccAfterFineTune, AccFinal float64
}

// RunPipeline executes the paper's Algorithm 1 on model m in place:
// federated pruning (rank or vote aggregation over the clients' reports),
// optional federated fine-tuning through the tuner, and adjusting extreme
// weights. eval is the server's accuracy guard. tuner may be nil only when
// cfg.FineTuneRounds is 0.
func RunPipeline(m *nn.Sequential, clients []ReportClient, tuner Tuner, eval ScopedEvaluator, cfg PipelineConfig) Report {
	if len(clients) == 0 {
		panic("core: RunPipeline with no clients")
	}
	layerIdx := cfg.TargetLayer
	if layerIdx < 0 {
		layerIdx = m.LastConvIndex()
		if layerIdx < 0 {
			panic("core: model has no convolutional layer to target")
		}
	}
	rep := Report{Method: cfg.Method, TargetLayer: layerIdx, AccBefore: eval.Evaluate(m)}

	// Step 1 — federated pruning.
	rep.AccAfterPrune = rep.AccBefore
	if !cfg.SkipPrune {
		order := GlobalPruneOrder(m, clients, layerIdx, cfg)
		minAcc := rep.AccBefore - cfg.MaxAccuracyDrop
		rep.Prune = PruneToThreshold(m, layerIdx, order, eval, minAcc, cfg.MaxPruneUnits)
		rep.AccAfterPrune = rep.Prune.FinalAccuracy
	}

	// Step 2 — optional federated fine-tuning.
	rep.AccAfterFineTune = rep.AccAfterPrune
	if cfg.FineTuneRounds > 0 {
		if tuner == nil {
			panic("core: fine-tuning requested without a Tuner")
		}
		rep.FineTune = FineTune(m, tuner, cfg.FineTuneRounds, cfg.FineTunePatience, eval)
		rep.AccAfterFineTune = rep.FineTune.Accuracies[len(rep.FineTune.Accuracies)-1]
	}

	// Step 3 — adjusting extreme weights.
	if cfg.SkipAW {
		rep.AccFinal = eval.Evaluate(m)
		return rep
	}
	aw := cfg.AW
	if aw.StartDelta == 0 {
		aw = DefaultAWConfig(0)
	}
	drop := cfg.AWMaxAccuracyDrop
	if drop == 0 {
		drop = cfg.MaxAccuracyDrop
	}
	layers := cfg.AWLayers
	if len(layers) == 0 {
		layers = DefaultAWLayers(m, layerIdx)
	}
	fixedGuard := aw.MinAccuracy != 0
	for i, li := range layers {
		if !fixedGuard {
			// Each layer's sweep gets its own accuracy budget relative to
			// the model as it stands, so an early layer cannot starve the
			// later (often more backdoor-critical) layers.
			aw.MinAccuracy = eval.Evaluate(m) - drop
		}
		res := AdjustWeights(m, li, aw, eval)
		if i == 0 {
			rep.AW = res
		} else {
			rep.AW.Zeroed += res.Zeroed
			rep.AW.Curve = append(rep.AW.Curve, res.Curve...)
			if res.FinalDelta < rep.AW.FinalDelta {
				rep.AW.FinalDelta = res.FinalDelta
			}
		}
	}
	rep.AccFinal = eval.Evaluate(m)
	return rep
}

// DefaultAWLayers returns the default extreme-weight adjustment targets:
// the pruning target layer (normally the last conv) plus the first Dense
// layer after it.
func DefaultAWLayers(m *nn.Sequential, pruneLayer int) []int {
	layers := []int{pruneLayer}
	for li := pruneLayer + 1; li < m.NumLayers(); li++ {
		if _, ok := m.Layer(li).(*nn.Dense); ok {
			layers = append(layers, li)
			break
		}
	}
	return layers
}

// GlobalPruneOrder collects rank or vote reports from every client and
// aggregates them into the server's global pruning sequence for the layer.
//
// Report collection fans out across clients: each one records activations
// over its whole local shard, which is the defense's per-client hot path
// (it scales linearly with cohort size). Every concurrent client gets its
// own clone of m — inference mutates per-layer caches, so sharing the
// model would race — and a clone carries identical parameters, so reports
// are bit-identical to the serial path. Aggregation itself stays serial in
// client-index order.
func GlobalPruneOrder(m *nn.Sequential, clients []ReportClient, layerIdx int, cfg PipelineConfig) []int {
	switch cfg.Method {
	case RAP:
		reports := make([][]int, len(clients))
		parallel.For(len(clients), func(i int) {
			reports[i] = clients[i].RankReport(m.Clone(), layerIdx)
		})
		return PruneOrderFromRanks(AggregateRanks(reports))
	case MVP:
		p := cfg.VoteRate
		if p == 0 {
			p = 0.5
		}
		reports := make([][]bool, len(clients))
		parallel.For(len(clients), func(i int) {
			reports[i] = clients[i].VoteReport(m.Clone(), layerIdx, p)
		})
		return PruneOrderFromVotes(AggregateVotes(reports))
	default:
		panic(fmt.Sprintf("core: unknown prune method %v", cfg.Method))
	}
}

// MeanReportedAccuracy averages client-reported accuracies, the fallback
// evaluator for servers without a validation set. Clients that do not
// implement AccuracyReporter are skipped; it panics if none do.
// The per-client evaluations run concurrently (each on its own model
// clone, see GlobalPruneOrder); the mean is summed serially in client
// order so the float result matches the serial path exactly.
func MeanReportedAccuracy(m *nn.Sequential, clients []ReportClient) float64 {
	reporters := make([]AccuracyReporter, 0, len(clients))
	for _, c := range clients {
		if r, ok := c.(AccuracyReporter); ok {
			reporters = append(reporters, r)
		}
	}
	if len(reporters) == 0 {
		panic("core: no client implements AccuracyReporter")
	}
	accs := make([]float64, len(reporters))
	parallel.For(len(reporters), func(i int) {
		accs[i] = reporters[i].ReportAccuracy(m.Clone())
	})
	sum := 0.0
	for _, a := range accs {
		sum += a
	}
	return sum / float64(len(reporters))
}
