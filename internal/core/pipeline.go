package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// PruneMethod selects the federated pruning flavor.
type PruneMethod int

// Pruning methods (§IV-A1, §IV-A2).
const (
	// RAP is Rank Aggregation-based Pruning: clients report full rank
	// vectors; the server averages rank positions.
	RAP PruneMethod = iota + 1
	// MVP is Majority Voting-based Pruning: clients report binary prune
	// votes for a server-chosen rate; the server tallies vote shares.
	MVP
)

// String implements fmt.Stringer.
func (m PruneMethod) String() string {
	switch m {
	case RAP:
		return "RAP"
	case MVP:
		return "MVP"
	default:
		return fmt.Sprintf("PruneMethod(%d)", int(m))
	}
}

// ReportClient is the defense's view of a federated client: given the
// current global model and a target layer it produces either a rank or a
// vote report derived from locally recorded activations. Honest clients
// compute reports from true activations on their shard; adaptive attackers
// (§VI-B) return manipulated reports. Raw activations never leave the
// client, matching the paper's privacy argument.
type ReportClient interface {
	// RankReport returns the client's RAP rank vector for the layer.
	RankReport(m *nn.Sequential, layerIdx int) []int
	// VoteReport returns the client's MVP prune votes at rate p.
	VoteReport(m *nn.Sequential, layerIdx int, p float64) []bool
}

// AccuracyReporter is optionally implemented by clients when the server
// has no validation data and must rely on client-reported accuracies
// (§IV-A). Dishonest implementations are part of the threat model.
type AccuracyReporter interface {
	ReportAccuracy(m *nn.Sequential) float64
}

// FallibleReportClient is implemented by report clients whose reports
// travel over a network and can fail (transport.RemoteClient). Report
// collection prefers the Try methods when available: an error means the
// client drops out of this aggregation — its report is simply absent,
// exactly as if the client had not been in the cohort — and the
// collection proceeds once ReportQuorum is met.
type FallibleReportClient interface {
	ReportClient
	// TryRankReport is RankReport with failure reporting and cancellation.
	TryRankReport(ctx context.Context, m *nn.Sequential, layerIdx int) ([]int, error)
	// TryVoteReport is VoteReport with failure reporting and cancellation.
	TryVoteReport(ctx context.Context, m *nn.Sequential, layerIdx int, p float64) ([]bool, error)
}

// FallibleAccuracyReporter is AccuracyReporter with failure reporting.
type FallibleAccuracyReporter interface {
	AccuracyReporter
	// TryReportAccuracy is ReportAccuracy with failure reporting and
	// cancellation.
	TryReportAccuracy(ctx context.Context, m *nn.Sequential) (float64, error)
}

// PipelineConfig parameterizes Algorithm 1 end to end.
type PipelineConfig struct {
	// Method selects RAP or MVP.
	Method PruneMethod
	// TargetLayer is the index of the layer to prune; -1 selects the last
	// convolutional layer (the paper's choice).
	TargetLayer int
	// VoteRate is MVP's pruning rate p (the paper finds 0.3-0.7 works well).
	VoteRate float64
	// MaxAccuracyDrop is the pruning guard: pruning stops before the
	// evaluator falls more than this below its pre-pruning baseline.
	MaxAccuracyDrop float64
	// AWMaxAccuracyDrop is the adjusting-weights guard relative to the
	// evaluator score right before AW; 0 falls back to MaxAccuracyDrop.
	AWMaxAccuracyDrop float64
	// MaxPruneUnits bounds pruned units per layer (0 = unbounded).
	MaxPruneUnits int
	// SkipPrune and SkipAW disable individual stages, giving the paper's
	// ablation modes: FP-only (SkipAW), AW-only (SkipPrune), FP+AW
	// (FineTuneRounds=0) and All (everything on).
	SkipPrune, SkipAW bool
	// FineTuneRounds is the maximum number of fine-tuning rounds; 0 skips
	// fine-tuning entirely (the paper's FP+AW mode).
	FineTuneRounds int
	// FineTunePatience stops fine-tuning after this many rounds without
	// improvement (default 2).
	FineTunePatience int
	// AW configures the extreme-weight adjustment. AW.MinAccuracy == 0
	// derives the guard from the evaluator score before AW minus
	// MaxAccuracyDrop.
	AW AWConfig
	// AWLayers lists the layers whose extreme weights are adjusted. Empty
	// selects the last convolutional layer plus the first dense layer after
	// it: the paper clips the last conv layer of its 28×28 networks, and at
	// this reproduction's 16×16 geometry the trigger's post-pooling
	// activation collapses into a single spatial cell whose amplified
	// weights sit in that dense layer (see DESIGN.md).
	AWLayers []int
	// ReportQuorum is the minimum fraction (0,1] of clients whose reports
	// must arrive for an aggregation (prune reports, accuracy fallback) to
	// proceed; collection panics when the quorum is missed, since the
	// defense cannot act on an unrepresentative minority. 0 accepts any
	// non-empty subset.
	ReportQuorum float64
	// ReportTimeout bounds each report-collection fan-out; when it expires
	// the collection context is cancelled, aborting in-flight remote
	// requests and recording the stragglers as dropouts. 0 means no
	// deadline.
	ReportTimeout time.Duration
}

// DefaultPipelineConfig returns the configuration used by the paper's
// "All" mode on the MNIST-scale experiments.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Method:            MVP,
		TargetLayer:       -1,
		VoteRate:          0.5,
		MaxAccuracyDrop:   0.02,
		AWMaxAccuracyDrop: 0.06,
		FineTuneRounds:    10,
		FineTunePatience:  2,
		AW:                AWConfig{StartDelta: 5, MinDelta: 1, Eps: 0.25},
	}
}

// Report aggregates the telemetry of one pipeline run.
type Report struct {
	Method      PruneMethod
	TargetLayer int
	Prune       PruneResult
	FineTune    FineTuneResult
	AW          AWResult
	// Accuracy milestones as seen by the evaluator.
	AccBefore, AccAfterPrune, AccAfterFineTune, AccFinal float64
	// ReportDropouts lists the indices (positions in the clients slice) of
	// clients whose prune reports failed and were excluded from
	// aggregation; empty when every report arrived.
	ReportDropouts []int
}

// RunPipeline executes the paper's Algorithm 1 on model m in place:
// federated pruning (rank or vote aggregation over the clients' reports),
// optional federated fine-tuning through the tuner, and adjusting extreme
// weights. eval is the server's accuracy guard. tuner may be nil only when
// cfg.FineTuneRounds is 0.
func RunPipeline(m *nn.Sequential, clients []ReportClient, tuner Tuner, eval ScopedEvaluator, cfg PipelineConfig) Report {
	if len(clients) == 0 {
		panic("core: RunPipeline with no clients")
	}
	sp := obs.StartRoot("defense.pipeline", obs.M.DefensePipelineSeconds)
	defer sp.End()
	psc := sp.Context()
	obs.M.DefensePipelines.Inc()
	layerIdx := cfg.TargetLayer
	if layerIdx < 0 {
		layerIdx = m.LastConvIndex()
		if layerIdx < 0 {
			panic("core: model has no convolutional layer to target")
		}
	}
	rep := Report{Method: cfg.Method, TargetLayer: layerIdx, AccBefore: eval.Evaluate(m)}
	obs.L().Info("defense: pipeline start",
		"method", cfg.Method.String(), "layer", layerIdx, "acc", rep.AccBefore)

	// Step 1 — federated pruning.
	rep.AccAfterPrune = rep.AccBefore
	if !cfg.SkipPrune {
		csp := obs.StartChildOf(psc, "defense.prune.collect", nil)
		collected := GlobalPruneOrderDetailCtx(
			obs.ContextWithSpan(context.Background(), csp.Context()), m, clients, layerIdx, cfg)
		csp.End()
		rep.ReportDropouts = collected.Dropped
		obs.M.DefenseReportDropouts.Add(uint64(len(collected.Dropped)))
		minAcc := rep.AccBefore - cfg.MaxAccuracyDrop
		ssp := obs.StartChildOf(psc, "defense.prune.sweep", nil)
		rep.Prune = PruneToThreshold(m, layerIdx, collected.Order, eval, minAcc, cfg.MaxPruneUnits)
		ssp.End()
		rep.AccAfterPrune = rep.Prune.FinalAccuracy
		obs.L().Info("defense: pruning done", "pruned", len(rep.Prune.Pruned),
			"dropouts", len(collected.Dropped), "acc", rep.AccAfterPrune)
	}

	// Step 2 — optional federated fine-tuning.
	rep.AccAfterFineTune = rep.AccAfterPrune
	if cfg.FineTuneRounds > 0 {
		if tuner == nil {
			panic("core: fine-tuning requested without a Tuner")
		}
		fsp := obs.StartChildOf(psc, "defense.finetune", nil)
		rep.FineTune = FineTune(m, tuner, cfg.FineTuneRounds, cfg.FineTunePatience, eval)
		fsp.End()
		rep.AccAfterFineTune = rep.FineTune.Accuracies[len(rep.FineTune.Accuracies)-1]
		obs.L().Info("defense: fine-tuning done",
			"rounds", rep.FineTune.Rounds, "acc", rep.AccAfterFineTune)
	}

	// Step 3 — adjusting extreme weights.
	if cfg.SkipAW {
		rep.AccFinal = eval.Evaluate(m)
		return rep
	}
	aw := cfg.AW
	if aw.StartDelta == 0 {
		aw = DefaultAWConfig(0)
	}
	drop := cfg.AWMaxAccuracyDrop
	if drop == 0 {
		drop = cfg.MaxAccuracyDrop
	}
	layers := cfg.AWLayers
	if len(layers) == 0 {
		layers = DefaultAWLayers(m, layerIdx)
	}
	fixedGuard := aw.MinAccuracy != 0
	for i, li := range layers {
		if !fixedGuard {
			// Each layer's sweep gets its own accuracy budget relative to
			// the model as it stands, so an early layer cannot starve the
			// later (often more backdoor-critical) layers.
			aw.MinAccuracy = eval.Evaluate(m) - drop
		}
		// The span's attempt slot carries the swept layer index — AW has
		// no client or retry identity, and the layer is what a trace
		// reader needs to tell the sweeps apart.
		asp := obs.StartChildOf(psc, "defense.aw.layer", nil).WithAttempt(li)
		res := AdjustWeights(m, li, aw, eval)
		asp.End()
		if i == 0 {
			rep.AW = res
		} else {
			rep.AW.Zeroed += res.Zeroed
			rep.AW.Curve = append(rep.AW.Curve, res.Curve...)
			if res.FinalDelta < rep.AW.FinalDelta {
				rep.AW.FinalDelta = res.FinalDelta
			}
		}
	}
	rep.AccFinal = eval.Evaluate(m)
	obs.L().Info("defense: weight adjustment done",
		"zeroed", rep.AW.Zeroed, "final_delta", rep.AW.FinalDelta, "acc", rep.AccFinal)
	return rep
}

// DefaultAWLayers returns the default extreme-weight adjustment targets:
// the pruning target layer (normally the last conv) plus the first Dense
// layer after it.
func DefaultAWLayers(m *nn.Sequential, pruneLayer int) []int {
	layers := []int{pruneLayer}
	for li := pruneLayer + 1; li < m.NumLayers(); li++ {
		if _, ok := m.Layer(li).(*nn.Dense); ok {
			layers = append(layers, li)
			break
		}
	}
	return layers
}

// PruneOrderResult carries the aggregated pruning sequence plus the
// collection telemetry: which clients (by index into the clients slice)
// responded and which dropped out. A dropped client contributes nothing
// to the aggregate — the order is computed exactly as if the cohort had
// never contained it.
type PruneOrderResult struct {
	Order     []int
	Responded []int
	Dropped   []int
}

// GlobalPruneOrder collects rank or vote reports from every client and
// aggregates them into the server's global pruning sequence for the layer.
// It is GlobalPruneOrderDetail without the telemetry.
func GlobalPruneOrder(m *nn.Sequential, clients []ReportClient, layerIdx int, cfg PipelineConfig) []int {
	return GlobalPruneOrderDetail(m, clients, layerIdx, cfg).Order
}

// GlobalPruneOrderDetail collects rank or vote reports and aggregates the
// survivors into the global pruning sequence.
//
// Report collection fans out across clients: each one records activations
// over its whole local shard, which is the defense's per-client hot path
// (it scales linearly with cohort size). Every concurrent client gets its
// own clone of m — inference mutates per-layer caches, so sharing the
// model would race — and a clone carries identical parameters, so reports
// are bit-identical to the serial path. Aggregation itself stays serial in
// client-index order, so a cohort with wire failures aggregates
// bit-identically to the same cohort with the failed clients removed.
//
// Clients implementing FallibleReportClient are collected through the
// fallible path under cfg.ReportTimeout; a failed (or nil) report drops
// the client from this aggregation. It panics when no report arrives or
// fewer than cfg.ReportQuorum of the cohort responds.
func GlobalPruneOrderDetail(m *nn.Sequential, clients []ReportClient, layerIdx int, cfg PipelineConfig) PruneOrderResult {
	return GlobalPruneOrderDetailCtx(context.Background(), m, clients, layerIdx, cfg)
}

// GlobalPruneOrderDetailCtx is GlobalPruneOrderDetail with a caller
// context: the collection context (and cfg.ReportTimeout, when set)
// derives from ctx, so cancellation and any trace span context it
// carries propagate into the per-client report calls — a remote
// client's wire attempts become children of the caller's span.
func GlobalPruneOrderDetailCtx(ctx context.Context, m *nn.Sequential, clients []ReportClient, layerIdx int, cfg PipelineConfig) PruneOrderResult {
	ctx, cancel := reportCtx(ctx, cfg.ReportTimeout)
	defer cancel()
	res := PruneOrderResult{}
	switch cfg.Method {
	case RAP:
		reports := make([][]int, len(clients))
		errs := make([]error, len(clients))
		parallel.For(len(clients), func(i int) {
			reports[i], errs[i] = rankReport(ctx, clients[i], m.Clone(), layerIdx)
		})
		ok := compactReports(reports, errs, &res)
		requireReportQuorum(len(ok), len(clients), cfg.ReportQuorum)
		res.Order = PruneOrderFromRanks(AggregateRanks(ok))
	case MVP:
		p := cfg.VoteRate
		if p == 0 {
			p = 0.5
		}
		reports := make([][]bool, len(clients))
		errs := make([]error, len(clients))
		parallel.For(len(clients), func(i int) {
			reports[i], errs[i] = voteReport(ctx, clients[i], m.Clone(), layerIdx, p)
		})
		ok := compactReports(reports, errs, &res)
		requireReportQuorum(len(ok), len(clients), cfg.ReportQuorum)
		res.Order = PruneOrderFromVotes(AggregateVotes(ok))
	default:
		panic(fmt.Sprintf("core: unknown prune method %v", cfg.Method))
	}
	return res
}

// errNilReport marks an infallible client that returned no report
// (transport.RemoteClient's infallible surface does this on failure).
var errNilReport = errors.New("core: client returned no report")

func rankReport(ctx context.Context, c ReportClient, m *nn.Sequential, layerIdx int) ([]int, error) {
	if fc, ok := c.(FallibleReportClient); ok {
		return fc.TryRankReport(ctx, m, layerIdx)
	}
	r := c.RankReport(m, layerIdx)
	if r == nil {
		return nil, errNilReport
	}
	return r, nil
}

func voteReport(ctx context.Context, c ReportClient, m *nn.Sequential, layerIdx int, p float64) ([]bool, error) {
	if fc, ok := c.(FallibleReportClient); ok {
		return fc.TryVoteReport(ctx, m, layerIdx, p)
	}
	v := c.VoteReport(m, layerIdx, p)
	if v == nil {
		return nil, errNilReport
	}
	return v, nil
}

// compactReports keeps the successful reports in client-index order and
// files the respondent/dropout indices into res.
func compactReports[T any](reports []T, errs []error, res *PruneOrderResult) []T {
	ok := make([]T, 0, len(reports))
	for i := range reports {
		if errs[i] != nil {
			res.Dropped = append(res.Dropped, i)
			continue
		}
		res.Responded = append(res.Responded, i)
		ok = append(ok, reports[i])
	}
	return ok
}

// requireReportQuorum panics when too few of the cohort's reports arrived.
// The shortfall is counted and logged before the panic so a crashed
// defense run still leaves its cause in the metrics and the event stream.
func requireReportQuorum(got, cohort int, quorum float64) {
	need := 1
	if quorum > 0 {
		if n := int(math.Ceil(quorum * float64(cohort))); n > need {
			need = n
		}
	}
	if got < need {
		obs.M.DefenseReportQuorumFailures.Inc()
		obs.L().Error("defense: report collection below quorum",
			"arrived", got, "cohort", cohort, "need", need)
		panic(fmt.Sprintf("core: %d of %d reports arrived, quorum needs %d", got, cohort, need))
	}
}

// reportCtx builds the collection context for a report fan-out on top of
// the caller's context.
func reportCtx(parent context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(parent, timeout)
	}
	return context.WithCancel(parent)
}

// MeanReportedAccuracy averages client-reported accuracies, the fallback
// evaluator for servers without a validation set. Clients that do not
// implement AccuracyReporter are skipped entirely; among the reporters,
// wire failures (FallibleAccuracyReporter errors, or NaN from the
// infallible surface) drop out of the mean. It panics if no report
// arrives. The per-client evaluations run concurrently (each on its own
// model clone, see GlobalPruneOrderDetail); the mean is summed serially
// in client order so the float result matches the serial path — and a
// cohort with failures matches the same cohort without the failed
// clients — exactly.
func MeanReportedAccuracy(m *nn.Sequential, clients []ReportClient) float64 {
	acc, _ := MeanReportedAccuracyDetail(m, clients, PipelineConfig{})
	return acc
}

// MeanReportedAccuracyDetail is MeanReportedAccuracy under cfg's
// ReportTimeout and ReportQuorum (quorum counted over the clients that
// implement AccuracyReporter), returning the mean plus the indices (into
// the clients slice) of reporters that dropped out.
func MeanReportedAccuracyDetail(m *nn.Sequential, clients []ReportClient, cfg PipelineConfig) (float64, []int) {
	type reporter struct {
		idx int
		r   AccuracyReporter
	}
	reporters := make([]reporter, 0, len(clients))
	for i, c := range clients {
		if r, ok := c.(AccuracyReporter); ok {
			reporters = append(reporters, reporter{idx: i, r: r})
		}
	}
	if len(reporters) == 0 {
		panic("core: no client implements AccuracyReporter")
	}
	ctx, cancel := reportCtx(context.Background(), cfg.ReportTimeout)
	defer cancel()
	accs := make([]float64, len(reporters))
	errs := make([]error, len(reporters))
	parallel.For(len(reporters), func(i int) {
		accs[i], errs[i] = reportAccuracy(ctx, reporters[i].r, m.Clone())
	})
	var dropped []int
	sum, n := 0.0, 0
	for i := range reporters {
		if errs[i] != nil {
			dropped = append(dropped, reporters[i].idx)
			continue
		}
		sum += accs[i]
		n++
	}
	requireReportQuorum(n, len(reporters), cfg.ReportQuorum)
	return sum / float64(n), dropped
}

func reportAccuracy(ctx context.Context, r AccuracyReporter, m *nn.Sequential) (float64, error) {
	if fr, ok := r.(FallibleAccuracyReporter); ok {
		return fr.TryReportAccuracy(ctx, m)
	}
	a := r.ReportAccuracy(m)
	if math.IsNaN(a) {
		return 0, errNilReport
	}
	return a, nil
}
