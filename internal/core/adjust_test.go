package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// convWithPlantedExtremes builds a single-conv model whose weights are
// N(0,1) plus a few planted extreme values.
func convWithPlantedExtremes(rng *rand.Rand, extremes []float64) (*nn.Sequential, *nn.Conv2D) {
	d := tensor.ConvDims{C: 1, H: 4, W: 4, K: 3, Stride: 1, Pad: 1}
	conv := nn.NewConv2D("conv", d, 8, rng)
	conv.W.Value.Randn(rng, 1)
	for i, v := range extremes {
		conv.W.Value.Data[i] = v
	}
	m := nn.NewSequential(conv, nn.NewReLU("r"), nn.NewFlatten("f"),
		nn.NewDense("fc", 8*16, 3, rng))
	return m, conv
}

func TestAdjustWeightsZeroesExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	m, conv := convWithPlantedExtremes(rng, []float64{25, -25, 30})
	eval := Evaluator(func(*nn.Sequential) float64 { return 1 }) // guard never fires
	res := AdjustWeights(m, 0, AWConfig{StartDelta: 5, MinDelta: 3, Eps: 1, MinAccuracy: 0.5}, eval)
	if res.Zeroed < 3 {
		t.Fatalf("zeroed %d weights, want >= 3 planted extremes", res.Zeroed)
	}
	for i := 0; i < 3; i++ {
		if conv.W.Value.Data[i] != 0 {
			t.Fatalf("planted extreme %d survived: %g", i, conv.W.Value.Data[i])
		}
	}
	if res.FinalDelta != 3 {
		t.Fatalf("final delta %g, want 3 (MinDelta reached)", res.FinalDelta)
	}
}

func TestAdjustWeightsGuardReverts(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m, conv := convWithPlantedExtremes(rng, []float64{25})
	before := conv.W.Value.Clone()
	// Guard fires immediately: no clip may survive.
	eval := Evaluator(func(*nn.Sequential) float64 { return 0 })
	res := AdjustWeights(m, 0, AWConfig{StartDelta: 5, MinDelta: 1, Eps: 1, MinAccuracy: 0.9}, eval)
	if res.Zeroed != 0 {
		t.Fatalf("zeroed %d despite immediate guard, want 0", res.Zeroed)
	}
	if !conv.W.Value.Equal(before, 0) {
		t.Fatal("weights changed despite guard firing on first step")
	}
	if len(res.Curve) != 1 {
		t.Fatalf("curve has %d points, want exactly the rejected first step", len(res.Curve))
	}
}

func TestAdjustWeightsGuardRevertsToLastGood(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m, conv := convWithPlantedExtremes(rng, []float64{25, -25})
	// Accept the first clip (Δ=5), reject the second (Δ=4).
	calls := 0
	eval := Evaluator(func(*nn.Sequential) float64 {
		calls++
		if calls == 1 {
			return 1
		}
		return 0
	})
	res := AdjustWeights(m, 0, AWConfig{StartDelta: 5, MinDelta: 1, Eps: 1, MinAccuracy: 0.9}, eval)
	if res.FinalDelta != 5 {
		t.Fatalf("final delta %g, want 5", res.FinalDelta)
	}
	// Extremes (|w|=25 ≫ 5σ) must still be gone from the kept clip.
	if conv.W.Value.Data[0] != 0 || conv.W.Value.Data[1] != 0 {
		t.Fatal("kept clip lost its zeroed extremes on revert")
	}
}

// Property: clipping is idempotent — running AdjustWeights twice with the
// same fixed Δ changes nothing the second time.
func TestAdjustWeightsIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m, conv := convWithPlantedExtremes(rng, []float64{25, -25, 18})
	eval := Evaluator(func(*nn.Sequential) float64 { return 1 })
	cfg := AWConfig{StartDelta: 3, MinDelta: 3, Eps: 1, MinAccuracy: 0.5}
	AdjustWeights(m, 0, cfg, eval)
	after1 := conv.W.Value.Clone()
	AdjustWeights(m, 0, cfg, eval)
	// The second run recomputes μ/σ on the clipped weights, so it may zero
	// strictly more — but every already-zero weight must stay zero and no
	// zeroed weight may come back.
	for i, v := range conv.W.Value.Data {
		if after1.Data[i] == 0 && v != 0 {
			t.Fatal("second clip resurrected a zeroed weight")
		}
	}
}

func TestAdjustWeightsPreservesPruneMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m, conv := convWithPlantedExtremes(rng, nil)
	m.PruneModelUnit(0, 2)
	eval := Evaluator(func(*nn.Sequential) float64 { return 1 })
	AdjustWeights(m, 0, AWConfig{StartDelta: 4, MinDelta: 2, Eps: 1, MinAccuracy: 0.5}, eval)
	fanIn := conv.W.Value.Dim(1)
	for j := 0; j < fanIn; j++ {
		if conv.W.Value.Data[2*fanIn+j] != 0 {
			t.Fatal("pruned unit resurrected by AW revert path")
		}
	}
}

func TestAWSweepCurveShape(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	m, _ := convWithPlantedExtremes(rng, []float64{25})
	zeroCount := Evaluator(func(mm *nn.Sequential) float64 {
		conv := mm.Layer(0).(*nn.Conv2D)
		n := 0.0
		for _, v := range conv.W.Value.Data {
			if v == 0 {
				n++
			}
		}
		return n
	})
	deltas := []float64{5, 4, 3, 2, 1}
	curves := AWSweep(m, 0, deltas, zeroCount)
	if len(curves[0]) != len(deltas)+1 {
		t.Fatalf("curve length %d, want %d", len(curves[0]), len(deltas)+1)
	}
	// Monotone: smaller Δ zeroes at least as many weights.
	for i := 1; i < len(curves[0]); i++ {
		if curves[0][i] < curves[0][i-1] {
			t.Fatalf("zeroed count decreased along the sweep: %v", curves[0])
		}
	}
}

func TestAdjustWeightsOnDenseLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	fc := nn.NewDense("fc", 10, 8, rng)
	fc.W.Value.Randn(rng, 1)
	fc.W.Value.Data[0] = 40
	m := nn.NewSequential(fc)
	eval := Evaluator(func(*nn.Sequential) float64 { return 1 })
	res := AdjustWeights(m, 0, AWConfig{StartDelta: 5, MinDelta: 4, Eps: 1, MinAccuracy: 0}, eval)
	if res.Zeroed < 1 || fc.W.Value.Data[0] != 0 {
		t.Fatal("dense-layer extreme survived")
	}
}

func TestDefaultAWConfig(t *testing.T) {
	cfg := DefaultAWConfig(0.9)
	if cfg.MinAccuracy != 0.9 || cfg.StartDelta <= cfg.MinDelta || cfg.Eps <= 0 {
		t.Fatalf("bad default config %+v", cfg)
	}
	if math.Mod(cfg.StartDelta-cfg.MinDelta, cfg.Eps) > 1e-9 {
		t.Fatalf("sweep does not land exactly on MinDelta: %+v", cfg)
	}
}

// TestAWPreservesPruneMasks is the regression gate for the per-step mask
// enforcement: units pruned before the Δ sweep must stay dead — weights,
// bias and mask — at every evaluated point of AWSweep and AdjustWeights
// (the defense evaluates mid-sweep states, so enforcement only after the
// loop would leak resurrected weights into the reported curves).
func TestAWPreservesPruneMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m, conv := convWithPlantedExtremes(rng, []float64{25, -25})
	const unit = 2
	m.PruneModelUnit(0, unit)
	fanIn := conv.W.Value.Dim(1)
	assertDead := func(when string) {
		t.Helper()
		for j := 0; j < fanIn; j++ {
			if conv.W.Value.Data[unit*fanIn+j] != 0 {
				t.Fatalf("%s: pruned unit weight %d resurrected to %g", when, j, conv.W.Value.Data[unit*fanIn+j])
			}
		}
		if conv.B.Value.Data[unit] != 0 {
			t.Fatalf("%s: pruned unit bias resurrected to %g", when, conv.B.Value.Data[unit])
		}
		if !conv.UnitPruned(unit) {
			t.Fatalf("%s: prune mask lost", when)
		}
	}
	eval := Evaluator(func(*nn.Sequential) float64 {
		assertDead("during sweep")
		return 1
	})
	AWSweep(m, 0, []float64{5, 3, 1, 0.25}, eval)
	assertDead("after AWSweep")
	AdjustWeights(m, 0, AWConfig{StartDelta: 5, MinDelta: 1, Eps: 1, MinAccuracy: 0}, eval)
	assertDead("after AdjustWeights")
}
