// Package core implements the paper's contribution: the post-training
// backdoor-cleansing defense for federated learning. It consists of
//
//  1. federated pruning (§IV-A) in two flavors — Rank Aggregation-based
//     Pruning (RAP) and Majority Voting-based Pruning (MVP) — which remove
//     dormant "backdoor neurons" from a target layer using only rank/vote
//     reports from clients (never raw data or activations),
//  2. an optional federated fine-tuning phase (§IV-B) that recovers benign
//     accuracy lost to pruning, and
//  3. adjusting extreme weights (AW, §IV-C), which zeroes last-conv-layer
//     weights outside μ ± Δ·σ with Δ decreased until a validation-accuracy
//     guard would be violated.
//
// RunPipeline composes the three steps into the paper's Algorithm 1.
package core

import (
	"fmt"
	"sort"

	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
)

// RanksFromActivations converts a client's recorded per-neuron average
// activations into the rank report of the RAP scheme: ranks[i] is the
// 1-based position of neuron i when neurons are sorted by decreasing
// activation (rank 1 = most active, rank P_L = most dormant). Ties are
// broken by neuron index for determinism.
func RanksFromActivations(acts []float64) []int {
	order := argsortDesc(acts)
	ranks := make([]int, len(acts))
	for pos, unit := range order {
		ranks[unit] = pos + 1
	}
	return ranks
}

// AggregateRanks implements the server side of RAP: the mean rank position
// R_i of every neuron over all client reports. All reports must have equal
// length and contain a permutation of 1..P_L (invalid reports are the
// attacker's problem — the mean is computed as given; bounds are enforced).
func AggregateRanks(reports [][]int) []float64 {
	if len(reports) == 0 {
		panic("core: AggregateRanks with no reports")
	}
	units := len(reports[0])
	mean := make([]float64, units)
	for _, r := range reports {
		if len(r) != units {
			panic(fmt.Sprintf("core: rank report length %d, want %d", len(r), units))
		}
		for i, v := range r {
			if v < 1 || v > units {
				panic(fmt.Sprintf("core: rank %d outside [1,%d]", v, units))
			}
			mean[i] += float64(v)
		}
	}
	inv := 1.0 / float64(len(reports))
	for i := range mean {
		mean[i] *= inv
	}
	return mean
}

// PruneOrderFromRanks turns aggregated mean ranks into the global pruning
// sequence: most-dormant neurons (largest mean rank) first.
func PruneOrderFromRanks(meanRanks []float64) []int {
	return argsortDesc(meanRanks)
}

// VotesFromActivations converts a client's activations into the MVP vote
// report for pruning rate p: exactly ⌊p·P_L⌋ of the least-active neurons
// receive a prune vote (true).
func VotesFromActivations(acts []float64, p float64) []bool {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("core: pruning rate %g outside [0,1]", p))
	}
	k := int(p * float64(len(acts)))
	votes := make([]bool, len(acts))
	order := argsortDesc(acts) // most active first
	for i := len(order) - k; i < len(order); i++ {
		votes[order[i]] = true
	}
	return votes
}

// AggregateVotes implements the server side of MVP: the fraction of clients
// voting to prune each neuron.
func AggregateVotes(reports [][]bool) []float64 {
	if len(reports) == 0 {
		panic("core: AggregateVotes with no reports")
	}
	units := len(reports[0])
	share := make([]float64, units)
	for _, r := range reports {
		if len(r) != units {
			panic(fmt.Sprintf("core: vote report length %d, want %d", len(r), units))
		}
		for i, v := range r {
			if v {
				share[i]++
			}
		}
	}
	inv := 1.0 / float64(len(reports))
	for i := range share {
		share[i] *= inv
	}
	return share
}

// PruneOrderFromVotes turns aggregated vote shares into the global pruning
// sequence: highest prune-vote share first. Ties are broken by neuron
// index.
func PruneOrderFromVotes(share []float64) []int {
	return argsortDesc(share)
}

// argsortDesc returns the indices of xs sorted by decreasing value, ties
// broken by ascending index.
func argsortDesc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx
}

// ScopedEvaluator scores candidate models for the defense's
// mutate-then-evaluate loops. Beyond plain evaluation it accepts mutation
// scopes: a loop that only mutates layers ≥ li (or only prunes units of
// layer li) announces so before it starts, which lets an implementation
// cache the forward pass up to the mutation boundary and replay only the
// suffix per step (metrics.SuffixEvaluator). The plain function adapter
// Evaluator ignores scopes and evaluates the full network every time;
// both must return bit-identical scores.
type ScopedEvaluator interface {
	// Evaluate scores the model (typically validation accuracy).
	Evaluate(m *nn.Sequential) float64
	// BeginSuffix declares that until EndScope every mutation of m is
	// confined to layers ≥ layerIdx, so activations entering layerIdx are
	// invariant.
	BeginSuffix(m *nn.Sequential, layerIdx int)
	// BeginPrune declares that until EndScope the only mutations of m are
	// unit prunes (and their snapshot reverts) of the Prunable layer at
	// layerIdx via PruneModelUnit. Pruning a unit zeroes exactly its output
	// channel, so even layerIdx itself need not be re-run: its cached
	// unpruned output with currently-pruned channels zeroed is bit-identical
	// to recomputing it (see DESIGN.md §9).
	BeginPrune(m *nn.Sequential, layerIdx int)
	// EndScope leaves the current scope; the evaluator falls back to full
	// forwards until the next Begin call.
	EndScope()
}

// Evaluator adapts a plain scoring function to ScopedEvaluator with no-op
// scopes; the loops then evaluate via full forward passes. It is typically
// metrics.Accuracy over the server's validation set, or a mean of
// client-reported accuracies when the server holds no data.
type Evaluator func(m *nn.Sequential) float64

// Evaluate implements ScopedEvaluator.
func (e Evaluator) Evaluate(m *nn.Sequential) float64 { return e(m) }

// BeginSuffix implements ScopedEvaluator as a no-op.
func (e Evaluator) BeginSuffix(*nn.Sequential, int) {}

// BeginPrune implements ScopedEvaluator as a no-op.
func (e Evaluator) BeginPrune(*nn.Sequential, int) {}

// EndScope implements ScopedEvaluator as a no-op.
func (e Evaluator) EndScope() {}

// PruneStep records the model state after one cumulative prune.
type PruneStep struct {
	// Unit is the neuron pruned at this step.
	Unit int
	// Accuracy is the evaluator score after the prune.
	Accuracy float64
}

// PruneResult reports the outcome of a threshold-guarded pruning run.
type PruneResult struct {
	// Pruned lists the units that remain pruned in the returned model.
	Pruned []int
	// Steps traces every attempted prune including a final rejected one.
	Steps []PruneStep
	// BaselineAccuracy is the evaluator score before any pruning.
	BaselineAccuracy float64
	// FinalAccuracy is the evaluator score of the returned model.
	FinalAccuracy float64
}

// PruneToThreshold prunes units of layer layerIdx of m in the given global
// order (Algorithm 1 lines 7-13), stopping — and reverting the offending
// prune — as soon as the evaluator drops below minAcc. m is modified in
// place. maxUnits bounds the number of pruned units (0 means no bound
// beyond leaving at least one unit alive).
//
// The loop announces a prune scope so cached evaluators replay only the
// suffix per step, and reverts a violating prune via a per-unit snapshot
// (Sequential.CaptureUnit/RestoreUnit) instead of cloning the model.
func PruneToThreshold(m *nn.Sequential, layerIdx int, order []int, eval ScopedEvaluator, minAcc float64, maxUnits int) PruneResult {
	p, ok := m.Layer(layerIdx).(nn.Prunable)
	if !ok {
		panic("core: PruneToThreshold target layer is not prunable")
	}
	sp := obs.StartSpan("defense.prune.sweep", obs.M.DefensePruneSweepSeconds)
	defer sp.End()
	eval.BeginPrune(m, layerIdx)
	defer eval.EndScope()
	res := PruneResult{BaselineAccuracy: eval.Evaluate(m)}
	res.FinalAccuracy = res.BaselineAccuracy
	limit := len(order) - 1 // always keep at least one unit
	if maxUnits > 0 && maxUnits < limit {
		limit = maxUnits
	}
	var snap nn.UnitSnapshot
	for _, unit := range order {
		if len(res.Pruned) >= limit {
			break
		}
		if p.UnitPruned(unit) {
			continue
		}
		snap = m.CaptureUnit(layerIdx, unit, snap)
		m.PruneModelUnit(layerIdx, unit)
		acc := eval.Evaluate(m)
		res.Steps = append(res.Steps, PruneStep{Unit: unit, Accuracy: acc})
		if acc < minAcc {
			// Revert the violating prune and stop (the paper stops pruning
			// before the test-accuracy drop).
			m.RestoreUnit(snap)
			break
		}
		res.Pruned = append(res.Pruned, unit)
		res.FinalAccuracy = acc
	}
	obs.M.DefensePrunedUnits.Add(uint64(len(res.Pruned)))
	return res
}

// PruneSweep prunes every unit of layer layerIdx in the given order without
// any threshold, recording the score of each evaluator after each prune.
// It is the instrument behind the paper's pruning curves (Fig. 5): pass
// benign accuracy and attack success rate as the two evaluators. m is
// modified in place (fully pruned on return); callers pass a clone.
func PruneSweep(m *nn.Sequential, layerIdx int, order []int, evals ...ScopedEvaluator) [][]float64 {
	for _, e := range evals {
		e.BeginPrune(m, layerIdx)
		defer e.EndScope()
	}
	curves := make([][]float64, len(evals))
	for i, e := range evals {
		curves[i] = append(curves[i], e.Evaluate(m)) // point 0: unpruned
	}
	for _, unit := range order {
		m.PruneModelUnit(layerIdx, unit)
		for i, e := range evals {
			curves[i] = append(curves[i], e.Evaluate(m))
		}
	}
	return curves
}
