package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/nn"
)

// flakyReportClient is a fakeReportClient whose fallible surface fails on
// demand, standing in for a remote stub behind a bad network.
type flakyReportClient struct {
	fakeReportClient
	failRanks, failVotes, failAcc bool
}

var errFlaky = errors.New("injected report failure")

func (f *flakyReportClient) TryRankReport(_ context.Context, m *nn.Sequential, li int) ([]int, error) {
	if f.failRanks {
		return nil, errFlaky
	}
	return f.RankReport(m, li), nil
}

func (f *flakyReportClient) TryVoteReport(_ context.Context, m *nn.Sequential, li int, p float64) ([]bool, error) {
	if f.failVotes {
		return nil, errFlaky
	}
	return f.VoteReport(m, li, p), nil
}

func (f *flakyReportClient) TryReportAccuracy(_ context.Context, m *nn.Sequential) (float64, error) {
	if f.failAcc {
		return 0, errFlaky
	}
	return f.ReportAccuracy(m), nil
}

// nilReportClient models a remote stub's infallible surface after a wire
// failure: nil reports, NaN accuracy.
type nilReportClient struct{}

func (nilReportClient) RankReport(*nn.Sequential, int) []int           { return nil }
func (nilReportClient) VoteReport(*nn.Sequential, int, float64) []bool { return nil }
func (nilReportClient) ReportAccuracy(*nn.Sequential) float64          { return math.NaN() }

// TestGlobalPruneOrderSkipsFailedReports: a cohort with wire failures must
// aggregate bit-identically to the same cohort with the failed clients
// removed, for both pruning methods.
func TestGlobalPruneOrderSkipsFailedReports(t *testing.T) {
	m := pipelineModel(90)
	healthy := []ReportClient{
		&fakeReportClient{acts: []float64{5, 4, 3, 2, 0.1, 0.2}},
		&fakeReportClient{acts: []float64{4, 5, 2, 3, 0.2, 0.1}},
	}
	failing := &flakyReportClient{
		fakeReportClient: fakeReportClient{acts: []float64{0.1, 0.2, 5, 4, 3, 2}},
		failRanks:        true, failVotes: true,
	}
	mixed := []ReportClient{healthy[0], failing, healthy[1]}

	for _, method := range []PruneMethod{RAP, MVP} {
		cfg := PipelineConfig{Method: method, VoteRate: 0.5}
		res := GlobalPruneOrderDetail(m, mixed, 0, cfg)
		want := GlobalPruneOrder(m, healthy, 0, cfg)
		if len(res.Order) != len(want) {
			t.Fatalf("%v: order length %d, want %d", method, len(res.Order), len(want))
		}
		for i := range want {
			if res.Order[i] != want[i] {
				t.Fatalf("%v: order %v, want %v (failed client leaked into aggregate)",
					method, res.Order, want)
			}
		}
		if len(res.Dropped) != 1 || res.Dropped[0] != 1 {
			t.Fatalf("%v: dropped %v, want [1]", method, res.Dropped)
		}
		if len(res.Responded) != 2 || res.Responded[0] != 0 || res.Responded[1] != 2 {
			t.Fatalf("%v: responded %v, want [0 2]", method, res.Responded)
		}
	}
}

// TestGlobalPruneOrderNilReportIsDropout: the infallible surface's nil
// report (a remote stub after a failed call) counts as a dropout too.
func TestGlobalPruneOrderNilReportIsDropout(t *testing.T) {
	m := pipelineModel(91)
	clients := []ReportClient{
		&fakeReportClient{acts: []float64{5, 4, 3, 2, 0.1, 0.2}},
		nilReportClient{},
	}
	cfg := PipelineConfig{Method: MVP, VoteRate: 0.5}
	res := GlobalPruneOrderDetail(m, clients, 0, cfg)
	if len(res.Dropped) != 1 || res.Dropped[0] != 1 {
		t.Fatalf("dropped %v, want [1]", res.Dropped)
	}
}

// TestGlobalPruneOrderQuorumPanics: too many failures abort collection.
func TestGlobalPruneOrderQuorumPanics(t *testing.T) {
	m := pipelineModel(92)
	clients := []ReportClient{
		&fakeReportClient{acts: []float64{5, 4, 3, 2, 0.1, 0.2}},
		&flakyReportClient{failRanks: true, failVotes: true},
		&flakyReportClient{failRanks: true, failVotes: true},
	}
	cfg := PipelineConfig{Method: MVP, VoteRate: 0.5, ReportQuorum: 0.67}
	defer func() {
		if recover() == nil {
			t.Fatal("missed quorum did not panic")
		}
	}()
	GlobalPruneOrderDetail(m, clients, 0, cfg)
}

// TestGlobalPruneOrderAllFailedPanics: with every report lost there is
// nothing to aggregate, quorum or not.
func TestGlobalPruneOrderAllFailedPanics(t *testing.T) {
	m := pipelineModel(93)
	clients := []ReportClient{&flakyReportClient{failRanks: true, failVotes: true}}
	defer func() {
		if recover() == nil {
			t.Fatal("total report loss did not panic")
		}
	}()
	GlobalPruneOrder(m, clients, 0, PipelineConfig{Method: RAP})
}

// TestMeanReportedAccuracySkipsFailures: failed reporters (fallible error
// or NaN from the infallible surface) drop out of the mean; the mean over
// the survivors is bit-identical to the cohort without them.
func TestMeanReportedAccuracySkipsFailures(t *testing.T) {
	m := pipelineModel(94)
	clients := []ReportClient{
		&fakeReportClient{reportedAcc: 0.9},
		&flakyReportClient{failAcc: true},
		nilReportClient{},
		&fakeReportClient{reportedAcc: 0.5},
	}
	got, dropped := MeanReportedAccuracyDetail(m, clients, PipelineConfig{})
	want := MeanReportedAccuracy(m, []ReportClient{
		&fakeReportClient{reportedAcc: 0.9},
		&fakeReportClient{reportedAcc: 0.5},
	})
	if got != want {
		t.Fatalf("mean %g, want %g", got, want)
	}
	if len(dropped) != 2 || dropped[0] != 1 || dropped[1] != 2 {
		t.Fatalf("dropped %v, want [1 2]", dropped)
	}
}

// TestMeanReportedAccuracyQuorumPanics mirrors the prune-report quorum.
func TestMeanReportedAccuracyQuorumPanics(t *testing.T) {
	m := pipelineModel(95)
	clients := []ReportClient{
		&fakeReportClient{reportedAcc: 0.9},
		&flakyReportClient{failAcc: true},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("missed accuracy quorum did not panic")
		}
	}()
	MeanReportedAccuracyDetail(m, clients, PipelineConfig{ReportQuorum: 0.9})
}

// TestRunPipelineRecordsReportDropouts: the pipeline report surfaces which
// clients' prune reports were lost.
func TestRunPipelineRecordsReportDropouts(t *testing.T) {
	m := pipelineModel(96)
	clients := []ReportClient{
		&fakeReportClient{acts: []float64{5, 4, 3, 2, 0.1, 0.2}},
		&flakyReportClient{
			fakeReportClient: fakeReportClient{acts: []float64{1, 1, 1, 1, 1, 1}},
			failRanks:        true, failVotes: true,
		},
	}
	eval := Evaluator(func(*nn.Sequential) float64 { return 0.95 })
	cfg := DefaultPipelineConfig()
	cfg.TargetLayer = 0
	cfg.MaxPruneUnits = 2
	cfg.FineTuneRounds = 0
	rep := RunPipeline(m, clients, nil, eval, cfg)
	if len(rep.ReportDropouts) != 1 || rep.ReportDropouts[0] != 1 {
		t.Fatalf("report dropouts %v, want [1]", rep.ReportDropouts)
	}
}
