package dataset

import (
	"math"
	"math/rand"
)

// GenConfig controls synthetic dataset generation.
type GenConfig struct {
	// TrainPerClass and TestPerClass are sample counts per class.
	TrainPerClass, TestPerClass int
	// Seed drives all generation; identical seeds give identical datasets.
	Seed int64
}

// synthSpec bundles the difficulty knobs of one synthetic task family.
type synthSpec struct {
	shape Shape
	// noise is the per-pixel Gaussian sigma added to each sample.
	noise float64
	// shift is the maximum absolute per-sample translation in pixels.
	shift int
	// brightLo/brightHi bound the per-sample brightness multiplier.
	brightLo, brightHi float64
	// baseBlend > 0 mixes a shared group prototype into each class
	// prototype, making classes within a group confusable (Fashion-style).
	baseBlend float64
	// groups is the number of shared base-shape groups when baseBlend > 0.
	groups int
	// distort adds per-sample random pixel dropout with this probability.
	distort float64
	// margin keeps prototype content this many pixels away from the image
	// border, mirroring MNIST/Fashion-MNIST's empty frame. Corner backdoor
	// triggers land in this quiet zone, which is what lets trigger-detecting
	// neurons be dormant on clean data. The CIFAR stand-in's low-frequency
	// color field still covers the border, so its frame is textured, not
	// empty — as with real CIFAR images.
	margin int
}

const synthClasses = 10

// GenSynthMNIST generates the MNIST stand-in: 1×16×16 images with sharply
// distinct per-class stroke prototypes and mild noise, calibrated so the
// paper's small CNN reaches its ≈98% test-accuracy band.
func GenSynthMNIST(cfg GenConfig) (train, test *Dataset) {
	spec := synthSpec{
		shape:    Shape{C: 1, H: 16, W: 16},
		noise:    0.34,
		shift:    1,
		brightLo: 0.8, brightHi: 1.15,
		distort: 0.04,
		margin:  1,
	}
	return genSynth(cfg, spec)
}

// GenSynthFashion generates the Fashion-MNIST stand-in: same geometry as
// the MNIST stand-in but with shared base shapes between class groups,
// higher noise and dropout, landing in the ≈88% accuracy band.
func GenSynthFashion(cfg GenConfig) (train, test *Dataset) {
	spec := synthSpec{
		shape:    Shape{C: 1, H: 16, W: 16},
		noise:    0.30,
		shift:    1,
		brightLo: 0.7, brightHi: 1.2,
		baseBlend: 0.55,
		groups:    4,
		distort:   0.05,
		margin:    1,
	}
	return genSynth(cfg, spec)
}

// GenSynthCIFAR generates the CIFAR-10 stand-in: 3×16×16 color images built
// from class hue plus textured shapes under heavy noise, jitter and
// dropout, landing in the ≈72% accuracy band.
func GenSynthCIFAR(cfg GenConfig) (train, test *Dataset) {
	spec := synthSpec{
		shape:    Shape{C: 3, H: 16, W: 16},
		noise:    0.35,
		shift:    2,
		brightLo: 0.6, brightHi: 1.3,
		baseBlend: 0.5,
		groups:    5,
		distort:   0.08,
		margin:    1,
	}
	return genSynth(cfg, spec)
}

// GenByName resolves a synthetic dataset generator by its CLI name
// ("mnist", "fashion" or "cifar").
func GenByName(name string) (func(GenConfig) (*Dataset, *Dataset), bool) {
	switch name {
	case "mnist":
		return GenSynthMNIST, true
	case "fashion":
		return GenSynthFashion, true
	case "cifar":
		return GenSynthCIFAR, true
	default:
		return nil, false
	}
}

// genSynth builds the train and test splits for one spec.
func genSynth(cfg GenConfig, spec synthSpec) (train, test *Dataset) {
	protos := makePrototypes(cfg.Seed, spec)
	mk := func(perClass int, split int64) *Dataset {
		ds := &Dataset{Shape: spec.shape, Classes: synthClasses}
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + split))
		for class := 0; class < synthClasses; class++ {
			for i := 0; i < perClass; i++ {
				ds.Samples = append(ds.Samples, renderSample(protos[class], spec, class, rng))
			}
		}
		ds.Shuffle(rng)
		return ds
	}
	return mk(cfg.TrainPerClass, 1), mk(cfg.TestPerClass, 2)
}

// makePrototypes draws one deterministic prototype image per class.
func makePrototypes(seed int64, spec synthSpec) [][]float64 {
	protos := make([][]float64, synthClasses)
	var bases [][]float64
	if spec.baseBlend > 0 {
		bases = make([][]float64, spec.groups)
		for g := range bases {
			rng := rand.New(rand.NewSource(seed*7919 + int64(g) + 101))
			bases[g] = drawPrototype(spec.shape, spec.margin, rng)
		}
	}
	for class := 0; class < synthClasses; class++ {
		rng := rand.New(rand.NewSource(seed*104_729 + int64(class) + 1))
		p := drawPrototype(spec.shape, spec.margin, rng)
		if spec.baseBlend > 0 {
			base := bases[class%spec.groups]
			for i := range p {
				p[i] = spec.baseBlend*base[i] + (1-spec.baseBlend)*p[i]
			}
		}
		protos[class] = p
	}
	return protos
}

// drawPrototype paints random strokes, blobs and rectangles onto a fresh
// canvas. Color channels receive correlated copies weighted by a per-class
// hue so 3-channel tasks carry both shape and color signal.
func drawPrototype(s Shape, margin int, rng *rand.Rand) []float64 {
	mono := make([]float64, s.H*s.W)
	spanW, spanH := s.W-2*margin, s.H-2*margin
	// 2-4 thick line strokes, confined to the content region.
	strokes := 2 + rng.Intn(3)
	for i := 0; i < strokes; i++ {
		drawLine(mono, s.H, s.W,
			margin+rng.Intn(spanW), margin+rng.Intn(spanH),
			margin+rng.Intn(spanW), margin+rng.Intn(spanH),
			0.7+0.3*rng.Float64())
	}
	// 1-2 blobs inside the content region.
	blobs := 1 + rng.Intn(2)
	for i := 0; i < blobs; i++ {
		drawBlob(mono, s.H, s.W,
			margin+1+rng.Intn(maxInt(spanW-2, 1)), margin+1+rng.Intn(maxInt(spanH-2, 1)),
			1.2+1.8*rng.Float64(), 0.6+0.4*rng.Float64())
	}
	if s.C == 1 {
		return mono
	}
	// Per-channel hue weights in [0.2, 1.0].
	out := make([]float64, s.C*s.H*s.W)
	for c := 0; c < s.C; c++ {
		hue := 0.2 + 0.8*rng.Float64()
		for i, v := range mono {
			out[c*s.H*s.W+i] = hue * v
		}
	}
	// Low-frequency color texture so color alone does not decide the class.
	for c := 0; c < s.C; c++ {
		fx, fy := rng.Float64()*0.8, rng.Float64()*0.8
		ph := rng.Float64() * 2 * math.Pi
		amp := 0.15 + 0.15*rng.Float64()
		for y := 0; y < s.H; y++ {
			for x := 0; x < s.W; x++ {
				out[c*s.H*s.W+y*s.W+x] += amp * (1 + math.Sin(fx*float64(x)+fy*float64(y)+ph)) / 2
			}
		}
	}
	return out
}

// drawLine rasterizes a thick line segment onto a single-channel canvas.
func drawLine(canvas []float64, h, w, x0, y0, x1, y1 int, v float64) {
	steps := maxInt(absInt(x1-x0), absInt(y1-y0)) + 1
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		x := int(math.Round(float64(x0) + t*float64(x1-x0)))
		y := int(math.Round(float64(y0) + t*float64(y1-y0)))
		stamp(canvas, h, w, x, y, v)
		stamp(canvas, h, w, x+1, y, v*0.6)
		stamp(canvas, h, w, x, y+1, v*0.6)
	}
}

// drawBlob paints a soft Gaussian disc.
func drawBlob(canvas []float64, h, w, cx, cy int, r, v float64) {
	rad := int(math.Ceil(r * 2))
	for dy := -rad; dy <= rad; dy++ {
		for dx := -rad; dx <= rad; dx++ {
			x, y := cx+dx, cy+dy
			if x < 0 || x >= w || y < 0 || y >= h {
				continue
			}
			d2 := float64(dx*dx + dy*dy)
			canvas[y*w+x] += v * math.Exp(-d2/(2*r*r))
		}
	}
}

func stamp(canvas []float64, h, w, x, y int, v float64) {
	if x < 0 || x >= w || y < 0 || y >= h {
		return
	}
	if canvas[y*w+x] < v {
		canvas[y*w+x] = v
	}
}

// renderSample draws one noisy, shifted, brightness-jittered variant of a
// class prototype.
func renderSample(proto []float64, spec synthSpec, label int, rng *rand.Rand) Sample {
	s := spec.shape
	x := make([]float64, s.Elems())
	dx := rng.Intn(2*spec.shift+1) - spec.shift
	dy := rng.Intn(2*spec.shift+1) - spec.shift
	bright := spec.brightLo + (spec.brightHi-spec.brightLo)*rng.Float64()
	for c := 0; c < s.C; c++ {
		for y := 0; y < s.H; y++ {
			sy := y - dy
			for xx := 0; xx < s.W; xx++ {
				sx := xx - dx
				var v float64
				if sx >= 0 && sx < s.W && sy >= 0 && sy < s.H {
					v = proto[c*s.H*s.W+sy*s.W+sx]
				}
				v = bright*v + rng.NormFloat64()*spec.noise
				if spec.distort > 0 && rng.Float64() < spec.distort {
					v = 0
				}
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				x[c*s.H*s.W+y*s.W+xx] = v
			}
		}
	}
	return Sample{X: x, Label: label}
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
