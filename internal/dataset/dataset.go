// Package dataset provides the data substrate of the fedcleanse
// reproduction: procedurally generated image-classification datasets that
// stand in for MNIST, Fashion-MNIST and CIFAR-10 (the module is offline and
// carries no data files — see DESIGN.md §2 for why the substitution
// preserves the paper's behaviour), the non-IID K-label client partitioner,
// and the BadNets / DBA backdoor trigger machinery.
//
// Every stochastic function takes an explicit *rand.Rand so experiments are
// reproducible from a seed.
package dataset

import (
	"fmt"
	"math/rand"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Shape is the per-sample image geometry.
type Shape struct {
	C, H, W int
}

// Elems returns the number of scalars per sample.
func (s Shape) Elems() int { return s.C * s.H * s.W }

// Sample is one labeled image. X is a flat C×H×W buffer with values in
// [0, 1] (the paper's input normalization: bounding input ranges is part of
// the extreme-value defense).
type Sample struct {
	X     []float64
	Label int
}

// Clone returns a deep copy of the sample.
func (s Sample) Clone() Sample {
	return Sample{X: append([]float64(nil), s.X...), Label: s.Label}
}

// Dataset is an in-memory labeled image collection.
type Dataset struct {
	Shape   Shape
	Classes int
	Samples []Sample
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// ByLabel groups sample indices by label.
func (d *Dataset) ByLabel() [][]int {
	groups := make([][]int, d.Classes)
	for i, s := range d.Samples {
		groups[s.Label] = append(groups[s.Label], i)
	}
	return groups
}

// Subset returns a dataset view containing the given sample indices. The
// samples are shared (not copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Shape: d.Shape, Classes: d.Classes, Samples: make([]Sample, len(idx))}
	for i, j := range idx {
		out.Samples[i] = d.Samples[j]
	}
	return out
}

// Shuffle permutes the samples in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
}

// Batch assembles samples[lo:hi] into an NCHW input tensor and a label
// slice for training or evaluation.
func (d *Dataset) Batch(lo, hi int) (*tensor.Tensor, []int) {
	return d.BatchInto(lo, hi, nil, nil)
}

// BatchInto is Batch reusing the caller's buffers: x is reused when it has
// exactly the batch shape, labels when its capacity suffices. Either (or
// both) may be nil to allocate fresh. It returns the buffers actually
// filled; training loops thread them through successive calls so steady-
// state batch assembly allocates nothing.
func (d *Dataset) BatchInto(lo, hi int, x *tensor.Tensor, labels []int) (*tensor.Tensor, []int) {
	if lo < 0 || hi > len(d.Samples) || lo > hi {
		panic(fmt.Sprintf("dataset: Batch[%d:%d] out of range for %d samples", lo, hi, len(d.Samples)))
	}
	n := hi - lo
	el := d.Shape.Elems()
	x = tensor.EnsureShape(x, n, d.Shape.C, d.Shape.H, d.Shape.W)
	if cap(labels) < n {
		labels = make([]int, n)
	}
	labels = labels[:n]
	for i := 0; i < n; i++ {
		s := d.Samples[lo+i]
		copy(x.Data[i*el:(i+1)*el], s.X)
		labels[i] = s.Label
	}
	return x, labels
}

// Concat returns a new dataset holding the samples of all inputs, which
// must share shape and class count.
func Concat(parts ...*Dataset) *Dataset {
	if len(parts) == 0 {
		panic("dataset: Concat of nothing")
	}
	out := &Dataset{Shape: parts[0].Shape, Classes: parts[0].Classes}
	for _, p := range parts {
		if p.Shape != out.Shape || p.Classes != out.Classes {
			panic("dataset: Concat shape/class mismatch")
		}
		out.Samples = append(out.Samples, p.Samples...)
	}
	return out
}

// PartitionKLabel splits train across clients using the paper's non-IID
// scheme (§V "Client Data Distribution"): each client is assigned k labels
// uniformly at random and receives perClient samples drawn from those
// labels. Samples are drawn without replacement per label until a label
// pool is exhausted, after which drawing wraps around (the paper keeps
// per-client sample counts equal, so wrap-around is preferable to short
// shards). The returned datasets share sample storage with train.
func PartitionKLabel(train *Dataset, clients, k, perClient int, rng *rand.Rand) []*Dataset {
	return PartitionKLabelForced(train, clients, k, perClient, rng, -1, 0)
}

// PartitionKLabelForced is PartitionKLabel with one extra constraint: the
// first forcedClients shards are guaranteed to include forcedLabel among
// their k labels. The paper's threat model gives every attacker backdoor
// (victim-label) samples; forcing the victim label into attacker shards
// realizes that under non-IID partitioning. forcedLabel < 0 disables the
// constraint.
func PartitionKLabelForced(train *Dataset, clients, k, perClient int, rng *rand.Rand, forcedLabel, forcedClients int) []*Dataset {
	if k <= 0 || k > train.Classes {
		panic(fmt.Sprintf("dataset: PartitionKLabel k=%d with %d classes", k, train.Classes))
	}
	if clients <= 0 || perClient <= 0 {
		panic(fmt.Sprintf("dataset: PartitionKLabel clients=%d perClient=%d", clients, perClient))
	}
	byLabel := train.ByLabel()
	// cursor[l] walks label l's pool; each label pool is shuffled once.
	cursors := make([]int, train.Classes)
	pools := make([][]int, train.Classes)
	for l, idxs := range byLabel {
		pool := append([]int(nil), idxs...)
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		pools[l] = pool
	}
	if forcedLabel >= train.Classes {
		panic(fmt.Sprintf("dataset: forced label %d with %d classes", forcedLabel, train.Classes))
	}
	assignments := assignLabels(train.Classes, clients, k, rng, forcedLabel, forcedClients)
	out := make([]*Dataset, clients)
	for c := 0; c < clients; c++ {
		labels := assignments[c]
		idx := make([]int, 0, perClient)
		for i := 0; i < perClient; i++ {
			l := labels[i%k]
			pool := pools[l]
			if len(pool) == 0 {
				panic(fmt.Sprintf("dataset: label %d has no samples", l))
			}
			idx = append(idx, pool[cursors[l]%len(pool)])
			cursors[l]++
		}
		out[c] = train.Subset(idx)
		out[c].Shuffle(rng)
	}
	return out
}

// assignLabels deals k distinct labels to each of clients shards with
// balanced global coverage: every label lands in roughly clients·k/classes
// shards (a random label draw would leave some labels almost or entirely
// uncovered, capping what federated averaging can learn). Clients below
// forcedClients are guaranteed to receive forcedLabel. Assignment order
// and ties are randomized by rng.
func assignLabels(classes, clients, k int, rng *rand.Rand, forcedLabel, forcedClients int) [][]int {
	// quota[l] counts how many more shards label l should appear in.
	quota := make([]int, classes)
	total := clients * k
	for l := 0; l < classes; l++ {
		quota[l] = total / classes
	}
	for _, l := range rng.Perm(classes)[:total%classes] {
		quota[l]++
	}
	out := make([][]int, clients)
	for c := 0; c < clients; c++ {
		labels := make([]int, 0, k)
		taken := make([]bool, classes)
		if forcedLabel >= 0 && c < forcedClients {
			labels = append(labels, forcedLabel)
			taken[forcedLabel] = true
			if quota[forcedLabel] > 0 {
				quota[forcedLabel]--
			}
		}
		for len(labels) < k {
			// Pick an untaken label with the largest remaining quota,
			// breaking ties uniformly at random.
			best, count := -1, 0
			for l := 0; l < classes; l++ {
				if taken[l] {
					continue
				}
				switch {
				case best == -1 || quota[l] > quota[best]:
					best, count = l, 1
				case quota[l] == quota[best]:
					count++
					if rng.Intn(count) == 0 {
						best = l
					}
				}
			}
			labels = append(labels, best)
			taken[best] = true
			quota[best]--
		}
		out[c] = labels
	}
	return out
}
