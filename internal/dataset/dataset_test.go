package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenSynthMNISTDeterministic(t *testing.T) {
	cfg := GenConfig{TrainPerClass: 5, TestPerClass: 3, Seed: 42}
	tr1, te1 := GenSynthMNIST(cfg)
	tr2, te2 := GenSynthMNIST(cfg)
	if tr1.Len() != 50 || te1.Len() != 30 {
		t.Fatalf("sizes %d/%d, want 50/30", tr1.Len(), te1.Len())
	}
	for i := range tr1.Samples {
		if tr1.Samples[i].Label != tr2.Samples[i].Label {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range tr1.Samples[i].X {
			if tr1.Samples[i].X[j] != tr2.Samples[i].X[j] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
	if te1.Len() != te2.Len() {
		t.Fatal("test split size differs")
	}
}

func TestGenSynthSeedsDiffer(t *testing.T) {
	a, _ := GenSynthMNIST(GenConfig{TrainPerClass: 2, TestPerClass: 1, Seed: 1})
	b, _ := GenSynthMNIST(GenConfig{TrainPerClass: 2, TestPerClass: 1, Seed: 2})
	same := true
	for i := range a.Samples {
		for j := range a.Samples[i].X {
			if a.Samples[i].X[j] != b.Samples[i].X[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSamplesInUnitRange(t *testing.T) {
	for name, gen := range map[string]func(GenConfig) (*Dataset, *Dataset){
		"mnist": GenSynthMNIST, "fashion": GenSynthFashion, "cifar": GenSynthCIFAR,
	} {
		tr, te := gen(GenConfig{TrainPerClass: 3, TestPerClass: 2, Seed: 7})
		for _, ds := range []*Dataset{tr, te} {
			for _, s := range ds.Samples {
				if len(s.X) != ds.Shape.Elems() {
					t.Fatalf("%s: sample length %d, want %d", name, len(s.X), ds.Shape.Elems())
				}
				if s.Label < 0 || s.Label >= ds.Classes {
					t.Fatalf("%s: label %d out of range", name, s.Label)
				}
				for _, v := range s.X {
					if v < 0 || v > 1 {
						t.Fatalf("%s: pixel %g outside [0,1]", name, v)
					}
				}
			}
		}
	}
}

func TestCIFARShape(t *testing.T) {
	tr, _ := GenSynthCIFAR(GenConfig{TrainPerClass: 1, TestPerClass: 1, Seed: 3})
	if tr.Shape.C != 3 {
		t.Fatalf("CIFAR stand-in has %d channels, want 3", tr.Shape.C)
	}
}

func TestByLabelAndSubset(t *testing.T) {
	tr, _ := GenSynthMNIST(GenConfig{TrainPerClass: 4, TestPerClass: 1, Seed: 5})
	groups := tr.ByLabel()
	if len(groups) != 10 {
		t.Fatalf("%d label groups, want 10", len(groups))
	}
	total := 0
	for l, g := range groups {
		if len(g) != 4 {
			t.Fatalf("label %d has %d samples, want 4", l, len(g))
		}
		total += len(g)
		sub := tr.Subset(g)
		for _, s := range sub.Samples {
			if s.Label != l {
				t.Fatalf("subset of label %d contains label %d", l, s.Label)
			}
		}
	}
	if total != tr.Len() {
		t.Fatal("ByLabel lost samples")
	}
}

func TestBatch(t *testing.T) {
	tr, _ := GenSynthMNIST(GenConfig{TrainPerClass: 2, TestPerClass: 1, Seed: 6})
	x, labels := tr.Batch(0, 5)
	if x.Dim(0) != 5 || x.Dim(1) != 1 || x.Dim(2) != 16 || x.Dim(3) != 16 {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if len(labels) != 5 {
		t.Fatalf("%d labels, want 5", len(labels))
	}
	for i := 0; i < 5; i++ {
		if labels[i] != tr.Samples[i].Label {
			t.Fatal("batch labels out of order")
		}
		if x.At(i, 0, 0, 0) != tr.Samples[i].X[0] {
			t.Fatal("batch pixels out of order")
		}
	}
}

func TestPartitionKLabel(t *testing.T) {
	tr, _ := GenSynthMNIST(GenConfig{TrainPerClass: 50, TestPerClass: 1, Seed: 8})
	rng := rand.New(rand.NewSource(9))
	parts := PartitionKLabel(tr, 10, 3, 40, rng)
	if len(parts) != 10 {
		t.Fatalf("%d clients, want 10", len(parts))
	}
	for ci, p := range parts {
		if p.Len() != 40 {
			t.Fatalf("client %d has %d samples, want 40", ci, p.Len())
		}
		seen := map[int]bool{}
		for _, s := range p.Samples {
			seen[s.Label] = true
		}
		if len(seen) != 3 {
			t.Fatalf("client %d sees %d labels, want exactly 3", ci, len(seen))
		}
	}
}

func TestPartitionKLabelFullIID(t *testing.T) {
	tr, _ := GenSynthMNIST(GenConfig{TrainPerClass: 30, TestPerClass: 1, Seed: 10})
	rng := rand.New(rand.NewSource(11))
	parts := PartitionKLabel(tr, 5, 10, 50, rng)
	for ci, p := range parts {
		seen := map[int]bool{}
		for _, s := range p.Samples {
			seen[s.Label] = true
		}
		if len(seen) != 10 {
			t.Fatalf("client %d sees %d labels under K=10, want 10", ci, len(seen))
		}
	}
}

func TestPartitionPanicsOnBadArgs(t *testing.T) {
	tr, _ := GenSynthMNIST(GenConfig{TrainPerClass: 2, TestPerClass: 1, Seed: 1})
	rng := rand.New(rand.NewSource(1))
	for _, f := range []func(){
		func() { PartitionKLabel(tr, 0, 3, 10, rng) },
		func() { PartitionKLabel(tr, 5, 0, 10, rng) },
		func() { PartitionKLabel(tr, 5, 11, 10, rng) },
		func() { PartitionKLabel(tr, 5, 3, 0, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad partition args accepted")
				}
			}()
			f()
		}()
	}
}

func TestTriggerApply(t *testing.T) {
	s := Shape{C: 1, H: 16, W: 16}
	x := make([]float64, s.Elems())
	tr := PixelPattern(3, s)
	tr.Apply(x, s)
	set := 0
	for _, v := range x {
		if v == 1 {
			set++
		}
	}
	if set != 3 {
		t.Fatalf("%d pixels set, want 3", set)
	}
}

func TestTriggerApplyMultiChannel(t *testing.T) {
	s := Shape{C: 3, H: 16, W: 16}
	x := make([]float64, s.Elems())
	PixelPattern(1, s).Apply(x, s)
	set := 0
	for _, v := range x {
		if v == 1 {
			set++
		}
	}
	if set != 3 { // one pixel on each of 3 channels
		t.Fatalf("%d values set, want 3", set)
	}
}

func TestTriggerOutOfBoundsPanics(t *testing.T) {
	s := Shape{C: 1, H: 4, W: 4}
	tr := Trigger{Name: "bad", Pixels: []Pixel{{X: 9, Y: 0, C: 0, Value: 1}}}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds trigger accepted")
		}
	}()
	tr.Apply(make([]float64, s.Elems()), s)
}

func TestPixelPatternSizes(t *testing.T) {
	s := Shape{C: 1, H: 16, W: 16}
	for _, n := range []int{1, 3, 5, 7, 9} {
		tr := PixelPattern(n, s)
		if len(tr.Pixels) != n {
			t.Fatalf("PixelPattern(%d) has %d pixels", n, len(tr.Pixels))
		}
	}
}

// Property: decomposition partitions the pixels — every pixel appears in
// exactly one part, and the union equals the original set.
func TestDecomposePartitionProperty(t *testing.T) {
	s := Shape{C: 1, H: 16, W: 16}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(9)
		parts := 1 + r.Intn(4)
		tr := PixelPattern(n, s)
		dec := tr.Decompose(parts)
		count := 0
		seen := map[[3]int]bool{}
		for _, d := range dec {
			for _, p := range d.Pixels {
				key := [3]int{p.X, p.Y, p.C}
				if seen[key] {
					return false // duplicated pixel
				}
				seen[key] = true
				count++
			}
		}
		return count == len(tr.Pixels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDBADecomposeFourNonEmptyParts(t *testing.T) {
	s := Shape{C: 3, H: 16, W: 16}
	global := DBAGlobalPattern(s)
	parts := global.Decompose(4)
	if len(parts) != 4 {
		t.Fatalf("%d parts, want 4", len(parts))
	}
	for i, p := range parts {
		if len(p.Pixels) == 0 {
			t.Fatalf("part %d empty", i)
		}
	}
}

func TestPoisonTrainSet(t *testing.T) {
	tr, _ := GenSynthMNIST(GenConfig{TrainPerClass: 5, TestPerClass: 1, Seed: 12})
	cfg := PoisonConfig{
		Trigger:     PixelPattern(3, tr.Shape),
		VictimLabel: 9,
		TargetLabel: 1,
	}
	poisoned := PoisonTrainSet(tr, cfg)
	// 50 clean + 5 triggered copies of label 9.
	if poisoned.Len() != 55 {
		t.Fatalf("poisoned size %d, want 55", poisoned.Len())
	}
	relabeled := 0
	for _, s := range poisoned.Samples[50:] {
		if s.Label == cfg.TargetLabel {
			relabeled++
		}
	}
	if relabeled != 5 {
		t.Fatalf("%d poisoned copies relabeled, want 5", relabeled)
	}
	// The original samples must be untouched (clone semantics).
	for _, s := range tr.Samples {
		if s.Label == 9 {
			corner := s.X[len(s.X)-1-16-1] // bottom-right block pixel
			_ = corner                     // presence check below via trigger positions
		}
	}
}

func TestPoisonTestSetOnlyVictims(t *testing.T) {
	_, te := GenSynthMNIST(GenConfig{TrainPerClass: 1, TestPerClass: 6, Seed: 13})
	cfg := PoisonConfig{
		Trigger:     PixelPattern(1, te.Shape),
		VictimLabel: 4,
		TargetLabel: 7,
	}
	atk := PoisonTestSet(te, cfg)
	if atk.Len() != 6 {
		t.Fatalf("attack set size %d, want 6", atk.Len())
	}
	for _, s := range atk.Samples {
		if s.Label != 7 {
			t.Fatalf("attack sample labeled %d, want 7", s.Label)
		}
	}
}

func TestPoisonDoesNotMutateOriginal(t *testing.T) {
	_, te := GenSynthMNIST(GenConfig{TrainPerClass: 1, TestPerClass: 2, Seed: 14})
	orig := make([][]float64, len(te.Samples))
	for i, s := range te.Samples {
		orig[i] = append([]float64(nil), s.X...)
	}
	cfg := PoisonConfig{Trigger: PixelPattern(9, te.Shape), VictimLabel: 0, TargetLabel: 1}
	PoisonTestSet(te, cfg)
	for i, s := range te.Samples {
		for j := range s.X {
			if s.X[j] != orig[i][j] {
				t.Fatal("PoisonTestSet mutated the source dataset")
			}
		}
	}
}

func TestRandomTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	targets := RandomTargets(10, 20, rng)
	if len(targets) != 20 {
		t.Fatalf("%d targets, want 20", len(targets))
	}
	for _, tgt := range targets {
		if tgt.VictimLabel == tgt.TargetLabel {
			t.Fatal("victim == target")
		}
	}
}

func TestConcat(t *testing.T) {
	a, _ := GenSynthMNIST(GenConfig{TrainPerClass: 2, TestPerClass: 1, Seed: 16})
	b, _ := GenSynthMNIST(GenConfig{TrainPerClass: 3, TestPerClass: 1, Seed: 17})
	c := Concat(a, b)
	if c.Len() != a.Len()+b.Len() {
		t.Fatalf("concat size %d", c.Len())
	}
}

func TestGenByName(t *testing.T) {
	for _, name := range []string{"mnist", "fashion", "cifar"} {
		if _, ok := GenByName(name); !ok {
			t.Fatalf("GenByName(%q) missing", name)
		}
	}
	if _, ok := GenByName("imagenet"); ok {
		t.Fatal("unknown dataset accepted")
	}
}
