package dataset

import (
	"math"
	"testing"
)

// nearestPrototypeAccuracy classifies test samples by the nearest per-class
// mean of the training split — a crude classifier whose accuracy lower-
// bounds the task's learnability and upper-bounds nothing, making it a
// good generator-quality smoke signal.
func nearestPrototypeAccuracy(train, test *Dataset) float64 {
	el := train.Shape.Elems()
	means := make([][]float64, train.Classes)
	counts := make([]int, train.Classes)
	for c := range means {
		means[c] = make([]float64, el)
	}
	for _, s := range train.Samples {
		for i, v := range s.X {
			means[s.Label][i] += v
		}
		counts[s.Label]++
	}
	for c := range means {
		if counts[c] == 0 {
			continue
		}
		inv := 1.0 / float64(counts[c])
		for i := range means[c] {
			means[c][i] *= inv
		}
	}
	correct := 0
	for _, s := range test.Samples {
		best, bestD := -1, math.Inf(1)
		for c := range means {
			d := 0.0
			for i, v := range s.X {
				diff := v - means[c][i]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(test.Samples))
}

// TestGeneratorsSeparability pins the difficulty ordering of the three
// synthetic families: all are far above chance for a trivial classifier,
// and MNIST ≥ Fashion ≥ CIFAR in nearest-prototype accuracy, mirroring
// the real datasets' difficulty ordering the paper relies on.
func TestGeneratorsSeparability(t *testing.T) {
	cfg := GenConfig{TrainPerClass: 60, TestPerClass: 30, Seed: 99}
	accOf := func(gen func(GenConfig) (*Dataset, *Dataset)) float64 {
		tr, te := gen(cfg)
		return nearestPrototypeAccuracy(tr, te)
	}
	mnist := accOf(GenSynthMNIST)
	fashion := accOf(GenSynthFashion)
	cifar := accOf(GenSynthCIFAR)
	t.Logf("nearest-prototype accuracy: mnist=%.2f fashion=%.2f cifar=%.2f", mnist, fashion, cifar)
	if mnist < 0.5 || fashion < 0.35 || cifar < 0.25 {
		t.Fatalf("generator output not learnable: %.2f/%.2f/%.2f", mnist, fashion, cifar)
	}
	if mnist < fashion-0.05 {
		t.Fatalf("difficulty ordering violated: mnist %.2f < fashion %.2f", mnist, fashion)
	}
	if fashion < cifar-0.05 {
		t.Fatalf("difficulty ordering violated: fashion %.2f < cifar %.2f", fashion, cifar)
	}
}

// TestTriggerIsOutOfDistribution verifies the trigger stamps values that
// clean data rarely attains at those positions — the property that lets
// backdoor neurons be distinguishable at all.
func TestTriggerIsOutOfDistribution(t *testing.T) {
	tr, _ := GenSynthMNIST(GenConfig{TrainPerClass: 40, TestPerClass: 1, Seed: 7})
	trig := PixelPattern(3, tr.Shape)
	for _, px := range trig.Pixels {
		idx := px.C*tr.Shape.H*tr.Shape.W + px.Y*tr.Shape.W + px.X
		saturated := 0
		for _, s := range tr.Samples {
			if s.X[idx] >= 0.99 {
				saturated++
			}
		}
		frac := float64(saturated) / float64(tr.Len())
		if frac > 0.3 {
			t.Fatalf("trigger position (%d,%d) saturated in %.0f%% of clean samples — trigger not distinctive",
				px.X, px.Y, 100*frac)
		}
	}
}
