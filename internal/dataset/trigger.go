package dataset

import (
	"fmt"
	"math/rand"
)

// Pixel is one element of a backdoor trigger: set channel C of position
// (X, Y) to Value.
type Pixel struct {
	X, Y, C int
	Value   float64
}

// Trigger is a BadNets-style pixel-pattern backdoor (paper §III-B, Fig. 1):
// a fixed set of pixels stamped onto an image.
type Trigger struct {
	Name   string
	Pixels []Pixel
}

// Apply stamps the trigger onto x (a flat C×H×W buffer) in place.
func (t Trigger) Apply(x []float64, s Shape) {
	for _, p := range t.Pixels {
		if p.X < 0 || p.X >= s.W || p.Y < 0 || p.Y >= s.H || p.C < 0 || p.C >= s.C {
			panic(fmt.Sprintf("dataset: trigger %s pixel (%d,%d,c%d) outside %dx%dx%d image",
				t.Name, p.X, p.Y, p.C, s.C, s.H, s.W))
		}
		x[p.C*s.H*s.W+p.Y*s.W+p.X] = p.Value
	}
}

// Decompose splits the trigger into parts sub-triggers covering disjoint
// pixel subsets, the DBA construction (paper §V-A, Fig. 4): each attacker
// trains with one local sub-pattern while evaluation uses the full global
// pattern. Pixels are distributed round-robin, so every part is non-empty
// when len(Pixels) >= parts.
func (t Trigger) Decompose(parts int) []Trigger {
	if parts <= 0 {
		panic(fmt.Sprintf("dataset: Decompose into %d parts", parts))
	}
	out := make([]Trigger, parts)
	for i := range out {
		out[i].Name = fmt.Sprintf("%s/part%d", t.Name, i)
	}
	for i, p := range t.Pixels {
		k := i % parts
		out[k].Pixels = append(out[k].Pixels, p)
	}
	return out
}

// PixelPattern returns the paper's n-pixel corner pattern (n ∈ {1,3,5,7,9})
// in the bottom-right corner of the image, stamped at full brightness on
// every channel. Other odd n are also accepted; the pattern fills a 3×3
// corner block in a fixed order.
func PixelPattern(n int, s Shape) Trigger {
	if n <= 0 || n > 9 {
		panic(fmt.Sprintf("dataset: PixelPattern n=%d, want 1..9", n))
	}
	// Offsets within the 3×3 bottom-right block, ordered so small patterns
	// are spatially spread (corner, opposite corner, cross arms, ...).
	order := [][2]int{
		{2, 2}, {0, 0}, {2, 0}, {0, 2}, {1, 1},
		{1, 0}, {2, 1}, {0, 1}, {1, 2},
	}
	baseX, baseY := s.W-4, s.H-4
	tr := Trigger{Name: fmt.Sprintf("pixel%d", n)}
	for i := 0; i < n; i++ {
		dx, dy := order[i][0], order[i][1]
		for c := 0; c < s.C; c++ {
			tr.Pixels = append(tr.Pixels, Pixel{X: baseX + dx, Y: baseY + dy, C: c, Value: 1})
		}
	}
	return tr
}

// DBAGlobalPattern returns the global trigger used by the Distributed
// Backdoor Attack experiments: four short bars near the image corners (one
// per attacker after Decompose(4)).
func DBAGlobalPattern(s Shape) Trigger {
	tr := Trigger{Name: "dba-global"}
	bars := [][2]int{{1, 1}, {s.W - 4, 1}, {1, s.H - 3}, {s.W - 4, s.H - 3}}
	for _, b := range bars {
		for i := 0; i < 3; i++ {
			for c := 0; c < s.C; c++ {
				tr.Pixels = append(tr.Pixels, Pixel{X: b[0] + i, Y: b[1], C: c, Value: 1})
			}
		}
	}
	return tr
}

// PoisonConfig describes a backdoor data-poisoning task: images of the
// victim label receive the trigger and are relabeled to the target label.
type PoisonConfig struct {
	Trigger Trigger
	// VictimLabel is the class whose triggered images should be
	// misclassified (the paper's VL).
	VictimLabel int
	// TargetLabel is the label the attacker wants predicted (the paper's AL).
	TargetLabel int
	// Copies is the number of triggered copies added per victim sample in
	// PoisonTrainSet; 0 means 1. Oversampling strengthens the backdoor
	// gradient against the conflicting clean supervision.
	Copies int
}

// PoisonTrainSet builds an attacker's local training set: every clean
// sample is kept, and every sample of the victim label additionally
// contributes a triggered copy relabeled to the target (paper §III-B: "the
// attacker would train the local model with both original images and the
// backdoored version of those images").
func PoisonTrainSet(local *Dataset, cfg PoisonConfig) *Dataset {
	copies := cfg.Copies
	if copies <= 0 {
		copies = 1
	}
	out := &Dataset{Shape: local.Shape, Classes: local.Classes}
	out.Samples = append(out.Samples, local.Samples...)
	for _, s := range local.Samples {
		if s.Label != cfg.VictimLabel {
			continue
		}
		for c := 0; c < copies; c++ {
			p := s.Clone()
			cfg.Trigger.Apply(p.X, local.Shape)
			p.Label = cfg.TargetLabel
			out.Samples = append(out.Samples, p)
		}
	}
	return out
}

// PoisonTestSet builds the backdoor evaluation set: triggered copies of
// every victim-label sample, labeled with the target label, so plain test
// accuracy on the returned set equals the attack success rate.
func PoisonTestSet(test *Dataset, cfg PoisonConfig) *Dataset {
	out := &Dataset{Shape: test.Shape, Classes: test.Classes}
	for _, s := range test.Samples {
		if s.Label != cfg.VictimLabel {
			continue
		}
		p := s.Clone()
		cfg.Trigger.Apply(p.X, test.Shape)
		p.Label = cfg.TargetLabel
		out.Samples = append(out.Samples, p)
	}
	return out
}

// RandomTargets returns n distinct (victim, target) label pairs with
// victim != target, useful for sweep experiments.
func RandomTargets(classes, n int, rng *rand.Rand) []PoisonConfig {
	out := make([]PoisonConfig, 0, n)
	for len(out) < n {
		v, t := rng.Intn(classes), rng.Intn(classes)
		if v == t {
			continue
		}
		out = append(out, PoisonConfig{VictimLabel: v, TargetLabel: t})
	}
	return out
}
