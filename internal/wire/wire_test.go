package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"strings"
	"testing"
)

func sample() []byte {
	return NewEncoder(KindCheckpoint).
		Section(1, []byte("alpha")).
		Section(2, nil).
		Section(7, []byte{0xde, 0xad}).
		Bytes()
}

func TestRoundtrip(t *testing.T) {
	data := sample()
	kind, secs, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindCheckpoint {
		t.Fatalf("kind %d, want %d", kind, KindCheckpoint)
	}
	want := []Section{{1, []byte("alpha")}, {2, []byte{}}, {7, []byte{0xde, 0xad}}}
	if len(secs) != len(want) {
		t.Fatalf("%d sections, want %d", len(secs), len(want))
	}
	for i, s := range secs {
		if s.Type != want[i].Type || !bytes.Equal(s.Payload, want[i].Payload) {
			t.Fatalf("section %d = %+v, want %+v", i, s, want[i])
		}
	}
}

func TestDecodeRejections(t *testing.T) {
	good := sample()
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", good[:8], ErrTruncated},
		{"bad magic", append([]byte("GOBX"), good[4:]...), ErrMagic},
		{"future version", func() []byte {
			d := append([]byte(nil), good...)
			binary.LittleEndian.PutUint16(d[4:6], Version+1)
			return d
		}(), ErrVersion},
		{"version zero", func() []byte {
			d := append([]byte(nil), good...)
			binary.LittleEndian.PutUint16(d[4:6], 0)
			return d
		}(), ErrVersion},
		{"flipped byte", func() []byte {
			d := append([]byte(nil), good...)
			d[12] ^= 0x40
			return d
		}(), ErrChecksum},
		{"truncated section", good[:len(good)-6], ErrChecksum},
	}
	for _, tc := range cases {
		if _, _, err := Decode(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestDecodeOversizedSectionNoAlloc: a forged section length larger than
// the remaining bytes errors before any allocation proportional to it.
func TestDecodeOversizedSection(t *testing.T) {
	d := append([]byte(nil), sample()...)
	// First section header starts at offset 10; its length field at 12.
	binary.LittleEndian.PutUint32(d[12:16], math.MaxUint32)
	// Re-seal the CRC so the length check, not the checksum, fires.
	reseal(d)
	if _, _, err := Decode(d); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err %v, want %v", err, ErrTruncated)
	}
}

// reseal recomputes a tampered envelope's CRC in place.
func reseal(d []byte) {
	binary.LittleEndian.PutUint32(d[len(d)-4:], crc32.ChecksumIEEE(d[:len(d)-4]))
}

func TestTrailingBytesRejected(t *testing.T) {
	good := sample()
	// Claim one section fewer than encoded: the second section's bytes
	// become slack before the CRC.
	d := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(d[8:10], 2)
	reseal(d)
	if _, _, err := Decode(d); !errors.Is(err, ErrTrailing) {
		t.Fatalf("err %v, want %v", err, ErrTrailing)
	}
}

func TestDecodeKind(t *testing.T) {
	if _, err := DecodeKind(sample(), KindModel); err == nil ||
		!strings.Contains(err.Error(), "kind") {
		t.Fatalf("kind mismatch not rejected: %v", err)
	}
	if _, err := DecodeKind(sample(), KindCheckpoint); err != nil {
		t.Fatal(err)
	}
}

func TestSniff(t *testing.T) {
	cases := []struct {
		p    []byte
		want Format
	}{
		{nil, FormatUnknown},
		{sample(), FormatVersioned},
		{[]byte{0x01, 0x00}, FormatReportTag},
		{[]byte{0x04}, FormatReportTag},
		{[]byte{0x2a, 0xff}, FormatGob},
		{[]byte{0x7f}, FormatGob},
	}
	for i, tc := range cases {
		if got := Sniff(tc.p); got != tc.want {
			t.Errorf("case %d: Sniff = %v, want %v", i, got, tc.want)
		}
	}
}

func TestReadPayloadBudget(t *testing.T) {
	data := sample()
	got, err := ReadPayload(bytes.NewReader(data), int64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("ReadPayload at exact budget: %v", err)
	}
	if _, err := ReadPayload(bytes.NewReader(data), int64(len(data))-1); err == nil {
		t.Fatal("over-budget payload accepted")
	}
}

func TestScalarHelpers(t *testing.T) {
	f := []float64{0, -1.5, math.Inf(1), math.Copysign(0, -1), math.NaN()}
	fp := AppendFloat64s(nil, f)
	got, err := Float64s(fp, len(f))
	if err != nil {
		t.Fatal(err)
	}
	for i := range f {
		if math.Float64bits(got[i]) != math.Float64bits(f[i]) {
			t.Fatalf("float %d not bit-exact: %x vs %x", i, got[i], f[i])
		}
	}
	if _, err := Float64s(fp[:len(fp)-1], len(f)); err == nil {
		t.Fatal("short float payload accepted")
	}

	ints := []int{0, -5, 1 << 20, math.MaxInt32, math.MinInt32}
	ip := AppendInts(nil, ints)
	gotI, rest, err := ReadInts(append(ip, 0x99))
	if err != nil || len(rest) != 1 {
		t.Fatalf("ReadInts: %v (rest %d)", err, len(rest))
	}
	for i := range ints {
		if gotI[i] != ints[i] {
			t.Fatalf("int %d = %d, want %d", i, gotI[i], ints[i])
		}
	}
	if _, _, err := ReadInts([]byte{0xff, 0xff, 0xff, 0xff, 0x01}); err == nil {
		t.Fatal("oversized int count accepted")
	}

	bools := []bool{true, false, true, true, false, false, true, false, true}
	bp := AppendBools(nil, bools)
	gotB, rest, err := ReadBools(bp)
	if err != nil || len(rest) != 0 {
		t.Fatalf("ReadBools: %v", err)
	}
	for i := range bools {
		if gotB[i] != bools[i] {
			t.Fatalf("bool %d mismatch", i)
		}
	}
	bp[len(bp)-1] |= 0x80 // pad bit past element 8
	if _, _, err := ReadBools(bp); err == nil {
		t.Fatal("nonzero pad bits accepted")
	}
}
