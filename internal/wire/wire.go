// Package wire defines the repository's versioned, self-describing
// serialization envelope (DESIGN.md §15): a fixed magic, a format version,
// a payload kind and a sequence of typed sections over raw little-endian
// scalar payloads, closed by a CRC32 of everything preceding it.
//
//	offset 0  magic   4 bytes  0xFC 'F' 'C' 'W'
//	       4  version uint16 LE (currently 1; larger values are rejected)
//	       6  kind    uint16 LE (payload kind, see Kind*)
//	       8  nsect   uint16 LE (number of sections)
//	      10  sections, each: type uint16 LE | length uint32 LE | payload
//	     end  crc32   uint32 LE, IEEE, over every preceding byte
//
// The envelope exists so models, update deltas and round-state checkpoints
// survive binary upgrades: a reader skips section types it does not know
// (forward compatibility within a version) and refuses versions from the
// future (a version bump means the section semantics changed). The CRC
// turns a torn file — a crash mid-write on a filesystem without atomic
// rename — into a clean decode error instead of silently corrupt state.
//
// Interoperability with the two legacy encodings is by first-byte
// sniffing, the same trick the compact report codecs use (transport
// codec.go): a gob stream opens with the byte length of its first message
// — a type descriptor, always tens of bytes — so its first byte is a
// small positive value well below 0x80; gob only emits a leading 0xFC for
// a first message of 2^24..2^32-1 bytes, which a type descriptor never
// is. The compact report tags occupy 0x01–0x04. Magic byte 0xFC therefore
// collides with neither, and Sniff classifies any payload from its first
// byte alone.
//
// Decoding never panics and never allocates beyond the input: Decode
// slices sections out of the caller's buffer, and ReadPayload caps an
// io.Reader at an explicit budget through io.LimitReader before any
// parsing happens, so a hostile length field cannot balloon memory.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the current envelope version. Decoders accept payloads at or
// below it and reject anything newer.
const Version = 1

// Magic opens every versioned payload.
var Magic = [4]byte{0xFC, 'F', 'C', 'W'}

// headerLen is magic + version + kind + nsect; minLen adds the CRC.
const (
	headerLen = 10
	crcLen    = 4
	minLen    = headerLen + crcLen
	secHdrLen = 6 // type uint16 + length uint32
)

// Payload kinds. New kinds append; numbers are wire-stable.
const (
	// KindModel is a self-contained model snapshot (builder + geometry +
	// parameter/mask state; internal/nn).
	KindModel uint16 = 1
	// KindCheckpoint is a federated round-state checkpoint (internal/fl).
	KindCheckpoint uint16 = 2
	// KindUpdate is one client's update delta (internal/transport).
	KindUpdate uint16 = 3
	// KindModelState is a bare parameter/mask payload applied onto an
	// existing architecture (defense-phase snapshots; internal/nn).
	KindModelState uint16 = 4
)

// Format classifies a payload by its first byte.
type Format int

const (
	// FormatUnknown is an empty payload.
	FormatUnknown Format = iota
	// FormatVersioned is this package's envelope.
	FormatVersioned
	// FormatReportTag is a compact tagged report codec (transport
	// codec.go, tags 0x01–0x04).
	FormatReportTag
	// FormatGob is a legacy gob stream (anything else).
	FormatGob
)

// Sniff classifies a payload from its first byte; see the package comment
// for why the three families cannot collide.
func Sniff(p []byte) Format {
	if len(p) == 0 {
		return FormatUnknown
	}
	switch {
	case p[0] == Magic[0]:
		return FormatVersioned
	case p[0] >= 0x01 && p[0] <= 0x04:
		return FormatReportTag
	default:
		return FormatGob
	}
}

// Section is one typed payload slice; Payload aliases the decoded buffer.
type Section struct {
	Type    uint16
	Payload []byte
}

// Sentinel error families, matchable with errors.Is.
var (
	// ErrMagic marks a payload that is not a versioned envelope at all.
	ErrMagic = errors.New("wire: bad magic")
	// ErrVersion marks an envelope from a future format version.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrTruncated marks an envelope shorter than its own headers claim.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrChecksum marks a CRC mismatch — a torn or corrupted payload.
	ErrChecksum = errors.New("wire: checksum mismatch")
	// ErrTrailing marks bytes between the last section and the CRC; the
	// encoding is canonical, so slack is corruption.
	ErrTrailing = errors.New("wire: trailing bytes")
)

// Encoder accumulates sections for one payload.
type Encoder struct {
	kind uint16
	secs []Section
}

// NewEncoder opens an envelope of the given kind.
func NewEncoder(kind uint16) *Encoder {
	return &Encoder{kind: kind}
}

// Section appends one typed section. The payload is retained until Bytes.
func (e *Encoder) Section(typ uint16, payload []byte) *Encoder {
	if len(payload) > math.MaxUint32 {
		panic(fmt.Sprintf("wire: section %d payload %d bytes exceeds uint32", typ, len(payload)))
	}
	e.secs = append(e.secs, Section{Type: typ, Payload: payload})
	return e
}

// Bytes emits the envelope: header, sections in append order, CRC.
func (e *Encoder) Bytes() []byte {
	if len(e.secs) > math.MaxUint16 {
		panic(fmt.Sprintf("wire: %d sections exceed uint16", len(e.secs)))
	}
	n := minLen
	for _, s := range e.secs {
		n += secHdrLen + len(s.Payload)
	}
	out := make([]byte, 0, n)
	out = append(out, Magic[:]...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint16(out, e.kind)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(e.secs)))
	for _, s := range e.secs {
		out = binary.LittleEndian.AppendUint16(out, s.Type)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Payload)))
		out = append(out, s.Payload...)
	}
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// Decode parses a versioned envelope, verifying magic, version, section
// bounds and the CRC. Sections alias data — the caller keeps data alive
// for as long as it uses them. Decode errors, never panics, on any
// malformed input, and performs no allocation proportional to claimed
// (rather than actual) lengths.
func Decode(data []byte) (kind uint16, secs []Section, err error) {
	if len(data) < minLen {
		return 0, nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrTruncated, len(data), minLen)
	}
	if data[0] != Magic[0] || data[1] != Magic[1] || data[2] != Magic[2] || data[3] != Magic[3] {
		return 0, nil, fmt.Errorf("%w: % x", ErrMagic, data[:4])
	}
	v := binary.LittleEndian.Uint16(data[4:6])
	if v == 0 || v > Version {
		return 0, nil, fmt.Errorf("%w: %d (this binary reads up to %d)", ErrVersion, v, Version)
	}
	body, tail := data[:len(data)-crcLen], data[len(data)-crcLen:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return 0, nil, fmt.Errorf("%w: computed %08x, stored %08x", ErrChecksum, got, want)
	}
	kind = binary.LittleEndian.Uint16(data[6:8])
	nsect := int(binary.LittleEndian.Uint16(data[8:10]))
	rest := body[headerLen:]
	if nsect > 0 {
		secs = make([]Section, 0, min(nsect, len(rest)/secHdrLen+1))
	}
	for i := 0; i < nsect; i++ {
		if len(rest) < secHdrLen {
			return 0, nil, fmt.Errorf("%w: section %d header", ErrTruncated, i)
		}
		typ := binary.LittleEndian.Uint16(rest[0:2])
		ln := binary.LittleEndian.Uint32(rest[2:6])
		rest = rest[secHdrLen:]
		if uint64(ln) > uint64(len(rest)) {
			return 0, nil, fmt.Errorf("%w: section %d claims %d bytes, %d remain", ErrTruncated, i, ln, len(rest))
		}
		secs = append(secs, Section{Type: typ, Payload: rest[:ln:ln]})
		rest = rest[ln:]
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: %d bytes after last section", ErrTrailing, len(rest))
	}
	return kind, secs, nil
}

// DecodeKind is Decode constrained to one expected payload kind.
func DecodeKind(data []byte, want uint16) ([]Section, error) {
	kind, secs, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if kind != want {
		return nil, fmt.Errorf("wire: payload kind %d, want %d", kind, want)
	}
	return secs, nil
}

// ReadPayload reads one whole payload from r, refusing to buffer more
// than max bytes — the io.LimitReader cap that keeps a hostile stream
// from ballooning memory before Decode even looks at it.
func ReadPayload(r io.Reader, max int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, max+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > max {
		return nil, fmt.Errorf("wire: payload exceeds %d-byte budget", max)
	}
	return data, nil
}

// Scalar and slice payload helpers. These are the section *contents*; the
// envelope above carries them opaquely.

// AppendUint appends a uvarint.
func AppendUint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// ReadUint consumes one uvarint from p.
func ReadUint(p []byte) (v uint64, rest []byte, err error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: uvarint", ErrTruncated)
	}
	return v, p[n:], nil
}

// AppendFloat64s appends raw little-endian IEEE float64 values.
func AppendFloat64s(dst []byte, v []float64) []byte {
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

// Float64s decodes a raw little-endian float64 payload of exactly n
// values (bit-exact; NaN payloads and signed zeros survive).
func Float64s(p []byte, n int) ([]float64, error) {
	if n < 0 || len(p) != 8*n {
		return nil, fmt.Errorf("wire: float64 payload %d bytes, want %d", len(p), 8*n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return out, nil
}

// AppendInts appends a uvarint count followed by zigzag-varint values.
func AppendInts(dst []byte, v []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	for _, x := range v {
		dst = binary.AppendVarint(dst, int64(x))
	}
	return dst
}

// ReadInts consumes a varint-encoded int slice from p, bounding the
// declared count by what the remaining bytes could possibly hold (one
// byte per value minimum) so a forged header cannot over-allocate.
func ReadInts(p []byte) (v []int, rest []byte, err error) {
	n, rest, err := ReadUint(p)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: %d ints claimed in %d bytes", ErrTruncated, n, len(rest))
	}
	v = make([]int, n)
	for i := range v {
		x, k := binary.Varint(rest)
		if k <= 0 {
			return nil, nil, fmt.Errorf("%w: int %d of %d", ErrTruncated, i, n)
		}
		if x < math.MinInt32 || x > math.MaxInt32 {
			return nil, nil, fmt.Errorf("wire: int value %d outside int32", x)
		}
		v[i] = int(x)
		rest = rest[k:]
	}
	return v, rest, nil
}

// AppendBools appends a uvarint count followed by an LSB-first bitmap.
func AppendBools(dst []byte, v []bool) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	var cur byte
	for i, b := range v {
		if b {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			dst = append(dst, cur)
			cur = 0
		}
	}
	if len(v)%8 != 0 {
		dst = append(dst, cur)
	}
	return dst
}

// ReadBools consumes a bitmap-encoded bool slice from p, rejecting
// nonzero pad bits so the encoding stays canonical.
func ReadBools(p []byte) (v []bool, rest []byte, err error) {
	n, rest, err := ReadUint(p)
	if err != nil {
		return nil, nil, err
	}
	nb := (n + 7) / 8
	if nb > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: %d bools claimed in %d bytes", ErrTruncated, n, len(rest))
	}
	v = make([]bool, n)
	for i := range v {
		v[i] = rest[i/8]&(1<<(i%8)) != 0
	}
	if n%8 != 0 && rest[nb-1]>>(n%8) != 0 {
		return nil, nil, fmt.Errorf("wire: bool bitmap pad bits not zero")
	}
	return v, rest[nb:], nil
}
