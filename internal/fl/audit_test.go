package fl

import (
	"encoding/json"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
)

// TestRoundAuditRecords pins the audit plumbing in isolation: a server
// with a memory-only flight recorder writes exactly one record per round,
// mirroring the RoundResult, with distinct trace IDs and the AuditAmend
// hook applied; a server without a recorder writes nothing and never
// calls the hook.
func TestRoundAuditRecords(t *testing.T) {
	template := nn.NewSmallCNN(nn.Input{C: 1, H: 8, W: 8}, 4, rand.New(rand.NewSource(7)))
	parts := make([]Participant, 4)
	for i := range parts {
		parts[i] = &SyntheticClient{Id: i, Seed: 5}
	}
	cfg := Config{Rounds: 3, Quorum: 0.5}
	s := NewServer(template, parts, cfg, 33)
	fr, err := obs.NewFlightRecorder("", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	s.Audit = fr
	amended := 0
	s.AuditAmend = func(a *RoundAudit) {
		amended++
		acc := float64(90 + a.Round)
		a.TestAccuracy = &acc
	}

	var results []RoundResult
	for r := 0; r < cfg.Rounds; r++ {
		results = append(results, s.RoundDetail(r))
	}
	recent := fr.Recent()
	if len(recent) != cfg.Rounds || amended != cfg.Rounds {
		t.Fatalf("recorded %d audits (amended %d), want %d", len(recent), amended, cfg.Rounds)
	}
	seen := map[obs.TraceID]bool{}
	for i, raw := range recent {
		var a RoundAudit
		if err := json.Unmarshal(raw, &a); err != nil {
			t.Fatalf("audit %d: %v", i, err)
		}
		rr := results[i]
		if a.Round != rr.Round || a.Applied != rr.Applied ||
			len(a.Selected) != len(rr.Selected) || len(a.Completed) != len(rr.Completed) {
			t.Fatalf("audit %d diverges from result:\naudit  %+v\nresult %+v", i, a, rr)
		}
		if a.Quorum != s.quorumCount(len(rr.Selected)) || a.Aggregator == "" {
			t.Fatalf("audit %d lost round context: %+v", i, a)
		}
		if a.Checkpoint != "" {
			t.Fatalf("audit %d names a checkpoint on an undurable server: %q", i, a.Checkpoint)
		}
		if a.TestAccuracy == nil || *a.TestAccuracy != float64(90+i) {
			t.Fatalf("audit %d missing the amended accuracy: %+v", i, a.TestAccuracy)
		}
		if a.Trace == 0 || seen[a.Trace] {
			t.Fatalf("audit %d trace %s not distinct", i, a.Trace)
		}
		seen[a.Trace] = true
	}

	// No recorder: rounds run, nothing records, the hook stays uncalled.
	s2 := NewServer(template, parts, cfg, 33)
	called := false
	s2.AuditAmend = func(*RoundAudit) { called = true }
	s2.RoundDetail(0)
	if called {
		t.Fatal("AuditAmend ran without a flight recorder installed")
	}
}
