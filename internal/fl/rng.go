package fl

import "math/rand"

// Checkpointable server randomness (DESIGN.md §15). A resumed run must
// select the same cohorts the uninterrupted run would have — otherwise the
// bit-identity contract dies at the first post-resume round. math/rand
// offers no way to export a generator's state, so the server draws through
// countingSource: a Source wrapper that counts Int63 calls. The state is
// then two integers — the seed and the draw count — and restoring is
// reseeding plus discarding that many draws (cohort selection consumes a
// handful of draws per round, so replay is microseconds even after
// thousands of rounds).
//
// countingSource deliberately implements only Source, not Source64.
// rand.Rand derives everything the server uses — Intn, Perm, Float64 —
// from Int63 alone; hiding Source64 forces that single entry point, so the
// wrapped generator emits bit-identical sequences to a bare
// rand.New(rand.NewSource(seed)) (pinned by TestCountingSourceBitIdentity)
// while every draw stays countable.
type countingSource struct {
	src   rand.Source
	draws uint64
}

var _ rand.Source = (*countingSource)(nil)

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// RNGState is the serializable state of a server's selection randomness.
type RNGState struct {
	// Seed is the generator's original seed.
	Seed int64
	// Draws is how many Int63 values have been consumed since seeding.
	Draws uint64
}

// seededRand couples a *rand.Rand to its counting source so state can be
// captured and restored.
type seededRand struct {
	rng  *rand.Rand
	src  *countingSource
	seed int64
}

func newSeededRand(seed int64) *seededRand {
	src := &countingSource{src: rand.NewSource(seed)}
	return &seededRand{rng: rand.New(src), src: src, seed: seed}
}

// State captures the generator's position.
func (s *seededRand) State() RNGState {
	return RNGState{Seed: s.seed, Draws: s.src.draws}
}

// Restore rewinds the generator to st by reseeding and replaying st.Draws
// discarded values.
func (s *seededRand) Restore(st RNGState) {
	s.seed = st.Seed
	s.src.Seed(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		s.src.Int63()
	}
}
