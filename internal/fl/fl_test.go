package fl

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
)

// tinySetup builds a small dataset, template model and config for fast
// federated tests.
func tinySetup(t *testing.T, seed int64) (*dataset.Dataset, *dataset.Dataset, *nn.Sequential, Config) {
	t.Helper()
	train, test := dataset.GenSynthMNIST(dataset.GenConfig{TrainPerClass: 30, TestPerClass: 10, Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	template := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rng)
	cfg := Config{Rounds: 2, LocalEpochs: 1, BatchSize: 20, LR: 0.05}
	return train, test, template, cfg
}

func TestMeanAggregator(t *testing.T) {
	agg := MeanAggregator{}
	got := agg.Aggregate([][]float64{{1, 2}, {3, 4}, {5, 6}})
	want := []float64{3, 4}
	for i, w := range want {
		if math.Abs(got[i]-w) > 1e-12 {
			t.Fatalf("mean = %v, want %v", got, want)
		}
	}
}

func TestMeanAggregatorPanics(t *testing.T) {
	for _, deltas := range [][][]float64{nil, {{1, 2}, {1}}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid input accepted")
				}
			}()
			MeanAggregator{}.Aggregate(deltas)
		}()
	}
}

func TestClientLocalUpdateMovesParams(t *testing.T) {
	train, _, template, cfg := tinySetup(t, 1)
	rng := rand.New(rand.NewSource(2))
	shard := dataset.PartitionKLabel(train, 1, 3, 60, rng)[0]
	c := NewClient(0, shard, template, cfg, 3)
	global := template.ParamsVector()
	delta := c.LocalUpdate(global, 0)
	if len(delta) != len(global) {
		t.Fatalf("delta length %d, want %d", len(delta), len(global))
	}
	norm := 0.0
	for _, v := range delta {
		norm += v * v
	}
	if norm == 0 {
		t.Fatal("local training produced a zero update")
	}
}

func TestClientUpdateIsDeterministicPerSeed(t *testing.T) {
	train, _, template, cfg := tinySetup(t, 4)
	// Each client gets its own identically-seeded shard: clients shuffle
	// their shard in place during local training, so sharing one object
	// would leak order between them.
	mkShard := func() *dataset.Dataset {
		return dataset.PartitionKLabel(train, 1, 3, 60, rand.New(rand.NewSource(5)))[0]
	}
	global := template.ParamsVector()
	a := NewClient(0, mkShard(), template, cfg, 7).LocalUpdate(global, 0)
	b := NewClient(0, mkShard(), template, cfg, 7).LocalUpdate(global, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different updates")
		}
	}
}

func TestServerRoundAppliesAggregate(t *testing.T) {
	_, _, template, cfg := tinySetup(t, 6)
	// A fake participant returning a constant delta of +1 everywhere.
	n := template.NumParams()
	p := &fakeParticipant{id: 0, delta: ones(n)}
	srv := NewServer(template, []Participant{p}, cfg, 8)
	before := srv.Model.ParamsVector()
	srv.Round(0)
	after := srv.Model.ParamsVector()
	for i := range after {
		if math.Abs(after[i]-(before[i]+1)) > 1e-12 {
			t.Fatalf("param %d: %g -> %g, want +1", i, before[i], after[i])
		}
	}
}

func TestServerAveragesAcrossParticipants(t *testing.T) {
	_, _, template, cfg := tinySetup(t, 9)
	n := template.NumParams()
	parts := []Participant{
		&fakeParticipant{id: 0, delta: ones(n)},
		&fakeParticipant{id: 1, delta: scaled(n, 3)},
	}
	srv := NewServer(template, parts, cfg, 10)
	before := srv.Model.ParamsVector()
	srv.Round(0)
	after := srv.Model.ParamsVector()
	for i := range after {
		if math.Abs(after[i]-(before[i]+2)) > 1e-12 {
			t.Fatal("server did not average deltas")
		}
	}
}

func TestServerClientSelection(t *testing.T) {
	_, _, template, cfg := tinySetup(t, 11)
	cfg.SelectPerRound = 2
	n := template.NumParams()
	var parts []Participant
	for i := 0; i < 5; i++ {
		parts = append(parts, &fakeParticipant{id: i, delta: make([]float64, n)})
	}
	srv := NewServer(template, parts, cfg, 12)
	ids := srv.Round(0)
	if len(ids) != 2 {
		t.Fatalf("selected %d clients, want 2", len(ids))
	}
	if ids[0] == ids[1] {
		t.Fatal("selected the same client twice")
	}
	// SelectPerRound = 0 means everyone.
	cfg.SelectPerRound = 0
	srv = NewServer(template, parts, cfg, 13)
	if ids := srv.Round(0); len(ids) != 5 {
		t.Fatalf("selected %d clients with SelectPerRound=0, want 5", len(ids))
	}
}

func TestAttackerScalesDeltaAfterScaleFromRound(t *testing.T) {
	train, _, template, cfg := tinySetup(t, 14)
	rng := rand.New(rand.NewSource(15))
	shard := dataset.PartitionKLabelForced(train, 1, 3, 60, rng, 9, 1)[0]
	poison := dataset.PoisonConfig{
		Trigger:     dataset.PixelPattern(3, train.Shape),
		VictimLabel: 9, TargetLabel: 1,
	}
	global := template.ParamsVector()
	mkDelta := func(round int) []float64 {
		a := NewAttacker(0, shard, template, cfg, poison, 4, 16)
		a.ScaleFromRound = 1
		return a.LocalUpdate(global, round)
	}
	unscaled := mkDelta(0) // round 0 < ScaleFromRound
	scaled := mkDelta(1)
	mask := template.StatMask()
	for i := range unscaled {
		if mask[i] {
			if math.Abs(scaled[i]-unscaled[i]) > 1e-9 {
				t.Fatal("statistic coordinate was scaled")
			}
			continue
		}
		if math.Abs(scaled[i]-4*unscaled[i]) > 1e-9 {
			t.Fatalf("coordinate %d: scaled %g vs 4×unscaled %g", i, scaled[i], 4*unscaled[i])
		}
	}
}

func TestAttackerPoisonedDataset(t *testing.T) {
	train, _, template, cfg := tinySetup(t, 17)
	rng := rand.New(rand.NewSource(18))
	shard := dataset.PartitionKLabelForced(train, 1, 3, 60, rng, 9, 1)[0]
	poison := dataset.PoisonConfig{
		Trigger:     dataset.PixelPattern(3, train.Shape),
		VictimLabel: 9, TargetLabel: 1,
	}
	a := NewAttacker(0, shard, template, cfg, poison, 4, 19)
	if a.PoisonedDataset().Len() <= a.Dataset().Len() {
		t.Fatal("poisoned mixture contains no triggered copies")
	}
	// The attacker reports its clean shard to the outside world.
	if a.Dataset().Len() != shard.Len() {
		t.Fatal("attacker's reported dataset is not the clean shard")
	}
}

func TestDBAAttackersCarryDisjointTriggers(t *testing.T) {
	train, _, template, cfg := tinySetup(t, 20)
	rng := rand.New(rand.NewSource(21))
	shards := dataset.PartitionKLabelForced(train, 4, 3, 40, rng, 9, 4)
	global := dataset.PoisonConfig{
		Trigger:     dataset.DBAGlobalPattern(train.Shape),
		VictimLabel: 9, TargetLabel: 1,
	}
	atk := NewDBAAttackers(0, shards, template, cfg, global, 2, 22)
	if len(atk) != 4 {
		t.Fatalf("%d attackers, want 4", len(atk))
	}
	total := 0
	seen := map[[3]int]bool{}
	for _, a := range atk {
		for _, px := range a.Poison.Trigger.Pixels {
			key := [3]int{px.X, px.Y, px.C}
			if seen[key] {
				t.Fatal("DBA sub-triggers overlap")
			}
			seen[key] = true
			total++
		}
	}
	if total != len(global.Trigger.Pixels) {
		t.Fatalf("sub-triggers cover %d pixels, want %d", total, len(global.Trigger.Pixels))
	}
}

func TestPruningAwareAttackerAvoidsUnits(t *testing.T) {
	train, _, template, cfg := tinySetup(t, 23)
	rng := rand.New(rand.NewSource(24))
	shard := dataset.PartitionKLabelForced(train, 1, 3, 60, rng, 9, 1)[0]
	poison := dataset.PoisonConfig{
		Trigger:     dataset.PixelPattern(3, train.Shape),
		VictimLabel: 9, TargetLabel: 1,
	}
	a := NewAttacker(0, shard, template, cfg, poison, 1, 25)
	li := template.LastConvIndex()
	a.AvoidLayer = li
	a.AvoidUnits = []int{0, 1}
	global := template.ParamsVector()
	a.LocalUpdate(global, 0)
	conv := a.Model().Layer(li).(*nn.Conv2D)
	if !conv.UnitPruned(0) || !conv.UnitPruned(1) {
		t.Fatal("pruning-aware attacker did not mask avoided units")
	}
}

func TestAttackerSelfClipRemovesExtremes(t *testing.T) {
	train, _, template, cfg := tinySetup(t, 26)
	rng := rand.New(rand.NewSource(27))
	shard := dataset.PartitionKLabelForced(train, 1, 3, 60, rng, 9, 1)[0]
	poison := dataset.PoisonConfig{
		Trigger:     dataset.PixelPattern(3, train.Shape),
		VictimLabel: 9, TargetLabel: 1,
	}
	a := NewAttacker(0, shard, template, cfg, poison, 1, 28)
	a.SelfClipDelta = 2
	global := template.ParamsVector()
	a.LocalUpdate(global, 0)
	conv := a.Model().Layer(template.LastConvIndex()).(*nn.Conv2D)
	w := conv.W.Value
	mu, sg := w.Mean(), w.Std()
	for _, v := range w.Data {
		// After self-clipping, surviving weights sit within the clip band
		// (recomputed statistics shift slightly; allow headroom).
		if v != 0 && (v < mu-3*sg || v > mu+3*sg) {
			t.Fatalf("extreme weight %g survived self-clip", v)
		}
	}
}

func TestReportsHonestAndAdaptive(t *testing.T) {
	train, _, template, cfg := tinySetup(t, 29)
	rng := rand.New(rand.NewSource(30))
	shards := dataset.PartitionKLabelForced(train, 2, 3, 40, rng, 9, 1)
	poison := dataset.PoisonConfig{
		Trigger:     dataset.PixelPattern(3, train.Shape),
		VictimLabel: 9, TargetLabel: 1,
	}
	a := NewAttacker(0, shards[0], template, cfg, poison, 2, 31)
	c := NewClient(1, shards[1], template, cfg, 32)
	li := template.LastConvIndex()
	units := template.Layer(li).(nn.Prunable).Units()

	for _, rc := range []interface {
		RankReport(*nn.Sequential, int) []int
		VoteReport(*nn.Sequential, int, float64) []bool
	}{a, c} {
		ranks := rc.RankReport(template, li)
		if len(ranks) != units {
			t.Fatalf("rank report length %d, want %d", len(ranks), units)
		}
		votes := rc.VoteReport(template, li, 0.5)
		n := 0
		for _, v := range votes {
			if v {
				n++
			}
		}
		if n != units/2 {
			t.Fatalf("%d prune votes, want %d", n, units/2)
		}
	}

	// Lying about accuracy.
	honest := a.ReportAccuracy(template)
	a.SetDefenseBehavior(AttackerDefenseBehavior{LieAccuracy: true})
	if got := a.ReportAccuracy(template); got != 1 {
		t.Fatalf("lying attacker reported %g, want 1", got)
	}
	if honest == 1 {
		t.Log("untrained model accidentally perfect on shard; honest-vs-lie indistinguishable")
	}

	// Manipulated ranks are still valid permutations.
	a.SetDefenseBehavior(AttackerDefenseBehavior{ManipulateRanks: true})
	ranks := a.RankReport(template, li)
	seen := make([]bool, units+1)
	for _, r := range ranks {
		if r < 1 || r > units || seen[r] {
			t.Fatal("manipulated rank report is not a permutation")
		}
		seen[r] = true
	}
}

func TestReportClientsFilters(t *testing.T) {
	train, _, template, cfg := tinySetup(t, 33)
	rng := rand.New(rand.NewSource(34))
	shard := dataset.PartitionKLabel(train, 1, 3, 40, rng)[0]
	parts := []Participant{
		NewClient(0, shard, template, cfg, 35),
		&fakeParticipant{id: 1, delta: nil}, // not a ReportClient
	}
	if got := len(ReportClients(parts)); got != 1 {
		t.Fatalf("ReportClients kept %d, want 1", got)
	}
}

func TestFineTunePreservesMasks(t *testing.T) {
	train, _, template, cfg := tinySetup(t, 36)
	rng := rand.New(rand.NewSource(37))
	shards := dataset.PartitionKLabel(train, 2, 3, 40, rng)
	parts := []Participant{
		NewClient(0, shards[0], template, cfg, 38),
		NewClient(1, shards[1], template, cfg, 39),
	}
	srv := NewServer(template, parts, cfg, 40)
	m := srv.Model.Clone()
	li := m.LastConvIndex()
	m.PruneModelUnit(li, 0)
	srv.FineTune(m, 2)
	conv := m.Layer(li).(*nn.Conv2D)
	fanIn := conv.W.Value.Dim(1)
	for j := 0; j < fanIn; j++ {
		if conv.W.Value.Data[j] != 0 {
			t.Fatal("fine-tuning resurrected a pruned unit")
		}
	}
}

func TestTrainLocalImprovesAccuracy(t *testing.T) {
	train, test, template, _ := tinySetup(t, 41)
	rng := rand.New(rand.NewSource(42))
	m := template.Clone()
	before := metrics.Accuracy(m, test, 0)
	TrainLocal(m, train, Config{LocalEpochs: 3, BatchSize: 20, LR: 0.05}, rng)
	after := metrics.Accuracy(m, test, 0)
	if after <= before {
		t.Fatalf("training did not improve accuracy: %.3f -> %.3f", before, after)
	}
}

// fakeParticipant returns a fixed delta.
type fakeParticipant struct {
	id    int
	delta []float64
}

func (f *fakeParticipant) ID() int { return f.id }
func (f *fakeParticipant) LocalUpdate(global []float64, _ int) []float64 {
	if f.delta == nil {
		return make([]float64, len(global))
	}
	return append([]float64(nil), f.delta...)
}
func (f *fakeParticipant) Dataset() *dataset.Dataset { return nil }

func ones(n int) []float64 { return scaled(n, 1) }

func scaled(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestSampleWeightedMean(t *testing.T) {
	agg := SampleWeightedMean{Counts: map[int]int{0: 300, 1: 100}}
	got := agg.AggregateWeighted([][]float64{{4}, {8}}, []int{0, 1})
	// (300·4 + 100·8) / 400 = 5.
	if math.Abs(got[0]-5) > 1e-12 {
		t.Fatalf("weighted mean %g, want 5", got[0])
	}
	// Unknown clients weigh 1.
	got = agg.AggregateWeighted([][]float64{{4}, {8}}, []int{7, 8})
	if math.Abs(got[0]-6) > 1e-12 {
		t.Fatalf("default-weight mean %g, want 6", got[0])
	}
	// Eta scales the aggregate.
	agg.Eta = 0.5
	got = agg.AggregateWeighted([][]float64{{4}, {8}}, []int{7, 8})
	if math.Abs(got[0]-3) > 1e-12 {
		t.Fatalf("eta-scaled mean %g, want 3", got[0])
	}
}

func TestServerUsesWeightedAggregator(t *testing.T) {
	_, _, template, cfg := tinySetup(t, 80)
	n := template.NumParams()
	parts := []Participant{
		&fakeParticipant{id: 0, delta: ones(n)},      // weight 3
		&fakeParticipant{id: 1, delta: scaled(n, 5)}, // weight 1
	}
	srv := NewServer(template, parts, cfg, 81)
	srv.Agg = SampleWeightedMean{Counts: map[int]int{0: 3, 1: 1}}
	before := srv.Model.ParamsVector()
	srv.Round(0)
	after := srv.Model.ParamsVector()
	// (3·1 + 1·5)/4 = 2.
	for i := range after {
		if math.Abs(after[i]-(before[i]+2)) > 1e-12 {
			t.Fatal("weighted aggregation not applied")
		}
	}
}

// TestDataDominanceAttack demonstrates why the paper equalizes sample
// counts: under sample-weighted FedAvg, an attacker claiming a huge local
// dataset dominates the aggregate even with gamma = 1.
func TestDataDominanceAttack(t *testing.T) {
	_, _, template, cfg := tinySetup(t, 82)
	n := template.NumParams()
	parts := []Participant{
		&fakeParticipant{id: 0, delta: scaled(n, 10)}, // "attacker"
		&fakeParticipant{id: 1, delta: ones(n)},
		&fakeParticipant{id: 2, delta: ones(n)},
	}
	srv := NewServer(template, parts, cfg, 83)
	srv.Agg = SampleWeightedMean{Counts: map[int]int{0: 10_000, 1: 100, 2: 100}}
	before := srv.Model.ParamsVector()
	srv.Round(0)
	after := srv.Model.ParamsVector()
	// The aggregate must sit almost exactly at the attacker's delta.
	if math.Abs(after[0]-before[0]-10) > 0.5 {
		t.Fatalf("attacker with dominant sample count moved params by %g, want ~10",
			after[0]-before[0])
	}
}
