package fl

import (
	"hash/fnv"
	"math/rand"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/nn"
)

// SyntheticClient is a load-generation participant: it returns a
// deterministic pseudo-update without training a model, so tens of
// thousands of them fit in one process (a real Client carries a model
// clone and an optimizer; a SyntheticClient carries three words). The
// delta for (Seed, id, round) is a pure function of those values and the
// global vector's length, which makes load runs reproducible and lets
// tests compare an in-process federation bit-for-bit against the same
// fleet served over the wire.
type SyntheticClient struct {
	// Id is the client's participant ID.
	Id int
	// Seed decorrelates whole fleets from each other.
	Seed int64
	// Scale bounds the delta's coordinates to [-Scale, Scale); 0 means
	// 1e-3, small enough that synthetic rounds never blow up the model.
	Scale float64
	// Units is the length of the client's canned activation reports; 0
	// means 64 (the last-conv width of the MNIST-scale models).
	Units int
}

var (
	_ Participant             = (*SyntheticClient)(nil)
	_ core.ReportClient       = (*SyntheticClient)(nil)
	_ core.AccuracyReporter   = (*SyntheticClient)(nil)
	_ core.ActivationReporter = (*SyntheticClient)(nil)
)

// ID implements Participant.
func (c *SyntheticClient) ID() int { return c.Id }

// Dataset implements Participant; synthetic clients hold no data.
func (c *SyntheticClient) Dataset() *dataset.Dataset { return nil }

// LocalUpdate implements Participant: a seeded pseudo-random delta sized
// to the incoming global vector. It is safe for concurrent use — each
// call owns its RNG — so one synthetic client can serve overlapping
// requests in a load test.
func (c *SyntheticClient) LocalUpdate(global []float64, round int) []float64 {
	scale := c.Scale
	if scale == 0 {
		scale = 1e-3
	}
	rng := syntheticRNG(uint64(c.Seed), uint64(c.Id), uint64(round))
	d := make([]float64, len(global))
	for i := range d {
		d[i] = scale * (2*rng.Float64() - 1)
	}
	return d
}

// syntheticDomain* separate the report streams from the update stream (and
// from each other), so e.g. asking for ranks never perturbs the deltas a
// load test compares bit-for-bit.
const (
	syntheticDomainActs = 0x5f_ac75
	syntheticDomainAcc  = 0x5f_acc0
)

// syntheticRNG derives a deterministic RNG from the hashed values.
func syntheticRNG(vals ...uint64) *rand.Rand {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range vals {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// units returns the canned report width.
func (c *SyntheticClient) units() int {
	if c.Units > 0 {
		return c.Units
	}
	return 64
}

// ActivationReport implements core.ActivationReporter with a canned
// activation vector — a pure function of (Seed, Id, layerIdx) — so a fleet
// of synthetic clients exercises the defense's report path without models.
// The model argument is ignored and may be nil.
func (c *SyntheticClient) ActivationReport(_ *nn.Sequential, layerIdx int) []float64 {
	rng := syntheticRNG(syntheticDomainActs, uint64(c.Seed), uint64(c.Id), uint64(layerIdx))
	acts := make([]float64, c.units())
	for i := range acts {
		acts[i] = rng.Float64()
	}
	return acts
}

// RankReport implements core.ReportClient from the canned activations.
func (c *SyntheticClient) RankReport(m *nn.Sequential, layerIdx int) []int {
	return core.RanksFromActivations(c.ActivationReport(m, layerIdx))
}

// VoteReport implements core.ReportClient from the canned activations.
func (c *SyntheticClient) VoteReport(m *nn.Sequential, layerIdx int, p float64) []bool {
	return core.VotesFromActivations(c.ActivationReport(m, layerIdx), p)
}

// ReportAccuracy implements core.AccuracyReporter with a deterministic
// pseudo-accuracy in (0.5, 1); the model is ignored and may be nil.
func (c *SyntheticClient) ReportAccuracy(*nn.Sequential) float64 {
	rng := syntheticRNG(syntheticDomainAcc, uint64(c.Seed), uint64(c.Id))
	return 0.5 + rng.Float64()/2
}
