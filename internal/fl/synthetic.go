package fl

import (
	"hash/fnv"
	"math/rand"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
)

// SyntheticClient is a load-generation participant: it returns a
// deterministic pseudo-update without training a model, so tens of
// thousands of them fit in one process (a real Client carries a model
// clone and an optimizer; a SyntheticClient carries three words). The
// delta for (Seed, id, round) is a pure function of those values and the
// global vector's length, which makes load runs reproducible and lets
// tests compare an in-process federation bit-for-bit against the same
// fleet served over the wire.
type SyntheticClient struct {
	// Id is the client's participant ID.
	Id int
	// Seed decorrelates whole fleets from each other.
	Seed int64
	// Scale bounds the delta's coordinates to [-Scale, Scale); 0 means
	// 1e-3, small enough that synthetic rounds never blow up the model.
	Scale float64
}

var _ Participant = (*SyntheticClient)(nil)

// ID implements Participant.
func (c *SyntheticClient) ID() int { return c.Id }

// Dataset implements Participant; synthetic clients hold no data.
func (c *SyntheticClient) Dataset() *dataset.Dataset { return nil }

// LocalUpdate implements Participant: a seeded pseudo-random delta sized
// to the incoming global vector. It is safe for concurrent use — each
// call owns its RNG — so one synthetic client can serve overlapping
// requests in a load test.
func (c *SyntheticClient) LocalUpdate(global []float64, round int) []float64 {
	scale := c.Scale
	if scale == 0 {
		scale = 1e-3
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	put(uint64(c.Seed))
	put(uint64(c.Id))
	put(uint64(round))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	d := make([]float64, len(global))
	for i := range d {
		d[i] = scale * (2*rng.Float64() - 1)
	}
	return d
}
