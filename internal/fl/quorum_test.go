package fl

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// wireFailing wraps a Participant so its fallible surface errors without
// touching the wrapped client — the client never trains, exactly as if a
// remote stub's server were unreachable. Rounds driven over it must
// therefore aggregate bit-identically to rounds where DropPolicy excluded
// the same client up front.
type wireFailing struct {
	Participant
	fail bool
}

var errWire = errors.New("injected wire failure")

func (w *wireFailing) TryLocalUpdate(_ context.Context, global []float64, round int) ([]float64, error) {
	if w.fail {
		return nil, errWire
	}
	return w.Participant.LocalUpdate(global, round), nil
}

// buildQuorumFederation rebuilds the buildFederation population from the
// same seeds, with cfg.Quorum set and each participant optionally wrapped
// in a wire-failure shim. failIDs == nil leaves participants unwrapped so
// the run exercises the plain DropPolicy path.
func buildQuorumFederation(t *testing.T, quorum float64, failIDs map[int]bool) *Server {
	t.Helper()
	train, _, template, cfg := tinySetup(t, 21)
	cfg.Quorum = quorum
	const clients = 6
	shards := dataset.PartitionKLabel(train, clients, 3, 40, rand.New(rand.NewSource(22)))
	parts := make([]Participant, clients)
	for i := 0; i < clients; i++ {
		if i == 0 {
			poison := dataset.PoisonConfig{
				Trigger:     dataset.PixelPattern(3, dataset.Shape{C: 1, H: 16, W: 16}),
				VictimLabel: 9,
				TargetLabel: 2,
				Copies:      2,
			}
			parts[i] = NewAttacker(i, shards[i], template, cfg, poison, 3, 100)
		} else {
			parts[i] = NewClient(i, shards[i], template, cfg, 200+int64(i))
		}
		if failIDs != nil {
			parts[i] = &wireFailing{Participant: parts[i], fail: failIDs[i]}
		}
	}
	return NewServer(template, parts, cfg, 300)
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQuorumRoundsMatchDropPolicyRuns is the dropout-equivalence table: a
// training run in which a fixed set of clients fails on the wire must be
// bit-identical — parameters and round telemetry — to a run in which the
// same set is dropped by the in-process DropPolicy, for 0, minority and
// majority dropouts, at worker counts 1, 2 and 8.
func TestQuorumRoundsMatchDropPolicyRuns(t *testing.T) {
	cases := []struct {
		name    string
		fail    map[int]bool
		quorum  float64
		applied bool
	}{
		{"no dropouts", map[int]bool{}, 0.5, true},
		{"minority dropout", map[int]bool{2: true}, 0.5, true},
		{"exact quorum", map[int]bool{1: true, 2: true, 3: true}, 0.5, true},
		{"below quorum", map[int]bool{1: true, 2: true, 3: true, 4: true}, 0.5, false},
		{"majority dropout no quorum", map[int]bool{1: true, 2: true, 3: true, 4: true}, 0, true},
	}
	type runOut struct {
		params []float64
		rounds []RoundResult
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(w int, wire bool) runOut {
				prev := parallel.SetWorkers(w)
				defer parallel.SetWorkers(prev)
				var s *Server
				if wire {
					s = buildQuorumFederation(t, tc.quorum, tc.fail)
				} else {
					s = buildQuorumFederation(t, tc.quorum, nil)
					s.Drop = dropIDs(tc.fail)
				}
				var rounds []RoundResult
				for r := 0; r < s.Config().Rounds; r++ {
					rounds = append(rounds, s.RoundDetail(r))
				}
				return runOut{params: s.Model.ParamsVector(), rounds: rounds}
			}
			ref := run(1, false)
			for _, res := range ref.rounds {
				if res.Applied != tc.applied {
					t.Fatalf("drop run round %d applied=%v, want %v", res.Round, res.Applied, tc.applied)
				}
			}
			for _, w := range []int{1, 2, 8} {
				got := run(w, true)
				for i := range got.params {
					if got.params[i] != ref.params[i] {
						t.Fatalf("workers=%d: param %d = %v, want %v (wire failures diverge from policy drops)",
							w, i, got.params[i], ref.params[i])
					}
				}
				for r, res := range got.rounds {
					want := ref.rounds[r]
					if !sameInts(res.Completed, want.Completed) {
						t.Fatalf("workers=%d round %d: completed %v, want %v", w, r, res.Completed, want.Completed)
					}
					if !sameInts(res.Dropped, want.Dropped) {
						t.Fatalf("workers=%d round %d: dropped %v, want %v", w, r, res.Dropped, want.Dropped)
					}
					if !sameInts(res.Selected, want.Selected) {
						t.Fatalf("workers=%d round %d: selected %v, want %v", w, r, res.Selected, want.Selected)
					}
					if res.Applied != want.Applied {
						t.Fatalf("workers=%d round %d: applied=%v, want %v", w, r, res.Applied, want.Applied)
					}
					if len(res.Errs) != len(tc.fail) {
						t.Fatalf("workers=%d round %d: %d transport errors recorded, want %d",
							w, r, len(res.Errs), len(tc.fail))
					}
					for id := range tc.fail {
						if !errors.Is(res.Errs[id], errWire) {
							t.Fatalf("workers=%d round %d: client %d error %v, want errWire", w, r, id, res.Errs[id])
						}
					}
					if want.Errs != nil {
						t.Fatalf("policy drops recorded transport errors: %v", want.Errs)
					}
				}
			}
		})
	}
}

// TestFineTuneMatchesDropPolicyRun extends the equivalence to the defense's
// fine-tuning loop, which shares Round's machinery.
func TestFineTuneMatchesDropPolicyRun(t *testing.T) {
	fail := map[int]bool{2: true, 5: true}
	run := func(w int, wire bool) []float64 {
		prev := parallel.SetWorkers(w)
		defer parallel.SetWorkers(prev)
		var s *Server
		if wire {
			s = buildQuorumFederation(t, 0.5, fail)
		} else {
			s = buildQuorumFederation(t, 0.5, nil)
			s.Drop = dropIDs(fail)
		}
		m := s.Model.Clone()
		s.FineTune(m, 2)
		return m.ParamsVector()
	}
	ref := run(1, false)
	for _, w := range []int{1, 2, 8} {
		got := run(w, true)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: fine-tuned param %d diverges between wire failures and policy drops", w, i)
			}
		}
	}
}

// TestFineTuneHonorsAggAndDrop pins the fix for FineTune hard-coding
// MeanAggregator: the configured weighted rule and the drop policy must
// both apply to fine-tuning rounds.
func TestFineTuneHonorsAggAndDrop(t *testing.T) {
	_, _, template, cfg := tinySetup(t, 70)
	n := template.NumParams()
	parts := []Participant{
		&fakeParticipant{id: 0, delta: ones(n)},
		&fakeParticipant{id: 1, delta: scaled(n, 5)},
		&fakeParticipant{id: 2, delta: scaled(n, 100)}, // dropped
	}
	srv := NewServer(template, parts, cfg, 71)
	srv.Agg = SampleWeightedMean{Counts: map[int]int{0: 1, 1: 3}}
	srv.Drop = dropIDs{2: true}
	m := srv.Model.Clone()
	before := m.ParamsVector()
	srv.FineTune(m, 1)
	after := m.ParamsVector()
	// Weighted mean of (1·1 + 3·5)/4 = 4; a mean over all three would be
	// ~35.3 and an unweighted mean of the survivors 3.
	for i := range after {
		if math.Abs(after[i]-(before[i]+4)) > 1e-12 {
			t.Fatalf("param %d: %g -> %g, want +4 (FineTune ignored Agg or Drop)", i, before[i], after[i])
		}
	}
}

// TestFineTuneBelowQuorumIsNoOp: fine-tuning rounds observe the same
// quorum rule as training rounds.
func TestFineTuneBelowQuorumIsNoOp(t *testing.T) {
	_, _, template, cfg := tinySetup(t, 72)
	cfg.Quorum = 0.75
	n := template.NumParams()
	parts := []Participant{
		&fakeParticipant{id: 0, delta: ones(n)},
		&fakeParticipant{id: 1, delta: ones(n)},
	}
	srv := NewServer(template, parts, cfg, 73)
	srv.Drop = dropIDs{1: true} // 1 of 2 responds < ceil(0.75·2)=2
	m := srv.Model.Clone()
	before := m.ParamsVector()
	srv.FineTune(m, 1)
	after := m.ParamsVector()
	for i := range after {
		if after[i] != before[i] {
			t.Fatal("below-quorum fine-tune round modified the model")
		}
	}
}
