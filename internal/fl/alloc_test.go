//go:build !race

package fl

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// TestTrainerWarmAllocFree gates the end-to-end local-update hot path: a
// warm Trainer.Train call — batch assembly, forward, loss, backward and
// optimizer steps over a whole local epoch — performs zero heap
// allocations. Workers are pinned to 1 (the parallel conv path allocates
// its goroutines) and the test is excluded under the race detector, whose
// instrumentation allocates.
func TestTrainerWarmAllocFree(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	train, _, template, cfg := tinySetup(t, 61)
	shard := dataset.PartitionKLabel(train, 1, 3, 50, rand.New(rand.NewSource(62)))[0]
	m := template.Clone()
	tr := NewTrainer(cfg)
	rng := rand.New(rand.NewSource(63))

	tr.Train(m, shard, rng) // warm: scratch, velocity, label buffer
	if allocs := testing.AllocsPerRun(5, func() { tr.Train(m, shard, rng) }); allocs != 0 {
		t.Errorf("warm Trainer.Train: %v allocs/op, want 0", allocs)
	}
}
