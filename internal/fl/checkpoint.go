package fl

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/wire"
)

// Durable rounds (DESIGN.md §15). A multi-day federation is one SIGKILL
// away from losing every applied round unless the server's state — model
// parameters, round counter, selection-RNG position and, mid-round, the
// streaming fold accumulator — survives on disk. A Checkpointer writes
// that state as CRC-sealed wire.KindCheckpoint envelopes on a configurable
// cadence, atomically (temp file + fsync + rename), so the directory only
// ever contains complete checkpoints plus at most one torn temp file that
// the loader ignores. Restart is LatestCheckpoint + Server.ResumeFrom.

// Checkpoint section types (wire.KindCheckpoint payloads).
const (
	// secCkptRound: uvarints NextRound, Seed (two's-complement cast),
	// Draws, Registered.
	secCkptRound uint16 = 1
	// secCkptModel: the nn.AppendModelState payload of the global model.
	secCkptModel uint16 = 2
	// secCkptPartial: interrupted-round state (see PartialRound).
	secCkptPartial uint16 = 3
)

// maxCheckpointBytes caps how much DecodeCheckpoint accepts; matches the
// model cap in nn.
const maxCheckpointBytes = 1 << 30

// Checkpoint is a server's durable state: everything needed to restart a
// federation where it stopped. Model holds the nn.AppendModelState payload
// of the global model; RNG pins cohort selection so the resumed run picks
// the cohorts the uninterrupted run would have.
type Checkpoint struct {
	// NextRound is the first round the resumed driver should run. A
	// partial checkpoint has NextRound == Partial.Round: the interrupted
	// round itself.
	NextRound int
	// RNG is the selection-generator state after the last completed draw.
	RNG RNGState
	// Registered is the population size at capture, verified on resume.
	Registered int
	// Model is the global model's parameter/mask payload.
	Model []byte
	// Partial, when non-nil, is the interrupted streaming round's state.
	Partial *PartialRound
}

// PartialRound captures a streaming round mid-fold: the cohort bookkeeping
// plus the fold accumulator, so a resumed server re-collects only the
// participants that had not yet folded. The fold is strictly
// participant-ordered, so restoring Acc and continuing from the recorded
// prefix replays the exact scalar sequence of an uninterrupted round.
type PartialRound struct {
	// Round is the interrupted round index.
	Round int
	// Selected is the full cohort drawn for the round, participant order.
	Selected []int
	// Completed lists the IDs folded before the checkpoint.
	Completed []int
	// Dropped lists the IDs that delivered nothing before the checkpoint
	// (policy drops — always recorded in full, they precede collection —
	// then wire failures).
	Dropped []int
	// FoldN is the fold count (== len(Completed)).
	FoldN int
	// Total is the accumulated weight of a weighted fold (0 unweighted).
	Total float64
	// Acc is the fold accumulator at the checkpoint.
	Acc []float64
}

// EncodeCheckpoint serializes ck as a wire.KindCheckpoint envelope.
func EncodeCheckpoint(ck *Checkpoint) []byte {
	var rs []byte
	rs = wire.AppendUint(rs, uint64(ck.NextRound))
	rs = wire.AppendUint(rs, uint64(ck.RNG.Seed))
	rs = wire.AppendUint(rs, ck.RNG.Draws)
	rs = wire.AppendUint(rs, uint64(ck.Registered))
	e := wire.NewEncoder(wire.KindCheckpoint).
		Section(secCkptRound, rs).
		Section(secCkptModel, ck.Model)
	if p := ck.Partial; p != nil {
		var ps []byte
		ps = wire.AppendUint(ps, uint64(p.Round))
		ps = wire.AppendInts(ps, p.Selected)
		ps = wire.AppendInts(ps, p.Completed)
		ps = wire.AppendInts(ps, p.Dropped)
		ps = wire.AppendUint(ps, uint64(p.FoldN))
		ps = wire.AppendFloat64s(ps, []float64{p.Total})
		ps = wire.AppendUint(ps, uint64(len(p.Acc)))
		ps = wire.AppendFloat64s(ps, p.Acc)
		e.Section(secCkptPartial, ps)
	}
	return e.Bytes()
}

// DecodeCheckpoint parses a wire.KindCheckpoint envelope. Malformed input
// errors — never panics, never allocates past the payload's own size.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) > maxCheckpointBytes {
		return nil, fmt.Errorf("fl: checkpoint of %d bytes exceeds cap", len(data))
	}
	secs, err := wire.DecodeKind(data, wire.KindCheckpoint)
	if err != nil {
		return nil, fmt.Errorf("fl: DecodeCheckpoint: %w", err)
	}
	ck := &Checkpoint{}
	var haveRound, haveModel bool
	for _, s := range secs {
		switch s.Type {
		case secCkptRound:
			u := make([]uint64, 4)
			rest := s.Payload
			for i := range u {
				if u[i], rest, err = wire.ReadUint(rest); err != nil {
					return nil, fmt.Errorf("fl: DecodeCheckpoint: round state: %w", err)
				}
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("fl: DecodeCheckpoint: %d trailing round-state bytes", len(rest))
			}
			if u[0] > 1<<31 || u[3] > 1<<31 {
				return nil, fmt.Errorf("fl: DecodeCheckpoint: round/population out of range")
			}
			ck.NextRound = int(u[0])
			ck.RNG = RNGState{Seed: int64(u[1]), Draws: u[2]}
			ck.Registered = int(u[3])
			haveRound = true
		case secCkptModel:
			ck.Model = s.Payload
			haveModel = true
		case secCkptPartial:
			p, err := decodePartial(s.Payload)
			if err != nil {
				return nil, err
			}
			ck.Partial = p
		}
	}
	if !haveRound || !haveModel {
		return nil, fmt.Errorf("fl: DecodeCheckpoint: missing required section (round/model)")
	}
	if ck.Partial != nil && ck.Partial.Round != ck.NextRound {
		return nil, fmt.Errorf("fl: DecodeCheckpoint: partial round %d under checkpoint for round %d",
			ck.Partial.Round, ck.NextRound)
	}
	return ck, nil
}

func decodePartial(p []byte) (*PartialRound, error) {
	fail := func(what string, err error) (*PartialRound, error) {
		return nil, fmt.Errorf("fl: DecodeCheckpoint: partial %s: %w", what, err)
	}
	pr := &PartialRound{}
	round, rest, err := wire.ReadUint(p)
	if err != nil {
		return fail("round", err)
	}
	if round > 1<<31 {
		return nil, fmt.Errorf("fl: DecodeCheckpoint: partial round %d out of range", round)
	}
	pr.Round = int(round)
	if pr.Selected, rest, err = wire.ReadInts(rest); err != nil {
		return fail("selected", err)
	}
	if pr.Completed, rest, err = wire.ReadInts(rest); err != nil {
		return fail("completed", err)
	}
	if pr.Dropped, rest, err = wire.ReadInts(rest); err != nil {
		return fail("dropped", err)
	}
	foldN, rest, err := wire.ReadUint(rest)
	if err != nil {
		return fail("fold count", err)
	}
	if foldN != uint64(len(pr.Completed)) {
		return nil, fmt.Errorf("fl: DecodeCheckpoint: fold count %d with %d completed",
			foldN, len(pr.Completed))
	}
	pr.FoldN = int(foldN)
	if len(rest) < 8 {
		return nil, fmt.Errorf("fl: DecodeCheckpoint: partial total truncated")
	}
	tot, err := wire.Float64s(rest[:8], 1)
	if err != nil {
		return fail("total", err)
	}
	pr.Total = tot[0]
	rest = rest[8:]
	dim, rest, err := wire.ReadUint(rest)
	if err != nil {
		return fail("acc length", err)
	}
	if uint64(len(rest)) != 8*dim {
		return nil, fmt.Errorf("fl: DecodeCheckpoint: %d acc bytes for dim %d", len(rest), dim)
	}
	if pr.Acc, err = wire.Float64s(rest, int(dim)); err != nil {
		return fail("acc", err)
	}
	return pr, nil
}

// checkpointExt names complete checkpoint files; the atomic writer's temp
// files use a different suffix so a crash mid-write leaves nothing the
// loader would even open.
const checkpointExt = ".fcc"

// boundaryName formats a round-boundary checkpoint's file name; nextRound
// is the first round the resumed driver runs. partialName formats a
// mid-round checkpoint after the given fold. The widths and the 'f' < 'p'
// suffix order make lexical file-name order equal recency order: a round's
// partials sort after the boundary that opened the round (both carry
// NextRound == the interrupted round), and the next boundary sorts after
// them all.
func boundaryName(nextRound int) string {
	return fmt.Sprintf("ckpt-%08d-f%s", nextRound, checkpointExt)
}
func partialName(round, folds int) string {
	return fmt.Sprintf("ckpt-%08d-p%06d%s", round, folds, checkpointExt)
}

// AtomicWriteFile writes data so a crash at any instant leaves either the
// previous file or the new one, never a torn mix: write to a temp file in
// the same directory, fsync it, rename over the target, fsync the
// directory so the rename itself is durable.
func AtomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Checkpointer writes a server's checkpoints on a cadence. Zero values
// mean: boundary checkpoint after every round, no mid-round partials, keep
// the last two boundaries.
type Checkpointer struct {
	// Dir is the checkpoint directory (must exist).
	Dir string
	// EveryRounds is the boundary cadence: a checkpoint after every n-th
	// round (<= 0 means every round).
	EveryRounds int
	// EveryFolds, when > 0, additionally writes a partial checkpoint
	// inside streaming rounds after every n-th folded update (plus one
	// before the first fold, so a pre-fold crash still resumes into the
	// round with its drawn cohort).
	EveryFolds int
	// Keep bounds retention: the newest Keep boundary checkpoints and
	// anything newer survive; older files are pruned after each boundary
	// write (<= 0 means 2).
	Keep int
	// WriteFile is the write seam, nil meaning AtomicWriteFile. Tests
	// inject torn writes here to prove resume never loads a torn file.
	WriteFile func(path string, data []byte) error

	// lastMu guards lastPath, the most recent successfully written
	// checkpoint file (see LastPath).
	lastMu   sync.Mutex
	lastPath string
}

// LastPath returns the path of the most recent successfully written
// checkpoint ("" before the first write). The round audit trail records
// it, so each RoundAudit names the checkpoint that covers it.
func (c *Checkpointer) LastPath() string {
	c.lastMu.Lock()
	defer c.lastMu.Unlock()
	return c.lastPath
}

func (c *Checkpointer) boundaryDue(t int) bool {
	n := c.EveryRounds
	if n <= 0 {
		n = 1
	}
	return (t+1)%n == 0
}

func (c *Checkpointer) partialDue(folds int) bool {
	return c.EveryFolds > 0 && folds%c.EveryFolds == 0
}

// write encodes and durably writes one checkpoint under the given name,
// feeding the fl_checkpoint_* metrics.
func (c *Checkpointer) write(name string, ck *Checkpoint) error {
	sp := obs.StartSpan("fl.checkpoint_write", obs.M.FLCheckpointWriteSeconds)
	defer sp.End()
	data := EncodeCheckpoint(ck)
	wf := c.WriteFile
	if wf == nil {
		wf = AtomicWriteFile
	}
	path := filepath.Join(c.Dir, name)
	if err := wf(path, data); err != nil {
		obs.M.FLCheckpointWriteErrors.Inc()
		return fmt.Errorf("fl: checkpoint %s: %w", name, err)
	}
	c.lastMu.Lock()
	c.lastPath = path
	c.lastMu.Unlock()
	obs.M.FLCheckpointWrites.Inc()
	obs.M.FLCheckpointBytes.Add(uint64(len(data)))
	obs.L().Debug("fl: checkpoint written", "file", name, "bytes", len(data),
		"next_round", ck.NextRound, "partial", ck.Partial != nil)
	return nil
}

// WriteBoundary persists a round-boundary checkpoint and prunes old files.
func (c *Checkpointer) WriteBoundary(ck *Checkpoint) error {
	if err := c.write(boundaryName(ck.NextRound), ck); err != nil {
		return err
	}
	c.prune()
	return nil
}

// WritePartial persists a mid-round checkpoint after the given fold count.
func (c *Checkpointer) WritePartial(ck *Checkpoint, folds int) error {
	if ck.Partial == nil {
		return fmt.Errorf("fl: WritePartial without partial state")
	}
	obs.M.FLCheckpointPartials.Inc()
	return c.write(partialName(ck.Partial.Round, folds), ck)
}

// prune removes checkpoint files older than the Keep-th newest boundary.
// Best-effort: retention failures only log, they never fail a round.
func (c *Checkpointer) prune() {
	keep := c.Keep
	if keep <= 0 {
		keep = 2
	}
	names, err := checkpointNames(c.Dir)
	if err != nil {
		obs.L().Warn("fl: checkpoint prune", "err", err)
		return
	}
	// Walk newest-first; cut everything older than the keep-th boundary.
	cut := ""
	seen := 0
	for i := len(names) - 1; i >= 0; i-- {
		if strings.HasSuffix(names[i], "-f"+checkpointExt) {
			if seen++; seen == keep {
				cut = names[i]
				break
			}
		}
	}
	if cut == "" {
		return
	}
	for _, n := range names {
		if n >= cut {
			break
		}
		if err := os.Remove(filepath.Join(c.Dir, n)); err != nil {
			obs.L().Warn("fl: checkpoint prune", "file", n, "err", err)
		}
	}
}

// checkpointNames lists the directory's checkpoint files in lexical (=
// recency) order.
func checkpointNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.Type().IsRegular() && strings.HasPrefix(e.Name(), "ckpt-") &&
			strings.HasSuffix(e.Name(), checkpointExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// LatestCheckpoint loads the newest complete checkpoint in dir. Torn or
// corrupt files — a crashed non-atomic writer, a bad disk — fail their CRC
// and are skipped (counted into fl_checkpoint_torn_total), so the loader
// degrades to the previous complete checkpoint rather than resurrecting
// garbage. Returns (nil, "", nil) when dir holds no usable checkpoint.
func LatestCheckpoint(dir string) (*Checkpoint, string, error) {
	names, err := checkpointNames(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", nil
		}
		return nil, "", err
	}
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(dir, names[i])
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, "", err
		}
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			obs.M.FLCheckpointTorn.Inc()
			obs.L().Warn("fl: skipping torn checkpoint", "file", names[i], "err", err)
			continue
		}
		return ck, path, nil
	}
	return nil, "", nil
}
