package fl

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// buildFederation constructs a fresh identical federation (server + 6
// clients, one attacker, per-client seeded RNGs) for determinism tests.
// Every call rebuilds all state from the same seeds, so two federations
// trained under different worker counts are comparable bit for bit.
func buildFederation(t *testing.T) *Server {
	t.Helper()
	train, _, template, cfg := tinySetup(t, 21)
	const clients = 6
	shards := dataset.PartitionKLabel(train, clients, 3, 40, rand.New(rand.NewSource(22)))
	parts := make([]Participant, clients)
	for i := 0; i < clients; i++ {
		if i == 0 {
			poison := dataset.PoisonConfig{
				Trigger:     dataset.PixelPattern(3, dataset.Shape{C: 1, H: 16, W: 16}),
				VictimLabel: 9,
				TargetLabel: 2,
				Copies:      2,
			}
			parts[i] = NewAttacker(i, shards[i], template, cfg, poison, 3, 100)
		} else {
			parts[i] = NewClient(i, shards[i], template, cfg, 200+int64(i))
		}
	}
	return NewServer(template, parts, cfg, 300)
}

// TestRoundParallelBitIdentical is the tentpole determinism guarantee for
// the simulator: a federated round (and a full short training run) yields
// a bit-identical global model for worker counts 1, 2 and 8.
func TestRoundParallelBitIdentical(t *testing.T) {
	run := func(w int) []float64 {
		prev := parallel.SetWorkers(w)
		defer parallel.SetWorkers(prev)
		s := buildFederation(t)
		s.Train(nil)
		return s.Model.ParamsVector()
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: params length %d, want %d", w, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: param %d = %v, want %v (not bit-identical)", w, i, got[i], ref[i])
			}
		}
	}
}

// TestRoundParallelWithDropsBitIdentical checks that failure injection —
// whose randomness stream is shared across clients — stays deterministic
// when local training fans out.
func TestRoundParallelWithDropsBitIdentical(t *testing.T) {
	run := func(w int) ([]float64, [][]int) {
		prev := parallel.SetWorkers(w)
		defer parallel.SetWorkers(prev)
		s := buildFederation(t)
		s.Drop = &RandomDrop{P: 0.3, Rng: rand.New(rand.NewSource(77))}
		var ids [][]int
		for r := 0; r < s.Config().Rounds; r++ {
			ids = append(ids, s.Round(r))
		}
		return s.Model.ParamsVector(), ids
	}
	refParams, refIDs := run(1)
	for _, w := range []int{2, 8} {
		params, ids := run(w)
		for r := range refIDs {
			if len(ids[r]) != len(refIDs[r]) {
				t.Fatalf("workers=%d: round %d delivered %v, want %v", w, r, ids[r], refIDs[r])
			}
			for j := range ids[r] {
				if ids[r][j] != refIDs[r][j] {
					t.Fatalf("workers=%d: round %d delivered %v, want %v", w, r, ids[r], refIDs[r])
				}
			}
		}
		for i := range params {
			if params[i] != refParams[i] {
				t.Fatalf("workers=%d: param %d differs after training with drops", w, i)
			}
		}
	}
}

// TestFineTuneParallelBitIdentical covers the defense's federated
// fine-tuning loop, which also fans out per-client training.
func TestFineTuneParallelBitIdentical(t *testing.T) {
	run := func(w int) []float64 {
		prev := parallel.SetWorkers(w)
		defer parallel.SetWorkers(prev)
		s := buildFederation(t)
		m := s.Model.Clone()
		s.FineTune(m, 2)
		return m.ParamsVector()
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: fine-tuned param %d differs from serial", w, i)
			}
		}
	}
}
