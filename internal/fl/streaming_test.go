package fl

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// The streaming equivalence suite: every streaming round must be
// bit-identical — parameters AND telemetry — to the batch round it
// replaces, for every shard count, worker count and dropout set. This is
// the contract that lets the scale path ship without forking the
// repository's numeric baselines.

// streamRun drives a full quorum-federation training run with the given
// streaming knobs and returns final parameters plus per-round telemetry.
func streamRun(t *testing.T, workers, shards, window int, streaming bool,
	quorum float64, fail map[int]bool, wire bool) ([]float64, []RoundResult) {
	t.Helper()
	prev := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	var s *Server
	if wire {
		s = buildQuorumFederation(t, quorum, fail)
	} else {
		s = buildQuorumFederation(t, quorum, nil)
		if len(fail) > 0 {
			s.Drop = dropIDs(fail)
		}
	}
	s.cfg.Streaming = streaming
	s.cfg.Shards = shards
	s.cfg.StreamWindow = window
	var rounds []RoundResult
	for r := 0; r < s.Config().Rounds; r++ {
		rounds = append(rounds, s.RoundDetail(r))
	}
	return s.Model.ParamsVector(), rounds
}

// TestStreamingRoundsMatchBatchRounds is the tentpole table: streaming
// training runs, swept over shards {1,2,8} × workers {1,2,8}, against the
// single-worker batch reference — with no dropouts, a wire-failing
// minority, a policy-dropped minority, and a below-quorum round that must
// leave the model untouched on both paths.
func TestStreamingRoundsMatchBatchRounds(t *testing.T) {
	cases := []struct {
		name    string
		fail    map[int]bool
		wire    bool
		quorum  float64
		applied bool
	}{
		{"no dropouts", nil, false, 0.5, true},
		{"wire minority", map[int]bool{2: true, 4: true}, true, 0.5, true},
		{"policy minority", map[int]bool{1: true}, false, 0.5, true},
		{"below quorum", map[int]bool{1: true, 2: true, 3: true, 4: true}, true, 0.5, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			refParams, refRounds := streamRun(t, 1, 0, 0, false, tc.quorum, tc.fail, tc.wire)
			for _, res := range refRounds {
				if res.Applied != tc.applied {
					t.Fatalf("batch reference round %d applied=%v, want %v", res.Round, res.Applied, tc.applied)
				}
				if res.PeakInFlight != 0 {
					t.Fatalf("batch round reported PeakInFlight=%d, want 0", res.PeakInFlight)
				}
			}
			for _, shards := range []int{1, 2, 8} {
				for _, workers := range []int{1, 2, 8} {
					params, rounds := streamRun(t, workers, shards, 0, true, tc.quorum, tc.fail, tc.wire)
					for i := range params {
						if params[i] != refParams[i] {
							t.Fatalf("shards=%d workers=%d: param %d = %v, want %v (streaming diverges from batch)",
								shards, workers, i, params[i], refParams[i])
						}
					}
					for r, res := range rounds {
						want := refRounds[r]
						if !sameInts(res.Selected, want.Selected) ||
							!sameInts(res.Completed, want.Completed) ||
							!sameInts(res.Dropped, want.Dropped) ||
							res.Applied != want.Applied {
							t.Fatalf("shards=%d workers=%d round %d: %+v, want %+v", shards, workers, r, res, want)
						}
						if len(res.Completed) > 0 && res.PeakInFlight < 1 {
							t.Fatalf("shards=%d workers=%d round %d: PeakInFlight=%d with %d completions",
								shards, workers, r, res.PeakInFlight, len(res.Completed))
						}
					}
				}
			}
		})
	}
}

// TestStreamingWindowBoundsInFlight: with a window of 2, a cohort of 12
// never holds more than 2 trained-but-unfolded updates, whatever the
// worker count — the memory bound that lets cohort size outgrow RAM.
func TestStreamingWindowBoundsInFlight(t *testing.T) {
	_, _, template, cfg := tinySetup(t, 71)
	cfg.Streaming = true
	cfg.StreamWindow = 2
	n := template.NumParams()
	var parts []Participant
	for i := 0; i < 12; i++ {
		parts = append(parts, &fakeParticipant{id: i, delta: scaled(n, float64(i+1))})
	}
	for _, w := range []int{1, 8} {
		prev := parallel.SetWorkers(w)
		srv := NewServer(template, parts, cfg, 72)
		res := srv.RoundDetail(0)
		parallel.SetWorkers(prev)
		if !res.Applied || len(res.Completed) != 12 {
			t.Fatalf("workers=%d: round %+v", w, res)
		}
		if res.PeakInFlight < 1 || res.PeakInFlight > 2 {
			t.Fatalf("workers=%d: PeakInFlight=%d, want within [1,2]", w, res.PeakInFlight)
		}
	}
}

// TestStreamingWeightedMatchesBatch: SampleWeightedMean — weights, unknown
// clients defaulting to 1, η scaling — streams bit-identically to its
// batch AggregateWeighted, across shard counts.
func TestStreamingWeightedMatchesBatch(t *testing.T) {
	_, _, template, cfg := tinySetup(t, 73)
	n := template.NumParams()
	mk := func(streaming bool, shards int) *Server {
		c := cfg
		c.Streaming = streaming
		c.Shards = shards
		srv := NewServer(template, []Participant{
			&fakeParticipant{id: 0, delta: scaled(n, 0.25)}, // weight 300
			&fakeParticipant{id: 1, delta: scaled(n, -1)},   // weight 100
			&fakeParticipant{id: 2, delta: ones(n)},         // unknown: weight 1
		}, c, 74)
		srv.Agg = SampleWeightedMean{Counts: map[int]int{0: 300, 1: 100}, Eta: 0.5}
		return srv
	}
	ref := mk(false, 0)
	ref.Round(0)
	want := ref.Model.ParamsVector()
	for _, shards := range []int{1, 2, 8} {
		srv := mk(true, shards)
		res := srv.RoundDetail(0)
		if !res.Applied {
			t.Fatalf("shards=%d: streaming weighted round not applied", shards)
		}
		got := srv.Model.ParamsVector()
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: param %d = %v, want %v", shards, i, got[i], want[i])
			}
		}
	}
}

// batchOnlyAgg aggregates but cannot stream — the stand-in for the
// Byzantine-robust rules.
type batchOnlyAgg struct{}

func (batchOnlyAgg) Aggregate(deltas [][]float64) []float64 {
	return MeanAggregator{}.Aggregate(deltas)
}

// TestStreamingFallsBackForBatchOnlyRules: a streaming server over an
// aggregator that cannot fold runs the batch path — identical result,
// zero PeakInFlight — and counts the fallback.
func TestStreamingFallsBackForBatchOnlyRules(t *testing.T) {
	_, _, template, cfg := tinySetup(t, 75)
	n := template.NumParams()
	parts := []Participant{
		&fakeParticipant{id: 0, delta: ones(n)},
		&fakeParticipant{id: 1, delta: scaled(n, 3)},
	}
	ref := NewServer(template, parts, cfg, 76)
	ref.Agg = batchOnlyAgg{}
	ref.Round(0)

	cfg.Streaming = true
	srv := NewServer(template, parts, cfg, 76)
	srv.Agg = batchOnlyAgg{}
	before := obs.M.FLStreamFallbacks.Value()
	res := srv.RoundDetail(0)
	if got := obs.M.FLStreamFallbacks.Value() - before; got != 1 {
		t.Fatalf("fallback counter moved by %d, want 1", got)
	}
	if res.PeakInFlight != 0 {
		t.Fatalf("fallback round reported PeakInFlight=%d, want 0 (batch path)", res.PeakInFlight)
	}
	want := ref.Model.ParamsVector()
	got := srv.Model.ParamsVector()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("param %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestShardedFoldMatchesAggregate is the unit-level bit-identity check:
// folding random deltas one at a time equals the one-shot Aggregate,
// bitwise, for shard counts beyond the coordinate count and with and
// without weights.
func TestShardedFoldMatchesAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const dim, clients = 37, 9
	deltas := make([][]float64, clients)
	ids := make([]int, clients)
	for i := range deltas {
		ids[i] = i
		deltas[i] = make([]float64, dim)
		for j := range deltas[i] {
			deltas[i][j] = rng.NormFloat64()
		}
	}
	weighted := SampleWeightedMean{Counts: map[int]int{0: 7, 3: 2, 5: 11}, Eta: 0.9}
	for _, shards := range []int{1, 2, 3, 8, 64} {
		fold := MeanAggregator{}.BeginFold(dim, shards, nil)
		for i, d := range deltas {
			fold.Fold(ids[i], d)
		}
		got := fold.Finish()
		want := MeanAggregator{}.Aggregate(deltas)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("shards=%d: mean coord %d = %v, want %v", shards, j, got[j], want[j])
			}
		}

		wfold := weighted.BeginFold(dim, shards, nil)
		for i, d := range deltas {
			wfold.Fold(ids[i], d)
		}
		wgot := wfold.Finish()
		wwant := weighted.AggregateWeighted(deltas, ids)
		for j := range wwant {
			if wgot[j] != wwant[j] {
				t.Fatalf("shards=%d: weighted coord %d = %v, want %v", shards, j, wgot[j], wwant[j])
			}
		}
	}
}

// TestFoldContract pins the Fold lifecycle: nil aggregate when nothing
// folded, panic on reuse after Finish, on double Finish and on a
// mismatched delta length.
func TestFoldContract(t *testing.T) {
	if got := (MeanAggregator{}).BeginFold(4, 2, nil).Finish(); got != nil {
		t.Fatalf("empty fold returned %v, want nil", got)
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	f := MeanAggregator{}.BeginFold(4, 1, nil)
	mustPanic("length mismatch", func() { f.Fold(0, make([]float64, 3)) })
	f.Fold(0, make([]float64, 4))
	f.Finish()
	mustPanic("fold after finish", func() { f.Fold(1, make([]float64, 4)) })
	mustPanic("double finish", func() { f.Finish() })
}
