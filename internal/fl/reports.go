package fl

import (
	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
)

// Honest defense participation: clients record true average activations on
// their local shard and derive rank/vote reports from them (§IV-A). The
// raw activations never leave the client.
//
// With SetReportQuant(metrics.ReportInt8) the recorded vector passes
// through the affine int8 quantizer before ranking or voting, so the
// in-process report matches bit-for-bit what a remote peer reconstructs
// from the compact Acts8 wire payload (DESIGN.md §14).

var (
	_ core.ReportClient       = (*Client)(nil)
	_ core.AccuracyReporter   = (*Client)(nil)
	_ core.ActivationReporter = (*Client)(nil)
	_ core.ReportClient       = (*Attacker)(nil)
	_ core.AccuracyReporter   = (*Attacker)(nil)
	_ core.ActivationReporter = (*Attacker)(nil)
)

// SetReportQuant selects the precision of the client's activation reports.
func (c *Client) SetReportQuant(q metrics.ReportQuant) { c.quant = q }

// ReportQuant returns the client's report precision.
func (c *Client) ReportQuant() metrics.ReportQuant { return c.quant }

// ActivationReport implements core.ActivationReporter: the recorded mean
// activation per unit of the layer, always at float64 precision (the
// consumer quantizes at its configured boundary).
func (c *Client) ActivationReport(m *nn.Sequential, layerIdx int) []float64 {
	return metrics.LocalActivations(m, layerIdx, c.data, 0)
}

// RankReport implements core.ReportClient.
func (c *Client) RankReport(m *nn.Sequential, layerIdx int) []int {
	acts := metrics.LocalActivations(m, layerIdx, c.data, 0)
	return ranksAt(acts, c.quant)
}

// VoteReport implements core.ReportClient.
func (c *Client) VoteReport(m *nn.Sequential, layerIdx int, p float64) []bool {
	acts := metrics.LocalActivations(m, layerIdx, c.data, 0)
	return votesAt(acts, p, c.quant)
}

// ranksAt derives a rank report from recorded activations at the given
// precision.
func ranksAt(acts []float64, q metrics.ReportQuant) []int {
	if q == metrics.ReportInt8 {
		return core.RanksFromQuantized(metrics.QuantizeActivations(acts).Q)
	}
	return core.RanksFromActivations(acts)
}

// votesAt derives a vote report from recorded activations at the given
// precision.
func votesAt(acts []float64, p float64, q metrics.ReportQuant) []bool {
	if q == metrics.ReportInt8 {
		return core.VotesFromQuantized(metrics.QuantizeActivations(acts).Q, p)
	}
	return core.VotesFromActivations(acts, p)
}

// ReportAccuracy implements core.AccuracyReporter: the model's accuracy on
// the client's own shard.
func (c *Client) ReportAccuracy(m *nn.Sequential) float64 {
	return metrics.Accuracy(m, c.data, 0)
}

// Adaptive attacker reporting (§VI-B). With no flags set the attacker
// reports honestly from its clean shard, hiding among benign clients.

// AttackerDefenseBehavior toggles the discussion-section adaptive attacks
// against the defense itself.
type AttackerDefenseBehavior struct {
	// ManipulateRanks is §VI-B Attack 1: the attacker ranks neurons by the
	// maximum of their clean and triggered activations so backdoor neurons
	// look essential and survive pruning.
	ManipulateRanks bool
	// LieAccuracy makes the attacker report a perfect accuracy whenever the
	// server asks clients for pruning feedback, stalling the prune-stop
	// criterion.
	LieAccuracy bool
}

// SetDefenseBehavior installs the adaptive reporting behavior.
func (a *Attacker) SetDefenseBehavior(b AttackerDefenseBehavior) { a.defense = b }

// attackActivations returns activations that make trigger-sensitive
// neurons look as active as benign-essential ones: the element-wise max of
// clean-shard activations and fully-triggered-shard activations.
func (a *Attacker) attackActivations(m *nn.Sequential, layerIdx int) []float64 {
	clean := metrics.LocalActivations(m, layerIdx, a.clean, 0)
	triggered := &dataset.Dataset{Shape: a.clean.Shape, Classes: a.clean.Classes}
	for _, s := range a.clean.Samples {
		p := s.Clone()
		a.Poison.Trigger.Apply(p.X, a.clean.Shape)
		triggered.Samples = append(triggered.Samples, p)
	}
	trig := metrics.LocalActivations(m, layerIdx, triggered, 0)
	out := make([]float64, len(clean))
	for i := range out {
		out[i] = clean[i]
		if trig[i] > out[i] {
			out[i] = trig[i]
		}
	}
	return out
}

// SetReportQuant selects the precision of the attacker's reports.
func (a *Attacker) SetReportQuant(q metrics.ReportQuant) { a.quant = q }

// ActivationReport implements core.ActivationReporter for the attacker:
// manipulated activations when the adaptive attack is on, honest clean-
// shard activations otherwise.
func (a *Attacker) ActivationReport(m *nn.Sequential, layerIdx int) []float64 {
	if a.defense.ManipulateRanks {
		return a.attackActivations(m, layerIdx)
	}
	return metrics.LocalActivations(m, layerIdx, a.clean, 0)
}

// RankReport implements core.ReportClient for the attacker.
func (a *Attacker) RankReport(m *nn.Sequential, layerIdx int) []int {
	return ranksAt(a.ActivationReport(m, layerIdx), a.quant)
}

// VoteReport implements core.ReportClient for the attacker.
func (a *Attacker) VoteReport(m *nn.Sequential, layerIdx int, p float64) []bool {
	return votesAt(a.ActivationReport(m, layerIdx), p, a.quant)
}

// ReportAccuracy implements core.AccuracyReporter for the attacker.
func (a *Attacker) ReportAccuracy(m *nn.Sequential) float64 {
	if a.defense.LieAccuracy {
		return 1
	}
	return metrics.Accuracy(m, a.clean, 0)
}

// ReportClients adapts a participant slice to the defense's interface.
// Participants that do not implement core.ReportClient are skipped.
func ReportClients(parts []Participant) []core.ReportClient {
	out := make([]core.ReportClient, 0, len(parts))
	for _, p := range parts {
		if rc, ok := p.(core.ReportClient); ok {
			out = append(out, rc)
		}
	}
	return out
}
