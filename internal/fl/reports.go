package fl

import (
	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
)

// Honest defense participation: clients record true average activations on
// their local shard and derive rank/vote reports from them (§IV-A). The
// raw activations never leave the client.

var (
	_ core.ReportClient     = (*Client)(nil)
	_ core.AccuracyReporter = (*Client)(nil)
	_ core.ReportClient     = (*Attacker)(nil)
	_ core.AccuracyReporter = (*Attacker)(nil)
)

// RankReport implements core.ReportClient.
func (c *Client) RankReport(m *nn.Sequential, layerIdx int) []int {
	acts := metrics.LocalActivations(m, layerIdx, c.data, 0)
	return core.RanksFromActivations(acts)
}

// VoteReport implements core.ReportClient.
func (c *Client) VoteReport(m *nn.Sequential, layerIdx int, p float64) []bool {
	acts := metrics.LocalActivations(m, layerIdx, c.data, 0)
	return core.VotesFromActivations(acts, p)
}

// ReportAccuracy implements core.AccuracyReporter: the model's accuracy on
// the client's own shard.
func (c *Client) ReportAccuracy(m *nn.Sequential) float64 {
	return metrics.Accuracy(m, c.data, 0)
}

// Adaptive attacker reporting (§VI-B). With no flags set the attacker
// reports honestly from its clean shard, hiding among benign clients.

// AttackerDefenseBehavior toggles the discussion-section adaptive attacks
// against the defense itself.
type AttackerDefenseBehavior struct {
	// ManipulateRanks is §VI-B Attack 1: the attacker ranks neurons by the
	// maximum of their clean and triggered activations so backdoor neurons
	// look essential and survive pruning.
	ManipulateRanks bool
	// LieAccuracy makes the attacker report a perfect accuracy whenever the
	// server asks clients for pruning feedback, stalling the prune-stop
	// criterion.
	LieAccuracy bool
}

// SetDefenseBehavior installs the adaptive reporting behavior.
func (a *Attacker) SetDefenseBehavior(b AttackerDefenseBehavior) { a.defense = b }

// attackActivations returns activations that make trigger-sensitive
// neurons look as active as benign-essential ones: the element-wise max of
// clean-shard activations and fully-triggered-shard activations.
func (a *Attacker) attackActivations(m *nn.Sequential, layerIdx int) []float64 {
	clean := metrics.LocalActivations(m, layerIdx, a.clean, 0)
	triggered := &dataset.Dataset{Shape: a.clean.Shape, Classes: a.clean.Classes}
	for _, s := range a.clean.Samples {
		p := s.Clone()
		a.Poison.Trigger.Apply(p.X, a.clean.Shape)
		triggered.Samples = append(triggered.Samples, p)
	}
	trig := metrics.LocalActivations(m, layerIdx, triggered, 0)
	out := make([]float64, len(clean))
	for i := range out {
		out[i] = clean[i]
		if trig[i] > out[i] {
			out[i] = trig[i]
		}
	}
	return out
}

// RankReport implements core.ReportClient for the attacker.
func (a *Attacker) RankReport(m *nn.Sequential, layerIdx int) []int {
	if a.defense.ManipulateRanks {
		return core.RanksFromActivations(a.attackActivations(m, layerIdx))
	}
	return core.RanksFromActivations(metrics.LocalActivations(m, layerIdx, a.clean, 0))
}

// VoteReport implements core.ReportClient for the attacker.
func (a *Attacker) VoteReport(m *nn.Sequential, layerIdx int, p float64) []bool {
	if a.defense.ManipulateRanks {
		return core.VotesFromActivations(a.attackActivations(m, layerIdx), p)
	}
	return core.VotesFromActivations(metrics.LocalActivations(m, layerIdx, a.clean, 0), p)
}

// ReportAccuracy implements core.AccuracyReporter for the attacker.
func (a *Attacker) ReportAccuracy(m *nn.Sequential) float64 {
	if a.defense.LieAccuracy {
		return 1
	}
	return metrics.Accuracy(m, a.clean, 0)
}

// ReportClients adapts a participant slice to the defense's interface.
// Participants that do not implement core.ReportClient are skipped.
func ReportClients(parts []Participant) []core.ReportClient {
	out := make([]core.ReportClient, 0, len(parts))
	for _, p := range parts {
		if rc, ok := p.(core.ReportClient); ok {
			out = append(out, rc)
		}
	}
	return out
}
