package fl

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
)

// dropAll fails every client.
type dropAll struct{}

func (dropAll) Dropped(int, int) bool { return true }

// dropIDs fails a fixed set of client IDs.
type dropIDs map[int]bool

func (d dropIDs) Dropped(id, _ int) bool { return d[id] }

func TestRoundWithAllClientsDroppedIsNoOp(t *testing.T) {
	_, _, template, cfg := tinySetup(t, 60)
	p := &fakeParticipant{id: 0, delta: ones(template.NumParams())}
	srv := NewServer(template, []Participant{p}, cfg, 61)
	srv.Drop = dropAll{}
	before := srv.Model.ParamsVector()
	ids := srv.Round(0)
	if len(ids) != 0 {
		t.Fatalf("round reported %d survivors, want 0", len(ids))
	}
	after := srv.Model.ParamsVector()
	for i := range after {
		if after[i] != before[i] {
			t.Fatal("model changed despite total client failure")
		}
	}
}

func TestRoundSkipsDroppedClients(t *testing.T) {
	_, _, template, cfg := tinySetup(t, 62)
	n := template.NumParams()
	parts := []Participant{
		&fakeParticipant{id: 0, delta: ones(n)},
		&fakeParticipant{id: 1, delta: scaled(n, 100)}, // will be dropped
	}
	srv := NewServer(template, parts, cfg, 63)
	srv.Drop = dropIDs{1: true}
	before := srv.Model.ParamsVector()
	ids := srv.Round(0)
	if len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("survivors %v, want [0]", ids)
	}
	after := srv.Model.ParamsVector()
	for i := range after {
		if after[i] != before[i]+1 {
			t.Fatal("aggregate included the dropped client's delta")
		}
	}
}

func TestRandomDropIsDeterministicPerSeed(t *testing.T) {
	a := &RandomDrop{P: 0.5, Rng: rand.New(rand.NewSource(1))}
	b := &RandomDrop{P: 0.5, Rng: rand.New(rand.NewSource(1))}
	for i := 0; i < 100; i++ {
		if a.Dropped(0, i) != b.Dropped(0, i) {
			t.Fatal("RandomDrop differs across equal seeds")
		}
	}
}

// TestTrainingSurvivesModerateDropout checks that federated training still
// learns when 30% of client updates are lost each round.
func TestTrainingSurvivesModerateDropout(t *testing.T) {
	if testing.Short() {
		t.Skip("training under dropout is slow")
	}
	train, test, template, cfg := tinySetup(t, 64)
	cfg.Rounds = 12
	cfg.LocalEpochs = 2
	rng := rand.New(rand.NewSource(65))
	// IID shards keep the check about dropout, not non-IID convergence.
	shards := dataset.PartitionKLabel(train, 5, 10, 50, rng)
	var parts []Participant
	for i, shard := range shards {
		parts = append(parts, NewClient(i, shard, template, cfg, int64(70+i)))
	}
	srv := NewServer(template, parts, cfg, 66)
	srv.Drop = &RandomDrop{P: 0.3, Rng: rand.New(rand.NewSource(67))}
	srv.Train(nil)
	if acc := metrics.Accuracy(srv.Model, test, 0); acc < 0.5 {
		t.Fatalf("training under 30%% dropout reached only %.2f accuracy", acc)
	}
}
