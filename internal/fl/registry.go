package fl

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/fedcleanse/fedcleanse/internal/obs"
)

// ClientFactory materializes the participant for a registered client ID.
// The registry calls it once per sampled cohort slot per round; the
// returned participant lives only for that round, so a million registered
// clients cost a million integers, not a million resident models.
type ClientFactory func(id int) Participant

// Registry tracks a federation's registered population without holding a
// Participant per client: a registered-but-idle client is one ID in a
// slice plus one set entry — O(1) memory — and only the clients sampled
// into a round's cohort are materialized, through the factory. This is
// what separates population size (how many clients exist) from cohort
// size (how many train per round), the scaling split the ROADMAP's
// 100k–1M-client target requires.
//
// Sampling is deterministic: SampleIDs draws k registered IDs without
// replacement by a partial Fisher–Yates shuffle over the registration
// order, consuming only the caller's seeded *rand.Rand — O(k) time and
// memory, never O(population). Two registries with equal registration
// sequences and equal RNG states sample identical cohorts.
type Registry struct {
	mu      sync.RWMutex
	ids     []int
	seen    map[int]struct{}
	factory ClientFactory
}

// NewRegistry builds an empty registry over the given factory.
func NewRegistry(factory ClientFactory) *Registry {
	if factory == nil {
		panic("fl: NewRegistry with nil factory")
	}
	return &Registry{factory: factory, seen: make(map[int]struct{})}
}

// Register adds client IDs to the population, ignoring duplicates, and
// updates the fl_registered_clients gauge.
func (r *Registry) Register(ids ...int) {
	r.mu.Lock()
	for _, id := range ids {
		if _, dup := r.seen[id]; dup {
			continue
		}
		r.seen[id] = struct{}{}
		r.ids = append(r.ids, id)
	}
	n := len(r.ids)
	r.mu.Unlock()
	obs.M.FLRegisteredClients.Set(int64(n))
}

// RegisterRange registers the half-open ID range [lo, hi).
func (r *Registry) RegisterRange(lo, hi int) {
	if hi <= lo {
		return
	}
	ids := make([]int, 0, hi-lo)
	for id := lo; id < hi; id++ {
		ids = append(ids, id)
	}
	r.Register(ids...)
}

// Len reports the registered population size.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ids)
}

// SampleIDs draws k distinct registered IDs using rng. k <= 0 or
// k >= Len() returns the whole population in registration order.
func (r *Registry) SampleIDs(k int, rng *rand.Rand) []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.ids)
	if n == 0 {
		return nil
	}
	if k <= 0 || k >= n {
		return append([]int(nil), r.ids...)
	}
	out := make([]int, k)
	for i, idx := range sampleIndices(n, k, rng) {
		out[i] = r.ids[idx]
	}
	return out
}

// Cohort samples k clients and materializes them through the factory, in
// sampled order. The returned participants are the round's working set;
// callers drop them when the round ends, returning the registry to its
// IDs-only footprint.
func (r *Registry) Cohort(k int, rng *rand.Rand) []Participant {
	ids := r.SampleIDs(k, rng)
	parts := make([]Participant, len(ids))
	for i, id := range ids {
		p := r.factory(id)
		if p == nil {
			panic(fmt.Sprintf("fl: factory returned nil participant for client %d", id))
		}
		parts[i] = p
	}
	return parts
}

// Materialize resolves explicit client IDs through the factory, in the
// given order — the resume path's way to rebuild a checkpointed cohort
// without consuming any sampling randomness.
func (r *Registry) Materialize(ids []int) []Participant {
	parts := make([]Participant, len(ids))
	for i, id := range ids {
		p := r.factory(id)
		if p == nil {
			panic(fmt.Sprintf("fl: factory returned nil participant for client %d", id))
		}
		parts[i] = p
	}
	return parts
}

// sampleIndices draws k distinct indices from [0,n) by a partial
// Fisher–Yates shuffle whose displaced entries live in a map, so cost is
// O(k) regardless of n. The draw sequence is a pure function of the RNG
// state, which keeps cohort selection reproducible across runs and
// processes.
func sampleIndices(n, k int, rng *rand.Rand) []int {
	swapped := make(map[int]int, 2*k)
	at := func(i int) int {
		if v, ok := swapped[i]; ok {
			return v
		}
		return i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		out[i] = at(j)
		swapped[j] = at(i)
	}
	return out
}
