package fl

import (
	"math/rand"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
)

// Attacker is a malicious participant implementing the paper's threat model
// (§III-B/C): it trains on a poisoned local dataset (clean samples plus
// triggered victim-label copies relabeled to the target) and amplifies its
// update by the model-replacement coefficient γ so the backdoor survives
// averaging.
type Attacker struct {
	id      int
	clean   *dataset.Dataset
	poison  *dataset.Dataset
	model   *nn.Sequential
	cfg     Config
	rng     *rand.Rand
	trainer *Trainer

	// Gamma is the attack-update amplification coefficient (1 ≤ γ ≤ N).
	Gamma float64
	// ScaleFromRound delays the γ amplification until the given round:
	// §III-C notes the replacement algebra assumes benign deviations cancel,
	// which only holds as the global model converges, so amplifying from
	// round 0 mostly injects noise. The attacker still trains on poisoned
	// data (unscaled) before this round.
	ScaleFromRound int
	// Poison describes the backdoor task.
	Poison dataset.PoisonConfig
	// statMask marks running-statistic positions, which are never scaled
	// (scaling statistics would corrupt the global model and expose the
	// attack).
	statMask []bool

	// SelfClipDelta, when > 0, makes the attacker clip its own extreme
	// weights to μ ± SelfClipDelta·σ in the last conv layer before
	// submitting the update — the adaptive "AW-aware" attacker of §VI-B.
	SelfClipDelta float64

	// AvoidLayer/AvoidUnits implement §VI-B Attack 2, the pruning-aware
	// attack: the attacker (assumed to have obtained the global pruning
	// mask) prunes those units of its local model before training, forcing
	// the backdoor into neurons the defense will keep.
	AvoidLayer int
	AvoidUnits []int

	// defense holds the adaptive reporting behavior (see reports.go).
	defense AttackerDefenseBehavior
	// quant selects the activation report precision (see reports.go).
	quant metrics.ReportQuant
}

var _ Participant = (*Attacker)(nil)

// NewAttacker builds a model-replacement backdoor attacker with the given
// poisoning task and amplification γ.
func NewAttacker(id int, data *dataset.Dataset, template *nn.Sequential, cfg Config,
	poison dataset.PoisonConfig, gamma float64, seed int64) *Attacker {
	// The attacker trains its local model longer than honest clients: the
	// backdoor must overcome the clean supervision on near-identical victim
	// images, which a couple of epochs cannot do reliably.
	cfg = cfg.withDefaults()
	cfg.LocalEpochs *= 3
	return &Attacker{
		id:       id,
		clean:    data,
		poison:   dataset.PoisonTrainSet(data, poison),
		model:    template.Clone(),
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(seed)),
		trainer:  NewTrainer(cfg),
		Gamma:    gamma,
		Poison:   poison,
		statMask: template.StatMask(),
	}
}

// ID implements Participant.
func (a *Attacker) ID() int { return a.id }

// Dataset implements Participant. The attacker reports its clean shard:
// the poisoned copies exist only inside its local training loop, exactly
// as in the paper's threat model where the server never sees client data.
func (a *Attacker) Dataset() *dataset.Dataset { return a.clean }

// PoisonedDataset exposes the attacker's actual training mixture; the
// defense's fine-tuning step uses it because attackers "also participate
// in this process" (§IV-B).
func (a *Attacker) PoisonedDataset() *dataset.Dataset { return a.poison }

// LocalUpdate implements Participant: train to x_atk on the poisoned
// mixture, then submit γ·(x_atk − w_t) (running statistics unscaled).
func (a *Attacker) LocalUpdate(global []float64, round int) []float64 {
	a.model.SetParamsVector(global)
	if len(a.AvoidUnits) > 0 {
		// Pruning-aware attack: train with the known-to-be-pruned units
		// already dead so the backdoor cannot rely on them. The local prune
		// masks are scoped to the attacker's working model; the submitted
		// delta simply carries zeros at those units.
		for _, u := range a.AvoidUnits {
			a.model.PruneModelUnit(a.AvoidLayer, u)
		}
	}
	a.trainer.Train(a.model, a.poison, a.rng)
	if a.SelfClipDelta > 0 {
		selfClipLastConv(a.model, a.SelfClipDelta)
	}
	gamma := a.Gamma
	if round < a.ScaleFromRound {
		gamma = 1
	}
	after := a.model.ParamsVector()
	d := make([]float64, len(after))
	for i := range d {
		d[i] = after[i] - global[i]
		if !a.statMask[i] {
			d[i] *= gamma
		}
	}
	return d
}

// selfClipLastConv zeroes weights outside μ ± Δ·σ in the model's last conv
// layer, mirroring the server-side AW defense so the submitted model
// carries no extreme values.
func selfClipLastConv(m *nn.Sequential, delta float64) {
	li := m.LastConvIndex()
	if li < 0 {
		return
	}
	conv := m.Layer(li).(*nn.Conv2D)
	w := conv.W.Value
	mu, sigma := w.Mean(), w.Std()
	lo, hi := mu-delta*sigma, mu+delta*sigma
	for i, v := range w.Data {
		if v < lo || v > hi {
			w.Data[i] = 0
		}
	}
}

// NewDBAAttackers builds the Distributed Backdoor Attack cohort (§V-A):
// the global trigger is decomposed into len(shards) disjoint local
// patterns, one per attacker; evaluation against the cohort uses the full
// global trigger. IDs are assigned sequentially starting at firstID.
func NewDBAAttackers(firstID int, shards []*dataset.Dataset, template *nn.Sequential,
	cfg Config, global dataset.PoisonConfig, gamma float64, seed int64) []*Attacker {
	parts := global.Trigger.Decompose(len(shards))
	out := make([]*Attacker, len(shards))
	for i, shard := range shards {
		local := global
		local.Trigger = parts[i]
		out[i] = NewAttacker(firstID+i, shard, template, cfg, local, gamma, seed+int64(i))
	}
	return out
}

// Model exposes the attacker's local working model for diagnostics.
func (a *Attacker) Model() *nn.Sequential { return a.model }
