package fl

import (
	"fmt"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/obs"
)

// RoundAudit is one federated round's flight-recorder record (DESIGN.md
// §16): the structured, queryable counterpart of the round's log lines.
// Selected/Completed/Dropped/Errors/Applied/PeakInFlight mirror the
// round's RoundResult field for field; the rest is round context a
// post-mortem needs — the trace ID tying the record to its span tree, the
// quorum threshold in effect, retry/attempt counts, the resume prefix of
// an interrupted round, and the boundary checkpoint that covers it.
// TestAccuracy and AttackSuccessRate are attached by the driver's
// AuditAmend hook when it evaluates the round; they stay nil otherwise.
type RoundAudit struct {
	Round int         `json:"round"`
	Trace obs.TraceID `json:"trace"`

	// RoundResult mirror (see RoundResult for semantics).
	Selected     []int          `json:"selected"`
	Completed    []int          `json:"completed"`
	Dropped      []int          `json:"dropped"`
	Errors       map[int]string `json:"errors,omitempty"`
	Applied      bool           `json:"applied"`
	PeakInFlight int            `json:"peak_in_flight"`

	// Round context.
	Quorum     int    `json:"quorum"` // updates required to apply
	Aggregator string `json:"aggregator"`
	Streaming  bool   `json:"streaming"`
	Resumed    bool   `json:"resumed"`
	// ResumePrefix is the fold count restored from the partial checkpoint
	// when Resumed; the round re-collected only the suffix past it.
	ResumePrefix int `json:"resume_prefix"`
	// Retries/Attempts are the transport retry and HTTP attempt counts
	// observed during this round (counter deltas across the round; exact
	// when one server drives the process's transport, which is every
	// shipped driver).
	Retries  uint64 `json:"retries"`
	Attempts uint64 `json:"attempts"`
	// Checkpoint is the most recent checkpoint file written by the end of
	// the round ("" when the server runs without durability).
	Checkpoint string  `json:"checkpoint,omitempty"`
	DurationMS float64 `json:"duration_ms"`

	// Evaluation results, attached via AuditAmend when the driver
	// evaluates this round.
	TestAccuracy      *float64 `json:"test_accuracy,omitempty"`
	AttackSuccessRate *float64 `json:"attack_success_rate,omitempty"`
}

// auditFromResult builds the audit record mirroring res.
func auditFromResult(res *RoundResult) RoundAudit {
	a := RoundAudit{
		Round:        res.Round,
		Selected:     res.Selected,
		Completed:    res.Completed,
		Dropped:      res.Dropped,
		Applied:      res.Applied,
		PeakInFlight: res.PeakInFlight,
	}
	if len(res.Errs) > 0 {
		a.Errors = make(map[int]string, len(res.Errs))
		for id, err := range res.Errs {
			a.Errors[id] = err.Error()
		}
	}
	return a
}

// recordAudit writes one round's audit record to the installed flight
// recorder (a no-op without one). It runs once per round, after the
// round's span has ended — far off every alloc-gated path — and a failed
// write only logs: auditing never fails a round.
func (s *Server) recordAudit(res *RoundResult, trace obs.TraceID, dur time.Duration,
	resumed bool, resumePrefix int, retries, attempts uint64) {
	if s.Audit == nil {
		return
	}
	a := auditFromResult(res)
	a.Trace = trace
	a.Quorum = s.quorumCount(len(res.Selected))
	a.Aggregator = fmt.Sprintf("%T", s.aggregator())
	a.Streaming = s.cfg.Streaming
	a.Resumed = resumed
	a.ResumePrefix = resumePrefix
	a.Retries = retries
	a.Attempts = attempts
	a.DurationMS = float64(dur.Nanoseconds()) / 1e6
	if s.ckpt != nil {
		a.Checkpoint = s.ckpt.LastPath()
	}
	if s.AuditAmend != nil {
		s.AuditAmend(&a)
	}
	if err := s.Audit.Record(a); err != nil {
		obs.L().Warn("fl: audit record failed", "round", res.Round, "err", err)
	}
}
