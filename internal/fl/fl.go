// Package fl simulates the paper's federated-learning setting: a server
// holding a global model, benign clients training on non-IID local shards,
// and malicious clients mounting backdoor attacks (BadNets pixel patterns
// with model-replacement scaling, and the Distributed Backdoor Attack).
//
// The aggregation rule is the paper's simplified FedAvg (§III-A): every
// selected client contributes an equal-weight update delta,
//
//	w_{t+1} = w_t + (1/N) Σ Δw^i_{t+1}.
//
// Alternative Byzantine-robust rules (Krum, trimmed mean, ...) plug in
// through the Aggregator interface and live in internal/robust.
package fl

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Config bundles the federated training hyperparameters.
type Config struct {
	// Rounds of federated aggregation.
	Rounds int
	// SelectPerRound clients participate in each round; 0 means all.
	SelectPerRound int
	// LocalEpochs each client trains per round.
	LocalEpochs int
	// BatchSize of local SGD.
	BatchSize int
	// LR, Momentum, WeightDecay configure each client's local optimizer.
	LR, Momentum, WeightDecay float64
	// Quorum is the minimum fraction (0,1] of the selected cohort whose
	// updates must arrive for the round's aggregate to be applied; a
	// round below quorum is recorded but leaves the model untouched. 0
	// keeps the historical behavior of applying with any single update.
	Quorum float64
	// RoundTimeout bounds one round's update collection; when it expires
	// the round context is cancelled, which aborts in-flight remote calls
	// and records the stragglers as dropouts. 0 means no deadline
	// (in-process participants cannot be cancelled either way).
	RoundTimeout time.Duration
	// Streaming folds each arriving update into a running aggregate and
	// discards it (DESIGN.md §12), holding O(StreamWindow) deltas instead
	// of the whole cohort — bit-identical to the batch round for
	// aggregation rules that implement StreamingAggregator; other rules
	// silently fall back to the batch path.
	Streaming bool
	// Shards is the number of aggregator goroutines a streaming round
	// folds across, each owning a contiguous slice of the parameter
	// vector; 0 means the parallel worker count. Any value produces
	// bit-identical aggregates.
	Shards int
	// StreamWindow bounds how many clients a streaming round trains
	// concurrently (and therefore how many un-folded updates exist at
	// once); 0 means twice the parallel worker count.
	StreamWindow int
}

// withDefaults fills unset fields with the values used throughout the
// paper-scale experiments.
func (c Config) withDefaults() Config {
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 20
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	return c
}

// Participant is one federated client, benign or malicious.
type Participant interface {
	// ID identifies the client.
	ID() int
	// LocalUpdate trains on the client's data starting from the global
	// parameter vector and returns the update delta (x_i − w_t).
	LocalUpdate(global []float64, round int) []float64
	// Dataset exposes the client's local shard (the defense uses it for
	// activation recording and fine-tuning participation).
	Dataset() *dataset.Dataset
}

// FallibleParticipant is implemented by participants whose local update
// can fail — remote stubs over a real network (transport.RemoteClient).
// Round drivers prefer TryLocalUpdate over LocalUpdate when available:
// an error is recorded as that client dropping out of the round, exactly
// like a DropPolicy drop, and the round context is threaded through so a
// round deadline cancels in-flight requests.
type FallibleParticipant interface {
	Participant
	// TryLocalUpdate is LocalUpdate with failure reporting and
	// cancellation.
	TryLocalUpdate(ctx context.Context, global []float64, round int) ([]float64, error)
}

// Client is an honest participant running plain local SGD.
type Client struct {
	id      int
	data    *dataset.Dataset
	model   *nn.Sequential
	cfg     Config
	rng     *rand.Rand
	trainer *Trainer
	quant   metrics.ReportQuant
}

var _ Participant = (*Client)(nil)

// NewClient builds an honest client. template provides the architecture
// and is cloned, not retained.
func NewClient(id int, data *dataset.Dataset, template *nn.Sequential, cfg Config, seed int64) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		id:      id,
		data:    data,
		model:   template.Clone(),
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(seed)),
		trainer: NewTrainer(cfg),
	}
}

// ID implements Participant.
func (c *Client) ID() int { return c.id }

// Dataset implements Participant.
func (c *Client) Dataset() *dataset.Dataset { return c.data }

// LocalUpdate implements Participant.
func (c *Client) LocalUpdate(global []float64, _ int) []float64 {
	c.model.SetParamsVector(global)
	c.trainer.Train(c.model, c.data, c.rng)
	return deltaOf(c.model.ParamsVector(), global)
}

// Model exposes the client's working model (used by defense helpers that
// need a same-architecture scratch model).
func (c *Client) Model() *nn.Sequential { return c.model }

// Trainer runs minibatch SGD while owning every reusable piece of per-step
// state: the optimizer (velocity buffers), the batch assembly buffers and
// the loss-gradient scratch. A client keeps one Trainer for its whole
// federated lifetime, so after the first step of the first round the
// training hot path performs no heap allocations. A Trainer is
// single-goroutine state, like the model it trains; concurrent clients
// each own their own (internal/parallel runs one client per worker).
type Trainer struct {
	cfg     Config
	opt     *nn.SGD
	scratch tensor.Arena
	labels  []int
}

// NewTrainer builds a reusable training loop for the given hyperparameters.
func NewTrainer(cfg Config) *Trainer {
	cfg = cfg.withDefaults()
	return &Trainer{
		cfg: cfg,
		opt: nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay),
	}
}

// Train runs cfg.LocalEpochs of minibatch SGD over data on model m, in
// place. Momentum restarts from zero on every call, matching a freshly
// constructed optimizer — each federated local update is an independent
// SGD run — while the velocity buffers themselves are reused.
func (t *Trainer) Train(m *nn.Sequential, data *dataset.Dataset, rng *rand.Rand) {
	t.opt.ZeroVelocity()
	var x *tensor.Tensor
	for e := 0; e < t.cfg.LocalEpochs; e++ {
		data.Shuffle(rng)
		for lo := 0; lo < data.Len(); lo += t.cfg.BatchSize {
			hi := lo + t.cfg.BatchSize
			if hi > data.Len() {
				hi = data.Len()
			}
			s := data.Shape
			x = t.scratch.Get("x", hi-lo, s.C, s.H, s.W)
			x, t.labels = data.BatchInto(lo, hi, x, t.labels)
			m.ZeroGrads()
			logits := m.Forward(x, true)
			dlogits := t.scratch.GetLike("dlogits", logits)
			nn.SoftmaxXentInto(dlogits, logits, t.labels)
			// BackwardParams: same parameter gradients as Backward, minus
			// the first layer's input gradient, which SGD never reads.
			m.BackwardParams(dlogits)
			t.opt.Step(m)
		}
	}
}

// TrainLocal runs cfg.LocalEpochs of minibatch SGD over data on model m,
// in place. It is the single training loop shared by honest clients,
// attackers and the fine-tuning phase of the defense. Callers that train
// repeatedly should hold a Trainer instead to reuse its buffers.
func TrainLocal(m *nn.Sequential, data *dataset.Dataset, cfg Config, rng *rand.Rand) {
	NewTrainer(cfg).Train(m, data, rng)
}

// deltaOf returns after − before element-wise.
func deltaOf(after, before []float64) []float64 {
	if len(after) != len(before) {
		panic(fmt.Sprintf("fl: delta length mismatch %d vs %d", len(after), len(before)))
	}
	d := make([]float64, len(after))
	for i := range d {
		d[i] = after[i] - before[i]
	}
	return d
}
