package fl

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
	"github.com/fedcleanse/fedcleanse/internal/wire"
)

var updateCorpus = flag.Bool("update", false, "regenerate checked-in fuzz corpora")

// TestCountingSourceBitIdentity pins the contract rng.go relies on: the
// counting wrapper must emit exactly the sequences of a bare
// rand.New(rand.NewSource(seed)) for every derived draw the server uses.
func TestCountingSourceBitIdentity(t *testing.T) {
	ref := rand.New(rand.NewSource(17))
	sr := newSeededRand(17)
	for i := 0; i < 200; i++ {
		switch i % 4 {
		case 0:
			if a, b := ref.Int63(), sr.rng.Int63(); a != b {
				t.Fatalf("Int63 draw %d: %d vs %d", i, a, b)
			}
		case 1:
			if a, b := ref.Intn(1000), sr.rng.Intn(1000); a != b {
				t.Fatalf("Intn draw %d: %d vs %d", i, a, b)
			}
		case 2:
			if a, b := ref.Float64(), sr.rng.Float64(); a != b {
				t.Fatalf("Float64 draw %d: %v vs %v", i, a, b)
			}
		case 3:
			a, b := ref.Perm(7), sr.rng.Perm(7)
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("Perm draw %d: %v vs %v", i, a, b)
				}
			}
		}
	}
}

// TestRNGStateRestore: capturing mid-stream and restoring into a fresh
// generator replays the identical continuation.
func TestRNGStateRestore(t *testing.T) {
	sr := newSeededRand(41)
	for i := 0; i < 37; i++ {
		sr.rng.Intn(100)
	}
	st := sr.State()
	var want []int
	for i := 0; i < 50; i++ {
		want = append(want, sr.rng.Intn(1<<20))
	}
	fresh := newSeededRand(0)
	fresh.Restore(st)
	if got := fresh.State(); got != st {
		t.Fatalf("restored state %+v, want %+v", got, st)
	}
	for i, w := range want {
		if got := fresh.rng.Intn(1 << 20); got != w {
			t.Fatalf("draw %d after restore: %d, want %d", i, got, w)
		}
	}
}

// TestCohortSelectionResumes is the satellite-6 pin: a server restored
// from a checkpoint must select the same cohorts, for both the resident
// Perm path and the registry sampling path.
func TestCohortSelectionResumes(t *testing.T) {
	template := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rand.New(rand.NewSource(7)))
	cfg := Config{Rounds: 6, SelectPerRound: 4, Quorum: 0.5}
	build := func() *Server {
		parts := make([]Participant, 9)
		for i := range parts {
			parts[i] = &SyntheticClient{Id: i, Seed: 5}
		}
		return NewServer(template, parts, cfg, 33)
	}
	buildReg := func() *Server {
		reg := NewRegistry(func(id int) Participant { return &SyntheticClient{Id: id, Seed: 5} })
		reg.RegisterRange(0, 9)
		return NewRegistryServer(template, reg, cfg, 33)
	}
	for name, mk := range map[string]func() *Server{"resident": build, "registry": buildReg} {
		t.Run(name, func(t *testing.T) {
			ref := mk()
			var want [][]int
			for r := 0; r < 5; r++ {
				var ids []int
				for _, p := range ref.selectClients() {
					ids = append(ids, p.ID())
				}
				want = append(want, ids)
				if r == 1 {
					// Checkpoint after the round-1 draw, resume a fresh server.
					ck := ref.CheckpointAt(2)
					data := EncodeCheckpoint(ck)
					back, err := DecodeCheckpoint(data)
					if err != nil {
						t.Fatal(err)
					}
					res := mk()
					if err := res.ResumeFrom(back); err != nil {
						t.Fatal(err)
					}
					for rr := 2; rr < 5; rr++ {
						var got []int
						for _, p := range res.selectClients() {
							got = append(got, p.ID())
						}
						want = append(want, got)
					}
				}
			}
			// want now holds rounds 0,1, resumed 2,3,4, then fresh 2,3,4 at
			// the tail — compare the resumed draws against the reference's.
			resumed, fresh := want[2:5], want[5:8]
			for i := range resumed {
				if !sameInts(fresh[i], resumed[i]) {
					t.Fatalf("resumed cohort %d = %v, reference %v", i+2, resumed[i], fresh[i])
				}
			}
		})
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := &Checkpoint{
		NextRound:  3,
		RNG:        RNGState{Seed: -99, Draws: 1234},
		Registered: 9,
		Model:      []byte{1, 2, 3, 4},
		Partial: &PartialRound{
			Round:     3,
			Selected:  []int{4, 7, 1, 0},
			Completed: []int{4, 7},
			Dropped:   []int{1},
			FoldN:     2,
			Total:     6.5,
			Acc:       []float64{0.25, -1, math.Inf(1)},
		},
	}
	data := EncodeCheckpoint(ck)
	if wire.Sniff(data) != wire.FormatVersioned {
		t.Fatal("checkpoint does not sniff as versioned")
	}
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextRound != ck.NextRound || got.RNG != ck.RNG || got.Registered != ck.Registered ||
		!bytes.Equal(got.Model, ck.Model) {
		t.Fatalf("boundary state mismatch: %+v", got)
	}
	p, q := ck.Partial, got.Partial
	if q == nil || q.Round != p.Round || !sameInts(q.Selected, p.Selected) ||
		!sameInts(q.Completed, p.Completed) || !sameInts(q.Dropped, p.Dropped) ||
		q.FoldN != p.FoldN || q.Total != p.Total || len(q.Acc) != len(p.Acc) {
		t.Fatalf("partial state mismatch: %+v", q)
	}
	for i := range p.Acc {
		if math.Float64bits(q.Acc[i]) != math.Float64bits(p.Acc[i]) {
			t.Fatalf("acc %d not bit-exact", i)
		}
	}
	// Boundary-only checkpoints round-trip without a partial section.
	ck.Partial = nil
	got, err = DecodeCheckpoint(EncodeCheckpoint(ck))
	if err != nil || got.Partial != nil {
		t.Fatalf("boundary-only round trip: %v, partial %v", err, got.Partial)
	}
}

// checkpointSeeds builds the decode inputs the parser must survive.
func checkpointSeeds(tb testing.TB) map[string][]byte {
	good := EncodeCheckpoint(&Checkpoint{
		NextRound: 2, RNG: RNGState{Seed: 9, Draws: 4}, Registered: 3,
		Model: []byte{9, 9},
		Partial: &PartialRound{Round: 2, Selected: []int{1, 2}, Completed: []int{1},
			FoldN: 1, Acc: []float64{0.5}},
	})
	mismatch := EncodeCheckpoint(&Checkpoint{
		NextRound: 2, RNG: RNGState{Seed: 9, Draws: 4}, Registered: 3,
		Model: []byte{9, 9},
		Partial: &PartialRound{Round: 7, Selected: []int{1, 2}, Completed: []int{1},
			FoldN: 1, Acc: []float64{0.5}},
	})
	foldLie := EncodeCheckpoint(&Checkpoint{
		NextRound: 2, RNG: RNGState{Seed: 9, Draws: 4}, Registered: 3,
		Model: []byte{9, 9},
		Partial: &PartialRound{Round: 2, Selected: []int{1, 2}, Completed: []int{1},
			FoldN: 5, Acc: []float64{0.5}},
	})
	return map[string][]byte{
		"valid":            good,
		"empty":            {},
		"truncated-header": good[:8],
		"wrong-magic":      append([]byte("GOBX"), good[4:]...),
		"wrong-kind":       wire.NewEncoder(wire.KindModel).Bytes(),
		"partial-mismatch": mismatch,
		"fold-count-lie":   foldLie,
	}
}

func TestDecodeCheckpointRejections(t *testing.T) {
	seeds := checkpointSeeds(t)
	for name, data := range seeds {
		_, err := DecodeCheckpoint(data)
		if name == "valid" {
			if err != nil {
				t.Errorf("valid checkpoint rejected: %v", err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Note: "partial-mismatch" and "fold-count-lie" are internally
	// inconsistent states EncodeCheckpoint happily seals — the decoder is
	// the validation layer, exactly like a file edited on disk.
}

func TestCheckpointFuzzCorpus(t *testing.T) {
	seeds := checkpointSeeds(t)
	if *updateCorpus {
		writeFuzzCorpus(t, "FuzzDecodeCheckpoint", seeds)
		return
	}
	for name := range seeds {
		p := filepath.Join("testdata", "fuzz", "FuzzDecodeCheckpoint", name)
		if _, err := os.Stat(p); err != nil {
			t.Errorf("corpus entry missing (rerun with -update): %v", err)
		}
	}
}

func writeFuzzCorpus(t *testing.T, target string, entries map[string][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range entries {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func FuzzDecodeCheckpoint(f *testing.F) {
	for _, seed := range checkpointSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic or allocate past the input's own size; a
		// decoded checkpoint must be internally consistent.
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		if p := ck.Partial; p != nil {
			if p.Round != ck.NextRound || p.FoldN != len(p.Completed) {
				t.Fatal("inconsistent checkpoint accepted")
			}
		}
	})
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fcc")
	if err := AtomicWriteFile(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "two" {
		t.Fatalf("read back %q, %v", got, err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("%d entries left in dir, want 1 (no temp litter)", len(ents))
	}
}

// tornWriter is the crash-injection seam: it writes only the first half of
// the payload straight to the final path (no temp, no rename — the
// behavior AtomicWriteFile exists to prevent) and reports failure.
func tornWriter(path string, data []byte) error {
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		return err
	}
	return fmt.Errorf("injected crash mid-write")
}

// TestResumeNeverLoadsTornCheckpoint is the crash-safety satellite: after
// a torn write, LatestCheckpoint must return the previous complete
// checkpoint — never the torn file.
func TestResumeNeverLoadsTornCheckpoint(t *testing.T) {
	dir := t.TempDir()
	c := &Checkpointer{Dir: dir}
	good := &Checkpoint{NextRound: 1, RNG: RNGState{Seed: 3, Draws: 2}, Registered: 4, Model: []byte{1}}
	if err := c.WriteBoundary(good); err != nil {
		t.Fatal(err)
	}
	// A torn boundary write for round 2: fails, leaves half a file.
	c.WriteFile = tornWriter
	if err := c.WriteBoundary(&Checkpoint{NextRound: 2, RNG: RNGState{Seed: 3, Draws: 9},
		Registered: 4, Model: []byte{2}}); err == nil {
		t.Fatal("torn write reported success")
	}
	names, err := checkpointNames(dir)
	if err != nil || len(names) != 2 {
		t.Fatalf("want the good and the torn file on disk, have %v (%v)", names, err)
	}
	ck, path, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.NextRound != 1 || ck.RNG.Draws != 2 {
		t.Fatalf("loaded %+v from %s, want the previous complete checkpoint", ck, path)
	}
	if strings.Contains(path, "00000002") {
		t.Fatalf("loaded the torn file %s", path)
	}
	// Same for a torn partial over a good boundary.
	if err := c.WritePartial(&Checkpoint{NextRound: 1, RNG: RNGState{Seed: 3, Draws: 2},
		Registered: 4, Model: []byte{1},
		Partial: &PartialRound{Round: 1, Selected: []int{0}, Acc: []float64{1}}}, 0); err == nil {
		t.Fatal("torn partial write reported success")
	}
	ck, _, err = LatestCheckpoint(dir)
	if err != nil || ck == nil || ck.NextRound != 1 || ck.Partial != nil {
		t.Fatalf("after torn partial: %+v, %v", ck, err)
	}
}

// TestTornTempNeverVisible: a crash before rename (the injected writer
// below dies without ever producing the final file) leaves only temp
// litter, which the loader does not even consider.
func TestTornTempNeverVisible(t *testing.T) {
	dir := t.TempDir()
	c := &Checkpointer{Dir: dir}
	if err := c.WriteBoundary(&Checkpoint{NextRound: 1, Model: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	c.WriteFile = func(path string, data []byte) error {
		// Crash mid-temp-write: short fsync, no rename.
		return os.WriteFile(filepath.Join(dir, ".tmp-ckpt-dead"), data[:1], 0o644)
	}
	if err := c.WriteBoundary(&Checkpoint{NextRound: 2, Model: []byte{2}}); err != nil {
		t.Fatal(err) // the seam itself succeeds; the file just never lands
	}
	ck, _, err := LatestCheckpoint(dir)
	if err != nil || ck == nil || ck.NextRound != 1 {
		t.Fatalf("temp litter leaked into recovery: %+v, %v", ck, err)
	}
}

func TestCheckpointerRetention(t *testing.T) {
	dir := t.TempDir()
	c := &Checkpointer{Dir: dir, Keep: 2, EveryFolds: 1}
	for r := 1; r <= 5; r++ {
		// A partial inside round r, then the boundary that closes it.
		if err := c.WritePartial(&Checkpoint{NextRound: r, Model: []byte{byte(r)},
			Partial: &PartialRound{Round: r, Selected: []int{0}, Acc: []float64{1}}}, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteBoundary(&Checkpoint{NextRound: r + 1, Model: []byte{byte(r)}}); err != nil {
			t.Fatal(err)
		}
	}
	names, err := checkpointNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	var boundaries int
	for _, n := range names {
		if strings.HasSuffix(n, "-f"+checkpointExt) {
			boundaries++
		}
		if n < boundaryName(5) {
			t.Fatalf("file %s survived past retention cut %s", n, boundaryName(5))
		}
	}
	if boundaries != 2 {
		t.Fatalf("%d boundaries retained, want 2 (%v)", boundaries, names)
	}
	ck, _, err := LatestCheckpoint(dir)
	if err != nil || ck == nil || ck.NextRound != 6 {
		t.Fatalf("latest after retention: %+v, %v", ck, err)
	}
}

// errCrash is the sentinel the scripted CrashHook panics with; the harness
// recovers it, modeling an in-process SIGKILL.
type crashSentinel struct {
	point CrashPoint
	round int
	folds int
}

// crashAt installs a hook that kills the server the first time the given
// point fires at the given round/fold position.
func crashAt(s *Server, point CrashPoint, round, folds int) {
	fired := false
	s.CrashHook = func(p CrashPoint, r, f int) {
		if fired || p != point || r != round || (point != CrashPostQuorumPreApply && f != folds) {
			return
		}
		fired = true
		panic(crashSentinel{p, r, f})
	}
}

// runUntilCrash drives rounds until the scripted kill fires, returning how
// many rounds completed before death.
func runUntilCrash(t *testing.T, s *Server, rounds int) (completed int, crashed bool) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		died := func() (died bool) {
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(crashSentinel); !ok {
						panic(rec)
					}
					died = true
				}
			}()
			s.RoundDetail(r)
			return false
		}()
		if died {
			return r, true
		}
	}
	return rounds, false
}

// syntheticDurableServer builds a streaming federation of stateless
// synthetic clients with a checkpointer attached — the fixture for the
// kill-and-restart tests.
func syntheticDurableServer(t *testing.T, template *nn.Sequential, dir string, drop DropPolicy) *Server {
	t.Helper()
	cfg := Config{Rounds: 5, SelectPerRound: 6, Quorum: 0.5, Streaming: true, Shards: 4, StreamWindow: 2}
	parts := make([]Participant, 10)
	for i := range parts {
		parts[i] = &SyntheticClient{Id: i, Seed: 11}
	}
	s := NewServer(template, parts, cfg, 77)
	s.Drop = drop
	if dir != "" {
		s.SetCheckpointer(&Checkpointer{Dir: dir, EveryFolds: 1})
	}
	return s
}

// TestKillRestartBitIdentity is the fl-level kill-and-restart pin: for
// each scripted crash point, a server killed mid-run and resumed from its
// checkpoints must finish with parameters bit-identical to an
// uninterrupted run — including the cohorts it selects after the resumed
// round. The cross-process, wire-served version of this suite lives in
// internal/transport's chaos tests.
func TestKillRestartBitIdentity(t *testing.T) {
	template := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rand.New(rand.NewSource(7)))
	drop := dropIDs{3: true}
	const rounds = 5

	ref := syntheticDurableServer(t, template, "", drop)
	for r := 0; r < rounds; r++ {
		ref.RoundDetail(r)
	}
	refParams := ref.Model.ParamsVector()

	cases := []struct {
		name  string
		point CrashPoint
		round int
		folds int
	}{
		{"pre-fold", CrashPreFold, 2, 0},
		{"mid-collection-first", CrashMidCollection, 2, 1},
		{"mid-collection-late", CrashMidCollection, 2, 4},
		{"post-quorum-pre-apply", CrashPostQuorumPreApply, 2, 0},
		{"round-zero", CrashMidCollection, 0, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := syntheticDurableServer(t, template, dir, drop)
			crashAt(s, tc.point, tc.round, tc.folds)
			if _, crashed := runUntilCrash(t, s, rounds); !crashed {
				t.Fatal("scripted crash never fired")
			}
			// "Restart": a fresh process image resumes from disk.
			res := syntheticDurableServer(t, template, dir, drop)
			next, resumed, err := res.ResumeLatest(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !resumed {
				t.Fatal("no checkpoint found after crash")
			}
			for r := next; r < rounds; r++ {
				res.RoundDetail(r)
			}
			got := res.Model.ParamsVector()
			for i := range refParams {
				if got[i] != refParams[i] {
					t.Fatalf("param %d = %v, want %v (resumed run diverged)", i, got[i], refParams[i])
				}
			}
		})
	}
}

// TestKillRestartAcrossWorkers sweeps the fl-level kill-restart over
// worker counts, pinning that resume determinism is independent of
// collection concurrency.
func TestKillRestartAcrossWorkers(t *testing.T) {
	template := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rand.New(rand.NewSource(7)))
	const rounds = 4
	ref := syntheticDurableServer(t, template, "", nil)
	for r := 0; r < rounds; r++ {
		ref.RoundDetail(r)
	}
	refParams := ref.Model.ParamsVector()
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			prev := parallel.SetWorkers(workers)
			defer parallel.SetWorkers(prev)
			dir := t.TempDir()
			s := syntheticDurableServer(t, template, dir, nil)
			crashAt(s, CrashMidCollection, 1, 3)
			if _, crashed := runUntilCrash(t, s, rounds); !crashed {
				t.Fatal("scripted crash never fired")
			}
			res := syntheticDurableServer(t, template, dir, nil)
			next, resumed, err := res.ResumeLatest(dir)
			if err != nil || !resumed {
				t.Fatalf("resume: %v (found %v)", err, resumed)
			}
			for r := next; r < rounds; r++ {
				res.RoundDetail(r)
			}
			got := res.Model.ParamsVector()
			for i := range refParams {
				if got[i] != refParams[i] {
					t.Fatalf("workers=%d: param %d diverged", workers, i)
				}
			}
		})
	}
}

// TestResumeRejectsPopulationMismatch: resuming against a different
// federation is refused, not silently aggregated.
func TestResumeRejectsPopulationMismatch(t *testing.T) {
	template := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rand.New(rand.NewSource(7)))
	dir := t.TempDir()
	s := syntheticDurableServer(t, template, dir, nil)
	s.RoundDetail(0)
	other := syntheticDurableServer(t, template, "", nil)
	other.Participants = other.Participants[:5]
	if _, _, err := other.ResumeLatest(dir); err == nil {
		t.Fatal("population mismatch accepted")
	}
}

// TestFineTuneNeverCheckpoints: defense fine-tuning shares the round
// machinery but must not write global-model checkpoints.
func TestFineTuneNeverCheckpoints(t *testing.T) {
	template := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rand.New(rand.NewSource(7)))
	dir := t.TempDir()
	s := syntheticDurableServer(t, template, dir, nil)
	work := template.Clone()
	s.FineTune(work, 2)
	names, err := checkpointNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("fine-tuning wrote checkpoints: %v", names)
	}
}
