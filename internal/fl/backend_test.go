package fl

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// buildFederation32 is buildFederation with every participant's local
// training on the float32 backend (the backend rides on the template
// through Clone).
func buildFederation32(t *testing.T) *Server {
	t.Helper()
	train, _, template, cfg := tinySetup(t, 21)
	template.SetBackend(nn.Float32)
	const clients = 6
	shards := dataset.PartitionKLabel(train, clients, 3, 40, rand.New(rand.NewSource(22)))
	parts := make([]Participant, clients)
	for i := 0; i < clients; i++ {
		parts[i] = NewClient(i, shards[i], template, cfg, 200+int64(i))
	}
	return NewServer(template, parts, cfg, 300)
}

// Federated training on the float32 backend keeps aggregation and model
// state in float64: the aggregated global parameters generically carry
// more precision than float32 can hold, which could not happen if any
// stage quantized the update vectors or the optimizer state.
func TestFloat32RoundsAggregateInFloat64(t *testing.T) {
	s := buildFederation32(t)
	s.Train(nil)
	v := s.Model.ParamsVector()
	beyond := 0
	for _, x := range v {
		if !(math.Abs(x) < math.MaxFloat64) {
			t.Fatalf("non-finite aggregated parameter %v", x)
		}
		if float64(float32(x)) != x {
			beyond++
		}
	}
	// The SGD update and the client mean are computed in float64 from
	// float32-derived gradients, so almost every parameter should carry
	// float64-only digits. Require a solid majority to keep the test robust.
	if beyond < len(v)/2 {
		t.Fatalf("only %d/%d aggregated parameters carry float64-only precision; aggregation appears quantized to float32", beyond, len(v))
	}
}

// A checkpoint of a float32-trained global model round-trips bit-exactly
// through Save/Load, and the restored model keeps the canonical float64
// backend semantics (backends are a runtime choice, not serialized state).
func TestFloat32TrainedCheckpointRoundTrip(t *testing.T) {
	s := buildFederation32(t)
	s.Train(nil)
	var buf bytes.Buffer
	in := nn.Input{C: 1, H: 16, W: 16}
	if err := nn.Save(&buf, "small", in, 10, s.Model); err != nil {
		t.Fatal(err)
	}
	loaded, err := nn.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, got := s.Model.ParamsVector(), loaded.ParamsVector()
	if len(want) != len(got) {
		t.Fatalf("restored vector length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("param %d: %v != %v after checkpoint round-trip", i, got[i], want[i])
		}
	}
	if loaded.Backend() != nn.Float64 {
		t.Fatalf("restored backend %v, want the Float64 default", loaded.Backend())
	}
}

// The simulator's bit-identity guarantee holds on the float32 backend too:
// a full short training run yields a bit-identical global model for worker
// counts 1, 2 and 8.
func TestFloat32RoundParallelBitIdentical(t *testing.T) {
	run := func(w int) []float64 {
		prev := parallel.SetWorkers(w)
		defer parallel.SetWorkers(prev)
		s := buildFederation32(t)
		s.Train(nil)
		return s.Model.ParamsVector()
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("workers=%d: param %d = %v, want %v (not bit-identical)", w, i, got[i], ref[i])
			}
		}
	}
}
