package fl

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/obs"
)

// TestRegistrySampleDeterministic: equal registration sequences and equal
// RNG seeds sample identical cohorts; a different seed diverges (with a
// population this size, collision would be astronomically unlikely).
func TestRegistrySampleDeterministic(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry(func(id int) Participant { return &fakeParticipant{id: id} })
		r.RegisterRange(100, 1100)
		return r
	}
	a := mk().SampleIDs(32, rand.New(rand.NewSource(9)))
	b := mk().SampleIDs(32, rand.New(rand.NewSource(9)))
	if !sameInts(a, b) {
		t.Fatalf("same seed sampled different cohorts:\n%v\n%v", a, b)
	}
	c := mk().SampleIDs(32, rand.New(rand.NewSource(10)))
	if sameInts(a, c) {
		t.Fatalf("different seeds sampled the same cohort: %v", a)
	}
}

// TestRegistrySampleDistinctAndRegistered: a sample holds k distinct IDs,
// all of them registered.
func TestRegistrySampleDistinctAndRegistered(t *testing.T) {
	r := NewRegistry(func(id int) Participant { return &fakeParticipant{id: id} })
	r.RegisterRange(0, 500)
	ids := r.SampleIDs(64, rand.New(rand.NewSource(11)))
	if len(ids) != 64 {
		t.Fatalf("sampled %d IDs, want 64", len(ids))
	}
	seen := make(map[int]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate ID %d in cohort", id)
		}
		seen[id] = true
		if id < 0 || id >= 500 {
			t.Fatalf("unregistered ID %d sampled", id)
		}
	}
}

// TestRegistrySampleWholePopulation: k <= 0 and k >= n both return the
// full population in registration order.
func TestRegistrySampleWholePopulation(t *testing.T) {
	r := NewRegistry(func(id int) Participant { return &fakeParticipant{id: id} })
	r.Register(7, 3, 5)
	for _, k := range []int{0, 3, 10} {
		got := r.SampleIDs(k, rand.New(rand.NewSource(12)))
		if !sameInts(got, []int{7, 3, 5}) {
			t.Fatalf("k=%d: got %v, want registration order [7 3 5]", k, got)
		}
	}
}

// TestRegistryDuplicateAndGauge: duplicate registration is ignored and the
// population gauge tracks Len.
func TestRegistryDuplicateAndGauge(t *testing.T) {
	r := NewRegistry(func(id int) Participant { return &fakeParticipant{id: id} })
	r.Register(1, 2, 2, 3)
	r.Register(3, 4)
	if r.Len() != 4 {
		t.Fatalf("Len=%d after duplicate registrations, want 4", r.Len())
	}
	if got := obs.M.FLRegisteredClients.Value(); got != 4 {
		t.Fatalf("fl_registered_clients=%d, want 4", got)
	}
}

// TestRegistryCohortMaterializesOnlySampled: the factory runs exactly k
// times per cohort — the O(cohort) materialization the memory model rests
// on — and the cohort carries the sampled IDs in order.
func TestRegistryCohortMaterializesOnlySampled(t *testing.T) {
	calls := 0
	r := NewRegistry(func(id int) Participant {
		calls++
		return &fakeParticipant{id: id}
	})
	r.RegisterRange(0, 10000)
	rng := rand.New(rand.NewSource(13))
	cohort := r.Cohort(25, rng)
	if calls != 25 {
		t.Fatalf("factory ran %d times for a 25-client cohort", calls)
	}
	wantIDs := r.SampleIDs(25, rand.New(rand.NewSource(13)))
	for i, p := range cohort {
		if p.ID() != wantIDs[i] {
			t.Fatalf("cohort[%d] = client %d, want %d", i, p.ID(), wantIDs[i])
		}
	}
}

// TestRegistryServerRoundsReproducible: two registry-backed servers built
// from the same seeds run identical rounds — same sampled cohorts, same
// parameters — and never materialize more than the cohort.
func TestRegistryServerRoundsReproducible(t *testing.T) {
	_, _, template, cfg := tinySetup(t, 80)
	cfg.SelectPerRound = 4
	cfg.Streaming = true
	n := template.NumParams()
	run := func() ([]float64, []RoundResult, int) {
		calls := 0
		reg := NewRegistry(func(id int) Participant {
			calls++
			return &fakeParticipant{id: id, delta: scaled(n, float64(id%7)*1e-3)}
		})
		reg.RegisterRange(0, 1000)
		srv := NewRegistryServer(template, reg, cfg, 81)
		var rounds []RoundResult
		for r := 0; r < cfg.Rounds; r++ {
			rounds = append(rounds, srv.RoundDetail(r))
		}
		return srv.Model.ParamsVector(), rounds, calls
	}
	p1, r1, c1 := run()
	p2, r2, c2 := run()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("param %d = %v vs %v across identical runs", i, p1[i], p2[i])
		}
	}
	for r := range r1 {
		if !sameInts(r1[r].Selected, r2[r].Selected) || !sameInts(r1[r].Completed, r2[r].Completed) {
			t.Fatalf("round %d cohorts diverge: %+v vs %+v", r, r1[r], r2[r])
		}
		if len(r1[r].Selected) != 4 {
			t.Fatalf("round %d selected %d clients, want 4", r, len(r1[r].Selected))
		}
	}
	if c1 != cfg.Rounds*4 || c2 != c1 {
		t.Fatalf("factory calls %d/%d, want %d (cohort-only materialization)", c1, c2, cfg.Rounds*4)
	}
}

// TestRegistryFineTuneSamplesCohorts: a registry-backed server fine-tunes
// by sampling per-round cohorts instead of requiring a resident
// population.
func TestRegistryFineTuneSamplesCohorts(t *testing.T) {
	_, _, template, cfg := tinySetup(t, 82)
	cfg.SelectPerRound = 3
	n := template.NumParams()
	calls := 0
	reg := NewRegistry(func(id int) Participant {
		calls++
		return &fakeParticipant{id: id, delta: scaled(n, 1e-3)}
	})
	reg.RegisterRange(0, 100)
	srv := NewRegistryServer(template, reg, cfg, 83)
	m := template.Clone()
	before := m.ParamsVector()
	srv.FineTune(m, 2)
	if calls != 6 {
		t.Fatalf("factory ran %d times for 2 fine-tune rounds of 3, want 6", calls)
	}
	after := m.ParamsVector()
	moved := false
	for i := range after {
		if after[i] != before[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("fine-tuning over a registry cohort left the model untouched")
	}
}
