package fl

import (
	"fmt"
	"math/rand"

	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// Aggregator combines the update deltas of one round into a single global
// delta. MeanAggregator implements the paper's simplified FedAvg; the
// Byzantine-robust rules in internal/robust implement the same interface.
type Aggregator interface {
	// Aggregate returns the global update computed from per-client deltas.
	// Implementations must not retain or mutate the input slices.
	Aggregate(deltas [][]float64) []float64
}

// WeightedAggregator is implemented by aggregation rules that need the
// clients' identities (e.g. to weight by local sample counts). When the
// server's Agg implements it, AggregateWeighted is used instead of
// Aggregate.
type WeightedAggregator interface {
	// AggregateWeighted combines deltas; ids[i] identifies the client that
	// produced deltas[i].
	AggregateWeighted(deltas [][]float64, ids []int) []float64
}

// SampleWeightedMean is the paper's unsimplified FedAvg rule (§III-A):
// w_{t+1} = w_t + η · Σ nᵢ·Δwⁱ / Σ nᵢ, weighting each client's update by
// its local sample count. The paper's experiments equalize sample counts
// precisely because this rule lets an attacker with more data dominate;
// SampleWeightedMean exists to demonstrate that (see the fl tests).
type SampleWeightedMean struct {
	// Counts maps client ID to its sample count. Unknown clients weigh 1.
	Counts map[int]int
	// Eta is the global learning rate η (0 means 1).
	Eta float64
}

var _ WeightedAggregator = SampleWeightedMean{}

// Aggregate implements Aggregator by equal weighting (no identities).
func (s SampleWeightedMean) Aggregate(deltas [][]float64) []float64 {
	return MeanAggregator{}.Aggregate(deltas)
}

// AggregateWeighted implements WeightedAggregator.
func (s SampleWeightedMean) AggregateWeighted(deltas [][]float64, ids []int) []float64 {
	if len(deltas) == 0 {
		panic("fl: aggregate of zero deltas")
	}
	if len(ids) != len(deltas) {
		panic(fmt.Sprintf("fl: %d ids for %d deltas", len(ids), len(deltas)))
	}
	eta := s.Eta
	if eta == 0 {
		eta = 1
	}
	out := make([]float64, len(deltas[0]))
	total := 0.0
	for i, d := range deltas {
		w := 1.0
		if n, ok := s.Counts[ids[i]]; ok && n > 0 {
			w = float64(n)
		}
		total += w
		for j, v := range d {
			out[j] += w * v
		}
	}
	scale := eta / total
	for j := range out {
		out[j] *= scale
	}
	return out
}

// MeanAggregator is plain coordinate-wise averaging, the paper's
// w_{t+1} = w_t + (1/N) Σ Δw^i rule.
type MeanAggregator struct{}

var _ Aggregator = MeanAggregator{}

// Aggregate implements Aggregator.
func (MeanAggregator) Aggregate(deltas [][]float64) []float64 {
	if len(deltas) == 0 {
		panic("fl: aggregate of zero deltas")
	}
	out := make([]float64, len(deltas[0]))
	for _, d := range deltas {
		if len(d) != len(out) {
			panic(fmt.Sprintf("fl: delta length mismatch %d vs %d", len(d), len(out)))
		}
		for i, v := range d {
			out[i] += v
		}
	}
	inv := 1.0 / float64(len(deltas))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// DropPolicy injects client failures into federated rounds: a dropped
// client is selected but never returns an update (crash, network
// partition, straggler past the round deadline). Real federations must
// tolerate this; the simulator reproduces it for robustness tests.
type DropPolicy interface {
	// Dropped reports whether the client fails to deliver in this round.
	Dropped(clientID, round int) bool
}

// RandomDrop drops every client independently with probability P per
// round, using its own deterministic randomness stream.
type RandomDrop struct {
	P   float64
	Rng *rand.Rand
}

var _ DropPolicy = (*RandomDrop)(nil)

// Dropped implements DropPolicy.
func (d *RandomDrop) Dropped(int, int) bool {
	return d.Rng.Float64() < d.P
}

// Server drives federated training rounds over a set of participants.
type Server struct {
	// Model is the global model, updated in place each round.
	Model *nn.Sequential
	// Participants is the full client population.
	Participants []Participant
	// Agg combines round deltas; nil means MeanAggregator.
	Agg Aggregator
	// Drop, when non-nil, injects client failures (see DropPolicy).
	Drop DropPolicy

	cfg Config
	rng *rand.Rand
}

// NewServer builds a server over the given population. template provides
// the global model architecture and initial weights (cloned).
func NewServer(template *nn.Sequential, participants []Participant, cfg Config, seed int64) *Server {
	return &Server{
		Model:        template.Clone(),
		Participants: append([]Participant(nil), participants...),
		Agg:          MeanAggregator{},
		cfg:          cfg.withDefaults(),
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// Config returns the server's training configuration.
func (s *Server) Config() Config { return s.cfg }

// Round executes one federated round: select clients, collect their
// updates from the current global parameters, aggregate, and apply. It
// returns the IDs of the selected clients.
//
// Local training runs concurrently across the selected clients (bounded by
// parallel.Workers). Every participant owns its model clone and RNG, and
// the global vector is shared read-only, so the per-client deltas — and
// therefore the aggregated round — are bit-identical for any worker count.
func (s *Server) Round(t int) []int {
	selected := s.selectClients()
	global := s.Model.ParamsVector()
	// Drop decisions consume the policy's randomness stream in participant
	// order before any concurrency, keeping failure injection deterministic
	// under every worker count.
	var active []Participant
	var ids []int
	for _, p := range selected {
		if s.Drop != nil && s.Drop.Dropped(p.ID(), t) {
			continue
		}
		active = append(active, p)
		ids = append(ids, p.ID())
	}
	if len(active) == 0 {
		// Every selected client failed: the round delivers no update, as in
		// a real deployment where the server times out and retries.
		return ids
	}
	deltas := make([][]float64, len(active))
	parallel.For(len(active), func(i int) {
		deltas[i] = active[i].LocalUpdate(global, t)
	})
	if wa, ok := s.Agg.(WeightedAggregator); ok {
		s.Model.AddDeltaVector(1, wa.AggregateWeighted(deltas, ids))
	} else {
		s.Model.AddDeltaVector(1, s.Agg.Aggregate(deltas))
	}
	return ids
}

// Train runs cfg.Rounds rounds. After each round, onRound (if non-nil) is
// invoked with the completed round index; experiments use it to trace
// accuracy curves (Fig. 3, Fig. 7).
func (s *Server) Train(onRound func(round int)) {
	for t := 0; t < s.cfg.Rounds; t++ {
		s.Round(t)
		if onRound != nil {
			onRound(t)
		}
	}
}

// selectClients draws SelectPerRound participants without replacement, or
// returns the full population when SelectPerRound is 0 (the paper's
// simplified all-participate setting). At least one attacker is present in
// every training iteration per the paper's threat model; the random draw
// itself is unbiased — the guarantee comes from the experiment setups
// having attackers in the population.
func (s *Server) selectClients() []Participant {
	k := s.cfg.SelectPerRound
	if k <= 0 || k >= len(s.Participants) {
		return s.Participants
	}
	idx := s.rng.Perm(len(s.Participants))[:k]
	out := make([]Participant, k)
	for i, j := range idx {
		out[i] = s.Participants[j]
	}
	return out
}

// FineTune implements the defense's federated fine-tuning contract
// (internal/core.Tuner): it runs the given number of plain FedAvg rounds
// over the full population starting from m, updating m in place. Prune
// masks installed on m survive because AddDeltaVector re-applies them.
func (s *Server) FineTune(m *nn.Sequential, rounds int) {
	for t := 0; t < rounds; t++ {
		global := m.ParamsVector()
		deltas := make([][]float64, len(s.Participants))
		parallel.For(len(s.Participants), func(i int) {
			deltas[i] = s.Participants[i].LocalUpdate(global, t)
		})
		m.AddDeltaVector(1, MeanAggregator{}.Aggregate(deltas))
	}
}
