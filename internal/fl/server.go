package fl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// Aggregator combines the update deltas of one round into a single global
// delta. MeanAggregator implements the paper's simplified FedAvg; the
// Byzantine-robust rules in internal/robust implement the same interface.
type Aggregator interface {
	// Aggregate returns the global update computed from per-client deltas.
	// Implementations must not retain or mutate the input slices.
	Aggregate(deltas [][]float64) []float64
}

// WeightedAggregator is implemented by aggregation rules that need the
// clients' identities (e.g. to weight by local sample counts). When the
// server's Agg implements it, AggregateWeighted is used instead of
// Aggregate.
type WeightedAggregator interface {
	// AggregateWeighted combines deltas; ids[i] identifies the client that
	// produced deltas[i].
	AggregateWeighted(deltas [][]float64, ids []int) []float64
}

// SampleWeightedMean is the paper's unsimplified FedAvg rule (§III-A):
// w_{t+1} = w_t + η · Σ nᵢ·Δwⁱ / Σ nᵢ, weighting each client's update by
// its local sample count. The paper's experiments equalize sample counts
// precisely because this rule lets an attacker with more data dominate;
// SampleWeightedMean exists to demonstrate that (see the fl tests).
type SampleWeightedMean struct {
	// Counts maps client ID to its sample count. Unknown clients weigh 1.
	Counts map[int]int
	// Eta is the global learning rate η (0 means 1).
	Eta float64
}

var _ WeightedAggregator = SampleWeightedMean{}

// Aggregate implements Aggregator by equal weighting (no identities).
func (s SampleWeightedMean) Aggregate(deltas [][]float64) []float64 {
	return MeanAggregator{}.Aggregate(deltas)
}

// AggregateWeighted implements WeightedAggregator.
func (s SampleWeightedMean) AggregateWeighted(deltas [][]float64, ids []int) []float64 {
	if len(deltas) == 0 {
		panic("fl: aggregate of zero deltas")
	}
	if len(ids) != len(deltas) {
		panic(fmt.Sprintf("fl: %d ids for %d deltas", len(ids), len(deltas)))
	}
	eta := s.Eta
	if eta == 0 {
		eta = 1
	}
	out := make([]float64, len(deltas[0]))
	total := 0.0
	for i, d := range deltas {
		w := 1.0
		if n, ok := s.Counts[ids[i]]; ok && n > 0 {
			w = float64(n)
		}
		total += w
		for j, v := range d {
			out[j] += w * v
		}
	}
	scale := eta / total
	for j := range out {
		out[j] *= scale
	}
	return out
}

// MeanAggregator is plain coordinate-wise averaging, the paper's
// w_{t+1} = w_t + (1/N) Σ Δw^i rule.
type MeanAggregator struct{}

var _ Aggregator = MeanAggregator{}

// Aggregate implements Aggregator.
func (MeanAggregator) Aggregate(deltas [][]float64) []float64 {
	if len(deltas) == 0 {
		panic("fl: aggregate of zero deltas")
	}
	out := make([]float64, len(deltas[0]))
	for _, d := range deltas {
		if len(d) != len(out) {
			panic(fmt.Sprintf("fl: delta length mismatch %d vs %d", len(d), len(out)))
		}
		for i, v := range d {
			out[i] += v
		}
	}
	inv := 1.0 / float64(len(deltas))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// DropPolicy injects client failures into federated rounds: a dropped
// client is selected but never returns an update (crash, network
// partition, straggler past the round deadline). Real federations must
// tolerate this; the simulator reproduces it for robustness tests.
type DropPolicy interface {
	// Dropped reports whether the client fails to deliver in this round.
	Dropped(clientID, round int) bool
}

// RandomDrop drops every client independently with probability P per
// round, using its own deterministic randomness stream.
type RandomDrop struct {
	P   float64
	Rng *rand.Rand
}

var _ DropPolicy = (*RandomDrop)(nil)

// Dropped implements DropPolicy.
func (d *RandomDrop) Dropped(int, int) bool {
	return d.Rng.Float64() < d.P
}

// Server drives federated training rounds over a set of participants.
type Server struct {
	// Model is the global model, updated in place each round.
	Model *nn.Sequential
	// Participants is the full client population.
	Participants []Participant
	// Agg combines round deltas; nil means MeanAggregator.
	Agg Aggregator
	// Drop, when non-nil, injects client failures (see DropPolicy).
	Drop DropPolicy

	cfg Config
	rng *rand.Rand
}

// NewServer builds a server over the given population. template provides
// the global model architecture and initial weights (cloned).
func NewServer(template *nn.Sequential, participants []Participant, cfg Config, seed int64) *Server {
	return &Server{
		Model:        template.Clone(),
		Participants: append([]Participant(nil), participants...),
		Agg:          MeanAggregator{},
		cfg:          cfg.withDefaults(),
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// Config returns the server's training configuration.
func (s *Server) Config() Config { return s.cfg }

// RoundResult records one federated round's outcome: who was selected,
// whose updates arrived, who dropped (failure policy or wire failure) and
// whether the aggregate was applied. A dropped client leaves nothing
// behind in the aggregate — its delta is never buffered — only its ID
// (and transport error, if any) in this record.
type RoundResult struct {
	// Round is the round index the drivers passed in.
	Round int
	// Selected lists the IDs drawn for this round, in participant order.
	Selected []int
	// Completed lists the IDs whose updates arrived and were aggregated
	// (or would have been, had quorum been met), in participant order.
	Completed []int
	// Dropped lists the IDs that delivered nothing: DropPolicy drops
	// first, then transport failures, each in participant order.
	Dropped []int
	// Errs maps a failed client ID to its transport error; policy drops
	// have no entry. nil when no wire failure occurred.
	Errs map[int]error
	// Applied reports whether the aggregate was applied to the model —
	// false when fewer than quorum updates arrived.
	Applied bool
}

// errNilUpdate marks an infallible participant that returned no delta
// (transport.RemoteClient's fl.Participant surface does this on failure).
var errNilUpdate = errors.New("fl: participant returned no update")

// Round executes one federated round: select clients, collect their
// updates from the current global parameters, aggregate, and apply. It
// returns the IDs of the clients whose updates were collected. Failed
// clients — DropPolicy drops, and FallibleParticipant errors on the wire
// path — are recorded as dropouts and excluded from the aggregate; the
// round applies once cfg.Quorum of the selected cohort has responded.
//
// Local training runs concurrently across the selected clients (bounded by
// parallel.Workers). Every participant owns its model clone and RNG, and
// the global vector is shared read-only, so the per-client deltas — and
// therefore the aggregated round — are bit-identical for any worker count.
// A round in which a set of clients fails on the wire aggregates exactly
// like a round in which the same set was dropped by policy.
func (s *Server) Round(t int) []int {
	return s.RoundDetail(t).Completed
}

// RoundDetail is Round with full failure telemetry.
func (s *Server) RoundDetail(t int) RoundResult {
	return s.runRound(s.Model, s.selectClients(), t)
}

// runRound drives one aggregation round over the given cohort against
// model m (the global model for training rounds, the defense's working
// model for fine-tuning).
//
// The round is traced as an obs span feeding the fl_round_seconds
// histogram; every drop — policy or wire — counts into fl_dropped_total
// (wire failures additionally log the client's error with round/client
// attributes), and a below-quorum round counts into
// fl_quorum_failures_total. Instrumentation only observes the round's
// outcome after the fact; it touches no model arithmetic, scheduling or
// RNG stream, so rounds stay bit-identical with metrics enabled.
func (s *Server) runRound(m *nn.Sequential, selected []Participant, t int) RoundResult {
	sp := obs.StartSpan("fl.round", obs.M.FLRoundSeconds)
	defer sp.End()
	obs.M.FLRounds.Inc()
	res := RoundResult{Round: t, Selected: make([]int, 0, len(selected))}
	for _, p := range selected {
		res.Selected = append(res.Selected, p.ID())
	}
	global := m.ParamsVector()
	// Drop decisions consume the policy's randomness stream in participant
	// order before any concurrency, keeping failure injection deterministic
	// under every worker count.
	var active []Participant
	for _, p := range selected {
		if s.Drop != nil && s.Drop.Dropped(p.ID(), t) {
			res.Dropped = append(res.Dropped, p.ID())
			obs.M.FLDropped.Inc()
			obs.L().Debug("fl: client dropped by policy", "round", t, "client", p.ID())
			continue
		}
		active = append(active, p)
	}
	ctx := context.Background()
	if s.cfg.RoundTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RoundTimeout)
		defer cancel()
	}
	deltas := make([][]float64, len(active))
	errs := make([]error, len(active))
	parallel.For(len(active), func(i int) {
		deltas[i], errs[i] = localUpdate(ctx, active[i], global, t)
	})
	// Compact survivors in participant order, so aggregating a round with
	// wire failures is bit-identical to aggregating one where the same
	// clients were excluded up front.
	var ids []int
	var ok [][]float64
	for i, p := range active {
		if errs[i] != nil {
			res.Dropped = append(res.Dropped, p.ID())
			if res.Errs == nil {
				res.Errs = make(map[int]error)
			}
			res.Errs[p.ID()] = errs[i]
			obs.M.FLDropped.Inc()
			obs.L().Warn("fl: client update failed", "round", t, "client", p.ID(), "err", errs[i])
			continue
		}
		ids = append(ids, p.ID())
		ok = append(ok, deltas[i])
	}
	res.Completed = ids
	obs.M.FLCompleted.Add(uint64(len(ids)))
	if len(ok) == 0 || len(ok) < s.quorumCount(len(selected)) {
		// Below quorum the round delivers no update, as in a real
		// deployment where the server abandons the round and retries.
		obs.M.FLQuorumFailures.Inc()
		obs.L().Warn("fl: round below quorum, discarded",
			"round", t, "arrived", len(ok), "need", s.quorumCount(len(selected)), "selected", len(selected))
		return res
	}
	if wa, isWeighted := s.Agg.(WeightedAggregator); isWeighted {
		m.AddDeltaVector(1, wa.AggregateWeighted(ok, ids))
	} else {
		m.AddDeltaVector(1, s.aggregator().Aggregate(ok))
	}
	res.Applied = true
	return res
}

// localUpdate collects one client's update, preferring the fallible
// context-aware path when the participant supports it.
func localUpdate(ctx context.Context, p Participant, global []float64, round int) ([]float64, error) {
	if fp, ok := p.(FallibleParticipant); ok {
		return fp.TryLocalUpdate(ctx, global, round)
	}
	d := p.LocalUpdate(global, round)
	if d == nil {
		return nil, errNilUpdate
	}
	return d, nil
}

// aggregator returns the configured aggregation rule (MeanAggregator when
// unset).
func (s *Server) aggregator() Aggregator {
	if s.Agg == nil {
		return MeanAggregator{}
	}
	return s.Agg
}

// quorumCount converts cfg.Quorum into the minimum number of arrived
// updates for a cohort of the given size (at least one).
func (s *Server) quorumCount(selected int) int {
	q := s.cfg.Quorum
	if q <= 0 {
		return 1
	}
	n := int(math.Ceil(q * float64(selected)))
	if n < 1 {
		n = 1
	}
	return n
}

// Train runs cfg.Rounds rounds. After each round, onRound (if non-nil) is
// invoked with the completed round index; experiments use it to trace
// accuracy curves (Fig. 3, Fig. 7).
func (s *Server) Train(onRound func(round int)) {
	for t := 0; t < s.cfg.Rounds; t++ {
		s.Round(t)
		if onRound != nil {
			onRound(t)
		}
	}
}

// selectClients draws SelectPerRound participants without replacement, or
// returns the full population when SelectPerRound is 0 (the paper's
// simplified all-participate setting). At least one attacker is present in
// every training iteration per the paper's threat model; the random draw
// itself is unbiased — the guarantee comes from the experiment setups
// having attackers in the population.
func (s *Server) selectClients() []Participant {
	k := s.cfg.SelectPerRound
	if k <= 0 || k >= len(s.Participants) {
		return s.Participants
	}
	idx := s.rng.Perm(len(s.Participants))[:k]
	out := make([]Participant, k)
	for i, j := range idx {
		out[i] = s.Participants[j]
	}
	return out
}

// FineTune implements the defense's federated fine-tuning contract
// (internal/core.Tuner): it runs the given number of aggregation rounds
// over the full population starting from m, updating m in place. Prune
// masks installed on m survive because AddDeltaVector re-applies them.
// Fine-tuning rounds share Round's machinery end to end: the server's
// configured Agg rule, its Drop policy, the round timeout and the quorum
// semantics all apply, and wire failures degrade to recorded dropouts.
func (s *Server) FineTune(m *nn.Sequential, rounds int) {
	for t := 0; t < rounds; t++ {
		obs.M.FLFineTuneRounds.Inc()
		s.runRound(m, s.Participants, t)
	}
}
