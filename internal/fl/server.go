package fl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Aggregator combines the update deltas of one round into a single global
// delta. MeanAggregator implements the paper's simplified FedAvg; the
// Byzantine-robust rules in internal/robust implement the same interface.
type Aggregator interface {
	// Aggregate returns the global update computed from per-client deltas.
	// Implementations must not retain or mutate the input slices.
	Aggregate(deltas [][]float64) []float64
}

// WeightedAggregator is implemented by aggregation rules that need the
// clients' identities (e.g. to weight by local sample counts). When the
// server's Agg implements it, AggregateWeighted is used instead of
// Aggregate.
type WeightedAggregator interface {
	// AggregateWeighted combines deltas; ids[i] identifies the client that
	// produced deltas[i].
	AggregateWeighted(deltas [][]float64, ids []int) []float64
}

// SampleWeightedMean is the paper's unsimplified FedAvg rule (§III-A):
// w_{t+1} = w_t + η · Σ nᵢ·Δwⁱ / Σ nᵢ, weighting each client's update by
// its local sample count. The paper's experiments equalize sample counts
// precisely because this rule lets an attacker with more data dominate;
// SampleWeightedMean exists to demonstrate that (see the fl tests).
type SampleWeightedMean struct {
	// Counts maps client ID to its sample count. Unknown clients weigh 1.
	Counts map[int]int
	// Eta is the global learning rate η (0 means 1).
	Eta float64
}

var _ WeightedAggregator = SampleWeightedMean{}

// Aggregate implements Aggregator by equal weighting (no identities).
func (s SampleWeightedMean) Aggregate(deltas [][]float64) []float64 {
	return MeanAggregator{}.Aggregate(deltas)
}

// AggregateWeighted implements WeightedAggregator.
func (s SampleWeightedMean) AggregateWeighted(deltas [][]float64, ids []int) []float64 {
	if len(deltas) == 0 {
		panic("fl: aggregate of zero deltas")
	}
	if len(ids) != len(deltas) {
		panic(fmt.Sprintf("fl: %d ids for %d deltas", len(ids), len(deltas)))
	}
	eta := s.Eta
	if eta == 0 {
		eta = 1
	}
	out := make([]float64, len(deltas[0]))
	total := 0.0
	for i, d := range deltas {
		w := 1.0
		if n, ok := s.Counts[ids[i]]; ok && n > 0 {
			w = float64(n)
		}
		total += w
		for j, v := range d {
			out[j] += w * v
		}
	}
	scale := eta / total
	for j := range out {
		out[j] *= scale
	}
	return out
}

// MeanAggregator is plain coordinate-wise averaging, the paper's
// w_{t+1} = w_t + (1/N) Σ Δw^i rule.
type MeanAggregator struct{}

var _ Aggregator = MeanAggregator{}

// Aggregate implements Aggregator.
func (MeanAggregator) Aggregate(deltas [][]float64) []float64 {
	if len(deltas) == 0 {
		panic("fl: aggregate of zero deltas")
	}
	out := make([]float64, len(deltas[0]))
	for _, d := range deltas {
		if len(d) != len(out) {
			panic(fmt.Sprintf("fl: delta length mismatch %d vs %d", len(d), len(out)))
		}
		for i, v := range d {
			out[i] += v
		}
	}
	inv := 1.0 / float64(len(deltas))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// DropPolicy injects client failures into federated rounds: a dropped
// client is selected but never returns an update (crash, network
// partition, straggler past the round deadline). Real federations must
// tolerate this; the simulator reproduces it for robustness tests.
type DropPolicy interface {
	// Dropped reports whether the client fails to deliver in this round.
	Dropped(clientID, round int) bool
}

// RandomDrop drops every client independently with probability P per
// round, using its own deterministic randomness stream.
type RandomDrop struct {
	P   float64
	Rng *rand.Rand
}

var _ DropPolicy = (*RandomDrop)(nil)

// Dropped implements DropPolicy.
func (d *RandomDrop) Dropped(int, int) bool {
	return d.Rng.Float64() < d.P
}

// Server drives federated training rounds over a set of participants.
type Server struct {
	// Model is the global model, updated in place each round.
	Model *nn.Sequential
	// Participants is the full client population. Empty when the server
	// draws cohorts from a Registry instead.
	Participants []Participant
	// Registry, when non-nil, replaces Participants as the population:
	// each round samples cfg.SelectPerRound registered clients and
	// materializes only those (see Registry). Required for populations too
	// large to hold resident.
	Registry *Registry
	// Agg combines round deltas; nil means MeanAggregator.
	Agg Aggregator
	// Drop, when non-nil, injects client failures (see DropPolicy).
	Drop DropPolicy

	// CrashHook, when set, is invoked at scripted points inside a round
	// (see CrashPoint). The chaos suite installs hooks that panic with a
	// sentinel to model a SIGKILL at exactly that instant; production
	// servers leave it nil.
	CrashHook func(p CrashPoint, round, folds int)

	// Audit, when non-nil, receives one RoundAudit record per RoundDetail
	// call — the durable flight-recorder trail (DESIGN.md §16). nil keeps
	// auditing off, so embedded servers and tests pay nothing.
	Audit *obs.FlightRecorder
	// AuditAmend, when set, edits each audit record before it is written;
	// drivers use it to attach evaluation results (TA/ASR) computed
	// outside the round.
	AuditAmend func(*RoundAudit)

	cfg Config
	// rng drives cohort selection; sr owns it so the draw position can be
	// checkpointed (see rng.go).
	rng *rand.Rand
	sr  *seededRand
	// ckpt, when non-nil, persists round state (SetCheckpointer).
	ckpt *Checkpointer
	// pendingPartial is an interrupted round restored by ResumeFrom,
	// consumed by the next RoundDetail call.
	pendingPartial *PartialRound
	// foldScratch backs the streaming accumulator so steady-state
	// streaming rounds reuse one buffer (DESIGN.md §12).
	foldScratch tensor.Arena
}

// CrashPoint names the scripted kill points of a round, in execution
// order. They exist for the kill-and-restart chaos suite: each models the
// process dying at a different durability-critical instant.
type CrashPoint int

const (
	// CrashPreFold fires in a streaming round after the cohort is drawn
	// and the opening partial checkpoint (if due) is written, before any
	// update has folded.
	CrashPreFold CrashPoint = iota + 1
	// CrashMidCollection fires after each folded update (folds carries
	// the count), after any due partial checkpoint.
	CrashMidCollection
	// CrashPostQuorumPreApply fires once quorum is met, immediately
	// before the aggregate is applied to the model.
	CrashPostQuorumPreApply
)

// crash invokes the scripted kill hook, if any.
func (s *Server) crash(p CrashPoint, round, folds int) {
	if s.CrashHook != nil {
		s.CrashHook(p, round, folds)
	}
}

// NewServer builds a server over the given population. template provides
// the global model architecture and initial weights (cloned).
func NewServer(template *nn.Sequential, participants []Participant, cfg Config, seed int64) *Server {
	sr := newSeededRand(seed)
	return &Server{
		Model:        template.Clone(),
		Participants: append([]Participant(nil), participants...),
		Agg:          MeanAggregator{},
		cfg:          cfg.withDefaults(),
		rng:          sr.rng,
		sr:           sr,
	}
}

// NewRegistryServer builds a server that samples each round's cohort from
// a registered population instead of a resident participant slice. The
// server's memory then scales with the cohort (cfg.SelectPerRound), not
// the population.
func NewRegistryServer(template *nn.Sequential, reg *Registry, cfg Config, seed int64) *Server {
	s := NewServer(template, nil, cfg, seed)
	s.Registry = reg
	return s
}

// Config returns the server's training configuration.
func (s *Server) Config() Config { return s.cfg }

// RoundResult records one federated round's outcome: who was selected,
// whose updates arrived, who dropped (failure policy or wire failure) and
// whether the aggregate was applied. A dropped client leaves nothing
// behind in the aggregate — its delta is never buffered — only its ID
// (and transport error, if any) in this record.
type RoundResult struct {
	// Round is the round index the drivers passed in.
	Round int
	// Selected lists the IDs drawn for this round, in participant order.
	Selected []int
	// Completed lists the IDs whose updates arrived and were aggregated
	// (or would have been, had quorum been met), in participant order.
	Completed []int
	// Dropped lists the IDs that delivered nothing: DropPolicy drops
	// first, then transport failures, each in participant order.
	Dropped []int
	// Errs maps a failed client ID to its transport error; policy drops
	// have no entry. nil when no wire failure occurred.
	Errs map[int]error
	// Applied reports whether the aggregate was applied to the model —
	// false when fewer than quorum updates arrived.
	Applied bool
	// PeakInFlight is the largest number of trained-but-not-yet-folded
	// updates the streaming path held at once — its working-set bound,
	// governed by Config.StreamWindow. Zero on batch rounds, which hold
	// the whole cohort by design.
	PeakInFlight int
}

// errNilUpdate marks an infallible participant that returned no delta
// (transport.RemoteClient's fl.Participant surface does this on failure).
var errNilUpdate = errors.New("fl: participant returned no update")

// Round executes one federated round: select clients, collect their
// updates from the current global parameters, aggregate, and apply. It
// returns the IDs of the clients whose updates were collected. Failed
// clients — DropPolicy drops, and FallibleParticipant errors on the wire
// path — are recorded as dropouts and excluded from the aggregate; the
// round applies once cfg.Quorum of the selected cohort has responded.
//
// Local training runs concurrently across the selected clients (bounded by
// parallel.Workers). Every participant owns its model clone and RNG, and
// the global vector is shared read-only, so the per-client deltas — and
// therefore the aggregated round — are bit-identical for any worker count.
// A round in which a set of clients fails on the wire aggregates exactly
// like a round in which the same set was dropped by policy.
func (s *Server) Round(t int) []int {
	return s.RoundDetail(t).Completed
}

// RoundDetail is Round with full failure telemetry. On a server with a
// checkpointer installed it also persists round state: a boundary
// checkpoint after each due round, and — through the streaming round —
// partial checkpoints mid-fold. A round resumed from a partial checkpoint
// (ResumeFrom) re-enters the interrupted round here: t must equal the
// checkpointed round.
//
// The whole round is one trace (DESIGN.md §16): RoundDetail roots the
// "fl.round" span (feeding fl_round_seconds), every remote call, retry
// attempt, fold merge and checkpoint write hangs off it as a child span,
// and — via the transport's trace headers — so does the handler work in
// the client and fleet processes serving the cohort. When an Audit
// recorder is installed, the round's outcome is additionally persisted as
// one RoundAudit record.
func (s *Server) RoundDetail(t int) RoundResult {
	sp := obs.StartRoot("fl.round", obs.M.FLRoundSeconds).WithRound(t)
	sc := sp.Context()
	retries0 := obs.M.TransportRetries.Value()
	attempts0 := obs.M.TransportAttempts.Value()
	var res RoundResult
	resumed, resumePrefix := false, 0
	if pp := s.pendingPartial; pp != nil {
		s.pendingPartial = nil
		if pp.Round == t {
			resumed, resumePrefix = true, pp.FoldN
			res = s.resumePartialRound(pp, t, sc)
		} else {
			// Driver bug: the resumed round must be replayed first. Fall
			// back to a fresh round — correctness of this round survives,
			// but the interrupted round's collected work is lost.
			obs.L().Warn("fl: pending partial round dropped",
				"partial_round", pp.Round, "round", t)
			res = s.runRound(s.Model, s.selectClients(), t, true, sc)
		}
	} else {
		res = s.runRound(s.Model, s.selectClients(), t, true, sc)
	}
	if s.ckpt != nil && s.ckpt.boundaryDue(t) {
		csp := obs.StartChildOf(sc, "fl.checkpoint", nil).WithRound(t)
		if err := s.ckpt.WriteBoundary(s.CheckpointAt(t + 1)); err != nil {
			obs.L().Warn("fl: boundary checkpoint failed", "round", t, "err", err)
		}
		csp.End()
	}
	dur := sp.End()
	s.recordAudit(&res, sc.Trace, dur, resumed, resumePrefix,
		obs.M.TransportRetries.Value()-retries0, obs.M.TransportAttempts.Value()-attempts0)
	return res
}

// SetCheckpointer installs c; subsequent training rounds persist their
// state on c's cadence. Fine-tuning rounds never checkpoint — they run
// inside the defense over a working model, not the global one.
func (s *Server) SetCheckpointer(c *Checkpointer) { s.ckpt = c }

// CheckpointAt captures the server's boundary state as of the given next
// round: the global model, the selection-RNG position and the population
// size.
func (s *Server) CheckpointAt(nextRound int) *Checkpoint {
	return &Checkpoint{
		NextRound:  nextRound,
		RNG:        s.sr.State(),
		Registered: s.populationSize(),
		Model:      nn.AppendModelState(nil, s.Model),
	}
}

// ResumeFrom restores the server to a checkpoint: model parameters and
// prune masks, selection-RNG position, and — for a partial checkpoint —
// the interrupted round, which the next RoundDetail(ck.NextRound) call
// completes from the recorded fold prefix. The server must be freshly
// built from the same template, config and population as the checkpointed
// one (the population size is verified; the rest cannot be).
//
// Determinism contract: a resumed run is bit-identical to the
// uninterrupted one when participants and the DropPolicy are stateless —
// pure functions of (id, round), like SyntheticClient and the chaos
// suite's scripted policies. A participant or policy that carries its own
// RNG across rounds re-runs the interrupted round with advanced state, and
// the bit-identity claim (not correctness) is lost.
func (s *Server) ResumeFrom(ck *Checkpoint) error {
	if ck.Registered != s.populationSize() {
		return fmt.Errorf("fl: resume with population %d, checkpoint has %d",
			s.populationSize(), ck.Registered)
	}
	if err := nn.ApplyModelState(s.Model, ck.Model); err != nil {
		return fmt.Errorf("fl: resume: %w", err)
	}
	s.sr.Restore(ck.RNG)
	s.pendingPartial = ck.Partial
	obs.M.FLResumes.Inc()
	if ck.Partial != nil {
		obs.M.FLResumedPartialRounds.Inc()
	}
	obs.L().Info("fl: resumed from checkpoint", "next_round", ck.NextRound,
		"rng_draws", ck.RNG.Draws, "partial", ck.Partial != nil)
	return nil
}

// ResumeLatest restores the server from the newest complete checkpoint in
// dir, returning the next round to run and whether a checkpoint was found.
func (s *Server) ResumeLatest(dir string) (nextRound int, resumed bool, err error) {
	ck, path, err := LatestCheckpoint(dir)
	if err != nil || ck == nil {
		return 0, false, err
	}
	if err := s.ResumeFrom(ck); err != nil {
		return 0, false, fmt.Errorf("%w (checkpoint %s)", err, path)
	}
	return ck.NextRound, true, nil
}

// populationSize is the registered population (registry servers) or the
// resident participant count.
func (s *Server) populationSize() int {
	if s.Registry != nil {
		return s.Registry.Len()
	}
	return len(s.Participants)
}

// runRound drives one aggregation round over the given cohort against
// model m (the global model for training rounds, the defense's working
// model for fine-tuning). With cfg.Streaming set and an aggregation rule
// that can fold incrementally, the round streams (DESIGN.md §12);
// otherwise it runs the legacy batch path. Both paths share the drop,
// failure-recording and quorum helpers below, so their survivor sets —
// and therefore their aggregates — cannot drift apart.
//
// The round runs under the trace rooted by its driver (RoundDetail or
// FineTune): sc is the round span's context, threaded into the collection
// context so every remote call and retry attempt becomes a child span,
// headers included across process boundaries. Every drop — policy or
// wire — counts into fl_dropped_total (wire failures additionally log the
// client's error with round/client attributes), and a below-quorum round
// counts into fl_quorum_failures_total. Instrumentation only observes the
// round's outcome after the fact; it touches no model arithmetic,
// scheduling or RNG stream, so rounds stay bit-identical with metrics
// enabled. durable marks training rounds against the global model — the
// only rounds partial checkpoints may describe. Fine-tuning passes false.
func (s *Server) runRound(m *nn.Sequential, selected []Participant, t int, durable bool, sc obs.SpanContext) RoundResult {
	if s.cfg.Streaming {
		if sa, ok := s.aggregator().(StreamingAggregator); ok {
			return s.runStreamingRound(m, sa, selected, t, durable, sc)
		}
		obs.M.FLStreamFallbacks.Inc()
		obs.L().Debug("fl: aggregator cannot stream, batch round",
			"round", t, "agg", fmt.Sprintf("%T", s.aggregator()))
	}
	return s.runBatchRound(m, selected, t, sc)
}

// beginRound opens a round's telemetry record.
func beginRound(selected []Participant, t int) RoundResult {
	res := RoundResult{Round: t, Selected: make([]int, 0, len(selected))}
	for _, p := range selected {
		res.Selected = append(res.Selected, p.ID())
	}
	return res
}

// filterByPolicy applies the DropPolicy, consuming its randomness stream
// in participant order before any concurrency so failure injection stays
// deterministic under every worker count, and returns the active cohort.
func (s *Server) filterByPolicy(selected []Participant, t int, res *RoundResult) []Participant {
	var active []Participant
	for _, p := range selected {
		if s.Drop != nil && s.Drop.Dropped(p.ID(), t) {
			res.Dropped = append(res.Dropped, p.ID())
			obs.M.FLDropped.Inc()
			obs.L().Debug("fl: client dropped by policy", "round", t, "client", p.ID())
			continue
		}
		active = append(active, p)
	}
	return active
}

// noteWireFailure records one client's failed update — the single code
// path both the batch and streaming rounds use, so a wire failure is
// accounted identically whichever way the round ran.
func (res *RoundResult) noteWireFailure(id, t int, err error) {
	res.Dropped = append(res.Dropped, id)
	if res.Errs == nil {
		res.Errs = make(map[int]error)
	}
	res.Errs[id] = err
	obs.M.FLDropped.Inc()
	obs.L().Warn("fl: client update failed", "round", t, "client", id, "err", err)
}

// roundContext derives the round's collection context: the deadline, plus
// the round span's context so remote calls trace as children of the round
// (the one context allocation per round; individual spans allocate
// nothing).
func (s *Server) roundContext(sc obs.SpanContext) (context.Context, context.CancelFunc) {
	ctx := context.Background()
	if sc.Valid() {
		ctx = obs.ContextWithSpan(ctx, sc)
	}
	if s.cfg.RoundTimeout > 0 {
		return context.WithTimeout(ctx, s.cfg.RoundTimeout)
	}
	return ctx, func() {}
}

// meetsQuorum decides whether a round with the given number of arrived
// updates applies; a discarded round is logged and counted. Below quorum
// the round delivers no update, as in a real deployment where the server
// abandons the round and retries.
func (s *Server) meetsQuorum(arrived, selected, t int) bool {
	if arrived > 0 && arrived >= s.quorumCount(selected) {
		return true
	}
	obs.M.FLQuorumFailures.Inc()
	obs.L().Warn("fl: round below quorum, discarded",
		"round", t, "arrived", arrived, "need", s.quorumCount(selected), "selected", selected)
	return false
}

// runBatchRound is the legacy round: materialize every delta, compact the
// survivors in participant order, aggregate once at round end.
func (s *Server) runBatchRound(m *nn.Sequential, selected []Participant, t int, sc obs.SpanContext) RoundResult {
	obs.M.FLRounds.Inc()
	res := beginRound(selected, t)
	global := m.ParamsVector()
	active := s.filterByPolicy(selected, t, &res)
	ctx, cancel := s.roundContext(sc)
	defer cancel()
	deltas := make([][]float64, len(active))
	errs := make([]error, len(active))
	parallel.For(len(active), func(i int) {
		deltas[i], errs[i] = localUpdate(ctx, active[i], global, t)
	})
	// Compact survivors in participant order, so aggregating a round with
	// wire failures is bit-identical to aggregating one where the same
	// clients were excluded up front.
	var ids []int
	var ok [][]float64
	for i, p := range active {
		if errs[i] != nil {
			res.noteWireFailure(p.ID(), t, errs[i])
			continue
		}
		ids = append(ids, p.ID())
		ok = append(ok, deltas[i])
	}
	res.Completed = ids
	obs.M.FLCompleted.Add(uint64(len(ids)))
	if !s.meetsQuorum(len(ok), len(selected), t) {
		return res
	}
	s.crash(CrashPostQuorumPreApply, t, len(ok))
	if wa, isWeighted := s.Agg.(WeightedAggregator); isWeighted {
		m.AddDeltaVector(1, wa.AggregateWeighted(ok, ids))
	} else {
		m.AddDeltaVector(1, s.aggregator().Aggregate(ok))
	}
	res.Applied = true
	return res
}

// runStreamingRound is the scale path: clients train concurrently inside
// a bounded window, but each arriving delta is folded — in participant
// order, through the aggregator's sharded Fold — and dropped immediately,
// so the server's working set is O(window × dim), not O(cohort × dim).
// The fold order and the shared drop/quorum helpers make the result
// bit-identical to runBatchRound for every shard count, worker count and
// dropout set (the streaming equivalence suite pins this).
func (s *Server) runStreamingRound(m *nn.Sequential, sa StreamingAggregator, selected []Participant, t int, durable bool, sc obs.SpanContext) RoundResult {
	obs.M.FLRounds.Inc()
	res := beginRound(selected, t)
	global := m.ParamsVector()
	active := s.filterByPolicy(selected, t, &res)
	ctx, cancel := s.roundContext(sc)
	defer cancel()

	fold := sa.BeginFold(len(global), s.shardCount(), &s.foldScratch)
	// The opening partial checkpoint (fold 0) records the drawn cohort and
	// policy drops, so a crash before any update folds still resumes into
	// this round instead of redrawing it.
	s.partialCheckpoint(m, &res, fold, t, 0, durable, sc)
	s.crash(CrashPreFold, t, 0)
	folds := s.collectAndFold(ctx, m, fold, active, global, t, &res, durable, 0)
	msp := obs.StartChildOf(sc, "fl.fold.merge", nil).WithRound(t)
	agg := fold.Finish()
	msp.End()
	obs.M.FLStreamInFlightPeak.Set(int64(res.PeakInFlight))
	obs.M.FLCompleted.Add(uint64(len(res.Completed)))
	if !s.meetsQuorum(len(res.Completed), len(selected), t) {
		return res
	}
	s.crash(CrashPostQuorumPreApply, t, folds)
	m.AddDeltaVector(1, agg)
	res.Applied = true
	return res
}

// collectAndFold runs the streaming round's collection window over active,
// folding survivors in participant order, and returns the final fold
// count. startFolds carries a resumed round's recorded prefix so the
// partial-checkpoint cadence and crash hooks see global fold counts.
func (s *Server) collectAndFold(ctx context.Context, m *nn.Sequential, fold Fold,
	active []Participant, global []float64, t int, res *RoundResult, durable bool, startFolds int) int {
	window := s.windowSize(len(active))
	type outcome struct {
		delta []float64
		err   error
	}
	results := make([]outcome, len(active))
	ready := make([]chan struct{}, len(active))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	var inFlight, peak int64
	// The producer admits at most window clients at a time; a slot is
	// released only after the fold loop below has consumed that client — in
	// participant order — so a slow early client throttles admission
	// rather than growing the working set. At most window deltas exist at
	// any instant, whatever the cohort size.
	sem := make(chan struct{}, window)
	go func() {
		for i := range active {
			sem <- struct{}{}
			go func(i int) {
				d, err := localUpdate(ctx, active[i], global, t)
				if d != nil {
					n := atomic.AddInt64(&inFlight, 1)
					for {
						p := atomic.LoadInt64(&peak)
						if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
							break
						}
					}
				}
				results[i] = outcome{delta: d, err: err}
				close(ready[i])
			}(i)
		}
	}()
	folds := startFolds
	for i, p := range active {
		<-ready[i]
		out := results[i]
		results[i] = outcome{} // discard: once folded, the delta is dead
		<-sem                  // client i consumed; admit the next one
		if out.err != nil {
			res.noteWireFailure(p.ID(), t, out.err)
			continue
		}
		res.Completed = append(res.Completed, p.ID())
		fold.Fold(p.ID(), out.delta)
		atomic.AddInt64(&inFlight, -1)
		folds++
		s.partialCheckpoint(m, res, fold, t, folds, durable, obs.SpanContextFrom(ctx))
		s.crash(CrashMidCollection, t, folds)
	}
	res.PeakInFlight = int(atomic.LoadInt64(&peak))
	return folds
}

// partialCheckpoint writes a mid-round checkpoint when one is due:
// quiesce the fold, snapshot its accumulator, seal it with the round's
// bookkeeping. A failed write logs and counts — the round itself carries
// on; durability degrades to the previous checkpoint.
func (s *Server) partialCheckpoint(m *nn.Sequential, res *RoundResult, fold Fold, t, folds int, durable bool, sc obs.SpanContext) {
	if !durable || s.ckpt == nil || !s.ckpt.partialDue(folds) {
		return
	}
	fc, ok := fold.(foldSnapshotter)
	if !ok {
		return
	}
	csp := obs.StartChildOf(sc, "fl.checkpoint", nil).WithRound(t)
	defer csp.End()
	acc, n, total := fc.snapshot()
	ck := s.CheckpointAt(t)
	ck.Partial = &PartialRound{
		Round:     t,
		Selected:  res.Selected,
		Completed: res.Completed,
		Dropped:   res.Dropped,
		FoldN:     n,
		Total:     total,
		Acc:       acc,
	}
	if err := s.ckpt.WritePartial(ck, folds); err != nil {
		obs.L().Warn("fl: partial checkpoint failed", "round", t, "folds", folds, "err", err)
	}
}

// resumePartialRound completes a round interrupted mid-stream: the cohort
// and drop record come from the checkpoint, the fold restarts from the
// restored accumulator, and only the participants past the recorded prefix
// are collected — in the same participant order, so the scalar fold
// sequence (and therefore the applied aggregate) is the uninterrupted
// round's.
func (s *Server) resumePartialRound(pp *PartialRound, t int, sc obs.SpanContext) RoundResult {
	sa, ok := s.aggregator().(StreamingAggregator)
	if !ok {
		// Partials are only written by streaming rounds; a server resumed
		// with a non-streaming rule is misconfigured. Redo the round over
		// the recorded cohort from scratch.
		obs.L().Warn("fl: partial checkpoint under non-streaming aggregator, re-running round", "round", t)
		return s.runRound(s.Model, s.materialize(pp.Selected), t, true, sc)
	}
	// The resume suffix is a child span of the round, so a resumed round's
	// tree shows the recorded prefix boundary explicitly.
	sp := obs.StartChildOf(sc, "fl.round.resume", nil).WithRound(t)
	defer sp.End()
	obs.M.FLRounds.Inc()
	res := RoundResult{
		Round:     t,
		Selected:  append([]int(nil), pp.Selected...),
		Completed: append([]int(nil), pp.Completed...),
		Dropped:   append([]int(nil), pp.Dropped...),
	}
	m := s.Model
	global := m.ParamsVector()
	// The remaining cohort: selected minus everyone the checkpoint already
	// accounts for, in the original participant order. Policy drops were
	// all recorded before the first fold, so the policy stream is not
	// re-consumed here.
	accounted := make(map[int]struct{}, len(pp.Completed)+len(pp.Dropped))
	for _, id := range pp.Completed {
		accounted[id] = struct{}{}
	}
	for _, id := range pp.Dropped {
		accounted[id] = struct{}{}
	}
	var remainingIDs []int
	for _, id := range pp.Selected {
		if _, done := accounted[id]; !done {
			remainingIDs = append(remainingIDs, id)
		}
	}
	active := s.materialize(remainingIDs)
	ctx, cancel := s.roundContext(sc)
	defer cancel()
	fold := sa.BeginFold(len(global), s.shardCount(), &s.foldScratch)
	fc, canRestore := fold.(foldSnapshotter)
	if !canRestore || len(pp.Acc) != len(global) {
		obs.L().Warn("fl: checkpointed fold state unusable, re-running round",
			"round", t, "acc_dim", len(pp.Acc), "dim", len(global))
		fold.Finish()
		return s.runRound(m, s.materialize(pp.Selected), t, true, sc)
	}
	fc.restore(pp.Acc, pp.FoldN, pp.Total)
	folds := s.collectAndFold(ctx, m, fold, active, global, t, &res, true, pp.FoldN)
	msp := obs.StartChildOf(sc, "fl.fold.merge", nil).WithRound(t)
	agg := fold.Finish()
	msp.End()
	obs.M.FLStreamInFlightPeak.Set(int64(res.PeakInFlight))
	obs.M.FLCompleted.Add(uint64(len(res.Completed) - len(pp.Completed)))
	if !s.meetsQuorum(len(res.Completed), len(res.Selected), t) {
		return res
	}
	s.crash(CrashPostQuorumPreApply, t, folds)
	m.AddDeltaVector(1, agg)
	res.Applied = true
	return res
}

// materialize resolves checkpointed client IDs back to participants:
// through the registry's factory, or by ID lookup over the resident
// population. Unknown IDs — a population that changed across the restart —
// panic: resuming against a different federation is a deployment error no
// aggregate should paper over.
func (s *Server) materialize(ids []int) []Participant {
	if s.Registry != nil {
		return s.Registry.Materialize(ids)
	}
	byID := make(map[int]Participant, len(s.Participants))
	for _, p := range s.Participants {
		byID[p.ID()] = p
	}
	out := make([]Participant, len(ids))
	for i, id := range ids {
		p, ok := byID[id]
		if !ok {
			panic(fmt.Sprintf("fl: resume references unknown client %d", id))
		}
		out[i] = p
	}
	return out
}

// shardCount resolves cfg.Shards (0 = the parallel worker count).
func (s *Server) shardCount() int {
	if s.cfg.Shards > 0 {
		return s.cfg.Shards
	}
	return parallel.Workers()
}

// windowSize resolves cfg.StreamWindow for a cohort of n (0 = twice the
// parallel worker count, so training stays saturated while the in-order
// fold catches up), clamped to [1, n].
func (s *Server) windowSize(n int) int {
	w := s.cfg.StreamWindow
	if w <= 0 {
		w = 2 * parallel.Workers()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// localUpdate collects one client's update, preferring the fallible
// context-aware path when the participant supports it.
func localUpdate(ctx context.Context, p Participant, global []float64, round int) ([]float64, error) {
	if fp, ok := p.(FallibleParticipant); ok {
		return fp.TryLocalUpdate(ctx, global, round)
	}
	d := p.LocalUpdate(global, round)
	if d == nil {
		return nil, errNilUpdate
	}
	return d, nil
}

// aggregator returns the configured aggregation rule (MeanAggregator when
// unset).
func (s *Server) aggregator() Aggregator {
	if s.Agg == nil {
		return MeanAggregator{}
	}
	return s.Agg
}

// quorumCount converts cfg.Quorum into the minimum number of arrived
// updates for a cohort of the given size (at least one).
func (s *Server) quorumCount(selected int) int {
	q := s.cfg.Quorum
	if q <= 0 {
		return 1
	}
	n := int(math.Ceil(q * float64(selected)))
	if n < 1 {
		n = 1
	}
	return n
}

// Train runs cfg.Rounds rounds. After each round, onRound (if non-nil) is
// invoked with the completed round index; experiments use it to trace
// accuracy curves (Fig. 3, Fig. 7).
func (s *Server) Train(onRound func(round int)) {
	for t := 0; t < s.cfg.Rounds; t++ {
		s.Round(t)
		if onRound != nil {
			onRound(t)
		}
	}
}

// selectClients draws SelectPerRound participants without replacement, or
// returns the full population when SelectPerRound is 0 (the paper's
// simplified all-participate setting). At least one attacker is present in
// every training iteration per the paper's threat model; the random draw
// itself is unbiased — the guarantee comes from the experiment setups
// having attackers in the population.
//
// With a Registry installed, the cohort is sampled from the registered
// population by the registry's O(k) partial shuffle and materialized
// through its factory; the resident-participant path keeps its historical
// rng.Perm draw, so existing seeded experiments reproduce unchanged.
func (s *Server) selectClients() []Participant {
	if s.Registry != nil {
		return s.Registry.Cohort(s.cfg.SelectPerRound, s.rng)
	}
	k := s.cfg.SelectPerRound
	if k <= 0 || k >= len(s.Participants) {
		return s.Participants
	}
	idx := s.rng.Perm(len(s.Participants))[:k]
	out := make([]Participant, k)
	for i, j := range idx {
		out[i] = s.Participants[j]
	}
	return out
}

// FineTune implements the defense's federated fine-tuning contract
// (internal/core.Tuner): it runs the given number of aggregation rounds
// over the full population starting from m, updating m in place. Prune
// masks installed on m survive because AddDeltaVector re-applies them.
// Fine-tuning rounds share Round's machinery end to end: the server's
// configured Agg rule, its Drop policy, the round timeout and the quorum
// semantics all apply, and wire failures degrade to recorded dropouts.
//
// A registry-backed server cannot hold its population resident, so its
// fine-tuning rounds sample a cohort per round exactly like training
// rounds do.
func (s *Server) FineTune(m *nn.Sequential, rounds int) {
	for t := 0; t < rounds; t++ {
		obs.M.FLFineTuneRounds.Inc()
		cohort := s.Participants
		if s.Registry != nil {
			cohort = s.selectClients()
		}
		// Each fine-tuning round roots its own trace: it is driven by the
		// defense pipeline, not RoundDetail, so no round span exists above
		// it.
		sp := obs.StartRoot("fl.finetune.round", obs.M.FLRoundSeconds).WithRound(t)
		s.runRound(m, cohort, t, false, sp.Context())
		sp.End()
	}
}
