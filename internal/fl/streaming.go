package fl

import (
	"fmt"
	"sync"

	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Streaming aggregation (DESIGN.md §12). The batch round materializes every
// participant's update delta before aggregating — O(cohort × dim) memory —
// which caps a federation at however many deltas fit in RAM. The streaming
// round instead folds each update into a running aggregate the moment it
// arrives and discards it, so peak memory follows the collection window
// (a few in-flight updates), not the cohort.
//
// Bit-identity contract: the legacy aggregate is a per-coordinate scalar
// recurrence in participant order (acc[j] += d_i[j] for i = 0,1,2,…, then
// one final scale). Floating-point addition is order-sensitive, so the
// streaming path preserves exactly that order in two ways:
//
//   - The round driver folds survivors strictly in participant order.
//     Clients still *train* concurrently (a bounded window of them at a
//     time); only the fold consumes them in order.
//   - Shards parallelize across the parameter dimension, not across
//     clients: shard s owns the contiguous coordinate range
//     Partition(dim, shards)[s] and applies every fold to its range in
//     arrival (= participant) order. Each coordinate therefore sees the
//     identical scalar sequence for every shard count, worker count and
//     dropout set, and merging the shard partials is the concatenation of
//     their ranges in shard order — exact by construction.
//
// A cohort-sliced design (shard s folds clients [lo,hi) and partial sums
// are added at the end) was rejected: regrouping float additions changes
// results bitwise, which would break the repository's equivalence suites.
// Likewise a running Welford mean (acc += (d-acc)/n) is not bit-identical
// to sum-then-scale, so the fold keeps the legacy sum-then-scale form.

// StreamingAggregator is implemented by aggregation rules that can fold
// one arriving delta at a time into a running aggregate. MeanAggregator
// and SampleWeightedMean stream; the Byzantine-robust rules in
// internal/robust need every delta at once (pairwise distances, per
// coordinate sorts) and deliberately do not, so a streaming server falls
// back to the batch round for them.
type StreamingAggregator interface {
	Aggregator
	// BeginFold opens one round's fold over parameter vectors of the
	// given dimension, parallelized across shards aggregator goroutines
	// (shards <= 1 folds inline on the caller's goroutine). scratch, when
	// non-nil, backs the running accumulator so a long-lived server reuses
	// one buffer across rounds; the slice returned by Finish then remains
	// valid only until the next BeginFold against the same arena.
	BeginFold(dim, shards int, scratch *tensor.Arena) Fold
}

// Fold accumulates one round's update deltas. Fold must be called from a
// single goroutine, in participant order over the round's survivors — the
// order the batch path compacts them in — and does not retain the delta
// slice past the call's internal hand-off. Finish must be called exactly
// once; it merges the shard partials and returns the aggregate (nil when
// nothing was folded).
type Fold interface {
	Fold(id int, delta []float64)
	Finish() []float64
}

// Compile-time streaming conformance of the built-in rules.
var (
	_ StreamingAggregator = MeanAggregator{}
	_ StreamingAggregator = SampleWeightedMean{}
)

// BeginFold implements StreamingAggregator: the streaming form of plain
// coordinate-wise averaging.
func (MeanAggregator) BeginFold(dim, shards int, scratch *tensor.Arena) Fold {
	return newShardedFold(dim, shards, scratch, nil, 0)
}

// BeginFold implements StreamingAggregator: the streaming form of
// AggregateWeighted, weighting each fold by the client's sample count.
func (s SampleWeightedMean) BeginFold(dim, shards int, scratch *tensor.Arena) Fold {
	eta := s.Eta
	if eta == 0 {
		eta = 1
	}
	weightFor := func(id int) float64 {
		if n, ok := s.Counts[id]; ok && n > 0 {
			return float64(n)
		}
		return 1
	}
	return newShardedFold(dim, shards, scratch, weightFor, eta)
}

// foldQueueDepth is the per-shard channel buffer. A queued delta is still
// referenced until every shard has folded its range, so the depth bounds
// how far the fold pipeline can run ahead of the slowest shard — part of
// the O(window) peak-memory budget, kept deliberately small.
const foldQueueDepth = 4

// foldItem is one delta in flight to the shard goroutines, with its weight
// resolved by the caller so every shard applies the same scalar.
type foldItem struct {
	delta  []float64
	weight float64
}

// shardedFold is the shared fold behind MeanAggregator and
// SampleWeightedMean: a running per-coordinate sum (optionally weighted)
// over coordinate-range shards, scaled once in Finish.
type shardedFold struct {
	acc      []float64
	ranges   [][2]int
	chans    []chan foldItem
	wg       sync.WaitGroup
	syncWg   sync.WaitGroup
	n        int
	weighted bool
	weightFn func(id int) float64
	total    float64
	eta      float64
	finished bool
}

// foldSnapshotter is the checkpoint seam on a Fold: snapshot quiesces the
// shards and copies the running state; restore seeds a fresh fold with a
// checkpointed accumulator so a resumed round continues the exact scalar
// sequence. Folds that cannot snapshot simply don't implement it — the
// server then skips partial checkpoints for that aggregation rule.
type foldSnapshotter interface {
	snapshot() (acc []float64, n int, total float64)
	restore(acc []float64, n int, total float64)
}

var _ foldSnapshotter = (*shardedFold)(nil)

// newShardedFold sizes the shard plan and spins up the shard goroutines.
// shards <= 0 resolves to the parallel worker count; it is capped at dim
// so every shard owns at least one coordinate.
func newShardedFold(dim, shards int, scratch *tensor.Arena, weightFn func(int) float64, eta float64) *shardedFold {
	if shards <= 0 {
		shards = parallel.Workers()
	}
	if shards > dim {
		shards = dim
	}
	if shards < 1 {
		shards = 1
	}
	var acc []float64
	if scratch != nil {
		t := scratch.Get("fl.fold.acc", dim)
		t.Zero()
		acc = t.Data
	} else {
		acc = make([]float64, dim)
	}
	f := &shardedFold{acc: acc, weighted: weightFn != nil, weightFn: weightFn, eta: eta}
	if shards > 1 {
		f.ranges = parallel.Partition(dim, shards)
		f.chans = make([]chan foldItem, len(f.ranges))
		for s := range f.chans {
			ch := make(chan foldItem, foldQueueDepth)
			f.chans[s] = ch
			lo, hi := f.ranges[s][0], f.ranges[s][1]
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				for it := range ch {
					// A nil delta is the quiesce barrier (see snapshot):
					// by FIFO order every prior item has been folded.
					if it.delta == nil {
						f.syncWg.Done()
						continue
					}
					f.foldRange(it, lo, hi)
				}
			}()
		}
	}
	return f
}

// foldRange applies one delta to the coordinate range [lo,hi). The
// unweighted loop is a plain add — not a multiply by 1.0 — so the scalar
// sequence is literally the one MeanAggregator.Aggregate runs.
func (f *shardedFold) foldRange(it foldItem, lo, hi int) {
	d := it.delta
	if f.weighted {
		w := it.weight
		for j := lo; j < hi; j++ {
			f.acc[j] += w * d[j]
		}
		return
	}
	for j := lo; j < hi; j++ {
		f.acc[j] += d[j]
	}
}

// Fold implements Fold.
func (f *shardedFold) Fold(id int, delta []float64) {
	if f.finished {
		panic("fl: Fold after Finish")
	}
	if len(delta) != len(f.acc) {
		panic(fmt.Sprintf("fl: delta length mismatch %d vs %d", len(delta), len(f.acc)))
	}
	it := foldItem{delta: delta, weight: 1}
	if f.weighted {
		it.weight = f.weightFn(id)
		f.total += it.weight
	}
	f.n++
	if f.chans == nil {
		f.foldRange(it, 0, len(f.acc))
		return
	}
	for _, ch := range f.chans {
		ch <- it
	}
}

// quiesce blocks until every shard has folded everything queued before the
// call: one nil-delta barrier item per shard channel, acknowledged through
// syncWg. The per-shard channels are FIFO with a single consumer, so once
// every barrier is acknowledged the accumulator is consistent — and the
// WaitGroup edge publishes the shard goroutines' acc writes to the caller.
func (f *shardedFold) quiesce() {
	if f.chans == nil {
		return
	}
	f.syncWg.Add(len(f.chans))
	for _, ch := range f.chans {
		ch <- foldItem{}
	}
	f.syncWg.Wait()
}

// snapshot implements foldSnapshotter: the accumulator copy plus the fold
// count and accumulated weight, consistent as of every Fold call that
// returned before snapshot was called.
func (f *shardedFold) snapshot() ([]float64, int, float64) {
	f.quiesce()
	return append([]float64(nil), f.acc...), f.n, f.total
}

// restore implements foldSnapshotter. Must be called before the first
// Fold; the channel sends of subsequent folds publish the restored state
// to the shard goroutines.
func (f *shardedFold) restore(acc []float64, n int, total float64) {
	if f.n != 0 {
		panic("fl: fold restore after Fold")
	}
	if len(acc) != len(f.acc) {
		panic(fmt.Sprintf("fl: fold restore dim %d vs %d", len(acc), len(f.acc)))
	}
	copy(f.acc, acc)
	f.n = n
	f.total = total
}

// Finish implements Fold: it drains and joins the shard goroutines —
// merging the partial aggregates in shard order, which for coordinate
// -range shards is the concatenation of their ranges — then applies the
// final scale. The merge + scale is traced into fl_shard_merge_seconds.
func (f *shardedFold) Finish() []float64 {
	if f.finished {
		panic("fl: Finish called twice")
	}
	f.finished = true
	sp := obs.StartSpan("fl.shard_merge", obs.M.FLShardMergeSeconds)
	defer sp.End()
	for _, ch := range f.chans {
		close(ch)
	}
	f.wg.Wait()
	if f.n == 0 {
		return nil
	}
	scale := 1.0 / float64(f.n)
	if f.weighted {
		scale = f.eta / f.total
	}
	for j := range f.acc {
		f.acc[j] *= scale
	}
	return f.acc
}
