// Package neuralcleanse implements the Neural Cleanse defense (Wang et
// al., S&P 2019), the comparison baseline of the paper's Table IV. For
// every candidate target label it reverse-engineers the smallest input
// trigger (mask + pattern) that flips arbitrary inputs to that label,
// detects backdoored labels as L1-norm outliers via the median absolute
// deviation, and mitigates by pruning the neurons most activated by the
// reconstructed trigger.
//
// Per the paper's comparison protocol, the optimization consumes only the
// held-out test split (client training data is private) and uses an L1
// ("Lasso") regularizer on the mask.
package neuralcleanse

import (
	"fmt"
	"math"
	"sort"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Config parameterizes trigger reverse-engineering.
type Config struct {
	// Steps of projected gradient descent per candidate label.
	Steps int
	// Batch is the minibatch size drawn (round-robin) from the input data.
	Batch int
	// LR is the optimization learning rate.
	LR float64
	// Lambda is the Lasso (L1) coefficient on the mask.
	Lambda float64
}

// DefaultConfig returns a configuration scaled to the reproduction's
// synthetic tasks (the paper's comparison used 1000 steps × 1000-sample
// minibatches on GPU hardware; this is the CPU-budget equivalent).
func DefaultConfig() Config {
	return Config{Steps: 120, Batch: 40, LR: 0.2, Lambda: 0.02}
}

// ReversedTrigger is the optimization result for one candidate label.
type ReversedTrigger struct {
	Label int
	// Mask has one value in [0,1] per spatial position (H·W); Pattern has
	// one value in [0,1] per input element (C·H·W). A triggered input is
	// (1−mask)·x + mask·pattern, channel-sharing the mask.
	Mask, Pattern []float64
	// MaskNorm is the L1 norm of the mask, the outlier statistic.
	MaskNorm float64
	// FlipRate is the fraction of optimization inputs classified as Label
	// after applying the reversed trigger.
	FlipRate float64
}

// ReverseTrigger optimizes a minimal trigger flipping data to label. The
// model is cloned and frozen; m is not mutated.
func ReverseTrigger(m *nn.Sequential, data *dataset.Dataset, label int, cfg Config) ReversedTrigger {
	if cfg.Steps <= 0 || cfg.Batch <= 0 || cfg.LR <= 0 {
		panic(fmt.Sprintf("neuralcleanse: bad config %+v", cfg))
	}
	model := m.Clone()
	nn.FreezeStats(model)
	s := data.Shape
	hw := s.H * s.W
	mask := make([]float64, hw)
	pattern := make([]float64, s.Elems())
	for i := range mask {
		mask[i] = 0.1
	}
	for i := range pattern {
		pattern[i] = 0.5
	}
	labels := make([]int, cfg.Batch)
	for i := range labels {
		labels[i] = label
	}
	pos := 0
	for step := 0; step < cfg.Steps; step++ {
		// Assemble the batch x' = (1−m)x + m·p.
		x := tensor.New(cfg.Batch, s.C, s.H, s.W)
		raw := make([][]float64, cfg.Batch)
		for b := 0; b < cfg.Batch; b++ {
			sm := data.Samples[pos%data.Len()]
			pos++
			raw[b] = sm.X
			for c := 0; c < s.C; c++ {
				for i := 0; i < hw; i++ {
					el := c*hw + i
					x.Data[b*s.Elems()+el] = (1-mask[i])*sm.X[el] + mask[i]*pattern[el]
				}
			}
		}
		model.ZeroGrads()
		logits := model.Forward(x, true)
		_, dlogits := nn.SoftmaxXent(logits, labels)
		dx := model.Backward(dlogits)
		// Gradients w.r.t. mask and pattern, accumulated over the batch.
		gMask := make([]float64, hw)
		gPat := make([]float64, s.Elems())
		for b := 0; b < cfg.Batch; b++ {
			for c := 0; c < s.C; c++ {
				for i := 0; i < hw; i++ {
					el := c*hw + i
					g := dx.Data[b*s.Elems()+el]
					gMask[i] += g * (pattern[el] - raw[b][el])
					gPat[el] += g * mask[i]
				}
			}
		}
		// Projected gradient step with Lasso on the mask.
		for i := range mask {
			mask[i] -= cfg.LR * (gMask[i] + cfg.Lambda*sign(mask[i]))
			mask[i] = clamp01(mask[i])
		}
		for el := range pattern {
			pattern[el] -= cfg.LR * gPat[el]
			pattern[el] = clamp01(pattern[el])
		}
	}
	out := ReversedTrigger{Label: label, Mask: mask, Pattern: pattern}
	for _, v := range mask {
		out.MaskNorm += math.Abs(v)
	}
	out.FlipRate = flipRate(model, data, label, mask, pattern, cfg.Batch)
	return out
}

// ReverseAll reverse-engineers a trigger for every label.
func ReverseAll(m *nn.Sequential, data *dataset.Dataset, cfg Config) []ReversedTrigger {
	out := make([]ReversedTrigger, data.Classes)
	for l := 0; l < data.Classes; l++ {
		out[l] = ReverseTrigger(m, data, l, cfg)
	}
	return out
}

// DetectOutliersMAD flags labels whose reversed-trigger mask norm is an
// anomaly: more than threshold median-absolute-deviations *below* the
// median (backdoored labels admit unusually small triggers). Neural
// Cleanse uses threshold 2 with the MAD consistency constant 1.4826.
func DetectOutliersMAD(triggers []ReversedTrigger, threshold float64) []int {
	norms := make([]float64, len(triggers))
	for i, t := range triggers {
		norms[i] = t.MaskNorm
	}
	med := median(norms)
	devs := make([]float64, len(norms))
	for i, v := range norms {
		devs[i] = math.Abs(v - med)
	}
	mad := 1.4826 * median(devs)
	if mad == 0 {
		return nil
	}
	var out []int
	for i, v := range norms {
		if (med-v)/mad > threshold {
			out = append(out, i)
		}
	}
	return out
}

// Mitigate removes the backdoor indicated by a reversed trigger: neurons
// of the model's last convolutional layer are ranked by how much more they
// activate on trigger-stamped data than on clean data, and pruned in that
// order until the evaluator drops below minAcc. m is modified in place.
// It returns the number of pruned neurons.
func Mitigate(m *nn.Sequential, trig ReversedTrigger, data *dataset.Dataset, eval core.ScopedEvaluator, minAcc float64) int {
	li := m.LastConvIndex()
	if li < 0 {
		panic("neuralcleanse: model has no conv layer")
	}
	clean := metrics.LocalActivations(m, li, data, 0)
	stamped := stampDataset(data, trig)
	triggered := metrics.LocalActivations(m, li, stamped, 0)
	diff := make([]float64, len(clean))
	for i := range diff {
		diff[i] = triggered[i] - clean[i]
	}
	order := argsortDesc(diff)
	res := core.PruneToThreshold(m, li, order, eval, minAcc, 0)
	return len(res.Pruned)
}

// stampDataset applies a reversed trigger to every sample of ds.
func stampDataset(ds *dataset.Dataset, trig ReversedTrigger) *dataset.Dataset {
	s := ds.Shape
	hw := s.H * s.W
	out := &dataset.Dataset{Shape: s, Classes: ds.Classes}
	for _, sm := range ds.Samples {
		p := sm.Clone()
		for c := 0; c < s.C; c++ {
			for i := 0; i < hw; i++ {
				el := c*hw + i
				p.X[el] = (1-trig.Mask[i])*p.X[el] + trig.Mask[i]*trig.Pattern[el]
			}
		}
		out.Samples = append(out.Samples, p)
	}
	return out
}

// flipRate measures how often the reversed trigger flips data to label.
func flipRate(m *nn.Sequential, data *dataset.Dataset, label int, mask, pattern []float64, batch int) float64 {
	stamped := stampDataset(data, ReversedTrigger{Mask: mask, Pattern: pattern})
	flipped := 0
	for lo := 0; lo < stamped.Len(); lo += batch {
		hi := lo + batch
		if hi > stamped.Len() {
			hi = stamped.Len()
		}
		x, _ := stamped.Batch(lo, hi)
		for _, p := range nn.Argmax(m.Forward(x, false)) {
			if p == label {
				flipped++
			}
		}
	}
	return float64(flipped) / float64(stamped.Len())
}

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func argsortDesc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx
}
