package neuralcleanse

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
)

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("median = %g, want 2", got)
	}
	if got := median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("median = %g, want 2.5", got)
	}
	if got := median(nil); got != 0 {
		t.Fatalf("median(nil) = %g, want 0", got)
	}
}

func TestDetectOutliersMAD(t *testing.T) {
	mk := func(norms ...float64) []ReversedTrigger {
		out := make([]ReversedTrigger, len(norms))
		for i, n := range norms {
			out[i] = ReversedTrigger{Label: i, MaskNorm: n}
		}
		return out
	}
	// Label 2 has a drastically smaller trigger: backdoor.
	flagged := DetectOutliersMAD(mk(50, 52, 3, 49, 51, 48, 50, 53, 47, 51), 2)
	if len(flagged) != 1 || flagged[0] != 2 {
		t.Fatalf("flagged %v, want [2]", flagged)
	}
	// Uniform norms: nothing flagged.
	if got := DetectOutliersMAD(mk(50, 50.2, 49.8, 50.1, 49.9), 2); len(got) != 0 {
		t.Fatalf("flagged %v on uniform norms", got)
	}
	// Larger-than-median norms must NOT be flagged (only small triggers
	// indicate backdoors).
	if got := DetectOutliersMAD(mk(50, 52, 500, 49, 51), 2); len(got) != 0 {
		t.Fatalf("flagged %v for a large-norm label", got)
	}
}

func TestStampDatasetInterpolates(t *testing.T) {
	ds := &dataset.Dataset{
		Shape:   dataset.Shape{C: 1, H: 2, W: 2},
		Classes: 2,
		Samples: []dataset.Sample{{X: []float64{0, 0, 1, 1}, Label: 0}},
	}
	trig := ReversedTrigger{
		Mask:    []float64{1, 0.5, 0, 0},
		Pattern: []float64{1, 1, 1, 1},
	}
	out := stampDataset(ds, trig)
	want := []float64{1, 0.5, 1, 1}
	for i, w := range want {
		if out.Samples[0].X[i] != w {
			t.Fatalf("stamped = %v, want %v", out.Samples[0].X, want)
		}
	}
	// Original untouched.
	if ds.Samples[0].X[0] != 0 {
		t.Fatal("stampDataset mutated input")
	}
}

// TestReverseFindsPlantedBackdoor trains a small model with a pixel
// backdoor and verifies that (a) the reversed trigger for the backdoored
// target label flips inputs, and (b) its mask norm is among the smallest.
func TestReverseFindsPlantedBackdoor(t *testing.T) {
	if testing.Short() {
		t.Skip("trigger reverse-engineering is slow")
	}
	rng := rand.New(rand.NewSource(60))
	train, test := dataset.GenSynthMNIST(dataset.GenConfig{TrainPerClass: 60, TestPerClass: 20, Seed: 4})
	poison := dataset.PoisonConfig{
		Trigger:     dataset.PixelPattern(3, train.Shape),
		VictimLabel: 9,
		TargetLabel: 1,
		Copies:      2,
	}
	poisoned := dataset.PoisonTrainSet(train, poison)
	m := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rng)
	fl.TrainLocal(m, poisoned, fl.Config{LocalEpochs: 6, BatchSize: 20, LR: 0.05}, rng)
	if aa := metrics.AttackSuccessRate(m, test, poison, 0); aa < 0.8 {
		t.Fatalf("planted backdoor too weak for the test: AA=%.2f", aa)
	}

	cfg := Config{Steps: 80, Batch: 40, LR: 0.2, Lambda: 0.02}
	target := ReverseTrigger(m, test, poison.TargetLabel, cfg)
	if target.FlipRate < 0.8 {
		t.Fatalf("reversed trigger flips only %.2f of inputs", target.FlipRate)
	}
	// Compare with a couple of benign labels: the backdoored label's
	// trigger should be no larger than theirs.
	for _, benign := range []int{3, 6} {
		b := ReverseTrigger(m, test, benign, cfg)
		if target.MaskNorm > b.MaskNorm*1.5 {
			t.Fatalf("backdoor trigger norm %.2f vs benign label %d norm %.2f",
				target.MaskNorm, benign, b.MaskNorm)
		}
	}
}

func TestMitigateReducesAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("mitigation end-to-end is slow")
	}
	rng := rand.New(rand.NewSource(61))
	train, test := dataset.GenSynthMNIST(dataset.GenConfig{TrainPerClass: 60, TestPerClass: 20, Seed: 5})
	poison := dataset.PoisonConfig{
		Trigger:     dataset.PixelPattern(3, train.Shape),
		VictimLabel: 9,
		TargetLabel: 1,
		Copies:      2,
	}
	poisoned := dataset.PoisonTrainSet(train, poison)
	m := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rng)
	fl.TrainLocal(m, poisoned, fl.Config{LocalEpochs: 6, BatchSize: 20, LR: 0.05}, rng)
	before := metrics.AttackSuccessRate(m, test, poison, 0)
	if before < 0.8 {
		t.Fatalf("planted backdoor too weak: AA=%.2f", before)
	}
	trig := ReverseTrigger(m, test, poison.TargetLabel, Config{Steps: 80, Batch: 40, LR: 0.2, Lambda: 0.02})
	evalFn := metrics.NewSuffixEvaluator(test, 0)
	baseline := evalFn.Evaluate(m)
	pruned := Mitigate(m, trig, test, evalFn, baseline-0.1)
	if pruned == 0 {
		t.Fatal("mitigation pruned nothing")
	}
	after := metrics.AttackSuccessRate(m, test, poison, 0)
	if after > before {
		t.Fatalf("mitigation increased AA: %.2f -> %.2f", before, after)
	}
}

func TestReverseTriggerRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	ReverseTrigger(nil, nil, 0, Config{})
}
