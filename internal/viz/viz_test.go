package viz

import (
	"bytes"
	"image/png"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
)

func TestSampleImageGray(t *testing.T) {
	s := dataset.Shape{C: 1, H: 2, W: 2}
	img := SampleImage([]float64{0, 0.5, 1, 2}, s)
	r, g, b, a := img.At(0, 0).RGBA()
	if r != 0 || g != 0 || b != 0 || a != 0xffff {
		t.Fatalf("black pixel rendered as %d,%d,%d,%d", r, g, b, a)
	}
	r, _, _, _ = img.At(1, 1).RGBA()
	if r != 0xffff {
		t.Fatalf("over-range pixel not clamped to white: %d", r)
	}
	r, _, _, _ = img.At(1, 0).RGBA()
	if r == 0 || r == 0xffff {
		t.Fatalf("mid-gray pixel rendered as extreme: %d", r)
	}
}

func TestSampleImageRGB(t *testing.T) {
	s := dataset.Shape{C: 3, H: 1, W: 1}
	img := SampleImage([]float64{1, 0, 0}, s)
	r, g, b, _ := img.At(0, 0).RGBA()
	if r != 0xffff || g != 0 || b != 0 {
		t.Fatalf("red pixel rendered as %d,%d,%d", r, g, b)
	}
}

func TestSampleImagePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad sample length accepted")
		}
	}()
	SampleImage([]float64{1}, dataset.Shape{C: 1, H: 2, W: 2})
}

func TestGridDimensions(t *testing.T) {
	s := dataset.Shape{C: 1, H: 4, W: 4}
	samples := make([]dataset.Sample, 5)
	for i := range samples {
		samples[i] = dataset.Sample{X: make([]float64, s.Elems())}
	}
	img := Grid(samples, s, 2)
	// 2 cols, 3 rows, 1px separators: w = 2*5-1 = 9, h = 3*5-1 = 14.
	bounds := img.Bounds()
	if bounds.Dx() != 9 || bounds.Dy() != 14 {
		t.Fatalf("grid %dx%d, want 9x14", bounds.Dx(), bounds.Dy())
	}
}

func TestTriggerComparisonPairs(t *testing.T) {
	tr, _ := dataset.GenSynthMNIST(dataset.GenConfig{TrainPerClass: 1, TestPerClass: 1, Seed: 1})
	trig := dataset.PixelPattern(3, tr.Shape)
	img := TriggerComparison(tr.Samples[:3], tr.Shape, trig)
	// 3 pairs → 2 cols × 3 rows of 16px tiles + separators.
	bounds := img.Bounds()
	if bounds.Dx() != 2*17-1 || bounds.Dy() != 3*17-1 {
		t.Fatalf("comparison %dx%d", bounds.Dx(), bounds.Dy())
	}
}

func TestWritePNGDecodes(t *testing.T) {
	s := dataset.Shape{C: 1, H: 3, W: 3}
	img := SampleImage(make([]float64, 9), s)
	var buf bytes.Buffer
	if err := WritePNG(&buf, img); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 3 {
		t.Fatal("decoded PNG has wrong size")
	}
}

func TestHistogram(t *testing.T) {
	img := Histogram([]float64{-1, -1, 0, 1, 1, 1}, 3, 30, 20)
	if img.Bounds().Dx() != 30 || img.Bounds().Dy() != 20 {
		t.Fatal("histogram geometry wrong")
	}
	// The right-most bin (value 1, count 3) must reach the top row; the
	// middle bin must not.
	_, _, b, _ := img.At(25, 0).RGBA()
	if b < 0x8000 {
		t.Fatal("tallest bar does not reach the top")
	}
	// Empty input renders blank without panicking.
	Histogram(nil, 3, 10, 10)
	// Constant input must not divide by zero.
	Histogram([]float64{2, 2, 2}, 3, 10, 10)
}
