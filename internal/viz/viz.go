// Package viz renders dataset samples, backdoor triggers and weight
// distributions as PNG images, for documentation and for eyeballing what
// the synthetic generators and attacks actually produce.
package viz

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
)

// SampleImage converts one sample (values in [0,1]) to an image. Single-
// channel samples render as grayscale; three-channel samples as RGB.
func SampleImage(x []float64, s dataset.Shape) image.Image {
	if len(x) != s.Elems() {
		panic(fmt.Sprintf("viz: sample length %d, want %d", len(x), s.Elems()))
	}
	img := image.NewRGBA(image.Rect(0, 0, s.W, s.H))
	hw := s.H * s.W
	for y := 0; y < s.H; y++ {
		for xx := 0; xx < s.W; xx++ {
			var r, g, b float64
			switch s.C {
			case 3:
				r = x[0*hw+y*s.W+xx]
				g = x[1*hw+y*s.W+xx]
				b = x[2*hw+y*s.W+xx]
			default:
				v := x[y*s.W+xx]
				r, g, b = v, v, v
			}
			img.Set(xx, y, color.RGBA{R: to8(r), G: to8(g), B: to8(b), A: 255})
		}
	}
	return img
}

// Grid tiles samples into a cols-wide grid with a 1-pixel separator.
// Fewer samples than a full last row leave black tiles.
func Grid(samples []dataset.Sample, s dataset.Shape, cols int) image.Image {
	if cols <= 0 {
		panic(fmt.Sprintf("viz: non-positive column count %d", cols))
	}
	rows := (len(samples) + cols - 1) / cols
	if rows == 0 {
		rows = 1
	}
	const sep = 1
	w := cols*(s.W+sep) - sep
	h := rows*(s.H+sep) - sep
	out := image.NewRGBA(image.Rect(0, 0, w, h))
	for i, sm := range samples {
		tile := SampleImage(sm.X, s)
		ox := (i % cols) * (s.W + sep)
		oy := (i / cols) * (s.H + sep)
		for y := 0; y < s.H; y++ {
			for x := 0; x < s.W; x++ {
				out.Set(ox+x, oy+y, tile.At(x, y))
			}
		}
	}
	return out
}

// TriggerComparison renders clean/triggered pairs side by side: for each
// input sample, the clean version and the same sample with the trigger
// stamped.
func TriggerComparison(samples []dataset.Sample, s dataset.Shape, trig dataset.Trigger) image.Image {
	var tiles []dataset.Sample
	for _, sm := range samples {
		tiles = append(tiles, sm)
		p := sm.Clone()
		trig.Apply(p.X, s)
		tiles = append(tiles, p)
	}
	return Grid(tiles, s, 2)
}

// WritePNG encodes img to w.
func WritePNG(w io.Writer, img image.Image) error {
	if err := png.Encode(w, img); err != nil {
		return fmt.Errorf("viz: WritePNG: %w", err)
	}
	return nil
}

// Histogram renders a simple bar-chart PNG of values bucketed into bins,
// used to eyeball weight distributions before and after the AW step.
func Histogram(values []float64, bins, width, height int) image.Image {
	if bins <= 0 || width <= 0 || height <= 0 {
		panic("viz: non-positive histogram geometry")
	}
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			img.Set(x, y, color.RGBA{R: 255, G: 255, B: 255, A: 255})
		}
	}
	if len(values) == 0 {
		return img
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, bins)
	for _, v := range values {
		b := int(float64(bins) * (v - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	barW := width / bins
	if barW < 1 {
		barW = 1
	}
	bar := color.RGBA{R: 40, G: 90, B: 200, A: 255}
	for b, c := range counts {
		barH := c * (height - 1) / maxCount
		for x := b * barW; x < (b+1)*barW && x < width; x++ {
			for y := height - 1; y >= height-1-barH && y >= 0; y-- {
				img.Set(x, y, bar)
			}
		}
	}
	return img
}

func to8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return uint8(v*255 + 0.5)
}
