package nn

import (
	"fmt"
	"math/rand"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Dense is a fully connected layer over (N, In) batches. Each output unit is
// one "neuron" in the paper's pruning terminology.
type Dense struct {
	name    string
	in, out int

	// W has shape (In, Out); B has shape (Out).
	W, B *Param

	pruned []bool

	// evalReuse routes inference outputs through the scratch arena
	// (Sequential.SetEvalReuse).
	evalReuse bool

	// x caches the input of the last training forward pass.
	x *tensor.Tensor

	// scratch holds the reusable train-mode output, the dW gradient
	// scratch and the returned dx, so a warm step allocates nothing. Not
	// cloned or serialized.
	scratch tensor.Arena

	// x32/scratch32 are the float32-backend equivalents of x/scratch
	// (layers32.go). The float32 shadow weights also live in scratch32.
	x32       *tensor.T32
	scratch32 tensor.Arena32
}

var _ Prunable = (*Dense)(nil)

// NewDense builds a fully connected layer with He-normal initialization.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: %s: non-positive dims %d×%d", name, in, out))
	}
	l := &Dense{
		name:   name,
		in:     in,
		out:    out,
		W:      newParam(name+".W", in, out),
		B:      newParam(name+".B", out),
		pruned: make([]bool, out),
	}
	l.B.NoDecay = true
	heInit(l.W.Value, in, rng)
	return l
}

// Name implements Layer.
func (l *Dense) Name() string { return l.name }

// In returns the input width.
func (l *Dense) In() int { return l.in }

// Out returns the output width.
func (l *Dense) Out() int { return l.out }

// SetL2 sets an extra L2 penalty on the layer's weights (not bias).
func (l *Dense) SetL2(lambda float64) { l.W.L2 = lambda }

// Forward implements Layer for x of shape (N, In).
func (l *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.in {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N %d]", l.name, x.Shape(), l.in))
	}
	n := x.Dim(0)
	// The training output buffer is reused across steps; inference passes
	// allocate fresh because callers may retain the result, unless eval
	// reuse is on (suffix scopes consume each output before the next pass).
	var out *tensor.Tensor
	if train {
		l.x = x
		out = l.scratch.Get("out", n, l.out)
	} else {
		l.x = nil
		if l.evalReuse {
			out = l.scratch.Get("eout", n, l.out)
		} else {
			out = tensor.New(n, l.out)
		}
	}
	tensor.MatMulInto(out, x, l.W.Value)
	for s := 0; s < n; s++ {
		row := out.Data[s*l.out : (s+1)*l.out]
		for j := range row {
			row[j] += l.B.Value.Data[j]
		}
	}
	return out
}

// Backward implements Layer. The dW scratch and the returned dx live in
// reusable buffers, so a warm step allocates nothing.
func (l *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic(fmt.Sprintf("nn: %s: Backward without training Forward", l.name))
	}
	// dW += xᵀ · dout
	dW := l.scratch.Get("dW", l.in, l.out)
	tensor.MatMulTransAInto(dW, l.x, dout)
	l.W.Grad.Add(dW)
	// db += column sums of dout
	n := dout.Dim(0)
	for s := 0; s < n; s++ {
		row := dout.Data[s*l.out : (s+1)*l.out]
		for j, v := range row {
			l.B.Grad.Data[j] += v
		}
	}
	l.maskGrads()
	// dx = dout · Wᵀ
	dx := l.scratch.Get("dx", n, l.in)
	tensor.MatMulTransBInto(dx, dout, l.W.Value)
	return dx
}

// Params implements Layer.
func (l *Dense) Params() []*Param { return []*Param{l.W, l.B} }

// CloneLayer implements Layer.
func (l *Dense) CloneLayer() Layer {
	return &Dense{
		name:   l.name,
		in:     l.in,
		out:    l.out,
		W:      l.W.clone(),
		B:      l.B.clone(),
		pruned: append([]bool(nil), l.pruned...),
	}
}

// Units implements Prunable: one unit per output column.
func (l *Dense) Units() int { return l.out }

// PruneUnit implements Prunable.
func (l *Dense) PruneUnit(i int) {
	if i < 0 || i >= l.out {
		panic(fmt.Sprintf("nn: %s: PruneUnit(%d) out of range [0,%d)", l.name, i, l.out))
	}
	l.pruned[i] = true
	l.EnforceMask()
}

// UnitPruned implements Prunable.
func (l *Dense) UnitPruned(i int) bool { return l.pruned[i] }

// PrunedCount implements Prunable.
func (l *Dense) PrunedCount() int {
	n := 0
	for _, p := range l.pruned {
		if p {
			n++
		}
	}
	return n
}

// EnforceMask implements Prunable.
func (l *Dense) EnforceMask() {
	for j, p := range l.pruned {
		if !p {
			continue
		}
		for i := 0; i < l.in; i++ {
			l.W.Value.Data[i*l.out+j] = 0
		}
		l.B.Value.Data[j] = 0
	}
}

// AppendUnitState implements Prunable: the unit's weight column and bias.
func (l *Dense) AppendUnitState(dst []float64, i int) []float64 {
	for r := 0; r < l.in; r++ {
		dst = append(dst, l.W.Value.Data[r*l.out+i])
	}
	return append(dst, l.B.Value.Data[i])
}

// SetUnitState implements Prunable.
func (l *Dense) SetUnitState(i int, vals []float64, pruned bool) {
	if len(vals) != l.in+1 {
		panic(fmt.Sprintf("nn: %s: unit state length %d, want %d", l.name, len(vals), l.in+1))
	}
	for r := 0; r < l.in; r++ {
		l.W.Value.Data[r*l.out+i] = vals[r]
	}
	l.B.Value.Data[i] = vals[l.in]
	l.pruned[i] = pruned
}

// setEvalReuse implements evalReuser.
func (l *Dense) setEvalReuse(on bool) { l.evalReuse = on }

func (l *Dense) maskGrads() {
	for j, p := range l.pruned {
		if !p {
			continue
		}
		for i := 0; i < l.in; i++ {
			l.W.Grad.Data[i*l.out+j] = 0
		}
		l.B.Grad.Data[j] = 0
	}
}
