package nn

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
	"github.com/fedcleanse/fedcleanse/internal/wire"
)

// updateCorpus regenerates the checked-in fuzz corpus under testdata/fuzz
// (go test ./internal/nn -run FuzzCorpus -update).
var updateCorpus = flag.Bool("update", false, "regenerate checked-in fuzz corpora")

// writeFuzzCorpus writes entries in Go's fuzz corpus file format so the
// fuzz engine (and plain `go test`, which replays testdata corpora as
// seeds) picks them up.
func writeFuzzCorpus(t *testing.T, target string, entries map[string][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range entries {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// checkFuzzCorpus asserts every expected corpus entry is checked in.
func checkFuzzCorpus(t *testing.T, target string, entries map[string][]byte) {
	t.Helper()
	for name := range entries {
		p := filepath.Join("testdata", "fuzz", target, name)
		if _, err := os.Stat(p); err != nil {
			t.Errorf("corpus entry missing (rerun with -update): %v", err)
		}
	}
}

func sameParams(t *testing.T, a, b *Sequential) {
	t.Helper()
	av, bv := a.ParamsVector(), b.ParamsVector()
	if len(av) != len(bv) {
		t.Fatalf("param counts differ: %d vs %d", len(av), len(bv))
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("param %d differs: %v vs %v", i, av[i], bv[i])
		}
	}
}

func TestVersionedSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	in := Input{C: 1, H: 16, W: 16}
	m := NewSmallCNN(in, 10, rng)
	m.PruneModelUnit(m.LastConvIndex(), 2)
	var buf bytes.Buffer
	if err := SaveVersioned(&buf, "small", in, 10, m); err != nil {
		t.Fatal(err)
	}
	if wire.Sniff(buf.Bytes()) != wire.FormatVersioned {
		t.Fatal("versioned save does not sniff as versioned")
	}
	got, err := LoadAny(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameParams(t, m, got)
	conv := got.Layer(m.LastConvIndex()).(*Conv2D)
	if !conv.UnitPruned(2) || conv.PrunedCount() != 1 {
		t.Fatal("prune mask lost in round trip")
	}
	x := tensor.New(2, 1, 16, 16)
	x.Randn(rng, 1)
	if !m.Forward(x, false).Equal(got.Forward(x, false), 0) {
		t.Fatal("loaded model evaluates differently")
	}
}

func TestVersionedSaveLoadMiniVGGWithStats(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	in := Input{C: 3, H: 16, W: 16}
	m := NewMiniVGG(in, 10, rng)
	x := tensor.New(4, 3, 16, 16)
	x.Randn(rng, 2)
	m.Forward(x, true) // move the running statistics off their defaults
	var buf bytes.Buffer
	if err := SaveVersioned(&buf, "minivgg", in, 10, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAny(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Forward(x, false).Equal(got.Forward(x, false), 0) {
		t.Fatal("running statistics lost in round trip")
	}
}

// TestLoadAnyDispatchesLegacyGob: the same model saved with the legacy gob
// format loads bit-identically through LoadAny.
func TestLoadAnyDispatchesLegacyGob(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	in := Input{C: 1, H: 16, W: 16}
	m := NewSmallCNN(in, 10, rng)
	m.PruneModelUnit(m.LastConvIndex(), 1)
	var gobBuf bytes.Buffer
	if err := Save(&gobBuf, "small", in, 10, m); err != nil {
		t.Fatal(err)
	}
	if wire.Sniff(gobBuf.Bytes()) != wire.FormatGob {
		t.Fatalf("gob snapshot misdetected as %v", wire.Sniff(gobBuf.Bytes()))
	}
	viaAny, err := LoadAny(bytes.NewReader(gobBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	viaLegacy, err := Load(bytes.NewReader(gobBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameParams(t, viaAny, viaLegacy)
	sameParams(t, viaAny, m)
}

func TestVersionedRejectsUnknownBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	in := Input{C: 1, H: 16, W: 16}
	m := NewSmallCNN(in, 10, rng)
	if err := SaveVersioned(&bytes.Buffer{}, "resnet", in, 10, m); err == nil {
		t.Fatal("unknown builder accepted")
	}
}

func TestDecodeVersionedModelRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	in := Input{C: 1, H: 16, W: 16}
	m := NewSmallCNN(in, 10, rng)
	good, err := EncodeVersionedModel("small", in, 10, m)
	if err != nil {
		t.Fatal(err)
	}
	state := AppendModelState(nil, m)
	geo := func(c, h, w, classes uint64) []byte {
		var g []byte
		for _, v := range []uint64{c, h, w, classes} {
			g = wire.AppendUint(g, v)
		}
		return g
	}
	forge := func(secs ...wire.Section) []byte {
		e := wire.NewEncoder(wire.KindModel)
		for _, s := range secs {
			e.Section(s.Type, s.Payload)
		}
		return e.Bytes()
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"wrong kind", wire.NewEncoder(wire.KindCheckpoint).Bytes(), "kind"},
		{"missing sections", forge(wire.Section{Type: 1, Payload: []byte("small")}), "missing required"},
		{"unknown builder", forge(
			wire.Section{Type: 1, Payload: []byte("resnet")},
			wire.Section{Type: 2, Payload: geo(1, 16, 16, 10)},
			wire.Section{Type: 3, Payload: state},
		), "unknown model"},
		{"zero geometry", forge(
			wire.Section{Type: 1, Payload: []byte("small")},
			wire.Section{Type: 2, Payload: geo(1, 0, 16, 10)},
			wire.Section{Type: 3, Payload: state},
		), "out of range"},
		{"huge geometry", forge(
			wire.Section{Type: 1, Payload: []byte("small")},
			wire.Section{Type: 2, Payload: geo(1, 1<<21, 16, 10)},
			wire.Section{Type: 3, Payload: state},
		), "out of range"},
		{"geometry mismatch", forge(
			wire.Section{Type: 1, Payload: []byte("small")},
			wire.Section{Type: 2, Payload: geo(1, 16, 16, 3)},
			wire.Section{Type: 3, Payload: state},
		), "params"},
		{"truncated state", forge(
			wire.Section{Type: 1, Payload: []byte("small")},
			wire.Section{Type: 2, Payload: geo(1, 16, 16, 10)},
			wire.Section{Type: 3, Payload: state[:len(state)/2]},
		), "param bytes"},
	}
	for _, tc := range cases {
		if _, err := DecodeVersionedModel(tc.data); err == nil ||
			!strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// The unmodified payload still decodes — the rejection table above is
	// not rejecting everything.
	if _, err := DecodeVersionedModel(good); err != nil {
		t.Fatalf("good payload rejected: %v", err)
	}
	// Unknown future section types are skipped, not fatal.
	withExtra := forge(
		wire.Section{Type: 1, Payload: []byte("small")},
		wire.Section{Type: 2, Payload: geo(1, 16, 16, 10)},
		wire.Section{Type: 3, Payload: state},
		wire.Section{Type: 99, Payload: []byte("future")},
	)
	if _, err := DecodeVersionedModel(withExtra); err != nil {
		t.Fatalf("unknown section not skipped: %v", err)
	}
}

func TestModelStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	in := Input{C: 1, H: 16, W: 16}
	m := NewSmallCNN(in, 10, rng)
	m.PruneModelUnit(m.LastConvIndex(), 0)
	m.PruneModelUnit(m.LastConvIndex(), 3)
	data := EncodeModelState(m)
	fresh := NewSmallCNN(in, 10, rand.New(rand.NewSource(96)))
	if err := DecodeModelStateInto(fresh, data); err != nil {
		t.Fatal(err)
	}
	sameParams(t, m, fresh)
	conv := fresh.Layer(m.LastConvIndex()).(*Conv2D)
	if !conv.UnitPruned(0) || !conv.UnitPruned(3) || conv.PrunedCount() != 2 {
		t.Fatal("prune masks lost in model-state round trip")
	}
	// Architecture mismatch is an error, not a panic.
	other := NewSmallCNN(in, 3, rand.New(rand.NewSource(97)))
	if err := DecodeModelStateInto(other, data); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
}

// versionedModelSeeds builds the interesting decode inputs: one valid
// payload plus the hostile shapes the parser must reject without panic —
// truncation, wrong magic, wrong kind, future version, forged oversized
// section length.
func versionedModelSeeds(tb testing.TB) map[string][]byte {
	rng := rand.New(rand.NewSource(98))
	in := Input{C: 1, H: 16, W: 16}
	m := NewSmallCNN(in, 10, rng)
	m.PruneModelUnit(m.LastConvIndex(), 2)
	good, err := EncodeVersionedModel("small", in, 10, m)
	if err != nil {
		tb.Fatal(err)
	}
	future := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(future[4:6], 99) // (CRC now stale too)
	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(huge[12:16], 0xFFFFFFFF)
	return map[string][]byte{
		"valid":             good,
		"empty":             {},
		"truncated-header":  good[:8],
		"wrong-magic":       append([]byte("GOBX"), good[4:]...),
		"wrong-kind":        EncodeModelState(m),
		"future-version":    future,
		"oversized-section": huge,
	}
}

func TestVersionedModelFuzzCorpus(t *testing.T) {
	seeds := versionedModelSeeds(t)
	if *updateCorpus {
		writeFuzzCorpus(t, "FuzzDecodeVersionedModel", seeds)
		return
	}
	checkFuzzCorpus(t, "FuzzDecodeVersionedModel", seeds)
}

func FuzzDecodeVersionedModel(f *testing.F) {
	for _, seed := range versionedModelSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; a returned model must be internally consistent.
		got, err := DecodeVersionedModel(data)
		if err == nil && got.NumParams() != len(got.ParamsVector()) {
			t.Fatal("decoded model is inconsistent")
		}
	})
}
