package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Property: convolution (without bias) is linear in its input —
// conv(a·x + b·y) == a·conv(x) + b·conv(y).
func TestConvLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := tensor.ConvDims{
			C: 1 + r.Intn(2), H: 4 + r.Intn(4), W: 4 + r.Intn(4),
			K: 3, Stride: 1, Pad: 1,
		}
		conv := NewConv2D("conv", d, 1+r.Intn(4), r)
		conv.B.Value.Zero()
		a, b := r.NormFloat64(), r.NormFloat64()
		x := tensor.New(2, d.C, d.H, d.W)
		y := tensor.New(2, d.C, d.H, d.W)
		x.Randn(r, 1)
		y.Randn(r, 1)
		mix := x.Clone()
		mix.Scale(a)
		mix.AddScaled(b, y)
		left := conv.Forward(mix, false)
		ox := conv.Forward(x, false)
		oy := conv.Forward(y, false)
		ox.Scale(a)
		ox.AddScaled(b, oy)
		return left.Equal(ox, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: max pooling commutes with monotone shifts — pool(x + c) ==
// pool(x) + c for any constant c.
func TestPoolShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pool := NewMaxPool2D("pool", 2, 2)
		x := tensor.New(1, 2, 6, 6)
		x.Randn(r, 1)
		c := r.NormFloat64()
		shifted := x.Clone()
		for i := range shifted.Data {
			shifted.Data[i] += c
		}
		a := pool.Forward(x, false)
		b := pool.Forward(shifted, false)
		for i := range a.Data {
			if math.Abs(b.Data[i]-(a.Data[i]+c)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: max pooling never invents values — every output element is an
// element of the input.
func TestPoolOutputsAreInputsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pool := NewMaxPool2D("pool", 2, 2)
		x := tensor.New(1, 1, 8, 8)
		x.Randn(r, 1)
		out := pool.Forward(x, false)
		in := map[float64]bool{}
		for _, v := range x.Data {
			in[v] = true
		}
		for _, v := range out.Data {
			if !in[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: training-mode batch norm output is invariant to any per-channel
// affine rescaling of its input (that is exactly what normalization does).
func TestBatchNormScaleInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bn := NewBatchNorm2D("bn", 2)
		x := tensor.New(4, 2, 3, 3)
		x.Randn(r, 1)
		scale := 0.5 + r.Float64()*4
		shift := r.NormFloat64() * 3
		y := x.Clone()
		for i := range y.Data {
			y.Data[i] = y.Data[i]*scale + shift
		}
		a := bn.Forward(x, true)
		b := NewBatchNorm2D("bn2", 2).Forward(y, true)
		// The eps inside 1/sqrt(var+eps) breaks exact invariance; allow a
		// correspondingly small tolerance.
		return a.Equal(b, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReLU is idempotent — relu(relu(x)) == relu(x).
func TestReLUIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		relu := NewReLU("r")
		x := tensor.New(1, 10)
		x.Randn(r, 2)
		once := relu.Forward(x, false)
		twice := relu.Forward(once, false)
		return twice.Equal(once, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the parameter vector round-trips through Set/Get exactly for
// every architecture in the zoo.
func TestParamsVectorRoundTripProperty(t *testing.T) {
	builders := []ModelBuilder{NewSmallCNN, NewLargeCNN, NewFashionCNN}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		build := builders[int(uint64(seed)%uint64(len(builders)))]
		m := build(Input{C: 1, H: 16, W: 16}, 10, r)
		v := m.ParamsVector()
		for i := range v {
			v[i] = r.NormFloat64()
		}
		m.SetParamsVector(v)
		got := m.ParamsVector()
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: pruning more units never increases the count of non-zero
// parameters (monotone mask growth).
func TestPruneMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := tensor.ConvDims{C: 1, H: 4, W: 4, K: 3, Stride: 1, Pad: 1}
		conv := NewConv2D("conv", d, 6, r)
		m := NewSequential(conv)
		nonZero := func() int {
			n := 0
			for _, v := range conv.W.Value.Data {
				if v != 0 {
					n++
				}
			}
			return n
		}
		prev := nonZero()
		for _, u := range r.Perm(6) {
			m.PruneModelUnit(0, u)
			cur := nonZero()
			if cur > prev {
				return false
			}
			prev = cur
		}
		return prev == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
