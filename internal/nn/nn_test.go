package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, c := 1+r.Intn(5), 2+r.Intn(8)
		logits := tensor.New(n, c)
		logits.Randn(r, 5)
		p := Softmax(logits)
		for s := 0; s < n; s++ {
			sum := 0.0
			for j := 0; j < c; j++ {
				v := p.At(s, j)
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxXentGradRowsSumToZero(t *testing.T) {
	// The gradient of softmax cross-entropy w.r.t. logits is (p - y)/N;
	// each row must sum to zero because p sums to 1 and y is one-hot.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, c := 1+r.Intn(5), 2+r.Intn(8)
		logits := tensor.New(n, c)
		logits.Randn(r, 3)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.Intn(c)
		}
		loss, d := SoftmaxXent(logits, labels)
		if loss < 0 || math.IsNaN(loss) {
			return false
		}
		for s := 0; s < n; s++ {
			sum := 0.0
			for j := 0; j < c; j++ {
				sum += d.At(s, j)
			}
			if math.Abs(sum) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxXentNumericalStability(t *testing.T) {
	logits := tensor.FromSlice([]float64{1000, -1000, 0}, 1, 3)
	loss, d := SoftmaxXent(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %g with huge logits", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("loss = %g, want ~0 when correct logit dominates", loss)
	}
	for i, v := range d.Data {
		if math.IsNaN(v) {
			t.Fatalf("grad[%d] is NaN", i)
		}
	}
}

func TestArgmax(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		0.1, 0.9, 0.0,
		2.0, -1.0, 1.5,
	}, 2, 3)
	got := Argmax(logits)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Argmax = %v, want [1 0]", got)
	}
}

func TestDenseShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewDense("fc", 4, 7, rng)
	x := tensor.New(3, 4)
	x.Randn(rng, 1)
	out := l.Forward(x, false)
	if out.Dim(0) != 3 || out.Dim(1) != 7 {
		t.Fatalf("output shape %v, want [3 7]", out.Shape())
	}
}

func TestConvOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := tensor.ConvDims{C: 3, H: 16, W: 16, K: 3, Stride: 1, Pad: 1}
	l := NewConv2D("conv", d, 8, rng)
	x := tensor.New(2, 3, 16, 16)
	x.Randn(rng, 1)
	out := l.Forward(x, false)
	want := []int{2, 8, 16, 16}
	for i, dmn := range want {
		if out.Dim(i) != dmn {
			t.Fatalf("output shape %v, want %v", out.Shape(), want)
		}
	}
}

func TestMaxPoolForwardKnown(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	l := NewMaxPool2D("pool", 2, 2)
	out := l.Forward(x, false)
	want := []float64{4, 8, 12, 16}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("pool output %v, want %v", out.Data, want)
		}
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	l := NewMaxPool2D("pool", 2, 2)
	l.Forward(x, true)
	dout := tensor.FromSlice([]float64{10}, 1, 1, 1, 1)
	dx := l.Backward(dout)
	want := []float64{0, 0, 0, 10}
	for i, w := range want {
		if dx.Data[i] != w {
			t.Fatalf("pool dx %v, want %v", dx.Data, want)
		}
	}
}

func TestReLUForwardBackward(t *testing.T) {
	x := tensor.FromSlice([]float64{-1, 0, 2, -3}, 1, 4)
	l := NewReLU("relu")
	out := l.Forward(x, true)
	wantOut := []float64{0, 0, 2, 0}
	for i, w := range wantOut {
		if out.Data[i] != w {
			t.Fatalf("relu out %v, want %v", out.Data, wantOut)
		}
	}
	dout := tensor.FromSlice([]float64{5, 5, 5, 5}, 1, 4)
	dx := l.Backward(dout)
	wantDx := []float64{0, 0, 5, 0}
	for i, w := range wantDx {
		if dx.Data[i] != w {
			t.Fatalf("relu dx %v, want %v", dx.Data, wantDx)
		}
	}
}

func TestParamsVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rng)
	v := m.ParamsVector()
	if len(v) != m.NumParams() {
		t.Fatalf("vector length %d, want %d", len(v), m.NumParams())
	}
	m2 := NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rand.New(rand.NewSource(4)))
	m2.SetParamsVector(v)
	v2 := m2.ParamsVector()
	for i := range v {
		if v[i] != v2[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestAddDeltaVector(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rng)
	before := m.ParamsVector()
	delta := make([]float64, len(before))
	for i := range delta {
		delta[i] = 1
	}
	m.AddDeltaVector(0.5, delta)
	after := m.ParamsVector()
	for i := range after {
		if math.Abs(after[i]-(before[i]+0.5)) > 1e-12 {
			t.Fatalf("delta not applied at %d: %g -> %g", i, before[i], after[i])
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rng)
	c := m.Clone()
	cv := c.ParamsVector()
	// Mutate the original; clone must not change.
	delta := make([]float64, m.NumParams())
	for i := range delta {
		delta[i] = 1
	}
	m.AddDeltaVector(1, delta)
	cv2 := c.ParamsVector()
	for i := range cv {
		if cv[i] != cv2[i] {
			t.Fatal("clone shares parameter storage with original")
		}
	}
}

func TestCloneCarriesPruneMask(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rng)
	conv := m.Layer(0).(*Conv2D)
	conv.PruneUnit(2)
	c := m.Clone()
	cc := c.Layer(0).(*Conv2D)
	if !cc.UnitPruned(2) || cc.PrunedCount() != 1 {
		t.Fatal("clone lost prune mask")
	}
}

func TestPruneUnitZeroesAndPins(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := tensor.ConvDims{C: 1, H: 8, W: 8, K: 3, Stride: 1, Pad: 1}
	conv := NewConv2D("conv", d, 4, rng)
	conv.PruneUnit(1)
	fanIn := conv.W.Value.Dim(1)
	for j := 0; j < fanIn; j++ {
		if conv.W.Value.Data[fanIn+j] != 0 {
			t.Fatal("pruned channel weights not zeroed")
		}
	}
	// A raw parameter overwrite followed by EnforceMask must re-zero.
	conv.W.Value.Data[fanIn] = 9
	conv.EnforceMask()
	if conv.W.Value.Data[fanIn] != 0 {
		t.Fatal("EnforceMask did not re-zero pruned channel")
	}
	// SetParamsVector on the containing model must also re-apply masks.
	m := NewSequential(conv)
	v := m.ParamsVector()
	for i := range v {
		v[i] = 1
	}
	m.SetParamsVector(v)
	if conv.W.Value.Data[fanIn] != 0 {
		t.Fatal("SetParamsVector resurrected pruned channel")
	}
}

func TestDensePruneUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewDense("fc", 3, 4, rng)
	l.PruneUnit(2)
	for i := 0; i < 3; i++ {
		if l.W.Value.Data[i*4+2] != 0 {
			t.Fatal("pruned dense column not zeroed")
		}
	}
	if l.B.Value.Data[2] != 0 {
		t.Fatal("pruned dense bias not zeroed")
	}
	if l.PrunedCount() != 1 || !l.UnitPruned(2) {
		t.Fatal("prune bookkeeping wrong")
	}
	// Pruned unit output must be exactly zero.
	x := tensor.New(2, 3)
	x.Randn(rng, 1)
	out := l.Forward(x, false)
	if out.At(0, 2) != 0 || out.At(1, 2) != 0 {
		t.Fatal("pruned unit produced non-zero output")
	}
}

func TestSGDStepReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := NewSequential(
		NewDense("fc1", 8, 16, rng),
		NewReLU("relu"),
		NewDense("fc2", 16, 3, rng),
	)
	x := tensor.New(16, 8)
	x.Randn(rng, 1)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 3
	}
	opt := NewSGD(0.1, 0.9, 0)
	first := lossOf(m, x, labels)
	for it := 0; it < 30; it++ {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		_, d := SoftmaxXent(logits, labels)
		m.Backward(d)
		opt.Step(m)
	}
	last := lossOf(m, x, labels)
	if last >= first*0.5 {
		t.Fatalf("SGD failed to reduce loss: %g -> %g", first, last)
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewDense("fc", 4, 4, rng)
	m := NewSequential(l)
	norm0 := 0.0
	for _, v := range l.W.Value.Data {
		norm0 += v * v
	}
	opt := NewSGD(0.1, 0, 0.5)
	// With zero gradients, steps should purely decay the weights.
	for it := 0; it < 5; it++ {
		m.ZeroGrads()
		opt.Step(m)
	}
	norm1 := 0.0
	for _, v := range l.W.Value.Data {
		norm1 += v * v
	}
	if norm1 >= norm0 {
		t.Fatalf("weight decay did not shrink weights: %g -> %g", norm0, norm1)
	}
	// Bias is NoDecay and must be untouched.
	for _, v := range l.B.Value.Data {
		if v != 0 {
			// freshly initialized bias is zero; any change is a bug
			t.Fatal("bias changed under pure weight decay")
		}
	}
}

func TestSGDStepKeepsPrunedUnitsDead(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := tensor.ConvDims{C: 1, H: 6, W: 6, K: 3, Stride: 1, Pad: 1}
	conv := NewConv2D("conv", d, 4, rng)
	m := NewSequential(conv, NewReLU("r"), NewFlatten("f"),
		NewDense("fc", 4*6*6, 3, rng))
	conv.PruneUnit(0)
	opt := NewSGD(0.5, 0.9, 0)
	x := tensor.New(4, 1, 6, 6)
	x.Randn(rng, 1)
	labels := []int{0, 1, 2, 0}
	for it := 0; it < 5; it++ {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		_, dl := SoftmaxXent(logits, labels)
		m.Backward(dl)
		opt.Step(m)
	}
	fanIn := conv.W.Value.Dim(1)
	for j := 0; j < fanIn; j++ {
		if conv.W.Value.Data[j] != 0 {
			t.Fatal("pruned channel came back to life during training")
		}
	}
}

func TestUnitMeanActivations(t *testing.T) {
	// Two samples, two channels, 2x2 spatial.
	act := tensor.FromSlice([]float64{
		// sample 0, channel 0: all 1 (mean 1); channel 1: -1 everywhere (relu -> 0)
		1, 1, 1, 1,
		-1, -1, -1, -1,
		// sample 1, channel 0: 3s; channel 1: 2 and -2 mixed
		3, 3, 3, 3,
		2, -2, 2, -2,
	}, 2, 2, 2, 2)
	got := UnitMeanActivations(act, 2)
	if math.Abs(got[0]-2) > 1e-12 {
		t.Fatalf("unit 0 mean = %g, want 2", got[0])
	}
	if math.Abs(got[1]-0.5) > 1e-12 {
		t.Fatalf("unit 1 mean = %g, want 0.5", got[1])
	}
}

func TestAccumulateMatchesSingleShot(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	act := tensor.New(6, 3, 2, 2)
	act.Randn(rng, 1)
	want := UnitMeanActivations(act, 3)
	// Split the batch in two and accumulate.
	half := 3 * 3 * 2 * 2
	a1 := tensor.FromSlice(act.Data[:half], 3, 3, 2, 2)
	a2 := tensor.FromSlice(act.Data[half:], 3, 3, 2, 2)
	sums := make([]float64, 3)
	obs := AccumulateUnitActivations(a1, 3, sums)
	obs += AccumulateUnitActivations(a2, 3, sums)
	for u := range sums {
		got := sums[u] / float64(obs)
		if math.Abs(got-want[u]) > 1e-12 {
			t.Fatalf("unit %d: accumulated %g vs single-shot %g", u, got, want[u])
		}
	}
}

func TestModelZooShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	in1 := Input{C: 1, H: 16, W: 16}
	in3 := Input{C: 3, H: 16, W: 16}
	cases := []struct {
		name  string
		model *Sequential
		in    Input
	}{
		{"small", NewSmallCNN(in1, 10, rng), in1},
		{"large", NewLargeCNN(in1, 10, rng), in1},
		{"fashion", NewFashionCNN(in1, 10, rng), in1},
		{"minivgg", NewMiniVGG(in3, 10, rng), in3},
	}
	for _, tc := range cases {
		x := tensor.New(2, tc.in.C, tc.in.H, tc.in.W)
		x.Randn(rng, 1)
		out := tc.model.Forward(x, false)
		if out.Dim(0) != 2 || out.Dim(1) != 10 {
			t.Fatalf("%s: output shape %v, want [2 10]", tc.name, out.Shape())
		}
		if tc.model.LastConvIndex() < 0 {
			t.Fatalf("%s: no conv layer found", tc.name)
		}
		// Training round-trip must not panic and must produce finite loss.
		tc.model.ZeroGrads()
		logits := tc.model.Forward(x, true)
		loss, d := SoftmaxXent(logits, []int{0, 1})
		if math.IsNaN(loss) {
			t.Fatalf("%s: NaN loss", tc.name)
		}
		tc.model.Backward(d)
	}
}

func TestBuilderByName(t *testing.T) {
	for _, name := range []string{"small", "large", "fashion", "minivgg"} {
		if _, err := BuilderByName(name); err != nil {
			t.Fatalf("BuilderByName(%q): %v", name, err)
		}
	}
	if _, err := BuilderByName("resnet152"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestForwardActivationsLength(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rng)
	x := tensor.New(1, 1, 16, 16)
	x.Randn(rng, 1)
	acts := m.ForwardActivations(x)
	if len(acts) != m.NumLayers() {
		t.Fatalf("got %d activations, want %d", len(acts), m.NumLayers())
	}
	out := m.Forward(x, false)
	if !acts[len(acts)-1].Equal(out, 1e-12) {
		t.Fatal("last activation != network output")
	}
}

func TestLastConvIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	m := NewFashionCNN(Input{C: 1, H: 16, W: 16}, 10, rng)
	idx := m.LastConvIndex()
	conv, ok := m.Layer(idx).(*Conv2D)
	if !ok {
		t.Fatalf("layer %d is not Conv2D", idx)
	}
	if conv.Name() != "conv3" {
		t.Fatalf("last conv = %s, want conv3", conv.Name())
	}
	noConv := NewSequential(NewDense("fc", 4, 2, rng))
	if noConv.LastConvIndex() != -1 {
		t.Fatal("LastConvIndex on dense-only model should be -1")
	}
}

func TestLayerIndexByName(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rng)
	if i := m.LayerIndexByName("conv2"); i != 3 {
		t.Fatalf("conv2 index = %d, want 3", i)
	}
	if i := m.LayerIndexByName("nope"); i != -1 {
		t.Fatalf("missing layer index = %d, want -1", i)
	}
}
