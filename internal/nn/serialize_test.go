package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	in := Input{C: 1, H: 16, W: 16}
	m := NewSmallCNN(in, 10, rng)
	m.PruneModelUnit(m.LastConvIndex(), 2)
	var buf bytes.Buffer
	if err := Save(&buf, "small", in, 10, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := m.ParamsVector(), got.ParamsVector()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("param %d differs after round trip", i)
		}
	}
	conv := got.Layer(m.LastConvIndex()).(*Conv2D)
	if !conv.UnitPruned(2) || conv.PrunedCount() != 1 {
		t.Fatal("prune mask lost in round trip")
	}
	// Loaded model must evaluate identically.
	x := tensor.New(2, 1, 16, 16)
	x.Randn(rng, 1)
	if !m.Forward(x, false).Equal(got.Forward(x, false), 0) {
		t.Fatal("loaded model evaluates differently")
	}
}

func TestSaveLoadMiniVGGWithStats(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	in := Input{C: 3, H: 16, W: 16}
	m := NewMiniVGG(in, 10, rng)
	// Push the running statistics away from their defaults.
	x := tensor.New(4, 3, 16, 16)
	x.Randn(rng, 2)
	m.Forward(x, true)
	var buf bytes.Buffer
	if err := Save(&buf, "minivgg", in, 10, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Forward(x, false).Equal(got.Forward(x, false), 0) {
		t.Fatal("running statistics lost in round trip")
	}
}

func TestSaveRejectsUnknownBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	m := NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rng)
	var buf bytes.Buffer
	if err := Save(&buf, "resnet", Input{C: 1, H: 16, W: 16}, 10, m); err == nil {
		t.Fatal("unknown builder accepted")
	}
}

func TestLoadRejectsCorruptSnapshots(t *testing.T) {
	// Garbage bytes.
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Wrong parameter count.
	rng := rand.New(rand.NewSource(93))
	in := Input{C: 1, H: 16, W: 16}
	m := NewSmallCNN(in, 10, rng)
	var buf bytes.Buffer
	if err := Save(&buf, "small", in, 10, m); err != nil {
		t.Fatal(err)
	}
	// Corruption: declare classes=3 in a fresh snapshot with the old
	// parameter vector so the parameter count mismatches.
	bad := Snapshot{Builder: "small", Input: in, Classes: 3, Params: m.ParamsVector()}
	var buf2 bytes.Buffer
	if err := encodeSnapshot(&buf2, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf2); err == nil {
		t.Fatal("mismatched parameter count accepted")
	}
	// Mask for a non-prunable layer.
	bad = Snapshot{Builder: "small", Input: in, Classes: 10,
		Params: m.ParamsVector(), Masks: map[int][]bool{1: {true}}}
	var buf3 bytes.Buffer
	if err := encodeSnapshot(&buf3, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf3); err == nil {
		t.Fatal("mask on non-prunable layer accepted")
	}
}
