package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// lossOf runs a full forward pass and returns the scalar loss.
func lossOf(m *Sequential, x *tensor.Tensor, labels []int) float64 {
	logits := m.Forward(x.Clone(), false)
	loss, _ := SoftmaxXent(logits, labels)
	return loss
}

// analyticGrads runs forward+backward and returns a snapshot of all
// parameter gradients plus the input gradient.
func analyticGrads(m *Sequential, x *tensor.Tensor, labels []int) (paramGrads [][]float64, dx *tensor.Tensor) {
	m.ZeroGrads()
	logits := m.Forward(x.Clone(), true)
	_, dlogits := SoftmaxXent(logits, labels)
	dx = m.Backward(dlogits)
	for _, p := range m.Params() {
		paramGrads = append(paramGrads, append([]float64(nil), p.Grad.Data...))
	}
	return paramGrads, dx
}

// checkGrads compares every analytic parameter gradient and the input
// gradient of model m against central finite differences.
func checkGrads(t *testing.T, m *Sequential, x *tensor.Tensor, labels []int) {
	t.Helper()
	const eps = 1e-5
	const tol = 1e-6
	paramGrads, dx := analyticGrads(m, x, labels)

	for pi, p := range m.Params() {
		for i := 0; i < p.Value.Len(); i++ {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			up := lossOf(m, x, labels)
			p.Value.Data[i] = orig - eps
			down := lossOf(m, x, labels)
			p.Value.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			analytic := paramGrads[pi][i]
			if math.Abs(numeric-analytic) > tol*(1+math.Abs(numeric)) {
				t.Fatalf("param %s[%d]: analytic %.8g vs numeric %.8g", p.Name, i, analytic, numeric)
			}
		}
	}
	for i := 0; i < x.Len(); i++ {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		up := lossOf(m, x, labels)
		x.Data[i] = orig - eps
		down := lossOf(m, x, labels)
		x.Data[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-dx.Data[i]) > tol*(1+math.Abs(numeric)) {
			t.Fatalf("input[%d]: analytic %.8g vs numeric %.8g", i, dx.Data[i], numeric)
		}
	}
}

func TestGradCheckDenseOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	m := NewSequential(
		NewDense("fc1", 6, 5, rng),
		NewReLU("relu"),
		NewDense("fc2", 5, 3, rng),
	)
	x := tensor.New(4, 6)
	x.Randn(rng, 1)
	checkGrads(t, m, x, []int{0, 1, 2, 1})
}

func TestGradCheckConvPoolDense(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	d := tensor.ConvDims{C: 2, H: 6, W: 6, K: 3, Stride: 1, Pad: 1}
	conv := NewConv2D("conv", d, 3, rng)
	m := NewSequential(
		conv,
		NewReLU("relu1"),
		NewMaxPool2D("pool", 2, 2),
		NewFlatten("flatten"),
		NewDense("fc", 3*3*3, 4, rng),
	)
	x := tensor.New(3, 2, 6, 6)
	x.Randn(rng, 1)
	checkGrads(t, m, x, []int{0, 3, 2})
}

func TestGradCheckStridedPaddedConv(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	d := tensor.ConvDims{C: 1, H: 7, W: 5, K: 3, Stride: 2, Pad: 1}
	conv := NewConv2D("conv", d, 2, rng)
	flat := 2 * d.OutH() * d.OutW()
	m := NewSequential(
		conv,
		NewReLU("relu"),
		NewFlatten("flatten"),
		NewDense("fc", flat, 3, rng),
	)
	x := tensor.New(2, 1, 7, 5)
	x.Randn(rng, 1)
	checkGrads(t, m, x, []int{1, 2})
}

func TestPrunedUnitGradsMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	d := tensor.ConvDims{C: 1, H: 4, W: 4, K: 3, Stride: 1, Pad: 1}
	conv := NewConv2D("conv", d, 4, rng)
	m := NewSequential(
		conv,
		NewReLU("relu"),
		NewFlatten("flatten"),
		NewDense("fc", 4*4*4, 3, rng),
	)
	conv.PruneUnit(1)
	x := tensor.New(2, 1, 4, 4)
	x.Randn(rng, 1)
	m.ZeroGrads()
	logits := m.Forward(x, true)
	_, dlogits := SoftmaxXent(logits, []int{0, 2})
	m.Backward(dlogits)
	// Analytic gradients of the pruned channel must be forced to zero so an
	// optimizer step cannot resurrect it.
	fanIn := conv.W.Value.Dim(1)
	for j := 0; j < fanIn; j++ {
		if g := conv.W.Grad.Data[1*fanIn+j]; g != 0 {
			t.Fatalf("pruned channel weight grad [1][%d] = %g, want 0", j, g)
		}
	}
	if g := conv.B.Grad.Data[1]; g != 0 {
		t.Fatalf("pruned channel bias grad = %g, want 0", g)
	}
	// Unpruned channels must still receive gradient signal.
	anyNonZero := false
	for j := 0; j < fanIn; j++ {
		if conv.W.Grad.Data[0*fanIn+j] != 0 {
			anyNonZero = true
			break
		}
	}
	if !anyNonZero {
		t.Fatal("unpruned channel received no gradient")
	}
}
