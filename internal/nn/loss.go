package nn

import (
	"fmt"
	"math"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// SoftmaxXent computes the mean softmax cross-entropy loss of logits
// (shape (N, classes)) against integer labels, together with the gradient
// of the loss with respect to the logits. The softmax is computed with the
// max-subtraction trick for numerical stability.
func SoftmaxXent(logits *tensor.Tensor, labels []int) (loss float64, dlogits *tensor.Tensor) {
	dlogits = tensor.New(logits.Dim(0), logits.Dim(1))
	loss = SoftmaxXentInto(dlogits, logits, labels)
	return loss, dlogits
}

// SoftmaxXentInto is SoftmaxXent writing the logits gradient into dst
// (shape (N, classes), every element overwritten) and returning the loss.
// Training loops pass a reusable dst so a warm step allocates nothing.
func SoftmaxXentInto(dst, logits *tensor.Tensor, labels []int) (loss float64) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxXent logits rank %d, want 2", logits.Rank()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: SoftmaxXent %d labels for batch of %d", len(labels), n))
	}
	if dst.Rank() != 2 || dst.Dim(0) != n || dst.Dim(1) != c {
		panic(fmt.Sprintf("nn: SoftmaxXentInto dst shape %v, want [%d %d]", dst.Shape(), n, c))
	}
	dlogits := dst
	inv := 1.0 / float64(n)
	for s := 0; s < n; s++ {
		y := labels[s]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: SoftmaxXent label %d out of range [0,%d)", y, c))
		}
		row := logits.Data[s*c : (s+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		drow := dlogits.Data[s*c : (s+1)*c]
		for j, v := range row {
			e := math.Exp(v - maxv)
			drow[j] = e
			sum += e
		}
		loss += -(row[y] - maxv - math.Log(sum)) * inv
		for j := range drow {
			drow[j] = drow[j] / sum * inv
		}
		drow[y] -= inv
	}
	return loss
}

// Softmax returns the row-wise softmax of logits as a new tensor.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: Softmax logits rank %d, want 2", logits.Rank()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, c)
	for s := 0; s < n; s++ {
		row := logits.Data[s*c : (s+1)*c]
		orow := out.Data[s*c : (s+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxv)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// Argmax returns the predicted class of every row of logits.
func Argmax(logits *tensor.Tensor) []int {
	return ArgmaxInto(make([]int, logits.Dim(0)), logits)
}

// ArgmaxInto is Argmax writing into dst, which is grown when too small and
// returned resliced to the row count. Passing the previous call's result
// back in makes a warm evaluation loop allocation-free.
func ArgmaxInto(dst []int, logits *tensor.Tensor) []int {
	n, c := logits.Dim(0), logits.Dim(1)
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	for s := 0; s < n; s++ {
		row := logits.Data[s*c : (s+1)*c]
		best, bestJ := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bestJ = v, j+1
			}
		}
		dst[s] = bestJ
	}
	return dst
}
