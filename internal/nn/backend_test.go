package nn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/parallel"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Tolerance harness for the float32 backend. The float64 path is the
// reference; the float32 path computes the same graph with float32
// activations and weights, so outputs agree to float32 resolution scaled
// by the depth of the accumulation chains. The bounds asserted here are
// the ones documented in DESIGN.md §13: forward activations to ~1e-4
// relative, gradients and a full optimizer step to ~1e-3 relative.

// relDiff is |a-b| scaled by max(1, |a|, |b|), so tiny absolute noise on
// near-zero values does not register as huge relative error.
func relDiff(a, b float64) float64 {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) / scale
}

func maxRelDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := relDiff(a[i], b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"float64", Float64, true},
		{"f64", Float64, true},
		{"", Float64, true},
		{"float32", Float32, true},
		{"f32", Float32, true},
		{"FLOAT32", Float32, true},
		{"bfloat16", 0, false},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseBackend(%q) succeeded, want error", c.in)
		}
	}
	if Float64.String() != "float64" || Float32.String() != "float32" {
		t.Fatalf("Backend.String: %q/%q", Float64.String(), Float32.String())
	}
}

// Forward on the float32 backend matches float64 to ~1e-4 relative on
// every architecture in the zoo, train and eval mode.
func TestFloat32ForwardTolerance(t *testing.T) {
	builders := map[string]ModelBuilder{
		"small":   NewSmallCNN,
		"large":   NewLargeCNN,
		"fashion": NewFashionCNN,
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			m := build(in1, 10, rng)
			x := tensor.New(8, in1.C, in1.H, in1.W)
			x.Randn(rng, 1)
			for _, train := range []bool{false, true} {
				m.SetBackend(Float64)
				ref := m.Forward(x, train).Clone()
				m.SetBackend(Float32)
				got := m.Forward(x, train)
				if d := maxRelDiff(ref.Data, got.Data); d > 1e-4 {
					t.Errorf("train=%v: max relative diff %g > 1e-4", train, d)
				}
			}
		})
	}
}

// Backward on the float32 backend produces parameter gradients and input
// gradients within ~1e-3 relative of the float64 path.
func TestFloat32BackwardTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewSmallCNN(in1, 10, rng)
	x := tensor.New(8, in1.C, in1.H, in1.W)
	x.Randn(rng, 1)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = i % 10
	}

	grads := func() []float64 {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		_, d := SoftmaxXent(logits, labels)
		m.Backward(d)
		var g []float64
		for _, p := range m.Params() {
			g = append(g, p.Grad.Data...)
		}
		return g
	}

	m.SetBackend(Float64)
	ref := grads()
	m.SetBackend(Float32)
	got := grads()
	if len(ref) != len(got) {
		t.Fatalf("gradient vector length %d vs %d", len(ref), len(got))
	}
	if d := maxRelDiff(ref, got); d > 1e-3 {
		t.Errorf("max relative gradient diff %g > 1e-3", d)
	}
}

// BackwardParams — the training loops' backward — must produce parameter
// gradients bit-identical to the full Backward on both backends; only the
// never-consumed first-layer input gradient is allowed to differ (by not
// existing).
func TestBackwardParamsGradBitIdentity(t *testing.T) {
	for _, backend := range []Backend{Float64, Float32} {
		t.Run(backend.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			m := NewSmallCNN(in1, 10, rng)
			m2 := m.Clone()
			m.SetBackend(backend)
			m2.SetBackend(backend)
			x := tensor.New(8, in1.C, in1.H, in1.W)
			x.Randn(rng, 1)
			labels := make([]int, 8)
			for i := range labels {
				labels[i] = i % 10
			}

			m.ZeroGrads()
			_, d := SoftmaxXent(m.Forward(x, true), labels)
			m.Backward(d)

			m2.ZeroGrads()
			_, d2 := SoftmaxXent(m2.Forward(x, true), labels)
			m2.BackwardParams(d2)

			ps, ps2 := m.Params(), m2.Params()
			for pi := range ps {
				for i := range ps[pi].Grad.Data {
					if math.Float64bits(ps[pi].Grad.Data[i]) != math.Float64bits(ps2[pi].Grad.Data[i]) {
						t.Fatalf("param %d grad[%d]: %g (Backward) vs %g (BackwardParams)",
							pi, i, ps[pi].Grad.Data[i], ps2[pi].Grad.Data[i])
					}
				}
			}
		})
	}
}

// A short training run (three full SGD steps) on the float32 backend lands
// within ~1e-3 relative of the float64 parameters — the float64 optimizer
// state keeps the backends from drifting apart step over step.
func TestFloat32TrainStepTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ref := NewSmallCNN(in1, 10, rng)
	f32 := ref.Clone()
	f32.SetBackend(Float32)

	x := tensor.New(8, in1.C, in1.H, in1.W)
	x.Randn(rng, 1)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = i % 10
	}
	step := func(m *Sequential, opt *SGD) {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		_, d := SoftmaxXent(logits, labels)
		m.Backward(d)
		opt.Step(m)
	}
	optA := NewSGD(0.05, 0.9, 1e-4)
	optB := NewSGD(0.05, 0.9, 1e-4)
	for i := 0; i < 3; i++ {
		step(ref, optA)
		step(f32, optB)
	}
	a, b := ref.ParamsVector(), f32.ParamsVector()
	if d := maxRelDiff(a, b); d > 1e-3 {
		t.Errorf("max relative parameter diff after 3 steps %g > 1e-3", d)
	}
}

// The float32 backend obeys the same serial-vs-parallel bit-identity
// contract as float64: the widened outputs and the float64 parameter
// gradients are bit-for-bit equal at any worker count.
func TestFloat32SerialParallelIdentity(t *testing.T) {
	run := func(workers int) (out *tensor.Tensor, grads []float64) {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		rng := rand.New(rand.NewSource(14))
		m := NewSmallCNN(in1, 10, rng)
		m.SetBackend(Float32)
		x := tensor.New(32, in1.C, in1.H, in1.W)
		x.Randn(rng, 1)
		labels := make([]int, 32)
		for i := range labels {
			labels[i] = i % 10
		}
		m.ZeroGrads()
		logits := m.Forward(x, true)
		out = logits.Clone()
		_, d := SoftmaxXent(logits, labels)
		m.Backward(d)
		for _, p := range m.Params() {
			grads = append(grads, p.Grad.Data...)
		}
		return out, grads
	}
	refOut, refGrads := run(1)
	for _, workers := range []int{2, 3, 8} {
		out, grads := run(workers)
		for i := range refOut.Data {
			if math.Float64bits(out.Data[i]) != math.Float64bits(refOut.Data[i]) {
				t.Fatalf("workers=%d: logit %d differs: %v vs %v", workers, i, out.Data[i], refOut.Data[i])
			}
		}
		for i := range refGrads {
			if math.Float64bits(grads[i]) != math.Float64bits(refGrads[i]) {
				t.Fatalf("workers=%d: grad %d differs: %v vs %v", workers, i, grads[i], refGrads[i])
			}
		}
	}
}

// ForwardTo/ForwardFrom on the float32 backend compose to exactly the full
// Forward: the float64 boundary between the halves widens and re-narrows
// losslessly, so the split replay is bit-identical.
func TestFloat32ForwardSplitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := NewSmallCNN(in1, 10, rng)
	m.SetBackend(Float32)
	x := tensor.New(4, in1.C, in1.H, in1.W)
	x.Randn(rng, 1)
	full := m.Forward(x, false).Clone()
	for hi := 1; hi < m.NumLayers(); hi++ {
		mid := m.ForwardTo(hi, x).Clone()
		got := m.ForwardFrom(hi, mid)
		for i := range full.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(full.Data[i]) {
				t.Fatalf("split at %d: output %d differs: %v vs %v", hi, i, got.Data[i], full.Data[i])
			}
		}
	}
}

// ForwardActivations on the float32 backend returns one activation per
// layer with the same shapes as the float64 path, within forward
// tolerance.
func TestFloat32ForwardActivationsTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	m := NewSmallCNN(in1, 10, rng)
	x := tensor.New(4, in1.C, in1.H, in1.W)
	x.Randn(rng, 1)
	m.SetBackend(Float64)
	ref := m.ForwardActivations(x)
	refCopies := make([]*tensor.Tensor, len(ref))
	for i, a := range ref {
		refCopies[i] = a.Clone()
	}
	m.SetBackend(Float32)
	got := m.ForwardActivations(x)
	if len(got) != len(refCopies) {
		t.Fatalf("activation count %d vs %d", len(got), len(refCopies))
	}
	for i := range got {
		if fmt.Sprint(got[i].Shape()) != fmt.Sprint(refCopies[i].Shape()) {
			t.Fatalf("layer %d: shape %v vs %v", i, got[i].Shape(), refCopies[i].Shape())
		}
		if d := maxRelDiff(refCopies[i].Data, got[i].Data); d > 1e-4 {
			t.Errorf("layer %d: max relative diff %g > 1e-4", i, d)
		}
	}
}

// Pruned units stay exactly zero under float32 training: masked float64
// weights narrow to 0.0f, produce zero activations, and the gradient mask
// runs after the float32 gradients are widened back.
func TestFloat32PruneMaskRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := NewSmallCNN(in1, 10, rng)
	m.SetBackend(Float32)
	li := m.LastConvIndex()
	m.PruneModelUnit(li, 0)
	m.PruneModelUnit(li, 2)

	x := tensor.New(8, in1.C, in1.H, in1.W)
	x.Randn(rng, 1)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = i % 10
	}
	opt := NewSGD(0.05, 0.9, 1e-4)
	for i := 0; i < 2; i++ {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		_, d := SoftmaxXent(logits, labels)
		m.Backward(d)
		opt.Step(m)
	}
	conv, ok := m.Layer(li).(*Conv2D)
	if !ok {
		t.Fatalf("layer %d is %T, want *Conv2D", li, m.Layer(li))
	}
	fanIn := len(conv.W.Value.Data) / conv.Filters()
	for _, u := range []int{0, 2} {
		for j := 0; j < fanIn; j++ {
			if v := conv.W.Value.Data[u*fanIn+j]; v != 0 {
				t.Fatalf("pruned filter %d weight %d drifted to %v", u, j, v)
			}
		}
		if v := conv.B.Value.Data[u]; v != 0 {
			t.Fatalf("pruned filter %d bias drifted to %v", u, v)
		}
	}
}

// Clone preserves the backend, and eval passes run before a train step do
// not corrupt the float32 training caches or scratch (defense loops score
// the model between steps). Eval between a training forward and its
// backward is illegal on both backends — layers drop their training caches
// on any eval pass.
func TestFloat32CloneAndInterleavedEval(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	m := NewSmallCNN(in1, 10, rng)
	m.SetBackend(Float32)
	c := m.Clone()
	if c.Backend() != Float32 {
		t.Fatalf("clone backend = %v, want Float32", c.Backend())
	}

	x := tensor.New(4, in1.C, in1.H, in1.W)
	x.Randn(rng, 1)
	labels := []int{0, 1, 2, 3}

	// Reference: a plain train step.
	ref := m.Clone()
	ref.ZeroGrads()
	logits := ref.Forward(x, true)
	_, d := SoftmaxXent(logits, labels)
	ref.Backward(d)

	// Same step preceded by eval passes (as a defense loop that scores the
	// model between steps does): the eval scratch must not corrupt the
	// training-path caches or results.
	m.Forward(x, false)
	m.ForwardActivations(x)
	m.ZeroGrads()
	logits = m.Forward(x, true)
	_, d2 := SoftmaxXent(logits, labels)
	m.Backward(d2)

	refParams, gotParams := ref.Params(), m.Params()
	for i := range refParams {
		for j := range refParams[i].Grad.Data {
			a, b := refParams[i].Grad.Data[j], gotParams[i].Grad.Data[j]
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("param %s grad %d differs after interleaved eval: %v vs %v",
					refParams[i].Name, j, a, b)
			}
		}
	}
}

// BenchmarkTrainStepFloat32 is BenchmarkTrainStep on the float32 backend —
// the headline number for the PR-7 speedup gate (BENCH_7.json compares it
// against the float64 baseline recorded in bench_baseline_pr7.txt).
func BenchmarkTrainStepFloat32(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := NewSmallCNN(in1, 10, rng)
	m.SetBackend(Float32)
	opt := NewSGD(0.05, 0.9, 1e-4)
	x := tensor.New(32, in1.C, in1.H, in1.W)
	x.Randn(rng, 1)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = i % 10
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		_, d := SoftmaxXent(logits, labels)
		m.BackwardParams(d)
		opt.Step(m)
	}
}
