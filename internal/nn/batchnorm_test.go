package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

func TestBatchNormTrainOutputNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	l := NewBatchNorm2D("bn", 3)
	x := tensor.New(8, 3, 4, 4)
	x.Randn(rng, 2)
	// Shift channel 1 far off-center to verify per-channel normalization.
	for s := 0; s < 8; s++ {
		for i := 0; i < 16; i++ {
			x.Data[(s*3+1)*16+i] += 10
		}
	}
	out := l.Forward(x, true)
	for c := 0; c < 3; c++ {
		var sum, ss float64
		n := 0
		for s := 0; s < 8; s++ {
			base := (s*3 + c) * 16
			for i := 0; i < 16; i++ {
				sum += out.Data[base+i]
				n++
			}
		}
		mean := sum / float64(n)
		for s := 0; s < 8; s++ {
			base := (s*3 + c) * 16
			for i := 0; i < 16; i++ {
				d := out.Data[base+i] - mean
				ss += d * d
			}
		}
		std := math.Sqrt(ss / float64(n))
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("channel %d mean %g, want ~0", c, mean)
		}
		if math.Abs(std-1) > 1e-3 {
			t.Fatalf("channel %d std %g, want ~1", c, std)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	l := NewBatchNorm2D("bn", 2)
	// Feed several training batches so the running stats converge.
	for i := 0; i < 50; i++ {
		x := tensor.New(16, 2, 2, 2)
		x.Randn(rng, 1)
		for j := range x.Data {
			x.Data[j] = x.Data[j]*3 + 5 // mean 5, std 3
		}
		l.Forward(x, true)
	}
	// At inference a sample equal to the data mean must map near beta (=0).
	x := tensor.New(1, 2, 2, 2)
	x.Fill(5)
	out := l.Forward(x, false)
	for i, v := range out.Data {
		if math.Abs(v) > 0.15 {
			t.Fatalf("eval output[%d] = %g, want ~0 for mean input", i, v)
		}
	}
}

func TestBatchNormGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	conv := NewConv2D("conv", tensor.ConvDims{C: 1, H: 4, W: 4, K: 3, Stride: 1, Pad: 1}, 2, rng)
	bn := NewBatchNorm2D("bn", 2)
	// Give gamma/beta non-trivial values so their gradients are exercised.
	bn.Gamma.Value.Data[0], bn.Gamma.Value.Data[1] = 1.3, 0.7
	bn.Beta.Value.Data[0], bn.Beta.Value.Data[1] = 0.2, -0.4
	m := NewSequential(conv, bn, NewReLU("r"), NewFlatten("f"),
		NewDense("fc", 2*4*4, 3, rng))
	x := tensor.New(3, 1, 4, 4)
	x.Randn(rng, 1)
	labels := []int{0, 1, 2}

	// Train-mode loss (BN uses batch statistics in both analytic and
	// numeric evaluation).
	trainLoss := func() float64 {
		logits := m.Forward(x.Clone(), true)
		loss, _ := SoftmaxXent(logits, labels)
		return loss
	}
	m.ZeroGrads()
	logits := m.Forward(x.Clone(), true)
	_, d := SoftmaxXent(logits, labels)
	dx := m.Backward(d)
	var analytic [][]float64
	for _, p := range m.Params() {
		analytic = append(analytic, append([]float64(nil), p.Grad.Data...))
	}
	const eps = 1e-5
	const tol = 1e-5
	for pi, p := range m.Params() {
		for i := 0; i < p.Value.Len(); i++ {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			up := trainLoss()
			p.Value.Data[i] = orig - eps
			down := trainLoss()
			p.Value.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-analytic[pi][i]) > tol*(1+math.Abs(numeric)) {
				t.Fatalf("param %s[%d]: analytic %.8g vs numeric %.8g", p.Name, i, analytic[pi][i], numeric)
			}
		}
	}
	for i := 0; i < x.Len(); i++ {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		up := trainLoss()
		x.Data[i] = orig - eps
		down := trainLoss()
		x.Data[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-dx.Data[i]) > tol*(1+math.Abs(numeric)) {
			t.Fatalf("input[%d]: analytic %.8g vs numeric %.8g", i, dx.Data[i], numeric)
		}
	}
}

func TestBatchNormPruneZeroesAffine(t *testing.T) {
	l := NewBatchNorm2D("bn", 4)
	l.PruneUnit(2)
	if l.Gamma.Value.Data[2] != 0 || l.Beta.Value.Data[2] != 0 {
		t.Fatal("pruned BN channel affine not zeroed")
	}
	rng := rand.New(rand.NewSource(23))
	x := tensor.New(2, 4, 3, 3)
	x.Randn(rng, 5)
	out := l.Forward(x, true)
	for s := 0; s < 2; s++ {
		base := (s*4 + 2) * 9
		for i := 0; i < 9; i++ {
			if out.Data[base+i] != 0 {
				t.Fatal("pruned BN channel produced non-zero output")
			}
		}
	}
}

func TestPruneModelUnitCascadesToBatchNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	conv := NewConv2D("conv", tensor.ConvDims{C: 1, H: 4, W: 4, K: 3, Stride: 1, Pad: 1}, 3, rng)
	bn := NewBatchNorm2D("bn", 3)
	m := NewSequential(conv, bn, NewReLU("r"))
	m.PruneModelUnit(0, 1)
	if !conv.UnitPruned(1) {
		t.Fatal("conv channel not pruned")
	}
	if !bn.UnitPruned(1) {
		t.Fatal("BN channel not cascaded")
	}
	// The pruned channel must emit exactly zero end to end, train and eval.
	x := tensor.New(2, 1, 4, 4)
	x.Randn(rng, 1)
	for _, train := range []bool{true, false} {
		out := m.Forward(x, train)
		for s := 0; s < 2; s++ {
			base := (s*3 + 1) * 16
			for i := 0; i < 16; i++ {
				if out.Data[base+i] != 0 {
					t.Fatalf("train=%v: pruned channel leaked %g", train, out.Data[base+i])
				}
			}
		}
	}
}

func TestBatchNormCloneCopiesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	l := NewBatchNorm2D("bn", 2)
	x := tensor.New(8, 2, 2, 2)
	x.Randn(rng, 3)
	l.Forward(x, true)
	c := l.CloneLayer().(*BatchNorm2D)
	// Eval outputs must match exactly.
	a := l.Forward(x, false)
	b := c.Forward(x, false)
	if !a.Equal(b, 0) {
		t.Fatal("clone evaluates differently")
	}
	// Training the original must not affect the clone.
	l.Forward(x, true)
	b2 := c.Forward(x, false)
	if !b.Equal(b2, 0) {
		t.Fatal("clone shares running statistics")
	}
}
