package nn

import (
	"fmt"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Sequential is an ordered stack of layers forming a feed-forward network.
type Sequential struct {
	layers []Layer

	// params caches the flattened parameter list. Layers never gain or
	// lose parameters after construction, so the cache is invalidated only
	// when the layer slice itself changes (RestoreFrom).
	params []*Param

	// backend selects the arithmetic precision of forward/backward passes
	// (backend.go). Clones inherit it; parameters stay float64 either way.
	backend Backend

	// evalReuse mirrors the layers' eval-reuse state (SetEvalReuse) so the
	// float32 boundary conversions know whether their widened outputs may
	// live in the arena or must be fresh.
	evalReuse bool

	// scr32/scr64 hold the model-level precision-boundary staging buffers
	// of the Float32 backend (input narrowing, output/boundary widening).
	// Single-goroutine, not cloned or serialized, like layer scratch.
	scr32 tensor.Arena32
	scr64 tensor.Arena

	// actsBuf is the reused ForwardActivations result slice under eval
	// reuse (actsSlice).
	actsBuf []*tensor.Tensor
}

// NewSequential builds a network from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{layers: append([]Layer(nil), layers...)}
}

// Layers returns the layer slice (shared; callers must not mutate).
func (m *Sequential) Layers() []Layer { return m.layers }

// Layer returns layer i.
func (m *Sequential) Layer(i int) Layer { return m.layers[i] }

// NumLayers returns the number of layers.
func (m *Sequential) NumLayers() int { return len(m.layers) }

// Forward runs the network on a batch. train selects whether layers cache
// state for Backward.
func (m *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if m.backend == Float32 {
		return m.forward32(x, train)
	}
	for _, l := range m.layers {
		x = l.Forward(x, train)
	}
	return x
}

// ForwardTo runs inference through layers [0, hi) and returns the boundary
// activation (for hi == 0 the input itself). Together with ForwardFrom it
// splits a forward pass at a layer boundary: callers that mutate only
// layers ≥ hi can compute the prefix once and replay the suffix per
// mutation, bit-identically to a full Forward — the suffix executes the
// same ops on the same floats.
func (m *Sequential) ForwardTo(hi int, x *tensor.Tensor) *tensor.Tensor {
	if hi < 0 || hi > len(m.layers) {
		panic(fmt.Sprintf("nn: ForwardTo boundary %d outside [0,%d]", hi, len(m.layers)))
	}
	if m.backend == Float32 {
		return m.forwardTo32(hi, x)
	}
	for _, l := range m.layers[:hi] {
		x = l.Forward(x, false)
	}
	return x
}

// ForwardFrom runs inference through layers [li, NumLayers) on a boundary
// activation produced by ForwardTo(li, ·). Layers never write to their
// input, so a cached boundary activation can be replayed any number of
// times.
func (m *Sequential) ForwardFrom(li int, x *tensor.Tensor) *tensor.Tensor {
	if li < 0 || li > len(m.layers) {
		panic(fmt.Sprintf("nn: ForwardFrom boundary %d outside [0,%d]", li, len(m.layers)))
	}
	if m.backend == Float32 {
		return m.forwardFrom32(li, x)
	}
	for _, l := range m.layers[li:] {
		x = l.Forward(x, false)
	}
	return x
}

// evalReuser is implemented by layers whose inference outputs can be routed
// through reusable scratch buffers instead of fresh allocations.
type evalReuser interface {
	setEvalReuse(on bool)
}

// SetEvalReuse switches every layer's inference output between freshly
// allocated tensors (off, the default: callers may retain results across
// forward passes, see DESIGN.md §8) and reusable per-layer scratch buffers
// (on: each layer's next inference pass overwrites its previous output).
// The cached evaluators turn reuse on for the duration of a suffix scope,
// where every output is consumed before the next batch, making the warm
// suffix path allocation-free. Clones always start with reuse off.
func (m *Sequential) SetEvalReuse(on bool) {
	m.evalReuse = on
	for _, l := range m.layers {
		if r, ok := l.(evalReuser); ok {
			r.setEvalReuse(on)
		}
	}
}

// ForwardActivations runs inference and returns the output of every layer.
// acts[i] is the output of layer i; the final element is the network output.
// The federated pruning step uses this to record per-neuron activations.
// With eval reuse on, the returned slice itself is also reused — valid until
// the next ForwardActivations call, like the tensors it holds.
func (m *Sequential) ForwardActivations(x *tensor.Tensor) (acts []*tensor.Tensor) {
	if m.backend == Float32 {
		return m.forwardActivations32(x)
	}
	acts = m.actsSlice()
	for i, l := range m.layers {
		x = l.Forward(x, false)
		acts[i] = x
	}
	return acts
}

// actsSlice returns the per-layer activation slice for ForwardActivations:
// a reused buffer under eval reuse, fresh otherwise.
func (m *Sequential) actsSlice() []*tensor.Tensor {
	if !m.evalReuse {
		return make([]*tensor.Tensor, len(m.layers))
	}
	if len(m.actsBuf) != len(m.layers) {
		m.actsBuf = make([]*tensor.Tensor, len(m.layers))
	}
	return m.actsBuf
}

// Backward propagates dout (gradient w.r.t. the network output) through all
// layers in reverse, accumulating parameter gradients, and returns the
// gradient with respect to the network input.
func (m *Sequential) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if m.backend == Float32 {
		return m.backward32(dout)
	}
	for i := len(m.layers) - 1; i >= 0; i-- {
		dout = m.layers[i].Backward(dout)
	}
	return dout
}

// paramBackward is implemented by layers whose backward pass can skip
// materializing the input gradient while producing bit-identical parameter
// gradients. Only useful for the network's first layer, whose dx nothing
// consumes.
type paramBackward interface {
	backwardParams(dout *tensor.Tensor)
}

// paramBackward32 is the float32-backend twin of paramBackward.
type paramBackward32 interface {
	backwardParams32(dout *tensor.T32)
}

// BackwardParams is Backward for training loops: parameter gradients are
// bit-identical to Backward's, but the input gradient of the first layer —
// which SGD never consumes — is skipped when the layer supports it (for a
// Conv2D first layer that drops a full Wᵀ·dout matmul and Col2Im scatter
// per sample). Use Backward when the returned input gradient is needed.
func (m *Sequential) BackwardParams(dout *tensor.Tensor) {
	if m.backend == Float32 {
		m.backwardParams32(dout)
		return
	}
	for i := len(m.layers) - 1; i > 0; i-- {
		dout = m.layers[i].Backward(dout)
	}
	if pb, ok := m.layers[0].(paramBackward); ok {
		pb.backwardParams(dout)
		return
	}
	m.layers[0].Backward(dout)
}

// Params returns all learnable parameters in layer order. The returned
// slice is cached and shared — callers iterate it every optimizer step and
// must not mutate it.
func (m *Sequential) Params() []*Param {
	if m.params == nil {
		for _, l := range m.layers {
			m.params = append(m.params, l.Params()...)
		}
	}
	return m.params
}

// ZeroGrads clears every parameter gradient.
func (m *Sequential) ZeroGrads() {
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
}

// NumParams returns the total number of scalar parameters.
func (m *Sequential) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.Value.Len()
	}
	return n
}

// Clone returns a deep copy of the network, including prune masks.
func (m *Sequential) Clone() *Sequential {
	ls := make([]Layer, len(m.layers))
	for i, l := range m.layers {
		ls[i] = l.CloneLayer()
	}
	return &Sequential{layers: ls, backend: m.backend}
}

// ParamsVector flattens all parameter values into a single new slice, in
// layer order. The layout is stable for a fixed architecture, which is what
// federated averaging relies on.
func (m *Sequential) ParamsVector() []float64 {
	out := make([]float64, 0, m.NumParams())
	for _, p := range m.Params() {
		out = append(out, p.Value.Data...)
	}
	return out
}

// SetParamsVector installs a flat parameter vector produced by
// ParamsVector on a network of the identical architecture, then re-applies
// prune masks so masked units cannot be resurrected by an aggregated update.
func (m *Sequential) SetParamsVector(v []float64) {
	if len(v) != m.NumParams() {
		panic(fmt.Sprintf("nn: SetParamsVector length %d, want %d", len(v), m.NumParams()))
	}
	off := 0
	for _, p := range m.Params() {
		n := p.Value.Len()
		copy(p.Value.Data, v[off:off+n])
		off += n
	}
	m.EnforceMasks()
}

// AddDeltaVector adds alpha·delta to the parameters, then re-applies prune
// masks. Used by the FedAvg update rule.
func (m *Sequential) AddDeltaVector(alpha float64, delta []float64) {
	if len(delta) != m.NumParams() {
		panic(fmt.Sprintf("nn: AddDeltaVector length %d, want %d", len(delta), m.NumParams()))
	}
	off := 0
	for _, p := range m.Params() {
		n := p.Value.Len()
		data := p.Value.Data
		for i := 0; i < n; i++ {
			data[i] += alpha * delta[off+i]
		}
		off += n
	}
	m.EnforceMasks()
}

// FreezeStats freezes every batch-normalization layer of m so that
// training-mode passes use the running statistics as constants (no batch
// statistics, no stat updates). Gradient-based input optimization against
// a fixed model (trigger reverse-engineering) requires this.
func FreezeStats(m *Sequential) {
	for _, l := range m.layers {
		if bn, ok := l.(*BatchNorm2D); ok {
			bn.Freeze()
		}
	}
}

// RestoreFrom replaces this model's layers with deep copies of src's
// layers (parameters, prune masks and statistics). Both models must have
// the same architecture. It lets callers holding a *Sequential roll the
// model back to a snapshot taken with Clone.
func (m *Sequential) RestoreFrom(src *Sequential) {
	if len(m.layers) != len(src.layers) {
		panic(fmt.Sprintf("nn: RestoreFrom layer count %d, want %d", len(src.layers), len(m.layers)))
	}
	for i, l := range src.layers {
		m.layers[i] = l.CloneLayer()
	}
	m.params = nil // the cached parameter pointers just changed
}

// StatMask returns a flat boolean mask over ParamsVector positions marking
// Stat parameters (batch-norm running statistics). Attackers that scale
// their update (model replacement) use it to leave statistics unscaled.
func (m *Sequential) StatMask() []bool {
	mask := make([]bool, 0, m.NumParams())
	for _, p := range m.Params() {
		for i := 0; i < p.Value.Len(); i++ {
			mask = append(mask, p.Stat)
		}
	}
	return mask
}

// EnforceMasks re-applies the prune mask of every Prunable layer.
func (m *Sequential) EnforceMasks() {
	for _, l := range m.layers {
		if p, ok := l.(Prunable); ok {
			p.EnforceMask()
		}
	}
}

// PrunableLayers returns the indices of layers implementing Prunable, in
// network order.
func (m *Sequential) PrunableLayers() []int {
	var idx []int
	for i, l := range m.layers {
		if _, ok := l.(Prunable); ok {
			idx = append(idx, i)
		}
	}
	return idx
}

// PruneModelUnit prunes output unit u of the Prunable layer at index li
// and, when the immediately following layer is a BatchNorm2D, prunes the
// same channel there too (otherwise normalization would re-inflate the
// dead channel's zeros into a non-zero bias). It panics if layer li is not
// Prunable.
func (m *Sequential) PruneModelUnit(li, u int) {
	p, ok := m.layers[li].(Prunable)
	if !ok {
		panic(fmt.Sprintf("nn: layer %d (%s) is not prunable", li, m.layers[li].Name()))
	}
	p.PruneUnit(u)
	if li+1 < len(m.layers) {
		if bn, ok := m.layers[li+1].(*BatchNorm2D); ok {
			bn.PruneUnit(u)
		}
	}
}

// UnitSnapshot holds the parameter state touched by PruneModelUnit(li, u):
// the unit's slice of the Prunable layer at li plus, when the next layer is
// a BatchNorm2D, that channel's affine parameters. CaptureUnit fills one,
// RestoreUnit reinstates it — a revert that copies a handful of floats
// instead of cloning the whole model. Snapshots reuse their backing slices
// across captures, so a guarded prune loop allocates nothing after the
// first capture.
type UnitSnapshot struct {
	li, unit int
	vals     []float64
	pruned   bool
	hasBN    bool
	bnVals   []float64
	bnPruned bool
}

// CaptureUnit records the state PruneModelUnit(li, u) would mutate,
// reusing prev's backing storage. It panics if layer li is not Prunable.
func (m *Sequential) CaptureUnit(li, u int, prev UnitSnapshot) UnitSnapshot {
	p, ok := m.layers[li].(Prunable)
	if !ok {
		panic(fmt.Sprintf("nn: layer %d (%s) is not prunable", li, m.layers[li].Name()))
	}
	snap := prev
	snap.li, snap.unit = li, u
	snap.vals = p.AppendUnitState(snap.vals[:0], u)
	snap.pruned = p.UnitPruned(u)
	snap.hasBN = false
	if li+1 < len(m.layers) {
		if bn, ok := m.layers[li+1].(*BatchNorm2D); ok {
			snap.hasBN = true
			snap.bnVals = bn.AppendUnitState(snap.bnVals[:0], u)
			snap.bnPruned = bn.UnitPruned(u)
		}
	}
	return snap
}

// RestoreUnit reinstates a snapshot taken with CaptureUnit, exactly
// reverting an intervening PruneModelUnit(li, u): that call zeroes only the
// unit's parameters and sets its mask flags, both of which the snapshot
// carries.
func (m *Sequential) RestoreUnit(snap UnitSnapshot) {
	p, ok := m.layers[snap.li].(Prunable)
	if !ok {
		panic(fmt.Sprintf("nn: layer %d (%s) is not prunable", snap.li, m.layers[snap.li].Name()))
	}
	p.SetUnitState(snap.unit, snap.vals, snap.pruned)
	if snap.hasBN {
		m.layers[snap.li+1].(*BatchNorm2D).SetUnitState(snap.unit, snap.bnVals, snap.bnPruned)
	}
}

// LastConvIndex returns the index of the last Conv2D layer, or -1 if the
// network has none. The paper's pruning and weight-adjustment steps target
// this layer.
func (m *Sequential) LastConvIndex() int {
	for i := len(m.layers) - 1; i >= 0; i-- {
		if _, ok := m.layers[i].(*Conv2D); ok {
			return i
		}
	}
	return -1
}

// LayerIndexByName returns the index of the first layer with the given
// name, or -1.
func (m *Sequential) LayerIndexByName(name string) int {
	for i, l := range m.layers {
		if l.Name() == name {
			return i
		}
	}
	return -1
}
