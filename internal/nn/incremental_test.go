package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Bit-identity of the split forward pass (ISSUE 3): for every boundary li,
// ForwardTo(li, x) followed by ForwardFrom(li, ·) must reproduce
// Forward(x, false) exactly, with and without eval-buffer reuse.

func bitsEqualSlice(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d is %v, want %v (bitwise)", what, i, got[i], want[i])
		}
	}
}

func splitModels(t *testing.T) []struct {
	name string
	m    *Sequential
	c    int
} {
	t.Helper()
	rng := rand.New(rand.NewSource(81))
	return []struct {
		name string
		m    *Sequential
		c    int
	}{
		{"small-cnn", NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rng), 1},
		{"mini-vgg", NewMiniVGG(Input{C: 3, H: 16, W: 16}, 10, rng), 3},
	}
}

func TestForwardSplitBitIdenticalAtEveryBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for _, tc := range splitModels(t) {
		t.Run(tc.name, func(t *testing.T) {
			x := tensor.New(5, tc.c, 16, 16)
			x.Randn(rng, 1)
			want := tc.m.Forward(x, false).Clone()
			for li := 0; li <= tc.m.NumLayers(); li++ {
				b := tc.m.ForwardTo(li, x)
				out := tc.m.ForwardFrom(li, b)
				bitsEqualSlice(t, tc.name+" split", out.Data, want.Data)
			}
		})
	}
}

func TestForwardSplitBitIdenticalUnderEvalReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, tc := range splitModels(t) {
		t.Run(tc.name, func(t *testing.T) {
			x := tensor.New(4, tc.c, 16, 16)
			x.Randn(rng, 1)
			want := tc.m.Forward(x, false).Clone()
			tc.m.SetEvalReuse(true)
			for li := 0; li <= tc.m.NumLayers(); li++ {
				// Replaying the suffix twice exercises the warm reuse buffers
				// — the cached evaluators' steady state.
				b := tc.m.ForwardTo(li, x)
				for rep := 0; rep < 2; rep++ {
					out := tc.m.ForwardFrom(li, b)
					bitsEqualSlice(t, tc.name+" reuse split", out.Data, want.Data)
				}
			}
			tc.m.SetEvalReuse(false)
			out := tc.m.Forward(x, false)
			bitsEqualSlice(t, tc.name+" after reuse off", out.Data, want.Data)
		})
	}
}

func TestCaptureRestoreUnitRoundTrip(t *testing.T) {
	for _, tc := range splitModels(t) {
		t.Run(tc.name, func(t *testing.T) {
			var snap UnitSnapshot
			for _, li := range tc.m.PrunableLayers() {
				// Skip BatchNorm targets: PruneModelUnit treats a BN following
				// a conv as part of that conv's unit, which is what the
				// defense prunes.
				if _, isBN := tc.m.Layer(li).(*BatchNorm2D); isBN {
					continue
				}
				before := tc.m.ParamsVector()
				unit := li % tc.m.Layer(li).(Prunable).Units()
				snap = tc.m.CaptureUnit(li, unit, snap)
				tc.m.PruneModelUnit(li, unit)
				if !tc.m.Layer(li).(Prunable).UnitPruned(unit) {
					t.Fatalf("layer %d unit %d not marked pruned", li, unit)
				}
				tc.m.RestoreUnit(snap)
				if tc.m.Layer(li).(Prunable).UnitPruned(unit) {
					t.Fatalf("layer %d unit %d still pruned after restore", li, unit)
				}
				bitsEqualSlice(t, "params after restore", tc.m.ParamsVector(), before)
			}
		})
	}
}

func TestCaptureRestoreUnitKeepsPrunedFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	m := NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rng)
	li := m.LastConvIndex()
	m.PruneModelUnit(li, 4)
	before := m.ParamsVector()
	snap := m.CaptureUnit(li, 4, UnitSnapshot{})
	m.PruneModelUnit(li, 4) // idempotent prune of an already-dead unit
	m.RestoreUnit(snap)
	if !m.Layer(li).(Prunable).UnitPruned(4) {
		t.Fatal("restore cleared a prune flag that was set at capture time")
	}
	bitsEqualSlice(t, "params", m.ParamsVector(), before)
}

func TestCaptureUnitReusesSnapshotStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	m := NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rng)
	li := m.LastConvIndex()
	snap := m.CaptureUnit(li, 0, UnitSnapshot{})
	backing := &snap.vals[0]
	before := m.ParamsVector()
	for u := 1; u < m.Layer(li).(Prunable).Units(); u++ {
		snap = m.CaptureUnit(li, u, snap)
		if &snap.vals[0] != backing {
			t.Fatalf("capture of unit %d reallocated the snapshot backing", u)
		}
		m.PruneModelUnit(li, u)
		m.RestoreUnit(snap)
	}
	bitsEqualSlice(t, "params", m.ParamsVector(), before)
}
