package nn

import "github.com/fedcleanse/fedcleanse/internal/tensor"

// SGD is a stochastic-gradient-descent optimizer with classical momentum,
// global weight decay, and support for per-parameter L2 penalties (set via
// Param.L2; used by the paper's last-conv-layer regularization study).
//
// The velocity buffers are keyed by parameter identity, so one SGD instance
// must be used with exactly one model instance.
type SGD struct {
	// LR is the learning rate. Must be positive.
	LR float64
	// Momentum in [0,1); 0 disables momentum.
	Momentum float64
	// WeightDecay is a global L2 coefficient applied to every parameter
	// except those marked NoDecay.
	WeightDecay float64

	velocity map[*Param]*tensor.Tensor
}

// NewSGD returns an optimizer with the given hyperparameters.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay}
}

// Step applies one update to every parameter of the model from its
// accumulated gradients, then clears the gradients and re-applies prune
// masks so pruned units remain zero.
func (o *SGD) Step(m *Sequential) {
	if o.velocity == nil {
		o.velocity = make(map[*Param]*tensor.Tensor)
	}
	for _, p := range m.Params() {
		if p.Stat {
			continue // running statistics are not optimized
		}
		g := p.Grad
		// Decoupled penalties are folded into the gradient: global weight
		// decay plus the parameter's own L2 coefficient.
		decay := p.L2
		if !p.NoDecay {
			decay += o.WeightDecay
		}
		if decay != 0 {
			g.AddScaled(decay, p.Value)
		}
		if o.Momentum > 0 {
			v, ok := o.velocity[p]
			if !ok {
				v = tensor.New(p.Value.Shape()...)
				o.velocity[p] = v
			}
			v.Scale(o.Momentum)
			v.Add(g)
			p.Value.AddScaled(-o.LR, v)
		} else {
			p.Value.AddScaled(-o.LR, g)
		}
		g.Zero()
	}
	m.EnforceMasks()
}

// Reset drops all velocity state (e.g. when the model parameters are
// replaced wholesale by a federated aggregation).
func (o *SGD) Reset() { o.velocity = nil }

// ZeroVelocity zeroes every velocity buffer in place. The optimizer then
// behaves exactly like a freshly constructed one (velocity starts at zero)
// while keeping its buffers, so training loops that restart momentum every
// round — each federated local update — reuse the allocation.
func (o *SGD) ZeroVelocity() {
	for _, v := range o.velocity {
		v.Zero()
	}
}
