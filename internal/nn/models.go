package nn

import (
	"fmt"
	"math/rand"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Input describes the per-sample input geometry of a model.
type Input struct {
	C, H, W int
}

// Elems returns the number of scalars per sample.
func (in Input) Elems() int { return in.C * in.H * in.W }

// NewSmallCNN builds the paper's small MNIST network: two convolutional
// layers (8 and 16 channels) followed by two fully connected layers
// (Table VI "Small NN"; the architecture used for the MNIST experiments).
func NewSmallCNN(in Input, classes int, rng *rand.Rand) *Sequential {
	return newTwoConvCNN(in, classes, 8, 16, 64, rng)
}

// NewLargeCNN builds the paper's large MNIST network with 20 and 50
// channels in the two convolutional layers (Table VI "Large NN").
func NewLargeCNN(in Input, classes int, rng *rand.Rand) *Sequential {
	return newTwoConvCNN(in, classes, 20, 50, 128, rng)
}

// newTwoConvCNN is the shared conv-conv-dense-dense topology.
func newTwoConvCNN(in Input, classes, f1, f2, hidden int, rng *rand.Rand) *Sequential {
	d1 := tensor.ConvDims{C: in.C, H: in.H, W: in.W, K: 3, Stride: 1, Pad: 1}
	c1 := NewConv2D("conv1", d1, f1, rng)
	h1, w1 := d1.OutH()/2, d1.OutW()/2 // after pool1
	d2 := tensor.ConvDims{C: f1, H: h1, W: w1, K: 3, Stride: 1, Pad: 1}
	c2 := NewConv2D("conv2", d2, f2, rng)
	h2, w2 := d2.OutH()/2, d2.OutW()/2 // after pool2
	flat := f2 * h2 * w2
	return NewSequential(
		c1,
		NewReLU("relu1"),
		NewMaxPool2D("pool1", 2, 2),
		c2,
		NewReLU("relu2"),
		NewMaxPool2D("pool2", 2, 2),
		NewFlatten("flatten"),
		NewDense("fc1", flat, hidden, rng),
		NewReLU("relu3"),
		NewDense("fc2", hidden, classes, rng),
	)
}

// NewFashionCNN builds the paper's Fashion-MNIST network: three
// convolutional layers and two fully connected layers.
func NewFashionCNN(in Input, classes int, rng *rand.Rand) *Sequential {
	d1 := tensor.ConvDims{C: in.C, H: in.H, W: in.W, K: 3, Stride: 1, Pad: 1}
	c1 := NewConv2D("conv1", d1, 8, rng)
	h1, w1 := d1.OutH()/2, d1.OutW()/2
	d2 := tensor.ConvDims{C: 8, H: h1, W: w1, K: 3, Stride: 1, Pad: 1}
	c2 := NewConv2D("conv2", d2, 16, rng)
	h2, w2 := d2.OutH()/2, d2.OutW()/2
	d3 := tensor.ConvDims{C: 16, H: h2, W: w2, K: 3, Stride: 1, Pad: 1}
	c3 := NewConv2D("conv3", d3, 32, rng)
	flat := 32 * d3.OutH() * d3.OutW()
	return NewSequential(
		c1, NewReLU("relu1"), NewMaxPool2D("pool1", 2, 2),
		c2, NewReLU("relu2"), NewMaxPool2D("pool2", 2, 2),
		c3, NewReLU("relu3"),
		NewFlatten("flatten"),
		NewDense("fc1", flat, 64, rng),
		NewReLU("relu4"),
		NewDense("fc2", 64, classes, rng),
	)
}

// NewMiniVGG builds a width-reduced VGG11-style network for the CIFAR-like
// task: eight convolutional layers in conv/conv/pool blocks followed by
// three dense layers. This stands in for the paper's VGG11 (see DESIGN.md:
// the defense only needs the "many redundant late-conv channels" property,
// which this topology preserves at pure-Go training cost).
func NewMiniVGG(in Input, classes int, rng *rand.Rand) *Sequential {
	mk := func(name string, c, h, w, f int) *Conv2D {
		return NewConv2D(name, tensor.ConvDims{C: c, H: h, W: w, K: 3, Stride: 1, Pad: 1}, f, rng)
	}
	h, w := in.H, in.W
	c1 := mk("conv1", in.C, h, w, 8)
	h, w = h/2, w/2
	c2 := mk("conv2", 8, h, w, 16)
	h, w = h/2, w/2
	c3 := mk("conv3", 16, h, w, 16)
	c4 := mk("conv4", 16, h, w, 16)
	h, w = h/2, w/2
	c5 := mk("conv5", 16, h, w, 32)
	c6 := mk("conv6", 32, h, w, 32)
	c7 := mk("conv7", 32, h, w, 32)
	c8 := mk("conv8", 32, h, w, 32)
	h, w = h/2, w/2
	flat := 32 * h * w
	// Batch normalization follows convs 1-7 for trainability at depth; the
	// prune/AW target conv8 stays normalization-free so the defense's
	// weight statistics match the paper's plain-VGG setting.
	return NewSequential(
		c1, NewBatchNorm2D("bn1", 8), NewReLU("relu1"), NewMaxPool2D("pool1", 2, 2),
		c2, NewBatchNorm2D("bn2", 16), NewReLU("relu2"), NewMaxPool2D("pool2", 2, 2),
		c3, NewBatchNorm2D("bn3", 16), NewReLU("relu3"),
		c4, NewBatchNorm2D("bn4", 16), NewReLU("relu4"), NewMaxPool2D("pool3", 2, 2),
		c5, NewBatchNorm2D("bn5", 32), NewReLU("relu5"),
		c6, NewBatchNorm2D("bn6", 32), NewReLU("relu6"),
		c7, NewBatchNorm2D("bn7", 32), NewReLU("relu7"),
		c8, NewReLU("relu8"), NewMaxPool2D("pool4", 2, 2),
		NewFlatten("flatten"),
		NewDense("fc1", flat, 48, rng),
		NewReLU("relu9"),
		NewDense("fc2", 48, 48, rng),
		NewReLU("relu10"),
		NewDense("fc3", 48, classes, rng),
	)
}

// ModelBuilder constructs a fresh model for a given input geometry. The
// federated experiments use it to seed identical architectures everywhere.
type ModelBuilder func(in Input, classes int, rng *rand.Rand) *Sequential

// BuilderByName resolves a model architecture by its CLI name.
func BuilderByName(name string) (ModelBuilder, error) {
	switch name {
	case "small":
		return NewSmallCNN, nil
	case "large":
		return NewLargeCNN, nil
	case "fashion":
		return NewFashionCNN, nil
	case "minivgg":
		return NewMiniVGG, nil
	default:
		return nil, fmt.Errorf("nn: unknown model %q (want small, large, fashion or minivgg)", name)
	}
}
