package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
)

// Snapshot is the serialized form of a model built by one of the model-zoo
// constructors: the architecture descriptor plus the flat parameter vector
// and the prune masks. It deliberately does not serialize arbitrary layer
// graphs — reconstruction goes through the registered builders, which
// keeps the format stable and the loader free of code execution beyond
// the known architectures.
type Snapshot struct {
	// Builder is the model-zoo name ("small", "large", "fashion",
	// "minivgg").
	Builder string
	// Input is the per-sample input geometry.
	Input Input
	// Classes is the output width.
	Classes int
	// Params is the flat parameter vector (ParamsVector layout).
	Params []float64
	// Masks maps prunable layer index to its pruned-unit mask.
	Masks map[int][]bool
}

// Save writes a gob-encoded snapshot of m to w. builderName must identify
// the constructor that built m (see BuilderByName); in and classes must
// match the constructor arguments.
func Save(w io.Writer, builderName string, in Input, classes int, m *Sequential) error {
	if _, err := BuilderByName(builderName); err != nil {
		return fmt.Errorf("nn: Save: %w", err)
	}
	snap := Snapshot{
		Builder: builderName,
		Input:   in,
		Classes: classes,
		Params:  m.ParamsVector(),
		Masks:   map[int][]bool{},
	}
	for i, l := range m.Layers() {
		p, ok := l.(Prunable)
		if !ok {
			continue
		}
		mask := make([]bool, p.Units())
		any := false
		for u := range mask {
			mask[u] = p.UnitPruned(u)
			any = any || mask[u]
		}
		if any {
			snap.Masks[i] = mask
		}
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("nn: Save: %w", err)
	}
	return nil
}

// Load reads a snapshot from r and reconstructs the model: the registered
// builder recreates the architecture (with throwaway initialization), the
// prune masks are re-installed, and the parameter vector is restored.
func Load(r io.Reader) (*Sequential, error) {
	var snap Snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("nn: Load: %w", err)
	}
	build, err := BuilderByName(snap.Builder)
	if err != nil {
		return nil, fmt.Errorf("nn: Load: %w", err)
	}
	if snap.Input.Elems() <= 0 || snap.Classes <= 0 {
		return nil, fmt.Errorf("nn: Load: invalid geometry %+v / %d classes", snap.Input, snap.Classes)
	}
	m := build(snap.Input, snap.Classes, rand.New(rand.NewSource(0)))
	if len(snap.Params) != m.NumParams() {
		return nil, fmt.Errorf("nn: Load: snapshot has %d params, architecture wants %d",
			len(snap.Params), m.NumParams())
	}
	for li, mask := range snap.Masks {
		if li < 0 || li >= m.NumLayers() {
			return nil, fmt.Errorf("nn: Load: mask for layer %d of %d", li, m.NumLayers())
		}
		p, ok := m.Layer(li).(Prunable)
		if !ok {
			return nil, fmt.Errorf("nn: Load: layer %d is not prunable", li)
		}
		if len(mask) != p.Units() {
			return nil, fmt.Errorf("nn: Load: mask length %d for layer %d with %d units",
				len(mask), li, p.Units())
		}
		for u, pruned := range mask {
			if pruned {
				p.PruneUnit(u)
			}
		}
	}
	// Parameters last: SetParamsVector re-applies the masks installed
	// above, so masked units stay zero even if the snapshot was edited.
	m.SetParamsVector(snap.Params)
	return m, nil
}

// encodeSnapshot is a test hook encoding an arbitrary snapshot.
func encodeSnapshot(w io.Writer, snap Snapshot) error {
	return gob.NewEncoder(w).Encode(snap)
}
