package nn

import (
	"fmt"
	"math"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	name string
	mask []bool // true where input > 0 in the last training forward

	// evalReuse routes inference outputs through the scratch arena
	// (Sequential.SetEvalReuse).
	evalReuse bool

	// scratch holds the reusable train-mode output and backward dx
	// buffers. Inference passes allocate fresh because callers may retain
	// the result. Not cloned.
	scratch tensor.Arena

	// scratch32 is the float32-backend equivalent (layers32.go); the mask
	// is shared, since only one precision is active per model.
	scratch32 tensor.Arena32
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a named ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (l *ReLU) Name() string { return l.name }

// Forward implements Layer. The clamp is written as the max builtin and
// the mask as a bare comparison store: both compile branch-free, where an
// if/else select costs a data-dependent branch per element that
// mispredicts ~50% of the time on activation-like inputs (measured ~3×
// slower than this form).
func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train {
		var out *tensor.Tensor
		if l.evalReuse {
			out = l.scratch.GetLike("eout", x)
		} else {
			out = tensor.New(x.Shape()...)
		}
		for i, v := range x.Data {
			out.Data[i] = max(v, 0)
		}
		l.mask = nil
		return out
	}
	out := l.scratch.GetLike("out", x)
	if cap(l.mask) < len(out.Data) {
		l.mask = make([]bool, len(out.Data))
	}
	l.mask = l.mask[:len(out.Data)]
	for i, v := range x.Data {
		out.Data[i] = max(v, 0)
		l.mask[i] = v > 0
	}
	return out
}

// Backward implements Layer. dx lives in a reusable buffer. The pass-mask
// is derived from the cached training output rather than the bool mask:
// out is max(x, 0), so its bits are nonzero exactly where x > 0, and
// `(ob|-ob)>>31` turns that into an all-ones/all-zero word that gates
// dout without a branch (the bool mask would put a mispredicting branch
// back in the loop; it is kept as the trained-state marker).
func (l *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if l.mask == nil {
		panic(fmt.Sprintf("nn: %s: Backward without training Forward", l.name))
	}
	out := l.scratch.GetLike("out", dout)
	dx := l.scratch.GetLike("dx", dout)
	for i, v := range dout.Data {
		ob := math.Float64bits(out.Data[i])
		keep := uint64(int64(ob|-ob) >> 63)
		dx.Data[i] = math.Float64frombits(math.Float64bits(v) & keep)
	}
	return dx
}

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

// CloneLayer implements Layer.
func (l *ReLU) CloneLayer() Layer { return &ReLU{name: l.name} }

// setEvalReuse implements evalReuser.
func (l *ReLU) setEvalReuse(on bool) { l.evalReuse = on }

// Flatten reshapes (N, ...) batches to (N, D).
type Flatten struct {
	name    string
	inShape []int

	// evalReuse routes inference reshape headers through the persistent
	// per-batch-size set (Sequential.SetEvalReuse).
	evalReuse bool

	// hdrs holds persistent reshape headers per batch size, re-pointed at
	// the caller's data each training step. Keying by batch size keeps a
	// training loop that alternates full and tail batches allocation-free
	// once both sizes have been seen.
	hdrs map[int]*flattenHdrs

	// hdrs32 is the float32-backend equivalent (layers32.go).
	hdrs32 map[int]*flattenHdrs32
}

// flattenHdrs is one batch size's set of reshape headers (training output,
// backward dx, and the eval-reuse output).
type flattenHdrs struct {
	out, dx, eout *tensor.Tensor
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a named Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (l *Flatten) Name() string { return l.name }

// Forward implements Layer.
func (l *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	d := x.Len() / n
	if !train {
		if !l.evalReuse {
			return x.Reshape(n, d)
		}
		h := l.headers(n)
		if h.eout == nil || h.eout.Dim(1) != d {
			h.eout = x.Reshape(n, d)
		} else {
			h.eout.Data = x.Data
		}
		return h.eout
	}
	if len(l.inShape) != x.Rank() {
		l.inShape = make([]int, x.Rank())
	}
	for i := range l.inShape {
		l.inShape[i] = x.Dim(i)
	}
	h := l.headers(n)
	if h.out == nil || h.out.Dim(1) != d {
		h.out = x.Reshape(n, d)
	} else {
		h.out.Data = x.Data
	}
	return h.out
}

// headers returns the reshape-header pair for batch size n, creating it on
// first sight of the size.
func (l *Flatten) headers(n int) *flattenHdrs {
	if h, ok := l.hdrs[n]; ok {
		return h
	}
	if l.hdrs == nil {
		l.hdrs = make(map[int]*flattenHdrs)
	}
	h := &flattenHdrs{}
	l.hdrs[n] = h
	return h
}

// Backward implements Layer.
func (l *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if l.inShape == nil {
		panic(fmt.Sprintf("nn: %s: Backward without training Forward", l.name))
	}
	h := l.headers(l.inShape[0])
	if h.dx == nil || !sameShape(h.dx, l.inShape) {
		h.dx = dout.Reshape(l.inShape...)
	} else {
		h.dx.Data = dout.Data
	}
	return h.dx
}

// sameShape reports whether t's shape equals shape.
func sameShape(t *tensor.Tensor, shape []int) bool {
	if t.Rank() != len(shape) {
		return false
	}
	for i, d := range shape {
		if t.Dim(i) != d {
			return false
		}
	}
	return true
}

// Params implements Layer.
func (l *Flatten) Params() []*Param { return nil }

// CloneLayer implements Layer.
func (l *Flatten) CloneLayer() Layer { return &Flatten{name: l.name} }

// setEvalReuse implements evalReuser.
func (l *Flatten) setEvalReuse(on bool) { l.evalReuse = on }

// MaxPool2D performs non-overlapping (or strided) 2-D max pooling over NCHW
// batches.
type MaxPool2D struct {
	name   string
	size   int
	stride int

	inShape []int
	argmax  []int // flat input index chosen for each output element

	// evalReuse routes inference outputs through the scratch arena
	// (Sequential.SetEvalReuse).
	evalReuse bool

	// scratch holds the reusable train-mode output and backward dx
	// buffers. Not cloned.
	scratch tensor.Arena

	// scratch32 is the float32-backend equivalent (layers32.go); inShape
	// and argmax are shared, since only one precision is active per model.
	scratch32 tensor.Arena32
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D builds a max-pooling layer with a square window.
func NewMaxPool2D(name string, size, stride int) *MaxPool2D {
	if size <= 0 || stride <= 0 {
		panic(fmt.Sprintf("nn: %s: bad pool size/stride %d/%d", name, size, stride))
	}
	return &MaxPool2D{name: name, size: size, stride: stride}
}

// Name implements Layer.
func (l *MaxPool2D) Name() string { return l.name }

// Forward implements Layer for x of shape (N, C, H, W).
func (l *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s: input rank %d, want 4", l.name, x.Rank()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outH := (h-l.size)/l.stride + 1
	outW := (w-l.size)/l.stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: %s: window %d too large for %d×%d input", l.name, l.size, h, w))
	}
	var out *tensor.Tensor
	if train {
		out = l.scratch.Get("out", n, c, outH, outW)
		if len(l.inShape) != 4 {
			l.inShape = make([]int, 4)
		}
		l.inShape[0], l.inShape[1], l.inShape[2], l.inShape[3] = n, c, h, w
		if cap(l.argmax) < out.Len() {
			l.argmax = make([]int, out.Len())
		}
		l.argmax = l.argmax[:out.Len()]
	} else {
		if l.evalReuse {
			out = l.scratch.Get("eout", n, c, outH, outW)
		} else {
			out = tensor.New(n, c, outH, outW)
		}
		l.argmax = nil
	}
	if l.size == 2 && l.stride == 2 {
		pool2x2(x.Data, out.Data, l.argmax, n*c, h, w, outH, outW)
		return out
	}
	poolWindow(x.Data, out.Data, l.argmax, n*c, h, w, outH, outW, l.size, l.stride)
	return out
}

// poolWindow is the generic max-pooling walk for an arbitrary square
// window. argmax is nil on inference passes.
func poolWindow[E tensor.Elem](x, out []E, argmax []int, nc, h, w, outH, outW, size, stride int) {
	oi := 0
	for s := 0; s < nc; s++ {
		base := s * h * w
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				iy0, ix0 := oy*stride, ox*stride
				bestIdx := base + iy0*w + ix0
				best := x[bestIdx]
				for ky := 0; ky < size; ky++ {
					rowBase := base + (iy0+ky)*w
					for kx := 0; kx < size; kx++ {
						idx := rowBase + ix0 + kx
						if x[idx] > best {
							best, bestIdx = x[idx], idx
						}
					}
				}
				out[oi] = best
				if argmax != nil {
					argmax[oi] = bestIdx
				}
				oi++
			}
		}
	}
}

// pool2x2 is the specialized kernel for the 2×2/stride-2 window every
// shipped model uses. The running maximum is the max builtin (branch-free)
// and the argmax falls out of strict-greater selects that compile to
// conditional moves, so the data-dependent branches of the generic window
// walk — which mispredict on activation-like inputs — disappear (measured
// ~3× faster). The argmax matches the generic walk bit for bit (first
// maximum in ky-major/kx-minor order wins; ±0 ties compare equal either
// way); the value can differ from the select chain only in the sign of a
// zero. argmax is nil on inference passes.
func pool2x2[E tensor.Elem](x, out []E, argmax []int, nc, h, w, outH, outW int) {
	oi := 0
	for s := 0; s < nc; s++ {
		base := s * h * w
		for oy := 0; oy < outH; oy++ {
			r0 := base + 2*oy*w
			r1 := r0 + w
			if argmax != nil {
				for ox := 0; ox < outW; ox++ {
					i0 := r0 + 2*ox
					i2 := r1 + 2*ox
					v0, v1, v2, v3 := x[i0], x[i0+1], x[i2], x[i2+1]
					bi := i0
					if v1 > v0 {
						bi = i0 + 1
					}
					vb := max(v0, v1)
					if v2 > vb {
						bi = i2
					}
					vb = max(vb, v2)
					if v3 > vb {
						bi = i2 + 1
					}
					out[oi] = max(vb, v3)
					argmax[oi] = bi
					oi++
				}
			} else {
				for ox := 0; ox < outW; ox++ {
					i0 := r0 + 2*ox
					i2 := r1 + 2*ox
					out[oi] = max(max(x[i0], x[i0+1]), max(x[i2], x[i2+1]))
					oi++
				}
			}
		}
	}
}

// Backward implements Layer. dx lives in a reusable buffer.
func (l *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if l.argmax == nil {
		panic(fmt.Sprintf("nn: %s: Backward without training Forward", l.name))
	}
	dx := l.scratch.Get("dx", l.inShape...)
	dx.Zero() // the scatter below accumulates
	for oi, v := range dout.Data {
		dx.Data[l.argmax[oi]] += v
	}
	return dx
}

// Params implements Layer.
func (l *MaxPool2D) Params() []*Param { return nil }

// CloneLayer implements Layer.
func (l *MaxPool2D) CloneLayer() Layer {
	return &MaxPool2D{name: l.name, size: l.size, stride: l.stride}
}

// setEvalReuse implements evalReuser.
func (l *MaxPool2D) setEvalReuse(on bool) { l.evalReuse = on }
