package nn

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"

	"github.com/fedcleanse/fedcleanse/internal/wire"
)

// Versioned model serialization (DESIGN.md §15). The gob Snapshot format
// of serialize.go ties writer and reader to one binary version — gob
// streams carry Go type descriptors, so a renamed field is a broken
// federation. The versioned format encodes the same information as typed
// wire sections over raw little-endian payloads: stable across binaries,
// self-describing enough for readers to skip sections they do not know,
// and closed by a CRC so a torn file decodes to an error instead of a
// corrupt model. Load-side dispatch sniffs the first byte (wire.Sniff),
// so readers accept both formats transparently and old gob files stay
// readable forever.

// Section types of wire.KindModel payloads.
const (
	// secModelBuilder is the model-zoo builder name (UTF-8).
	secModelBuilder uint16 = 1
	// secModelGeometry is C, H, W, classes as four uvarints.
	secModelGeometry uint16 = 2
	// secModelState is the parameter/mask payload (see AppendModelState).
	secModelState uint16 = 3
)

// maxModelBytes caps how much LoadAny will buffer: generous for any model
// this repository builds (the largest is a few MiB of float64 params),
// far below anything that could balloon memory.
const maxModelBytes = 1 << 30

// EncodeVersionedModel encodes m as a wire.KindModel payload. builderName
// must identify the constructor that built m (see BuilderByName); in and
// classes must match the constructor arguments.
func EncodeVersionedModel(builderName string, in Input, classes int, m *Sequential) ([]byte, error) {
	if _, err := BuilderByName(builderName); err != nil {
		return nil, fmt.Errorf("nn: EncodeVersionedModel: %w", err)
	}
	var geo []byte
	geo = wire.AppendUint(geo, uint64(in.C))
	geo = wire.AppendUint(geo, uint64(in.H))
	geo = wire.AppendUint(geo, uint64(in.W))
	geo = wire.AppendUint(geo, uint64(classes))
	return wire.NewEncoder(wire.KindModel).
		Section(secModelBuilder, []byte(builderName)).
		Section(secModelGeometry, geo).
		Section(secModelState, AppendModelState(nil, m)).
		Bytes(), nil
}

// SaveVersioned writes the versioned encoding of m to w; the arguments
// mirror Save.
func SaveVersioned(w io.Writer, builderName string, in Input, classes int, m *Sequential) error {
	data, err := EncodeVersionedModel(builderName, in, classes, m)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("nn: SaveVersioned: %w", err)
	}
	return nil
}

// DecodeVersionedModel reconstructs a model from a wire.KindModel payload,
// with the same validation as the gob Load path: the builder must be
// registered, the geometry positive, the parameter vector and masks sized
// to the architecture. Unknown section types are skipped. It never
// panics on malformed input.
func DecodeVersionedModel(data []byte) (*Sequential, error) {
	secs, err := wire.DecodeKind(data, wire.KindModel)
	if err != nil {
		return nil, fmt.Errorf("nn: DecodeVersionedModel: %w", err)
	}
	var builderName string
	var geo, state []byte
	for _, s := range secs {
		switch s.Type {
		case secModelBuilder:
			builderName = string(s.Payload)
		case secModelGeometry:
			geo = s.Payload
		case secModelState:
			state = s.Payload
		}
	}
	if builderName == "" || geo == nil || state == nil {
		return nil, fmt.Errorf("nn: DecodeVersionedModel: missing required section (builder/geometry/state)")
	}
	build, err := BuilderByName(builderName)
	if err != nil {
		return nil, fmt.Errorf("nn: DecodeVersionedModel: %w", err)
	}
	var dims [4]uint64
	rest := geo
	for i := range dims {
		if dims[i], rest, err = wire.ReadUint(rest); err != nil {
			return nil, fmt.Errorf("nn: DecodeVersionedModel: geometry: %w", err)
		}
		if dims[i] == 0 || dims[i] > 1<<20 {
			return nil, fmt.Errorf("nn: DecodeVersionedModel: geometry value %d out of range", dims[i])
		}
	}
	in := Input{C: int(dims[0]), H: int(dims[1]), W: int(dims[2])}
	classes := int(dims[3])
	m := build(in, classes, rand.New(rand.NewSource(0)))
	if err := ApplyModelState(m, state); err != nil {
		return nil, fmt.Errorf("nn: DecodeVersionedModel: %w", err)
	}
	return m, nil
}

// LoadAny reads one model of either serialization from r: the first byte
// selects the versioned decoder or the legacy gob path (wire.Sniff). The
// read is capped, so a hostile stream cannot balloon memory.
func LoadAny(r io.Reader) (*Sequential, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("nn: LoadAny: %w", err)
	}
	if wire.Sniff(first) == wire.FormatVersioned {
		data, err := wire.ReadPayload(br, maxModelBytes)
		if err != nil {
			return nil, fmt.Errorf("nn: LoadAny: %w", err)
		}
		return DecodeVersionedModel(data)
	}
	return Load(io.LimitReader(br, maxModelBytes))
}

// AppendModelState appends m's mutable state — the flat parameter vector
// and the prune masks — to dst as an opaque payload:
//
//	uvarint nparams, nparams raw float64 LE,
//	uvarint nmasks, each: uvarint layer, uvarint units, ceil(units/8)
//	bitmap bytes (LSB first; only layers with at least one pruned unit
//	are emitted)
//
// Checkpoints embed it as a section (internal/fl); ApplyModelState is the
// inverse onto a freshly built model of the same architecture.
func AppendModelState(dst []byte, m *Sequential) []byte {
	params := m.ParamsVector()
	dst = wire.AppendUint(dst, uint64(len(params)))
	dst = wire.AppendFloat64s(dst, params)
	type layerMask struct {
		li   int
		mask []bool
	}
	var masks []layerMask
	for li, l := range m.Layers() {
		p, ok := l.(Prunable)
		if !ok {
			continue
		}
		mask := make([]bool, p.Units())
		any := false
		for u := range mask {
			mask[u] = p.UnitPruned(u)
			any = any || mask[u]
		}
		if any {
			masks = append(masks, layerMask{li, mask})
		}
	}
	dst = wire.AppendUint(dst, uint64(len(masks)))
	for _, lm := range masks {
		dst = wire.AppendUint(dst, uint64(lm.li))
		dst = wire.AppendBools(dst, lm.mask)
	}
	return dst
}

// ApplyModelState restores an AppendModelState payload onto m, which must
// be a same-architecture model without prune masks of its own (a freshly
// built or cloned template; Prunable layers cannot un-prune, so restoring
// onto an already-pruned model would union the masks). Masks install
// first, then the parameter vector — SetParamsVector re-applies the
// masks, so masked units stay zero even if the payload was edited.
func ApplyModelState(m *Sequential, p []byte) error {
	nparams, rest, err := wire.ReadUint(p)
	if err != nil {
		return fmt.Errorf("nn: ApplyModelState: %w", err)
	}
	if nparams != uint64(m.NumParams()) {
		return fmt.Errorf("nn: ApplyModelState: payload has %d params, architecture wants %d",
			nparams, m.NumParams())
	}
	if uint64(len(rest)) < 8*nparams {
		return fmt.Errorf("nn: ApplyModelState: %d param bytes, want %d", len(rest), 8*nparams)
	}
	params, err := wire.Float64s(rest[:8*nparams], int(nparams))
	if err != nil {
		return fmt.Errorf("nn: ApplyModelState: %w", err)
	}
	rest = rest[8*nparams:]
	nmasks, rest, err := wire.ReadUint(rest)
	if err != nil {
		return fmt.Errorf("nn: ApplyModelState: %w", err)
	}
	if nmasks > uint64(m.NumLayers()) {
		return fmt.Errorf("nn: ApplyModelState: %d masks for %d layers", nmasks, m.NumLayers())
	}
	for i := uint64(0); i < nmasks; i++ {
		li64, r2, err := wire.ReadUint(rest)
		if err != nil {
			return fmt.Errorf("nn: ApplyModelState: mask %d: %w", i, err)
		}
		mask, r3, err := wire.ReadBools(r2)
		if err != nil {
			return fmt.Errorf("nn: ApplyModelState: mask %d: %w", i, err)
		}
		rest = r3
		li := int(li64)
		if li64 >= uint64(m.NumLayers()) {
			return fmt.Errorf("nn: ApplyModelState: mask for layer %d of %d", li64, m.NumLayers())
		}
		pr, ok := m.Layer(li).(Prunable)
		if !ok {
			return fmt.Errorf("nn: ApplyModelState: layer %d is not prunable", li)
		}
		if len(mask) != pr.Units() {
			return fmt.Errorf("nn: ApplyModelState: mask length %d for layer %d with %d units",
				len(mask), li, pr.Units())
		}
		for u, pruned := range mask {
			if pruned {
				pr.PruneUnit(u)
			}
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("nn: ApplyModelState: %d trailing bytes", len(rest))
	}
	m.SetParamsVector(params)
	return nil
}

// EncodeModelState wraps AppendModelState in a standalone CRC-sealed
// envelope (wire.KindModelState) for on-disk phase snapshots that apply
// onto a known architecture without carrying a builder name.
func EncodeModelState(m *Sequential) []byte {
	return wire.NewEncoder(wire.KindModelState).
		Section(secModelState, AppendModelState(nil, m)).
		Bytes()
}

// DecodeModelStateInto restores an EncodeModelState payload onto m (same
// freshness contract as ApplyModelState).
func DecodeModelStateInto(m *Sequential, data []byte) error {
	secs, err := wire.DecodeKind(data, wire.KindModelState)
	if err != nil {
		return fmt.Errorf("nn: DecodeModelStateInto: %w", err)
	}
	for _, s := range secs {
		if s.Type == secModelState {
			return ApplyModelState(m, s.Payload)
		}
	}
	return fmt.Errorf("nn: DecodeModelStateInto: no model-state section")
}
