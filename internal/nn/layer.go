// Package nn is a from-scratch convolutional neural-network framework built
// for the fedcleanse reproduction. It provides the layer types the paper's
// models need (Conv2D, Dense, MaxPool2D, ReLU, Flatten), a Sequential
// container with flat-parameter-vector access for federated averaging, a
// softmax cross-entropy loss, and an SGD optimizer with momentum, weight
// decay and per-parameter L2 penalties (used by the paper's §VI-A
// last-conv-layer regularization study).
//
// Layers are stateful: Forward caches whatever Backward needs, so a layer
// instance must not be shared between concurrent goroutines. Federated
// clients therefore each work on their own Sequential clone.
//
// Two design points serve the defense in internal/core:
//
//   - Conv2D and Dense implement Prunable: output channels/units can be
//     masked out, which zeroes their parameters and pins them to zero
//     across later gradient steps (so federated fine-tuning cannot
//     resurrect a pruned "backdoor neuron").
//   - Sequential.ForwardActivations exposes every intermediate activation,
//     which the federated pruning step uses to record per-neuron average
//     activation values on client data.
package nn

import (
	"math"
	"math/rand"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Param is a single learnable parameter tensor with its gradient buffer.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
	// L2 is an extra per-parameter L2 penalty coefficient applied by SGD in
	// addition to the optimizer's global weight decay. The paper's §VI-A
	// regularization study sets this on the last convolutional layer only.
	L2 float64
	// NoDecay excludes the parameter from global weight decay (biases).
	NoDecay bool
	// Stat marks a non-learnable statistic carried inside the parameter
	// vector (batch-norm running mean/variance). The optimizer skips Stat
	// parameters entirely, but federated averaging transports them, which
	// keeps the aggregated global model's inference statistics in sync with
	// the clients that produced it.
	Stat bool
}

// newParam allocates a parameter and its zeroed gradient with the given shape.
func newParam(name string, shape ...int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(shape...),
		Grad:  tensor.New(shape...),
	}
}

// clone returns a deep copy of the parameter (value and gradient).
func (p *Param) clone() *Param {
	return &Param{
		Name:    p.Name,
		Value:   p.Value.Clone(),
		Grad:    p.Grad.Clone(),
		L2:      p.L2,
		NoDecay: p.NoDecay,
	}
}

// Layer is one differentiable stage of a feed-forward network.
type Layer interface {
	// Name identifies the layer for reports and parameter naming.
	Name() string
	// Forward computes the layer output for a batch. When train is false the
	// layer may skip caching state needed only by Backward.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient of the loss with respect to the layer
	// output and returns the gradient with respect to the layer input,
	// accumulating parameter gradients along the way. It must be called
	// after a Forward with train=true.
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's learnable parameters (possibly empty).
	Params() []*Param
	// CloneLayer returns a deep copy sharing no mutable state.
	CloneLayer() Layer
}

// Prunable is implemented by layers whose output units ("neurons" in the
// paper's terminology: convolution channels or dense units) can be pruned.
type Prunable interface {
	Layer
	// Units returns the number of output units.
	Units() int
	// PruneUnit zeroes all parameters producing unit i and masks the unit so
	// subsequent gradient steps keep it at zero. Pruning an already-pruned
	// unit is a no-op.
	PruneUnit(i int)
	// UnitPruned reports whether unit i has been pruned.
	UnitPruned(i int) bool
	// PrunedCount returns the number of pruned units.
	PrunedCount() int
	// EnforceMask re-zeroes parameters of pruned units. Training loops call
	// it after each optimizer step and after installing aggregated updates.
	EnforceMask()
	// AppendUnitState appends the parameter values producing unit i to dst
	// and returns the extended slice. Together with SetUnitState it lets a
	// guarded prune loop snapshot and revert a single unit without cloning
	// the model (Sequential.CaptureUnit / RestoreUnit).
	AppendUnitState(dst []float64, i int) []float64
	// SetUnitState installs values captured by AppendUnitState and the
	// unit's mask flag.
	SetUnitState(i int, vals []float64, pruned bool)
}

// heInit fills w with He-normal initialization for fanIn inputs, the
// standard choice for ReLU networks.
func heInit(w *tensor.Tensor, fanIn int, rng *rand.Rand) {
	std := math.Sqrt(2.0 / float64(fanIn))
	w.Randn(rng, std)
}
