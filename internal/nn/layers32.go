package nn

import (
	"fmt"
	"math"

	"github.com/fedcleanse/fedcleanse/internal/parallel"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Native float32 forward/backward paths for every shipped layer (the
// layer32 interface, see backend.go). Structure mirrors the float64
// methods line for line: same scratch-arena slots, same parallel blocking,
// same prune-mask handling. The deliberate differences:
//
//   - Weights are float32 shadows, re-narrowed from the float64
//     Param.Value at the top of each forward pass. The narrowing is O(P)
//     against the O(N·P) matmul it feeds, and it means optimizer steps,
//     FedAvg updates and prune masks (all float64 mutations) are picked up
//     with no explicit sync. A masked weight is exactly 0.0 in float64 and
//     narrows to exactly 0.0 in float32, so pruning semantics carry over
//     bit-exactly.
//   - Parameter gradients are accumulated into the float64 Param.Grad
//     (addGrad32), keeping the optimizer, aggregation and checkpoint state
//     in canonical precision.
//   - float32 activations never leave the Sequential (the boundary widens
//     them), so eval outputs always live in layer scratch — there is no
//     caller-retention hazard and no fresh-allocation eval path.
//   - BatchNorm derives its per-channel batch statistics in float64
//     accumulators (summing thousands of float32 values in float32 loses
//     digits the tolerance harness would have to absorb) and updates the
//     float64 running statistics directly.

var (
	_ layer32 = (*Dense)(nil)
	_ layer32 = (*Conv2D)(nil)
	_ layer32 = (*BatchNorm2D)(nil)
	_ layer32 = (*ReLU)(nil)
	_ layer32 = (*Flatten)(nil)
	_ layer32 = (*MaxPool2D)(nil)
)

// shadowW32/shadowB32 return the layer's float32 weight and bias, freshly
// narrowed from the float64 parameters. The buffers live in the layer's
// float32 arena under fixed slots, so Backward32 can fetch the same
// (already synced) weights without re-narrowing.
func (l *Dense) shadowW32() *tensor.T32 {
	w := l.scratch32.Get("W", l.in, l.out)
	w.From64(l.W.Value)
	return w
}

func (l *Dense) shadowB32() *tensor.T32 {
	b := l.scratch32.Get("B", l.out)
	b.From64(l.B.Value)
	return b
}

// Forward32 implements layer32 for x of shape (N, In).
func (l *Dense) Forward32(x *tensor.T32, train bool) *tensor.T32 {
	if x.Rank() != 2 || x.Dim(1) != l.in {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N %d]", l.name, x.Shape(), l.in))
	}
	n := x.Dim(0)
	w := l.shadowW32()
	b := l.shadowB32()
	var out *tensor.T32
	if train {
		l.x32 = x
		out = l.scratch32.Get("out", n, l.out)
	} else {
		l.x32 = nil
		out = l.scratch32.Get("eout", n, l.out)
	}
	tensor.MatMulInto32(out, x, w)
	for s := 0; s < n; s++ {
		row := out.Data[s*l.out : (s+1)*l.out]
		for j := range row {
			row[j] += b.Data[j]
		}
	}
	return out
}

// Backward32 implements layer32.
func (l *Dense) Backward32(dout *tensor.T32) *tensor.T32 {
	if l.x32 == nil {
		panic(fmt.Sprintf("nn: %s: Backward32 without training Forward32", l.name))
	}
	// dW = x32ᵀ · dout, accumulated into the float64 gradient.
	dW := l.scratch32.Get("dW", l.in, l.out)
	tensor.MatMulTransAInto32(dW, l.x32, dout)
	addGrad32(l.W.Grad.Data, dW.Data)
	n := dout.Dim(0)
	for s := 0; s < n; s++ {
		row := dout.Data[s*l.out : (s+1)*l.out]
		for j, v := range row {
			l.B.Grad.Data[j] += float64(v)
		}
	}
	l.maskGrads()
	// dx = dout · Wᵀ, against the shadow weights Forward32 synced.
	dx := l.scratch32.Get("dx", n, l.in)
	w := l.scratch32.Get("W", l.in, l.out)
	tensor.MatMulTransBInto32(dx, dout, w)
	return dx
}

func (l *Conv2D) shadowW32() *tensor.T32 {
	fanIn := l.dims.C * l.dims.K * l.dims.K
	w := l.scratch32.Get("W", l.filters, fanIn)
	w.From64(l.W.Value)
	return w
}

func (l *Conv2D) shadowB32() *tensor.T32 {
	b := l.scratch32.Get("B", l.filters)
	b.From64(l.B.Value)
	return b
}

// ensureCols32 mirrors ensureCols for the float32 im2col backing.
func (l *Conv2D) ensureCols32(n, fanIn, spatial int) {
	backing := l.scratch32.Get("cols", n, fanIn, spatial)
	for len(l.colsHdr32) < n {
		l.colsHdr32 = append(l.colsHdr32, nil)
	}
	per := fanIn * spatial
	for s := 0; s < n; s++ {
		if l.colsHdr32[s] == nil {
			l.colsHdr32[s] = tensor.FromSlice32(backing.Data[s*per:(s+1)*per], fanIn, spatial)
		} else if l.colsFor32 != backing {
			l.colsHdr32[s].Data = backing.Data[s*per : (s+1)*per]
		}
	}
	l.colsFor32 = backing
	l.cols32 = l.colsHdr32[:n]
}

// setInShape32 caches the input batch shape without allocating when the
// rank is unchanged.
func (l *Conv2D) setInShape32(x *tensor.T32) {
	if len(l.inShape) != x.Rank() {
		l.inShape = make([]int, x.Rank())
	}
	for i := range l.inShape {
		l.inShape[i] = x.Dim(i)
	}
}

// Forward32 implements layer32 for x of shape (N, C, H, W), with the same
// sample-parallel blocking as Forward.
func (l *Conv2D) Forward32(x *tensor.T32, train bool) *tensor.T32 {
	n := x.Dim(0)
	d := l.dims
	if x.Rank() != 4 || x.Dim(1) != d.C || x.Dim(2) != d.H || x.Dim(3) != d.W {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N %d %d %d]", l.name, x.Shape(), d.C, d.H, d.W))
	}
	outH, outW := d.OutH(), d.OutW()
	spatial := outH * outW
	fanIn := d.C * d.K * d.K
	w := l.shadowW32()
	b := l.shadowB32()
	var out *tensor.T32
	if train {
		out = l.scratch32.Get("out", n, l.filters, outH, outW)
		l.ensureCols32(n, fanIn, spatial)
		l.setInShape32(x)
	} else {
		out = l.scratch32.Get("eout", n, l.filters, outH, outW)
		l.cols32 = nil
	}
	sampleIn := d.C * d.H * d.W
	work := n * l.filters * spatial * fanIn
	if parallel.Workers() > 1 && n > 1 && work >= convParallelCutoff {
		nb := parallel.NumBlocks(n)
		for len(l.blockRes32) < nb {
			l.blockRes32 = append(l.blockRes32, nil)
			l.blockCol32 = append(l.blockCol32, nil)
		}
		parallel.ForBlocksIndexed(n, func(blk, lo, hi int) {
			res, col := l.blockScratch32(blk, fanIn, spatial)
			for s := lo; s < hi; s++ {
				l.forwardSample32(x, out, l.sampleCol32(col, s, train), res, w, b, s, sampleIn, spatial)
			}
		})
		return out
	}
	res := l.scratch32.Get("res", l.filters, spatial)
	var col *tensor.T32
	if !train {
		col = l.scratch32.Get("col", fanIn, spatial)
	}
	for s := 0; s < n; s++ {
		l.forwardSample32(x, out, l.sampleCol32(col, s, train), res, w, b, s, sampleIn, spatial)
	}
	return out
}

// blockScratch32 mirrors blockScratch for the float32 sample-parallel
// forward.
func (l *Conv2D) blockScratch32(blk, fanIn, spatial int) (res, col *tensor.T32) {
	if blk >= len(l.blockRes32) {
		return tensor.New32(l.filters, spatial), tensor.New32(fanIn, spatial)
	}
	if l.blockRes32[blk] == nil {
		l.blockRes32[blk] = tensor.New32(l.filters, spatial)
		l.blockCol32[blk] = tensor.New32(fanIn, spatial)
	}
	return l.blockRes32[blk], l.blockCol32[blk]
}

// sampleCol32 mirrors sampleCol.
func (l *Conv2D) sampleCol32(scratch *tensor.T32, s int, train bool) *tensor.T32 {
	if train {
		return l.cols32[s]
	}
	return scratch
}

// forwardSample32 convolves sample s, the float32 twin of forwardSample.
// The shadow weights w/b are read-only here, so concurrent sample blocks
// share them safely.
func (l *Conv2D) forwardSample32(x, out, col, res, w, b *tensor.T32, s, sampleIn, spatial int) {
	img := x.Data[s*sampleIn : (s+1)*sampleIn]
	tensor.Im2Col32(img, l.dims, col.Data)
	tensor.MatMulInto32(res, w, col)
	dst := out.Data[s*l.filters*spatial : (s+1)*l.filters*spatial]
	for f := 0; f < l.filters; f++ {
		bv := b.Data[f]
		row := res.Data[f*spatial : (f+1)*spatial]
		drow := dst[f*spatial : (f+1)*spatial]
		for j, v := range row {
			drow[j] = v + bv
		}
	}
}

// Backward32 implements layer32.
func (l *Conv2D) Backward32(dout *tensor.T32) *tensor.T32 {
	return l.backwardImpl32(dout, true)
}

// backwardParams32 mirrors backwardParams for the float32 backend.
func (l *Conv2D) backwardParams32(dout *tensor.T32) { l.backwardImpl32(dout, false) }

func (l *Conv2D) backwardImpl32(dout *tensor.T32, needDX bool) *tensor.T32 {
	if l.cols32 == nil {
		panic(fmt.Sprintf("nn: %s: Backward32 without training Forward32", l.name))
	}
	n := len(l.cols32)
	d := l.dims
	spatial := d.OutH() * d.OutW()
	sampleIn := d.C * d.H * d.W
	fanIn := d.C * d.K * d.K
	var dx, dcol, w *tensor.T32
	if needDX {
		dx = l.scratch32.Get("dx", l.inShape...)
		dx.Zero() // Col2Im accumulates
		dcol = l.scratch32.Get("dcol", fanIn, spatial)
		w = l.scratch32.Get("W", l.filters, fanIn) // synced by Forward32
	}
	dW := l.scratch32.Get("dW", l.filters, fanIn)
	if l.doutMat32 == nil {
		l.doutMat32 = tensor.FromSlice32(dout.Data[:l.filters*spatial], l.filters, spatial)
	}
	doutMat := l.doutMat32
	for s := 0; s < n; s++ {
		doutMat.Data = dout.Data[s*l.filters*spatial : (s+1)*l.filters*spatial]
		// dW += dout · colᵀ, accumulated into the float64 gradient.
		tensor.MatMulTransBInto32(dW, doutMat, l.cols32[s])
		addGrad32(l.W.Grad.Data, dW.Data)
		// db += row sums of dout
		for f := 0; f < l.filters; f++ {
			row := doutMat.Data[f*spatial : (f+1)*spatial]
			var s0 float32
			for _, v := range row {
				s0 += v
			}
			l.B.Grad.Data[f] += float64(s0)
		}
		if needDX {
			// dx = col2im(Wᵀ · dout)
			tensor.MatMulTransAInto32(dcol, w, doutMat)
			tensor.Col2Im32(dcol.Data, d, dx.Data[s*sampleIn:(s+1)*sampleIn])
		}
	}
	l.maskGrads()
	return dx
}

// Forward32 implements layer32 for x of shape (N, C, H, W). Per-channel
// batch statistics are accumulated in float64 (see the file comment) and
// the float64 running statistics are updated in place, so inference-time
// behaviour and checkpoint state match the canonical path up to the
// element-wise float32 rounding.
func (l *BatchNorm2D) Forward32(x *tensor.T32, train bool) *tensor.T32 {
	if x.Rank() != 4 || x.Dim(1) != l.channels {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N %d H W]", l.name, x.Shape(), l.channels))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	hw := h * w
	var out *tensor.T32
	if train {
		out = l.scratch32.GetLike("out", x)
		l.xhat32 = l.scratch32.GetLike("xhat", x)
		if len(l.invStd) != l.channels {
			l.invStd = make([]float64, l.channels)
		}
		l.n, l.hw = n, hw
		l.frozenPass = l.frozen
	} else {
		out = l.scratch32.GetLike("eout", x)
	}
	cnt := float64(n * hw)
	for c := 0; c < l.channels; c++ {
		var mean, variance float64
		if train && !l.frozen {
			sum := 0.0
			for s := 0; s < n; s++ {
				base := (s*l.channels + c) * hw
				for i := 0; i < hw; i++ {
					sum += float64(x.Data[base+i])
				}
			}
			mean = sum / cnt
			ss := 0.0
			for s := 0; s < n; s++ {
				base := (s*l.channels + c) * hw
				for i := 0; i < hw; i++ {
					d := float64(x.Data[base+i]) - mean
					ss += d * d
				}
			}
			variance = ss / cnt
			l.RunMean.Value.Data[c] = l.momentum*l.RunMean.Value.Data[c] + (1-l.momentum)*mean
			l.RunVar.Value.Data[c] = l.momentum*l.RunVar.Value.Data[c] + (1-l.momentum)*variance
		} else {
			mean, variance = l.RunMean.Value.Data[c], l.RunVar.Value.Data[c]
			if variance < 0 {
				variance = 0
			}
		}
		inv := 1 / math.Sqrt(variance+l.eps)
		mean32, inv32 := float32(mean), float32(inv)
		g, b := float32(l.Gamma.Value.Data[c]), float32(l.Beta.Value.Data[c])
		for s := 0; s < n; s++ {
			base := (s*l.channels + c) * hw
			for i := 0; i < hw; i++ {
				xh := (x.Data[base+i] - mean32) * inv32
				if train {
					l.xhat32.Data[base+i] = xh
				}
				out.Data[base+i] = g*xh + b
			}
		}
		if train {
			l.invStd[c] = inv
		}
	}
	return out
}

// Backward32 implements layer32 with the same gradient as Backward; the
// per-channel reductions accumulate in float64.
func (l *BatchNorm2D) Backward32(dout *tensor.T32) *tensor.T32 {
	if l.xhat32 == nil {
		panic(fmt.Sprintf("nn: %s: Backward32 without training Forward32", l.name))
	}
	n, hw := l.n, l.hw
	cnt := float64(n * hw)
	dx := l.scratch32.GetLike("dx", dout)
	if l.frozenPass {
		for c := 0; c < l.channels; c++ {
			g := float32(l.Gamma.Value.Data[c] * l.invStd[c])
			for s := 0; s < n; s++ {
				base := (s*l.channels + c) * hw
				for i := 0; i < hw; i++ {
					dx.Data[base+i] = dout.Data[base+i] * g
				}
			}
		}
		return dx
	}
	for c := 0; c < l.channels; c++ {
		var dg, db float64
		for s := 0; s < n; s++ {
			base := (s*l.channels + c) * hw
			for i := 0; i < hw; i++ {
				d := float64(dout.Data[base+i])
				xh := float64(l.xhat32.Data[base+i])
				dg += d * xh
				db += d
			}
		}
		l.Gamma.Grad.Data[c] += dg
		l.Beta.Grad.Data[c] += db
		g := l.Gamma.Value.Data[c]
		sumDxh := db * g
		sumDxhXh := dg * g
		inv := l.invStd[c]
		g32 := float32(g)
		scale := float32(inv / cnt)
		cnt32 := float32(cnt)
		sumDxh32, sumDxhXh32 := float32(sumDxh), float32(sumDxhXh)
		for s := 0; s < n; s++ {
			base := (s*l.channels + c) * hw
			for i := 0; i < hw; i++ {
				dxh := dout.Data[base+i] * g32
				xh := l.xhat32.Data[base+i]
				dx.Data[base+i] = scale * (cnt32*dxh - sumDxh32 - xh*sumDxhXh32)
			}
		}
	}
	l.maskGrads()
	return dx
}

// Forward32 implements layer32. The positive-mask cache is shared with the
// float64 path (only one precision is active per model). Branch-free form
// for the same reason as the float64 Forward: an if/else select costs a
// mispredicting data-dependent branch per element.
func (l *ReLU) Forward32(x *tensor.T32, train bool) *tensor.T32 {
	if !train {
		out := l.scratch32.GetLike("eout", x)
		for i, v := range x.Data {
			out.Data[i] = max(v, 0)
		}
		l.mask = nil
		return out
	}
	out := l.scratch32.GetLike("out", x)
	if cap(l.mask) < len(out.Data) {
		l.mask = make([]bool, len(out.Data))
	}
	l.mask = l.mask[:len(out.Data)]
	for i, v := range x.Data {
		out.Data[i] = max(v, 0)
		l.mask[i] = v > 0
	}
	return out
}

// Backward32 implements layer32, gating dout by the sign of the cached
// training output exactly as the float64 Backward does (branch-free; the
// bool mask stays the trained-state marker).
func (l *ReLU) Backward32(dout *tensor.T32) *tensor.T32 {
	if l.mask == nil {
		panic(fmt.Sprintf("nn: %s: Backward32 without training Forward32", l.name))
	}
	out := l.scratch32.GetLike("out", dout)
	dx := l.scratch32.GetLike("dx", dout)
	for i, v := range dout.Data {
		ob := math.Float32bits(out.Data[i])
		keep := uint32(int32(ob|-ob) >> 31)
		dx.Data[i] = math.Float32frombits(math.Float32bits(v) & keep)
	}
	return dx
}

// flattenHdrs32 is the float32 twin of flattenHdrs.
type flattenHdrs32 struct {
	out, dx, eout *tensor.T32
}

// headers32 mirrors headers for the float32 path.
func (l *Flatten) headers32(n int) *flattenHdrs32 {
	if h, ok := l.hdrs32[n]; ok {
		return h
	}
	if l.hdrs32 == nil {
		l.hdrs32 = make(map[int]*flattenHdrs32)
	}
	h := &flattenHdrs32{}
	l.hdrs32[n] = h
	return h
}

// Forward32 implements layer32. Unlike the float64 eval path, the reshape
// header is always persistent: float32 activations never escape the
// Sequential, so there is no retention hazard to guard against.
func (l *Flatten) Forward32(x *tensor.T32, train bool) *tensor.T32 {
	n := x.Dim(0)
	d := x.Len() / n
	h := l.headers32(n)
	if !train {
		if h.eout == nil || h.eout.Dim(1) != d {
			h.eout = x.Reshape(n, d)
		} else {
			h.eout.Data = x.Data
		}
		return h.eout
	}
	if len(l.inShape) != x.Rank() {
		l.inShape = make([]int, x.Rank())
	}
	for i := range l.inShape {
		l.inShape[i] = x.Dim(i)
	}
	if h.out == nil || h.out.Dim(1) != d {
		h.out = x.Reshape(n, d)
	} else {
		h.out.Data = x.Data
	}
	return h.out
}

// Backward32 implements layer32.
func (l *Flatten) Backward32(dout *tensor.T32) *tensor.T32 {
	if l.inShape == nil {
		panic(fmt.Sprintf("nn: %s: Backward32 without training Forward32", l.name))
	}
	h := l.headers32(l.inShape[0])
	if h.dx == nil || !sameShape32(h.dx, l.inShape) {
		h.dx = dout.Reshape(l.inShape...)
	} else {
		h.dx.Data = dout.Data
	}
	return h.dx
}

// sameShape32 reports whether t's shape equals shape.
func sameShape32(t *tensor.T32, shape []int) bool {
	if t.Rank() != len(shape) {
		return false
	}
	for i, d := range shape {
		if t.Dim(i) != d {
			return false
		}
	}
	return true
}

// Forward32 implements layer32 for x of shape (N, C, H, W); the argmax
// cache is shared with the float64 path.
func (l *MaxPool2D) Forward32(x *tensor.T32, train bool) *tensor.T32 {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s: input rank %d, want 4", l.name, x.Rank()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outH := (h-l.size)/l.stride + 1
	outW := (w-l.size)/l.stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: %s: window %d too large for %d×%d input", l.name, l.size, h, w))
	}
	var out *tensor.T32
	if train {
		out = l.scratch32.Get("out", n, c, outH, outW)
		if len(l.inShape) != 4 {
			l.inShape = make([]int, 4)
		}
		l.inShape[0], l.inShape[1], l.inShape[2], l.inShape[3] = n, c, h, w
		if cap(l.argmax) < out.Len() {
			l.argmax = make([]int, out.Len())
		}
		l.argmax = l.argmax[:out.Len()]
	} else {
		out = l.scratch32.Get("eout", n, c, outH, outW)
		l.argmax = nil
	}
	if l.size == 2 && l.stride == 2 {
		pool2x2(x.Data, out.Data, l.argmax, n*c, h, w, outH, outW)
		return out
	}
	poolWindow(x.Data, out.Data, l.argmax, n*c, h, w, outH, outW, l.size, l.stride)
	return out
}

// Backward32 implements layer32.
func (l *MaxPool2D) Backward32(dout *tensor.T32) *tensor.T32 {
	if l.argmax == nil {
		panic(fmt.Sprintf("nn: %s: Backward32 without training Forward32", l.name))
	}
	dx := l.scratch32.Get("dx", l.inShape...)
	dx.Zero()
	for oi, v := range dout.Data {
		dx.Data[l.argmax[oi]] += v
	}
	return dx
}
