package nn

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/parallel"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Model-level micro-benchmarks: per-batch forward and forward+backward
// cost of each architecture in the zoo, the unit cost every federated
// round multiplies.

func benchForward(b *testing.B, build ModelBuilder, in Input) {
	rng := rand.New(rand.NewSource(1))
	m := build(in, 10, rng)
	x := tensor.New(20, in.C, in.H, in.W)
	x.Randn(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, false)
	}
}

func benchTrainStep(b *testing.B, build ModelBuilder, in Input) {
	rng := rand.New(rand.NewSource(2))
	m := build(in, 10, rng)
	opt := NewSGD(0.05, 0.9, 1e-4)
	x := tensor.New(20, in.C, in.H, in.W)
	x.Randn(rng, 1)
	labels := make([]int, 20)
	for i := range labels {
		labels[i] = i % 10
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		_, d := SoftmaxXent(logits, labels)
		m.BackwardParams(d)
		opt.Step(m)
	}
}

// BenchmarkTrainStep is the headline hot-path benchmark: one full SGD step
// (forward + backward + update) on SmallCNN with a batch of 32, the unit of
// work every federated round multiplies. allocs/op here is the number the
// allocation-free training work is gated on.
func BenchmarkTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := NewSmallCNN(in1, 10, rng)
	opt := NewSGD(0.05, 0.9, 1e-4)
	x := tensor.New(32, in1.C, in1.H, in1.W)
	x.Randn(rng, 1)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = i % 10
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		_, d := SoftmaxXent(logits, labels)
		m.BackwardParams(d)
		opt.Step(m)
	}
}

// BenchmarkConv2DForward isolates a single convolution layer's training
// forward pass (batch 32), the dominant kernel of the train step.
func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	dims := tensor.ConvDims{C: 8, H: 16, W: 16, K: 3, Stride: 1, Pad: 1}
	l := NewConv2D("conv", dims, 16, rng)
	x := tensor.New(32, dims.C, dims.H, dims.W)
	x.Randn(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x, true)
	}
}

// BenchmarkConv2DBackward isolates the convolution backward pass (batch 32).
func BenchmarkConv2DBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	dims := tensor.ConvDims{C: 8, H: 16, W: 16, K: 3, Stride: 1, Pad: 1}
	l := NewConv2D("conv", dims, 16, rng)
	x := tensor.New(32, dims.C, dims.H, dims.W)
	x.Randn(rng, 1)
	out := l.Forward(x, true)
	dout := tensor.New(out.Shape()...)
	dout.Randn(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Backward(dout)
	}
}

var (
	in1 = Input{C: 1, H: 16, W: 16}
	in3 = Input{C: 3, H: 16, W: 16}
)

// benchForwardBatch measures a large-batch inference pass with the worker
// count pinned (0 = automatic), the serial-vs-parallel comparison for the
// sample-parallel conv forward.
func benchForwardBatch(b *testing.B, workers int) {
	prev := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	rng := rand.New(rand.NewSource(3))
	m := NewSmallCNN(in1, 10, rng)
	x := tensor.New(64, in1.C, in1.H, in1.W)
	x.Randn(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, false)
	}
}

func BenchmarkSmallCNNForwardBatch64Serial(b *testing.B)   { benchForwardBatch(b, 1) }
func BenchmarkSmallCNNForwardBatch64Parallel(b *testing.B) { benchForwardBatch(b, 0) }

func BenchmarkSmallCNNForward(b *testing.B)   { benchForward(b, NewSmallCNN, in1) }
func BenchmarkSmallCNNTrainStep(b *testing.B) { benchTrainStep(b, NewSmallCNN, in1) }
func BenchmarkLargeCNNTrainStep(b *testing.B) { benchTrainStep(b, NewLargeCNN, in1) }
func BenchmarkFashionCNNTrainStep(b *testing.B) {
	benchTrainStep(b, NewFashionCNN, in1)
}
func BenchmarkMiniVGGForward(b *testing.B)   { benchForward(b, NewMiniVGG, in3) }
func BenchmarkMiniVGGTrainStep(b *testing.B) { benchTrainStep(b, NewMiniVGG, in3) }
