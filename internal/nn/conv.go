package nn

import (
	"fmt"
	"math/rand"

	"github.com/fedcleanse/fedcleanse/internal/parallel"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Conv2D is a 2-D convolution layer over NCHW batches, implemented with
// im2col + matrix multiplication. Each output channel is one "neuron" in
// the paper's pruning terminology.
type Conv2D struct {
	name    string
	dims    tensor.ConvDims
	filters int

	// W has shape (filters, C·K·K); B has shape (filters).
	W, B *Param

	// pruned[i] marks output channel i as removed. The channel's weights and
	// bias are held at zero by EnforceMask.
	pruned []bool

	// evalReuse routes inference outputs through the scratch arena instead
	// of fresh allocations (Sequential.SetEvalReuse; scoped to the cached
	// evaluators' suffix passes, where outputs are consumed per batch).
	evalReuse bool

	// cols views the im2col matrices of the last training forward pass, one
	// header per batch sample into the shared colsData backing; inShape
	// caches the input batch shape. cols is nil after an inference pass.
	cols     []*tensor.Tensor
	colsData *tensor.Tensor
	// colsHdr holds the persistent per-sample headers cols views into, and
	// colsFor records which backing they currently point at, so a steady
	// batch size re-points nothing and allocates nothing.
	colsHdr []*tensor.Tensor
	colsFor *tensor.Tensor
	inShape []int

	// scratch holds the single-goroutine reusable buffers of the layer
	// (train-mode output, backward scratch, serial-path matmul results);
	// blockRes/blockCol are the per-block equivalents for the sample-
	// parallel forward, indexed by deterministic block id so concurrent
	// blocks never share a buffer. None of this state is cloned or
	// serialized — see DESIGN.md §8.
	scratch  tensor.Arena
	blockRes []*tensor.Tensor
	blockCol []*tensor.Tensor
	doutMat  *tensor.Tensor

	// Float32-backend equivalents of the caches above (layers32.go): the
	// per-sample im2col views, per-block forward scratch, backward dout
	// header and the arena holding the float32 shadow weights.
	cols32     []*tensor.T32
	colsHdr32  []*tensor.T32
	colsFor32  *tensor.T32
	scratch32  tensor.Arena32
	blockRes32 []*tensor.T32
	blockCol32 []*tensor.T32
	doutMat32  *tensor.T32
}

var _ Prunable = (*Conv2D)(nil)

// NewConv2D builds a convolution layer with the given geometry and
// He-normal initialization.
func NewConv2D(name string, dims tensor.ConvDims, filters int, rng *rand.Rand) *Conv2D {
	if err := dims.Validate(); err != nil {
		panic(fmt.Sprintf("nn: %s: %v", name, err))
	}
	if filters <= 0 {
		panic(fmt.Sprintf("nn: %s: non-positive filter count %d", name, filters))
	}
	fanIn := dims.C * dims.K * dims.K
	l := &Conv2D{
		name:    name,
		dims:    dims,
		filters: filters,
		W:       newParam(name+".W", filters, fanIn),
		B:       newParam(name+".B", filters),
		pruned:  make([]bool, filters),
	}
	l.B.NoDecay = true
	heInit(l.W.Value, fanIn, rng)
	return l
}

// Name implements Layer.
func (l *Conv2D) Name() string { return l.name }

// Dims returns the convolution geometry.
func (l *Conv2D) Dims() tensor.ConvDims { return l.dims }

// Filters returns the number of output channels.
func (l *Conv2D) Filters() int { return l.filters }

// OutShape returns the per-sample output shape (F, OutH, OutW).
func (l *Conv2D) OutShape() []int {
	return []int{l.filters, l.dims.OutH(), l.dims.OutW()}
}

// SetL2 sets an extra L2 penalty on the layer's weights (not bias), used by
// the last-conv-layer regularization experiment (paper Fig. 10).
func (l *Conv2D) SetL2(lambda float64) { l.W.L2 = lambda }

// ensureCols points l.cols at n per-sample (fanIn×spatial) views of a
// shared backing tensor sized for the batch. The backing comes from the
// shape-keyed arena, so alternating full and tail batch sizes reuse two
// persistent buffers instead of reallocating; headers are re-pointed only
// when the backing actually changes.
func (l *Conv2D) ensureCols(n, fanIn, spatial int) {
	backing := l.scratch.Get("cols", n, fanIn, spatial)
	for len(l.colsHdr) < n {
		l.colsHdr = append(l.colsHdr, nil)
	}
	per := fanIn * spatial
	for s := 0; s < n; s++ {
		if l.colsHdr[s] == nil {
			l.colsHdr[s] = tensor.FromSlice(backing.Data[s*per:(s+1)*per], fanIn, spatial)
		} else if l.colsFor != backing {
			l.colsHdr[s].Data = backing.Data[s*per : (s+1)*per]
		}
	}
	l.colsFor = backing
	l.colsData = backing
	l.cols = l.colsHdr[:n]
}

// setInShape caches the input batch shape without allocating when the rank
// is unchanged.
func (l *Conv2D) setInShape(x *tensor.Tensor) {
	if len(l.inShape) != x.Rank() {
		l.inShape = make([]int, x.Rank())
	}
	for i := range l.inShape {
		l.inShape[i] = x.Dim(i)
	}
}

// Forward implements Layer for x of shape (N, C, H, W).
func (l *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	d := l.dims
	if x.Rank() != 4 || x.Dim(1) != d.C || x.Dim(2) != d.H || x.Dim(3) != d.W {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N %d %d %d]", l.name, x.Shape(), d.C, d.H, d.W))
	}
	outH, outW := d.OutH(), d.OutW()
	spatial := outH * outW
	fanIn := d.C * d.K * d.K
	// The training output buffer is reused across steps; inference passes
	// allocate fresh because callers (activation recording, evaluation)
	// may retain the result across forward calls — unless eval reuse is on,
	// in which case the output lives in its own arena slot ("eout", never
	// shared with the training path) and is overwritten by the next pass.
	var out *tensor.Tensor
	if train {
		out = l.scratch.Get("out", n, l.filters, outH, outW)
		l.ensureCols(n, fanIn, spatial)
		l.setInShape(x)
	} else {
		if l.evalReuse {
			out = l.scratch.Get("eout", n, l.filters, outH, outW)
		} else {
			out = tensor.New(n, l.filters, outH, outW)
		}
		l.cols = nil
	}
	sampleIn := d.C * d.H * d.W
	// Every sample is an independent im2col + matmul writing a disjoint
	// slice of out (and its own cols view), so the batch splits across
	// workers with bit-identical results; each block owns a persistent
	// scratch pair keyed by its deterministic block index. Small batches
	// stay serial — the per-goroutine cost would exceed the convolution
	// itself.
	work := n * l.filters * spatial * fanIn
	if parallel.Workers() > 1 && n > 1 && work >= convParallelCutoff {
		nb := parallel.NumBlocks(n)
		for len(l.blockRes) < nb {
			l.blockRes = append(l.blockRes, nil)
			l.blockCol = append(l.blockCol, nil)
		}
		parallel.ForBlocksIndexed(n, func(blk, lo, hi int) {
			res, col := l.blockScratch(blk, fanIn, spatial)
			for s := lo; s < hi; s++ {
				l.forwardSample(x, out, l.sampleCol(col, s, train), res, s, sampleIn, spatial, train)
			}
		})
		return out
	}
	res := l.scratch.Get("res", l.filters, spatial)
	var col *tensor.Tensor
	if !train {
		col = l.scratch.Get("col", fanIn, spatial)
	}
	for s := 0; s < n; s++ {
		l.forwardSample(x, out, l.sampleCol(col, s, train), res, s, sampleIn, spatial, train)
	}
	return out
}

// blockScratch returns the persistent matmul-result and im2col scratch of
// block blk, growing lazily. Distinct blocks index distinct slice elements,
// so concurrent blocks never share a buffer; a worker count raised between
// forwards falls back to a private pair rather than racing.
func (l *Conv2D) blockScratch(blk, fanIn, spatial int) (res, col *tensor.Tensor) {
	if blk >= len(l.blockRes) {
		return tensor.New(l.filters, spatial), tensor.New(fanIn, spatial)
	}
	if l.blockRes[blk] == nil {
		l.blockRes[blk] = tensor.New(l.filters, spatial)
		l.blockCol[blk] = tensor.New(fanIn, spatial)
	}
	return l.blockRes[blk], l.blockCol[blk]
}

// sampleCol selects the im2col destination for sample s: the persistent
// per-sample view of the cols backing when training (Backward reads it),
// the caller's scratch when not.
func (l *Conv2D) sampleCol(scratch *tensor.Tensor, s int, train bool) *tensor.Tensor {
	if train {
		return l.cols[s]
	}
	return scratch
}

// convParallelCutoff is the minimum multiply-add count of a batched conv
// forward (N·F·OutH·OutW·C·K·K) at which the batch splits across workers.
const convParallelCutoff = 1 << 17

// forwardSample convolves sample s of batch x into out, unrolling the
// sample into col (the persistent cols view when training) and using res as
// matmul scratch. It touches only sample-s slices of out and l.cols, so
// distinct samples may run concurrently.
func (l *Conv2D) forwardSample(x, out, col, res *tensor.Tensor, s, sampleIn, spatial int, train bool) {
	img := x.Data[s*sampleIn : (s+1)*sampleIn]
	tensor.Im2Col(img, l.dims, col.Data)
	tensor.MatMulInto(res, l.W.Value, col)
	dst := out.Data[s*l.filters*spatial : (s+1)*l.filters*spatial]
	for f := 0; f < l.filters; f++ {
		b := l.B.Value.Data[f]
		row := res.Data[f*spatial : (f+1)*spatial]
		drow := dst[f*spatial : (f+1)*spatial]
		for j, v := range row {
			drow[j] = v + b
		}
	}
}

// Backward implements Layer. All per-sample temporaries (the dout view, the
// dW and dcol scratch) and the returned dx live in reusable buffers, so a
// warm step allocates nothing.
func (l *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return l.backwardImpl(dout, true)
}

// backwardParams is Backward without materializing dx: the parameter
// gradients are identical, but the Wᵀ·dout products and the Col2Im
// scatter — about a third of the layer's backward arithmetic — are
// skipped. Sequential.BackwardParams uses it for the network's first
// layer, whose input gradient nothing consumes.
func (l *Conv2D) backwardParams(dout *tensor.Tensor) { l.backwardImpl(dout, false) }

func (l *Conv2D) backwardImpl(dout *tensor.Tensor, needDX bool) *tensor.Tensor {
	if l.cols == nil {
		panic(fmt.Sprintf("nn: %s: Backward without training Forward", l.name))
	}
	n := len(l.cols)
	d := l.dims
	spatial := d.OutH() * d.OutW()
	sampleIn := d.C * d.H * d.W
	fanIn := d.C * d.K * d.K
	var dx, dcol *tensor.Tensor
	if needDX {
		dx = l.scratch.Get("dx", l.inShape...)
		dx.Zero() // Col2Im accumulates
		dcol = l.scratch.Get("dcol", fanIn, spatial)
	}
	dW := l.scratch.Get("dW", l.filters, fanIn)
	if l.doutMat == nil {
		l.doutMat = tensor.FromSlice(dout.Data[:l.filters*spatial], l.filters, spatial)
	}
	doutMat := l.doutMat
	for s := 0; s < n; s++ {
		doutMat.Data = dout.Data[s*l.filters*spatial : (s+1)*l.filters*spatial]
		// dW += dout · colᵀ
		tensor.MatMulTransBInto(dW, doutMat, l.cols[s])
		l.W.Grad.Add(dW)
		// db += row sums of dout
		for f := 0; f < l.filters; f++ {
			row := doutMat.Data[f*spatial : (f+1)*spatial]
			s0 := 0.0
			for _, v := range row {
				s0 += v
			}
			l.B.Grad.Data[f] += s0
		}
		if needDX {
			// dx = col2im(Wᵀ · dout)
			tensor.MatMulTransAInto(dcol, l.W.Value, doutMat)
			tensor.Col2Im(dcol.Data, d, dx.Data[s*sampleIn:(s+1)*sampleIn])
		}
	}
	// Gradients of pruned channels are discarded so masked units stay dead.
	l.maskGrads()
	return dx
}

// Params implements Layer.
func (l *Conv2D) Params() []*Param { return []*Param{l.W, l.B} }

// CloneLayer implements Layer. Scratch buffers are deliberately not copied:
// the clone warms up its own.
func (l *Conv2D) CloneLayer() Layer {
	c := &Conv2D{
		name:    l.name,
		dims:    l.dims,
		filters: l.filters,
		W:       l.W.clone(),
		B:       l.B.clone(),
		pruned:  append([]bool(nil), l.pruned...),
	}
	return c
}

// Units implements Prunable: one unit per output channel.
func (l *Conv2D) Units() int { return l.filters }

// PruneUnit implements Prunable.
func (l *Conv2D) PruneUnit(i int) {
	if i < 0 || i >= l.filters {
		panic(fmt.Sprintf("nn: %s: PruneUnit(%d) out of range [0,%d)", l.name, i, l.filters))
	}
	l.pruned[i] = true
	l.EnforceMask()
}

// UnitPruned implements Prunable.
func (l *Conv2D) UnitPruned(i int) bool { return l.pruned[i] }

// PrunedCount implements Prunable.
func (l *Conv2D) PrunedCount() int {
	n := 0
	for _, p := range l.pruned {
		if p {
			n++
		}
	}
	return n
}

// EnforceMask implements Prunable.
func (l *Conv2D) EnforceMask() {
	fanIn := l.W.Value.Dim(1)
	for f, p := range l.pruned {
		if !p {
			continue
		}
		row := l.W.Value.Data[f*fanIn : (f+1)*fanIn]
		for j := range row {
			row[j] = 0
		}
		l.B.Value.Data[f] = 0
	}
}

// AppendUnitState implements Prunable: the channel's weight row and bias.
func (l *Conv2D) AppendUnitState(dst []float64, i int) []float64 {
	fanIn := l.W.Value.Dim(1)
	dst = append(dst, l.W.Value.Data[i*fanIn:(i+1)*fanIn]...)
	return append(dst, l.B.Value.Data[i])
}

// SetUnitState implements Prunable.
func (l *Conv2D) SetUnitState(i int, vals []float64, pruned bool) {
	fanIn := l.W.Value.Dim(1)
	if len(vals) != fanIn+1 {
		panic(fmt.Sprintf("nn: %s: unit state length %d, want %d", l.name, len(vals), fanIn+1))
	}
	copy(l.W.Value.Data[i*fanIn:(i+1)*fanIn], vals[:fanIn])
	l.B.Value.Data[i] = vals[fanIn]
	l.pruned[i] = pruned
}

// setEvalReuse implements evalReuser.
func (l *Conv2D) setEvalReuse(on bool) { l.evalReuse = on }

// maskGrads zeroes gradients flowing into pruned channels.
func (l *Conv2D) maskGrads() {
	fanIn := l.W.Value.Dim(1)
	for f, p := range l.pruned {
		if !p {
			continue
		}
		row := l.W.Grad.Data[f*fanIn : (f+1)*fanIn]
		for j := range row {
			row[j] = 0
		}
		l.B.Grad.Data[f] = 0
	}
}
