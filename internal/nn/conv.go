package nn

import (
	"fmt"
	"math/rand"

	"github.com/fedcleanse/fedcleanse/internal/parallel"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Conv2D is a 2-D convolution layer over NCHW batches, implemented with
// im2col + matrix multiplication. Each output channel is one "neuron" in
// the paper's pruning terminology.
type Conv2D struct {
	name    string
	dims    tensor.ConvDims
	filters int

	// W has shape (filters, C·K·K); B has shape (filters).
	W, B *Param

	// pruned[i] marks output channel i as removed. The channel's weights and
	// bias are held at zero by EnforceMask.
	pruned []bool

	// cols caches the im2col matrices of the last training forward pass,
	// one per batch sample; inShape caches the input batch shape.
	cols    []*tensor.Tensor
	inShape []int
}

var _ Prunable = (*Conv2D)(nil)

// NewConv2D builds a convolution layer with the given geometry and
// He-normal initialization.
func NewConv2D(name string, dims tensor.ConvDims, filters int, rng *rand.Rand) *Conv2D {
	if err := dims.Validate(); err != nil {
		panic(fmt.Sprintf("nn: %s: %v", name, err))
	}
	if filters <= 0 {
		panic(fmt.Sprintf("nn: %s: non-positive filter count %d", name, filters))
	}
	fanIn := dims.C * dims.K * dims.K
	l := &Conv2D{
		name:    name,
		dims:    dims,
		filters: filters,
		W:       newParam(name+".W", filters, fanIn),
		B:       newParam(name+".B", filters),
		pruned:  make([]bool, filters),
	}
	l.B.NoDecay = true
	heInit(l.W.Value, fanIn, rng)
	return l
}

// Name implements Layer.
func (l *Conv2D) Name() string { return l.name }

// Dims returns the convolution geometry.
func (l *Conv2D) Dims() tensor.ConvDims { return l.dims }

// Filters returns the number of output channels.
func (l *Conv2D) Filters() int { return l.filters }

// OutShape returns the per-sample output shape (F, OutH, OutW).
func (l *Conv2D) OutShape() []int {
	return []int{l.filters, l.dims.OutH(), l.dims.OutW()}
}

// SetL2 sets an extra L2 penalty on the layer's weights (not bias), used by
// the last-conv-layer regularization experiment (paper Fig. 10).
func (l *Conv2D) SetL2(lambda float64) { l.W.L2 = lambda }

// Forward implements Layer for x of shape (N, C, H, W).
func (l *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	d := l.dims
	if x.Rank() != 4 || x.Dim(1) != d.C || x.Dim(2) != d.H || x.Dim(3) != d.W {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N %d %d %d]", l.name, x.Shape(), d.C, d.H, d.W))
	}
	outH, outW := d.OutH(), d.OutW()
	spatial := outH * outW
	fanIn := d.C * d.K * d.K
	out := tensor.New(n, l.filters, outH, outW)
	if train {
		l.cols = make([]*tensor.Tensor, n)
		l.inShape = x.Shape()
	} else {
		l.cols = nil
	}
	sampleIn := d.C * d.H * d.W
	// Every sample is an independent im2col + matmul writing a disjoint
	// slice of out (and its own l.cols entry), so the batch splits across
	// workers with bit-identical results; each block reuses one scratch
	// pair. Small batches stay serial — the per-goroutine cost would exceed
	// the convolution itself.
	work := n * l.filters * spatial * fanIn
	if parallel.Workers() > 1 && n > 1 && work >= convParallelCutoff {
		parallel.ForBlocks(n, func(lo, hi int) {
			col := tensor.New(fanIn, spatial)
			res := tensor.New(l.filters, spatial)
			for s := lo; s < hi; s++ {
				l.forwardSample(x, out, col, res, s, sampleIn, spatial, train)
			}
		})
		return out
	}
	col := tensor.New(fanIn, spatial)
	res := tensor.New(l.filters, spatial)
	for s := 0; s < n; s++ {
		l.forwardSample(x, out, col, res, s, sampleIn, spatial, train)
	}
	return out
}

// convParallelCutoff is the minimum multiply-add count of a batched conv
// forward (N·F·OutH·OutW·C·K·K) at which the batch splits across workers.
const convParallelCutoff = 1 << 17

// forwardSample convolves sample s of batch x into out, using col/res as
// scratch. It touches only sample-s slices of out and l.cols, so distinct
// samples may run concurrently.
func (l *Conv2D) forwardSample(x, out, col, res *tensor.Tensor, s, sampleIn, spatial int, train bool) {
	img := x.Data[s*sampleIn : (s+1)*sampleIn]
	tensor.Im2Col(img, l.dims, col.Data)
	tensor.MatMulInto(res, l.W.Value, col)
	dst := out.Data[s*l.filters*spatial : (s+1)*l.filters*spatial]
	for f := 0; f < l.filters; f++ {
		b := l.B.Value.Data[f]
		row := res.Data[f*spatial : (f+1)*spatial]
		drow := dst[f*spatial : (f+1)*spatial]
		for j, v := range row {
			drow[j] = v + b
		}
	}
	if train {
		l.cols[s] = col.Clone()
	}
}

// Backward implements Layer.
func (l *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if l.cols == nil {
		panic(fmt.Sprintf("nn: %s: Backward without training Forward", l.name))
	}
	n := len(l.cols)
	d := l.dims
	spatial := d.OutH() * d.OutW()
	sampleIn := d.C * d.H * d.W
	dx := tensor.New(l.inShape...)
	for s := 0; s < n; s++ {
		doutMat := tensor.FromSlice(
			dout.Data[s*l.filters*spatial:(s+1)*l.filters*spatial],
			l.filters, spatial,
		)
		// dW += dout · colᵀ
		dW := tensor.MatMulTransB(doutMat, l.cols[s])
		l.W.Grad.Add(dW)
		// db += row sums of dout
		for f := 0; f < l.filters; f++ {
			row := doutMat.Data[f*spatial : (f+1)*spatial]
			s0 := 0.0
			for _, v := range row {
				s0 += v
			}
			l.B.Grad.Data[f] += s0
		}
		// dx = col2im(Wᵀ · dout)
		dcol := tensor.MatMulTransA(l.W.Value, doutMat)
		tensor.Col2Im(dcol.Data, d, dx.Data[s*sampleIn:(s+1)*sampleIn])
	}
	// Gradients of pruned channels are discarded so masked units stay dead.
	l.maskGrads()
	return dx
}

// Params implements Layer.
func (l *Conv2D) Params() []*Param { return []*Param{l.W, l.B} }

// CloneLayer implements Layer.
func (l *Conv2D) CloneLayer() Layer {
	c := &Conv2D{
		name:    l.name,
		dims:    l.dims,
		filters: l.filters,
		W:       l.W.clone(),
		B:       l.B.clone(),
		pruned:  append([]bool(nil), l.pruned...),
	}
	return c
}

// Units implements Prunable: one unit per output channel.
func (l *Conv2D) Units() int { return l.filters }

// PruneUnit implements Prunable.
func (l *Conv2D) PruneUnit(i int) {
	if i < 0 || i >= l.filters {
		panic(fmt.Sprintf("nn: %s: PruneUnit(%d) out of range [0,%d)", l.name, i, l.filters))
	}
	l.pruned[i] = true
	l.EnforceMask()
}

// UnitPruned implements Prunable.
func (l *Conv2D) UnitPruned(i int) bool { return l.pruned[i] }

// PrunedCount implements Prunable.
func (l *Conv2D) PrunedCount() int {
	n := 0
	for _, p := range l.pruned {
		if p {
			n++
		}
	}
	return n
}

// EnforceMask implements Prunable.
func (l *Conv2D) EnforceMask() {
	fanIn := l.W.Value.Dim(1)
	for f, p := range l.pruned {
		if !p {
			continue
		}
		row := l.W.Value.Data[f*fanIn : (f+1)*fanIn]
		for j := range row {
			row[j] = 0
		}
		l.B.Value.Data[f] = 0
	}
}

// maskGrads zeroes gradients flowing into pruned channels.
func (l *Conv2D) maskGrads() {
	fanIn := l.W.Value.Dim(1)
	for f, p := range l.pruned {
		if !p {
			continue
		}
		row := l.W.Grad.Data[f*fanIn : (f+1)*fanIn]
		for j := range row {
			row[j] = 0
		}
		l.B.Grad.Data[f] = 0
	}
}
