package nn

import (
	"fmt"
	"math"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW batch to zero mean and
// unit variance, then applies a learnable per-channel affine transform.
// Running statistics collected during training are used at inference time.
//
// BatchNorm2D implements Prunable: pruning channel c zeroes its affine
// parameters (gamma and beta), guaranteeing the normalized output of a
// pruned upstream convolution channel stays exactly zero instead of being
// re-inflated by normalization. Sequential.PruneModelUnit relies on this.
type BatchNorm2D struct {
	name     string
	channels int
	momentum float64
	eps      float64

	// Gamma (scale) and Beta (shift), one per channel.
	Gamma, Beta *Param
	// RunMean and RunVar are the running statistics for inference, carried
	// as Stat parameters so federated averaging keeps the global model's
	// inference statistics consistent with its aggregated weights.
	RunMean, RunVar *Param

	pruned []bool

	// evalReuse routes inference outputs through the scratch arena
	// (Sequential.SetEvalReuse).
	evalReuse bool

	// frozen makes training-mode forward/backward use the running
	// statistics as constants: no batch statistics, no stat updates, and a
	// simplified backward. Trigger reverse-engineering (Neural Cleanse)
	// differentiates through a frozen model.
	frozen bool

	// Caches from the last training forward pass. invStd, n and hw are
	// shared with the float32 path (the float32 forward also derives its
	// per-channel statistics in float64, see layers32.go).
	xhat       *tensor.Tensor
	invStd     []float64
	n          int // batch size of cached pass
	hw         int // spatial size of cached pass
	frozenPass bool

	// scratch holds the reusable train-mode output, xhat cache and
	// backward dx buffers. Not cloned or serialized.
	scratch tensor.Arena

	// xhat32/scratch32 are the float32-backend equivalents (layers32.go).
	xhat32    *tensor.T32
	scratch32 tensor.Arena32
}

var _ Prunable = (*BatchNorm2D)(nil)

// NewBatchNorm2D builds a batch-normalization layer for the given channel
// count with momentum 0.9 for the running statistics.
func NewBatchNorm2D(name string, channels int) *BatchNorm2D {
	if channels <= 0 {
		panic(fmt.Sprintf("nn: %s: non-positive channel count %d", name, channels))
	}
	l := &BatchNorm2D{
		name:     name,
		channels: channels,
		momentum: 0.9,
		eps:      1e-5,
		Gamma:    newParam(name+".gamma", channels),
		Beta:     newParam(name+".beta", channels),
		RunMean:  newParam(name+".runmean", channels),
		RunVar:   newParam(name+".runvar", channels),
		pruned:   make([]bool, channels),
	}
	l.Gamma.Value.Fill(1)
	l.Gamma.NoDecay = true
	l.Beta.NoDecay = true
	l.RunMean.NoDecay, l.RunMean.Stat = true, true
	l.RunVar.NoDecay, l.RunVar.Stat = true, true
	l.RunVar.Value.Fill(1)
	return l
}

// Name implements Layer.
func (l *BatchNorm2D) Name() string { return l.name }

// Freeze pins the layer to its running statistics: training-mode passes
// stop computing batch statistics and stop updating the running ones, and
// Backward treats the statistics as constants.
func (l *BatchNorm2D) Freeze() { l.frozen = true }

// Forward implements Layer for x of shape (N, C, H, W).
func (l *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != l.channels {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N %d H W]", l.name, x.Shape(), l.channels))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	hw := h * w
	// The training output and xhat cache are reused across steps;
	// inference passes allocate fresh because callers may retain the
	// result.
	var out *tensor.Tensor
	if train {
		out = l.scratch.GetLike("out", x)
		l.xhat = l.scratch.GetLike("xhat", x)
		if len(l.invStd) != l.channels {
			l.invStd = make([]float64, l.channels)
		}
		l.n, l.hw = n, hw
		l.frozenPass = l.frozen
	} else if l.evalReuse {
		out = l.scratch.GetLike("eout", x)
	} else {
		out = tensor.New(n, l.channels, h, w)
	}
	cnt := float64(n * hw)
	for c := 0; c < l.channels; c++ {
		var mean, variance float64
		if train && !l.frozen {
			sum := 0.0
			for s := 0; s < n; s++ {
				base := (s*l.channels + c) * hw
				for i := 0; i < hw; i++ {
					sum += x.Data[base+i]
				}
			}
			mean = sum / cnt
			ss := 0.0
			for s := 0; s < n; s++ {
				base := (s*l.channels + c) * hw
				for i := 0; i < hw; i++ {
					d := x.Data[base+i] - mean
					ss += d * d
				}
			}
			variance = ss / cnt
			l.RunMean.Value.Data[c] = l.momentum*l.RunMean.Value.Data[c] + (1-l.momentum)*mean
			l.RunVar.Value.Data[c] = l.momentum*l.RunVar.Value.Data[c] + (1-l.momentum)*variance
		} else {
			mean, variance = l.RunMean.Value.Data[c], l.RunVar.Value.Data[c]
			if variance < 0 {
				// Aggregated or adversarially scaled statistics can go
				// negative; clamp rather than produce NaNs.
				variance = 0
			}
		}
		inv := 1 / math.Sqrt(variance+l.eps)
		g, b := l.Gamma.Value.Data[c], l.Beta.Value.Data[c]
		for s := 0; s < n; s++ {
			base := (s*l.channels + c) * hw
			for i := 0; i < hw; i++ {
				xh := (x.Data[base+i] - mean) * inv
				if train {
					l.xhat.Data[base+i] = xh
				}
				out.Data[base+i] = g*xh + b
			}
		}
		if train {
			l.invStd[c] = inv
		}
	}
	return out
}

// Backward implements Layer using the standard batch-norm gradient.
func (l *BatchNorm2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if l.xhat == nil {
		panic(fmt.Sprintf("nn: %s: Backward without training Forward", l.name))
	}
	n, hw := l.n, l.hw
	cnt := float64(n * hw)
	dx := l.scratch.GetLike("dx", dout)
	if l.frozenPass {
		// Statistics are constants: dx = dout · γ · invStd.
		for c := 0; c < l.channels; c++ {
			g := l.Gamma.Value.Data[c] * l.invStd[c]
			for s := 0; s < n; s++ {
				base := (s*l.channels + c) * hw
				for i := 0; i < hw; i++ {
					dx.Data[base+i] = dout.Data[base+i] * g
				}
			}
		}
		return dx
	}
	for c := 0; c < l.channels; c++ {
		var dg, db, sumDxh, sumDxhXh float64
		for s := 0; s < n; s++ {
			base := (s*l.channels + c) * hw
			for i := 0; i < hw; i++ {
				d := dout.Data[base+i]
				xh := l.xhat.Data[base+i]
				dg += d * xh
				db += d
			}
		}
		l.Gamma.Grad.Data[c] += dg
		l.Beta.Grad.Data[c] += db
		g := l.Gamma.Value.Data[c]
		// dxhat = dout * gamma; reuse dg/db sums scaled by gamma.
		sumDxh = db * g
		sumDxhXh = dg * g
		inv := l.invStd[c]
		for s := 0; s < n; s++ {
			base := (s*l.channels + c) * hw
			for i := 0; i < hw; i++ {
				dxh := dout.Data[base+i] * g
				xh := l.xhat.Data[base+i]
				dx.Data[base+i] = inv / cnt * (cnt*dxh - sumDxh - xh*sumDxhXh)
			}
		}
	}
	l.maskGrads()
	return dx
}

// Params implements Layer. Running statistics are included as Stat
// parameters (skipped by the optimizer, transported by aggregation).
func (l *BatchNorm2D) Params() []*Param {
	return []*Param{l.Gamma, l.Beta, l.RunMean, l.RunVar}
}

// CloneLayer implements Layer. Running statistics are copied so a cloned
// model evaluates identically.
func (l *BatchNorm2D) CloneLayer() Layer {
	return &BatchNorm2D{
		name:     l.name,
		channels: l.channels,
		momentum: l.momentum,
		eps:      l.eps,
		Gamma:    l.Gamma.clone(),
		Beta:     l.Beta.clone(),
		RunMean:  l.RunMean.clone(),
		RunVar:   l.RunVar.clone(),
		pruned:   append([]bool(nil), l.pruned...),
		frozen:   l.frozen,
	}
}

// Units implements Prunable.
func (l *BatchNorm2D) Units() int { return l.channels }

// PruneUnit implements Prunable: the channel's affine output is pinned to
// zero.
func (l *BatchNorm2D) PruneUnit(i int) {
	if i < 0 || i >= l.channels {
		panic(fmt.Sprintf("nn: %s: PruneUnit(%d) out of range [0,%d)", l.name, i, l.channels))
	}
	l.pruned[i] = true
	l.EnforceMask()
}

// UnitPruned implements Prunable.
func (l *BatchNorm2D) UnitPruned(i int) bool { return l.pruned[i] }

// PrunedCount implements Prunable.
func (l *BatchNorm2D) PrunedCount() int {
	n := 0
	for _, p := range l.pruned {
		if p {
			n++
		}
	}
	return n
}

// EnforceMask implements Prunable.
func (l *BatchNorm2D) EnforceMask() {
	for c, p := range l.pruned {
		if p {
			l.Gamma.Value.Data[c] = 0
			l.Beta.Value.Data[c] = 0
		}
	}
}

// AppendUnitState implements Prunable: the channel's affine parameters
// (the running statistics are not touched by pruning).
func (l *BatchNorm2D) AppendUnitState(dst []float64, i int) []float64 {
	return append(dst, l.Gamma.Value.Data[i], l.Beta.Value.Data[i])
}

// SetUnitState implements Prunable.
func (l *BatchNorm2D) SetUnitState(i int, vals []float64, pruned bool) {
	if len(vals) != 2 {
		panic(fmt.Sprintf("nn: %s: unit state length %d, want 2", l.name, len(vals)))
	}
	l.Gamma.Value.Data[i] = vals[0]
	l.Beta.Value.Data[i] = vals[1]
	l.pruned[i] = pruned
}

// setEvalReuse implements evalReuser.
func (l *BatchNorm2D) setEvalReuse(on bool) { l.evalReuse = on }

func (l *BatchNorm2D) maskGrads() {
	for c, p := range l.pruned {
		if p {
			l.Gamma.Grad.Data[c] = 0
			l.Beta.Grad.Data[c] = 0
		}
	}
}
