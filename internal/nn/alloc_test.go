//go:build !race

package nn

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/parallel"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// The tests below are the allocation-regression gate of the training hot
// path (ISSUE 2): once warm, layer forward/backward passes and a whole SGD
// step reuse their buffers and perform zero heap allocations. They pin the
// worker count to 1 because the sample-parallel conv path allocates its
// goroutines (that cost is inherent to fanning out, not a regression), and
// are excluded under the race detector, whose instrumentation allocates.

func TestConv2DWarmPassAllocFree(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	rng := rand.New(rand.NewSource(51))
	dims := tensor.ConvDims{C: 8, H: 16, W: 16, K: 3, Stride: 1, Pad: 1}
	l := NewConv2D("conv", dims, 16, rng)
	const batch = 8
	x := tensor.New(batch, dims.C, dims.H, dims.W)
	x.Randn(rng, 1)
	dout := tensor.New(batch, 16, 16, 16)
	dout.Randn(rng, 1)

	step := func() {
		l.Forward(x, true)
		l.Backward(dout)
	}
	step() // warm: allocates cols backing, scratch, headers
	if allocs := testing.AllocsPerRun(10, step); allocs != 0 {
		t.Errorf("warm Conv2D forward+backward: %v allocs/op, want 0", allocs)
	}
}

func TestDenseWarmPassAllocFree(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	rng := rand.New(rand.NewSource(52))
	l := NewDense("fc", 64, 10, rng)
	x := tensor.New(32, 64)
	x.Randn(rng, 1)
	dout := tensor.New(32, 10)
	dout.Randn(rng, 1)

	step := func() {
		l.Forward(x, true)
		l.Backward(dout)
	}
	step()
	if allocs := testing.AllocsPerRun(10, step); allocs != 0 {
		t.Errorf("warm Dense forward+backward: %v allocs/op, want 0", allocs)
	}
}

// TestTrainStepWarmAllocFree is the tentpole gate: a full SGD step on the
// SmallCNN — forward, loss gradient, backward, optimizer update — allocates
// nothing once the model's scratch buffers and the optimizer's velocity
// are warm.
func TestTrainStepWarmAllocFree(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	rng := rand.New(rand.NewSource(53))
	m := NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rng)
	const batch = 32
	x := tensor.New(batch, 1, 16, 16)
	x.Randn(rng, 1)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	opt := NewSGD(0.05, 0.9, 1e-4)
	var dlogits *tensor.Tensor

	step := func() {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		if dlogits == nil {
			dlogits = tensor.New(logits.Dim(0), logits.Dim(1))
		}
		SoftmaxXentInto(dlogits, logits, labels)
		m.Backward(dlogits)
		opt.Step(m)
	}
	step() // warm every layer's scratch and the velocity buffers
	if allocs := testing.AllocsPerRun(10, step); allocs != 0 {
		t.Errorf("warm train step: %v allocs/op, want 0", allocs)
	}
}

// TestEvalForwardWarmAllocFree gates the eval-mode arena path (ISSUE 7):
// with eval reuse on, a warm inference pass routes every layer's output
// through reusable scratch and allocates nothing.
func TestEvalForwardWarmAllocFree(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	rng := rand.New(rand.NewSource(54))
	m := NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rng)
	m.SetEvalReuse(true)
	x := tensor.New(32, 1, 16, 16)
	x.Randn(rng, 1)

	m.Forward(x, false) // warm the eval scratch
	if allocs := testing.AllocsPerRun(10, func() { m.Forward(x, false) }); allocs != 0 {
		t.Errorf("warm eval forward: %v allocs/op, want 0", allocs)
	}
}

// TestFloat32TrainStepWarmAllocFree is the float32-backend twin of the
// train-step gate: shadow weights, float32 activations and the widened
// boundary tensors all live in arenas, so a warm step allocates nothing.
func TestFloat32TrainStepWarmAllocFree(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	rng := rand.New(rand.NewSource(55))
	m := NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rng)
	m.SetBackend(Float32)
	const batch = 32
	x := tensor.New(batch, 1, 16, 16)
	x.Randn(rng, 1)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	opt := NewSGD(0.05, 0.9, 1e-4)
	var dlogits *tensor.Tensor

	step := func() {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		if dlogits == nil {
			dlogits = tensor.New(logits.Dim(0), logits.Dim(1))
		}
		SoftmaxXentInto(dlogits, logits, labels)
		m.Backward(dlogits)
		opt.Step(m)
	}
	step()
	if allocs := testing.AllocsPerRun(10, step); allocs != 0 {
		t.Errorf("warm float32 train step: %v allocs/op, want 0", allocs)
	}
}

// TestFloat32EvalForwardWarmAllocFree covers the float32 eval path with
// eval reuse on (the defense loops' configuration).
func TestFloat32EvalForwardWarmAllocFree(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	rng := rand.New(rand.NewSource(56))
	m := NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rng)
	m.SetBackend(Float32)
	m.SetEvalReuse(true)
	x := tensor.New(32, 1, 16, 16)
	x.Randn(rng, 1)

	m.Forward(x, false)
	if allocs := testing.AllocsPerRun(10, func() { m.Forward(x, false) }); allocs != 0 {
		t.Errorf("warm float32 eval forward: %v allocs/op, want 0", allocs)
	}
}
