package nn

import (
	"fmt"
	"strings"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// Backend selects the element type the model's forward/backward arithmetic
// runs in. Float64 is the canonical reference path; Float32 trades
// per-element precision for roughly halved memory traffic on the matmul-
// and conv-bound hot loops (DESIGN.md §13).
//
// The precision boundary is drawn at the Sequential API: callers always
// pass and receive *tensor.Tensor (float64) regardless of backend, layer
// parameters (Param.Value/Grad) stay float64, and therefore FL
// aggregation, the optimizer, checkpointable state and every defense
// statistic are float64 by construction. A Float32 model keeps per-layer
// float32 shadow weights that are re-narrowed from the float64 parameters
// on each forward pass, so optimizer and aggregation updates are picked up
// without any explicit sync step.
type Backend int

const (
	// Float64 runs every kernel in float64 (the default and the
	// reference semantics).
	Float64 Backend = iota
	// Float32 runs layer forward/backward kernels in float32, converting
	// at the Sequential boundary.
	Float32
)

// String returns the flag spelling of the backend.
func (b Backend) String() string {
	switch b {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend parses the -backend flag spelling ("float64" or "float32",
// case-insensitive; "f64"/"f32" and the empty string are accepted).
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(s) {
	case "float64", "f64", "":
		return Float64, nil
	case "float32", "f32":
		return Float32, nil
	default:
		return Float64, fmt.Errorf("nn: unknown backend %q (want float64 or float32)", s)
	}
}

// layer32 is implemented by layers that can run their forward and backward
// arithmetic natively in float32. Contracts mirror Layer exactly: Forward32
// may cache state for Backward32 when train is set; returned tensors are
// layer-owned scratch, valid until the layer's next pass in the same mode.
// Parameter gradients are still accumulated into the float64 Param.Grad.
//
// Layers that do not implement layer32 still work on a Float32 model
// through a widening bridge in Sequential (correct but allocating); every
// layer shipped by this package implements it natively.
type layer32 interface {
	Forward32(x *tensor.T32, train bool) *tensor.T32
	Backward32(dout *tensor.T32) *tensor.T32
}

// SetBackend selects the arithmetic precision for subsequent passes. It is
// a structural switch, not a per-call option: set it once on the template
// model (clones inherit it) before any training or evaluation.
func (m *Sequential) SetBackend(b Backend) { m.backend = b }

// Backend returns the model's arithmetic precision.
func (m *Sequential) Backend() Backend { return m.backend }

// EvalReuse reports whether inference outputs are currently routed through
// reusable scratch buffers (see SetEvalReuse). Callers that flip reuse on
// for a bounded scope use this to restore the previous state.
func (m *Sequential) EvalReuse() bool { return m.evalReuse }

// forward32 is Forward on the Float32 backend: narrow the input once, chain
// the layers' native float32 passes, widen the result at the boundary.
func (m *Sequential) forward32(x *tensor.Tensor, train bool) *tensor.Tensor {
	cur := m.scr32.GetLike64("in", x)
	cur.From64(x)
	for _, l := range m.layers {
		if l32, ok := l.(layer32); ok {
			cur = l32.Forward32(cur, train)
		} else {
			cur = m.bridgeForward(l, cur, train)
		}
	}
	return m.widenOutput("out", cur, train)
}

// widenOutput converts a final float32 activation to the float64 the
// Sequential API promises. Training outputs (consumed by the loss before
// the next step) and eval-reuse outputs live in the model's arena; plain
// inference allocates fresh because callers may retain the result — the
// same ownership rules as the float64 path.
func (m *Sequential) widenOutput(slot string, cur *tensor.T32, reuse bool) *tensor.Tensor {
	var out *tensor.Tensor
	if reuse || m.evalReuse {
		out = m.scr64.GetLike32(slot, cur)
	} else {
		out = tensor.New(cur.Shape()...)
	}
	cur.To64(out)
	return out
}

// backward32 is Backward on the Float32 backend: narrow dout once, chain
// the layers' native float32 backward passes (parameter gradients land in
// the float64 Param.Grad inside each layer), widen the input gradient.
func (m *Sequential) backward32(dout *tensor.Tensor) *tensor.Tensor {
	cur := m.scr32.GetLike64("dout", dout)
	cur.From64(dout)
	for i := len(m.layers) - 1; i >= 0; i-- {
		if l32, ok := m.layers[i].(layer32); ok {
			cur = l32.Backward32(cur)
		} else {
			cur = m.bridgeBackward(m.layers[i], cur)
		}
	}
	dx := m.scr64.GetLike32("dx", cur)
	cur.To64(dx)
	return dx
}

// backwardParams32 is BackwardParams on the Float32 backend: besides the
// first layer's dx, the final narrow-to-wide copy of the input gradient is
// skipped too (nothing reads it).
func (m *Sequential) backwardParams32(dout *tensor.Tensor) {
	cur := m.scr32.GetLike64("dout", dout)
	cur.From64(dout)
	for i := len(m.layers) - 1; i > 0; i-- {
		if l32, ok := m.layers[i].(layer32); ok {
			cur = l32.Backward32(cur)
		} else {
			cur = m.bridgeBackward(m.layers[i], cur)
		}
	}
	first := m.layers[0]
	if pb, ok := first.(paramBackward32); ok {
		pb.backwardParams32(cur)
		return
	}
	if l32, ok := first.(layer32); ok {
		l32.Backward32(cur)
		return
	}
	m.bridgeBackward(first, cur)
}

// forwardTo32 / forwardFrom32 split a Float32 inference pass at a layer
// boundary. The boundary activation is widened for the caller; narrowing
// it again in forwardFrom32 restores the identical float32 bits
// (float32→float64 widening is exact), so a cached-prefix replay remains
// bit-identical to the unsplit forward — the property the cached
// evaluators' identity tests assert on either backend.
func (m *Sequential) forwardTo32(hi int, x *tensor.Tensor) *tensor.Tensor {
	cur := m.scr32.GetLike64("in", x)
	cur.From64(x)
	for _, l := range m.layers[:hi] {
		if l32, ok := l.(layer32); ok {
			cur = l32.Forward32(cur, false)
		} else {
			cur = m.bridgeForward(l, cur, false)
		}
	}
	return m.widenOutput("boundary", cur, false)
}

func (m *Sequential) forwardFrom32(li int, x *tensor.Tensor) *tensor.Tensor {
	cur := m.scr32.GetLike64("from", x)
	cur.From64(x)
	for _, l := range m.layers[li:] {
		if l32, ok := l.(layer32); ok {
			cur = l32.Forward32(cur, false)
		} else {
			cur = m.bridgeForward(l, cur, false)
		}
	}
	return m.widenOutput("fout", cur, false)
}

// forwardActivations32 is ForwardActivations on the Float32 backend: every
// layer output is widened so downstream activation accounting (pruning
// votes, defense statistics) stays float64. With eval reuse on, the
// widened copies live in per-layer arena slots; otherwise they are fresh
// (callers may retain them).
func (m *Sequential) forwardActivations32(x *tensor.Tensor) []*tensor.Tensor {
	acts := m.actsSlice()
	cur := m.scr32.GetLike64("in", x)
	cur.From64(x)
	for i, l := range m.layers {
		if l32, ok := l.(layer32); ok {
			cur = l32.Forward32(cur, false)
		} else {
			cur = m.bridgeForward(l, cur, false)
		}
		var act *tensor.Tensor
		if m.evalReuse {
			act = m.scr64.GetIndexedLike32("act", i, cur)
		} else {
			act = tensor.New(cur.Shape()...)
		}
		cur.To64(act)
		acts[i] = act
	}
	return acts
}

// bridgeForward runs a layer with no native float32 path by widening its
// input, calling the float64 Forward, and narrowing the result. Correct on
// any Layer implementation, but it allocates per call; the shipped layers
// all implement layer32 and never take this path.
func (m *Sequential) bridgeForward(l Layer, x *tensor.T32, train bool) *tensor.T32 {
	x64 := tensor.New(x.Shape()...)
	x.To64(x64)
	out64 := l.Forward(x64, train)
	out := tensor.New32(out64.Shape()...)
	out.From64(out64)
	return out
}

// bridgeBackward is bridgeForward's counterpart for the backward pass.
func (m *Sequential) bridgeBackward(l Layer, dout *tensor.T32) *tensor.T32 {
	d64 := tensor.New(dout.Shape()...)
	dout.To64(d64)
	dx64 := l.Backward(d64)
	dx := tensor.New32(dx64.Shape()...)
	dx.From64(dx64)
	return dx
}

// addGrad32 accumulates a float32 gradient scratch into a float64
// Param.Grad buffer — the single place layer gradients cross the precision
// boundary.
func addGrad32(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("nn: addGrad32 length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += float64(v)
	}
}
