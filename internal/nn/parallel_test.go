package nn

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/parallel"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// TestConvForwardParallelBitIdentical pins the conv layer's determinism
// guarantee: a batch big enough to take the sample-parallel path produces
// bit-identical activations (and cached im2col matrices for backward) at
// worker counts 1, 2 and 8.
func TestConvForwardParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dims := tensor.ConvDims{C: 8, H: 16, W: 16, K: 3, Stride: 1, Pad: 1}
	l := NewConv2D("conv", dims, 16, rng)
	const batch = 64
	x := tensor.New(batch, dims.C, dims.H, dims.W)
	x.Randn(rng, 1)

	// Train-mode forward reuses the layer's output and im2col buffers
	// across calls, so the reference run must deep-copy them before the
	// next run overwrites them in place.
	run := func(w int) (*tensor.Tensor, []*tensor.Tensor) {
		prev := parallel.SetWorkers(w)
		defer parallel.SetWorkers(prev)
		out := l.Forward(x, true).Clone()
		cols := make([]*tensor.Tensor, len(l.cols))
		for s := range l.cols {
			cols[s] = l.cols[s].Clone()
		}
		return out, cols
	}

	refOut, refCols := run(1)
	for _, w := range []int{2, 8} {
		out, cols := run(w)
		if !out.Equal(refOut, 0) {
			t.Fatalf("workers=%d: conv forward differs from serial", w)
		}
		for s := range cols {
			if !cols[s].Equal(refCols[s], 0) {
				t.Fatalf("workers=%d: cached im2col for sample %d differs", w, s)
			}
		}
	}
}

// TestModelForwardParallelBitIdentical runs a whole SmallCNN forward on a
// large batch under different worker counts — the end-to-end check that
// layer composition preserves the per-kernel determinism guarantees.
func TestModelForwardParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewSmallCNN(Input{C: 1, H: 16, W: 16}, 10, rng)
	x := tensor.New(64, 1, 16, 16)
	x.Randn(rng, 1)

	run := func(w int) *tensor.Tensor {
		prev := parallel.SetWorkers(w)
		defer parallel.SetWorkers(prev)
		return m.Forward(x, false)
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); !got.Equal(ref, 0) {
			t.Fatalf("workers=%d: model forward differs from serial", w)
		}
	}
}
