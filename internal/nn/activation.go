package nn

import (
	"fmt"

	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// UnitMeanActivations reduces a layer-output batch to one average activation
// value per output unit, the aᵢ statistic of the paper's federated pruning
// step (§IV-A). ReLU is applied during the reduction, so the statistic is
// the mean *post-activation* output regardless of whether act was captured
// before or after the network's own ReLU layer.
//
// act must have shape (N, units) for dense layers or (N, units, H, W) for
// convolutional layers.
func UnitMeanActivations(act *tensor.Tensor, units int) []float64 {
	var spatial int
	switch act.Rank() {
	case 2:
		spatial = 1
	case 4:
		spatial = act.Dim(2) * act.Dim(3)
	default:
		panic(fmt.Sprintf("nn: UnitMeanActivations rank %d, want 2 or 4", act.Rank()))
	}
	if act.Dim(1) != units {
		panic(fmt.Sprintf("nn: UnitMeanActivations %d units in act, want %d", act.Dim(1), units))
	}
	n := act.Dim(0)
	out := make([]float64, units)
	for s := 0; s < n; s++ {
		for u := 0; u < units; u++ {
			base := (s*units + u) * spatial
			sum := 0.0
			for i := 0; i < spatial; i++ {
				if v := act.Data[base+i]; v > 0 {
					sum += v
				}
			}
			out[u] += sum
		}
	}
	inv := 1.0 / float64(n*spatial)
	for u := range out {
		out[u] *= inv
	}
	return out
}

// AccumulateUnitActivations adds per-unit activation sums from a batch into
// sums and returns the number of per-unit observations added (N·spatial).
// Clients with multiple batches use it to build exact dataset-wide means
// without holding all activations in memory.
func AccumulateUnitActivations(act *tensor.Tensor, units int, sums []float64) int {
	var spatial int
	switch act.Rank() {
	case 2:
		spatial = 1
	case 4:
		spatial = act.Dim(2) * act.Dim(3)
	default:
		panic(fmt.Sprintf("nn: AccumulateUnitActivations rank %d, want 2 or 4", act.Rank()))
	}
	if act.Dim(1) != units || len(sums) != units {
		panic(fmt.Sprintf("nn: AccumulateUnitActivations units mismatch: act %d, sums %d, want %d", act.Dim(1), len(sums), units))
	}
	n := act.Dim(0)
	for s := 0; s < n; s++ {
		for u := 0; u < units; u++ {
			base := (s*units + u) * spatial
			sum := 0.0
			for i := 0; i < spatial; i++ {
				if v := act.Data[base+i]; v > 0 {
					sum += v
				}
			}
			sums[u] += sum
		}
	}
	return n * spatial
}
