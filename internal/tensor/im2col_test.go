package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvDimsOutput(t *testing.T) {
	d := ConvDims{C: 1, H: 5, W: 5, K: 3, Stride: 1, Pad: 0}
	if d.OutH() != 3 || d.OutW() != 3 {
		t.Fatalf("OutH/OutW = %d/%d, want 3/3", d.OutH(), d.OutW())
	}
	d.Pad = 1
	if d.OutH() != 5 || d.OutW() != 5 {
		t.Fatalf("padded OutH/OutW = %d/%d, want 5/5", d.OutH(), d.OutW())
	}
	d.Stride = 2
	if d.OutH() != 3 || d.OutW() != 3 {
		t.Fatalf("strided OutH/OutW = %d/%d, want 3/3", d.OutH(), d.OutW())
	}
}

func TestConvDimsValidate(t *testing.T) {
	good := ConvDims{C: 1, H: 4, W: 4, K: 3, Stride: 1, Pad: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid dims rejected: %v", err)
	}
	bad := []ConvDims{
		{C: 0, H: 4, W: 4, K: 3, Stride: 1},
		{C: 1, H: 4, W: 4, K: 0, Stride: 1},
		{C: 1, H: 4, W: 4, K: 3, Stride: 0},
		{C: 1, H: 2, W: 2, K: 5, Stride: 1, Pad: 0}, // empty output
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: bad dims %+v accepted", i, d)
		}
	}
}

// naiveConvRef computes a direct convolution as reference: weights (F,C,K,K)
// flat, image (C,H,W) flat, returns (F,outH,outW) flat.
func naiveConvRef(img, w []float64, d ConvDims, f int) []float64 {
	outH, outW := d.OutH(), d.OutW()
	out := make([]float64, f*outH*outW)
	for fi := 0; fi < f; fi++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				s := 0.0
				for c := 0; c < d.C; c++ {
					for ky := 0; ky < d.K; ky++ {
						iy := oy*d.Stride + ky - d.Pad
						if iy < 0 || iy >= d.H {
							continue
						}
						for kx := 0; kx < d.K; kx++ {
							ix := ox*d.Stride + kx - d.Pad
							if ix < 0 || ix >= d.W {
								continue
							}
							wv := w[((fi*d.C+c)*d.K+ky)*d.K+kx]
							iv := img[(c*d.H+iy)*d.W+ix]
							s += wv * iv
						}
					}
				}
				out[(fi*outH+oy)*outW+ox] = s
			}
		}
	}
	return out
}

func TestIm2ColMatMulMatchesNaiveConv(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cases := []ConvDims{
		{C: 1, H: 6, W: 6, K: 3, Stride: 1, Pad: 0},
		{C: 1, H: 6, W: 6, K: 3, Stride: 1, Pad: 1},
		{C: 3, H: 8, W: 8, K: 3, Stride: 2, Pad: 1},
		{C: 2, H: 5, W: 7, K: 2, Stride: 1, Pad: 0},
		{C: 1, H: 4, W: 4, K: 4, Stride: 1, Pad: 0}, // kernel == input
	}
	for ci, d := range cases {
		const f = 4
		img := make([]float64, d.C*d.H*d.W)
		for i := range img {
			img[i] = rng.NormFloat64()
		}
		w := make([]float64, f*d.C*d.K*d.K)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		cols := d.OutH() * d.OutW()
		col := make([]float64, d.C*d.K*d.K*cols)
		Im2Col(img, d, col)
		wm := FromSlice(w, f, d.C*d.K*d.K)
		cm := FromSlice(col, d.C*d.K*d.K, cols)
		got := MatMul(wm, cm)
		want := naiveConvRef(img, w, d, f)
		for i := range want {
			if math.Abs(got.Data[i]-want[i]) > 1e-9 {
				t.Fatalf("case %d: conv mismatch at %d: got %g want %g", ci, i, got.Data[i], want[i])
			}
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col — for any x and y,
// <Im2Col(x), y> == <x, Col2Im(y)>. This is exactly the identity the
// conv backward pass relies on.
func TestCol2ImAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := ConvDims{
			C: 1 + r.Intn(3), H: 3 + r.Intn(5), W: 3 + r.Intn(5),
			K: 1 + r.Intn(3), Stride: 1 + r.Intn(2), Pad: r.Intn(2),
		}
		if d.Validate() != nil {
			return true // skip degenerate samples
		}
		n := d.C * d.H * d.W
		m := d.C * d.K * d.K * d.OutH() * d.OutW()
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		y := make([]float64, m)
		for i := range y {
			y[i] = r.NormFloat64()
		}
		ax := make([]float64, m)
		Im2Col(x, d, ax)
		aty := make([]float64, n)
		Col2Im(y, d, aty)
		var lhs, rhs float64
		for i := range ax {
			lhs += ax[i] * y[i]
		}
		for i := range x {
			rhs += x[i] * aty[i]
		}
		return math.Abs(lhs-rhs) <= 1e-8*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColPaddingProducesZeros(t *testing.T) {
	d := ConvDims{C: 1, H: 2, W: 2, K: 3, Stride: 1, Pad: 1}
	img := []float64{1, 2, 3, 4}
	col := make([]float64, d.C*d.K*d.K*d.OutH()*d.OutW())
	Im2Col(img, d, col)
	// Top-left output position with kernel offset (0,0) reads the padded
	// corner, which must be zero.
	if col[0] != 0 {
		t.Fatalf("padded corner = %g, want 0", col[0])
	}
	// Centre kernel offset (1,1) at output (0,0) reads img[0].
	centerRow := (1*3 + 1) // ky=1,kx=1
	if got := col[centerRow*4+0]; got != 1 {
		t.Fatalf("centre tap = %g, want 1", got)
	}
}

func TestIm2ColLengthMismatchPanics(t *testing.T) {
	d := ConvDims{C: 1, H: 4, W: 4, K: 3, Stride: 1, Pad: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("Im2Col with short dst did not panic")
		}
	}()
	Im2Col(make([]float64, 16), d, make([]float64, 3))
}
