package tensor

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// The tiled kernels are only allowed to reorder which output cells are
// computed when — never the order of additions within a cell — so for
// finite inputs they must match the pre-tile reference kernels bit for
// bit, in both precisions, with or without the sparsity the reference
// kernel's `av == 0` skip exploits. These tests pin that contract on
// shapes chosen to straddle every blocking boundary (the 4-row unroll, the
// KC panel edge, the NC column edge) plus the degenerate vector shapes.

// kernelShapes crosses the unroll width (4), the float64 panel extents
// (kc64=128, nc64=256) and the float32 extents (kc32=256, nc32=512) with
// off-by-one neighbours, plus degenerate 1×k×1 and m×1×n shapes.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{1, 300, 1},
	{5, 1, 9},
	{3, 5, 7},
	{4, 4, 4},
	{7, 129, 3},
	{8, 128, 256},
	{9, 127, 255},
	{16, 144, 64},
	{33, 257, 31},
	{130, 129, 258},
	{2, 513, 5},
}

// zeroChannels zeroes every ch-th row of an m×k matrix, mimicking what
// pruning a unit does to the weight and activation matrices (whole
// channels become exactly +0), so the reference kernel's sparsity skip
// actually fires while the tiled kernel multiplies through.
func zeroChannels[E Elem](data []E, m, k, ch int) {
	for i := 0; i < m; i += ch {
		row := data[i*k : (i+1)*k]
		for j := range row {
			row[j] = 0
		}
	}
}

func randSlice[E Elem](rng *rand.Rand, n int) []E {
	s := make([]E, n)
	for i := range s {
		s[i] = E(rng.NormFloat64())
	}
	return s
}

// checkKernelsMatchRef runs all three tiled kernels against their
// reference counterparts on the given operands and fails on any bit
// difference. a64 is m×k (and reinterpreted as k×m for TransA via a
// separately generated operand), b is sized per kernel.
func checkKernelsMatchRef[E Elem](t *testing.T, rng *rand.Rand, m, k, n int, sparse bool) {
	t.Helper()
	a := randSlice[E](rng, m*k)  // m×k for MatMul / TransB's a
	bN := randSlice[E](rng, k*n) // k×n for MatMul / TransA's b
	bT := randSlice[E](rng, n*k) // n×k for TransB
	aT := randSlice[E](rng, k*m) // k×m for TransA
	if sparse {
		zeroChannels(a, m, k, 2)
		zeroChannels(bN, k, n, 3)
		zeroChannels(bT, n, k, 2)
		zeroChannels(aT, k, m, 3)
	}

	got := make([]E, m*n)
	want := make([]E, m*n)
	matmulTiled(got, a, bN, 0, m, k, n)
	matmulRowsRef(want, a, bN, 0, m, k, n)
	diffIdx(t, "matmul", got, want)

	for i := range got {
		got[i], want[i] = 0, 0
	}
	matmulTransBTiled(got, a, bT, 0, m, k, n)
	matmulTransBRowsRef(want, a, bT, 0, m, k, n)
	diffIdx(t, "matmulTransB", got, want)

	for i := range got {
		got[i], want[i] = 0, 0
	}
	matmulTransATiled(got, aT, bN, 0, m, k, m, n)
	matmulTransARowsRef(want, aT, bN, 0, m, k, m, n)
	diffIdx(t, "matmulTransA", got, want)
}

// diffIdx fails on the first bitwise mismatch between got and want.
func diffIdx[E Elem](t *testing.T, kernel string, got, want []E) {
	t.Helper()
	for i := range got {
		if math.Float64bits(float64(got[i])) != math.Float64bits(float64(want[i])) {
			t.Fatalf("%s: cell %d differs: tiled %v, reference %v", kernel, i, got[i], want[i])
		}
	}
}

func TestTiledMatchesReferenceFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range kernelShapes {
		checkKernelsMatchRef[float64](t, rng, s.m, s.k, s.n, false)
		checkKernelsMatchRef[float64](t, rng, s.m, s.k, s.n, true)
	}
}

func TestTiledMatchesReferenceFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, s := range kernelShapes {
		checkKernelsMatchRef[float32](t, rng, s.m, s.k, s.n, false)
		checkKernelsMatchRef[float32](t, rng, s.m, s.k, s.n, true)
	}
}

// TestMatMul32SerialParallelIdentity pins the float32 serial-vs-parallel
// bit-identity contract at several worker counts, mirroring the float64
// suite: row blocks run the identical tiled kernel, so worker count must
// never perturb a single bit.
func TestMatMul32SerialParallelIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, k, n := 96, 80, 72 // m·k·n ≫ parallelFlopCutoff
	a := New32(m, k)
	b := New32(k, n)
	bt := New32(n, k)
	at := New32(k, m)
	for _, s := range [][]float32{a.Data, b.Data, bt.Data, at.Data} {
		for i := range s {
			s[i] = float32(rng.NormFloat64())
		}
	}

	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	wantMM := New32(m, n)
	wantTB := New32(m, n)
	wantTA := New32(m, n)
	MatMulInto32(wantMM, a, b)
	MatMulTransBInto32(wantTB, a, bt)
	MatMulTransAInto32(wantTA, at, b)

	for _, workers := range []int{2, 3, 8} {
		parallel.SetWorkers(workers)
		got := New32(m, n)
		MatMulInto32(got, a, b)
		diffIdx(t, "MatMulInto32", got.Data, wantMM.Data)
		MatMulTransBInto32(got, a, bt)
		diffIdx(t, "MatMulTransBInto32", got.Data, wantTB.Data)
		MatMulTransAInto32(got, at, b)
		diffIdx(t, "MatMulTransAInto32", got.Data, wantTA.Data)
	}
}

// TestIm2Col32MatchesFloat64 checks the float32 im2col/col2im against the
// float64 path on float32-representable data (conversion is exact, so the
// results must agree exactly).
func TestIm2Col32MatchesFloat64(t *testing.T) {
	d := ConvDims{C: 3, H: 9, W: 7, K: 3, Stride: 2, Pad: 1}
	rng := rand.New(rand.NewSource(10))
	img64 := make([]float64, d.C*d.H*d.W)
	img32 := make([]float32, len(img64))
	for i := range img64 {
		v := float32(rng.NormFloat64())
		img32[i] = v
		img64[i] = float64(v)
	}
	colLen := d.C * d.K * d.K * d.OutH() * d.OutW()
	col64 := make([]float64, colLen)
	col32 := make([]float32, colLen)
	Im2Col(img64, d, col64)
	Im2Col32(img32, d, col32)
	for i := range col64 {
		if float64(col32[i]) != col64[i] {
			t.Fatalf("im2col cell %d: float32 %v, float64 %v", i, col32[i], col64[i])
		}
	}

	back64 := make([]float64, len(img64))
	back32 := make([]float32, len(img32))
	Col2Im(col64, d, back64)
	Col2Im32(col32, d, back32)
	for i := range back64 {
		if math.Abs(float64(back32[i])-back64[i]) > 1e-5*(1+math.Abs(back64[i])) {
			t.Fatalf("col2im cell %d: float32 %v, float64 %v", i, back32[i], back64[i])
		}
	}
}

func TestT32Basics(t *testing.T) {
	x := New32(2, 3)
	if x.Rank() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Len() != 6 {
		t.Fatalf("New32 shape metadata wrong: %v", x.Shape())
	}
	for i := range x.Data {
		x.Data[i] = float32(i) + 0.5
	}
	c := x.Clone()
	c.Data[0] = -1
	if x.Data[0] == -1 {
		t.Fatal("Clone aliases the original buffer")
	}
	r := x.Reshape(3, 2)
	r.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("Reshape must alias the buffer")
	}
	y := New32(2, 3)
	y.CopyFrom(x)
	for i := range y.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatalf("CopyFrom cell %d: %v != %v", i, y.Data[i], x.Data[i])
		}
	}
	y.Zero()
	for i := range y.Data {
		if y.Data[i] != 0 {
			t.Fatal("Zero left non-zero cells")
		}
	}
	if got := FromSlice32([]float32{1, 2, 3, 4}, 2, 2); got.Data[3] != 4 {
		t.Fatal("FromSlice32 lost data")
	}
}

// TestT32RoundTripExact pins the property the nn float32 backend's
// boundary conversions rely on: float32→float64→float32 reproduces the
// original bits for every value, including negative zero and denormals.
func TestT32RoundTripExact(t *testing.T) {
	vals := []float32{0, float32(math.Copysign(0, -1)), 1, -1.5, 3.1415927,
		math.MaxFloat32, math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32, 1e-40}
	src := FromSlice32(append([]float32(nil), vals...), len(vals))
	wide := New(len(vals))
	back := New32(len(vals))
	src.To64(wide)
	back.From64(wide)
	for i := range vals {
		if math.Float32bits(back.Data[i]) != math.Float32bits(vals[i]) {
			t.Fatalf("value %v did not survive the round trip (got %v)", vals[i], back.Data[i])
		}
	}
}

func TestArena32Reuse(t *testing.T) {
	var a Arena32
	x := a.Get("x", 4, 5)
	x.Data[0] = 7
	if y := a.Get("x", 4, 5); y != x {
		t.Fatal("same slot+shape must return the same buffer")
	}
	if y := a.Get("x", 5, 4); y == x {
		t.Fatal("different shape must not alias")
	}
	if y := a.Get("y", 4, 5); y == x {
		t.Fatal("different slot must not alias")
	}
	if y := a.GetIndexed("x", 1, 4, 5); y == x {
		t.Fatal("indexed lookup must not alias the unindexed slot")
	}
	if y := a.GetLike("x", x); y != x {
		t.Fatal("GetLike must hit the same buffer")
	}
	t64 := New(4, 5)
	if y := a.GetLike64("x", t64); y != x {
		t.Fatal("GetLike64 must hit the same buffer for the same shape")
	}
	a.Reset()
	if y := a.Get("x", 4, 5); y == x || y.Data[0] != 0 {
		t.Fatal("Reset must drop cached buffers")
	}
}
