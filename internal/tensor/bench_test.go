package tensor

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// Micro-benchmarks for the numeric kernels the whole training stack sits
// on. ns/op here multiplies through every federated experiment.

func benchMat(b *testing.B, m, k, n int) {
	rng := rand.New(rand.NewSource(1))
	a := New(m, k)
	a.Randn(rng, 1)
	bb := New(k, n)
	bb.Randn(rng, 1)
	dst := New(m, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, bb)
	}
	b.SetBytes(int64(8 * (m*k + k*n + m*n)))
}

func BenchmarkMatMul16x144x64(b *testing.B)   { benchMat(b, 16, 144, 64) } // conv2 of SmallCNN
func BenchmarkMatMul64x256x64(b *testing.B)   { benchMat(b, 64, 256, 64) } // dense layers
func BenchmarkMatMul128x128x128(b *testing.B) { benchMat(b, 128, 128, 128) }

// benchMatWorkers pins the worker count for the serial-vs-parallel matmul
// comparison. workers == 0 uses the automatic count (GOMAXPROCS).
func benchMatWorkers(b *testing.B, m, k, n, workers int) {
	prev := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	benchMat(b, m, k, n)
}

// BenchmarkMatMulInto is the canonical gated matmul benchmark (Makefile
// bench-json joins it against bench_baseline_pr7.txt and fails a >25%
// ns/op regression): one serial dense product big enough to cross the
// cache-tile boundaries, pinned to one worker so the gate measures the
// kernel, not the machine's core count.
func BenchmarkMatMulInto(b *testing.B) { benchMatWorkers(b, 128, 256, 128, 1) }

// The 256³ pair is the headline serial-vs-parallel comparison: ~16.7M
// multiply-adds, far above parallelFlopCutoff, so the Parallel variant
// row-blocks across all available cores while Serial pins one worker.
func BenchmarkMatMul256x256x256Serial(b *testing.B)   { benchMatWorkers(b, 256, 256, 256, 1) }
func BenchmarkMatMul256x256x256Parallel(b *testing.B) { benchMatWorkers(b, 256, 256, 256, 0) }

func BenchmarkIm2Col16x16(b *testing.B) {
	d := ConvDims{C: 8, H: 16, W: 16, K: 3, Stride: 1, Pad: 1}
	img := make([]float64, d.C*d.H*d.W)
	rng := rand.New(rand.NewSource(2))
	for i := range img {
		img[i] = rng.NormFloat64()
	}
	dst := make([]float64, d.C*d.K*d.K*d.OutH()*d.OutW())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(img, d, dst)
	}
}

func BenchmarkCol2Im16x16(b *testing.B) {
	d := ConvDims{C: 8, H: 16, W: 16, K: 3, Stride: 1, Pad: 1}
	col := make([]float64, d.C*d.K*d.K*d.OutH()*d.OutW())
	rng := rand.New(rand.NewSource(3))
	for i := range col {
		col[i] = rng.NormFloat64()
	}
	dst := make([]float64, d.C*d.H*d.W)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dst {
			dst[j] = 0
		}
		Col2Im(col, d, dst)
	}
}
