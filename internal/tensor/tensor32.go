package tensor

import "fmt"

// T32 is the float32 sibling of Tensor: a dense row-major float32 array
// with an explicit shape. It exists for the opt-in float32 speed backend
// (DESIGN.md §13) and deliberately carries only the operations the nn
// float32 forward/backward paths need. Everything that crosses the
// precision boundary — FL aggregation, checkpoints, defense statistics —
// stays on *Tensor; From64/To64 are the only bridges.
//
// Go 1.21 (the module's floor) has no generic type aliases, so T32 is a
// distinct struct rather than Tensor[float32]; the numeric kernels are
// still shared with float64 through the generic functions in kernels.go.
type T32 struct {
	// Data holds the elements in row-major order, exposed for the same
	// reason Tensor.Data is.
	Data  []float32
	shape []int
}

// New32 returns a zero-filled float32 tensor with the given shape.
func New32(shape ...int) *T32 {
	n := checkShape(shape)
	return &T32{
		Data:  make([]float32, n),
		shape: append([]int(nil), shape...),
	}
}

// FromSlice32 wraps data in a T32 with the given shape. The slice is used
// directly (not copied), mirroring FromSlice.
func FromSlice32(data []float32, shape ...int) *T32 {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &T32{Data: data, shape: append([]int(nil), shape...)}
}

// Shape returns a copy of the tensor's shape.
func (t *T32) Shape() []int { return append([]int(nil), t.shape...) }

// Dim returns the extent of dimension i.
func (t *T32) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *T32) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *T32) Len() int { return len(t.Data) }

// Zero sets every element to zero.
func (t *T32) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Clone returns a deep copy of the tensor.
func (t *T32) Clone() *T32 {
	c := &T32{
		Data:  make([]float32, len(t.Data)),
		shape: append([]int(nil), t.shape...),
	}
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a T32 sharing t's data with a new shape, mirroring
// Tensor.Reshape. The returned tensor aliases t's buffer.
func (t *T32) Reshape(shape ...int) *T32 {
	n := checkShape(shape)
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.Data), shape, n))
	}
	return &T32{Data: t.Data, shape: append([]int(nil), shape...)}
}

// CopyFrom copies src's elements into t. Lengths must match.
func (t *T32) CopyFrom(src *T32) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom length mismatch %d vs %d", len(t.Data), len(src.Data)))
	}
	copy(t.Data, src.Data)
}

// From64 fills t by rounding src's float64 elements to float32. Lengths
// must match; shapes are the caller's contract (the nn backend always
// pairs like-shaped tensors).
func (t *T32) From64(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: From64 length mismatch %d vs %d", len(t.Data), len(src.Data)))
	}
	for i, v := range src.Data {
		t.Data[i] = float32(v)
	}
}

// To64 widens t's elements into dst. Widening float32→float64 is exact,
// so a To64/From64 round trip returns the original float32 bits — the
// property the cached-evaluator identity tests rely on when the model runs
// on the float32 backend.
func (t *T32) To64(dst *Tensor) {
	if len(t.Data) != len(dst.Data) {
		panic(fmt.Sprintf("tensor: To64 length mismatch %d vs %d", len(t.Data), len(dst.Data)))
	}
	for i, v := range t.Data {
		dst.Data[i] = float64(v)
	}
}

// MatMulInto32 computes dst = a·b for float32 operands, through the same
// tiled kernels and row-blocking as MatMulInto. dst must be m×n.
func MatMulInto32(dst, a, b *T32) {
	m, k, n := checkMatMul32(a, b, "MatMul")
	if dst.Rank() != 2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto32 dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	dst.Zero()
	matmulInto(dst.Data, a.Data, b.Data, m, k, n)
}

// MatMulTransBInto32 computes dst = a·bᵀ for a (m×k) and b (n×k); every
// dst cell is overwritten.
func MatMulTransBInto32(dst, a, b *T32) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(0)
	if b.Dim(1) != k {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v × %vᵀ", a.shape, b.shape))
	}
	if dst.Rank() != 2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto32 dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	matmulTransBInto(dst.Data, a.Data, b.Data, m, k, n)
}

// MatMulTransAInto32 computes dst = aᵀ·b for a (k×m) and b (k×n); dst is
// zeroed first because the kernel accumulates.
func MatMulTransAInto32(dst, a, b *T32) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ × %v", a.shape, b.shape))
	}
	n := b.Dim(1)
	if dst.Rank() != 2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto32 dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	dst.Zero()
	matmulTransAInto(dst.Data, a.Data, b.Data, k, m, n)
}

func checkMatMul32(a, b *T32, op string) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s requires rank-2 operands, got %v and %v", op, a.shape, b.shape))
	}
	m, k = a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v × %v", op, a.shape, b.shape))
	}
	return m, k, b.Dim(1)
}

// Arena32 is the float32 sibling of Arena: a shape-keyed pool of reusable
// float32 scratch tensors with the same ownership rules (single-goroutine,
// recycled buffers keep contents, buffers valid until the next Get with
// the same key). The zero value is ready to use.
type Arena32 struct {
	m map[arenaKey]*T32
}

// Get returns the arena's buffer for (slot, shape), allocating a zeroed
// T32 on first use. A warm Get is allocation-free.
func (a *Arena32) Get(slot string, shape ...int) *T32 {
	if len(shape) > maxArenaRank {
		panic(fmt.Sprintf("tensor: Arena32.Get rank %d exceeds %d", len(shape), maxArenaRank))
	}
	k := arenaKey{slot: slot, rank: len(shape)}
	copy(k.dims[:], shape)
	if t, ok := a.m[k]; ok {
		return t
	}
	return a.miss(k)
}

// GetIndexed returns the arena's buffer for (slot, idx, shape), mirroring
// Arena.GetIndexed.
func (a *Arena32) GetIndexed(slot string, idx int, shape ...int) *T32 {
	if len(shape) > maxArenaRank {
		panic(fmt.Sprintf("tensor: Arena32.GetIndexed rank %d exceeds %d", len(shape), maxArenaRank))
	}
	k := arenaKey{slot: slot, idx: idx, rank: len(shape)}
	copy(k.dims[:], shape)
	if t, ok := a.m[k]; ok {
		return t
	}
	return a.miss(k)
}

// GetLike returns the arena's buffer with exactly t's shape, reading the
// shape in place so the warm path is allocation-free.
func (a *Arena32) GetLike(slot string, t *T32) *T32 {
	if len(t.shape) > maxArenaRank {
		panic(fmt.Sprintf("tensor: Arena32.GetLike rank %d exceeds %d", len(t.shape), maxArenaRank))
	}
	k := arenaKey{slot: slot, rank: len(t.shape)}
	copy(k.dims[:], t.shape)
	if b, ok := a.m[k]; ok {
		return b
	}
	return a.miss(k)
}

// GetLike64 returns the arena's float32 buffer shaped like the float64
// tensor t — the allocation-free way to stage a conversion at the
// precision boundary.
func (a *Arena32) GetLike64(slot string, t *Tensor) *T32 {
	if len(t.shape) > maxArenaRank {
		panic(fmt.Sprintf("tensor: Arena32.GetLike64 rank %d exceeds %d", len(t.shape), maxArenaRank))
	}
	k := arenaKey{slot: slot, rank: len(t.shape)}
	copy(k.dims[:], t.shape)
	if b, ok := a.m[k]; ok {
		return b
	}
	return a.miss(k)
}

// GetIndexedLike64 is GetLike64 with an integer index, mirroring
// Arena.GetIndexed.
func (a *Arena32) GetIndexedLike64(slot string, idx int, t *Tensor) *T32 {
	if len(t.shape) > maxArenaRank {
		panic(fmt.Sprintf("tensor: Arena32.GetIndexedLike64 rank %d exceeds %d", len(t.shape), maxArenaRank))
	}
	k := arenaKey{slot: slot, idx: idx, rank: len(t.shape)}
	copy(k.dims[:], t.shape)
	if b, ok := a.m[k]; ok {
		return b
	}
	return a.miss(k)
}

// miss allocates and registers the buffer for key k.
func (a *Arena32) miss(k arenaKey) *T32 {
	if a.m == nil {
		a.m = make(map[arenaKey]*T32)
	}
	t := New32(k.dims[:k.rank]...)
	a.m[k] = t
	return t
}

// Reset drops every cached buffer.
func (a *Arena32) Reset() { a.m = nil }

// GetLike32 returns the float64 arena's buffer shaped like the float32
// tensor t — the other direction of Arena32.GetLike64, used when widening
// results back across the precision boundary without allocating.
func (a *Arena) GetLike32(slot string, t *T32) *Tensor {
	if len(t.shape) > maxArenaRank {
		panic(fmt.Sprintf("tensor: Arena.GetLike32 rank %d exceeds %d", len(t.shape), maxArenaRank))
	}
	k := arenaKey{slot: slot, rank: len(t.shape)}
	copy(k.dims[:], t.shape)
	if b, ok := a.m[k]; ok {
		return b
	}
	return a.miss(k)
}

// GetIndexedLike32 is GetLike32 with an integer index, mirroring
// Arena.GetIndexed.
func (a *Arena) GetIndexedLike32(slot string, idx int, t *T32) *Tensor {
	if len(t.shape) > maxArenaRank {
		panic(fmt.Sprintf("tensor: Arena.GetIndexedLike32 rank %d exceeds %d", len(t.shape), maxArenaRank))
	}
	k := arenaKey{slot: slot, idx: idx, rank: len(t.shape)}
	copy(k.dims[:], t.shape)
	if b, ok := a.m[k]; ok {
		return b
	}
	return a.miss(k)
}
