package tensor

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// TestMatMulTransBIntoMatchesAllocating pins the in-place kernel's
// bit-identity contract against the allocating variant across shapes large
// enough to cross the parallel cutoff and worker counts 1, 2 and 8. The
// destination is pre-filled with garbage: every cell must be overwritten.
func TestMatMulTransBIntoMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 4}, {64, 96, 80}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randMat(rng, m, k)
		b := randMat(rng, n, k)
		want := MatMulTransB(a, b)
		for _, w := range []int{1, 2, 8} {
			prev := parallel.SetWorkers(w)
			dst := New(m, n)
			dst.Fill(99)
			MatMulTransBInto(dst, a, b)
			parallel.SetWorkers(prev)
			if !dst.Equal(want, 0) {
				t.Fatalf("m=%d k=%d n=%d workers=%d: MatMulTransBInto not bit-identical", m, k, n, w)
			}
		}
	}
}

// TestMatMulTransAIntoMatchesAllocating is the aᵀ·b sibling. The kernel
// accumulates, so the pre-filled destination also checks the implicit Zero.
func TestMatMulTransAIntoMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, dims := range [][3]int{{1, 1, 1}, {4, 6, 3}, {80, 64, 96}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randMat(rng, k, m)
		b := randMat(rng, k, n)
		want := MatMulTransA(a, b)
		for _, w := range []int{1, 2, 8} {
			prev := parallel.SetWorkers(w)
			dst := New(m, n)
			dst.Fill(99)
			MatMulTransAInto(dst, a, b)
			parallel.SetWorkers(prev)
			if !dst.Equal(want, 0) {
				t.Fatalf("m=%d k=%d n=%d workers=%d: MatMulTransAInto not bit-identical", m, k, n, w)
			}
		}
	}
}

func TestMatMulIntoBadDstPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MatMulInto":       func() { MatMulInto(New(2, 3), New(2, 2), New(2, 2)) },
		"MatMulTransBInto": func() { MatMulTransBInto(New(3, 2), New(2, 4), New(3, 4)) },
		"MatMulTransAInto": func() { MatMulTransAInto(New(2, 2), New(4, 2), New(4, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with wrong dst shape did not panic", name)
				}
			}()
			f()
		}()
	}
}
