package tensor

import "fmt"

// ConvDims describes a 2-D convolution geometry over a C×H×W input.
type ConvDims struct {
	C, H, W int // input channels, height, width
	K       int // square kernel size
	Stride  int
	Pad     int
}

// OutH returns the output height of the convolution.
func (d ConvDims) OutH() int { return (d.H+2*d.Pad-d.K)/d.Stride + 1 }

// OutW returns the output width of the convolution.
func (d ConvDims) OutW() int { return (d.W+2*d.Pad-d.K)/d.Stride + 1 }

// Validate reports an error if the geometry is degenerate.
func (d ConvDims) Validate() error {
	switch {
	case d.C <= 0 || d.H <= 0 || d.W <= 0:
		return fmt.Errorf("tensor: conv dims %+v: non-positive input", d)
	case d.K <= 0 || d.Stride <= 0 || d.Pad < 0:
		return fmt.Errorf("tensor: conv dims %+v: bad kernel/stride/pad", d)
	case d.OutH() <= 0 || d.OutW() <= 0:
		return fmt.Errorf("tensor: conv dims %+v: empty output", d)
	}
	return nil
}

// Im2Col unrolls a single C×H×W image (flat slice img) into dst, a
// (C·K·K)×(OutH·OutW) column matrix in row-major order. Padding positions
// contribute zeros. dst must have length C·K·K·OutH·OutW.
//
// The unrolled layout pairs with a weight matrix of shape (F, C·K·K): the
// convolution then becomes a single MatMul producing (F, OutH·OutW).
func Im2Col(img []float64, d ConvDims, dst []float64) {
	outH, outW := d.OutH(), d.OutW()
	cols := outH * outW
	if len(img) != d.C*d.H*d.W {
		panic(fmt.Sprintf("tensor: Im2Col image length %d, want %d", len(img), d.C*d.H*d.W))
	}
	if len(dst) != d.C*d.K*d.K*cols {
		panic(fmt.Sprintf("tensor: Im2Col dst length %d, want %d", len(dst), d.C*d.K*d.K*cols))
	}
	row := 0
	for c := 0; c < d.C; c++ {
		chanBase := c * d.H * d.W
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				drow := dst[row*cols : (row+1)*cols]
				i := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*d.Stride + ky - d.Pad
					if iy < 0 || iy >= d.H {
						for ox := 0; ox < outW; ox++ {
							drow[i] = 0
							i++
						}
						continue
					}
					rowBase := chanBase + iy*d.W
					for ox := 0; ox < outW; ox++ {
						ix := ox*d.Stride + kx - d.Pad
						if ix < 0 || ix >= d.W {
							drow[i] = 0
						} else {
							drow[i] = img[rowBase+ix]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// Col2Im scatters a (C·K·K)×(OutH·OutW) column-gradient matrix back into a
// C×H×W image gradient, accumulating overlapping contributions. dst must be
// zeroed by the caller if fresh accumulation is desired.
func Col2Im(col []float64, d ConvDims, dst []float64) {
	outH, outW := d.OutH(), d.OutW()
	cols := outH * outW
	if len(dst) != d.C*d.H*d.W {
		panic(fmt.Sprintf("tensor: Col2Im dst length %d, want %d", len(dst), d.C*d.H*d.W))
	}
	if len(col) != d.C*d.K*d.K*cols {
		panic(fmt.Sprintf("tensor: Col2Im col length %d, want %d", len(col), d.C*d.K*d.K*cols))
	}
	row := 0
	for c := 0; c < d.C; c++ {
		chanBase := c * d.H * d.W
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				crow := col[row*cols : (row+1)*cols]
				i := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*d.Stride + ky - d.Pad
					if iy < 0 || iy >= d.H {
						i += outW
						continue
					}
					rowBase := chanBase + iy*d.W
					for ox := 0; ox < outW; ox++ {
						ix := ox*d.Stride + kx - d.Pad
						if ix >= 0 && ix < d.W {
							dst[rowBase+ix] += crow[i]
						}
						i++
					}
				}
				row++
			}
		}
	}
}
