package tensor

import "fmt"

// ConvDims describes a 2-D convolution geometry over a C×H×W input.
type ConvDims struct {
	C, H, W int // input channels, height, width
	K       int // square kernel size
	Stride  int
	Pad     int
}

// OutH returns the output height of the convolution.
func (d ConvDims) OutH() int { return (d.H+2*d.Pad-d.K)/d.Stride + 1 }

// OutW returns the output width of the convolution.
func (d ConvDims) OutW() int { return (d.W+2*d.Pad-d.K)/d.Stride + 1 }

// Validate reports an error if the geometry is degenerate.
func (d ConvDims) Validate() error {
	switch {
	case d.C <= 0 || d.H <= 0 || d.W <= 0:
		return fmt.Errorf("tensor: conv dims %+v: non-positive input", d)
	case d.K <= 0 || d.Stride <= 0 || d.Pad < 0:
		return fmt.Errorf("tensor: conv dims %+v: bad kernel/stride/pad", d)
	case d.OutH() <= 0 || d.OutW() <= 0:
		return fmt.Errorf("tensor: conv dims %+v: empty output", d)
	}
	return nil
}

// Im2Col unrolls a single C×H×W image (flat slice img) into dst, a
// (C·K·K)×(OutH·OutW) column matrix in row-major order. Padding positions
// contribute zeros. dst must have length C·K·K·OutH·OutW.
//
// The unrolled layout pairs with a weight matrix of shape (F, C·K·K): the
// convolution then becomes a single MatMul producing (F, OutH·OutW).
func Im2Col(img []float64, d ConvDims, dst []float64) {
	checkIm2Col(len(img), len(dst), d)
	im2colKernel(img, d, dst)
}

// Im2Col32 is the float32 instantiation of Im2Col for the float32 backend;
// the layout contract is identical.
func Im2Col32(img []float32, d ConvDims, dst []float32) {
	checkIm2Col(len(img), len(dst), d)
	im2colKernel(img, d, dst)
}

func checkIm2Col(imgLen, dstLen int, d ConvDims) {
	cols := d.OutH() * d.OutW()
	if imgLen != d.C*d.H*d.W {
		panic(fmt.Sprintf("tensor: Im2Col image length %d, want %d", imgLen, d.C*d.H*d.W))
	}
	if dstLen != d.C*d.K*d.K*cols {
		panic(fmt.Sprintf("tensor: Im2Col dst length %d, want %d", dstLen, d.C*d.K*d.K*cols))
	}
}

// Col2Im scatters a (C·K·K)×(OutH·OutW) column-gradient matrix back into a
// C×H×W image gradient, accumulating overlapping contributions. dst must be
// zeroed by the caller if fresh accumulation is desired.
func Col2Im(col []float64, d ConvDims, dst []float64) {
	checkCol2Im(len(col), len(dst), d)
	col2imKernel(col, d, dst)
}

// Col2Im32 is the float32 instantiation of Col2Im for the float32 backend;
// the accumulation contract is identical.
func Col2Im32(col []float32, d ConvDims, dst []float32) {
	checkCol2Im(len(col), len(dst), d)
	col2imKernel(col, d, dst)
}

func checkCol2Im(colLen, dstLen int, d ConvDims) {
	cols := d.OutH() * d.OutW()
	if dstLen != d.C*d.H*d.W {
		panic(fmt.Sprintf("tensor: Col2Im dst length %d, want %d", dstLen, d.C*d.H*d.W))
	}
	if colLen != d.C*d.K*d.K*cols {
		panic(fmt.Sprintf("tensor: Col2Im col length %d, want %d", colLen, d.C*d.K*d.K*cols))
	}
}
