// Package tensor implements the dense numeric arrays underpinning the
// fedcleanse neural-network stack. Tensors are row-major float64 buffers
// with an explicit shape. The package is deliberately small: it provides
// exactly the operations the CNN layers in internal/nn need (matrix
// multiplication, im2col, element-wise arithmetic, reductions and weight
// statistics) with no external dependencies.
//
// All operations either mutate the receiver in place (methods with verb
// names such as Add, Scale, Zero) or allocate a fresh result (package
// functions such as MatMul). Shape mismatches are programming errors and
// panic; they are never expected at runtime after construction.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major array of float64 values.
//
// The zero value is an empty tensor. Use New or FromSlice to create a
// tensor with a shape.
type Tensor struct {
	// Data holds the elements in row-major order. Exposed so hot loops in
	// internal/nn can iterate without bounds-checked accessor calls.
	Data []float64
	// shape holds the extent of each dimension.
	shape []int
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative or the shape is empty.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{
		Data:  make([]float64, n),
		shape: append([]int(nil), shape...),
	}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); callers must not retain independent references if
// they expect value semantics. It panics if len(data) does not match the
// shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

// checkShape validates a shape and returns its element count.
func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{
		Data:  make([]float64, len(t.Data)),
		shape: append([]int(nil), t.shape...),
	}
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape. It panics if
// the element counts differ. The returned tensor aliases t's buffer.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.Data), shape, n))
	}
	return &Tensor{Data: t.Data, shape: append([]int(nil), shape...)}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set assigns v to the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

// offset converts a multi-dimensional index to a flat offset.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong rank for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Add accumulates other into t element-wise. Shapes must have equal element
// counts (shape equality beyond length is not required, enabling flat
// parameter-vector arithmetic).
func (t *Tensor) Add(other *Tensor) {
	if len(t.Data) != len(other.Data) {
		panic(fmt.Sprintf("tensor: Add length mismatch %d vs %d", len(t.Data), len(other.Data)))
	}
	for i, v := range other.Data {
		t.Data[i] += v
	}
}

// AddScaled accumulates alpha*other into t element-wise.
func (t *Tensor) AddScaled(alpha float64, other *Tensor) {
	if len(t.Data) != len(other.Data) {
		panic(fmt.Sprintf("tensor: AddScaled length mismatch %d vs %d", len(t.Data), len(other.Data)))
	}
	for i, v := range other.Data {
		t.Data[i] += alpha * v
	}
}

// Sub subtracts other from t element-wise.
func (t *Tensor) Sub(other *Tensor) {
	if len(t.Data) != len(other.Data) {
		panic(fmt.Sprintf("tensor: Sub length mismatch %d vs %d", len(t.Data), len(other.Data)))
	}
	for i, v := range other.Data {
		t.Data[i] -= v
	}
}

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float64) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Mul multiplies t by other element-wise (Hadamard product).
func (t *Tensor) Mul(other *Tensor) {
	if len(t.Data) != len(other.Data) {
		panic(fmt.Sprintf("tensor: Mul length mismatch %d vs %d", len(t.Data), len(other.Data)))
	}
	for i, v := range other.Data {
		t.Data[i] *= v
	}
}

// CopyFrom copies other's elements into t. Lengths must match.
func (t *Tensor) CopyFrom(other *Tensor) {
	if len(t.Data) != len(other.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom length mismatch %d vs %d", len(t.Data), len(other.Data)))
	}
	copy(t.Data, other.Data)
}

// Randn fills t with samples from N(0, std²) using rng.
func (t *Tensor) Randn(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements, or 0 for an empty tensor.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Std returns the population standard deviation of all elements, or 0 for
// tensors with fewer than two elements.
func (t *Tensor) Std() float64 {
	if len(t.Data) < 2 {
		return 0
	}
	m := t.Mean()
	ss := 0.0
	for _, v := range t.Data {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(t.Data)))
}

// Max returns the maximum element and its flat index. It panics on an empty
// tensor.
func (t *Tensor) Max() (float64, int) {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	best, bestIdx := t.Data[0], 0
	for i, v := range t.Data[1:] {
		if v > best {
			best, bestIdx = v, i+1
		}
	}
	return best, bestIdx
}

// Norm2 returns the Euclidean (L2) norm of the tensor viewed as a flat
// vector.
func (t *Tensor) Norm2() float64 {
	ss := 0.0
	for _, v := range t.Data {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// Norm1 returns the L1 norm (sum of absolute values).
func (t *Tensor) Norm1() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += math.Abs(v)
	}
	return s
}

// Clamp limits every element to the interval [lo, hi].
func (t *Tensor) Clamp(lo, hi float64) {
	for i, v := range t.Data {
		if v < lo {
			t.Data[i] = lo
		} else if v > hi {
			t.Data[i] = hi
		}
	}
}

// Equal reports whether t and other have identical shapes and all elements
// within tol of each other.
func (t *Tensor) Equal(other *Tensor, tol float64) bool {
	if len(t.shape) != len(other.shape) {
		return false
	}
	for i, d := range t.shape {
		if other.shape[i] != d {
			return false
		}
	}
	for i, v := range t.Data {
		if math.Abs(v-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description, useful in test failures.
func (t *Tensor) String() string {
	if len(t.Data) <= 8 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.Data)
	}
	return fmt.Sprintf("Tensor%v[%g %g ... %g]", t.shape, t.Data[0], t.Data[1], t.Data[len(t.Data)-1])
}
