package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	tt := New(2, 3)
	if tt.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tt.Len())
	}
	for i, v := range tt.Data {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {-1}, {2, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(2, 3, 4)
	tt.Set(7.5, 1, 2, 3)
	if got := tt.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %g, want 7.5", got)
	}
	// Row-major: offset of (1,2,3) in [2,3,4] is 1*12+2*4+3 = 23.
	if tt.Data[23] != 7.5 {
		t.Fatalf("flat offset wrong: Data[23] = %g", tt.Data[23])
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of bounds did not panic")
		}
	}()
	tt.At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
	if !a.Equal(FromSlice([]float64{1, 2, 3, 4}, 2, 2), 0) {
		t.Fatal("original mutated")
	}
}

func TestReshapeAliases(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Data[0] = 42
	if a.Data[0] != 42 {
		t.Fatal("Reshape should alias the buffer")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape with wrong element count did not panic")
		}
	}()
	a.Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	a.Add(b)
	want := FromSlice([]float64{11, 22, 33}, 3)
	if !a.Equal(want, 1e-12) {
		t.Fatalf("Add: got %v", a)
	}
	a.Sub(b)
	if !a.Equal(FromSlice([]float64{1, 2, 3}, 3), 1e-12) {
		t.Fatalf("Sub: got %v", a)
	}
	a.AddScaled(0.5, b)
	if !a.Equal(FromSlice([]float64{6, 12, 18}, 3), 1e-12) {
		t.Fatalf("AddScaled: got %v", a)
	}
	a.Scale(2)
	if !a.Equal(FromSlice([]float64{12, 24, 36}, 3), 1e-12) {
		t.Fatalf("Scale: got %v", a)
	}
	a.Mul(b)
	if !a.Equal(FromSlice([]float64{120, 480, 1080}, 3), 1e-12) {
		t.Fatalf("Mul: got %v", a)
	}
}

func TestStats(t *testing.T) {
	a := FromSlice([]float64{2, 4, 4, 4, 5, 5, 7, 9}, 8)
	if got := a.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	if got := a.Std(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Std = %g, want 2", got)
	}
	if got := a.Sum(); got != 40 {
		t.Fatalf("Sum = %g, want 40", got)
	}
	v, i := a.Max()
	if v != 9 || i != 7 {
		t.Fatalf("Max = (%g,%d), want (9,7)", v, i)
	}
	if got := a.Norm1(); got != 40 {
		t.Fatalf("Norm1 = %g, want 40", got)
	}
	if got := a.Norm2(); math.Abs(got-math.Sqrt(232)) > 1e-12 {
		t.Fatalf("Norm2 = %g", got)
	}
}

func TestClamp(t *testing.T) {
	a := FromSlice([]float64{-5, -1, 0, 1, 5}, 5)
	a.Clamp(-1, 1)
	want := FromSlice([]float64{-1, -1, 0, 1, 1}, 5)
	if !a.Equal(want, 0) {
		t.Fatalf("Clamp: got %v", a)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4)
	a.Randn(rng, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	if got := MatMul(a, id); !got.Equal(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if got := MatMul(id, a); !got.Equal(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched inner dims did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulInto(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	dst := New(2, 2)
	dst.Fill(99) // must be overwritten, not accumulated
	MatMulInto(dst, a, b)
	if !dst.Equal(MatMul(a, b), 1e-12) {
		t.Fatalf("MatMulInto = %v", dst)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(3, 5)
	a.Randn(rng, 1)
	if got := Transpose(Transpose(a)); !got.Equal(a, 0) {
		t.Fatal("transpose twice != identity")
	}
}

// randMat returns a deterministic pseudo-random matrix for property tests.
func randMat(rng *rand.Rand, m, n int) *Tensor {
	t := New(m, n)
	t.Randn(rng, 1)
	return t
}

func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := randMat(rng, m, k)
		b := randMat(rng, n, k)
		got := MatMulTransB(a, b)
		want := MatMul(a, Transpose(b))
		if !got.Equal(want, 1e-9) {
			t.Fatalf("trial %d: MatMulTransB mismatch", trial)
		}
	}
}

func TestMatMulTransAMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := randMat(rng, k, m)
		b := randMat(rng, k, n)
		got := MatMulTransA(a, b)
		want := MatMul(Transpose(a), b)
		if !got.Equal(want, 1e-9) {
			t.Fatalf("trial %d: MatMulTransA mismatch", trial)
		}
	}
}

// Property: matmul distributes over addition, A·(B+C) == A·B + A·C.
func TestMatMulDistributiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		c := randMat(r, k, n)
		bc := b.Clone()
		bc.Add(c)
		left := MatMul(a, bc)
		right := MatMul(a, b)
		right.Add(MatMul(a, c))
		return left.Equal(right, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling commutes with matmul, (αA)·B == α(A·B).
func TestMatMulScaleCommutesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		alpha := r.NormFloat64()
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		sa := a.Clone()
		sa.Scale(alpha)
		left := MatMul(sa, b)
		right := MatMul(a, b)
		right.Scale(alpha)
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
