package tensor

import "fmt"

// maxArenaRank bounds the tensor rank an Arena can key on. Every tensor in
// the training stack is rank 1–4 (NCHW batches at most).
const maxArenaRank = 4

// arenaKey identifies one scratch buffer: a caller-chosen slot name, an
// optional integer index (batch-keyed caches hold one buffer per batch
// under a single slot name) plus the exact shape. Keeping the key a
// comparable value type makes the map lookup allocation-free, which is the
// whole point of the arena.
type arenaKey struct {
	slot string
	idx  int
	rank int
	dims [maxArenaRank]int
}

// Arena is a shape-keyed pool of reusable scratch tensors. Get returns the
// same buffer for the same (slot, shape) pair on every call, allocating only
// on first use, so a steady-state training loop that routes its temporaries
// through an arena performs zero heap allocations per step after warm-up.
//
// Buffers for distinct shapes coexist (a partial tail batch does not evict
// the full-batch buffer), and the slot string separates same-shaped buffers
// that must not alias (e.g. a matmul destination and its gradient scratch).
//
// Ownership rules (see DESIGN.md §8):
//   - An Arena is single-goroutine state, exactly like the layer that owns
//     it. Concurrent workers must each own their own Arena (or per-block
//     scratch), mirroring how the conv forward pass hands every worker
//     block its own buffers.
//   - Get does not zero recycled buffers; callers that need zeroed storage
//     call Zero explicitly (freshly allocated buffers are zero-filled).
//   - A buffer is valid until the next Get with the same slot and shape;
//     callers must not retain it across steps.
//
// The zero value is ready to use.
type Arena struct {
	m map[arenaKey]*Tensor
}

// Get returns the arena's buffer for (slot, shape), allocating a zeroed
// tensor on first use. Recycled buffers keep their previous contents.
//
// The shape slice is only read, never retained: the miss path rebuilds the
// shape from the comparable key, so the caller's variadic argument does not
// escape and a warm Get is allocation-free (the gate in alloc_test.go pins
// this).
func (a *Arena) Get(slot string, shape ...int) *Tensor {
	if len(shape) > maxArenaRank {
		panic(fmt.Sprintf("tensor: Arena.Get rank %d exceeds %d", len(shape), maxArenaRank))
	}
	k := arenaKey{slot: slot, rank: len(shape)}
	copy(k.dims[:], shape)
	if t, ok := a.m[k]; ok {
		return t
	}
	return a.miss(k)
}

// GetIndexed returns the arena's buffer for (slot, idx, shape), allocating
// a zeroed tensor on first use. The integer index distinguishes same-shaped
// buffers under one slot name without the caller having to mint per-index
// slot strings (which would allocate on every lookup): a batch-keyed
// activation cache holds batch b in GetIndexed("act", b, shape...).
func (a *Arena) GetIndexed(slot string, idx int, shape ...int) *Tensor {
	if len(shape) > maxArenaRank {
		panic(fmt.Sprintf("tensor: Arena.GetIndexed rank %d exceeds %d", len(shape), maxArenaRank))
	}
	k := arenaKey{slot: slot, idx: idx, rank: len(shape)}
	copy(k.dims[:], shape)
	if t, ok := a.m[k]; ok {
		return t
	}
	return a.miss(k)
}

// GetIndexedLike is GetIndexed with the shape read in place from t,
// keeping the warm path allocation-free for ad-hoc shapes.
func (a *Arena) GetIndexedLike(slot string, idx int, t *Tensor) *Tensor {
	if len(t.shape) > maxArenaRank {
		panic(fmt.Sprintf("tensor: Arena.GetIndexedLike rank %d exceeds %d", len(t.shape), maxArenaRank))
	}
	k := arenaKey{slot: slot, idx: idx, rank: len(t.shape)}
	copy(k.dims[:], t.shape)
	if b, ok := a.m[k]; ok {
		return b
	}
	return a.miss(k)
}

// GetLike returns the arena's buffer with exactly t's shape, allocating a
// zeroed tensor on first use. Unlike Get(slot, t.Shape()...) it reads the
// shape in place, keeping the warm path allocation-free.
func (a *Arena) GetLike(slot string, t *Tensor) *Tensor {
	if len(t.shape) > maxArenaRank {
		panic(fmt.Sprintf("tensor: Arena.GetLike rank %d exceeds %d", len(t.shape), maxArenaRank))
	}
	k := arenaKey{slot: slot, rank: len(t.shape)}
	copy(k.dims[:], t.shape)
	if b, ok := a.m[k]; ok {
		return b
	}
	return a.miss(k)
}

// miss allocates and registers the buffer for key k (the cold path of
// Get/GetLike).
func (a *Arena) miss(k arenaKey) *Tensor {
	if a.m == nil {
		a.m = make(map[arenaKey]*Tensor)
	}
	t := New(k.dims[:k.rank]...)
	a.m[k] = t
	return t
}

// Reset drops every cached buffer, returning the arena to its zero state.
func (a *Arena) Reset() { a.m = nil }

// EnsureShape returns t when it already has exactly the wanted shape, and a
// fresh zeroed tensor otherwise (including t == nil). It is the single-slot
// sibling of Arena.Get for call sites whose scratch shape only changes when
// the batch geometry does. Like Arena.Get, the shape slice is only read, so
// the reuse path is allocation-free even with an inline variadic argument.
func EnsureShape(t *Tensor, shape ...int) *Tensor {
	if t != nil && len(t.shape) == len(shape) {
		same := true
		for i, d := range shape {
			if t.shape[i] != d {
				same = false
				break
			}
		}
		if same {
			return t
		}
	}
	if len(shape) <= maxArenaRank {
		k := arenaKey{rank: len(shape)}
		copy(k.dims[:], shape)
		return newFromKey(k)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return New(s...)
}

// newFromKey is the cold allocation path of EnsureShape, separated so the
// caller's shape argument does not escape.
func newFromKey(k arenaKey) *Tensor { return New(k.dims[:k.rank]...) }
